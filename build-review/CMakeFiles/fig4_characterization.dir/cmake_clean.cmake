file(REMOVE_RECURSE
  "CMakeFiles/fig4_characterization.dir/bench/fig4_characterization.cpp.o"
  "CMakeFiles/fig4_characterization.dir/bench/fig4_characterization.cpp.o.d"
  "fig4_characterization"
  "fig4_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
