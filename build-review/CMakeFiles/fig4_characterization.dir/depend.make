# Empty dependencies file for fig4_characterization.
# This may be replaced when dependencies are built.
