# Empty compiler generated dependencies file for ablation_allocator_cost.
# This may be replaced when dependencies are built.
