file(REMOVE_RECURSE
  "CMakeFiles/ablation_allocator_cost.dir/bench/ablation_allocator_cost.cpp.o"
  "CMakeFiles/ablation_allocator_cost.dir/bench/ablation_allocator_cost.cpp.o.d"
  "ablation_allocator_cost"
  "ablation_allocator_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_allocator_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
