file(REMOVE_RECURSE
  "CMakeFiles/fig11_network_latency.dir/bench/fig11_network_latency.cpp.o"
  "CMakeFiles/fig11_network_latency.dir/bench/fig11_network_latency.cpp.o.d"
  "fig11_network_latency"
  "fig11_network_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_network_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
