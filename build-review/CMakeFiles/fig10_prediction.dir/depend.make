# Empty dependencies file for fig10_prediction.
# This may be replaced when dependencies are built.
