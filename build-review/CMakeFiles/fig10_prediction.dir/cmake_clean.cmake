file(REMOVE_RECURSE
  "CMakeFiles/fig10_prediction.dir/bench/fig10_prediction.cpp.o"
  "CMakeFiles/fig10_prediction.dir/bench/fig10_prediction.cpp.o.d"
  "fig10_prediction"
  "fig10_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
