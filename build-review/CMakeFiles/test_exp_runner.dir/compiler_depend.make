# Empty compiler generated dependencies file for test_exp_runner.
# This may be replaced when dependencies are built.
