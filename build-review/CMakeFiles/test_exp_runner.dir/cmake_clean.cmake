file(REMOVE_RECURSE
  "CMakeFiles/test_exp_runner.dir/tests/test_exp_runner.cpp.o"
  "CMakeFiles/test_exp_runner.dir/tests/test_exp_runner.cpp.o.d"
  "test_exp_runner"
  "test_exp_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exp_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
