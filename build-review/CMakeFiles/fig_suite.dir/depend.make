# Empty dependencies file for fig_suite.
# This may be replaced when dependencies are built.
