file(REMOVE_RECURSE
  "CMakeFiles/fig_suite.dir/bench/fig_suite.cpp.o"
  "CMakeFiles/fig_suite.dir/bench/fig_suite.cpp.o.d"
  "fig_suite"
  "fig_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
