file(REMOVE_RECURSE
  "CMakeFiles/ablation_predictor_modes.dir/bench/ablation_predictor_modes.cpp.o"
  "CMakeFiles/ablation_predictor_modes.dir/bench/ablation_predictor_modes.cpp.o.d"
  "ablation_predictor_modes"
  "ablation_predictor_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_predictor_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
