# Empty dependencies file for ablation_predictor_modes.
# This may be replaced when dependencies are built.
