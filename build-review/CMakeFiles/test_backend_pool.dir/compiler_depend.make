# Empty compiler generated dependencies file for test_backend_pool.
# This may be replaced when dependencies are built.
