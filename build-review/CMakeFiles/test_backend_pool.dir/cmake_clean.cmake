file(REMOVE_RECURSE
  "CMakeFiles/test_backend_pool.dir/tests/test_backend_pool.cpp.o"
  "CMakeFiles/test_backend_pool.dir/tests/test_backend_pool.cpp.o.d"
  "test_backend_pool"
  "test_backend_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
