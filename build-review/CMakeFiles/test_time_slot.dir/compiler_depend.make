# Empty compiler generated dependencies file for test_time_slot.
# This may be replaced when dependencies are built.
