file(REMOVE_RECURSE
  "CMakeFiles/test_time_slot.dir/tests/test_time_slot.cpp.o"
  "CMakeFiles/test_time_slot.dir/tests/test_time_slot.cpp.o.d"
  "test_time_slot"
  "test_time_slot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time_slot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
