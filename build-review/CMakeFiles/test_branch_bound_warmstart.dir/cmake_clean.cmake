file(REMOVE_RECURSE
  "CMakeFiles/test_branch_bound_warmstart.dir/tests/test_branch_bound_warmstart.cpp.o"
  "CMakeFiles/test_branch_bound_warmstart.dir/tests/test_branch_bound_warmstart.cpp.o.d"
  "test_branch_bound_warmstart"
  "test_branch_bound_warmstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_branch_bound_warmstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
