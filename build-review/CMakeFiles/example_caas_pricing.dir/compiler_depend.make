# Empty compiler generated dependencies file for example_caas_pricing.
# This may be replaced when dependencies are built.
