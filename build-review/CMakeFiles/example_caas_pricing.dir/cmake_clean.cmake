file(REMOVE_RECURSE
  "CMakeFiles/example_caas_pricing.dir/examples/caas_pricing.cpp.o"
  "CMakeFiles/example_caas_pricing.dir/examples/caas_pricing.cpp.o.d"
  "example_caas_pricing"
  "example_caas_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_caas_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
