file(REMOVE_RECURSE
  "CMakeFiles/fig7_component_times.dir/bench/fig7_component_times.cpp.o"
  "CMakeFiles/fig7_component_times.dir/bench/fig7_component_times.cpp.o.d"
  "fig7_component_times"
  "fig7_component_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_component_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
