# Empty dependencies file for fig7_component_times.
# This may be replaced when dependencies are built.
