# Empty dependencies file for test_event_engine_stress.
# This may be replaced when dependencies are built.
