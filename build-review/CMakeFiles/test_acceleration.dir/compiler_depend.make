# Empty compiler generated dependencies file for test_acceleration.
# This may be replaced when dependencies are built.
