file(REMOVE_RECURSE
  "CMakeFiles/test_acceleration.dir/tests/test_acceleration.cpp.o"
  "CMakeFiles/test_acceleration.dir/tests/test_acceleration.cpp.o.d"
  "test_acceleration"
  "test_acceleration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acceleration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
