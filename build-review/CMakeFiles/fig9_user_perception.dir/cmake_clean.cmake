file(REMOVE_RECURSE
  "CMakeFiles/fig9_user_perception.dir/bench/fig9_user_perception.cpp.o"
  "CMakeFiles/fig9_user_perception.dir/bench/fig9_user_perception.cpp.o.d"
  "fig9_user_perception"
  "fig9_user_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_user_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
