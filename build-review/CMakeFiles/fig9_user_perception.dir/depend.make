# Empty dependencies file for fig9_user_perception.
# This may be replaced when dependencies are built.
