file(REMOVE_RECURSE
  "CMakeFiles/ablation_credits.dir/bench/ablation_credits.cpp.o"
  "CMakeFiles/ablation_credits.dir/bench/ablation_credits.cpp.o.d"
  "ablation_credits"
  "ablation_credits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_credits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
