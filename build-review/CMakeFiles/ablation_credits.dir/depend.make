# Empty dependencies file for ablation_credits.
# This may be replaced when dependencies are built.
