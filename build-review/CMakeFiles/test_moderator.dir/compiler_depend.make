# Empty compiler generated dependencies file for test_moderator.
# This may be replaced when dependencies are built.
