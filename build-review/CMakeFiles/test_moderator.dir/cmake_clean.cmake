file(REMOVE_RECURSE
  "CMakeFiles/test_moderator.dir/tests/test_moderator.cpp.o"
  "CMakeFiles/test_moderator.dir/tests/test_moderator.cpp.o.d"
  "test_moderator"
  "test_moderator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_moderator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
