# Empty dependencies file for test_caas.
# This may be replaced when dependencies are built.
