file(REMOVE_RECURSE
  "CMakeFiles/test_caas.dir/tests/test_caas.cpp.o"
  "CMakeFiles/test_caas.dir/tests/test_caas.cpp.o.d"
  "test_caas"
  "test_caas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_caas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
