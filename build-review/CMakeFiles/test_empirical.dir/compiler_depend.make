# Empty compiler generated dependencies file for test_empirical.
# This may be replaced when dependencies are built.
