file(REMOVE_RECURSE
  "CMakeFiles/test_empirical.dir/tests/test_empirical.cpp.o"
  "CMakeFiles/test_empirical.dir/tests/test_empirical.cpp.o.d"
  "test_empirical"
  "test_empirical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_empirical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
