file(REMOVE_RECURSE
  "CMakeFiles/example_autoscale_simulation.dir/examples/autoscale_simulation.cpp.o"
  "CMakeFiles/example_autoscale_simulation.dir/examples/autoscale_simulation.cpp.o.d"
  "example_autoscale_simulation"
  "example_autoscale_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_autoscale_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
