# Empty compiler generated dependencies file for example_autoscale_simulation.
# This may be replaced when dependencies are built.
