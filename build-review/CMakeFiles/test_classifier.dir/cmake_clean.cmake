file(REMOVE_RECURSE
  "CMakeFiles/test_classifier.dir/tests/test_classifier.cpp.o"
  "CMakeFiles/test_classifier.dir/tests/test_classifier.cpp.o.d"
  "test_classifier"
  "test_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
