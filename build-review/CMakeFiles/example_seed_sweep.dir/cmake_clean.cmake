file(REMOVE_RECURSE
  "CMakeFiles/example_seed_sweep.dir/examples/seed_sweep.cpp.o"
  "CMakeFiles/example_seed_sweep.dir/examples/seed_sweep.cpp.o.d"
  "example_seed_sweep"
  "example_seed_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_seed_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
