# Empty dependencies file for example_seed_sweep.
# This may be replaced when dependencies are built.
