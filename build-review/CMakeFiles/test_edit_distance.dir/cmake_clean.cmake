file(REMOVE_RECURSE
  "CMakeFiles/test_edit_distance.dir/tests/test_edit_distance.cpp.o"
  "CMakeFiles/test_edit_distance.dir/tests/test_edit_distance.cpp.o.d"
  "test_edit_distance"
  "test_edit_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edit_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
