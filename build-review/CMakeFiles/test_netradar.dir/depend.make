# Empty dependencies file for test_netradar.
# This may be replaced when dependencies are built.
