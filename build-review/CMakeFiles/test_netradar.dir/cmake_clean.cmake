file(REMOVE_RECURSE
  "CMakeFiles/test_netradar.dir/tests/test_netradar.cpp.o"
  "CMakeFiles/test_netradar.dir/tests/test_netradar.cpp.o.d"
  "test_netradar"
  "test_netradar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netradar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
