# Empty dependencies file for fig8_saturation.
# This may be replaced when dependencies are built.
