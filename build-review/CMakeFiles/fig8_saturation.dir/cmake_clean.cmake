file(REMOVE_RECURSE
  "CMakeFiles/fig8_saturation.dir/bench/fig8_saturation.cpp.o"
  "CMakeFiles/fig8_saturation.dir/bench/fig8_saturation.cpp.o.d"
  "fig8_saturation"
  "fig8_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
