file(REMOVE_RECURSE
  "CMakeFiles/example_promotion_policies.dir/examples/promotion_policies.cpp.o"
  "CMakeFiles/example_promotion_policies.dir/examples/promotion_policies.cpp.o.d"
  "example_promotion_policies"
  "example_promotion_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_promotion_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
