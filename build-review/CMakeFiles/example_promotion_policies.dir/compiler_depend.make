# Empty compiler generated dependencies file for example_promotion_policies.
# This may be replaced when dependencies are built.
