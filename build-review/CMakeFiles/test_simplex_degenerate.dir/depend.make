# Empty dependencies file for test_simplex_degenerate.
# This may be replaced when dependencies are built.
