file(REMOVE_RECURSE
  "CMakeFiles/test_simplex_degenerate.dir/tests/test_simplex_degenerate.cpp.o"
  "CMakeFiles/test_simplex_degenerate.dir/tests/test_simplex_degenerate.cpp.o.d"
  "test_simplex_degenerate"
  "test_simplex_degenerate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simplex_degenerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
