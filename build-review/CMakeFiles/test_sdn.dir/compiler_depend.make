# Empty compiler generated dependencies file for test_sdn.
# This may be replaced when dependencies are built.
