file(REMOVE_RECURSE
  "CMakeFiles/test_sdn.dir/tests/test_sdn.cpp.o"
  "CMakeFiles/test_sdn.dir/tests/test_sdn.cpp.o.d"
  "test_sdn"
  "test_sdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
