# Empty dependencies file for mca.
# This may be replaced when dependencies are built.
