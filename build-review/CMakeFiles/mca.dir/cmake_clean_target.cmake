file(REMOVE_RECURSE
  "libmca.a"
)
