
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/device.cpp" "CMakeFiles/mca.dir/src/client/device.cpp.o" "gcc" "CMakeFiles/mca.dir/src/client/device.cpp.o.d"
  "/root/repo/src/client/moderator.cpp" "CMakeFiles/mca.dir/src/client/moderator.cpp.o" "gcc" "CMakeFiles/mca.dir/src/client/moderator.cpp.o.d"
  "/root/repo/src/client/usage_trace.cpp" "CMakeFiles/mca.dir/src/client/usage_trace.cpp.o" "gcc" "CMakeFiles/mca.dir/src/client/usage_trace.cpp.o.d"
  "/root/repo/src/cloud/backend_pool.cpp" "CMakeFiles/mca.dir/src/cloud/backend_pool.cpp.o" "gcc" "CMakeFiles/mca.dir/src/cloud/backend_pool.cpp.o.d"
  "/root/repo/src/cloud/billing.cpp" "CMakeFiles/mca.dir/src/cloud/billing.cpp.o" "gcc" "CMakeFiles/mca.dir/src/cloud/billing.cpp.o.d"
  "/root/repo/src/cloud/instance.cpp" "CMakeFiles/mca.dir/src/cloud/instance.cpp.o" "gcc" "CMakeFiles/mca.dir/src/cloud/instance.cpp.o.d"
  "/root/repo/src/cloud/instance_type.cpp" "CMakeFiles/mca.dir/src/cloud/instance_type.cpp.o" "gcc" "CMakeFiles/mca.dir/src/cloud/instance_type.cpp.o.d"
  "/root/repo/src/core/acceleration.cpp" "CMakeFiles/mca.dir/src/core/acceleration.cpp.o" "gcc" "CMakeFiles/mca.dir/src/core/acceleration.cpp.o.d"
  "/root/repo/src/core/allocator.cpp" "CMakeFiles/mca.dir/src/core/allocator.cpp.o" "gcc" "CMakeFiles/mca.dir/src/core/allocator.cpp.o.d"
  "/root/repo/src/core/caas.cpp" "CMakeFiles/mca.dir/src/core/caas.cpp.o" "gcc" "CMakeFiles/mca.dir/src/core/caas.cpp.o.d"
  "/root/repo/src/core/classifier.cpp" "CMakeFiles/mca.dir/src/core/classifier.cpp.o" "gcc" "CMakeFiles/mca.dir/src/core/classifier.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "CMakeFiles/mca.dir/src/core/predictor.cpp.o" "gcc" "CMakeFiles/mca.dir/src/core/predictor.cpp.o.d"
  "/root/repo/src/core/sdn_accelerator.cpp" "CMakeFiles/mca.dir/src/core/sdn_accelerator.cpp.o" "gcc" "CMakeFiles/mca.dir/src/core/sdn_accelerator.cpp.o.d"
  "/root/repo/src/core/system.cpp" "CMakeFiles/mca.dir/src/core/system.cpp.o" "gcc" "CMakeFiles/mca.dir/src/core/system.cpp.o.d"
  "/root/repo/src/exp/curves.cpp" "CMakeFiles/mca.dir/src/exp/curves.cpp.o" "gcc" "CMakeFiles/mca.dir/src/exp/curves.cpp.o.d"
  "/root/repo/src/exp/scenario.cpp" "CMakeFiles/mca.dir/src/exp/scenario.cpp.o" "gcc" "CMakeFiles/mca.dir/src/exp/scenario.cpp.o.d"
  "/root/repo/src/exp/thread_pool.cpp" "CMakeFiles/mca.dir/src/exp/thread_pool.cpp.o" "gcc" "CMakeFiles/mca.dir/src/exp/thread_pool.cpp.o.d"
  "/root/repo/src/ilp/branch_bound.cpp" "CMakeFiles/mca.dir/src/ilp/branch_bound.cpp.o" "gcc" "CMakeFiles/mca.dir/src/ilp/branch_bound.cpp.o.d"
  "/root/repo/src/ilp/problem.cpp" "CMakeFiles/mca.dir/src/ilp/problem.cpp.o" "gcc" "CMakeFiles/mca.dir/src/ilp/problem.cpp.o.d"
  "/root/repo/src/ilp/simplex.cpp" "CMakeFiles/mca.dir/src/ilp/simplex.cpp.o" "gcc" "CMakeFiles/mca.dir/src/ilp/simplex.cpp.o.d"
  "/root/repo/src/ilp/tableau.cpp" "CMakeFiles/mca.dir/src/ilp/tableau.cpp.o" "gcc" "CMakeFiles/mca.dir/src/ilp/tableau.cpp.o.d"
  "/root/repo/src/net/netradar.cpp" "CMakeFiles/mca.dir/src/net/netradar.cpp.o" "gcc" "CMakeFiles/mca.dir/src/net/netradar.cpp.o.d"
  "/root/repo/src/net/operators.cpp" "CMakeFiles/mca.dir/src/net/operators.cpp.o" "gcc" "CMakeFiles/mca.dir/src/net/operators.cpp.o.d"
  "/root/repo/src/net/rtt_model.cpp" "CMakeFiles/mca.dir/src/net/rtt_model.cpp.o" "gcc" "CMakeFiles/mca.dir/src/net/rtt_model.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "CMakeFiles/mca.dir/src/sim/simulation.cpp.o" "gcc" "CMakeFiles/mca.dir/src/sim/simulation.cpp.o.d"
  "/root/repo/src/tasks/linalg.cpp" "CMakeFiles/mca.dir/src/tasks/linalg.cpp.o" "gcc" "CMakeFiles/mca.dir/src/tasks/linalg.cpp.o.d"
  "/root/repo/src/tasks/minimax.cpp" "CMakeFiles/mca.dir/src/tasks/minimax.cpp.o" "gcc" "CMakeFiles/mca.dir/src/tasks/minimax.cpp.o.d"
  "/root/repo/src/tasks/nqueens.cpp" "CMakeFiles/mca.dir/src/tasks/nqueens.cpp.o" "gcc" "CMakeFiles/mca.dir/src/tasks/nqueens.cpp.o.d"
  "/root/repo/src/tasks/numeric.cpp" "CMakeFiles/mca.dir/src/tasks/numeric.cpp.o" "gcc" "CMakeFiles/mca.dir/src/tasks/numeric.cpp.o.d"
  "/root/repo/src/tasks/pool.cpp" "CMakeFiles/mca.dir/src/tasks/pool.cpp.o" "gcc" "CMakeFiles/mca.dir/src/tasks/pool.cpp.o.d"
  "/root/repo/src/tasks/sorting.cpp" "CMakeFiles/mca.dir/src/tasks/sorting.cpp.o" "gcc" "CMakeFiles/mca.dir/src/tasks/sorting.cpp.o.d"
  "/root/repo/src/trace/edit_distance.cpp" "CMakeFiles/mca.dir/src/trace/edit_distance.cpp.o" "gcc" "CMakeFiles/mca.dir/src/trace/edit_distance.cpp.o.d"
  "/root/repo/src/trace/log_store.cpp" "CMakeFiles/mca.dir/src/trace/log_store.cpp.o" "gcc" "CMakeFiles/mca.dir/src/trace/log_store.cpp.o.d"
  "/root/repo/src/trace/time_slot.cpp" "CMakeFiles/mca.dir/src/trace/time_slot.cpp.o" "gcc" "CMakeFiles/mca.dir/src/trace/time_slot.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "CMakeFiles/mca.dir/src/trace/trace_io.cpp.o" "gcc" "CMakeFiles/mca.dir/src/trace/trace_io.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/mca.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/mca.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "CMakeFiles/mca.dir/src/util/histogram.cpp.o" "gcc" "CMakeFiles/mca.dir/src/util/histogram.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/mca.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/mca.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "CMakeFiles/mca.dir/src/workload/generator.cpp.o" "gcc" "CMakeFiles/mca.dir/src/workload/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
