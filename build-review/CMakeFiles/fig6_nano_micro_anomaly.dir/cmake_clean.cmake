file(REMOVE_RECURSE
  "CMakeFiles/fig6_nano_micro_anomaly.dir/bench/fig6_nano_micro_anomaly.cpp.o"
  "CMakeFiles/fig6_nano_micro_anomaly.dir/bench/fig6_nano_micro_anomaly.cpp.o.d"
  "fig6_nano_micro_anomaly"
  "fig6_nano_micro_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_nano_micro_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
