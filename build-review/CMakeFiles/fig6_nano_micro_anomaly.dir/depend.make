# Empty dependencies file for fig6_nano_micro_anomaly.
# This may be replaced when dependencies are built.
