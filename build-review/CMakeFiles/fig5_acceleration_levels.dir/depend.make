# Empty dependencies file for fig5_acceleration_levels.
# This may be replaced when dependencies are built.
