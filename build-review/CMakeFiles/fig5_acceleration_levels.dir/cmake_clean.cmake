file(REMOVE_RECURSE
  "CMakeFiles/fig5_acceleration_levels.dir/bench/fig5_acceleration_levels.cpp.o"
  "CMakeFiles/fig5_acceleration_levels.dir/bench/fig5_acceleration_levels.cpp.o.d"
  "fig5_acceleration_levels"
  "fig5_acceleration_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_acceleration_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
