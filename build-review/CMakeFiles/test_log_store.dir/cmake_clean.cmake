file(REMOVE_RECURSE
  "CMakeFiles/test_log_store.dir/tests/test_log_store.cpp.o"
  "CMakeFiles/test_log_store.dir/tests/test_log_store.cpp.o.d"
  "test_log_store"
  "test_log_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_log_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
