# Empty compiler generated dependencies file for test_exp_pool.
# This may be replaced when dependencies are built.
