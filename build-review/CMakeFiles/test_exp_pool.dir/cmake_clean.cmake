file(REMOVE_RECURSE
  "CMakeFiles/test_exp_pool.dir/tests/test_exp_pool.cpp.o"
  "CMakeFiles/test_exp_pool.dir/tests/test_exp_pool.cpp.o.d"
  "test_exp_pool"
  "test_exp_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exp_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
