file(REMOVE_RECURSE
  "CMakeFiles/test_usage_trace.dir/tests/test_usage_trace.cpp.o"
  "CMakeFiles/test_usage_trace.dir/tests/test_usage_trace.cpp.o.d"
  "test_usage_trace"
  "test_usage_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usage_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
