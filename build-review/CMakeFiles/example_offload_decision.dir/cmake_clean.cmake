file(REMOVE_RECURSE
  "CMakeFiles/example_offload_decision.dir/examples/offload_decision.cpp.o"
  "CMakeFiles/example_offload_decision.dir/examples/offload_decision.cpp.o.d"
  "example_offload_decision"
  "example_offload_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_offload_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
