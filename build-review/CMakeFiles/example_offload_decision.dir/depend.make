# Empty dependencies file for example_offload_decision.
# This may be replaced when dependencies are built.
