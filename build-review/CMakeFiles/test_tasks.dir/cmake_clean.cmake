file(REMOVE_RECURSE
  "CMakeFiles/test_tasks.dir/tests/test_tasks.cpp.o"
  "CMakeFiles/test_tasks.dir/tests/test_tasks.cpp.o.d"
  "test_tasks"
  "test_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
