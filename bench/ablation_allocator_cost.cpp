// Ablation (no paper figure; §IV-C's cost claim) — what the ILP buys over
// simpler provisioning policies across a diurnal day.
//
// A 24-hour predicted workload (diurnal, three groups, promotion drift)
// is fed to four allocation policies; the daily bill and any uncovered
// demand are compared:
//   * ilp         — the paper's optimizer (exact, per-hour)
//   * greedy      — best capacity-per-dollar heuristic
//   * static-peak — provision every hour for the daily peak (no model)
//   * capped      — ILP under a tight CC=6 cap (best-effort fallback)
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/allocator.h"
#include "exp/runner.h"
#include "util/csv.h"

namespace {

/// Diurnal user-count profile for 24 hours (evening peak).
double diurnal_users(double hour, double peak) {
  const double morning = std::exp(-std::pow(hour - 10.0, 2.0) / 18.0);
  const double evening = std::exp(-std::pow(hour - 20.0, 2.0) / 8.0);
  return peak * std::min(1.0, 0.55 * morning + evening + 0.05);
}

}  // namespace

int main() {
  using namespace mca;
  bench::check_list checks;

  // Candidates per group: the Fig. 9a deployment with measured Ks values.
  core::allocation_request base;
  base.workload_per_group = {0.0, 0.0, 0.0};
  base.candidates_per_group = {
      {{"t2.nano", 10.0, 0.0063}, {"t2.small", 10.0, 0.025}},
      {{"t2.medium", 40.0, 0.05}, {"t2.large", 40.0, 0.101}},
      {{"m4.4xlarge", 100.0, 0.888}, {"m4.10xlarge", 100.0, 2.22}},
  };

  double cost_ilp = 0.0;
  double cost_greedy = 0.0;
  double cost_static = 0.0;
  double cost_capped = 0.0;
  std::size_t capped_uncovered_hours = 0;
  double peak_total = 0.0;
  std::vector<std::vector<double>> hourly(24);
  for (int hour = 0; hour < 24; ++hour) {
    // Promotion drift: later hours shift weight to higher groups.
    const double drift = static_cast<double>(hour) / 24.0;
    const double total = diurnal_users(hour, 120.0);
    hourly[hour] = {total * (0.6 - 0.3 * drift), total * 0.3,
                    total * (0.1 + 0.3 * drift)};
    peak_total = std::max(peak_total, total);
  }

  // Each hour is an independent four-policy solve; fan the day out over
  // the pool and fold the bills back in hour order.
  struct hour_costs {
    double ilp = 0.0;
    double greedy = 0.0;
    double fixed = 0.0;
    double capped = 0.0;
    bool capped_uncovered = false;
  };
  exp::thread_pool workers;
  const auto day = exp::parallel_map(workers, 24, [&](std::size_t hour) {
    auto request = base;
    request.workload_per_group = hourly[hour];

    const auto ilp = core::allocate_ilp(request);
    const auto greedy = core::allocate_greedy(request);
    // Static peak: every group provisioned for the largest total ever seen.
    const auto fixed = core::allocate_static_peak(request, peak_total);
    auto capped_request = request;
    capped_request.max_total_instances = 6;
    const auto capped = core::allocate_ilp(capped_request);

    return hour_costs{ilp.total_cost_per_hour, greedy.total_cost_per_hour,
                      fixed.total_cost_per_hour, capped.total_cost_per_hour,
                      !capped.feasible};
  });

  bench::section("hourly allocation cost by policy");
  util::csv_writer csv{std::cout,
                       {"hour", "users_g1", "users_g2", "users_g3",
                        "ilp_cost", "greedy_cost", "static_cost",
                        "capped_cost"}};
  for (int hour = 0; hour < 24; ++hour) {
    const auto& costs = day[static_cast<std::size_t>(hour)];
    cost_ilp += costs.ilp;
    cost_greedy += costs.greedy;
    cost_static += costs.fixed;
    cost_capped += costs.capped;
    if (costs.capped_uncovered) ++capped_uncovered_hours;

    csv.row_values(hour, hourly[hour][0], hourly[hour][1], hourly[hour][2],
                   costs.ilp, costs.greedy, costs.fixed, costs.capped);
  }

  bench::section("daily bill");
  std::printf("ilp          $%7.3f\n", cost_ilp);
  std::printf("greedy       $%7.3f\n", cost_greedy);
  std::printf("static-peak  $%7.3f\n", cost_static);
  std::printf("capped CC=6  $%7.3f  (%zu/24 hours left demand uncovered)\n",
              cost_capped, capped_uncovered_hours);

  checks.expect(cost_ilp <= cost_greedy + 1e-9,
                "ILP never pays more than the greedy heuristic",
                bench::ratio_detail("greedy/ilp", cost_greedy / cost_ilp));
  checks.expect(cost_ilp < cost_static * 0.8,
                "the adaptive model beats static peak provisioning by >20%",
                bench::ratio_detail("static/ilp", cost_static / cost_ilp));
  checks.expect(capped_uncovered_hours > 0,
                "a too-tight account cap forces best-effort hours",
                std::to_string(capped_uncovered_hours) + " hours");
  checks.expect(cost_capped <= cost_ilp + 1e-9,
                "the capped plan cannot exceed the uncapped optimum's bill",
                bench::ratio_detail("capped/ilp", cost_capped / cost_ilp));
  return checks.finish("ablation_allocator_cost");
}
