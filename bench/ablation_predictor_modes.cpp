// Ablation (DESIGN.md §5) — the two readings of §IV-B.2.
//
// The paper's sentence "t'h is approximated to the timeslot tk that has
// the minimum Δ" admits two implementations: predict tk itself (`match`,
// the literal text) or the slot that followed tk (`successor`, the
// one-step-ahead reading).  This bench scores both — plus a trivial
// persistence baseline (next = current) — on three workload regimes:
// stationary, diurnal, and ramping.  Expectation: on stationary load
// everything ties; on structured load `successor` wins or ties because it
// forecasts the transition, not the state.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/predictor.h"
#include "exp/runner.h"
#include "util/csv.h"
#include "util/rng.h"

namespace {

using namespace mca;

trace::time_slot slot_with(std::size_t count) {
  trace::time_slot slot{2};
  for (std::size_t i = 0; i < count; ++i) {
    slot.add_user(1, static_cast<user_id>(i));
  }
  return slot;
}

std::vector<trace::time_slot> make_history(const std::string& regime,
                                           std::size_t slots,
                                           util::rng& rng) {
  std::vector<trace::time_slot> history;
  for (std::size_t i = 0; i < slots; ++i) {
    std::size_t count = 0;
    if (regime == "stationary") {
      count = 40 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    } else if (regime == "diurnal") {
      const double phase = 2.0 * 3.14159265 * static_cast<double>(i) / 24.0;
      count = static_cast<std::size_t>(40.0 + 30.0 * std::sin(phase) +
                                       rng.uniform(0.0, 3.0));
    } else {  // ramp
      count = 5 + i * 2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    }
    history.push_back(slot_with(count));
  }
  return history;
}

/// Persistence baseline: predict that the next slot equals the current.
double persistence_accuracy(const std::vector<trace::time_slot>& history,
                            std::size_t start) {
  double total = 0.0;
  std::size_t scored = 0;
  for (std::size_t i = start; i + 1 < history.size(); ++i) {
    total += core::prediction_accuracy(history[i].group_counts(),
                                       history[i + 1].group_counts());
    ++scored;
  }
  return scored == 0 ? 0.0 : total / static_cast<double>(scored);
}

}  // namespace

int main() {
  using namespace mca;
  bench::check_list checks;

  bench::section("prediction accuracy by mode and workload regime");
  util::csv_writer csv{std::cout,
                       {"regime", "successor_pct", "match_pct",
                        "persistence_pct"}};
  double diurnal_successor = 0.0;
  double diurnal_match = 0.0;
  double ramp_successor = 0.0;
  double ramp_persistence = 0.0;
  double stationary_gap = 0.0;
  const std::vector<std::string> regimes = {"stationary", "diurnal", "ramp"};
  // Three independent regimes, one rng::split stream each, scored on the
  // pool and reported in regime order.
  struct regime_scores {
    double successor = 0.0;
    double match = 0.0;
    double persistence = 0.0;
  };
  exp::thread_pool workers;
  const auto scored =
      exp::parallel_map(workers, regimes.size(), [&](std::size_t i) {
        util::rng rng = util::rng::split(31337, i);
        const auto history = make_history(regimes[i], 72, rng);
        const std::size_t knowledge = 48;
        const auto successor = core::walk_forward_accuracy(
            history, knowledge, core::prediction_mode::successor);
        const auto match = core::walk_forward_accuracy(
            history, knowledge, core::prediction_mode::match);
        return regime_scores{*successor, *match,
                             persistence_accuracy(history, knowledge - 1)};
      });
  for (std::size_t i = 0; i < regimes.size(); ++i) {
    const std::string& regime = regimes[i];
    const double successor = scored[i].successor;
    const double match = scored[i].match;
    const double persistence = scored[i].persistence;
    csv.row_values(regime, successor * 100.0, match * 100.0,
                   persistence * 100.0);
    if (regime == "diurnal") {
      diurnal_successor = successor;
      diurnal_match = match;
    }
    if (regime == "ramp") {
      ramp_successor = successor;
      ramp_persistence = persistence;
    }
    if (regime == "stationary") {
      stationary_gap = std::abs(successor - match);
    }
  }

  checks.expect(stationary_gap < 0.05,
                "modes tie on stationary load",
                bench::ratio_detail("|successor-match|", stationary_gap));
  checks.expect(diurnal_successor >= diurnal_match - 0.01,
                "successor mode matches or beats literal mode on diurnal load",
                bench::ratio_detail("successor-match",
                                    diurnal_successor - diurnal_match));
  checks.expect(diurnal_successor > 0.85,
                "diurnal load is highly predictable with a full period",
                bench::ratio_detail("successor [%]",
                                    diurnal_successor * 100.0));
  // On a monotone ramp the NN can only return the largest load seen — the
  // paper's conservatism remark; persistence (trivially tracking) wins.
  checks.expect(ramp_persistence >= ramp_successor,
                "ramping load exposes the history-bound conservatism",
                bench::ratio_detail("persistence-successor",
                                    ramp_persistence - ramp_successor));
  return checks.finish("ablation_predictor_modes");
}
