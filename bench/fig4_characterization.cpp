// Fig. 4 — response time vs concurrent users for the six general-purpose
// instance types, and their grouping into acceleration levels.
//
// Methodology (§VI-A.1): concurrent mode, random task from the 10-task
// pool, bursts separated by a 1-minute cool-down, load levels
// 1,10,...,100.  The paper's finding: degradation slope flattens as types
// get wider/faster; servers cluster into 3 regular acceleration groups,
// with t2.micro demoted to group 0.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/classifier.h"
#include "exp/runner.h"
#include "util/csv.h"

int main() {
  using namespace mca;
  bench::check_list checks;

  const std::vector<std::string> fig4_types = {
      "t2.nano", "t2.micro", "t2.small", "t2.medium", "t2.large",
      "m4.10xlarge"};

  tasks::task_pool pool;
  core::classifier_config config;
  config.rounds_per_level = 8;
  config.seed = 4242;

  // Each type's 3-hour characterization is an independent simulation;
  // fan the six out over the pool, results back in catalog order.
  exp::thread_pool workers;
  std::vector<core::type_characterization> profiles =
      exp::parallel_map(workers, fig4_types.size(), [&](std::size_t i) {
        return core::characterize_type(cloud::type_by_name(fig4_types[i]),
                                       pool, config);
      });

  bench::section("Fig. 4 data: response time vs concurrent users");
  util::csv_writer csv{std::cout,
                       {"type", "users", "mean_ms", "stddev_ms", "p5_ms",
                        "p95_ms"}};
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (const auto& point : profiles[i].curve) {
      csv.row_values(fig4_types[i], point.users, point.mean_ms,
                     point.stddev_ms, point.p5_ms, point.p95_ms);
    }
  }

  bench::section("capacity under the 500 ms bound (Ks)");
  for (const auto& p : profiles) {
    std::printf("%-14s capacity %3zu users  (solo %.1f ms, 100-user mean "
                "%.0f ms)\n",
                p.type_name.c_str(), p.capacity_users, p.solo_mean_ms,
                p.curve.back().mean_ms);
  }

  bench::section("acceleration groups (paper: 3 regular levels + group 0)");
  std::vector<cloud::instance_type> types;
  for (const auto& name : fig4_types) {
    types.push_back(cloud::type_by_name(name));
  }
  const auto map = core::classify(types, pool, config);
  for (const auto& group : map.groups()) {
    std::printf("level %u:", group.id);
    for (const auto& name : group.type_names) std::printf(" %s", name.c_str());
    std::printf("\n");
  }

  // --- shape checks ---
  const auto& nano = profiles[0];
  const auto& m4 = profiles[5];
  checks.expect(nano.curve.back().mean_ms > nano.curve.front().mean_ms * 10,
                "single-core type degrades steeply (t2.nano)",
                bench::ratio_detail("100-user/solo",
                                    nano.curve.back().mean_ms /
                                        nano.curve.front().mean_ms));
  checks.expect(m4.curve.back().mean_ms < m4.curve.front().mean_ms * 5,
                "wide type stays nearly flat (m4.10xlarge)",
                bench::ratio_detail("100-user/solo",
                                    m4.curve.back().mean_ms /
                                        m4.curve.front().mean_ms));
  // Monotone capability ordering.
  checks.expect(profiles[0].capacity_users < profiles[4].capacity_users &&
                    profiles[4].capacity_users < profiles[5].capacity_users,
                "capacity ordering nano < large < m4.10xlarge",
                "Ks = " + std::to_string(profiles[0].capacity_users) + "/" +
                    std::to_string(profiles[4].capacity_users) + "/" +
                    std::to_string(profiles[5].capacity_users));
  checks.expect(map.group_of("t2.micro") == 0,
                "t2.micro demoted to acceleration group 0", "group 0");
  checks.expect(map.group_of("t2.nano") == map.group_of("t2.small"),
                "t2.nano and t2.small share level 1", "same group");
  checks.expect(map.group_of("t2.medium") == map.group_of("t2.large"),
                "t2.medium and t2.large share level 2", "same group");
  checks.expect(map.max_group() == 3,
                "six Fig. 4 types yield exactly 3 regular levels",
                "max level = " + std::to_string(map.max_group()));
  return checks.finish("fig4_characterization");
}
