// Fig. 5 — separation between acceleration levels under the static
// minimax load, 1..100 concurrent users.
//
// The paper's measured speedups: level 2 executes the task ≈1.25x faster
// than level 1, level 3 ≈1.73x faster than level 1, and level 3 ≈1.36x
// faster than level 2.  Representative servers: t2.small (L1), t2.large
// (L2), m4.10xlarge (L3).
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.h"
#include "exp/curves.h"
#include "exp/runner.h"
#include "tasks/task.h"
#include "util/csv.h"
#include "util/stats.h"

int main() {
  using namespace mca;
  bench::check_list checks;
  tasks::task_pool pool;

  const std::vector<std::pair<int, std::string>> levels = {
      {1, "t2.small"}, {2, "t2.large"}, {3, "m4.10xlarge"}};

  // The per-level load curves are the runner's shared single-server
  // sweep (exp::response_vs_users); the three levels fan out over the
  // pool and land back in level order.
  exp::thread_pool workers;
  const auto level_curves =
      exp::parallel_map(workers, levels.size(), [&](std::size_t i) {
        exp::load_curve_config config;
        config.rounds = 6;
        config.seed = 5'000 + static_cast<std::uint64_t>(levels[i].first);
        return exp::response_vs_users(levels[i].second,
                                      pool.static_minimax_request(), config);
      });

  bench::section("Fig. 5 data: static minimax response time per level");
  util::csv_writer csv{std::cout,
                       {"level", "users", "mean_ms", "p5_ms", "p95_ms"}};
  std::map<int, std::vector<exp::load_curve_point>> curves;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    curves[levels[i].first] = level_curves[i];
    for (const auto& point : level_curves[i]) {
      csv.row_values(levels[i].first, point.users, point.response.mean,
                     point.response.p5, point.response.p95);
    }
  }

  // Speedup ratios at solo execution (the paper's "a task is executed
  // ~X times faster" statement).
  const double level1 = curves[1].front().response.mean;
  const double level2 = curves[2].front().response.mean;
  const double level3 = curves[3].front().response.mean;
  bench::section("acceleration ratios (paper: 1.25x / 1.36x / 1.73x)");
  std::printf("L1/L2 = %.3f   L2/L3 = %.3f   L1/L3 = %.3f\n",
              level1 / level2, level2 / level3, level1 / level3);

  checks.expect(std::abs(level1 / level2 - 1.25) < 0.12,
                "level 2 executes ~1.25x faster than level 1",
                bench::ratio_detail("L1/L2", level1 / level2));
  checks.expect(std::abs(level1 / level3 - 1.73) < 0.17,
                "level 3 executes ~1.73x faster than level 1",
                bench::ratio_detail("L1/L3", level1 / level3));
  checks.expect(std::abs(level2 / level3 - 1.36) < 0.15,
                "level 3 executes ~1.36x faster than level 2",
                bench::ratio_detail("L2/L3", level2 / level3));
  // Separation grows with load: at 100 users L1 is far above L3.
  const double l1_100 = curves[1].back().response.mean;
  const double l3_100 = curves[3].back().response.mean;
  checks.expect(l1_100 > 4.0 * l3_100,
                "levels separate further under concurrent load",
                bench::ratio_detail("L1/L3 @100 users", l1_100 / l3_100));
  // The inset: below 20 users level 1 stays within interactive range.
  checks.expect(curves[1][1].response.mean < 5'000.0,
                "level 1 remains usable at low load (inset)",
                bench::ratio_detail("L1 @10 users [ms]",
                                    curves[1][1].response.mean));
  return checks.finish("fig5_acceleration_levels");
}
