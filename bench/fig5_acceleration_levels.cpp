// Fig. 5 — separation between acceleration levels under the static
// minimax load, 1..100 concurrent users.
//
// The paper's measured speedups: level 2 executes the task ≈1.25x faster
// than level 1, level 3 ≈1.73x faster than level 1, and level 3 ≈1.36x
// faster than level 2.  Representative servers: t2.small (L1), t2.large
// (L2), m4.10xlarge (L3).
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.h"
#include "cloud/instance.h"
#include "sim/simulation.h"
#include "tasks/task.h"
#include "util/csv.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace {

/// Mean response per load level for one server type under static minimax.
std::vector<std::pair<std::size_t, mca::util::summary>> run_level(
    const std::string& type_name, const mca::tasks::task_pool& pool,
    std::uint64_t seed) {
  using namespace mca;
  std::vector<std::pair<std::size_t, util::summary>> curve;
  util::rng seeds{seed};
  for (std::size_t users : {1,  10, 20, 30, 40, 50, 60, 70, 80, 90, 100}) {
    sim::simulation sim;
    cloud::instance server{sim, 1, cloud::type_by_name(type_name),
                           seeds.fork()};
    std::vector<double> responses;
    workload::concurrent_config load;
    load.users = users;
    load.rounds = 6;
    workload::concurrent_generator gen{
        sim, workload::static_source(pool.static_minimax_request()),
        [&](const workload::offload_request& r) {
          server.submit(r.work.work_units(), [&responses](double t) {
            responses.push_back(t);
          });
        },
        load, seeds.fork()};
    sim.run();
    curve.emplace_back(users, util::summary_of(responses));
  }
  return curve;
}

}  // namespace

int main() {
  using namespace mca;
  bench::check_list checks;
  tasks::task_pool pool;

  const std::map<int, std::string> levels = {
      {1, "t2.small"}, {2, "t2.large"}, {3, "m4.10xlarge"}};

  bench::section("Fig. 5 data: static minimax response time per level");
  util::csv_writer csv{std::cout,
                       {"level", "users", "mean_ms", "p5_ms", "p95_ms"}};
  std::map<int, std::vector<std::pair<std::size_t, util::summary>>> curves;
  for (const auto& [level, type] : levels) {
    curves[level] = run_level(type, pool, 5'000 + level);
    for (const auto& [users, s] : curves[level]) {
      csv.row_values(level, users, s.mean, s.p5, s.p95);
    }
  }

  // Speedup ratios at solo execution (the paper's "a task is executed
  // ~X times faster" statement).
  const double level1 = curves[1].front().second.mean;
  const double level2 = curves[2].front().second.mean;
  const double level3 = curves[3].front().second.mean;
  bench::section("acceleration ratios (paper: 1.25x / 1.36x / 1.73x)");
  std::printf("L1/L2 = %.3f   L2/L3 = %.3f   L1/L3 = %.3f\n",
              level1 / level2, level2 / level3, level1 / level3);

  checks.expect(std::abs(level1 / level2 - 1.25) < 0.12,
                "level 2 executes ~1.25x faster than level 1",
                bench::ratio_detail("L1/L2", level1 / level2));
  checks.expect(std::abs(level1 / level3 - 1.73) < 0.17,
                "level 3 executes ~1.73x faster than level 1",
                bench::ratio_detail("L1/L3", level1 / level3));
  checks.expect(std::abs(level2 / level3 - 1.36) < 0.15,
                "level 3 executes ~1.36x faster than level 2",
                bench::ratio_detail("L2/L3", level2 / level3));
  // Separation grows with load: at 100 users L1 is far above L3.
  const double l1_100 = curves[1].back().second.mean;
  const double l3_100 = curves[3].back().second.mean;
  checks.expect(l1_100 > 4.0 * l3_100,
                "levels separate further under concurrent load",
                bench::ratio_detail("L1/L3 @100 users", l1_100 / l3_100));
  // The inset: below 20 users level 1 stays within interactive range.
  checks.expect(curves[1][1].second.mean < 5'000.0,
                "level 1 remains usable at low load (inset)",
                bench::ratio_detail("L1 @10 users [ms]",
                                    curves[1][1].second.mean));
  return checks.finish("fig5_acceleration_levels");
}
