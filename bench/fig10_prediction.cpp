// Fig. 10a — prediction accuracy vs the size of the knowledge base.
//
// The paper trains the edit-distance predictor on a 16-hour history and
// reports ≈87.5% accuracy via 10-fold cross validation, with a bootstrap
// ramp before the knowledge base suffices.  We synthesize a 22-hour
// diurnal workload from the smartphone-study model (with promotion churn,
// so slot composition drifts like the real system's), slice it into
// slots, and score walk-forward accuracy at every knowledge size 2..20
// plus the 10-fold CV number.  Fig. 10b/10c series are emitted by the
// fig9_user_perception bench (same 8-hour run, as in the paper).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "client/usage_trace.h"
#include "core/predictor.h"
#include "exp/runner.h"
#include "trace/log_store.h"
#include "util/csv.h"

namespace {

/// Synthesizes a diurnal multi-user request log across 3 acceleration
/// groups (no backend needed: prediction consumes only <timestamp, user,
/// group> tuples).  Users have a stable home group (most sit at level 1)
/// and occasionally run promoted-by-one — the quasi-stationary composition
/// a long-lived deployment settles into, with promotion churn on top.
mca::trace::log_store synthesize_log(std::size_t users, double hours_total,
                                     std::uint64_t seed) {
  using namespace mca;
  trace::log_store log;
  for (user_id u = 0; u < users; ++u) {
    util::rng stream = util::rng::split(seed, u);
    const double tier = stream.uniform();
    const group_id home = tier < 0.6 ? 1 : (tier < 0.9 ? 2 : 3);
    client::usage_study_config study;
    study.participants = 1;
    study.days = hours_total / 24.0 + 1.0;
    const auto events = client::synthesize_participant_events(study, stream);
    for (const auto t : events) {
      if (t > util::hours(hours_total)) break;
      // The paper's 1/50 static promotion, scoped to the ongoing session.
      const group_id group =
          (home < 3 && stream.bernoulli(1.0 / 50.0)) ? home + 1 : home;
      log.append({t, u, group, 1.0, 300.0});
    }
  }
  return log;
}

}  // namespace

int main() {
  using namespace mca;
  bench::check_list checks;

  const auto log = synthesize_log(100, 40.0, 1016);
  auto all_slots = log.build_slots(util::hours(1.0), 4);
  // The paper removes long inactive (night) periods from the data; empty
  // slots carry no workload evidence and are dropped the same way.
  std::vector<trace::time_slot> slots;
  for (auto& slot : all_slots) {
    if (!slot.empty()) slots.push_back(std::move(slot));
  }
  std::printf("history: %zu active hourly slots (of %zu) from %zu trace "
              "records\n",
              slots.size(), all_slots.size(), log.size());

  bench::section("Fig. 10a data: accuracy vs size of the data");
  util::csv_writer csv{std::cout,
                       {"history_slots", "accuracy_pct", "mode"}};
  std::vector<double> accuracy_by_size(21, 0.0);
  // Every knowledge size scores the full history walk-forward — 19
  // independent sweeps, fanned out over the pool in size order.
  struct size_score {
    std::optional<double> successor;
    std::optional<double> match;
  };
  exp::thread_pool workers;
  const auto scores = exp::parallel_map(workers, 19, [&](std::size_t i) {
    const std::size_t size = i + 2;
    return size_score{
        core::walk_forward_accuracy(slots, size,
                                    core::prediction_mode::successor),
        core::walk_forward_accuracy(slots, size,
                                    core::prediction_mode::match)};
  });
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const std::size_t size = i + 2;
    if (scores[i].successor) {
      csv.row_values(size, *scores[i].successor * 100.0,
                     core::to_string(core::prediction_mode::successor));
      accuracy_by_size[size] = *scores[i].successor;
    }
    if (scores[i].match) {
      csv.row_values(size, *scores[i].match * 100.0,
                     core::to_string(core::prediction_mode::match));
    }
  }

  bench::section("10-fold cross validation (paper: ~87.5%)");
  const auto cv = core::cross_validate(slots, 10);
  std::printf("mean accuracy: %.1f%%   folds:", cv.mean_accuracy * 100.0);
  for (const double fold : cv.fold_accuracy) {
    std::printf(" %.0f%%", fold * 100.0);
  }
  std::printf("\n");

  // ---- shape checks ----
  checks.expect(accuracy_by_size[4] < accuracy_by_size[20] + 0.02,
                "bootstrap: accuracy climbs as the knowledge base grows",
                bench::ratio_detail("acc@4 vs acc@20",
                                    accuracy_by_size[20] -
                                        accuracy_by_size[4]));
  checks.expect(accuracy_by_size[20] > 0.80,
                "mature knowledge base predicts above 80%",
                bench::ratio_detail("acc@20 [%]",
                                    accuracy_by_size[20] * 100.0));
  checks.expect(std::abs(cv.mean_accuracy - 0.875) < 0.10,
                "10-fold CV accuracy lands near the paper's 87.5%",
                bench::ratio_detail("CV accuracy [%]",
                                    cv.mean_accuracy * 100.0));
  checks.expect(cv.fold_accuracy.size() == 10,
                "all ten folds scored", "10 folds");
  return checks.finish("fig10_prediction");
}
