// Fig. 11 — 3G vs LTE round-trip latency by hour of day, per operator.
//
// The paper aggregates NetRadar measurements from three anonymized Finnish
// operators and reports, per operator and technology, the mean / SD /
// median RTT (3G: 128/141/137 ms means; LTE: 41/36/42 ms).  We replay a
// synthetic campaign of the same sample sizes against the calibrated
// mixture models and reproduce both the hour-of-day curves and the
// summary statistics.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "net/netradar.h"
#include "util/csv.h"

int main() {
  using namespace mca;
  bench::check_list checks;
  util::rng rng{1111};

  bench::section("Fig. 11 data: mean RTT per hour of day");
  util::csv_writer csv{std::cout,
                       {"operator", "technology", "hour", "mean_rtt_ms",
                        "samples"}};

  for (const auto& op : net::netradar_operators()) {
    for (const auto tech : {net::technology::threeg, net::technology::lte}) {
      const std::size_t count = (tech == net::technology::threeg)
                                    ? op.samples_threeg
                                    : op.samples_lte;
      const auto samples = net::generate_campaign(op, tech, count, rng);
      const auto series = net::aggregate_hourly(samples);
      for (std::size_t hour = 0; hour < 24; ++hour) {
        csv.row_values(op.name, net::to_string(tech), hour,
                       series.mean_rtt_ms[hour], series.sample_count[hour]);
      }

      const auto summary = net::campaign_summary(samples);
      const auto& target =
          (tech == net::technology::threeg) ? op.threeg : op.lte;
      std::printf("# %s %s: mean %.0f ms (paper %.0f), median %.0f (paper "
                  "%.0f), SD %.0f (paper %.0f), %zu samples\n",
                  op.name.c_str(), net::to_string(tech), summary.mean,
                  target.mean_ms, summary.median, target.median_ms,
                  summary.stddev, target.stddev_ms, samples.size());

      const std::string label = op.name + "-" + net::to_string(tech);
      checks.expect(std::abs(summary.mean - target.mean_ms) <
                        target.mean_ms * 0.10,
                    label + ": mean matches the paper",
                    bench::ratio_detail("mean [ms]", summary.mean));
      checks.expect(std::abs(summary.median - target.median_ms) <
                        target.median_ms * 0.10,
                    label + ": median matches the paper",
                    bench::ratio_detail("median [ms]", summary.median));
      checks.expect(std::abs(summary.stddev - target.stddev_ms) <
                        target.stddev_ms * 0.15,
                    label + ": SD matches the paper",
                    bench::ratio_detail("SD [ms]", summary.stddev));
    }

    // Per-operator 3G vs LTE relation (the figure's visual core).
    const auto threeg =
        net::generate_campaign(op, net::technology::threeg, 50'000, rng);
    const auto lte =
        net::generate_campaign(op, net::technology::lte, 50'000, rng);
    checks.expect(net::campaign_summary(threeg).mean >
                      2.0 * net::campaign_summary(lte).mean,
                  op.name + ": 3G sits far above LTE",
                  "3G/LTE mean ratio > 2");
  }

  std::printf("\n(conclusion the paper draws: LTE is low-latency enough for "
              "offloading in the wild)\n");
  return checks.finish("fig11_network_latency");
}
