// Fig. 11 — 3G vs LTE round-trip latency by hour of day, per operator.
//
// The paper aggregates NetRadar measurements from three anonymized Finnish
// operators and reports, per operator and technology, the mean / SD /
// median RTT (3G: 128/141/137 ms means; LTE: 41/36/42 ms).  We replay a
// synthetic campaign of the same sample sizes against the calibrated
// mixture models and reproduce both the hour-of-day curves and the
// summary statistics.  The per-operator campaigns are independent — each
// draws from its own rng::split stream and fans out over the pool.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "exp/runner.h"
#include "net/netradar.h"
#include "util/csv.h"

namespace {

using namespace mca;

/// Everything Fig. 11 plots/checks for one operator.
struct operator_report {
  net::hourly_series series_threeg;
  net::hourly_series series_lte;
  util::summary summary_threeg;
  util::summary summary_lte;
  std::size_t samples_threeg = 0;
  std::size_t samples_lte = 0;
  /// Equal-size 50k-sample campaigns for the 3G-vs-LTE relation check.
  double comparison_mean_threeg = 0.0;
  double comparison_mean_lte = 0.0;
};

operator_report run_operator(const net::operator_profile& op,
                             std::uint64_t stream_id) {
  util::rng rng = util::rng::split(1111, stream_id);
  operator_report report;
  const auto threeg =
      net::generate_campaign(op, net::technology::threeg, op.samples_threeg,
                             rng);
  const auto lte =
      net::generate_campaign(op, net::technology::lte, op.samples_lte, rng);
  report.series_threeg = net::aggregate_hourly(threeg);
  report.series_lte = net::aggregate_hourly(lte);
  report.summary_threeg = net::campaign_summary(threeg);
  report.summary_lte = net::campaign_summary(lte);
  report.samples_threeg = threeg.size();
  report.samples_lte = lte.size();
  const auto compare_threeg =
      net::generate_campaign(op, net::technology::threeg, 50'000, rng);
  const auto compare_lte =
      net::generate_campaign(op, net::technology::lte, 50'000, rng);
  report.comparison_mean_threeg = net::campaign_summary(compare_threeg).mean;
  report.comparison_mean_lte = net::campaign_summary(compare_lte).mean;
  return report;
}

}  // namespace

int main() {
  bench::check_list checks;

  const auto operators = net::netradar_operators();
  exp::thread_pool workers;
  const auto reports =
      exp::parallel_map(workers, operators.size(), [&](std::size_t i) {
        return run_operator(operators[i], i);
      });

  bench::section("Fig. 11 data: mean RTT per hour of day");
  util::csv_writer csv{std::cout,
                       {"operator", "technology", "hour", "mean_rtt_ms",
                        "samples"}};

  for (std::size_t i = 0; i < operators.size(); ++i) {
    const auto& op = operators[i];
    const auto& report = reports[i];
    for (const auto tech : {net::technology::threeg, net::technology::lte}) {
      const bool is_threeg = tech == net::technology::threeg;
      const auto& series =
          is_threeg ? report.series_threeg : report.series_lte;
      for (std::size_t hour = 0; hour < 24; ++hour) {
        csv.row_values(op.name, net::to_string(tech), hour,
                       series.mean_rtt_ms[hour], series.sample_count[hour]);
      }

      const auto& summary =
          is_threeg ? report.summary_threeg : report.summary_lte;
      const auto& target = is_threeg ? op.threeg : op.lte;
      const std::size_t samples =
          is_threeg ? report.samples_threeg : report.samples_lte;
      std::printf("# %s %s: mean %.0f ms (paper %.0f), median %.0f (paper "
                  "%.0f), SD %.0f (paper %.0f), %zu samples\n",
                  op.name.c_str(), net::to_string(tech), summary.mean,
                  target.mean_ms, summary.median, target.median_ms,
                  summary.stddev, target.stddev_ms, samples);

      const std::string label = op.name + "-" + net::to_string(tech);
      checks.expect(std::abs(summary.mean - target.mean_ms) <
                        target.mean_ms * 0.10,
                    label + ": mean matches the paper",
                    bench::ratio_detail("mean [ms]", summary.mean));
      checks.expect(std::abs(summary.median - target.median_ms) <
                        target.median_ms * 0.10,
                    label + ": median matches the paper",
                    bench::ratio_detail("median [ms]", summary.median));
      checks.expect(std::abs(summary.stddev - target.stddev_ms) <
                        target.stddev_ms * 0.15,
                    label + ": SD matches the paper",
                    bench::ratio_detail("SD [ms]", summary.stddev));
    }

    // Per-operator 3G vs LTE relation (the figure's visual core).
    checks.expect(report.comparison_mean_threeg >
                      2.0 * report.comparison_mean_lte,
                  op.name + ": 3G sits far above LTE",
                  "3G/LTE mean ratio > 2");
  }

  std::printf("\n(conclusion the paper draws: LTE is low-latency enough for "
              "offloading in the wild)\n");
  return checks.finish("fig11_network_latency");
}
