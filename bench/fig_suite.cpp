// fig_suite — the replicated closed-loop figure scenarios on the
// experiment runner (src/exp), timed serial vs parallel.
//
// For every selected scenario the suite runs the same replication plan
// twice: once on a 1-worker pool and once on a --jobs pool.  The two
// merged aggregates must be byte-identical (fingerprint check, gated);
// the wall-time ratio is the parallel speedup, recorded in
// BENCH_figures.json next to BENCH_micro_ops.json so end-to-end
// regressions are visible PR over PR, not just hot-path ones.
//
// Usage:
//   fig_suite [--scenario NAME] [--replications R] [--seeds a,b,c]
//             [--jobs N] [--out PATH] [--list]
//
// The >2x speedup gate applies only when the machine actually has >= 4
// hardware threads; on smaller machines (and throttled CI runners) the
// ratio is reported but advisory.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exp/bench_clock.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/thread_pool.h"
#include "obs/slo.h"
#include "tasks/task.h"

namespace {

using namespace mca;

struct figure_record {
  std::string name;
  std::size_t replications = 0;
  std::size_t jobs = 0;
  double wall_seconds_serial = 0.0;
  double wall_seconds_parallel = 0.0;
  double speedup = 0.0;
  bool deterministic = false;
  std::uint64_t fingerprint = 0;
  std::size_t requests = 0;
  double acceptance_pct = 0.0;
  double mean_response_ms = 0.0;
  double mean_cost_usd = 0.0;
  /// Response-time percentiles off the merged latency histogram
  /// (within-bin interpolated; the SLO columns of Fig. 9-style tables).
  obs::slo_row slo;
  std::size_t errors = 0;
};

bool write_figures_json(const std::string& path, std::size_t jobs,
                        std::size_t hardware_threads,
                        const std::vector<figure_record>& figures,
                        bool checks_passed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "fig_suite: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig_suite\",\n  \"schema\": 1,\n");
  std::fprintf(f, "  \"jobs\": %zu,\n  \"hardware_threads\": %zu,\n", jobs,
               hardware_threads);
  std::fprintf(f, "  \"checks_passed\": %s,\n",
               checks_passed ? "true" : "false");
  std::fprintf(f, "  \"figures\": [\n");
  for (std::size_t i = 0; i < figures.size(); ++i) {
    const auto& fig = figures[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"replications\": %zu, ",
                 fig.name.c_str(), fig.replications);
    std::fprintf(f, "\"jobs\": %zu, \"errors\": %zu,\n", fig.jobs, fig.errors);
    std::fprintf(f,
                 "     \"wall_seconds_serial\": %.4f, "
                 "\"wall_seconds_parallel\": %.4f, \"speedup\": %.3f,\n",
                 fig.wall_seconds_serial, fig.wall_seconds_parallel,
                 fig.speedup);
    std::fprintf(f,
                 "     \"deterministic\": %s, \"fingerprint\": "
                 "\"%016llx\",\n",
                 fig.deterministic ? "true" : "false",
                 static_cast<unsigned long long>(fig.fingerprint));
    std::fprintf(f,
                 "     \"requests\": %zu, \"acceptance_pct\": %.2f, "
                 "\"mean_response_ms\": %.2f, \"mean_cost_usd\": %.4f,\n",
                 fig.requests, fig.acceptance_pct, fig.mean_response_ms,
                 fig.mean_cost_usd);
    std::fprintf(f,
                 "     \"slo_ms\": {\"samples\": %zu, \"p50\": %.2f, "
                 "\"p95\": %.2f, \"p99\": %.2f, \"p999\": %.2f}}%s\n",
                 fig.slo.samples, fig.slo.p50_ms, fig.slo.p95_ms,
                 fig.slo.p99_ms, fig.slo.p999_ms,
                 i + 1 < figures.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scenarios = exp::builtin_scenarios();
  if (bench::has_flag(argc, argv, "--list")) {
    for (const auto& spec : scenarios) {
      std::printf("%-18s %4zu users, %5.1f h, %s tasks, %s gaps\n",
                  spec.name.c_str(), spec.user_count,
                  spec.duration / util::hours(1.0),
                  exp::to_string(spec.tasks), exp::to_string(spec.gaps));
    }
    return 0;
  }

  const auto filter = bench::flag_value(argc, argv, "--scenario");
  const std::size_t replications =
      bench::flag_count(argc, argv, "--replications", 6, "fig_suite");
  const std::size_t hardware = exp::thread_pool::hardware_workers();
  const std::size_t jobs =
      bench::flag_count(argc, argv, "--jobs", hardware, "fig_suite");
  const std::string out_path = bench::flag_value(argc, argv, "--out")
                                   .value_or("BENCH_figures.json");
  std::optional<std::vector<std::uint64_t>> explicit_seeds;
  if (const auto seeds = bench::flag_value(argc, argv, "--seeds")) {
    explicit_seeds = bench::parse_id_list(*seeds);
    if (explicit_seeds->empty()) {
      std::fprintf(stderr,
                   "fig_suite: --seeds needs a comma-separated integer "
                   "list, got '%s'\n",
                   seeds->c_str());
      return 2;
    }
  }

  bench::check_list checks;
  tasks::task_pool task_pool;
  std::vector<figure_record> figures;

  bool matched_any = false;
  for (const auto& spec : scenarios) {
    if (filter && spec.name != *filter) continue;
    matched_any = true;

    const exp::replication_plan plan =
        explicit_seeds ? exp::replication_plan::explicit_seeds(*explicit_seeds)
                       : spec.plan(replications);

    bench::section(spec.name + " (" + std::to_string(plan.count()) +
                   " replications)");

    exp::scenario_result serial;
    {
      exp::thread_pool pool{1};
      serial = exp::run_scenario(spec, plan, task_pool, pool);
    }
    exp::scenario_result parallel;
    if (jobs > 1) {
      exp::thread_pool pool{jobs};
      parallel = exp::run_scenario(spec, plan, task_pool, pool);
    } else {
      parallel = serial;
    }

    figure_record record;
    record.name = spec.name;
    record.replications = plan.count();
    record.jobs = jobs;
    record.wall_seconds_serial = serial.wall_seconds;
    record.wall_seconds_parallel = parallel.wall_seconds;
    record.speedup = jobs > 1 && parallel.wall_seconds > 0.0
                         ? serial.wall_seconds / parallel.wall_seconds
                         : 1.0;
    record.deterministic = parallel.aggregate.fingerprint() ==
                           serial.aggregate.fingerprint();
    record.fingerprint = serial.aggregate.fingerprint();
    record.requests = serial.aggregate.requests;
    record.acceptance_pct = serial.aggregate.acceptance_rate() * 100.0;
    record.mean_response_ms = serial.aggregate.response.mean();
    record.mean_cost_usd = serial.aggregate.cost_usd.mean();
    record.slo = obs::slo_from_histogram(serial.aggregate.latency, spec.name);
    // At jobs <= 1 `parallel` is a copy of `serial`, not a second run.
    record.errors = serial.errors.size() +
                    (jobs > 1 ? parallel.errors.size() : 0);

    std::printf(
        "serial %6.2f s   jobs=%zu %6.2f s   speedup %.2fx\n"
        "requests %zu   acceptance %.1f%%   mean response %.0f ms   "
        "p50/p95/p99 %.0f/%.0f/%.0f ms   mean cost $%.3f\n",
        record.wall_seconds_serial, jobs, record.wall_seconds_parallel,
        record.speedup, record.requests, record.acceptance_pct,
        record.mean_response_ms, record.slo.p50_ms, record.slo.p95_ms,
        record.slo.p99_ms, record.mean_cost_usd);

    checks.expect(record.errors == 0, spec.name + ": no failed replications",
                  std::to_string(record.errors) + " errors");
    checks.expect(record.deterministic,
                  spec.name + ": merged metrics identical at 1 and " +
                      std::to_string(jobs) + " threads",
                  bench::ratio_detail("fingerprint xor",
                                      static_cast<double>(
                                          serial.aggregate.fingerprint() ^
                                          parallel.aggregate.fingerprint())));
    if (jobs >= 4 && hardware >= 4) {
      checks.expect(record.speedup > 2.0,
                    spec.name + ": >2x speedup at " + std::to_string(jobs) +
                        " jobs",
                    bench::ratio_detail("speedup", record.speedup));
    } else if (jobs > 1) {
      std::printf("(speedup gate advisory: %zu hardware threads)\n", hardware);
    }
    figures.push_back(record);
  }

  if (!matched_any) {
    std::fprintf(stderr, "fig_suite: no scenario named '%s' (see --list)\n",
                 filter ? filter->c_str() : "");
    return 2;
  }

  const int exit_code = checks.finish("fig_suite");
  if (!write_figures_json(out_path, jobs, hardware, figures,
                          exit_code == 0)) {
    return 1;
  }
  return exit_code;
}
