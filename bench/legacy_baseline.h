// Frozen pre-refactor ("seed") implementations of the three hot paths,
// kept verbatim under mca::legacy so micro_ops can report real speedups
// against the same binary.  Do NOT modernize this file: its whole value is
// that it stays byte-for-byte the algorithmic shape the repo started with
// (std::priority_queue + hash-set event loop, vector-of-vectors Bland
// simplex, rebuild-per-node branch & bound, full-column-scan allocator).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cloud/instance_type.h"
#include "core/allocator.h"
#include "ilp/problem.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace mca::legacy {

// ---- seed event loop -----------------------------------------------------

struct event_handle {
  std::uint64_t id = 0;
  bool valid() const noexcept { return id != 0; }
};

class simulation {
 public:
  using callback = std::function<void()>;

  util::time_ms now() const noexcept { return now_; }

  event_handle schedule_at(util::time_ms at, callback fn) {
    if (!fn) throw std::invalid_argument{"schedule_at: empty callback"};
    const std::uint64_t id = next_id_++;
    queue_.push(
        scheduled{std::max(at, now_), next_sequence_++, id, std::move(fn)});
    pending_ids_.insert(id);
    return event_handle{id};
  }

  event_handle schedule_after(util::time_ms delay, callback fn) {
    if (delay < 0) {
      throw std::invalid_argument{"schedule_after: negative delay"};
    }
    return schedule_at(now_ + delay, std::move(fn));
  }

  void cancel(event_handle handle) noexcept {
    if (handle.valid() && pending_ids_.erase(handle.id) > 0) {
      cancelled_.insert(handle.id);
    }
  }

  bool step() {
    skip_cancelled();
    if (queue_.empty()) return false;
    scheduled next = std::move(const_cast<scheduled&>(queue_.top()));
    queue_.pop();
    pending_ids_.erase(next.id);
    now_ = next.at;
    ++executed_;
    next.fn();
    return true;
  }

  void run() {
    while (step()) {
    }
  }

  std::size_t pending_events() const noexcept { return pending_ids_.size(); }
  std::size_t executed_events() const noexcept { return executed_; }

 private:
  struct scheduled {
    util::time_ms at = 0;
    std::uint64_t sequence = 0;
    std::uint64_t id = 0;
    callback fn;
  };
  struct later {
    bool operator()(const scheduled& a, const scheduled& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  void skip_cancelled() {
    while (!queue_.empty() && cancelled_.count(queue_.top().id) != 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
  }

  util::time_ms now_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_sequence_ = 0;
  std::size_t executed_ = 0;
  std::priority_queue<scheduled, std::vector<scheduled>, later> queue_;
  std::unordered_set<std::uint64_t> pending_ids_;
  std::unordered_set<std::uint64_t> cancelled_;
};

// ---- seed two-phase simplex (vector-of-vectors, Bland's rule) ------------

namespace detail {

constexpr double kInf = std::numeric_limits<double>::infinity();

class tableau {
 public:
  tableau(const ilp::problem& p, double tol) : tol_{tol} { build(p); }

  ilp::solution run(const ilp::problem& p, const ilp::simplex_options& opts);

 private:
  struct row_form {
    std::vector<double> coeffs;
    ilp::relation rel;
    double rhs;
  };

  void build(const ilp::problem& p);
  bool pivot_until_optimal(std::vector<double>& cost, double& objective,
                           std::size_t max_iters, std::size_t& used);
  void pivot(std::size_t row, std::size_t col);
  void price_out_basis(std::vector<double>& cost, double& objective) const;

  double tol_;
  std::size_t num_structural_ = 0;
  std::size_t num_cols_ = 0;
  std::size_t first_artificial_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<double> rhs_;
  std::vector<std::size_t> basis_;
  std::vector<double> shift_;
  double shift_cost_ = 0.0;
};

inline void tableau::build(const ilp::problem& p) {
  const std::size_t n = p.variable_count();
  num_structural_ = n;
  shift_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto& v = p.variable(j);
    if (!std::isfinite(v.lower)) {
      throw std::invalid_argument{
          "solve_lp: variable lower bound must be finite"};
    }
    shift_[j] = v.lower;
    shift_cost_ += v.cost * v.lower;
  }

  std::vector<row_form> forms;
  forms.reserve(p.constraint_count() + n);
  for (std::size_t i = 0; i < p.constraint_count(); ++i) {
    const auto& c = p.constraint(i);
    row_form f;
    f.coeffs.assign(n, 0.0);
    f.rhs = c.rhs;
    f.rel = c.rel;
    for (const auto& t : c.terms) {
      f.coeffs[t.var] += t.coeff;
      f.rhs -= t.coeff * shift_[t.var];
    }
    forms.push_back(std::move(f));
  }
  for (std::size_t j = 0; j < n; ++j) {
    const auto& v = p.variable(j);
    if (!std::isfinite(v.upper)) continue;
    row_form f;
    f.coeffs.assign(n, 0.0);
    f.coeffs[j] = 1.0;
    f.rel = ilp::relation::less_equal;
    f.rhs = v.upper - v.lower;
    forms.push_back(std::move(f));
  }

  for (auto& f : forms) {
    if (f.rhs < 0) {
      for (auto& c : f.coeffs) c = -c;
      f.rhs = -f.rhs;
      if (f.rel == ilp::relation::less_equal) {
        f.rel = ilp::relation::greater_equal;
      } else if (f.rel == ilp::relation::greater_equal) {
        f.rel = ilp::relation::less_equal;
      }
    }
  }

  std::size_t slack = 0;
  std::size_t artificial = 0;
  for (const auto& f : forms) {
    switch (f.rel) {
      case ilp::relation::less_equal: ++slack; break;
      case ilp::relation::greater_equal: ++slack; ++artificial; break;
      case ilp::relation::equal: ++artificial; break;
    }
  }
  first_artificial_ = n + slack;
  num_cols_ = first_artificial_ + artificial;

  rows_.assign(forms.size(), std::vector<double>(num_cols_, 0.0));
  rhs_.resize(forms.size());
  basis_.resize(forms.size());

  std::size_t next_slack = n;
  std::size_t next_artificial = first_artificial_;
  for (std::size_t i = 0; i < forms.size(); ++i) {
    const auto& f = forms[i];
    std::copy(f.coeffs.begin(), f.coeffs.end(), rows_[i].begin());
    rhs_[i] = f.rhs;
    switch (f.rel) {
      case ilp::relation::less_equal:
        rows_[i][next_slack] = 1.0;
        basis_[i] = next_slack++;
        break;
      case ilp::relation::greater_equal:
        rows_[i][next_slack++] = -1.0;
        rows_[i][next_artificial] = 1.0;
        basis_[i] = next_artificial++;
        break;
      case ilp::relation::equal:
        rows_[i][next_artificial] = 1.0;
        basis_[i] = next_artificial++;
        break;
    }
  }
}

inline void tableau::pivot(std::size_t prow, std::size_t pcol) {
  auto& pivot_row = rows_[prow];
  const double pv = pivot_row[pcol];
  for (auto& c : pivot_row) c /= pv;
  rhs_[prow] /= pv;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (i == prow) continue;
    const double factor = rows_[i][pcol];
    if (std::abs(factor) < tol_) continue;
    for (std::size_t j = 0; j < num_cols_; ++j) {
      rows_[i][j] -= factor * pivot_row[j];
    }
    rhs_[i] -= factor * rhs_[prow];
  }
  basis_[prow] = pcol;
}

inline void tableau::price_out_basis(std::vector<double>& cost,
                                     double& objective) const {
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const double factor = cost[basis_[i]];
    if (std::abs(factor) < tol_) continue;
    for (std::size_t j = 0; j < num_cols_; ++j) {
      cost[j] -= factor * rows_[i][j];
    }
    objective -= factor * rhs_[i];
  }
}

inline bool tableau::pivot_until_optimal(std::vector<double>& cost,
                                         double& objective,
                                         std::size_t max_iters,
                                         std::size_t& used) {
  while (used < max_iters) {
    std::size_t entering = num_cols_;
    for (std::size_t j = 0; j < num_cols_; ++j) {
      if (cost[j] < -tol_) {
        entering = j;
        break;
      }
    }
    if (entering == num_cols_) return true;

    std::size_t leaving = rows_.size();
    double best_ratio = kInf;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const double a = rows_[i][entering];
      if (a <= tol_) continue;
      const double ratio = rhs_[i] / a;
      if (ratio < best_ratio - tol_ ||
          (ratio < best_ratio + tol_ &&
           (leaving == rows_.size() || basis_[i] < basis_[leaving]))) {
        best_ratio = ratio;
        leaving = i;
      }
    }
    if (leaving == rows_.size()) return false;

    const double factor = cost[entering];
    pivot(leaving, entering);
    for (std::size_t j = 0; j < num_cols_; ++j) {
      cost[j] -= factor * rows_[leaving][j];
    }
    objective -= factor * rhs_[leaving];
    ++used;
  }
  return true;
}

inline ilp::solution tableau::run(const ilp::problem& p,
                                  const ilp::simplex_options& opts) {
  ilp::solution result;
  std::size_t used = 0;

  if (first_artificial_ < num_cols_) {
    std::vector<double> cost(num_cols_, 0.0);
    for (std::size_t j = first_artificial_; j < num_cols_; ++j) cost[j] = 1.0;
    double phase1_obj = 0.0;
    price_out_basis(cost, phase1_obj);
    if (!pivot_until_optimal(cost, phase1_obj, opts.max_iterations, used)) {
      result.status = ilp::solve_status::iteration_limit;
      return result;
    }
    if (used >= opts.max_iterations) {
      result.status = ilp::solve_status::iteration_limit;
      return result;
    }
    if (-phase1_obj > 1e-7) {
      result.status = ilp::solve_status::infeasible;
      return result;
    }
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (basis_[i] < first_artificial_) continue;
      std::size_t replacement = first_artificial_;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (std::abs(rows_[i][j]) > tol_) {
          replacement = j;
          break;
        }
      }
      if (replacement < first_artificial_) {
        pivot(i, replacement);
      }
    }
  }

  std::vector<double> cost(num_cols_, 0.0);
  for (std::size_t j = 0; j < num_structural_; ++j) {
    cost[j] = p.variable(j).cost;
  }
  for (std::size_t j = first_artificial_; j < num_cols_; ++j) cost[j] = kInf;
  double objective = 0.0;
  price_out_basis(cost, objective);
  for (std::size_t j = first_artificial_; j < num_cols_; ++j) {
    if (std::isnan(cost[j])) cost[j] = kInf;
    cost[j] = std::max(cost[j], 0.0);
  }
  if (!pivot_until_optimal(cost, objective, opts.max_iterations, used)) {
    result.status = ilp::solve_status::unbounded;
    return result;
  }
  if (used >= opts.max_iterations) {
    result.status = ilp::solve_status::iteration_limit;
    return result;
  }

  result.status = ilp::solve_status::optimal;
  result.values.assign(p.variable_count(), 0.0);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (basis_[i] < num_structural_) {
      result.values[basis_[i]] = rhs_[i];
    }
  }
  for (std::size_t j = 0; j < p.variable_count(); ++j) {
    result.values[j] += shift_[j];
  }
  result.objective = p.objective_value(result.values);
  result.iterations = used;
  return result;
}

}  // namespace detail

inline ilp::solution solve_lp(const ilp::problem& p,
                              const ilp::simplex_options& opts = {}) {
  if (p.variable_count() == 0) {
    throw std::invalid_argument{"solve_lp: problem has no variables"};
  }
  detail::tableau t{p, opts.tolerance};
  return t.run(p, opts);
}

// ---- seed branch & bound (scratch problem copy + rebuild per node) -------

inline ilp::solution solve_ilp(const ilp::problem& p,
                               const ilp::ilp_options& opts = {}) {
  if (!p.has_integer_variables()) return legacy::solve_lp(p, opts.lp);

  struct node {
    std::vector<std::pair<std::size_t, std::pair<double, double>>> bounds;
  };

  const auto most_fractional =
      [&p](const std::vector<double>& x,
           double tol) -> std::optional<std::size_t> {
    std::optional<std::size_t> best;
    double best_frac_distance = tol;
    for (std::size_t j = 0; j < p.variable_count(); ++j) {
      if (!p.variable(j).is_integer) continue;
      const double frac = x[j] - std::floor(x[j]);
      const double distance = std::min(frac, 1.0 - frac);
      if (distance > best_frac_distance) {
        best_frac_distance = distance;
        best = j;
      }
    }
    return best;
  };

  ilp::solution incumbent;
  incumbent.status = ilp::solve_status::infeasible;
  incumbent.objective = std::numeric_limits<double>::infinity();

  std::vector<node> stack;
  stack.push_back({});
  std::size_t explored = 0;
  bool root_unbounded = false;
  bool budget_exhausted = false;

  ilp::problem scratch = p;
  while (!stack.empty()) {
    if (explored >= opts.max_nodes) {
      budget_exhausted = true;
      break;
    }
    ++explored;
    const node current = std::move(stack.back());
    stack.pop_back();

    scratch = p;
    bool empty_box = false;
    for (const auto& [var, box] : current.bounds) {
      if (box.first > box.second) {
        empty_box = true;
        break;
      }
      const auto& v = scratch.variable(var);
      const double lo = std::max(v.lower, box.first);
      const double hi = std::min(v.upper, box.second);
      if (lo > hi) {
        empty_box = true;
        break;
      }
      scratch.set_bounds(var, lo, hi);
    }
    if (empty_box) continue;

    const ilp::solution relaxed = legacy::solve_lp(scratch, opts.lp);
    if (relaxed.status == ilp::solve_status::unbounded) {
      if (current.bounds.empty()) root_unbounded = true;
      continue;
    }
    if (relaxed.status != ilp::solve_status::optimal) continue;
    if (relaxed.objective >= incumbent.objective - 1e-9) continue;

    const auto branch_var =
        most_fractional(relaxed.values, opts.integrality_tolerance);
    if (!branch_var) {
      ilp::solution candidate = relaxed;
      for (std::size_t j = 0; j < p.variable_count(); ++j) {
        if (p.variable(j).is_integer) {
          candidate.values[j] = std::round(candidate.values[j]);
        }
      }
      candidate.objective = p.objective_value(candidate.values);
      if (p.is_feasible(candidate.values) &&
          candidate.objective < incumbent.objective) {
        incumbent = candidate;
        incumbent.status = ilp::solve_status::optimal;
      }
      continue;
    }

    const std::size_t j = *branch_var;
    const double value = relaxed.values[j];
    constexpr double kInf = std::numeric_limits<double>::infinity();

    node down = current;
    down.bounds.emplace_back(j, std::make_pair(-kInf, std::floor(value)));
    node up = current;
    up.bounds.emplace_back(j, std::make_pair(std::ceil(value), kInf));
    if (value - std::floor(value) < 0.5) {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    } else {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    }
  }

  if (budget_exhausted) {
    incumbent.status = ilp::solve_status::iteration_limit;
    return incumbent;
  }
  if (incumbent.status != ilp::solve_status::optimal && root_unbounded) {
    incumbent.status = ilp::solve_status::unbounded;
  }
  return incumbent;
}

// ---- seed ILP allocator (full column scans per group) --------------------

inline core::allocation_plan allocate_ilp(const core::allocation_request& request) {
  core::validate(request);
  struct column {
    group_id group = 0;
    std::size_t candidate = 0;
  };
  std::vector<column> columns;
  for (group_id g = 0; g < request.candidates_per_group.size(); ++g) {
    for (std::size_t c = 0; c < request.candidates_per_group[g].size(); ++c) {
      columns.push_back({g, c});
    }
  }
  if (columns.empty()) {
    throw std::invalid_argument{"allocate_ilp: no candidates at all"};
  }

  ilp::problem model;
  for (const auto& col : columns) {
    const auto& cand = request.candidates_per_group[col.group][col.candidate];
    model.add_integer_variable(
        cand.cost_per_hour, 0.0,
        static_cast<double>(request.max_total_instances),
        cand.type_name + "@g" + std::to_string(col.group));
  }

  const std::size_t group_count = request.workload_per_group.size();
  for (group_id g = 0; g < group_count; ++g) {
    std::vector<ilp::linear_term> terms;
    double demand = 0.0;
    if (request.cumulative_capacity) {
      for (std::size_t i = 0; i < columns.size(); ++i) {
        if (columns[i].group < g) continue;
        const auto& cand =
            request.candidates_per_group[columns[i].group][columns[i].candidate];
        terms.push_back({i, cand.capacity_per_instance});
      }
      for (group_id h = g; h < group_count; ++h) {
        demand += request.workload_per_group[h];
      }
    } else {
      for (std::size_t i = 0; i < columns.size(); ++i) {
        if (columns[i].group != g) continue;
        const auto& cand =
            request.candidates_per_group[g][columns[i].candidate];
        terms.push_back({i, cand.capacity_per_instance});
      }
      demand = request.workload_per_group[g];
    }
    if (terms.empty()) continue;  // bench requests always have candidates
    model.add_constraint(std::move(terms), ilp::relation::greater_equal,
                         demand + request.capacity_margin,
                         "workload_g" + std::to_string(g));
  }

  {
    std::vector<ilp::linear_term> cap_terms;
    for (std::size_t i = 0; i < columns.size(); ++i) {
      cap_terms.push_back({i, 1.0});
    }
    model.add_constraint(std::move(cap_terms), ilp::relation::less_equal,
                         static_cast<double>(request.max_total_instances),
                         "account_cap");
  }

  const ilp::solution solved = legacy::solve_ilp(model);
  core::allocation_plan plan;
  plan.status = solved.status;
  if (solved.status != ilp::solve_status::optimal) return plan;

  for (std::size_t i = 0; i < columns.size(); ++i) {
    const auto count = static_cast<std::size_t>(std::llround(solved.values[i]));
    if (count == 0) continue;
    const auto& cand =
        request.candidates_per_group[columns[i].group][columns[i].candidate];
    plan.entries.push_back({columns[i].group, cand.type_name, count});
    plan.total_cost_per_hour += cand.cost_per_hour * static_cast<double>(count);
  }
  plan.feasible = true;
  return plan;
}

// ---- seed processor-sharing backend (pre virtual-time overhaul) ----------
//
// The event-rescheduling PS instance exactly as it ran through PR 5: every
// submit and completion sweeps all active jobs decrementing `remaining_wu`,
// rescans them for the minimum, and cancels + re-inserts the single pending
// completion event — O(n) math plus heap churn per event.  It runs against
// the *current* sim::simulation so micro_ops' backend_event series isolates
// the PS math from the event-engine comparison made elsewhere.

class ps_instance {
 public:
  using completion_fn = std::function<void(util::time_ms, bool)>;

  ps_instance(sim::simulation& sim, const cloud::instance_type& type,
              util::rng rng)
      : sim_{sim}, type_{type}, rng_{rng}, last_update_{sim.now()} {}

  ps_instance(const ps_instance&) = delete;
  ps_instance& operator=(const ps_instance&) = delete;
  ~ps_instance() {
    if (pending_completion_.valid()) sim_.cancel(pending_completion_);
  }

  bool submit(double work_units, completion_fn on_complete) {
    if (work_units < 0.0) throw std::invalid_argument{"submit: negative work"};
    if (active_.size() >= type_.max_concurrent()) {
      ++dropped_;
      return false;
    }
    advance();
    const double noisy =
        work_units * rng_.lognormal(0.0, type_.jitter_sigma) +
        cloud::k_spawn_overhead_wu;
    std::uint32_t idx;
    if (free_head_ != kNoFreeJob) {
      idx = free_head_;
      free_head_ = jobs_[idx].next_free;
    } else {
      idx = static_cast<std::uint32_t>(jobs_.size());
      jobs_.emplace_back();
    }
    job& j = jobs_[idx];
    j.remaining_wu = noisy;
    j.submitted_at = sim_.now();
    j.on_complete = std::move(on_complete);
    active_.push_back(idx);
    reschedule();
    return true;
  }

  std::uint64_t completed() const noexcept { return completed_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  double service_sum() const noexcept { return service_sum_; }

 private:
  static constexpr double kWorkEpsilon = 1e-6;
  static constexpr std::uint32_t kNoFreeJob = 0xffffffffu;

  struct job {
    double remaining_wu = 0.0;
    util::time_ms submitted_at = 0.0;
    completion_fn on_complete;
    std::uint32_t next_free = 0;
  };

  double steal(std::size_t n) const noexcept {
    if (type_.steal_max <= 0.0 || n == 0) return 0.0;
    const double x = static_cast<double>(n);
    return type_.steal_max * x / (x + 8.0);
  }

  double rate_per_job(std::size_t n) const noexcept {
    if (n == 0) return 0.0;
    const double share =
        std::min(1.0, type_.vcpus / static_cast<double>(n));
    return type_.speed_factor * (1.0 - steal(n)) * share;
  }

  void advance() {
    const util::time_ms now = sim_.now();
    const double elapsed = now - last_update_;
    if (elapsed <= 0.0) {
      last_update_ = now;
      return;
    }
    const std::size_t n = active_.size();
    if (n > 0) {
      const double done = elapsed * rate_per_job(n);
      for (const std::uint32_t idx : active_) jobs_[idx].remaining_wu -= done;
    }
    last_update_ = now;
  }

  void reschedule() {
    if (pending_completion_.valid()) {
      sim_.cancel(pending_completion_);
      pending_completion_ = {};
    }
    if (active_.empty()) return;
    double min_remaining = std::numeric_limits<double>::infinity();
    for (const std::uint32_t idx : active_) {
      min_remaining = std::min(min_remaining, jobs_[idx].remaining_wu);
    }
    const double rate = rate_per_job(active_.size());
    const double eta = std::max(min_remaining, 0.0) / rate;
    pending_completion_ =
        sim_.schedule_after(eta, [this] { on_completion_event(); });
  }

  void on_completion_event() {
    pending_completion_ = {};
    advance();
    finished_scratch_.clear();
    std::size_t keep = 0;
    for (const std::uint32_t idx : active_) {
      if (jobs_[idx].remaining_wu <= kWorkEpsilon) {
        finished_scratch_.push_back(idx);
      } else {
        active_[keep++] = idx;
      }
    }
    active_.resize(keep);
    for (const std::uint32_t idx : finished_scratch_) {
      job& j = jobs_[idx];
      const util::time_ms service_time = sim_.now() - j.submitted_at;
      completion_fn fn = std::move(j.on_complete);
      j.on_complete = nullptr;
      j.next_free = free_head_;
      free_head_ = idx;
      ++completed_;
      service_sum_ += service_time;
      if (fn) fn(service_time, true);
    }
    reschedule();
  }

  sim::simulation& sim_;
  cloud::instance_type type_;
  util::rng rng_;
  std::vector<job> jobs_;
  std::vector<std::uint32_t> active_;
  std::vector<std::uint32_t> finished_scratch_;
  std::uint32_t free_head_ = kNoFreeJob;
  sim::event_handle pending_completion_{};
  util::time_ms last_update_ = 0.0;
  double service_sum_ = 0.0;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace mca::legacy
