// Ablation (design-choice check, DESIGN.md §6) — the t2 CPU-credit model.
//
// The paper benchmarks t2 burstable instances with one-minute cool-downs
// and never observes credit exhaustion, so the simulator ships with the
// credit model OFF.  This bench justifies that default: a t2.small facing
// a *sustained* 70%-utilization stream behaves identically with and
// without the model for the first stretch, then collapses to its baseline
// share once the bank empties — credits only matter for workloads the
// paper does not run.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "cloud/instance.h"
#include "exp/runner.h"
#include "sim/simulation.h"
#include "tasks/task.h"
#include "util/csv.h"
#include "workload/generator.h"

namespace {

/// Mean in-server response per 10-minute window over a 3-hour sustained
/// stream; returns {window -> mean_ms} plus the throttle flag at the end.
struct run_result {
  std::vector<double> window_mean_ms;
  bool throttled_at_end = false;
};

run_result run(bool enable_credits) {
  using namespace mca;
  sim::simulation sim;
  tasks::task_pool pool;
  util::rng rng{4321};
  cloud::instance::options opts;
  opts.enable_cpu_credits = enable_credits;
  opts.initial_credits_core_ms = 30.0 * 60'000.0;  // 30 credit-minutes
  cloud::instance server{sim, 1, cloud::type_by_name("t2.small"), rng.fork(),
                         opts};

  constexpr double kWindow = 600'000.0;  // 10 minutes
  std::vector<util::running_stats> windows(18);
  workload::interarrival_config load;
  load.devices = 1;
  load.active_duration = util::hours(3);
  // ~25 req/s * 28 wu = 700 wu/s on a 1000 wu/s core: sustained 70%.
  workload::interarrival_generator gen{
      sim, workload::random_pool_source(pool),
      [&](const workload::offload_request& r) {
        const auto window = static_cast<std::size_t>(sim.now() / kWindow);
        server.submit(r.work.work_units(), [&windows, window](double t, bool) {
          if (window < windows.size()) windows[window].add(t);
        });
      },
      workload::exponential_interarrival(25.0), load, rng.fork()};
  sim.run();

  run_result result;
  for (const auto& w : windows) {
    result.window_mean_ms.push_back(w.mean());
  }
  result.throttled_at_end = server.throttled();
  return result;
}

}  // namespace

int main() {
  using namespace mca;
  bench::check_list checks;

  // The two credit modes are independent 3-hour runs; overlap them.
  exp::thread_pool workers{2};
  const auto results = exp::parallel_map(
      workers, 2, [](std::size_t i) { return run(i == 0); });
  const auto& with_credits = results[0];
  const auto& without_credits = results[1];

  bench::section("mean response per 10-minute window (t2.small, 70% load)");
  util::csv_writer csv{std::cout,
                       {"window", "credits_on_ms", "credits_off_ms"}};
  for (std::size_t w = 0; w < with_credits.window_mean_ms.size(); ++w) {
    csv.row_values(w, with_credits.window_mean_ms[w],
                   without_credits.window_mean_ms[w]);
  }

  const double early_on = with_credits.window_mean_ms[1];
  const double early_off = without_credits.window_mean_ms[1];
  const double late_on = with_credits.window_mean_ms[16];
  const double late_off = without_credits.window_mean_ms[16];

  checks.expect(std::abs(early_on - early_off) < early_off * 0.25,
                "while credits last the two models agree",
                bench::ratio_detail("on/off early", early_on / early_off));
  checks.expect(late_on > 5.0 * late_off,
                "after exhaustion the credit model collapses to baseline",
                bench::ratio_detail("on/off late", late_on / late_off));
  checks.expect(with_credits.throttled_at_end,
                "credit balance is exhausted by sustained load",
                "throttled at t=3h");
  checks.expect(!without_credits.throttled_at_end,
                "paper-mode (credits off) never throttles", "never throttled");
  // The paper's methodology (bursts + cool-downs) stays out of throttle
  // territory, which is why credits-off is the faithful default.
  return checks.finish("ablation_credits");
}
