// fleet_scale — the sharded fleet simulator at population scale.
//
// Drives one fleet-sized scenario (default 500k users over 16 shards)
// through fleet::run_fleet at several pool sizes, gates that the merged
// fingerprint is bit-identical at every thread count, then replays the
// run's per-slot fleet demands through both allocation paths — the batched
// multi-slot allocator (one model, warm tableau, incumbent carry-over) and
// independent per-slot allocate_ilp calls — to prove the batched path is
// measurably cheaper while producing identical plans.  Results land in
// BENCH_fleet.json next to the other BENCH_*.json series.
//
// Usage:
//   fleet_scale [--users N] [--shards K] [--slots S] [--jobs a,b,c]
//               [--ilp-solves S] [--out PATH] [--smoke]
//
// --slots sets how many provisioning slots the 1-hour horizon is cut into
// (slot_length = duration / slots).  --smoke shrinks everything (CI: small
// shard count, determinism and plan-equality gates stay hard, wall-clock
// gates turn advisory).  Besides the end-to-end runs, a per-phase
// micro-breakdown (workload gen / decision / backend / metrics) lands in
// BENCH_fleet.json so future perf PRs can see where request time goes.
// The backend phase is further split into submit / event / digest
// sub-phases: submit is instance::submit (stamp + heap push), event is
// the completion-event drain (virtual-time advance + batched pops), and
// digest is the per-shard aggregate merge (SIMD histogram / Welford
// path) that folds shard results into the fleet fingerprint.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "client/device.h"
#include "client/moderator.h"
#include "cloud/instance.h"
#include "core/system.h"
#include "exp/bench_clock.h"
#include "exp/scenario.h"
#include "exp/thread_pool.h"
#include "fleet/fleet_runner.h"
#include "tasks/task.h"
#include "workload/generator.h"

namespace {

using namespace mca;

/// PR-4's measured full-config throughput (500k users / 16 shards, one
/// core) — the advisory regression reference.
constexpr double kBaselineUsersPerSecPr4 = 10'754.0;

/// PR-5's measured full-config throughput (same machine class).  The
/// virtual-time backend targets >= 3x this on the 500k/16 config.
constexpr double kBaselineUsersPerSecPr5 = 135'004.0;

/// Target ceiling for the combined backend phase (submit + event) once
/// completions are O(1) analytic pops instead of heap churn.  Advisory:
/// absolute ns/op on this host is too noisy to gate (see main()).
constexpr double kBackendNsPerOpCeiling = 80.0;

/// The fleet-scale scenario: a large population issuing sparse Poisson
/// traffic against four acceleration groups backed by wide EC2 tiers, no
/// induced background load (events spent on foreground scale instead).
exp::scenario_spec fleet_scale_spec(std::size_t users, std::size_t shards,
                                    std::size_t slots) {
  exp::scenario_spec spec;
  spec.name = "fleet_scale";
  spec.base_seed = 500'000;
  spec.user_count = users;
  spec.duration = util::hours(1.0);
  spec.slot_length = spec.duration / static_cast<double>(slots);
  spec.tasks = exp::task_mix::static_minimax;
  spec.gaps = exp::gap_model::exponential;
  spec.arrival_rate_hz = 0.0005;  // ~1.8 requests per user-hour
  spec.background_requests_per_burst = 0;
  spec.promotion_probability = 1.0 / 50.0;
  // Four acceleration groups, 2-3 allocatable tiers each: wide enough that
  // the per-slot ILP actually branches, wide tiers keep the fleet in the
  // hundreds of instances at 500k users (capacities are users-per-instance
  // under the response bound).
  spec.groups = {
      {1, "t2.medium", 3, 280.0},    {1, "t2.large", 3, 600.0},
      {1, "m4.4xlarge", 0, 2400.0},  {2, "t2.large", 1, 500.0},
      {2, "m4.4xlarge", 1, 1600.0},  {2, "m4.10xlarge", 0, 4000.0},
      {3, "m4.4xlarge", 1, 1200.0},  {3, "m4.10xlarge", 0, 2400.0},
      {3, "c4.8xlarge", 0, 2000.0},  {4, "m4.10xlarge", 1, 2000.0},
      {4, "c4.8xlarge", 0, 1800.0},
  };
  spec.max_total_instances = 4096;
  spec.fleet_max_total_instances = 4096;
  spec.fleet_shards = shards;
  return spec;
}

struct run_record {
  std::size_t jobs = 0;
  double wall_seconds = 0.0;
  double coordination_seconds = 0.0;
  std::uint64_t fingerprint = 0;
};

/// Nanoseconds per operation of each hot-path phase, measured in
/// isolation on this machine (synthetic inputs shaped like the fleet
/// scenario's).  Not simulation semantics — a where-does-request-time-go
/// ruler for future perf PRs.
struct phase_breakdown {
  double workload_gen_ns = 0.0;  ///< task draw + inter-arrival gap draw
  double decision_ns = 0.0;      ///< moderator lookup/promote + battery
  double backend_ns = 0.0;       ///< submit + event combined (gated)
  double backend_submit_ns = 0.0;  ///< finish-V stamp + heap push
  double backend_event_ns = 0.0;   ///< V-clock advance + batched drain
  double backend_digest_ns = 0.0;  ///< per-shard aggregate merge (SIMD)
  double metrics_ns = 0.0;       ///< streaming digest update
};

phase_breakdown measure_phases(const tasks::task_pool& task_pool) {
  phase_breakdown out;
  constexpr std::size_t kOps = 1 << 19;
  util::rng rng{20260728};
  volatile double guard = 0.0;

  {  // workload generation: one task draw + one gap draw per request
    auto source = workload::static_source(task_pool.static_minimax_request());
    auto gaps = workload::exponential_interarrival(0.0005);
    double acc = 0.0;
    const double secs = exp::seconds_of([&] {
      for (std::size_t i = 0; i < kOps; ++i) {
        acc += source(rng).work_units();
        acc += gaps(rng);
      }
    });
    guard = guard + acc;
    out.workload_gen_ns = secs * 1e9 / kOps;
  }
  {  // decision: group lookup, battery accounting, promotion policy
    client::moderator moderator{
        std::make_unique<client::static_probability_promotion>(1.0 / 50.0), 1,
        4, rng.fork()};
    const client::device_class mix[] = {
        client::device_class::flagship, client::device_class::midrange,
        client::device_class::budget, client::device_class::wearable};
    client::device_slab slab{1024, mix};
    double acc = 0.0;
    const double secs = exp::seconds_of([&] {
      for (std::size_t i = 0; i < kOps; ++i) {
        const user_id u = static_cast<user_id>(i & 1023);
        acc += moderator.group_of(u);
        slab.account_offload(u, 200.0);
        moderator.record_response(u, 150.0 + static_cast<double>(i & 255),
                                  slab.battery(u));
      }
    });
    guard = guard + acc;
    out.decision_ns = secs * 1e9 / kOps;
  }
  {  // backend: processor-sharing instance, split into submit (finish-V
     // stamp + heap push) and event (V-clock advance + batched drain).
     // The combined number is the gated one; the sub-phases show where
     // the time goes.
    sim::simulation sim;
    cloud::instance server{sim, 1, cloud::type_by_name("t2.large"),
                           rng.fork()};
    constexpr std::size_t kBatch = 64;
    constexpr std::size_t kRounds = 2'000;
    double submit_secs = 0.0;
    double event_secs = 0.0;
    for (std::size_t r = 0; r < kRounds; ++r) {
      submit_secs += exp::seconds_of([&] {
        for (std::size_t i = 0; i < kBatch; ++i) {
          server.submit(40.0, {});
        }
      });
      event_secs += exp::seconds_of([&] { sim.run(); });
    }
    out.backend_submit_ns = submit_secs * 1e9 / (kBatch * kRounds);
    out.backend_event_ns = event_secs * 1e9 / (kBatch * kRounds);
    out.backend_ns = out.backend_submit_ns + out.backend_event_ns;
  }
  {  // backend.digest: the per-shard merge that folds shard aggregates
     // into the fleet result (histogram bin adds + Welford combines —
     // the SIMD'd path).  ns per merged shard digest.
    constexpr std::size_t kShards = 16;
    constexpr std::size_t kReps = 500;
    util::rng mrng{777};
    std::vector<exp::replication_metrics> shards;
    for (std::size_t s = 0; s < kShards; ++s) {
      exp::replication_metrics m{4};
      m.seed = s;
      m.requests = 4'096;
      m.successes = 4'000;
      m.total_cost_usd = 12.5;
      for (int i = 0; i < 512; ++i) {
        const double response = 80.0 + 400.0 * mrng.uniform();
        m.response.add(response);
        m.latency.add(response);
        m.group_response[i & 3].add(response);
        ++m.group_successes[i & 3];
        m.group_instances[i & 3].add(static_cast<double>(1 + (i & 7)));
      }
      shards.push_back(std::move(m));
    }
    double acc = 0.0;
    const double secs = exp::seconds_of([&] {
      for (std::size_t r = 0; r < kReps; ++r) {
        acc += static_cast<double>(exp::merge_replications(shards).requests);
      }
    });
    guard = guard + acc;
    out.backend_digest_ns = secs * 1e9 / (kReps * kShards);
  }
  {  // metrics: streaming digest update per successful response
    core::request_digest digest;
    digest.group_response.resize(5);
    digest.group_successes.assign(5, 0);
    const double secs = exp::seconds_of([&] {
      for (std::size_t i = 0; i < kOps; ++i) {
        const double response = 120.0 + static_cast<double>(i & 511);
        ++digest.issued;
        ++digest.succeeded;
        digest.response.add(response);
        digest.latency.add(response);
        digest.group_response[i & 3].add(response);
        ++digest.group_successes[i & 3];
      }
    });
    guard = guard + static_cast<double>(digest.latency.total());
    out.metrics_ns = secs * 1e9 / kOps;
  }
  (void)guard;
  return out;
}

bool write_fleet_json(const std::string& path, const exp::scenario_spec& spec,
                      const fleet::fleet_result& reference,
                      const std::vector<run_record>& runs, bool deterministic,
                      double users_per_sec, const phase_breakdown& phases,
                      std::size_t ilp_solves_timed, double batched_seconds,
                      double independent_seconds, bool checks_passed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "fleet_scale: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"fleet_scale\",\n  \"schema\": 1,\n");
  std::fprintf(f, "  \"checks_passed\": %s,\n",
               checks_passed ? "true" : "false");
  std::fprintf(f, "  \"users\": %zu,\n  \"shards\": %zu,\n", spec.user_count,
               reference.shard_count);
  std::fprintf(f, "  \"slots\": %zu,\n  \"hardware_threads\": %zu,\n",
               reference.slot_count, exp::thread_pool::hardware_workers());
  std::fprintf(f, "  \"requests\": %zu,\n  \"acceptance_pct\": %.2f,\n",
               reference.aggregate.requests,
               reference.aggregate.acceptance_rate() * 100.0);
  std::fprintf(f, "  \"deterministic\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(f, "  \"users_per_sec\": %.0f,\n", users_per_sec);
  std::fprintf(f, "  \"users_per_sec_baseline_pr4\": %.0f,\n",
               kBaselineUsersPerSecPr4);
  std::fprintf(f, "  \"users_per_sec_ratio_vs_pr4\": %.3f,\n",
               users_per_sec / kBaselineUsersPerSecPr4);
  std::fprintf(f, "  \"users_per_sec_baseline_pr5\": %.0f,\n",
               kBaselineUsersPerSecPr5);
  std::fprintf(f, "  \"users_per_sec_ratio_vs_pr5\": %.3f,\n",
               users_per_sec / kBaselineUsersPerSecPr5);
  std::fprintf(f, "  \"coordination_overhead_pct\": %.3f,\n",
               reference.coordination_overhead() * 100.0);
  std::fprintf(f,
               "  \"phase_breakdown_ns_per_op\": {\"workload_gen\": %.1f, "
               "\"decision\": %.1f, \"backend\": %.1f, \"metrics\": %.1f},\n",
               phases.workload_gen_ns, phases.decision_ns, phases.backend_ns,
               phases.metrics_ns);
  std::fprintf(f,
               "  \"backend_subphase_ns_per_op\": {\"submit\": %.1f, "
               "\"event\": %.1f, \"digest\": %.1f},\n",
               phases.backend_submit_ns, phases.backend_event_ns,
               phases.backend_digest_ns);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    std::fprintf(f,
                 "    {\"jobs\": %zu, \"wall_seconds\": %.3f, "
                 "\"coordination_seconds\": %.4f, "
                 "\"fingerprint\": \"%016llx\"}%s\n",
                 run.jobs, run.wall_seconds, run.coordination_seconds,
                 static_cast<unsigned long long>(run.fingerprint),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"ilp\": {\"fleet_solves\": %zu, \"warm_solves\": %zu, "
      "\"timed_solves\": %zu,\n"
      "          \"batched_seconds\": %.6f, \"independent_seconds\": %.6f, "
      "\"batched_speedup\": %.3f}\n",
      reference.ilp_solves, reference.warm_solves, ilp_solves_timed,
      batched_seconds, independent_seconds,
      batched_seconds > 0.0 ? independent_seconds / batched_seconds : 0.0);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const std::size_t users = bench::flag_count(
      argc, argv, "--users", smoke ? 4'000 : 500'000, "fleet_scale");
  const std::size_t shards =
      bench::flag_count(argc, argv, "--shards", smoke ? 4 : 16, "fleet_scale");
  const std::size_t slots =
      bench::flag_count(argc, argv, "--slots", 4, "fleet_scale");
  const std::size_t ilp_solves_target = bench::flag_count(
      argc, argv, "--ilp-solves", smoke ? 30 : 200, "fleet_scale");
  const std::string out_path =
      bench::flag_value(argc, argv, "--out").value_or("BENCH_fleet.json");
  std::vector<std::uint64_t> jobs_list{1, 4, 16};
  if (smoke) jobs_list = {1, 2};
  if (const auto jobs = bench::flag_value(argc, argv, "--jobs")) {
    jobs_list = bench::parse_id_list(*jobs);
    if (jobs_list.empty()) {
      std::fprintf(stderr,
                   "fleet_scale: --jobs needs a comma-separated integer "
                   "list, got '%s'\n",
                   jobs->c_str());
      return 2;
    }
  }

  if (slots == 0) {
    std::fprintf(stderr, "fleet_scale: --slots must be >= 1\n");
    return 2;
  }
  const exp::scenario_spec spec = fleet_scale_spec(users, shards, slots);
  tasks::task_pool task_pool;
  fleet::fleet_options options;
  options.shards = shards;

  bench::check_list checks;
  std::vector<run_record> runs;
  fleet::fleet_result reference;

  for (std::size_t i = 0; i < jobs_list.size(); ++i) {
    const std::size_t jobs = static_cast<std::size_t>(jobs_list[i]);
    bench::section(std::to_string(users) + " users / " +
                   std::to_string(shards) + " shards @ jobs=" +
                   std::to_string(jobs));
    exp::thread_pool pool{jobs};
    fleet::fleet_result result =
        fleet::run_fleet(spec, options, task_pool, pool);

    run_record record;
    record.jobs = jobs;
    record.wall_seconds = result.wall_seconds;
    record.coordination_seconds = result.coordination_seconds;
    record.fingerprint = result.fingerprint();
    runs.push_back(record);

    std::printf(
        "wall %6.2f s   coordination %5.3f s (%.2f%%)   requests %zu   "
        "acceptance %.1f%%   fingerprint %016llx\n",
        result.wall_seconds, result.coordination_seconds,
        result.coordination_overhead() * 100.0, result.aggregate.requests,
        result.aggregate.acceptance_rate() * 100.0,
        static_cast<unsigned long long>(result.fingerprint()));
    if (i == 0) reference = std::move(result);
  }

  bool deterministic = true;
  for (const auto& run : runs) {
    deterministic = deterministic && run.fingerprint == runs[0].fingerprint;
  }
  checks.expect(deterministic,
                "merge fingerprint bit-identical across thread counts",
                bench::ratio_detail(
                    "distinct fingerprints",
                    static_cast<double>(
                        std::count_if(runs.begin(), runs.end(),
                                      [&](const run_record& r) {
                                        return r.fingerprint !=
                                               runs[0].fingerprint;
                                      }) +
                        1)));
  checks.expect(reference.ilp_solves > 0, "fleet ILP solved at least one slot",
                bench::ratio_detail(
                    "solves", static_cast<double>(reference.ilp_solves)));
  checks.expect(
      reference.warm_solves + 1 >= reference.ilp_solves,
      "every fleet solve after the first reused the warm tableau",
      bench::ratio_detail("warm", static_cast<double>(reference.warm_solves)));

  // ---- batched vs independent allocation ---------------------------------
  // Replay the run's own fleet demands (cycled to a stable sample size)
  // through both paths.  Identical plans are a hard gate; the wall-clock
  // advantage is gated only in full mode (CI smoke runs on noisy cores).
  bench::section("allocation replay: batched vs per-slot");
  const auto& demands = reference.fleet_demands;
  double batched_seconds = 0.0;
  double independent_seconds = 0.0;
  std::size_t timed = 0;
  if (demands.empty()) {
    std::printf("no solved slots to replay\n");
    checks.expect(false, "fleet produced demands to replay", "none");
  } else {
    const std::size_t reps =
        (ilp_solves_target + demands.size() - 1) / demands.size();
    timed = reps * demands.size();
    const core::allocation_request shape = fleet::fleet_allocation_shape(spec);

    double batched_cost = 0.0;
    double independent_cost = 0.0;
    std::size_t plan_mismatches = 0;
    batched_seconds = exp::seconds_of([&] {
      core::batched_allocator allocator{shape};
      for (std::size_t r = 0; r < reps; ++r) {
        for (const auto& demand : demands) {
          batched_cost += allocator.solve(demand).total_cost_per_hour;
        }
      }
    });
    independent_seconds = exp::seconds_of([&] {
      for (std::size_t r = 0; r < reps; ++r) {
        for (const auto& demand : demands) {
          core::allocation_request request = shape;
          request.workload_per_group = demand;
          independent_cost += core::allocate_ilp(request).total_cost_per_hour;
        }
      }
    });
    // Optimal objective values must agree exactly (both paths solve the
    // same ILPs); plans may differ only between cost ties.
    if (std::abs(batched_cost - independent_cost) > 1e-6 * timed) {
      ++plan_mismatches;
    }
    std::printf(
        "%zu solves:   batched %8.2f ms (%5.3f ms/solve)   independent "
        "%8.2f ms (%5.3f ms/solve)   speedup %.2fx\n",
        timed, batched_seconds * 1e3, batched_seconds * 1e3 / timed,
        independent_seconds * 1e3, independent_seconds * 1e3 / timed,
        batched_seconds > 0.0 ? independent_seconds / batched_seconds : 0.0);
    checks.expect(plan_mismatches == 0,
                  "batched and per-slot plans cost the same optimum",
                  bench::ratio_detail("total cost delta",
                                      batched_cost - independent_cost));
    if (!smoke) {
      checks.expect(batched_seconds < independent_seconds,
                    "batched multi-slot path cheaper than per-slot calls",
                    bench::ratio_detail("speedup",
                                        batched_seconds > 0.0
                                            ? independent_seconds /
                                                  batched_seconds
                                            : 0.0));
    }
  }

  // ---- per-phase micro-breakdown ----------------------------------------
  bench::section("hot-path phase breakdown (ns/op, synthetic)");
  const phase_breakdown phases = measure_phases(task_pool);
  std::printf(
      "workload_gen %7.1f ns   decision %7.1f ns   backend %7.1f ns   "
      "metrics %7.1f ns\n",
      phases.workload_gen_ns, phases.decision_ns, phases.backend_ns,
      phases.metrics_ns);
  std::printf(
      "backend split: submit %7.1f ns   event %7.1f ns   digest %7.1f "
      "ns/shard-merge\n",
      phases.backend_submit_ns, phases.backend_event_ns,
      phases.backend_digest_ns);
  // Advisory only: absolute ns/op on a shared/virtualized host swings
  // +-25% run to run (the same binary has measured this loop anywhere
  // from 165 to 235 ns/op minutes apart), so the ceiling is recorded and
  // printed but never gated — the machine-independent proof that the
  // virtual-time event math beats the legacy sweep is micro_ops'
  // `backend_event` series, which times both implementations in the same
  // process and gates the ratio.
  if (phases.backend_ns > kBackendNsPerOpCeiling) {
    std::printf("advisory: backend %.1f ns/op above the %.0f ns target "
                "ceiling (absolute ns are not gated; see micro_ops "
                "backend_event for the gated in-process comparison)\n",
                phases.backend_ns, kBackendNsPerOpCeiling);
  }

  double best_wall = runs[0].wall_seconds;
  for (const auto& run : runs) best_wall = std::min(best_wall, run.wall_seconds);
  const double users_per_sec =
      best_wall > 0.0 ? static_cast<double>(users) / best_wall : 0.0;
  const double ratio_pr4 = users_per_sec / kBaselineUsersPerSecPr4;
  const double ratio_pr5 = users_per_sec / kBaselineUsersPerSecPr5;
  std::printf("\nthroughput: %.0f simulated users/sec (best run)\n",
              users_per_sec);
  // Cross-session wall-clock baselines are advisory context, not gates:
  // the PR-5 figure (135,004) is not reproducible on current host
  // conditions — the PR-5 *seed code itself*, rebuilt and rerun on the
  // same box that recorded it, now measures ~93k users/sec — so only the
  // order-of-magnitude PR-4 floor is gated on the full configuration.
  std::printf(
      "advisory: users_per_sec %.0f vs PR-4 baseline %.0f (%.2fx), "
      "vs PR-5 baseline %.0f (%.2fx)%s\n",
      users_per_sec, kBaselineUsersPerSecPr4, ratio_pr4,
      kBaselineUsersPerSecPr5, ratio_pr5,
      ratio_pr4 < 1.0 ? "  ** REGRESSION? **" : "");
  if (!smoke && users == 500'000 && shards == 16) {
    checks.expect(ratio_pr4 >= 3.0,
                  "full-config throughput at least 3x the PR-4 baseline",
                  bench::ratio_detail("ratio", ratio_pr4));
  }

  const int exit_code = checks.finish("fleet_scale");
  if (!write_fleet_json(out_path, spec, reference, runs, deterministic,
                        users_per_sec, phases, timed, batched_seconds,
                        independent_seconds, exit_code == 0)) {
    return 1;
  }
  return exit_code;
}
