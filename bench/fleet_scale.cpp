// fleet_scale — the sharded fleet simulator at population scale.
//
// Drives one fleet-sized scenario (default 500k users over 16 shards)
// through fleet::run_fleet at several pool sizes, gates that the merged
// fingerprint is bit-identical at every thread count, then replays the
// run's per-slot fleet demands through both allocation paths — the batched
// multi-slot allocator (one model, warm tableau, incumbent carry-over) and
// independent per-slot allocate_ilp calls — to prove the batched path is
// measurably cheaper while producing identical plans.  Results land in
// BENCH_fleet.json next to the other BENCH_*.json series.
//
// Usage:
//   fleet_scale [--users N] [--shards K] [--slots S] [--jobs a,b,c]
//               [--ilp-solves S] [--trials T] [--trace PATH]
//               [--trace-slots A:B] [--health PATH] [--out PATH]
//               [--faults] [--fault-health PATH] [--smoke]
//
// --slots sets how many provisioning slots the 1-hour horizon is cut into
// (slot_length = duration / slots).  --smoke shrinks everything (CI: small
// shard count, determinism and plan-equality gates stay hard, wall-clock
// gates turn advisory).  Every timed leg runs --trials times,
// interleaved (trial 0 of every leg, then trial 1, ...), and the best
// wall time per leg is reported — same de-noising the micro_ops bench
// uses, so the advisory users/sec series stops swinging with host load.
// One extra leg repeats jobs=first with the observability counters off:
// the counters-on/counters-off best-of ratio is the <= 1.05 overhead
// gate proving the obs layer stays out of the hot path.  --trace runs
// one additional untimed leg with the span tracer attached and writes
// Chrome trace-event JSON (open in Perfetto / chrome://tracing) covering
// slot rounds, shard advances, coordinator solves/splits, sampled
// request lifecycles, and pool idle gaps — plus two post-run lanes on
// the simulated-time process: the fleet's per-window tail exemplars and
// the SLO alert intervals.  --trace-slots A:B restricts the export to
// the spans overlapping provisioning slots A..B (inclusive), so one bad
// window stays inspectable without the full-trace payload.  --health
// writes the plain-text fleet health report (per-slot timeline table,
// alert event log, slowest exemplar) CI uploads next to the trace.
//
// --faults runs the same scenario again under a fault program (spot
// preemption hazards on every group, a region outage on group 2 strictly
// inside slot 1, cold starts, and the timeout/retry/local-fallback
// resilience path), once per pool size, with its own hard gates:
// thread-count-independent faulted fingerprints, the zero-loss equation
// (requests == successes + failures), the outage window's group p99
// breaching the SLO ceiling then recovering (with the matching alert
// fire + clear), and a disabled-program replay that must reproduce the
// fault-free fingerprints bit for bit.  A hazard-rate series
// (multipliers 0/1/2) lands in the JSON; with --trace, a second traced
// export gains a "fault windows" lane (one span per outage, one marker
// per strike); --fault-health writes the fault leg's health report.
//
// The time-resolved layer gets its own hard gates: the merged
// per-slot timeline fingerprint must be bit-identical across thread
// counts, trials, AND the traced leg (trace-dependent counters are
// excluded from it by construction), the window count must equal
// slots + 1 (the drain tail), the fleet exemplar set must be non-empty
// and bounded by top_k per window, and SLO alert evaluation over the
// merged timeline must reproduce bit-identically.
//
// Besides the end-to-end runs, a per-phase micro-breakdown (workload gen
// / decision / backend / metrics) lands in BENCH_fleet.json so future
// perf PRs can see where request time goes.  The backend phase is
// further split into submit / event / digest sub-phases: submit is
// instance::submit (stamp + heap push), event is the completion-event
// drain (virtual-time advance + batched pops), and digest is the
// per-shard aggregate merge (SIMD histogram / Welford path) that folds
// shard results into the fleet fingerprint.  The merged observability
// registry (counters, series, per-group SLO percentiles) is emitted too,
// with its own thread-count-independent fingerprint.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "client/device.h"
#include "client/moderator.h"
#include "cloud/instance.h"
#include "core/system.h"
#include "exp/bench_clock.h"
#include "exp/scenario.h"
#include "exp/thread_pool.h"
#include "fault/fault_program.h"
#include "fleet/fleet_runner.h"
#include "obs/alerts.h"
#include "obs/exemplar.h"
#include "obs/health.h"
#include "obs/registry.h"
#include "obs/slo.h"
#include "obs/timeline.h"
#include "obs/tracer.h"
#include "tasks/task.h"
#include "workload/generator.h"

namespace {

using namespace mca;

/// True when the build carries -fsanitize instrumentation (the CMake
/// MCA_SANITIZE option defines this).  Sanitizers slow and skew wall
/// clocks wildly (ASan ~2x, TSan ~10x, unevenly across phases), so every
/// wall-clock *ratio* gate downgrades to advisory under instrumentation;
/// fingerprint, determinism, and plan-equality gates stay hard — those
/// are exactly what a sanitizer leg is there to re-verify.
#ifdef MCA_SANITIZE_ENABLED
constexpr bool kSanitizedBuild = true;
#else
constexpr bool kSanitizedBuild = false;
#endif

/// PR-4's measured full-config throughput (500k users / 16 shards, one
/// core) — the advisory regression reference.
constexpr double kBaselineUsersPerSecPr4 = 10'754.0;

/// PR-5's measured full-config throughput (same machine class).  The
/// virtual-time backend targets >= 3x this on the 500k/16 config.
constexpr double kBaselineUsersPerSecPr5 = 135'004.0;

/// Target ceiling for the combined backend phase (submit + event) once
/// completions are O(1) analytic pops instead of heap churn.  Advisory:
/// absolute ns/op on this host is too noisy to gate (see main()).
constexpr double kBackendNsPerOpCeiling = 80.0;

/// The fleet-scale scenario: a large population issuing sparse Poisson
/// traffic against four acceleration groups backed by wide EC2 tiers, no
/// induced background load (events spent on foreground scale instead).
exp::scenario_spec fleet_scale_spec(std::size_t users, std::size_t shards,
                                    std::size_t slots) {
  exp::scenario_spec spec;
  spec.name = "fleet_scale";
  spec.base_seed = 500'000;
  spec.user_count = users;
  spec.duration = util::hours(1.0);
  spec.slot_length = spec.duration / static_cast<double>(slots);
  spec.tasks = exp::task_mix::static_minimax;
  spec.gaps = exp::gap_model::exponential;
  spec.arrival_rate_hz = 0.0005;  // ~1.8 requests per user-hour
  spec.background_requests_per_burst = 0;
  spec.promotion_probability = 1.0 / 50.0;
  // Four acceleration groups, 2-3 allocatable tiers each: wide enough that
  // the per-slot ILP actually branches, wide tiers keep the fleet in the
  // hundreds of instances at 500k users (capacities are users-per-instance
  // under the response bound).
  spec.groups = {
      {1, "t2.medium", 3, 280.0},    {1, "t2.large", 3, 600.0},
      {1, "m4.4xlarge", 0, 2400.0},  {2, "t2.large", 1, 500.0},
      {2, "m4.4xlarge", 1, 1600.0},  {2, "m4.10xlarge", 0, 4000.0},
      {3, "m4.4xlarge", 1, 1200.0},  {3, "m4.10xlarge", 0, 2400.0},
      {3, "c4.8xlarge", 0, 2000.0},  {4, "m4.10xlarge", 1, 2000.0},
      {4, "c4.8xlarge", 0, 1800.0},
  };
  spec.max_total_instances = 4096;
  spec.fleet_max_total_instances = 4096;
  spec.fleet_shards = shards;
  return spec;
}

struct run_record {
  std::size_t jobs = 0;
  bool counters = true;
  double wall_seconds = 0.0;  ///< best over the interleaved trials
  double coordination_seconds = 0.0;  ///< from the best trial
  std::uint64_t fingerprint = 0;
  std::uint64_t obs_fingerprint = 0;
  std::uint64_t timeline_fingerprint = 0;
};

/// The stock fleet SLO objectives evaluated over the merged timeline:
/// generous production-style ceilings (the bench gates determinism of
/// the evaluation, not that this scenario pages).
std::vector<obs::slo_objective> fleet_objectives(std::size_t group_count) {
  return obs::default_fleet_objectives(group_count, /*p99_ceiling_ms=*/5'000.0,
                                       /*error_budget=*/0.10);
}

/// The p99 ceiling shared by fleet_objectives and the fault-leg
/// breach/recover gates.
constexpr double kP99CeilingMs = 5'000.0;

/// The outage victim of the --faults leg (group id == SLO histogram
/// index; group 2 is the mid-tier t2.large/m4.4xlarge/m4.10xlarge band).
constexpr std::uint32_t kOutageGroup = 2;

/// The fleet scenario under fault injection: modest spot hazards on every
/// group (scaled by `hazard_multiplier` for the rate series), one region
/// outage on group 2 strictly inside provisioning slot 1 — both edges land
/// mid-round, so the recovery exercises the coordinator's off-cycle
/// re-aim — plus cold starts and the full resilience path (per-request
/// timeout, capped backoff retries, local fallback).
exp::scenario_spec faulted_fleet_spec(const exp::scenario_spec& base,
                                      double hazard_multiplier) {
  exp::scenario_spec spec = base;
  spec.name = "fleet_scale_faults";
  spec.faults.enabled = true;
  // No spot hazard on the outage group: its availability is driven by the
  // outage window alone, so the breach -> recover p99 gate stays crisp (a
  // post-recovery strike would push a handful of ~56 s local fallbacks
  // into the recovered window and its tail quantile).
  spec.faults.preempt_hazard_per_hour = {
      0.0, 6.0 * hazard_multiplier, 0.0, 6.0 * hazard_multiplier,
      6.0 * hazard_multiplier};
  spec.faults.outages = {
      {kOutageGroup, spec.slot_length * 1.05, spec.slot_length * 1.9}};
  spec.faults.cold_start_mean_ms = 2'000.0;
  spec.faults.max_retries = 2;
  spec.faults.request_timeout_ms = 30'000.0;
  spec.faults.retry_backoff_base_ms = 100.0;
  spec.faults.retry_backoff_cap_ms = 1'000.0;
  spec.faults.local_fallback = true;
  return spec;
}

/// One point of the hazard-rate sweep (multipliers 0 / 1 / 2 on the
/// faulted spec's preemption hazards).
struct fault_rate_point {
  double multiplier = 0.0;
  std::uint64_t preemptions = 0;
  double acceptance_pct = 0.0;
  double p99_ms = 0.0;
};

/// Fault-leg results fed into BENCH_fleet.json (ran == false omits the
/// whole object).
struct fault_summary {
  bool ran = false;
  bool deterministic = true;
  std::uint64_t fingerprint = 0;
  bool disabled_inert = false;
  std::uint64_t preemptions = 0;
  std::uint64_t inflight_killed = 0;
  std::uint64_t outages = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t retries = 0;
  std::uint64_t local_fallbacks = 0;
  double outage_window_p99_ms = 0.0;
  double recovered_window_p99_ms = 0.0;
  std::uint64_t alert_fires = 0;
  std::uint64_t alert_clears = 0;
  std::vector<fault_rate_point> rate_series;
};

/// Observability summary fed into BENCH_fleet.json.
struct obs_summary {
  std::size_t trials = 0;
  bool deterministic = true;  ///< obs fingerprint identical across legs
  std::uint64_t fingerprint = 0;
  double counters_on_seconds = 0.0;   ///< best-of at the overhead jobs
  double counters_off_seconds = 0.0;
  double overhead_ratio = 0.0;        ///< on / off
  const obs::registry* registry = nullptr;
};

/// Nanoseconds per operation of each hot-path phase, measured in
/// isolation on this machine (synthetic inputs shaped like the fleet
/// scenario's).  Not simulation semantics — a where-does-request-time-go
/// ruler for future perf PRs.
struct phase_breakdown {
  double workload_gen_ns = 0.0;  ///< task draw + inter-arrival gap draw
  double decision_ns = 0.0;      ///< moderator lookup/promote + battery
  double backend_ns = 0.0;       ///< submit + event combined (gated)
  double backend_submit_ns = 0.0;  ///< finish-V stamp + heap push
  double backend_event_ns = 0.0;   ///< V-clock advance + batched drain
  double backend_digest_ns = 0.0;  ///< per-shard aggregate merge (SIMD)
  double metrics_ns = 0.0;       ///< streaming digest update
};

phase_breakdown measure_phases(const tasks::task_pool& task_pool) {
  phase_breakdown out;
  constexpr std::size_t kOps = 1 << 19;
  util::rng rng{20260728};
  volatile double guard = 0.0;

  {  // workload generation: one task draw + one gap draw per request
    auto source = workload::static_source(task_pool.static_minimax_request());
    auto gaps = workload::exponential_interarrival(0.0005);
    double acc = 0.0;
    const double secs = exp::seconds_of([&] {
      for (std::size_t i = 0; i < kOps; ++i) {
        acc += source(rng).work_units();
        acc += gaps(rng);
      }
    });
    guard = guard + acc;
    out.workload_gen_ns = secs * 1e9 / kOps;
  }
  {  // decision: group lookup, battery accounting, promotion policy
    client::moderator moderator{
        std::make_unique<client::static_probability_promotion>(1.0 / 50.0), 1,
        4, rng.fork()};
    const client::device_class mix[] = {
        client::device_class::flagship, client::device_class::midrange,
        client::device_class::budget, client::device_class::wearable};
    client::device_slab slab{1024, mix};
    double acc = 0.0;
    const double secs = exp::seconds_of([&] {
      for (std::size_t i = 0; i < kOps; ++i) {
        const user_id u = static_cast<user_id>(i & 1023);
        acc += moderator.group_of(u);
        slab.account_offload(u, 200.0);
        moderator.record_response(u, 150.0 + static_cast<double>(i & 255),
                                  slab.battery(u));
      }
    });
    guard = guard + acc;
    out.decision_ns = secs * 1e9 / kOps;
  }
  {  // backend: processor-sharing instance, split into submit (finish-V
     // stamp + heap push) and event (V-clock advance + batched drain).
     // The combined number is the gated one; the sub-phases show where
     // the time goes.
    sim::simulation sim;
    cloud::instance server{sim, 1, cloud::type_by_name("t2.large"),
                           rng.fork()};
    constexpr std::size_t kBatch = 64;
    constexpr std::size_t kRounds = 2'000;
    double submit_secs = 0.0;
    double event_secs = 0.0;
    for (std::size_t r = 0; r < kRounds; ++r) {
      submit_secs += exp::seconds_of([&] {
        for (std::size_t i = 0; i < kBatch; ++i) {
          server.submit(40.0, {});
        }
      });
      event_secs += exp::seconds_of([&] { sim.run(); });
    }
    out.backend_submit_ns = submit_secs * 1e9 / (kBatch * kRounds);
    out.backend_event_ns = event_secs * 1e9 / (kBatch * kRounds);
    out.backend_ns = out.backend_submit_ns + out.backend_event_ns;
  }
  {  // backend.digest: the per-shard merge that folds shard aggregates
     // into the fleet result (histogram bin adds + Welford combines —
     // the SIMD'd path).  ns per merged shard digest.
    constexpr std::size_t kShards = 16;
    constexpr std::size_t kReps = 500;
    util::rng mrng{777};
    std::vector<exp::replication_metrics> shards;
    for (std::size_t s = 0; s < kShards; ++s) {
      exp::replication_metrics m{4};
      m.seed = s;
      m.requests = 4'096;
      m.successes = 4'000;
      m.total_cost_usd = 12.5;
      for (int i = 0; i < 512; ++i) {
        const double response = 80.0 + 400.0 * mrng.uniform();
        m.response.add(response);
        m.latency.add(response);
        m.group_response[i & 3].add(response);
        ++m.group_successes[i & 3];
        m.group_instances[i & 3].add(static_cast<double>(1 + (i & 7)));
      }
      shards.push_back(std::move(m));
    }
    double acc = 0.0;
    const double secs = exp::seconds_of([&] {
      for (std::size_t r = 0; r < kReps; ++r) {
        acc += static_cast<double>(exp::merge_replications(shards).requests);
      }
    });
    guard = guard + acc;
    out.backend_digest_ns = secs * 1e9 / (kReps * kShards);
  }
  {  // metrics: streaming digest update per successful response
    core::request_digest digest;
    digest.group_response.resize(5);
    digest.group_successes.assign(5, 0);
    const double secs = exp::seconds_of([&] {
      for (std::size_t i = 0; i < kOps; ++i) {
        const double response = 120.0 + static_cast<double>(i & 511);
        ++digest.issued;
        ++digest.succeeded;
        digest.response.add(response);
        digest.latency.add(response);
        digest.group_response[i & 3].add(response);
        ++digest.group_successes[i & 3];
      }
    });
    guard = guard + static_cast<double>(digest.latency.total());
    out.metrics_ns = secs * 1e9 / kOps;
  }
  (void)guard;
  return out;
}

bool write_fleet_json(const std::string& path, const exp::scenario_spec& spec,
                      const fleet::fleet_result& reference,
                      const std::vector<run_record>& runs, bool deterministic,
                      double users_per_sec, const phase_breakdown& phases,
                      std::size_t ilp_solves_timed, double batched_seconds,
                      double independent_seconds, const obs_summary& obs,
                      const obs::alert_report& alerts,
                      const fault_summary& faults, bool checks_passed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "fleet_scale: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"fleet_scale\",\n  \"schema\": 1,\n");
  std::fprintf(f, "  \"checks_passed\": %s,\n",
               checks_passed ? "true" : "false");
  std::fprintf(f, "  \"users\": %zu,\n  \"shards\": %zu,\n", spec.user_count,
               reference.shard_count);
  std::fprintf(f, "  \"slots\": %zu,\n  \"hardware_threads\": %zu,\n",
               reference.slot_count, exp::thread_pool::hardware_workers());
  std::fprintf(f, "  \"requests\": %zu,\n  \"acceptance_pct\": %.2f,\n",
               reference.aggregate.requests,
               reference.aggregate.acceptance_rate() * 100.0);
  std::fprintf(f, "  \"deterministic\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(f, "  \"users_per_sec\": %.0f,\n", users_per_sec);
  std::fprintf(f, "  \"users_per_sec_baseline_pr4\": %.0f,\n",
               kBaselineUsersPerSecPr4);
  std::fprintf(f, "  \"users_per_sec_ratio_vs_pr4\": %.3f,\n",
               users_per_sec / kBaselineUsersPerSecPr4);
  std::fprintf(f, "  \"users_per_sec_baseline_pr5\": %.0f,\n",
               kBaselineUsersPerSecPr5);
  std::fprintf(f, "  \"users_per_sec_ratio_vs_pr5\": %.3f,\n",
               users_per_sec / kBaselineUsersPerSecPr5);
  std::fprintf(f, "  \"coordination_overhead_pct\": %.3f,\n",
               reference.coordination_overhead() * 100.0);
  std::fprintf(f,
               "  \"phase_breakdown_ns_per_op\": {\"workload_gen\": %.1f, "
               "\"decision\": %.1f, \"backend\": %.1f, \"metrics\": %.1f},\n",
               phases.workload_gen_ns, phases.decision_ns, phases.backend_ns,
               phases.metrics_ns);
  std::fprintf(f,
               "  \"backend_subphase_ns_per_op\": {\"submit\": %.1f, "
               "\"event\": %.1f, \"digest\": %.1f},\n",
               phases.backend_submit_ns, phases.backend_event_ns,
               phases.backend_digest_ns);
  std::fprintf(f, "  \"trials\": %zu,\n", obs.trials);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    std::fprintf(f,
                 "    {\"jobs\": %zu, \"counters\": %s, "
                 "\"wall_seconds\": %.3f, "
                 "\"coordination_seconds\": %.4f, "
                 "\"fingerprint\": \"%016llx\"}%s\n",
                 run.jobs, run.counters ? "true" : "false", run.wall_seconds,
                 run.coordination_seconds,
                 static_cast<unsigned long long>(run.fingerprint),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"obs\": {\n"
               "    \"deterministic\": %s,\n"
               "    \"fingerprint\": \"%016llx\",\n"
               "    \"counters_on_best_seconds\": %.3f,\n"
               "    \"counters_off_best_seconds\": %.3f,\n"
               "    \"counters_overhead_ratio\": %.4f",
               obs.deterministic ? "true" : "false",
               static_cast<unsigned long long>(obs.fingerprint),
               obs.counters_on_seconds, obs.counters_off_seconds,
               obs.overhead_ratio);
  if (obs.registry != nullptr) {
    std::fprintf(f, ",\n    \"counters\": {");
    for (std::size_t c = 0; c < obs::kCounterCount; ++c) {
      std::fprintf(f, "%s\"%s\": %llu", c == 0 ? "" : ", ",
                   obs::counter_name(static_cast<obs::counter>(c)),
                   static_cast<unsigned long long>(
                       obs.registry->get(static_cast<obs::counter>(c))));
    }
    std::fprintf(f, "},\n    \"gauges\": {");
    for (std::size_t g = 0; g < obs::kGaugeCount; ++g) {
      std::fprintf(f, "%s\"%s\": %llu", g == 0 ? "" : ", ",
                   obs::gauge_name(static_cast<obs::gauge>(g)),
                   static_cast<unsigned long long>(
                       obs.registry->get_gauge(static_cast<obs::gauge>(g))));
    }
    std::fprintf(f, "},\n    \"series\": {");
    for (std::size_t s = 0; s < obs::kSeriesCount; ++s) {
      const auto& st = obs.registry->stats(static_cast<obs::series>(s));
      std::fprintf(f,
                   "%s\"%s\": {\"samples\": %llu, \"mean\": %.3f, "
                   "\"max\": %.1f}",
                   s == 0 ? "" : ", ",
                   obs::series_name(static_cast<obs::series>(s)),
                   static_cast<unsigned long long>(st.samples), st.mean(),
                   st.max);
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  },\n");
  // Time-resolved layer: one row per provisioning-slot window of the
  // merged timeline (requests / successes / failures / windowed p99),
  // then the deterministic alert evaluation over it.
  std::fprintf(f,
               "  \"timeline\": {\n"
               "    \"fingerprint\": \"%016llx\",\n"
               "    \"windows\": [\n",
               static_cast<unsigned long long>(
                   reference.timeline.fingerprint()));
  for (std::size_t w = 0; w < reference.timeline.size(); ++w) {
    const obs::timeline_window& win = reference.timeline.window(w);
    const util::histogram merged = win.merged_slo();
    std::fprintf(
        f,
        "      {\"slot\": %llu, \"sim_end_min\": %.1f, \"requests\": %llu, "
        "\"successes\": %llu, \"failures\": %llu, \"p99_ms\": %.1f, "
        "\"exemplars_admitted\": %llu}%s\n",
        static_cast<unsigned long long>(win.slot), win.sim_end_ms / 60'000.0,
        static_cast<unsigned long long>(win.delta(obs::counter::sdn_requests)),
        static_cast<unsigned long long>(win.delta(obs::counter::sdn_successes)),
        static_cast<unsigned long long>(win.delta(obs::counter::sdn_failures)),
        merged.total() > 0 ? merged.quantile_interpolated(0.99) : 0.0,
        static_cast<unsigned long long>(
            win.delta(obs::counter::exemplar_admitted)),
        w + 1 < reference.timeline.size() ? "," : "");
  }
  std::fprintf(f,
               "    ],\n"
               "    \"exemplars\": %zu\n  },\n",
               reference.exemplars.size());
  std::fprintf(f,
               "  \"alerts\": {\n"
               "    \"fingerprint\": \"%016llx\",\n"
               "    \"objectives\": %zu,\n"
               "    \"fires\": %llu,\n    \"clears\": %llu,\n"
               "    \"events\": [\n",
               static_cast<unsigned long long>(alerts.fingerprint()),
               alerts.objectives.size(),
               static_cast<unsigned long long>(alerts.fires),
               static_cast<unsigned long long>(alerts.clears));
  for (std::size_t e = 0; e < alerts.events.size(); ++e) {
    const obs::alert_event& event = alerts.events[e];
    std::fprintf(
        f,
        "      {\"objective\": \"%s\", \"slot\": %llu, \"edge\": \"%s\", "
        "\"short_value\": %.3f, \"long_value\": %.3f}%s\n",
        alerts.objectives[event.objective].name.c_str(),
        static_cast<unsigned long long>(event.slot),
        event.fired ? "fire" : "clear", event.short_value, event.long_value,
        e + 1 < alerts.events.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  if (faults.ran) {
    std::fprintf(
        f,
        "  \"faults\": {\n"
        "    \"deterministic\": %s,\n"
        "    \"fingerprint\": \"%016llx\",\n"
        "    \"disabled_program_inert\": %s,\n"
        "    \"preemptions\": %llu,\n    \"inflight_killed\": %llu,\n"
        "    \"outages\": %llu,\n    \"recoveries\": %llu,\n"
        "    \"cold_starts\": %llu,\n    \"timeouts\": %llu,\n"
        "    \"retries\": %llu,\n    \"local_fallbacks\": %llu,\n"
        "    \"outage_window_p99_ms\": %.1f,\n"
        "    \"recovered_window_p99_ms\": %.1f,\n"
        "    \"alert_fires\": %llu,\n    \"alert_clears\": %llu,\n"
        "    \"rate_series\": [\n",
        faults.deterministic ? "true" : "false",
        static_cast<unsigned long long>(faults.fingerprint),
        faults.disabled_inert ? "true" : "false",
        static_cast<unsigned long long>(faults.preemptions),
        static_cast<unsigned long long>(faults.inflight_killed),
        static_cast<unsigned long long>(faults.outages),
        static_cast<unsigned long long>(faults.recoveries),
        static_cast<unsigned long long>(faults.cold_starts),
        static_cast<unsigned long long>(faults.timeouts),
        static_cast<unsigned long long>(faults.retries),
        static_cast<unsigned long long>(faults.local_fallbacks),
        faults.outage_window_p99_ms, faults.recovered_window_p99_ms,
        static_cast<unsigned long long>(faults.alert_fires),
        static_cast<unsigned long long>(faults.alert_clears));
    for (std::size_t p = 0; p < faults.rate_series.size(); ++p) {
      const fault_rate_point& point = faults.rate_series[p];
      std::fprintf(f,
                   "      {\"multiplier\": %.1f, \"preemptions\": %llu, "
                   "\"acceptance_pct\": %.2f, \"p99_ms\": %.1f}%s\n",
                   point.multiplier,
                   static_cast<unsigned long long>(point.preemptions),
                   point.acceptance_pct, point.p99_ms,
                   p + 1 < faults.rate_series.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n  },\n");
  }
  if (obs.registry != nullptr) {
    std::fprintf(f, "  \"slo_ms\": ");
    obs::write_slo_json(f, obs::build_slo_report(*obs.registry), 2);
    std::fprintf(f, ",\n");
  }
  std::fprintf(
      f,
      "  \"ilp\": {\"fleet_solves\": %zu, \"warm_solves\": %zu, "
      "\"timed_solves\": %zu,\n"
      "          \"batched_seconds\": %.6f, \"independent_seconds\": %.6f, "
      "\"batched_speedup\": %.3f}\n",
      reference.ilp_solves, reference.warm_solves, ilp_solves_timed,
      batched_seconds, independent_seconds,
      batched_seconds > 0.0 ? independent_seconds / batched_seconds : 0.0);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  // The smoke population must stay big enough that one run takes ~0.1 s:
  // the counters-on/off overhead gate is hard even in smoke, and on
  // millisecond-scale runs timer jitter alone swings the ratio by tens
  // of percent (measured -3%..+18% at 4k users on a busy 1-core host).
  const std::size_t users = bench::flag_count(
      argc, argv, "--users", smoke ? 40'000 : 500'000, "fleet_scale");
  const std::size_t shards =
      bench::flag_count(argc, argv, "--shards", smoke ? 4 : 16, "fleet_scale");
  const std::size_t slots =
      bench::flag_count(argc, argv, "--slots", 4, "fleet_scale");
  const std::size_t ilp_solves_target = bench::flag_count(
      argc, argv, "--ilp-solves", smoke ? 30 : 200, "fleet_scale");
  // Smoke runs are short (~0.2 s), so trials are cheap there — and the
  // noisier the per-run wall time is relative to its length, the more
  // minimum-samples the best-of needs before the overhead ratio is
  // trustworthy.  Full-scale runs are ~25x longer; 3 trials suffice.
  const std::size_t trials =
      bench::flag_count(argc, argv, "--trials", smoke ? 8 : 3, "fleet_scale");
  const auto trace_path = bench::flag_value(argc, argv, "--trace");
  const auto health_path = bench::flag_value(argc, argv, "--health");
  const bool with_faults = bench::has_flag(argc, argv, "--faults");
  const auto fault_health_path = bench::flag_value(argc, argv, "--fault-health");
  const auto trace_slots = bench::flag_value(argc, argv, "--trace-slots");
  const std::string out_path =
      bench::flag_value(argc, argv, "--out").value_or("BENCH_fleet.json");
  std::vector<std::uint64_t> jobs_list{1, 4, 16};
  if (smoke) jobs_list = {1, 2};
  if (const auto jobs = bench::flag_value(argc, argv, "--jobs")) {
    jobs_list = bench::parse_id_list(*jobs);
    if (jobs_list.empty()) {
      std::fprintf(stderr,
                   "fleet_scale: --jobs needs a comma-separated integer "
                   "list, got '%s'\n",
                   jobs->c_str());
      return 2;
    }
  }

  if (slots == 0) {
    std::fprintf(stderr, "fleet_scale: --slots must be >= 1\n");
    return 2;
  }
  if (trials == 0) {
    std::fprintf(stderr, "fleet_scale: --trials must be >= 1\n");
    return 2;
  }
  obs::trace_filter slot_filter;
  bool have_slot_filter = false;
  if (trace_slots) {
    unsigned long long a = 0;
    unsigned long long b = 0;
    if (std::sscanf(trace_slots->c_str(), "%llu:%llu", &a, &b) != 2 ||
        a > b) {
      std::fprintf(stderr,
                   "fleet_scale: --trace-slots needs A:B with A <= B, "
                   "got '%s'\n",
                   trace_slots->c_str());
      return 2;
    }
    have_slot_filter = true;
    slot_filter.slot_begin = a;
    slot_filter.slot_end = b;
  }
  const exp::scenario_spec spec = fleet_scale_spec(users, shards, slots);
  if (have_slot_filter) {
    // Simulated extent of slots A..B inclusive — the window trace-stamped
    // spans must overlap to survive the filter.
    slot_filter.sim_begin_ms =
        spec.slot_length * static_cast<double>(slot_filter.slot_begin);
    slot_filter.sim_end_ms =
        spec.slot_length * static_cast<double>(slot_filter.slot_end + 1);
  }
  tasks::task_pool task_pool;
  fleet::fleet_options options;
  options.shards = shards;

  bench::check_list checks;

  // Timed legs: one counters-on leg per pool size, plus a counters-off
  // leg at the first pool size (the overhead reference).  Trials are
  // interleaved — trial t of every leg runs before trial t+1 of any —
  // so slow host drift hits all legs alike and best-of stays a fair
  // comparison.
  struct leg_spec {
    std::size_t jobs = 1;
    bool counters = true;
  };
  std::vector<leg_spec> legs;
  for (const std::uint64_t jobs : jobs_list) {
    legs.push_back({static_cast<std::size_t>(jobs), true});
  }
  legs.push_back({static_cast<std::size_t>(jobs_list[0]), false});

  std::vector<run_record> runs(legs.size());
  fleet::fleet_result reference;
  bool have_reference = false;
  bool trial_fingerprints_agree = true;

  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t li = 0; li < legs.size(); ++li) {
      const leg_spec& leg = legs[li];
      bench::section(std::to_string(users) + " users / " +
                     std::to_string(shards) + " shards @ jobs=" +
                     std::to_string(leg.jobs) +
                     (leg.counters ? "" : " (counters off)") + " trial " +
                     std::to_string(t + 1) + "/" + std::to_string(trials));
      exp::thread_pool pool{leg.jobs};
      fleet::fleet_options leg_options = options;
      leg_options.obs_counters = leg.counters;
      fleet::fleet_result result =
          fleet::run_fleet(spec, leg_options, task_pool, pool);

      run_record& record = runs[li];
      if (t == 0) {
        record.jobs = leg.jobs;
        record.counters = leg.counters;
        record.wall_seconds = result.wall_seconds;
        record.coordination_seconds = result.coordination_seconds;
        record.fingerprint = result.fingerprint();
        record.obs_fingerprint = result.observability.fingerprint();
        record.timeline_fingerprint = result.timeline.fingerprint();
      } else {
        trial_fingerprints_agree =
            trial_fingerprints_agree &&
            result.fingerprint() == record.fingerprint &&
            result.observability.fingerprint() == record.obs_fingerprint &&
            result.timeline.fingerprint() == record.timeline_fingerprint;
        if (result.wall_seconds < record.wall_seconds) {
          record.wall_seconds = result.wall_seconds;
          record.coordination_seconds = result.coordination_seconds;
        }
      }

      std::printf(
          "wall %6.2f s   coordination %5.3f s (%.2f%%)   requests %zu   "
          "acceptance %.1f%%   fingerprint %016llx\n",
          result.wall_seconds, result.coordination_seconds,
          result.coordination_overhead() * 100.0, result.aggregate.requests,
          result.aggregate.acceptance_rate() * 100.0,
          static_cast<unsigned long long>(result.fingerprint()));
      if (!have_reference && leg.counters) {
        reference = std::move(result);
        have_reference = true;
      }
    }
  }

  bool deterministic = trial_fingerprints_agree;
  for (const auto& run : runs) {
    deterministic = deterministic && run.fingerprint == runs[0].fingerprint;
  }
  checks.expect(deterministic,
                "merge fingerprint bit-identical across thread counts, "
                "trials, and counter settings",
                bench::ratio_detail(
                    "distinct fingerprints",
                    static_cast<double>(
                        std::count_if(runs.begin(), runs.end(),
                                      [&](const run_record& r) {
                                        return r.fingerprint !=
                                               runs[0].fingerprint;
                                      }) +
                        1)));
  // Same gate for the counter registry: its fingerprint (which excludes
  // the scheduling-dependent pool counters) must not move with the pool
  // size either.
  bool obs_deterministic = true;
  for (const auto& run : runs) {
    if (!run.counters) continue;
    obs_deterministic =
        obs_deterministic && run.obs_fingerprint == runs[0].obs_fingerprint;
  }
  checks.expect(obs_deterministic,
                "obs registry fingerprint bit-identical across thread counts",
                bench::ratio_detail("obs fingerprint",
                                    static_cast<double>(
                                        runs[0].obs_fingerprint & 0xffff)));

  // ---- observability overhead: counters on vs off, same binary --------
  obs_summary obs;
  obs.trials = trials;
  obs.deterministic = obs_deterministic;
  obs.fingerprint = runs[0].obs_fingerprint;
  obs.registry = &reference.observability;
  for (const auto& run : runs) {
    if (!run.counters) obs.counters_off_seconds = run.wall_seconds;
  }
  for (const auto& run : runs) {
    if (run.counters && run.jobs == runs.back().jobs) {
      obs.counters_on_seconds = run.wall_seconds;
    }
  }
  obs.overhead_ratio = obs.counters_off_seconds > 0.0
                           ? obs.counters_on_seconds / obs.counters_off_seconds
                           : 0.0;
  bench::section("observability overhead (counters on vs off, best-of)");
  std::printf(
      "jobs=%zu:   counters on %6.2f s   off %6.2f s   overhead %.2f%%\n",
      runs.back().jobs, obs.counters_on_seconds, obs.counters_off_seconds,
      (obs.overhead_ratio - 1.0) * 100.0);
  if (kSanitizedBuild) {
    std::printf(
        "sanitized build: counters-overhead gate advisory (ratio %.3f)\n",
        obs.overhead_ratio);
  } else {
    checks.expect(obs.overhead_ratio <= 1.05,
                  "counters-on wall time within 5% of counters-off",
                  bench::ratio_detail("on/off", obs.overhead_ratio));
  }
  checks.expect(reference.observability.get(obs::counter::sdn_requests) ==
                    reference.aggregate.requests,
                "sdn_requests counter matches the merged request total",
                bench::ratio_detail(
                    "counted", static_cast<double>(reference.observability.get(
                                   obs::counter::sdn_requests))));
  checks.expect(reference.ilp_solves > 0, "fleet ILP solved at least one slot",
                bench::ratio_detail(
                    "solves", static_cast<double>(reference.ilp_solves)));
  checks.expect(
      reference.warm_solves + 1 >= reference.ilp_solves,
      "every fleet solve after the first reused the warm tableau",
      bench::ratio_detail("warm", static_cast<double>(reference.warm_solves)));

  // ---- time-resolved telemetry: timeline / exemplars / alerts ----------
  bench::section("per-slot timeline, tail exemplars, SLO alerts");
  bool timeline_deterministic = true;
  for (const auto& run : runs) {
    if (!run.counters) continue;
    timeline_deterministic =
        timeline_deterministic &&
        run.timeline_fingerprint == runs[0].timeline_fingerprint;
  }
  checks.expect(timeline_deterministic,
                "timeline fingerprint bit-identical across thread counts "
                "and trials",
                bench::ratio_detail(
                    "timeline fingerprint",
                    static_cast<double>(runs[0].timeline_fingerprint &
                                        0xffff)));
  checks.expect(reference.timeline.size() == slots + 1,
                "timeline holds one window per slot plus the drain tail",
                bench::ratio_detail(
                    "windows", static_cast<double>(reference.timeline.size())));
  checks.expect(
      !reference.exemplars.empty() &&
          reference.exemplars.size() <=
              options.exemplar_top_k * (slots + 1),
      "fleet tail exemplars present and bounded by top-K per window",
      bench::ratio_detail("exemplars",
                          static_cast<double>(reference.exemplars.size())));
  const std::vector<obs::slo_objective> objectives =
      fleet_objectives(reference.timeline.group_count());
  const obs::alert_report alerts =
      obs::evaluate_alerts(reference.timeline, objectives);
  const obs::alert_report alerts_replay =
      obs::evaluate_alerts(reference.timeline, objectives);
  checks.expect(alerts.fingerprint() == alerts_replay.fingerprint(),
                "SLO alert evaluation reproduces bit-identically",
                bench::ratio_detail(
                    "alert fingerprint",
                    static_cast<double>(alerts.fingerprint() & 0xffff)));
  std::printf(
      "timeline windows %zu   exemplars %zu   objectives %zu   "
      "alert fires %llu   clears %llu\n",
      reference.timeline.size(), reference.exemplars.size(),
      objectives.size(), static_cast<unsigned long long>(alerts.fires),
      static_cast<unsigned long long>(alerts.clears));
  if (health_path) {
    const bool health_written = obs::write_health_report(
        *health_path, reference.timeline, alerts, reference.exemplars);
    checks.expect(health_written, "fleet health report written",
                  health_path->c_str());
    if (health_written) std::printf("wrote %s\n", health_path->c_str());
  }

  // ---- traced leg (untimed): span rings + Chrome trace export ---------
  if (trace_path) {
    const std::size_t trace_jobs =
        static_cast<std::size_t>(jobs_list.back());
    bench::section("traced run @ jobs=" + std::to_string(trace_jobs) +
                   " (untimed)");
    obs::tracer tracer{{shards + 1 + trace_jobs, 4096}};
    exp::thread_pool pool{trace_jobs};
    fleet::fleet_options traced_options = options;
    traced_options.tracer = &tracer;
    // Sample densely enough that even the smoke population produces
    // request-lifecycle spans.
    traced_options.trace_sample_every = smoke ? 64 : 1024;
    const fleet::fleet_result traced =
        fleet::run_fleet(spec, traced_options, task_pool, pool);
    checks.expect(traced.fingerprint() == runs[0].fingerprint,
                  "tracing does not perturb the merged fingerprint",
                  bench::ratio_detail(
                      "fingerprint xor",
                      static_cast<double>((traced.fingerprint() ^
                                           runs[0].fingerprint) &
                                          0xffff)));
    // The timeline fingerprint excludes trace-dependent counters
    // (sdn_sampled_spans only counts under a tracer), so it must match
    // the untraced legs bit for bit too.
    checks.expect(
        traced.timeline.fingerprint() == runs[0].timeline_fingerprint,
        "traced-leg timeline fingerprint matches the untraced legs",
        bench::ratio_detail(
            "timeline xor",
            static_cast<double>((traced.timeline.fingerprint() ^
                                 runs[0].timeline_fingerprint) &
                                0xffff)));

    bool has_slot_round = false;
    bool has_solve = false;
    bool has_advance = false;
    bool has_lifecycle = false;
    for (std::size_t r = 0; r < tracer.ring_count(); ++r) {
      const obs::span_ring& ring = tracer.ring(r);
      for (std::size_t i = 0; i < ring.size(); ++i) {
        switch (ring.at(i).kind) {
          case obs::span_kind::slot_round: has_slot_round = true; break;
          case obs::span_kind::coordinator_solve: has_solve = true; break;
          case obs::span_kind::shard_advance: has_advance = true; break;
          case obs::span_kind::request_lifecycle: has_lifecycle = true; break;
          default: break;
        }
      }
    }
    checks.expect(has_slot_round && has_solve,
                  "trace holds slot-round and coordinator-solve spans",
                  has_slot_round ? "no solve spans" : "no slot-round spans");
    checks.expect(has_advance, "trace holds shard-advance spans", "none");
    checks.expect(
        has_lifecycle &&
            traced.observability.get(obs::counter::sdn_sampled_spans) > 0,
        "trace holds sampled request-lifecycle spans",
        bench::ratio_detail(
            "sampled",
            static_cast<double>(traced.observability.get(
                obs::counter::sdn_sampled_spans))));

    std::vector<std::string> ring_names;
    for (std::size_t k = 0; k < shards; ++k) {
      ring_names.push_back("shard " + std::to_string(k));
    }
    ring_names.push_back("coordinator");
    for (std::size_t w = 0; w < trace_jobs; ++w) {
      ring_names.push_back("pool worker " + std::to_string(w));
    }
    // Post-run lanes on the simulated-time process: the fleet's tail
    // exemplars and the SLO alert intervals evaluated over the traced
    // leg's timeline.
    std::vector<obs::trace_lane> lanes;
    lanes.push_back({"tail exemplars", obs::exemplar_spans(traced.exemplars)});
    lanes.push_back(
        {"slo alerts",
         obs::alert_spans(obs::evaluate_alerts(traced.timeline, objectives),
                          traced.timeline)});
    checks.expect(!lanes[0].spans.empty(),
                  "exemplar lane holds tail request spans",
                  bench::ratio_detail(
                      "lane spans",
                      static_cast<double>(lanes[0].spans.size())));
    const bool exported = tracer.export_chrome_trace(
        *trace_path, ring_names, lanes,
        have_slot_filter ? &slot_filter : nullptr);
    checks.expect(exported, "Chrome trace written", trace_path->c_str());
    std::printf(
        "spans %llu (dropped %llu)   lanes %zu (%zu + %zu spans)   "
        "wrote %s%s\n",
        static_cast<unsigned long long>(tracer.total_spans()),
        static_cast<unsigned long long>(tracer.total_dropped()),
        lanes.size(), lanes[0].spans.size(), lanes[1].spans.size(),
        trace_path->c_str(),
        have_slot_filter ? " (slot-window filtered)" : "");
  }

  // ---- fault injection & resilience (--faults) ---------------------------
  // One leg per pool size runs the same scenario under the fault program
  // (spot hazards on every group, a region outage on group 2 strictly
  // inside slot 1, cold starts, timeout/retry/fallback).  Hard gates:
  // the faulted fingerprints are thread-count-independent, the front-end
  // loses nothing (requests == successes + failures), the outage window's
  // group p99 breaches the SLO ceiling and the next window recovers (with
  // the matching alert fire + clear), and replaying the populated program
  // with enabled=false reproduces the fault-free fingerprints bit for bit.
  fault_summary fsum;
  obs::alert_report fault_alerts;
  fleet::fleet_result fault_reference;
  if (with_faults) {
    bench::section("fault injection & resilience (--faults)");
    const exp::scenario_spec fault_spec = faulted_fleet_spec(spec, 1.0);
    bool have_fault_reference = false;
    std::uint64_t fault_obs_fp = 0;
    std::uint64_t fault_tl_fp = 0;
    fsum.ran = true;
    for (const std::uint64_t jobs : jobs_list) {
      exp::thread_pool pool{static_cast<std::size_t>(jobs)};
      fleet::fleet_result result =
          fleet::run_fleet(fault_spec, options, task_pool, pool);
      std::printf(
          "faults @ jobs=%2llu   wall %6.2f s   requests %zu   "
          "acceptance %.1f%%   fingerprint %016llx\n",
          static_cast<unsigned long long>(jobs), result.wall_seconds,
          result.aggregate.requests,
          result.aggregate.acceptance_rate() * 100.0,
          static_cast<unsigned long long>(result.fingerprint()));
      if (!have_fault_reference) {
        fsum.fingerprint = result.fingerprint();
        fault_obs_fp = result.observability.fingerprint();
        fault_tl_fp = result.timeline.fingerprint();
        fault_reference = std::move(result);
        have_fault_reference = true;
      } else {
        fsum.deterministic =
            fsum.deterministic && result.fingerprint() == fsum.fingerprint &&
            result.observability.fingerprint() == fault_obs_fp &&
            result.timeline.fingerprint() == fault_tl_fp;
      }
    }
    checks.expect(fsum.deterministic,
                  "faulted fingerprints (aggregate, obs, timeline) "
                  "bit-identical across thread counts",
                  bench::ratio_detail(
                      "fault fingerprint",
                      static_cast<double>(fsum.fingerprint & 0xffff)));

    const obs::registry& fr = fault_reference.observability;
    fsum.preemptions = fr.get(obs::counter::fault_preemptions);
    fsum.inflight_killed = fr.get(obs::counter::fault_inflight_killed);
    fsum.outages = fr.get(obs::counter::fault_outages);
    fsum.recoveries = fr.get(obs::counter::fault_recoveries);
    fsum.cold_starts = fr.get(obs::counter::fault_cold_starts);
    fsum.timeouts = fr.get(obs::counter::sdn_timeouts);
    fsum.retries = fr.get(obs::counter::sdn_retries);
    fsum.local_fallbacks = fr.get(obs::counter::sdn_local_fallbacks);
    const std::uint64_t f_requests = fr.get(obs::counter::sdn_requests);
    const std::uint64_t f_successes = fr.get(obs::counter::sdn_successes);
    const std::uint64_t f_failures = fr.get(obs::counter::sdn_failures);
    std::printf(
        "preemptions %llu (killed %llu in flight)   outages %llu   "
        "recoveries %llu   cold starts %llu\n"
        "timeouts %llu   retries %llu   local fallbacks %llu\n",
        static_cast<unsigned long long>(fsum.preemptions),
        static_cast<unsigned long long>(fsum.inflight_killed),
        static_cast<unsigned long long>(fsum.outages),
        static_cast<unsigned long long>(fsum.recoveries),
        static_cast<unsigned long long>(fsum.cold_starts),
        static_cast<unsigned long long>(fsum.timeouts),
        static_cast<unsigned long long>(fsum.retries),
        static_cast<unsigned long long>(fsum.local_fallbacks));
    checks.expect(f_requests == f_successes + f_failures,
                  "zero-loss: every accepted request terminated "
                  "(successes + failures == requests)",
                  bench::ratio_detail(
                      "unaccounted",
                      static_cast<double>(f_requests - f_successes -
                                          f_failures)));
    checks.expect(fsum.local_fallbacks <= f_successes,
                  "local fallbacks are a subset of successes",
                  bench::ratio_detail(
                      "fallbacks", static_cast<double>(fsum.local_fallbacks)));
    checks.expect(fsum.preemptions > 0 && fsum.cold_starts > 0,
                  "hazard draws produced strikes and relaunches paid "
                  "cold starts",
                  bench::ratio_detail(
                      "strikes", static_cast<double>(fsum.preemptions)));
    // Every shard schedules the (unsliced) outage window over its own
    // sub-population, and every begin must be matched by a recovery.
    checks.expect(fsum.outages == shards && fsum.recoveries == fsum.outages,
                  "one outage begin/end pair per shard",
                  bench::ratio_detail("outages",
                                      static_cast<double>(fsum.outages)));

    // Breach-then-recover: the outage lives inside slot 1, so window 1's
    // per-group p99 must blow through the ceiling (retries + local
    // fallback latencies) and window 2 — after the off-cycle re-aim —
    // must be back under it.
    const obs::timeline& ftl = fault_reference.timeline;
    if (slots >= 3 && ftl.size() >= 3 &&
        kOutageGroup < ftl.group_count()) {
      const util::histogram& breached = ftl.window(1).slo[kOutageGroup];
      const util::histogram& recovered = ftl.window(2).slo[kOutageGroup];
      fsum.outage_window_p99_ms =
          breached.total() > 0 ? breached.quantile_interpolated(0.99) : 0.0;
      fsum.recovered_window_p99_ms =
          recovered.total() > 0 ? recovered.quantile_interpolated(0.99) : 0.0;
      std::printf(
          "outage group %u windowed p99: slot 1 %.0f ms -> slot 2 %.0f ms "
          "(ceiling %.0f ms)\n",
          kOutageGroup, fsum.outage_window_p99_ms,
          fsum.recovered_window_p99_ms, kP99CeilingMs);
      checks.expect(
          breached.total() > 0 && fsum.outage_window_p99_ms > kP99CeilingMs,
          "outage window p99 breaches the SLO ceiling",
          bench::ratio_detail("p99 ms", fsum.outage_window_p99_ms));
      checks.expect(recovered.total() > 0 &&
                        fsum.recovered_window_p99_ms < kP99CeilingMs,
                    "post-recovery window p99 back under the ceiling",
                    bench::ratio_detail("p99 ms",
                                        fsum.recovered_window_p99_ms));
    } else {
      std::printf(
          "advisory: breach/recover p99 gates need --slots >= 3 "
          "(got %zu)\n",
          slots);
    }
    fault_alerts =
        obs::evaluate_alerts(ftl, fleet_objectives(ftl.group_count()));
    fsum.alert_fires = fault_alerts.fires;
    fsum.alert_clears = fault_alerts.clears;
    bool outage_alert_fired = false;
    bool outage_alert_cleared = false;
    for (const obs::alert_event& event : fault_alerts.events) {
      const obs::slo_objective& objective =
          fault_alerts.objectives[event.objective];
      if (objective.kind == obs::alert_kind::latency_p99 &&
          objective.group == kOutageGroup) {
        (event.fired ? outage_alert_fired : outage_alert_cleared) = true;
      }
    }
    std::printf("alert events: %llu fires / %llu clears\n",
                static_cast<unsigned long long>(fsum.alert_fires),
                static_cast<unsigned long long>(fsum.alert_clears));
    if (slots >= 3) {
      checks.expect(outage_alert_fired && outage_alert_cleared,
                    "outage group p99 alert fired during the outage and "
                    "cleared after recovery",
                    outage_alert_fired
                        ? (outage_alert_cleared ? "fired and cleared"
                                                : "never cleared")
                        : "never fired");
    }
    if (fault_health_path) {
      const bool written = obs::write_health_report(
          *fault_health_path, ftl, fault_alerts, fault_reference.exemplars);
      checks.expect(written, "fault-window health report written",
                    fault_health_path->c_str());
      if (written) std::printf("wrote %s\n", fault_health_path->c_str());
    }

    // Disabled replay: the populated-but-disabled program must be
    // byte-inert — no rng draws, no events — so the fault-free reference
    // fingerprints reproduce exactly.
    {
      exp::scenario_spec disabled_spec = faulted_fleet_spec(spec, 1.0);
      disabled_spec.faults.enabled = false;
      exp::thread_pool pool{static_cast<std::size_t>(jobs_list[0])};
      const fleet::fleet_result disabled =
          fleet::run_fleet(disabled_spec, options, task_pool, pool);
      fsum.disabled_inert =
          disabled.fingerprint() == runs[0].fingerprint &&
          disabled.observability.fingerprint() == runs[0].obs_fingerprint &&
          disabled.timeline.fingerprint() == runs[0].timeline_fingerprint;
      checks.expect(fsum.disabled_inert,
                    "disabled fault program replays the fault-free "
                    "fingerprints bit for bit",
                    bench::ratio_detail(
                        "fingerprint xor",
                        static_cast<double>((disabled.fingerprint() ^
                                             runs[0].fingerprint) &
                                            0xffff)));
    }

    // Hazard-rate series: multipliers 0 / 1 / 2 on the preemption
    // hazards (outage and resilience knobs held fixed).  The m=1 point
    // reuses the reference run.
    for (const double multiplier : {0.0, 1.0, 2.0}) {
      fault_rate_point point;
      point.multiplier = multiplier;
      if (multiplier == 1.0) {
        point.preemptions = fsum.preemptions;
        point.acceptance_pct =
            fault_reference.aggregate.acceptance_rate() * 100.0;
        point.p99_ms =
            fault_reference.aggregate.latency.quantile_interpolated(0.99);
      } else {
        exp::thread_pool pool{static_cast<std::size_t>(jobs_list[0])};
        const fleet::fleet_result swept = fleet::run_fleet(
            faulted_fleet_spec(spec, multiplier), options, task_pool, pool);
        point.preemptions =
            swept.observability.get(obs::counter::fault_preemptions);
        point.acceptance_pct = swept.aggregate.acceptance_rate() * 100.0;
        point.p99_ms = swept.aggregate.latency.quantile_interpolated(0.99);
      }
      std::printf(
          "hazard x%.0f:   preemptions %5llu   acceptance %6.2f%%   "
          "p99 %7.1f ms\n",
          point.multiplier,
          static_cast<unsigned long long>(point.preemptions),
          point.acceptance_pct, point.p99_ms);
      fsum.rate_series.push_back(point);
    }
    checks.expect(fsum.rate_series[0].preemptions == 0 &&
                      fsum.rate_series[2].preemptions >
                          fsum.rate_series[0].preemptions,
                  "preemption count scales with the hazard multiplier",
                  bench::ratio_detail(
                      "x2 strikes",
                      static_cast<double>(fsum.rate_series[2].preemptions)));

    // Traced fault leg (untimed): same export as the main traced leg,
    // plus the fault-window lane (one span per outage, one marker per
    // strike) derived from the program's expanded schedule.
    if (trace_path) {
      const std::string fault_trace_path = *trace_path + ".faults.json";
      const std::size_t trace_jobs =
          static_cast<std::size_t>(jobs_list.back());
      obs::tracer tracer{{shards + 1 + trace_jobs, 4096}};
      exp::thread_pool pool{trace_jobs};
      fleet::fleet_options traced_options = options;
      traced_options.tracer = &tracer;
      traced_options.trace_sample_every = smoke ? 64 : 1024;
      const fleet::fleet_result traced =
          fleet::run_fleet(fault_spec, traced_options, task_pool, pool);
      checks.expect(traced.fingerprint() == fsum.fingerprint,
                    "tracing does not perturb the faulted fingerprint",
                    bench::ratio_detail(
                        "fingerprint xor",
                        static_cast<double>((traced.fingerprint() ^
                                             fsum.fingerprint) &
                                            0xffff)));
      std::vector<std::string> ring_names;
      for (std::size_t k = 0; k < shards; ++k) {
        ring_names.push_back("shard " + std::to_string(k));
      }
      ring_names.push_back("coordinator");
      for (std::size_t w = 0; w < trace_jobs; ++w) {
        ring_names.push_back("pool worker " + std::to_string(w));
      }
      std::vector<obs::trace_lane> lanes;
      lanes.push_back(
          {"tail exemplars", obs::exemplar_spans(traced.exemplars)});
      lanes.push_back(
          {"slo alerts",
           obs::alert_spans(
               obs::evaluate_alerts(traced.timeline,
                                    fleet_objectives(
                                        traced.timeline.group_count())),
               traced.timeline)});
      lanes.push_back(
          {"fault windows",
           fault::fault_spans(
               fault_spec.faults,
               fault::make_preemption_schedule(fault_spec.faults,
                                               fault_spec.duration,
                                               fault_spec.base_seed))});
      checks.expect(!lanes.back().spans.empty(),
                    "fault lane holds outage spans and strike markers",
                    bench::ratio_detail(
                        "lane spans",
                        static_cast<double>(lanes.back().spans.size())));
      const bool exported = tracer.export_chrome_trace(
          fault_trace_path, ring_names, lanes,
          have_slot_filter ? &slot_filter : nullptr);
      checks.expect(exported, "faulted Chrome trace written",
                    fault_trace_path.c_str());
      if (exported) std::printf("wrote %s\n", fault_trace_path.c_str());
    }
  }

  // ---- batched vs independent allocation ---------------------------------
  // Replay the run's own fleet demands (cycled to a stable sample size)
  // through both paths.  Identical plans are a hard gate; the wall-clock
  // advantage is gated only in full mode (CI smoke runs on noisy cores).
  bench::section("allocation replay: batched vs per-slot");
  const auto& demands = reference.fleet_demands;
  double batched_seconds = 0.0;
  double independent_seconds = 0.0;
  std::size_t timed = 0;
  if (demands.empty()) {
    std::printf("no solved slots to replay\n");
    checks.expect(false, "fleet produced demands to replay", "none");
  } else {
    const std::size_t reps =
        (ilp_solves_target + demands.size() - 1) / demands.size();
    timed = reps * demands.size();
    const core::allocation_request shape = fleet::fleet_allocation_shape(spec);

    double batched_cost = 0.0;
    double independent_cost = 0.0;
    std::size_t plan_mismatches = 0;
    batched_seconds = exp::seconds_of([&] {
      core::batched_allocator allocator{shape};
      for (std::size_t r = 0; r < reps; ++r) {
        for (const auto& demand : demands) {
          batched_cost += allocator.solve(demand).total_cost_per_hour;
        }
      }
    });
    independent_seconds = exp::seconds_of([&] {
      for (std::size_t r = 0; r < reps; ++r) {
        for (const auto& demand : demands) {
          core::allocation_request request = shape;
          request.workload_per_group = demand;
          independent_cost += core::allocate_ilp(request).total_cost_per_hour;
        }
      }
    });
    // Optimal objective values must agree exactly (both paths solve the
    // same ILPs); plans may differ only between cost ties.
    if (std::abs(batched_cost - independent_cost) > 1e-6 * timed) {
      ++plan_mismatches;
    }
    std::printf(
        "%zu solves:   batched %8.2f ms (%5.3f ms/solve)   independent "
        "%8.2f ms (%5.3f ms/solve)   speedup %.2fx\n",
        timed, batched_seconds * 1e3, batched_seconds * 1e3 / timed,
        independent_seconds * 1e3, independent_seconds * 1e3 / timed,
        batched_seconds > 0.0 ? independent_seconds / batched_seconds : 0.0);
    checks.expect(plan_mismatches == 0,
                  "batched and per-slot plans cost the same optimum",
                  bench::ratio_detail("total cost delta",
                                      batched_cost - independent_cost));
    if (!smoke && !kSanitizedBuild) {
      checks.expect(batched_seconds < independent_seconds,
                    "batched multi-slot path cheaper than per-slot calls",
                    bench::ratio_detail("speedup",
                                        batched_seconds > 0.0
                                            ? independent_seconds /
                                                  batched_seconds
                                            : 0.0));
    }
  }

  // ---- per-phase micro-breakdown ----------------------------------------
  bench::section("hot-path phase breakdown (ns/op, synthetic)");
  const phase_breakdown phases = measure_phases(task_pool);
  std::printf(
      "workload_gen %7.1f ns   decision %7.1f ns   backend %7.1f ns   "
      "metrics %7.1f ns\n",
      phases.workload_gen_ns, phases.decision_ns, phases.backend_ns,
      phases.metrics_ns);
  std::printf(
      "backend split: submit %7.1f ns   event %7.1f ns   digest %7.1f "
      "ns/shard-merge\n",
      phases.backend_submit_ns, phases.backend_event_ns,
      phases.backend_digest_ns);
  // Advisory only: absolute ns/op on a shared/virtualized host swings
  // +-25% run to run (the same binary has measured this loop anywhere
  // from 165 to 235 ns/op minutes apart), so the ceiling is recorded and
  // printed but never gated — the machine-independent proof that the
  // virtual-time event math beats the legacy sweep is micro_ops'
  // `backend_event` series, which times both implementations in the same
  // process and gates the ratio.
  if (phases.backend_ns > kBackendNsPerOpCeiling) {
    std::printf("advisory: backend %.1f ns/op above the %.0f ns target "
                "ceiling (absolute ns are not gated; see micro_ops "
                "backend_event for the gated in-process comparison)\n",
                phases.backend_ns, kBackendNsPerOpCeiling);
  }

  // Throughput over the counters-on legs (the production configuration).
  double best_wall = runs[0].wall_seconds;
  for (const auto& run : runs) {
    if (run.counters) best_wall = std::min(best_wall, run.wall_seconds);
  }
  const double users_per_sec =
      best_wall > 0.0 ? static_cast<double>(users) / best_wall : 0.0;
  const double ratio_pr4 = users_per_sec / kBaselineUsersPerSecPr4;
  const double ratio_pr5 = users_per_sec / kBaselineUsersPerSecPr5;
  std::printf("\nthroughput: %.0f simulated users/sec (best run)\n",
              users_per_sec);
  // Cross-session wall-clock baselines are advisory context, not gates:
  // the PR-5 figure (135,004) is not reproducible on current host
  // conditions — the PR-5 *seed code itself*, rebuilt and rerun on the
  // same box that recorded it, now measures ~93k users/sec — so only the
  // order-of-magnitude PR-4 floor is gated on the full configuration.
  std::printf(
      "advisory: users_per_sec %.0f vs PR-4 baseline %.0f (%.2fx), "
      "vs PR-5 baseline %.0f (%.2fx)%s\n",
      users_per_sec, kBaselineUsersPerSecPr4, ratio_pr4,
      kBaselineUsersPerSecPr5, ratio_pr5,
      ratio_pr4 < 1.0 ? "  ** REGRESSION? **" : "");
  if (!smoke && !kSanitizedBuild && users == 500'000 && shards == 16) {
    checks.expect(ratio_pr4 >= 3.0,
                  "full-config throughput at least 3x the PR-4 baseline",
                  bench::ratio_detail("ratio", ratio_pr4));
  }

  const int exit_code = checks.finish("fleet_scale");
  if (!write_fleet_json(out_path, spec, reference, runs, deterministic,
                        users_per_sec, phases, timed, batched_seconds,
                        independent_seconds, obs, alerts, fsum,
                        exit_code == 0)) {
    return 1;
  }
  return exit_code;
}
