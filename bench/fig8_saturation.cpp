// Fig. 8 — workload management at the front-end and under saturation.
//
// (a) Routing time of the SDN-accelerator per acceleration group: ~250
//     requests per group under 30-user concurrency; the paper reports
//     ≈150 ms regardless of the group.
// (b) One t2.large faces a Poisson arrival stream whose rate doubles
//     every 5 minutes, 1 Hz -> 1024 Hz.  Response time holds until the
//     server's capacity (paper: ~32 Hz), then degrades sharply.
// (c) The success/fail split per arrival rate: beyond the knee a rising
//     share of requests is dropped.
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.h"
#include "core/sdn_accelerator.h"
#include "exp/thread_pool.h"
#include "net/operators.h"
#include "sim/simulation.h"
#include "tasks/task.h"
#include "util/csv.h"
#include "workload/generator.h"

namespace {

using namespace mca;

/// Fig. 8b/8c accumulator: one arrival-rate phase of the doubling run.
struct phase_stats {
  util::running_stats response;
  std::size_t arrivals = 0;
  std::size_t successes = 0;
};

/// Part (a): routing time per group at the SDN front-end.
std::map<group_id, std::vector<double>> run_routing_part(
    const tasks::task_pool& pool) {
  std::map<group_id, std::vector<double>> routing;
  {
    sim::simulation sim;
    util::rng rng{88};
    cloud::backend_pool backend{sim, rng.fork()};
    const std::map<group_id, std::string> levels = {{1, "t2.nano"},
                                                    {2, "t2.large"},
                                                    {3, "m4.10xlarge"},
                                                    {4, "c4.8xlarge"}};
    for (const auto& [group, type] : levels) {
      backend.launch(group, cloud::type_by_name(type));
    }
    trace::log_store log;
    core::sdn_config config;
    config.keep_routing_samples = true;
    core::sdn_accelerator sdn{sim,  backend, net::default_lte_model(),
                              &log, config,  rng.fork()};
    request_id next_id = 0;
    for (const auto& [group, type] : levels) {
      for (int i = 0; i < 250; ++i) {
        sim.schedule_at(static_cast<double>(group) * 1e7 + (i / 30) * 30'000.0,
                        [&, group] {
                          workload::offload_request request;
                          request.id = ++next_id;
                          request.user = 1;
                          request.work = pool.random_request(rng);
                          request.created_at = sim.now();
                          sdn.submit(request, group, 1.0, {});
                        });
      }
    }
    sim.run();
    for (group_id g = 1; g <= 4; ++g) {
      routing[g] = sdn.routing_samples(g);
    }
  }
  return routing;
}

/// Parts (b)/(c): rate doubling against one t2.large.
std::map<int, phase_stats> run_saturation_part(const tasks::task_pool& pool) {
  std::map<int, phase_stats> phases;  // key: arrival rate in Hz
  {
    sim::simulation sim;
    util::rng rng{89};
    cloud::instance server{sim, 1, cloud::type_by_name("t2.large"),
                           rng.fork()};
    workload::rate_doubling_config schedule;
    schedule.initial_hz = 1.0;
    schedule.final_hz = 1024.0;
    schedule.phase_length = util::minutes(5);
    // Heavy pool mix: the paper does not state its Fig. 8 task mix; the
    // max-size mix puts the t2.large knee near the reported 32 Hz
    // (DESIGN.md §5).
    workload::rate_doubling_generator gen{
        sim, workload::heavy_pool_source(pool),
        [&](const workload::offload_request& r) {
          const int rate = static_cast<int>(gen.current_rate_hz());
          auto& phase = phases[rate];
          ++phase.arrivals;
          const bool accepted = server.submit(
              r.work.work_units(), [&phases, rate](double service, bool) {
                phases[rate].response.add(service);
                ++phases[rate].successes;
              });
          (void)accepted;
        },
        schedule, rng.fork()};
    sim.run();
  }
  return phases;
}

}  // namespace

int main() {
  bench::check_list checks;
  tasks::task_pool pool;

  // Parts (a) and (b/c) are independent experiments; overlap them on the
  // pool, then print in figure order.
  std::map<group_id, std::vector<double>> routing;
  std::map<int, phase_stats> phases;
  {
    exp::thread_pool workers{2};
    exp::parallel_for(workers, 2, [&](std::size_t part) {
      if (part == 0) {
        routing = run_routing_part(pool);
      } else {
        phases = run_saturation_part(pool);
      }
    });
  }

  bench::section("Fig. 8a data: SDN routing time per request, by group");
  {
    util::csv_writer csv{std::cout, {"group", "request", "routing_ms"}};
    for (const auto& [group, samples] : routing) {
      for (std::size_t i = 0; i < samples.size(); ++i) {
        csv.row_values(static_cast<unsigned>(group), i, samples[i]);
      }
    }
  }

  bench::section("Fig. 8b/8c data: response time and success rate vs rate");
  util::csv_writer csv{std::cout, {"arrival_hz", "mean_response_ms",
                                   "success_pct", "fail_pct", "arrivals"}};
  std::map<int, double> success_pct;
  std::map<int, double> mean_response;
  for (const auto& [rate, phase] : phases) {
    const double success =
        phase.arrivals == 0
            ? 0.0
            : 100.0 * static_cast<double>(phase.successes) /
                  static_cast<double>(phase.arrivals);
    success_pct[rate] = success;
    mean_response[rate] = phase.response.mean();
    csv.row_values(rate, phase.response.mean(), success, 100.0 - success,
                   phase.arrivals);
  }

  // ---- shape checks ----
  double routing_mean_all = 0.0;
  std::size_t routing_count = 0;
  bool routing_uniform = true;
  for (const auto& [group, samples] : routing) {
    const double mean = util::mean_of(samples);
    routing_mean_all += mean;
    ++routing_count;
    if (std::abs(mean - 150.0) > 20.0) routing_uniform = false;
  }
  routing_mean_all /= static_cast<double>(routing_count);
  checks.expect(std::abs(routing_mean_all - 150.0) < 15.0,
                "SDN routing overhead is ~150 ms",
                bench::ratio_detail("mean [ms]", routing_mean_all));
  checks.expect(routing_uniform,
                "routing overhead is flat across acceleration groups",
                "all group means within 150 +/- 20 ms");
  checks.expect(mean_response.at(16) < 1'000.0,
                "t2.large holds sub-second responses through 16 Hz",
                bench::ratio_detail("mean @16Hz [ms]", mean_response.at(16)));
  checks.expect(success_pct.at(16) > 99.0,
                "no drops below the knee (16 Hz)",
                bench::ratio_detail("success @16Hz [%]", success_pct.at(16)));
  // The knee: somewhere between 32 and 64 Hz responses blow past 3x the
  // 16 Hz level.
  checks.expect(mean_response.at(64) > 3.0 * mean_response.at(16),
                "responses degrade sharply past the ~32 Hz knee",
                bench::ratio_detail("64Hz/16Hz",
                                    mean_response.at(64) /
                                        mean_response.at(16)));
  checks.expect(success_pct.at(256) < 50.0,
                "most requests dropped far past saturation (256 Hz)",
                bench::ratio_detail("success @256Hz [%]",
                                    success_pct.at(256)));
  checks.expect(success_pct.at(1024) < success_pct.at(128),
                "failure share keeps growing with the arrival rate",
                bench::ratio_detail("success @1024Hz [%]",
                                    success_pct.at(1024)));
  return checks.finish("fig8_saturation");
}
