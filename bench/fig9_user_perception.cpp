// Fig. 9 + Fig. 10b/10c — the 8-hour closed-loop experiment.
//
// Setup (§VI-C.1): 100 users, static minimax requests, trace-driven
// inter-arrivals from the smartphone study (sessions in the 100-5000 ms
// band separated by long idle gaps — the paper's 8 h run produced ~4000
// requests), three acceleration groups backed by t2.nano / t2.large /
// m4.4xlarge, promotion probability 1/50, and a 50-user background burst
// induced into every back-end server every 2 seconds.  The adaptive model
// re-provisions hourly under the CC=20 account cap.
//
// Emitted series:
//   fig9b  — response trajectory of a user never promoted (stays level 1)
//   fig9c  — response trajectory of a user promoted up to level 3
//   fig10b — every request: (index, group, response) heat-map points
//   fig10c — per user: requests and mean response per group (promotion map)
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "core/system.h"
#include "exp/scenario.h"
#include "util/csv.h"

int main() {
  using namespace mca;
  bench::check_list checks;
  tasks::task_pool pool;

  // The paper's §VI-C.1 deployment as a declarative scenario: session-
  // structured study gaps (80% in-session, 20% idle — calibrated so 100
  // users produce ~4000 requests over 8 h), three groups, 1/50 promotion,
  // 50-request background bursts every 2 s.  These are exactly the
  // scenario_spec defaults; the per-request series below come from
  // replication 0 of this spec's seed sweep (fig_suite's builtin
  // fig9_closed_loop scenario shares the config but runs a trimmed
  // duration, so its aggregates are not directly comparable).
  exp::scenario_spec spec;
  spec.name = "fig9_closed_loop";
  spec.base_seed = 2017;
  spec.duration = util::hours(8);

  const auto metrics = exp::run_replication(
      spec, pool, exp::replication_context{0, spec.base_seed});
  const std::size_t user_count = spec.user_count;

  // Pick the paper's two exemplar users: the busiest never-promoted user
  // and the busiest user that reached level 3.
  user_id stable_user = 0;
  std::size_t stable_requests = 0;
  user_id promoted_user = 0;
  std::size_t promoted_requests = 0;
  for (user_id u = 0; u < user_count; ++u) {
    const auto groups = metrics.user_group_series(u);
    if (groups.empty()) continue;
    const bool never_promoted = groups.back() == 1;
    const bool reached_top = groups.back() == 3;
    if (never_promoted && groups.size() > stable_requests) {
      stable_requests = groups.size();
      stable_user = u;
    }
    if (reached_top && groups.size() > promoted_requests) {
      promoted_requests = groups.size();
      promoted_user = u;
    }
  }

  bench::section("Fig. 9b data: never-promoted user");
  {
    util::csv_writer csv{std::cout, {"request", "response_ms", "group"}};
    const auto responses = metrics.user_response_series(stable_user);
    const auto groups = metrics.user_group_series(stable_user);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      csv.row_values(i, responses[i], static_cast<unsigned>(groups[i]));
    }
  }
  bench::section("Fig. 9c data: user promoted to level 3");
  {
    util::csv_writer csv{std::cout, {"request", "response_ms", "group"}};
    const auto responses = metrics.user_response_series(promoted_user);
    const auto groups = metrics.user_group_series(promoted_user);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      csv.row_values(i, responses[i], static_cast<unsigned>(groups[i]));
    }
  }

  bench::section("Fig. 10b data: all requests (heat-map points)");
  {
    util::csv_writer csv{std::cout, {"request", "group", "response_ms"}};
    std::size_t index = 0;
    for (const auto& r : metrics.requests) {
      if (r.success) {
        csv.row_values(index++, static_cast<unsigned>(r.group),
                       r.response_ms);
      }
    }
  }

  bench::section("Fig. 10c data: per-user promotion map");
  struct user_group_cell {
    util::running_stats response;
  };
  std::map<std::pair<user_id, group_id>, user_group_cell> cells;
  for (const auto& r : metrics.requests) {
    if (r.success) cells[{r.user, r.group}].response.add(r.response_ms);
  }
  {
    util::csv_writer csv{std::cout,
                         {"user", "group", "requests", "mean_response_ms"}};
    for (const auto& [key, cell] : cells) {
      csv.row_values(static_cast<unsigned>(key.first),
                     static_cast<unsigned>(key.second),
                     cell.response.count(), cell.response.mean());
    }
  }

  // ---- summary + shape checks ----
  util::running_stats per_group_mean[4];
  std::size_t successes = 0;
  for (const auto& r : metrics.requests) {
    if (!r.success) continue;
    ++successes;
    if (r.group >= 1 && r.group <= 3) per_group_mean[r.group].add(r.response_ms);
  }
  bench::section("summary");
  std::printf("requests: %zu (paper: ~4000)   promotions: %llu   cost: $%.2f\n",
              metrics.requests.size(),
              static_cast<unsigned long long>(metrics.promotions),
              metrics.total_cost_usd);
  for (group_id g = 1; g <= 3; ++g) {
    std::printf("level %u: %6zu requests, mean %7.0f ms\n", g,
                per_group_mean[g].count(), per_group_mean[g].mean());
  }

  checks.expect(metrics.requests.size() > 2'000 &&
                    metrics.requests.size() < 8'000,
                "8h workload produces ~4000 requests",
                std::to_string(metrics.requests.size()) + " requests");
  checks.expect(stable_requests > 10 && promoted_requests > 10,
                "both exemplar users are active",
                std::to_string(stable_requests) + " / " +
                    std::to_string(promoted_requests) + " requests");
  // The stable user's perceived time stays high; the promoted user's time
  // drops with each promotion.
  const auto stable_series = metrics.user_response_series(stable_user);
  util::running_stats stable_stats;
  for (const double r : stable_series) stable_stats.add(r);
  checks.expect(stable_stats.mean() > 1'000.0,
                "never-promoted user perceives a high, stable response",
                bench::ratio_detail("mean [ms]", stable_stats.mean()));
  util::running_stats promoted_l1;
  util::running_stats promoted_l3;
  {
    const auto responses = metrics.user_response_series(promoted_user);
    const auto groups = metrics.user_group_series(promoted_user);
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (groups[i] == 1) promoted_l1.add(responses[i]);
      if (groups[i] == 3) promoted_l3.add(responses[i]);
    }
  }
  checks.expect(promoted_l3.mean() < promoted_l1.mean() * 0.6,
                "promotion to level 3 shortens perceived response",
                bench::ratio_detail("L3/L1",
                                    promoted_l3.mean() /
                                        std::max(promoted_l1.mean(), 1.0)));
  checks.expect(per_group_mean[3].mean() < per_group_mean[1].mean(),
                "higher groups are faster across the whole workload",
                bench::ratio_detail("L1/L3 mean ratio",
                                    per_group_mean[1].mean() /
                                        per_group_mean[3].mean()));
  checks.expect(metrics.promotions > 20,
                "the 1/50 policy produces steady promotion flow",
                std::to_string(metrics.promotions) + " promotions");
  return checks.finish("fig9_user_perception");
}
