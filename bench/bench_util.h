// Shared helpers for the figure-reproduction benches.
//
// Every bench prints (1) the figure's data series as CSV to stdout so the
// plot can be regenerated with gnuplot, and (2) [CHECK] lines asserting
// the *shape* statements the paper makes (who wins, by what factor, where
// the knee is).  A bench exits nonzero if any check fails.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

namespace mca::bench {

/// Prints a section banner.
inline void section(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Records and prints one shape check; returns the running failure count
/// delta (0 ok, 1 failed).
class check_list {
 public:
  void expect(bool condition, const std::string& label,
              const std::string& detail) {
    std::printf("[CHECK] %-58s %s  (%s)\n", label.c_str(),
                condition ? "PASS" : "FAIL", detail.c_str());
    if (!condition) ++failures_;
  }

  /// Prints the summary line and returns the process exit code.
  int finish(const std::string& bench_name) const {
    if (failures_ == 0) {
      std::printf("\n%s: all shape checks passed\n", bench_name.c_str());
      return 0;
    }
    std::printf("\n%s: %d shape check(s) FAILED\n", bench_name.c_str(),
                failures_);
    return 1;
  }

 private:
  int failures_ = 0;
};

/// Formats "x.xx times" ratios for check details.
inline std::string ratio_detail(const char* name, double value) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s = %.3f", name, value);
  return buf;
}

// ---- CLI flags -----------------------------------------------------------
// The perf harnesses share a tiny "--flag value" convention (fig_suite:
// --jobs/--seeds/--scenario/..., micro_ops: the output path).

/// The value following `flag` in argv, if present.
inline std::optional<std::string> flag_value(int argc, char** argv,
                                             const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return std::string{argv[i + 1]};
  }
  return std::nullopt;
}

/// True when the bare `flag` appears in argv.
inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

/// Strictly parsed positive "--flag N"; exits rather than letting a typo
/// (e.g. "--replications x" -> 0) degrade a suite into a vacuous run.
/// `bench_name` prefixes the error message.
inline std::size_t flag_count(int argc, char** argv, const std::string& flag,
                              std::size_t fallback, const char* bench_name) {
  const auto value = flag_value(argc, argv, flag);
  if (!value) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value->c_str(), &end, 10);
  if (value->empty() || end == nullptr || *end != '\0' || parsed == 0) {
    std::fprintf(stderr, "%s: %s needs a positive integer, got '%s'\n",
                 bench_name, flag.c_str(), value->c_str());
    std::exit(2);
  }
  return static_cast<std::size_t>(parsed);
}

/// Parses a comma-separated integer list ("2017,2018,2019").  Strict:
/// returns an empty vector when any item fails to parse, so callers can
/// distinguish a typo from a valid list.
inline std::vector<std::uint64_t> parse_id_list(const std::string& text) {
  std::vector<std::uint64_t> ids;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!item.empty()) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(item.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return {};
      ids.push_back(parsed);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return ids;
}

// ---- BENCH_*.json series ------------------------------------------------
// The machine-readable perf trajectory tracked PR over PR (micro_ops
// writes BENCH_micro_ops.json with these; fig_suite writes the richer
// BENCH_figures.json itself but reuses the conventions).

/// One measured series, optionally with the frozen-baseline comparison.
struct series_entry {
  std::string name;
  std::string unit;
  double current = 0.0;
  double legacy = 0.0;  ///< 0 = no baseline for this series
  double speedup = 0.0;
};

/// Writes the BENCH_*.json document micro_ops-style benches emit.
inline bool write_series_json(const std::string& path,
                              const std::string& bench_name,
                              const std::vector<series_entry>& series,
                              bool checks_passed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "%s: cannot write %s\n", bench_name.c_str(),
                 path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"schema\": 1,\n",
               bench_name.c_str());
  std::fprintf(f, "  \"checks_passed\": %s,\n",
               checks_passed ? "true" : "false");
  std::fprintf(f, "  \"series\": [\n");
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& s = series[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"unit\": \"%s\", \"value\": %.6g",
                 s.name.c_str(), s.unit.c_str(), s.current);
    if (s.legacy > 0.0) {
      std::fprintf(f, ", \"legacy\": %.6g, \"speedup\": %.4g", s.legacy,
                   s.speedup);
    }
    std::fprintf(f, "}%s\n", i + 1 < series.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

}  // namespace mca::bench
