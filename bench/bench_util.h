// Shared helpers for the figure-reproduction benches.
//
// Every bench prints (1) the figure's data series as CSV to stdout so the
// plot can be regenerated with gnuplot, and (2) [CHECK] lines asserting
// the *shape* statements the paper makes (who wins, by what factor, where
// the knee is).  A bench exits nonzero if any check fails.
#pragma once

#include <cstdio>
#include <string>

namespace mca::bench {

/// Prints a section banner.
inline void section(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

/// Records and prints one shape check; returns the running failure count
/// delta (0 ok, 1 failed).
class check_list {
 public:
  void expect(bool condition, const std::string& label,
              const std::string& detail) {
    std::printf("[CHECK] %-58s %s  (%s)\n", label.c_str(),
                condition ? "PASS" : "FAIL", detail.c_str());
    if (!condition) ++failures_;
  }

  /// Prints the summary line and returns the process exit code.
  int finish(const std::string& bench_name) const {
    if (failures_ == 0) {
      std::printf("\n%s: all shape checks passed\n", bench_name.c_str());
      return 0;
    }
    std::printf("\n%s: %d shape check(s) FAILED\n", bench_name.c_str(),
                failures_);
    return 1;
  }

 private:
  int failures_ = 0;
};

/// Formats "x.xx times" ratios for check details.
inline std::string ratio_detail(const char* name, double value) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s = %.3f", name, value);
  return buf;
}

}  // namespace mca::bench
