// Fig. 6 — the t2.nano / t2.micro anomaly.
//
// Amazon sells the micro as the stronger instance (2x the memory, 2x the
// price, free-tier eligible), yet under multi-user offloading load the
// nano serves requests faster and more predictably.  The paper plots mean
// and standard deviation for both types and demotes the micro to group 0.
// Our simulator reproduces the observable anomaly with a CPU-steal +
// jitter model on the micro (cause unknown in the paper; see DESIGN.md).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/classifier.h"
#include "exp/runner.h"
#include "util/csv.h"

int main() {
  using namespace mca;
  bench::check_list checks;
  tasks::task_pool pool;

  core::classifier_config config;
  config.rounds_per_level = 10;
  config.seed = 66;

  const char* type_names[] = {"t2.nano", "t2.micro"};
  exp::thread_pool workers;
  const auto profiles = exp::parallel_map(workers, 2, [&](std::size_t i) {
    return core::characterize_type(cloud::type_by_name(type_names[i]), pool,
                                   config);
  });
  const auto& nano = profiles[0];
  const auto& micro = profiles[1];

  bench::section("Fig. 6 data: nano vs micro, average and SD");
  util::csv_writer csv{std::cout,
                       {"type", "users", "mean_ms", "stddev_ms"}};
  for (const auto& point : nano.curve) {
    csv.row_values("t2.nano", point.users, point.mean_ms, point.stddev_ms);
  }
  for (const auto& point : micro.curve) {
    csv.row_values("t2.micro", point.users, point.mean_ms, point.stddev_ms);
  }

  // Compare the loaded half of the curve (the anomaly emerges under load).
  double nano_loaded_mean = 0.0;
  double micro_loaded_mean = 0.0;
  double nano_loaded_sd = 0.0;
  double micro_loaded_sd = 0.0;
  std::size_t loaded_points = 0;
  for (std::size_t i = 0; i < nano.curve.size(); ++i) {
    if (nano.curve[i].users < 40) continue;
    nano_loaded_mean += nano.curve[i].mean_ms;
    micro_loaded_mean += micro.curve[i].mean_ms;
    nano_loaded_sd += nano.curve[i].stddev_ms;
    micro_loaded_sd += micro.curve[i].stddev_ms;
    ++loaded_points;
  }
  nano_loaded_mean /= static_cast<double>(loaded_points);
  micro_loaded_mean /= static_cast<double>(loaded_points);
  nano_loaded_sd /= static_cast<double>(loaded_points);
  micro_loaded_sd /= static_cast<double>(loaded_points);

  bench::section("anomaly summary (users >= 40)");
  std::printf("t2.nano : mean %7.0f ms, SD %7.0f ms, $%.4f/h\n",
              nano_loaded_mean, nano_loaded_sd,
              cloud::type_by_name("t2.nano").cost_per_hour);
  std::printf("t2.micro: mean %7.0f ms, SD %7.0f ms, $%.4f/h\n",
              micro_loaded_mean, micro_loaded_sd,
              cloud::type_by_name("t2.micro").cost_per_hour);

  checks.expect(micro_loaded_mean > nano_loaded_mean * 1.1,
                "micro is slower than nano under load despite higher price",
                bench::ratio_detail("micro/nano mean",
                                    micro_loaded_mean / nano_loaded_mean));
  checks.expect(micro_loaded_sd > nano_loaded_sd * 1.25,
                "micro is noisier than nano (SD curves)",
                bench::ratio_detail("micro/nano SD",
                                    micro_loaded_sd / nano_loaded_sd));
  checks.expect(micro.capacity_users <= nano.capacity_users,
                "micro's capacity under the bound does not exceed nano's",
                std::to_string(micro.capacity_users) + " vs " +
                    std::to_string(nano.capacity_users));

  // And the consequence: classification sends micro to group 0.
  std::vector<cloud::instance_type> pair = {cloud::type_by_name("t2.nano"),
                                            cloud::type_by_name("t2.micro")};
  const auto map = core::classify(pair, pool, config);
  checks.expect(map.group_of("t2.micro") == 0 && map.group_of("t2.nano") == 1,
                "classifier assigns micro to group 0, nano to level 1",
                "micro->0, nano->1");
  return checks.finish("fig6_nano_micro_anomaly");
}
