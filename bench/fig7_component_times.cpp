// Fig. 7 — where a request's time goes.
//
// (b) Per acceleration level 1-4 (c4.8xlarge joins as level 4): the mean
//     T_response and its decomposition T1 (mobile<->front-end over LTE),
//     T2 (front-end handling + internal hops) and T_cloud, measured with
//     30 concurrent users (§VI-B.1).
// (c) Stability: the standard deviation of response time per level as
//     concurrent load rises 1..100.
//
// Paper statements checked: front-end overhead ≈150 ms, T1+T2 < 1 s,
// T_cloud dominates and shrinks with the level.
#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.h"
#include "core/sdn_accelerator.h"
#include "exp/curves.h"
#include "exp/runner.h"
#include "net/operators.h"
#include "sim/simulation.h"
#include "tasks/task.h"
#include "util/csv.h"
#include "workload/generator.h"

namespace {

const std::map<mca::group_id, std::string> kLevels = {
    {1, "t2.nano"}, {2, "t2.large"}, {3, "m4.10xlarge"}, {4, "c4.8xlarge"}};

}  // namespace

int main() {
  using namespace mca;
  bench::check_list checks;
  tasks::task_pool pool;

  // --- Fig. 7b: component means at 30 concurrent users per level ---
  struct component_stats {
    util::running_stats total, t1, t2, cloud;
  };
  std::map<group_id, component_stats> components;

  {
    sim::simulation sim;
    util::rng rng{777};
    cloud::backend_pool backend{sim, rng.fork()};
    for (const auto& [group, type] : kLevels) {
      backend.launch(group, cloud::type_by_name(type));
    }
    trace::log_store log;
    core::sdn_config config;
    core::sdn_accelerator sdn{sim,  backend, net::default_lte_model(),
                              &log, config,  rng.fork()};

    // 30 concurrent users fire the static minimax at each level, several
    // rounds with cool-downs.
    request_id next_id = 0;
    const auto minimax = pool.static_minimax_request();
    for (const auto& [group, type] : kLevels) {
      for (int round = 0; round < 8; ++round) {
        const double burst_at =
            static_cast<double>(group) * 1e7 + round * 60'000.0;
        for (int u = 0; u < 30; ++u) {
          sim.schedule_at(burst_at, [&, group, u] {
            workload::offload_request request;
            request.id = ++next_id;
            request.user = static_cast<user_id>(u);
            request.work = minimax;
            request.created_at = sim.now();
            sdn.submit(request, group, 1.0,
                       [&components, group](const workload::offload_request&,
                                            const core::request_timing& t) {
                         if (!t.success) return;
                         auto& c = components[group];
                         c.total.add(t.total());
                         c.t1.add(t.t1());
                         c.t2.add(t.t2());
                         c.cloud.add(t.cloud);
                       });
          });
        }
      }
    }
    sim.run();

    bench::section("Fig. 7b data: component means per level (30 users)");
    util::csv_writer csv{std::cout, {"level", "Tresponse_ms", "T1_ms",
                                     "T2_ms", "Tcloud_ms"}};
    for (const auto& [group, c] : components) {
      csv.row_values(static_cast<unsigned>(group), c.total.mean(),
                     c.t1.mean(), c.t2.mean(), c.cloud.mean());
    }
  }

  // --- Fig. 7c: response-time SD per level vs concurrent users ---
  // The same single-server sweep as Fig. 5, shared via the experiment
  // runner; the four levels fan out over the pool.
  bench::section("Fig. 7c data: response-time SD per level vs load");
  std::map<group_id, std::vector<std::pair<std::size_t, double>>> sd_curves;
  {
    const std::vector<std::pair<group_id, std::string>> levels{
        kLevels.begin(), kLevels.end()};
    exp::thread_pool workers;
    const auto curves =
        exp::parallel_map(workers, levels.size(), [&](std::size_t i) {
          exp::load_curve_config config;
          config.rounds = 6;
          config.seed = 778 + static_cast<std::uint64_t>(levels[i].first);
          return exp::response_vs_users(levels[i].second,
                                        pool.static_minimax_request(), config);
        });
    util::csv_writer csv{std::cout, {"level", "users", "stddev_ms"}};
    for (std::size_t i = 0; i < levels.size(); ++i) {
      for (const auto& point : curves[i]) {
        sd_curves[levels[i].first].emplace_back(point.users,
                                                point.response.stddev);
        csv.row_values(static_cast<unsigned>(levels[i].first), point.users,
                       point.response.stddev);
      }
    }
  }

  // --- shape checks ---
  const auto& level1 = components.at(1);
  const auto& level4 = components.at(4);
  checks.expect(std::abs(level1.t2.mean() - 156.0) < 25.0,
                "front-end handling (within T2) is ~150 ms",
                bench::ratio_detail("T2 mean [ms]", level1.t2.mean()));
  bool t1t2_under_second = true;
  for (const auto& [group, c] : components) {
    if (c.t1.mean() + c.t2.mean() >= 1'000.0) t1t2_under_second = false;
  }
  checks.expect(t1t2_under_second, "total communication T1+T2 < 1 second",
                bench::ratio_detail("L1 T1+T2 [ms]",
                                    level1.t1.mean() + level1.t2.mean()));
  checks.expect(level1.cloud.mean() >
                    level1.t1.mean() + level1.t2.mean(),
                "Tcloud is the dominant component at level 1",
                bench::ratio_detail("Tcloud/T1+T2",
                                    level1.cloud.mean() /
                                        (level1.t1.mean() + level1.t2.mean())));
  bool monotone = true;
  for (group_id g = 2; g <= 4; ++g) {
    if (components.at(g).cloud.mean() >=
        components.at(g - 1).cloud.mean()) {
      monotone = false;
    }
  }
  checks.expect(monotone, "Tcloud decreases with every acceleration level",
                bench::ratio_detail("L1 vs L4 Tcloud [ms]",
                                    level1.cloud.mean() -
                                        level4.cloud.mean()));
  checks.expect(level4.total.mean() < level1.total.mean(),
                "c4.8xlarge (level 4) beats every lower level",
                bench::ratio_detail("L1/L4 Tresponse",
                                    level1.total.mean() /
                                        level4.total.mean()));
  // 7c: higher levels are more stable under load.
  const double l1_sd_100 = sd_curves[1].back().second;
  const double l4_sd_100 = sd_curves[4].back().second;
  checks.expect(l4_sd_100 < l1_sd_100,
                "higher acceleration levels are more stable (SD @100 users)",
                bench::ratio_detail("L1/L4 SD", l1_sd_100 / l4_sd_100));
  return checks.finish("fig7_component_times");
}
