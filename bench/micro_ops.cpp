// Perf harness for the control-path hot spots: event-engine throughput,
// simplex pivot rate, and end-to-end allocate_ilp latency, each measured
// against the frozen pre-refactor implementation (legacy_baseline.h) in
// the same binary.  Emits machine-readable BENCH_micro_ops.json (path
// overridable via argv[1]) so the perf trajectory is tracked PR over PR.
//
// Usage: micro_ops [output.json]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cloud/instance.h"
#include "core/allocator.h"
#include "exp/bench_clock.h"
#include "ilp/simplex.h"
#include "legacy_baseline.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace {

using namespace mca;
using exp::best_seconds;

/// Deterministic 64-bit mix so both engines see identical event times.
std::uint64_t splitmix(std::uint64_t& state) {
  return util::splitmix64(state);
}

constexpr int kEventCount = 200'000;
constexpr int kTrials = 5;

/// Steady-state event loop, the shape the simulators actually produce: a
/// fixed population of pending events (completions, timers) where every
/// fired event schedules a successor at a pseudo-random future time.
template <typename Sim>
std::size_t event_steady_state_workload() {
  Sim sim;
  constexpr int kPopulation = 16'384;
  std::uint64_t seed = 42;
  struct rearm {
    Sim& sim;
    std::uint64_t& seed;
    std::size_t remaining;
    void operator()() {
      if (remaining == 0) return;
      const double delta = 1.0 + static_cast<double>(splitmix(seed) % 10'000u);
      sim.schedule_after(delta, rearm{sim, seed, remaining - 1});
    }
  };
  constexpr std::size_t kChain = kEventCount / kPopulation;
  for (int i = 0; i < kPopulation; ++i) {
    const double at = static_cast<double>(splitmix(seed) % 10'000u);
    sim.schedule_at(at, rearm{sim, seed, kChain});
  }
  sim.run();
  return sim.executed_events();
}

/// Worst-case burst: schedule kEventCount no-op events at pseudo-random
/// times, then drain the full heap.
template <typename Sim>
std::size_t event_burst_workload() {
  Sim sim;
  std::uint64_t seed = 42;
  for (int i = 0; i < kEventCount; ++i) {
    const double at = static_cast<double>(splitmix(seed) % 1'000'000u);
    sim.schedule_at(at, [] {});
  }
  sim.run();
  return sim.executed_events();
}

/// The closed-loop request pattern that dominates the paper's experiments:
/// every request schedules a completion plus a timeout timer, and the
/// completion cancels the timeout (requests finish before their deadline).
/// Per fired event: two schedules and one cancellation.
template <typename Sim, typename Handle>
std::size_t event_request_workload() {
  Sim sim;
  constexpr std::uint32_t kInFlight = 8'192;
  struct context {
    Sim& sim;
    std::uint64_t seed = 11;
    std::vector<Handle> timeouts;
  } ctx{sim, 11, std::vector<Handle>(kInFlight)};
  struct complete {
    context* c;
    std::uint32_t lane;
    std::uint32_t remaining;
    void operator()() const {
      c->sim.cancel(c->timeouts[lane]);  // finished before the deadline
      if (remaining == 0) return;
      const double service =
          1.0 + static_cast<double>(splitmix(c->seed) % 200u);
      c->sim.schedule_after(service, complete{c, lane, remaining - 1});
      c->timeouts[lane] = c->sim.schedule_after(service + 500.0, [] {});
    }
  };
  constexpr std::uint32_t kChain = kEventCount / kInFlight;
  for (std::uint32_t lane = 0; lane < kInFlight; ++lane) {
    const double at = 1.0 + static_cast<double>(splitmix(ctx.seed) % 200u);
    sim.schedule_at(at, complete{&ctx, lane, kChain});
    ctx.timeouts[lane] = sim.schedule_at(at + 500.0, [] {});
  }
  sim.run();
  return sim.executed_events();
}

/// Timer-churn pattern: every scheduled event displaces an older one, the
/// way RTT/keepalive timers are rearmed; half the handles get cancelled.
template <typename Sim, typename Handle>
std::size_t event_cancel_workload() {
  Sim sim;
  std::uint64_t seed = 7;
  std::vector<Handle> window(64);
  for (int i = 0; i < kEventCount; ++i) {
    const double at = static_cast<double>(splitmix(seed) % 1'000'000u);
    const std::size_t slot = static_cast<std::size_t>(i) % window.size();
    if (window[slot].valid()) sim.cancel(window[slot]);
    window[slot] = sim.schedule_at(at, [] {});
  }
  sim.run();
  // Almost every schedule is later cancelled; the interesting rate is
  // schedule+cancel ops, not the 64 surviving events.  The executed count
  // still cross-checks determinism because both engines must agree on it.
  return sim.executed_events() == window.size() ? kEventCount : 0;
}

/// Backend PS workload: a c5.xlarge-shaped server under a closed loop
/// (every completion resubmits) holding ~192 requests in flight — deep
/// enough that the legacy sweep's O(n) advance + min-scan + cancel/
/// re-insert per event dominates its cost.  (At shallow depths the sweep
/// vectorizes to near-free and the two legs are within host noise; the
/// series exists to track the asymptotic O(1)-vs-O(n) difference, so the
/// depth must make that difference the signal.)  Both legs run on the
/// current event engine with identical work and jitter streams, so the
/// series isolates the PS math.
constexpr int kBackendOps = 60'000;
constexpr int kBackendInFlight = 192;

cloud::instance_type backend_type() {
  cloud::instance_type t;
  t.name = "bench.backend";
  t.vcpus = 4.0;
  t.memory_gb = 64.0;
  t.cost_per_hour = 0.2;
  t.speed_factor = 1.0;
  t.jitter_sigma = 0.25;
  t.steal_max = 0.3;
  t.baseline_fraction = 1.0;
  return t;
}

template <typename Server>
void drive_backend(sim::simulation& sim, Server& server) {
  std::uint64_t seed = 99;
  std::uint64_t budget = kBackendOps;
  std::function<void(double, bool)> on_done = [&](double, bool) {
    if (budget == 0) return;
    --budget;
    const double work = 1.0 + static_cast<double>(splitmix(seed) % 200u);
    server.submit(work, on_done);
  };
  for (int i = 0; i < kBackendInFlight; ++i) {
    const double work = 1.0 + static_cast<double>(splitmix(seed) % 200u);
    server.submit(work, on_done);
  }
  sim.run();
}

struct backend_run {
  std::uint64_t completions = 0;
  double service_sum = 0.0;
};

backend_run backend_workload_new() {
  sim::simulation sim;
  cloud::instance server{sim, 1, backend_type(), util::rng{2024}};
  drive_backend(sim, server);
  return {server.completed(), server.service_stats().sum()};
}

backend_run backend_workload_legacy() {
  sim::simulation sim;
  legacy::ps_instance server{sim, backend_type(), util::rng{2024}};
  drive_backend(sim, server);
  return {server.completed(), server.service_sum()};
}

/// A mid-size allocation-shaped LP: 24 columns, capacity rows per group
/// plus a shared cap, fractional optimum.
ilp::problem make_lp() {
  ilp::problem p;
  std::vector<std::size_t> vars;
  for (int g = 0; g < 6; ++g) {
    for (int c = 0; c < 4; ++c) {
      const double cost = 0.05 + 0.11 * c + 0.015 * g;
      vars.push_back(p.add_variable(cost, 0.0, 30.0));
    }
  }
  for (int g = 0; g < 6; ++g) {
    std::vector<ilp::linear_term> terms;
    for (int c = 0; c < 4; ++c) {
      terms.push_back({vars[static_cast<std::size_t>(4 * g + c)],
                       7.0 + 9.0 * c + 1.3 * g});
    }
    p.add_constraint(std::move(terms), ilp::relation::greater_equal,
                     41.0 + 23.0 * g);
  }
  std::vector<ilp::linear_term> cap;
  for (const auto v : vars) cap.push_back({v, 1.0});
  p.add_constraint(std::move(cap), ilp::relation::less_equal, 120.0);
  return p;
}

/// The acceptance workload: 8 groups x 4 candidates under a shared cap.
core::allocation_request make_8x4_request() {
  core::allocation_request request;
  request.max_total_instances = 64;
  for (int g = 0; g < 8; ++g) {
    request.workload_per_group.push_back(22.0 + 13.0 * g);
    std::vector<core::allocation_candidate> candidates;
    for (int c = 0; c < 4; ++c) {
      core::allocation_candidate cand;
      cand.type_name = "type" + std::to_string(c) + ".g" + std::to_string(g);
      cand.capacity_per_instance = 9.0 + 17.0 * c + 1.7 * g;
      cand.cost_per_hour = 0.02 + 0.055 * c * c + 0.004 * g;
      candidates.push_back(cand);
    }
    request.candidates_per_group.push_back(std::move(candidates));
  }
  return request;
}

/// Fleet-scale allocation: 64 groups x 8 candidate tiers under one
/// account cap — 512 integer columns against a 65-row tableau (the
/// explicit-row formulation would need 577 rows).  Capacity tiers are 13
/// apart with tier 1 the best capacity-per-dollar everywhere; most groups'
/// demands sit on that tier's quantum (integral LP vertices, the common
/// case for a provisioned fleet) and every 16th group lands off-quantum,
/// so the solve still branches through warm-started dual re-optimizations
/// rather than finishing at the root.
core::allocation_request make_64x8_request() {
  core::allocation_request request;
  constexpr int kGroups = 64;
  request.max_total_instances = 8 * kGroups;
  for (int g = 0; g < kGroups; ++g) {
    const int quanta = 1 + (g % 5);
    double workload = 21.0 * quanta - 1.0;
    if (g % 16 == 0) workload += 9.0;
    request.workload_per_group.push_back(workload);
    std::vector<core::allocation_candidate> candidates;
    for (int c = 0; c < 8; ++c) {
      core::allocation_candidate cand;
      cand.type_name = "tier" + std::to_string(c);
      cand.capacity_per_instance = 8.0 + 13.0 * c;
      cand.cost_per_hour = (0.02 + 0.03 * c * c) * (1.0 + 0.02 * (g % 5));
      candidates.push_back(cand);
    }
    request.candidates_per_group.push_back(std::move(candidates));
  }
  return request;
}

using bench::series_entry;

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_micro_ops.json";
  std::vector<series_entry> series;
  bench::check_list checks;

  // ---- event engine ------------------------------------------------------
  // Four workloads: the gated primary is the closed-loop request pattern
  // (schedule + timeout + cancel per event), the shape §V's experiments
  // actually produce; the rest chart the engine from other angles.
  const auto event_series = [&](const char* title, const char* name,
                                std::size_t (*current_fn)(),
                                std::size_t (*legacy_fn)(), double gate) {
    bench::section(title);
    std::size_t executed_new = 0;
    std::size_t executed_old = 0;
    const double t_new =
        best_seconds(kTrials, [&] { executed_new = current_fn(); });
    const double t_old =
        best_seconds(kTrials, [&] { executed_old = legacy_fn(); });
    checks.expect(executed_new == executed_old,
                  std::string(name) + ": identical event counts",
                  bench::ratio_detail("executed",
                                      static_cast<double>(executed_new)));
    series_entry s;
    s.name = name;
    s.unit = "events/sec";
    s.current = static_cast<double>(executed_new) / t_new;
    s.legacy = static_cast<double>(executed_old) / t_old;
    s.speedup = s.current / s.legacy;
    std::printf("new:    %12.0f events/sec\nlegacy: %12.0f events/sec\n",
                s.current, s.legacy);
    if (gate > 0.0) {
      checks.expect(s.speedup >= gate,
                    std::string(name) + " >= " + std::to_string(gate).substr(0, 3) +
                        "x legacy",
                    bench::ratio_detail("speedup", s.speedup));
    }
    series.push_back(s);
  };

  event_series("event engine: request/timeout/cancel loop (primary)",
               "event_throughput",
               event_request_workload<sim::simulation, sim::event_handle>,
               event_request_workload<legacy::simulation, legacy::event_handle>,
               2.0);
  event_series("event engine: steady-state rearm, no cancels",
               "event_steady_state",
               event_steady_state_workload<sim::simulation>,
               event_steady_state_workload<legacy::simulation>, 0.0);
  event_series("event engine: burst schedule + full drain", "event_burst",
               event_burst_workload<sim::simulation>,
               event_burst_workload<legacy::simulation>, 0.0);
  event_series("event engine: cancellation churn (schedule+cancel ops)",
               "event_cancel_churn",
               event_cancel_workload<sim::simulation, sim::event_handle>,
               event_cancel_workload<legacy::simulation, legacy::event_handle>,
               2.0);

  // ---- processor-sharing backend -----------------------------------------
  bench::section("backend: PS event math (virtual-time vs legacy sweep)");
  {
    backend_run run_new;
    backend_run run_old;
    // Interleave the trials (new, legacy, new, legacy, ...) instead of
    // running each leg as one best-of-N block: a multi-second host-noise
    // window then degrades both legs' candidate timings equally rather
    // than cratering whichever block it happens to land on, so the ratio
    // below stays stable even when absolute ns/op swings.
    double t_new = std::numeric_limits<double>::infinity();
    double t_old = std::numeric_limits<double>::infinity();
    for (int trial = 0; trial < kTrials; ++trial) {
      t_new = std::min(
          t_new, exp::seconds_of([&] { run_new = backend_workload_new(); }));
      t_old = std::min(
          t_old, exp::seconds_of([&] { run_old = backend_workload_legacy(); }));
    }
    checks.expect(run_new.completions == run_old.completions,
                  "backend_event: identical completion counts",
                  bench::ratio_detail(
                      "completions", static_cast<double>(run_new.completions)));
    const double sum_scale =
        std::max(std::abs(run_new.service_sum), std::abs(run_old.service_sum));
    checks.expect(std::abs(run_new.service_sum - run_old.service_sum) <=
                      1e-6 * sum_scale,
                  "backend_event: service-time totals agree with legacy sweep",
                  bench::ratio_detail("sum_ms", run_new.service_sum));
    series_entry s;
    s.name = "backend_event";
    s.unit = "ns/op";
    s.current = 1e9 * t_new / static_cast<double>(run_new.completions);
    s.legacy = 1e9 * t_old / static_cast<double>(run_old.completions);
    s.speedup = s.legacy / s.current;  // ns/op: smaller is better
    std::printf("new:    %10.1f ns/op\nlegacy: %10.1f ns/op\n", s.current,
                s.legacy);
    checks.expect(s.speedup >= 1.5, "backend_event >= 1.5x legacy",
                  bench::ratio_detail("speedup", s.speedup));
    series.push_back(s);
  }

  // ---- simplex -----------------------------------------------------------
  bench::section("simplex: LP relaxation solves");
  const ilp::problem lp = make_lp();
  constexpr int kLpReps = 400;
  std::size_t pivots = 0;
  double objective_new = 0.0;
  double objective_old = 0.0;
  const double t_lp_new = best_seconds(kTrials, [&] {
    pivots = 0;
    for (int i = 0; i < kLpReps; ++i) {
      const auto sol = ilp::solve_lp(lp);
      pivots += sol.iterations;
      objective_new = sol.objective;
    }
  });
  const double t_lp_old = best_seconds(kTrials, [&] {
    for (int i = 0; i < kLpReps; ++i) {
      objective_old = legacy::solve_lp(lp).objective;
    }
  });
  checks.expect(std::abs(objective_new - objective_old) < 1e-6,
                "simplex objectives agree with legacy",
                bench::ratio_detail("objective", objective_new));
  {
    series_entry s;
    s.name = "simplex_solves";
    s.unit = "solves/sec";
    s.current = kLpReps / t_lp_new;
    s.legacy = kLpReps / t_lp_old;
    s.speedup = s.current / s.legacy;
    std::printf("new:    %12.0f solves/sec  (%.0f pivots/sec)\n", s.current,
                static_cast<double>(pivots) / t_lp_new);
    std::printf("legacy: %12.0f solves/sec\n", s.legacy);
    series.push_back(s);

    series_entry sp;
    sp.name = "simplex_pivots";
    sp.unit = "pivots/sec";
    sp.current = static_cast<double>(pivots) / t_lp_new;
    series.push_back(sp);
  }

  // ---- allocator ---------------------------------------------------------
  bench::section("allocate_ilp: 8 groups x 4 candidates");
  const core::allocation_request request = make_8x4_request();
  constexpr int kIlpReps = 60;
  double cost_new = 0.0;
  double cost_old = 0.0;
  const double t_ilp_new = best_seconds(kTrials, [&] {
    for (int i = 0; i < kIlpReps; ++i) {
      cost_new = core::allocate_ilp(request).total_cost_per_hour;
    }
  });
  const double t_ilp_old = best_seconds(kTrials, [&] {
    for (int i = 0; i < kIlpReps; ++i) {
      cost_old = legacy::allocate_ilp(request).total_cost_per_hour;
    }
  });
  checks.expect(std::abs(cost_new - cost_old) < 1e-6,
                "allocator plans cost the same as legacy",
                bench::ratio_detail("cost/hour", cost_new));
  {
    series_entry s;
    s.name = "allocate_ilp_8x4";
    s.unit = "solves/sec";
    s.current = kIlpReps / t_ilp_new;
    s.legacy = kIlpReps / t_ilp_old;
    s.speedup = s.current / s.legacy;
    std::printf("new:    %10.1f solves/sec (%.2f ms/solve)\n", s.current,
                1e3 * t_ilp_new / kIlpReps);
    std::printf("legacy: %10.1f solves/sec (%.2f ms/solve)\n", s.legacy,
                1e3 * t_ilp_old / kIlpReps);
    checks.expect(s.speedup >= 1.5, "allocate_ilp >= 1.5x legacy",
                  bench::ratio_detail("speedup", s.speedup));
    series.push_back(s);
  }

  // ---- allocator at fleet scale ------------------------------------------
  bench::section("allocate_ilp: 64 groups x 8 candidates (fleet scale)");
  const core::allocation_request fleet = make_64x8_request();
  constexpr int kFleetReps = 10;
  core::allocation_plan fleet_plan;
  const double t_fleet = best_seconds(kTrials, [&] {
    for (int i = 0; i < kFleetReps; ++i) {
      fleet_plan = core::allocate_ilp(fleet);
    }
  });
  // No legacy leg: the explicit-row tableau needs minutes per solve at
  // this size, which is the point of the bounded-variable formulation.
  checks.expect(fleet_plan.status == ilp::solve_status::optimal,
                "allocate_ilp 64x8 solves to optimality in the default "
                "node budget",
                std::string("status = ") + ilp::to_string(fleet_plan.status));
  const double greedy_cost =
      core::allocate_greedy(fleet).total_cost_per_hour;
  checks.expect(
      fleet_plan.total_cost_per_hour <= greedy_cost + 1e-6,
      "allocate_ilp 64x8 plan no costlier than greedy",
      bench::ratio_detail("cost/hour", fleet_plan.total_cost_per_hour));
  {
    series_entry s;
    s.name = "allocate_ilp_64x8";
    s.unit = "solves/sec";
    s.current = kFleetReps / t_fleet;
    std::printf("new:    %10.1f solves/sec (%.2f ms/solve, $%.3f/h plan)\n",
                s.current, 1e3 * t_fleet / kFleetReps,
                fleet_plan.total_cost_per_hour);
    series.push_back(s);
  }

  const int exit_code = checks.finish("micro_ops");
  if (!bench::write_series_json(out_path, "micro_ops", series,
                                exit_code == 0)) {
    return 1;
  }
  return exit_code;
}
