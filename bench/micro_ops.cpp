// Micro-benchmarks (google-benchmark) for the hot operations on the
// SDN-accelerator's control path: slot comparison, prediction, the ILP
// solve, RTT sampling, and the simulated server's submit/complete cycle.
#include <benchmark/benchmark.h>

#include "cloud/instance.h"
#include "core/allocator.h"
#include "core/predictor.h"
#include "ilp/branch_bound.h"
#include "net/operators.h"
#include "sim/simulation.h"
#include "trace/edit_distance.h"
#include "trace/log_store.h"
#include "util/rng.h"

namespace {

using namespace mca;

std::vector<user_id> random_users(std::size_t n, std::uint64_t seed) {
  util::rng rng{seed};
  std::vector<user_id> users(n);
  for (auto& u : users) u = static_cast<user_id>(rng.uniform_int(0, 500));
  return users;
}

void bm_edit_distance(benchmark::State& state) {
  const auto a = random_users(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = random_users(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::edit_distance(a, b));
  }
}
BENCHMARK(bm_edit_distance)->Arg(8)->Arg(32)->Arg(128);

void bm_normalized_edit_distance(benchmark::State& state) {
  const auto a = random_users(static_cast<std::size_t>(state.range(0)), 3);
  const auto b = random_users(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::normalized_edit_distance(a, b));
  }
}
BENCHMARK(bm_normalized_edit_distance)->Arg(8)->Arg(32);

trace::time_slot random_slot(std::size_t groups, std::size_t users,
                             std::uint64_t seed) {
  util::rng rng{seed};
  trace::time_slot slot{groups};
  for (std::size_t i = 0; i < users; ++i) {
    slot.add_user(static_cast<group_id>(rng.uniform_int(
                      0, static_cast<std::int64_t>(groups) - 1)),
                  static_cast<user_id>(rng.uniform_int(0, 500)));
  }
  return slot;
}

void bm_slot_distance(benchmark::State& state) {
  const auto a = random_slot(4, static_cast<std::size_t>(state.range(0)), 5);
  const auto b = random_slot(4, static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::slot_distance(a, b));
  }
}
BENCHMARK(bm_slot_distance)->Arg(20)->Arg(100);

void bm_predictor_query(benchmark::State& state) {
  core::workload_predictor predictor;
  std::vector<trace::time_slot> history;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    history.push_back(random_slot(4, 100, static_cast<std::uint64_t>(i)));
  }
  predictor.set_history(std::move(history));
  const auto current = random_slot(4, 100, 999);
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.predict_counts(current));
  }
}
BENCHMARK(bm_predictor_query)->Arg(24)->Arg(168);

void bm_ilp_allocation(benchmark::State& state) {
  core::allocation_request request;
  request.workload_per_group = {35.0, 60.0, 120.0};
  request.candidates_per_group = {
      {{"t2.nano", 10.0, 0.0063}, {"t2.small", 10.0, 0.025}},
      {{"t2.medium", 40.0, 0.05}, {"t2.large", 40.0, 0.101}},
      {{"m4.4xlarge", 100.0, 0.888}, {"m4.10xlarge", 100.0, 2.22}},
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::allocate_ilp(request));
  }
}
BENCHMARK(bm_ilp_allocation);

void bm_simplex_relaxation(benchmark::State& state) {
  ilp::problem p;
  const auto x = p.add_variable(1.0, 0.0, 20.0);
  const auto y = p.add_variable(2.5, 0.0, 20.0);
  const auto z = p.add_variable(0.9, 0.0, 20.0);
  p.add_constraint({{x, 10.0}, {y, 40.0}}, ilp::relation::greater_equal, 90.0);
  p.add_constraint({{y, 40.0}, {z, 8.0}}, ilp::relation::greater_equal, 55.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}, {z, 1.0}}, ilp::relation::less_equal,
                   20.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ilp::solve_lp(p));
  }
}
BENCHMARK(bm_simplex_relaxation);

void bm_rtt_sample(benchmark::State& state) {
  const auto model = net::default_lte_model();
  util::rng rng{7};
  double hour = 0.0;
  for (auto _ : state) {
    hour = hour >= 24.0 ? 0.0 : hour + 0.001;
    benchmark::DoNotOptimize(model.sample(rng, hour));
  }
}
BENCHMARK(bm_rtt_sample);

void bm_instance_cycle(benchmark::State& state) {
  sim::simulation sim;
  cloud::instance server{sim, 1, cloud::type_by_name("t2.large"),
                         util::rng{8}};
  for (auto _ : state) {
    server.submit(10.0, {});
    sim.run();
  }
  state.counters["completed"] =
      static_cast<double>(server.completed());
}
BENCHMARK(bm_instance_cycle);

void bm_build_slots(benchmark::State& state) {
  trace::log_store log;
  util::rng rng{9};
  for (int i = 0; i < 20'000; ++i) {
    log.append({rng.uniform(0.0, 3.6e7),
                static_cast<user_id>(rng.uniform_int(0, 100)),
                static_cast<group_id>(rng.uniform_int(0, 3)), 1.0, 250.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.build_slots(3.6e6, 4));
  }
}
BENCHMARK(bm_build_slots);

}  // namespace

BENCHMARK_MAIN();
