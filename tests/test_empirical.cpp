#include "util/empirical.h"

#include <gtest/gtest.h>

#include <vector>

namespace mca::util {
namespace {

TEST(Empirical, ThrowsOnEmpty) {
  const std::vector<double> empty;
  EXPECT_THROW(empirical_distribution{empty}, std::invalid_argument);
}

TEST(Empirical, SamplesWithinObservedRange) {
  const std::vector<double> xs{5.0, 1.0, 9.0, 3.0};
  empirical_distribution d{xs};
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 9.0);
  rng r{1};
  for (int i = 0; i < 1'000; ++i) {
    const double x = d.sample(r);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 9.0);
  }
}

TEST(Empirical, SampleMeanTracksSourceMean) {
  rng source{2};
  std::vector<double> xs;
  for (int i = 0; i < 10'000; ++i) xs.push_back(source.uniform(100.0, 300.0));
  empirical_distribution d{xs};
  rng r{3};
  double total = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) total += d.sample(r);
  EXPECT_NEAR(total / n, 200.0, 3.0);
}

TEST(Empirical, SingleSampleAlwaysReturned) {
  const std::vector<double> xs{42.0};
  empirical_distribution d{xs};
  rng r{4};
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(r), 42.0);
}

TEST(Empirical, StatsMatchSource) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  empirical_distribution d{xs};
  const auto s = d.stats();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_EQ(d.size(), 4u);
}

}  // namespace
}  // namespace mca::util
