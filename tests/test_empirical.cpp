#include "util/empirical.h"

#include <gtest/gtest.h>

#include <vector>

namespace mca::util {
namespace {

TEST(Empirical, ThrowsOnEmpty) {
  const std::vector<double> empty;
  EXPECT_THROW(empirical_distribution{empty}, std::invalid_argument);
}

TEST(Empirical, SamplesWithinObservedRange) {
  const std::vector<double> xs{5.0, 1.0, 9.0, 3.0};
  empirical_distribution d{xs};
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 9.0);
  rng r{1};
  for (int i = 0; i < 1'000; ++i) {
    const double x = d.sample(r);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 9.0);
  }
}

TEST(Empirical, SampleMeanTracksSourceMean) {
  rng source{2};
  std::vector<double> xs;
  for (int i = 0; i < 10'000; ++i) xs.push_back(source.uniform(100.0, 300.0));
  empirical_distribution d{xs};
  rng r{3};
  double total = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) total += d.sample(r);
  EXPECT_NEAR(total / n, 200.0, 3.0);
}

TEST(Empirical, SingleSampleAlwaysReturned) {
  const std::vector<double> xs{42.0};
  empirical_distribution d{xs};
  rng r{4};
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(r), 42.0);
}

TEST(Empirical, StatsMatchSource) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  empirical_distribution d{xs};
  const auto s = d.stats();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_EQ(d.size(), 4u);
}

TEST(AliasSampler, RejectsDegenerateWeights) {
  EXPECT_THROW(alias_sampler{std::span<const double>{}},
               std::invalid_argument);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(alias_sampler{negative}, std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(alias_sampler{zeros}, std::invalid_argument);
}

TEST(AliasSampler, TableMassMatchesWeights) {
  // probability_of reads the constructed table analytically, so this
  // checks the alias construction itself, with no sampling noise.
  const std::vector<double> weights{5.0, 1.0, 3.0, 0.0, 11.0};
  alias_sampler sampler{weights};
  const double total = 20.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(sampler.probability_of(i), weights[i] / total, 1e-12) << i;
  }
}

TEST(AliasSampler, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> weights{0.5, 2.0, 4.0, 1.5};
  alias_sampler sampler{weights};
  rng r{2026};
  constexpr int kDraws = 200'000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.sample(r)];
  const double total = 8.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / total;
    const double observed = static_cast<double>(counts[i]) / kDraws;
    EXPECT_NEAR(observed, expected, 0.01) << "index " << i;
  }
}

TEST(AliasSampler, SingleWeightAlwaysDrawsIt) {
  const std::vector<double> weights{3.5};
  alias_sampler sampler{weights};
  rng r{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(r), 0u);
}

TEST(AliasSampler, ZeroWeightIndexNeverDrawn) {
  const std::vector<double> weights{1.0, 0.0, 1.0};
  alias_sampler sampler{weights};
  rng r{11};
  for (int i = 0; i < 50'000; ++i) EXPECT_NE(sampler.sample(r), 1u);
}

}  // namespace
}  // namespace mca::util
