#include "trace/edit_distance.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace mca::trace {
namespace {

using users = std::vector<user_id>;

TEST(EditDistance, EmptySequences) {
  EXPECT_EQ(edit_distance(users{}, users{}), 0u);
  EXPECT_EQ(edit_distance(users{1, 2, 3}, users{}), 3u);
  EXPECT_EQ(edit_distance(users{}, users{7}), 1u);
}

TEST(EditDistance, IdenticalIsZero) {
  const users a{1, 2, 3, 4};
  EXPECT_EQ(edit_distance(a, a), 0u);
}

TEST(EditDistance, KnownSmallCases) {
  EXPECT_EQ(edit_distance(users{1}, users{2}), 1u);                 // sub
  EXPECT_EQ(edit_distance(users{1, 2}, users{2}), 1u);              // del
  EXPECT_EQ(edit_distance(users{2}, users{1, 2}), 1u);              // ins
  EXPECT_EQ(edit_distance(users{1, 2}, users{2, 3}), 2u);
  EXPECT_EQ(edit_distance(users{1, 2, 3}, users{1, 9, 3}), 1u);
}

TEST(EditDistance, KittenSittingAnalogue) {
  // The classic kitten/sitting distance of 3 encoded as ids:
  // k=1 i=2 t=3 e=4 n=5 / s=6 g=7.
  const users kitten{1, 2, 3, 3, 4, 5};
  const users sitting{6, 2, 3, 3, 2, 5, 7};
  EXPECT_EQ(edit_distance(kitten, sitting), 3u);
}

TEST(EditDistance, DisjointSetsCostMaxLength) {
  EXPECT_EQ(edit_distance(users{1, 2, 3}, users{4, 5, 6}), 3u);
  EXPECT_EQ(edit_distance(users{1, 2}, users{4, 5, 6, 7}), 4u);
}

TEST(PostNormalized, RangeAndSpecialCases) {
  EXPECT_EQ(post_normalized_edit_distance(users{}, users{}), 0.0);
  EXPECT_EQ(post_normalized_edit_distance(users{1}, users{1}), 0.0);
  EXPECT_EQ(post_normalized_edit_distance(users{1}, users{2}), 1.0);
  EXPECT_DOUBLE_EQ(post_normalized_edit_distance(users{1, 2}, users{1, 2, 3, 4}),
                   0.5);
}

TEST(NormalizedMarzalVidal, EmptyAndIdentical) {
  EXPECT_EQ(normalized_edit_distance(users{}, users{}), 0.0);
  EXPECT_EQ(normalized_edit_distance(users{1, 2}, users{1, 2}), 0.0);
}

TEST(NormalizedMarzalVidal, CompletelyDifferentIsOne) {
  EXPECT_DOUBLE_EQ(normalized_edit_distance(users{1}, users{2}), 1.0);
}

TEST(NormalizedMarzalVidal, ClassicPaperExampleBeatsPostNormalization) {
  // Marzal–Vidal's point: path-length normalization can be strictly
  // smaller than d/max(|a|,|b|) because longer paths with cheap steps may
  // win.  At minimum it can never exceed the post-normalized value.
  util::rng rng{3};
  for (int round = 0; round < 200; ++round) {
    users a;
    users b;
    const int na = static_cast<int>(rng.uniform_int(0, 8));
    const int nb = static_cast<int>(rng.uniform_int(0, 8));
    for (int i = 0; i < na; ++i) {
      a.push_back(static_cast<user_id>(rng.uniform_int(0, 4)));
    }
    for (int i = 0; i < nb; ++i) {
      b.push_back(static_cast<user_id>(rng.uniform_int(0, 4)));
    }
    const double mv = normalized_edit_distance(a, b);
    const double post = post_normalized_edit_distance(a, b);
    EXPECT_LE(mv, post + 1e-9);
    EXPECT_GE(mv, 0.0);
    EXPECT_LE(mv, 1.0);
  }
}

// Property sweeps: Levenshtein must satisfy the metric axioms.
class EditDistanceMetric : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  users random_sequence(util::rng& rng, int max_len, int alphabet) {
    users s;
    const int n = static_cast<int>(rng.uniform_int(0, max_len));
    for (int i = 0; i < n; ++i) {
      s.push_back(static_cast<user_id>(rng.uniform_int(0, alphabet - 1)));
    }
    return s;
  }
};

TEST_P(EditDistanceMetric, SymmetryIdentityTriangle) {
  util::rng rng{GetParam()};
  for (int round = 0; round < 50; ++round) {
    const users a = random_sequence(rng, 12, 6);
    const users b = random_sequence(rng, 12, 6);
    const users c = random_sequence(rng, 12, 6);
    const auto dab = edit_distance(a, b);
    const auto dba = edit_distance(b, a);
    const auto dac = edit_distance(a, c);
    const auto dcb = edit_distance(c, b);
    EXPECT_EQ(dab, dba);                        // symmetry
    EXPECT_EQ(edit_distance(a, a), 0u);         // identity
    EXPECT_LE(dab, dac + dcb);                  // triangle inequality
    // Length-difference lower bound and max-length upper bound.
    const auto len_diff = a.size() > b.size() ? a.size() - b.size()
                                              : b.size() - a.size();
    EXPECT_GE(dab, len_diff);
    EXPECT_LE(dab, std::max(a.size(), b.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistanceMetric,
                         ::testing::Range<std::uint64_t>(1, 13));

namespace {

/// Naive exponential reference implementation for cross-checking the DP.
std::size_t reference_edit_distance(std::span<const user_id> a,
                                    std::span<const user_id> b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  const std::size_t substitution =
      reference_edit_distance(a.subspan(1), b.subspan(1)) +
      (a.front() == b.front() ? 0 : 1);
  const std::size_t deletion = reference_edit_distance(a.subspan(1), b) + 1;
  const std::size_t insertion = reference_edit_distance(a, b.subspan(1)) + 1;
  return std::min({substitution, deletion, insertion});
}

}  // namespace

class EditDistanceVsReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EditDistanceVsReference, DpMatchesNaiveRecursion) {
  util::rng rng{GetParam()};
  for (int round = 0; round < 30; ++round) {
    users a;
    users b;
    const int na = static_cast<int>(rng.uniform_int(0, 7));
    const int nb = static_cast<int>(rng.uniform_int(0, 7));
    for (int i = 0; i < na; ++i) {
      a.push_back(static_cast<user_id>(rng.uniform_int(0, 3)));
    }
    for (int i = 0; i < nb; ++i) {
      b.push_back(static_cast<user_id>(rng.uniform_int(0, 3)));
    }
    EXPECT_EQ(edit_distance(a, b), reference_edit_distance(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistanceVsReference,
                         ::testing::Range<std::uint64_t>(20, 26));

namespace {

/// Textbook two-row Levenshtein, the oracle for the bit-parallel fast
/// path that kicks in on strictly increasing (sorted-unique) sequences.
std::size_t dp_edit_distance(std::span<const user_id> a,
                             std::span<const user_id> b) {
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> curr(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1,
                          prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1)});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

users random_sorted_unique(util::rng& rng, std::size_t max_len,
                           std::uint32_t universe) {
  users out;
  const auto len = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < len && next < universe; ++i) {
    next += static_cast<std::uint32_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(universe / max_len + 2)));
    out.push_back(next);
  }
  return out;
}

}  // namespace

TEST(EditDistanceBitParallel, MatchesDpOnSortedUniqueSequences) {
  util::rng rng{777};
  for (int round = 0; round < 300; ++round) {
    // Lengths straddle the 64-bit word boundary so the multiword carry
    // chain (blocks 1..3) is exercised, not just the single-word case.
    const users a = random_sorted_unique(rng, 150, 4'000);
    const users b = random_sorted_unique(rng, 150, 4'000);
    EXPECT_EQ(edit_distance(a, b), dp_edit_distance(a, b))
        << "round " << round << " |a|=" << a.size() << " |b|=" << b.size();
  }
}

TEST(EditDistanceBitParallel, ExactWordBoundaryLengths) {
  // Pattern lengths 63, 64, 65, 128: the top-bit bookkeeping edge cases.
  util::rng rng{778};
  for (const std::size_t len : {63u, 64u, 65u, 127u, 128u, 129u}) {
    users a;
    users b;
    for (std::size_t i = 0; i < len; ++i) {
      a.push_back(static_cast<user_id>(2 * i));
      if (rng.bernoulli(0.5)) b.push_back(static_cast<user_id>(2 * i + 1));
    }
    EXPECT_EQ(edit_distance(a, b), dp_edit_distance(a, b)) << "len " << len;
    EXPECT_EQ(edit_distance(a, a), 0u);
  }
}

}  // namespace
}  // namespace mca::trace
