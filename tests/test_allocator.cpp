#include "core/allocator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace mca::core {
namespace {

/// One group backed by nano-like (cap 10, $1) and large-like (cap 40, $3).
allocation_request single_group_request(double workload) {
  allocation_request request;
  request.workload_per_group = {workload};
  request.candidates_per_group = {
      {{"small", 10.0, 1.0}, {"large", 40.0, 3.0}}};
  return request;
}

TEST(AllocatorIlp, PicksCheapestCover) {
  // W=35: 4 smalls = $4 vs 1 large = $3 -> large wins.
  const auto plan = allocate_ilp(single_group_request(35.0));
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.count_of(0, "large"), 1u);
  EXPECT_EQ(plan.count_of(0, "small"), 0u);
  EXPECT_DOUBLE_EQ(plan.total_cost_per_hour, 3.0);
}

TEST(AllocatorIlp, SmallWorkloadUsesSmallInstance) {
  const auto plan = allocate_ilp(single_group_request(8.0));
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.count_of(0, "small"), 1u);
  EXPECT_DOUBLE_EQ(plan.total_cost_per_hour, 1.0);
}

TEST(AllocatorIlp, MixesTypesWhenOptimal) {
  // W=50: large(40) + small(10) = $4 beats 2 large ($6) and 5 small ($5)...
  // actually 5 small = $5 > $4, 2 large = $6. Mixed is optimal.
  const auto plan = allocate_ilp(single_group_request(50.0 - 1.0));
  ASSERT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.total_cost_per_hour, 4.0);
  EXPECT_EQ(plan.total_instances(), 2u);
}

TEST(AllocatorIlp, StrictInequalityForcesInstanceOnZeroWorkload) {
  // The paper's constraint is capacity > W; with W=0 each group still gets
  // one instance (the group must exist to serve promotions).
  const auto plan = allocate_ilp(single_group_request(0.0));
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.total_instances(), 1u);
}

TEST(AllocatorIlp, ExactCapacityBoundaryNeedsMore) {
  // W=40 with strict inequality: one large (cap 40) is NOT enough.
  const auto plan = allocate_ilp(single_group_request(40.0));
  ASSERT_TRUE(plan.feasible);
  EXPECT_GT(plan.total_cost_per_hour, 3.0);
}

TEST(AllocatorIlp, MultiGroupAllocation) {
  allocation_request request;
  request.workload_per_group = {0.0, 25.0, 70.0};
  request.candidates_per_group = {
      {{"micro", 5.0, 0.5}},
      {{"nano", 10.0, 1.0}},
      {{"m4", 90.0, 9.0}, {"large", 40.0, 3.0}},
  };
  const auto plan = allocate_ilp(request);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.count_of(0, "micro"), 1u);   // W=0 -> one instance
  EXPECT_EQ(plan.count_of(1, "nano"), 3u);    // 25 -> 3x10
  // Group 2: 2 large = 80 cap at $6 beats 1 m4 at $9.
  EXPECT_EQ(plan.count_of(2, "large"), 2u);
  EXPECT_EQ(plan.count_of(2, "m4"), 0u);
}

TEST(AllocatorIlp, AccountCapTriggersBestEffort) {
  auto request = single_group_request(500.0);  // needs 13 large > cap
  request.max_total_instances = 5;
  const auto plan = allocate_ilp(request);
  EXPECT_TRUE(plan.best_effort);
  EXPECT_FALSE(plan.feasible);
  EXPECT_LE(plan.total_instances(), 5u);
  // Best effort fills the cap with the highest-capacity-per-dollar type.
  EXPECT_EQ(plan.total_instances(), 5u);
}

TEST(AllocatorIlp, CapExactlySufficientStaysExact) {
  auto request = single_group_request(119.0);  // 3 large = 120 > 119
  request.max_total_instances = 3;
  const auto plan = allocate_ilp(request);
  ASSERT_TRUE(plan.feasible);
  EXPECT_FALSE(plan.best_effort);
  EXPECT_EQ(plan.count_of(0, "large"), 3u);
}

TEST(AllocatorIlp, ExhaustedNodeBudgetUsesIncumbentNotGreedy) {
  // A node budget of 1 stops branch & bound right after the root: the
  // solver reports iteration_limit but carries the root rounding incumbent
  // — a valid integral plan.  The allocator must ship that plan (flagged
  // as unproven via status) instead of discarding it for the greedy fill.
  allocation_request request;
  request.workload_per_group = {35.0, 55.0, 95.0};
  request.candidates_per_group = {
      {{"small", 10.0, 1.0}, {"large", 40.0, 3.0}},
      {{"small", 10.0, 1.0}, {"large", 40.0, 3.0}},
      {{"small", 10.0, 1.0}, {"large", 40.0, 3.0}},
  };
  ilp::ilp_options opts;
  opts.max_nodes = 1;
  const auto plan = allocate_ilp(request, opts);
  EXPECT_EQ(plan.status, ilp::solve_status::iteration_limit);
  EXPECT_TRUE(plan.feasible);
  EXPECT_FALSE(plan.best_effort);
  // The incumbent covers every group's demand (strict margin included).
  for (group_id g = 0; g < 3; ++g) {
    double capacity = 0.0;
    for (const auto& entry : plan.entries) {
      if (entry.group != g) continue;
      capacity += (entry.type_name == "small" ? 10.0 : 40.0) *
                  static_cast<double>(entry.count);
    }
    EXPECT_GE(capacity, request.workload_per_group[g] + 1.0) << "group " << g;
  }
  // And it is no worse than what the discarded-incumbent bug used to ship.
  const auto greedy = allocate_best_effort(request);
  EXPECT_LE(plan.total_cost_per_hour, greedy.total_cost_per_hour + 1e-9);
}

TEST(AllocatorIlp, ZeroNodeBudgetStillFallsBackToBestEffort) {
  // With no nodes at all there is no incumbent, so the greedy best-effort
  // fill remains the answer of last resort.
  ilp::ilp_options opts;
  opts.max_nodes = 0;
  const auto plan = allocate_ilp(single_group_request(35.0), opts);
  EXPECT_EQ(plan.status, ilp::solve_status::iteration_limit);
  EXPECT_TRUE(plan.best_effort);
  EXPECT_GT(plan.total_instances(), 0u);
}

TEST(AllocatorIlp, CumulativeModeLetsFastGroupsAbsorb) {
  allocation_request request;
  request.workload_per_group = {30.0, 20.0};
  request.candidates_per_group = {
      {{"slow", 10.0, 10.0}},   // expensive slow tier
      {{"fast", 100.0, 2.0}},   // cheap fast tier
  };
  request.cumulative_capacity = true;
  const auto plan = allocate_ilp(request);
  ASSERT_TRUE(plan.feasible);
  // One fast instance (cap 100) covers both demands cumulatively; the slow
  // tier needs nothing.
  EXPECT_EQ(plan.count_of(1, "fast"), 1u);
  EXPECT_EQ(plan.count_of(0, "slow"), 0u);
  EXPECT_DOUBLE_EQ(plan.total_cost_per_hour, 2.0);
}

TEST(AllocatorIlp, StrictModeCannotBorrowAcrossGroups) {
  allocation_request request;
  request.workload_per_group = {30.0, 20.0};
  request.candidates_per_group = {
      {{"slow", 10.0, 10.0}},
      {{"fast", 100.0, 2.0}},
  };
  const auto plan = allocate_ilp(request);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.count_of(0, "slow"), 4u);  // 30 -> strict > needs 4x10
  EXPECT_EQ(plan.count_of(1, "fast"), 1u);
}

TEST(AllocatorGreedy, CoversDemandButMayPayMore) {
  const auto ilp = allocate_ilp(single_group_request(35.0));
  const auto greedy = allocate_greedy(single_group_request(35.0));
  ASSERT_TRUE(greedy.feasible);
  EXPECT_GE(greedy.total_cost_per_hour, ilp.total_cost_per_hour);
}

TEST(AllocatorGreedy, InfeasibleUnderTinyCap) {
  auto request = single_group_request(1'000.0);
  request.max_total_instances = 2;
  const auto plan = allocate_greedy(request);
  EXPECT_FALSE(plan.feasible);
  EXPECT_TRUE(plan.best_effort);
}

TEST(AllocatorGreedy, BudgetExhaustedStopsBuyingAndMarksInfeasible) {
  // Group 0 eats the whole cap; the remaining candidates of group 0 and
  // all of group 1 must see no purchases once the budget is gone.
  allocation_request request;
  request.workload_per_group = {100.0, 50.0};
  request.candidates_per_group = {
      {{"dense", 10.0, 1.0}, {"sparse", 5.0, 1.0}, {"junk", 1.0, 10.0}},
      {{"other", 10.0, 1.0}}};
  request.max_total_instances = 4;  // 4 * 10 = 40 < 101 demanded
  const auto plan = allocate_greedy(request);
  EXPECT_FALSE(plan.feasible);
  EXPECT_TRUE(plan.best_effort);
  EXPECT_EQ(plan.status, ilp::solve_status::infeasible);
  EXPECT_EQ(plan.total_instances(), 4u);
  // Everything went to the best capacity-per-dollar candidate; nothing was
  // bought after the budget ran out.
  EXPECT_EQ(plan.count_of(0, "dense"), 4u);
  EXPECT_EQ(plan.count_of(0, "sparse"), 0u);
  EXPECT_EQ(plan.count_of(0, "junk"), 0u);
  EXPECT_EQ(plan.count_of(1, "other"), 0u);
  EXPECT_DOUBLE_EQ(plan.total_cost_per_hour, 4.0);
}

TEST(AllocatorGreedy, BudgetExhaustedMidGroupLeavesLaterGroupsEmpty) {
  // The cap dies inside group 0's second-best candidate; group 1 must not
  // be scanned into a purchase, and the spill ordering must hold.
  allocation_request request;
  request.workload_per_group = {45.0, 20.0};
  request.candidates_per_group = {
      {{"best", 10.0, 1.0}, {"spill", 10.0, 2.0}},
      {{"later", 10.0, 1.0}}};
  request.max_total_instances = 3;
  // Greedy buys 3x "best" (covered 30 < 46), budget gone before "spill".
  const auto plan = allocate_greedy(request);
  EXPECT_FALSE(plan.feasible);
  EXPECT_EQ(plan.total_instances(), 3u);
  EXPECT_EQ(plan.count_of(0, "best"), 3u);
  EXPECT_EQ(plan.count_of(0, "spill"), 0u);
  EXPECT_EQ(plan.count_of(1, "later"), 0u);
}

TEST(AllocatorStaticPeak, ProvisionsEveryGroupForPeak) {
  allocation_request request;
  request.workload_per_group = {1.0, 2.0};
  request.candidates_per_group = {
      {{"a", 10.0, 1.0}},
      {{"b", 10.0, 1.0}},
  };
  const auto plan = allocate_static_peak(request, 35.0);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.count_of(0, "a"), 4u);
  EXPECT_EQ(plan.count_of(1, "b"), 4u);
  EXPECT_THROW(allocate_static_peak(request, -1.0), std::invalid_argument);
}

TEST(AllocatorBestEffort, SpreadsCapAcrossNeediestGroups) {
  allocation_request request;
  request.workload_per_group = {100.0, 100.0};
  request.candidates_per_group = {
      {{"a", 10.0, 1.0}},
      {{"b", 10.0, 1.0}},
  };
  request.max_total_instances = 10;
  const auto plan = allocate_best_effort(request);
  EXPECT_FALSE(plan.feasible);
  EXPECT_EQ(plan.total_instances(), 10u);
  EXPECT_EQ(plan.count_of(0, "a"), 5u);
  EXPECT_EQ(plan.count_of(1, "b"), 5u);
}

TEST(AllocatorValidation, RejectsMalformedRequests) {
  allocation_request mismatch;
  mismatch.workload_per_group = {1.0};
  mismatch.candidates_per_group = {};
  EXPECT_THROW(validate(mismatch), std::invalid_argument);

  allocation_request empty;
  EXPECT_THROW(validate(empty), std::invalid_argument);

  auto zero_cap = single_group_request(1.0);
  zero_cap.max_total_instances = 0;
  EXPECT_THROW(validate(zero_cap), std::invalid_argument);

  auto bad_capacity = single_group_request(1.0);
  bad_capacity.candidates_per_group[0][0].capacity_per_instance = 0.0;
  EXPECT_THROW(validate(bad_capacity), std::invalid_argument);

  auto negative_cost = single_group_request(1.0);
  negative_cost.candidates_per_group[0][0].cost_per_hour = -1.0;
  EXPECT_THROW(validate(negative_cost), std::invalid_argument);

  auto negative_workload = single_group_request(-5.0);
  EXPECT_THROW(validate(negative_workload), std::invalid_argument);
}

TEST(AllocationPlan, CountHelpers) {
  allocation_plan plan;
  plan.entries = {{0, "a", 2}, {1, "b", 3}};
  EXPECT_EQ(plan.total_instances(), 5u);
  EXPECT_EQ(plan.count_of(0, "a"), 2u);
  EXPECT_EQ(plan.count_of(0, "b"), 0u);
  EXPECT_EQ(plan.count_of(9, "a"), 0u);
}

/// Property sweep: the ILP plan must always be (a) demand-covering when
/// feasible, (b) never more expensive than greedy, (c) within the cap.
class IlpDominatesGreedy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IlpDominatesGreedy, OnRandomRequests) {
  util::rng rng{GetParam()};
  allocation_request request;
  const auto groups = static_cast<std::size_t>(rng.uniform_int(1, 3));
  for (std::size_t g = 0; g < groups; ++g) {
    request.workload_per_group.push_back(rng.uniform(0.0, 60.0));
    std::vector<allocation_candidate> candidates;
    const auto types = static_cast<std::size_t>(rng.uniform_int(1, 3));
    for (std::size_t t = 0; t < types; ++t) {
      candidates.push_back({"type" + std::to_string(g) + std::to_string(t),
                            rng.uniform(5.0, 60.0), rng.uniform(0.5, 5.0)});
    }
    request.candidates_per_group.push_back(std::move(candidates));
  }
  request.max_total_instances = 20;

  const auto ilp = allocate_ilp(request);
  const auto greedy = allocate_greedy(request);
  EXPECT_LE(ilp.total_instances(), request.max_total_instances);
  if (ilp.feasible && greedy.feasible) {
    EXPECT_LE(ilp.total_cost_per_hour, greedy.total_cost_per_hour + 1e-9);
  }
  if (ilp.feasible) {
    // Verify demand coverage per group.
    for (std::size_t g = 0; g < groups; ++g) {
      double capacity = 0.0;
      for (const auto& entry : ilp.entries) {
        if (entry.group != g) continue;
        for (const auto& cand : request.candidates_per_group[g]) {
          if (cand.type_name == entry.type_name) {
            capacity +=
                cand.capacity_per_instance * static_cast<double>(entry.count);
          }
        }
      }
      EXPECT_GT(capacity, request.workload_per_group[g]) << "group " << g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRequests, IlpDominatesGreedy,
                         ::testing::Range<std::uint64_t>(1, 31));

/// Property sweep: cumulative mode can only help — it relaxes the strict
/// per-group constraints, so its optimum never costs more, and its plans
/// satisfy the suffix-coverage inequality.
class CumulativeRelaxation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CumulativeRelaxation, NeverCostsMoreThanStrict) {
  util::rng rng{GetParam()};
  allocation_request request;
  const std::size_t groups = 3;
  for (std::size_t g = 0; g < groups; ++g) {
    request.workload_per_group.push_back(rng.uniform(0.0, 50.0));
    request.candidates_per_group.push_back(
        {{"type" + std::to_string(g), rng.uniform(10.0, 80.0),
          rng.uniform(0.5, 4.0)}});
  }
  auto strict_request = request;
  auto cumulative_request = request;
  cumulative_request.cumulative_capacity = true;
  const auto strict = allocate_ilp(strict_request);
  const auto cumulative = allocate_ilp(cumulative_request);
  if (strict.feasible && cumulative.feasible) {
    EXPECT_LE(cumulative.total_cost_per_hour,
              strict.total_cost_per_hour + 1e-9);
    // Suffix coverage: for each g, capacity over groups >= g must exceed
    // workload over groups >= g.
    for (std::size_t g = 0; g < groups; ++g) {
      double capacity = 0.0;
      double demand = 0.0;
      for (std::size_t h = g; h < groups; ++h) {
        demand += request.workload_per_group[h];
        for (const auto& entry : cumulative.entries) {
          if (entry.group != h) continue;
          capacity += request.candidates_per_group[h][0].capacity_per_instance *
                      static_cast<double>(entry.count);
        }
      }
      EXPECT_GT(capacity, demand) << "suffix " << g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CumulativeRelaxation,
                         ::testing::Range<std::uint64_t>(50, 70));

TEST(DemandFromPrediction, WidensAndZeroPads) {
  const std::size_t counts[2] = {7, 3};
  const auto demand = demand_from_prediction(counts, 4);
  ASSERT_EQ(demand.size(), 4u);
  EXPECT_DOUBLE_EQ(demand[0], 7.0);
  EXPECT_DOUBLE_EQ(demand[1], 3.0);
  EXPECT_DOUBLE_EQ(demand[2], 0.0);
  EXPECT_DOUBLE_EQ(demand[3], 0.0);
  // Extra predicted groups beyond the deployment are dropped, not OOB.
  const std::size_t wide[3] = {1, 2, 9};
  EXPECT_EQ(demand_from_prediction(wide, 2).size(), 2u);
}

/// Multi-group, multi-tier shape for the batched allocator cross-checks.
allocation_request batched_shape() {
  allocation_request shape;
  shape.workload_per_group = {0.0, 0.0, 0.0};
  shape.candidates_per_group = {
      {{"small", 10.0, 1.0}, {"large", 40.0, 3.0}},
      {{"small", 12.0, 1.0}, {"wide", 90.0, 6.5}},
      {{"large", 35.0, 3.0}, {"wide", 100.0, 7.0}},
  };
  shape.max_total_instances = 64;
  return shape;
}

TEST(BatchedAllocator, ValidatesShapeAndDemands) {
  EXPECT_THROW(batched_allocator{allocation_request{}}, std::invalid_argument);
  batched_allocator allocator{batched_shape()};
  EXPECT_EQ(allocator.group_count(), 3u);
  const double two_groups[2] = {1.0, 2.0};
  EXPECT_THROW(allocator.solve(two_groups), std::invalid_argument);
  const double negative[3] = {1.0, -2.0, 0.0};
  EXPECT_THROW(allocator.solve(negative), std::invalid_argument);
}

class BatchedMatchesIndependent
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchedMatchesIndependent, RandomDemandWalks) {
  // The batched path must be a pure optimization: over a random walk of
  // demand vectors (the consecutive-slots-barely-move regime plus jumps),
  // every solve's cost and feasibility must match a cold allocate_ilp of
  // the same request.
  util::rng rng{GetParam()};
  for (int variant = 0; variant < 2; ++variant) {
    allocation_request shape = batched_shape();
    shape.cumulative_capacity = variant == 1;
    batched_allocator allocator{shape};
    std::vector<double> demand{25.0, 40.0, 80.0};
    for (int step = 0; step < 12; ++step) {
      for (auto& d : demand) {
        // Mostly small drifts, occasionally a jump or a collapse to zero.
        const double pick = rng.uniform(0.0, 1.0);
        if (pick < 0.7) {
          d = std::max(0.0, d + rng.uniform(-6.0, 6.0));
        } else if (pick < 0.85) {
          d = rng.uniform(0.0, 400.0);
        } else {
          d = 0.0;
        }
      }
      const allocation_plan warm = allocator.solve(demand);
      allocation_request request = shape;
      request.workload_per_group = demand;
      const allocation_plan cold = allocate_ilp(request);
      ASSERT_EQ(warm.status, cold.status) << "step " << step;
      EXPECT_EQ(warm.feasible, cold.feasible) << "step " << step;
      EXPECT_EQ(warm.best_effort, cold.best_effort) << "step " << step;
      // Equal optimum cost is the contract; the plans themselves may
      // differ between cost ties.
      EXPECT_NEAR(warm.total_cost_per_hour, cold.total_cost_per_hour, 1e-6)
          << "step " << step;
    }
    EXPECT_EQ(allocator.solves(), 12u);
    EXPECT_GT(allocator.warm_solves(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedMatchesIndependent,
                         ::testing::Range<std::uint64_t>(7000, 7012));

TEST(BatchedAllocator, ZeroNodeBudgetMatchesColdFallback) {
  // max_nodes == 0 yields no incumbent on the cold path; the warm path
  // must not sneak one in via the root heuristics or the hint.
  ilp::ilp_options opts;
  opts.max_nodes = 0;
  batched_allocator allocator{batched_shape(), opts};
  const double demand[3] = {25.0, 40.0, 80.0};
  for (int slot = 0; slot < 2; ++slot) {
    const allocation_plan warm = allocator.solve(demand);
    allocation_request request = batched_shape();
    request.workload_per_group.assign(demand, demand + 3);
    const allocation_plan cold = allocate_ilp(request, opts);
    EXPECT_EQ(warm.status, ilp::solve_status::iteration_limit);
    EXPECT_EQ(warm.best_effort, cold.best_effort) << "slot " << slot;
    EXPECT_NEAR(warm.total_cost_per_hour, cold.total_cost_per_hour, 1e-9)
        << "slot " << slot;
  }
}

TEST(BatchedAllocator, InfeasibleSlotFallsBackLikeAllocateIlp) {
  allocation_request shape = batched_shape();
  // One instance per group fits (margin instances), the big demand cannot.
  shape.max_total_instances = 4;
  batched_allocator allocator{shape};
  const double demand[3] = {500.0, 500.0, 500.0};
  const allocation_plan plan = allocator.solve(demand);
  EXPECT_TRUE(plan.best_effort);
  EXPECT_FALSE(plan.feasible);
  EXPECT_LE(plan.total_instances(), 4u);
  // The allocator recovers on the next (feasible) slot.
  const double light[3] = {5.0, 5.0, 5.0};
  const allocation_plan next = allocator.solve(light);
  EXPECT_TRUE(next.feasible);
  EXPECT_FALSE(next.best_effort);
}

TEST(AllocateIlpBatched, MultiPeriodEntryPointMatchesPerSlotCalls) {
  const allocation_request shape = batched_shape();
  const std::vector<std::vector<double>> periods = {
      {30.0, 50.0, 120.0}, {32.0, 48.0, 118.0}, {28.0, 55.0, 121.0},
      {0.0, 0.0, 0.0},     {200.0, 10.0, 40.0},
  };
  const auto plans = allocate_ilp_batched(shape, periods);
  ASSERT_EQ(plans.size(), periods.size());
  for (std::size_t t = 0; t < periods.size(); ++t) {
    allocation_request request = shape;
    request.workload_per_group = periods[t];
    const auto cold = allocate_ilp(request);
    EXPECT_NEAR(plans[t].total_cost_per_hour, cold.total_cost_per_hour, 1e-6)
        << "period " << t;
    EXPECT_EQ(plans[t].feasible, cold.feasible) << "period " << t;
  }
}

TEST(AllocateIlpBatched, NoCandidatesForDemandedGroupGoesBestEffort) {
  allocation_request shape;
  shape.workload_per_group = {0.0, 0.0};
  shape.candidates_per_group = {{{"small", 10.0, 1.0}}, {}};
  batched_allocator allocator{shape};
  const double uncovered[2] = {5.0, 3.0};  // group 1 demand, no candidates
  const allocation_plan plan = allocator.solve(uncovered);
  EXPECT_TRUE(plan.best_effort);
  EXPECT_EQ(plan.status, ilp::solve_status::infeasible);
  const double covered[2] = {5.0, 0.0};
  EXPECT_TRUE(allocator.solve(covered).feasible);
}

}  // namespace
}  // namespace mca::core
