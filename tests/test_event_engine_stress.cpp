// Stress coverage for the arena/heap event engine: 100k interleaved
// schedule/cancel operations with determinism and pending-count accuracy
// checks, plus the nasty re-entrant patterns (self-cancel, cancel from a
// callback, slot reuse through stale handles).
#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace mca::sim {
namespace {

/// Runs the interleaved schedule/cancel stress and returns the execution
/// order fingerprint (sequence of payload ids).
std::vector<std::uint32_t> run_stress(std::uint64_t seed) {
  simulation sim;
  util::rng rng{seed};
  std::vector<std::uint32_t> order;
  std::unordered_map<std::uint32_t, event_handle> pending;
  std::size_t expected_pending = 0;
  std::uint32_t next_payload = 0;

  constexpr int kOps = 100'000;
  for (int op = 0; op < kOps; ++op) {
    const bool cancel_op = !pending.empty() && rng.uniform(0.0, 1.0) < 0.4;
    if (cancel_op) {
      // Cancel a pseudo-random pending event.
      const auto it = pending.begin();
      sim.cancel(it->second);
      sim.cancel(it->second);  // double cancel must be a no-op
      pending.erase(it);
      --expected_pending;
    } else {
      const std::uint32_t payload = next_payload++;
      const double at = rng.uniform(0.0, 1'000'000.0);
      const event_handle h = sim.schedule_at(at, [payload, &order, &pending] {
        order.push_back(payload);
        pending.erase(payload);
      });
      pending.emplace(payload, h);
      ++expected_pending;
    }
    if (sim.pending_events() != expected_pending) {
      ADD_FAILURE() << "pending count drifted at op " << op;
      break;
    }
  }
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(order.size(), expected_pending);
  EXPECT_EQ(sim.executed_events(), expected_pending);
  return order;
}

TEST(EventEngineStress, InterleavedScheduleCancelIsDeterministic) {
  const auto a = run_stress(123);
  const auto b = run_stress(123);
  EXPECT_EQ(a, b);  // identical seeds, identical execution order
  const auto c = run_stress(456);
  EXPECT_NE(a, c);  // different seed actually changes the workload
}

TEST(EventEngineStress, PendingCountSurvivesSlotReuse) {
  simulation sim;
  // Churn the same few arena slots through thousands of generations.
  for (int round = 0; round < 5'000; ++round) {
    const auto a = sim.schedule_at(1.0, [] {});
    const auto b = sim.schedule_at(2.0, [] {});
    EXPECT_EQ(sim.pending_events(), 2u);
    sim.cancel(a);
    EXPECT_EQ(sim.pending_events(), 1u);
    sim.cancel(b);
    EXPECT_EQ(sim.pending_events(), 0u);
    sim.cancel(a);  // stale handles from this round: all no-ops
    sim.cancel(b);
    EXPECT_EQ(sim.pending_events(), 0u);
  }
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(EventEngineStress, StaleHandleCannotCancelSlotSuccessor) {
  simulation sim;
  const auto old = sim.schedule_at(10.0, [] {});
  sim.cancel(old);
  // The replacement likely reuses the same arena slot; the stale handle
  // must not be able to touch it.
  bool fired = false;
  sim.schedule_at(10.0, [&] { fired = true; });
  sim.cancel(old);
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(EventEngineStress, CancelFromCallbackAffectsLaterEvent) {
  simulation sim;
  bool victim_fired = false;
  const auto victim = sim.schedule_at(20.0, [&] { victim_fired = true; });
  sim.schedule_at(10.0, [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(EventEngineStress, SelfCancelFromCallbackIsNoop) {
  simulation sim;
  event_handle self{};
  int fired = 0;
  self = sim.schedule_at(5.0, [&] {
    ++fired;
    sim.cancel(self);  // already executing: must be harmless
  });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventEngineStress, MassCancellationLeavesCleanQueue) {
  simulation sim;
  std::vector<event_handle> handles;
  handles.reserve(100'000);
  for (int i = 0; i < 100'000; ++i) {
    handles.push_back(sim.schedule_at(static_cast<double>(i % 997), [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 100'000u);
  // Cancel every other event, back to front.
  for (int i = 99'999; i >= 0; i -= 2) {
    sim.cancel(handles[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(sim.pending_events(), 50'000u);
  sim.run();
  EXPECT_EQ(sim.executed_events(), 50'000u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(EventEngineStress, ClearDuringCallbackDropsEverything) {
  simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.clear();
  });
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(2.0 + i, [&] { ++fired; });
  }
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
  // The engine must remain usable after clear().
  sim.schedule_at(500.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace mca::sim
