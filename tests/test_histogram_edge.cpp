// Randomized edge-case coverage for util::histogram quantile interpolation
// and bin placement, aimed at the boundaries the analytic fig-suite paths
// never visit: empty histograms, single samples, saturated edge bins fed
// by far-out-of-range values, and NaN/infinite inputs.  The out-of-range
// adds in particular exercise histogram::add's double->size_t saturation,
// which the ASan+UBSan CI leg watches for invalid float-to-integer casts.
#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mca::util {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Reconstructs the multiset of sample positions the interpolated quantile
/// is defined over: the c samples of bin b sit at evenly spaced offsets
/// (j + 0.5)/c of the bin width.  Sorted by construction (bins ascend,
/// within-bin offsets ascend), so the reference quantile is a direct
/// linear interpolation over ranks.
std::vector<double> reconstructed_samples(const histogram& h) {
  std::vector<double> samples;
  samples.reserve(h.total());
  for (std::size_t b = 0; b < h.bin_count(); ++b) {
    const std::size_t c = h.count_in_bin(b);
    for (std::size_t j = 0; j < c; ++j) {
      samples.push_back(h.bin_lower(b) +
                        h.bin_width() * (static_cast<double>(j) + 0.5) /
                            static_cast<double>(c));
    }
  }
  return samples;
}

double reference_quantile(const std::vector<double>& sorted, double q) {
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (rank - static_cast<double>(lo)) * (sorted[hi] - sorted[lo]);
}

TEST(HistogramEdge, EmptyQuantileThrows) {
  histogram h{0.0, 10.0, 4};
  EXPECT_THROW(h.quantile(0.5), std::logic_error);
  EXPECT_THROW(h.quantile_interpolated(0.5), std::logic_error);
}

TEST(HistogramEdge, OutOfRangeQRejectedIncludingNaN) {
  histogram h{0.0, 10.0, 4};
  h.add(5.0);
  EXPECT_THROW(h.quantile(-0.001), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.001), std::invalid_argument);
  EXPECT_THROW(h.quantile(kNaN), std::invalid_argument);
  EXPECT_THROW(h.quantile_interpolated(-1.0), std::invalid_argument);
  EXPECT_THROW(h.quantile_interpolated(2.0), std::invalid_argument);
  EXPECT_THROW(h.quantile_interpolated(kNaN), std::invalid_argument);
}

TEST(HistogramEdge, OneSampleEveryQuantileIsTheSample) {
  histogram h{0.0, 8.0, 8};
  h.add(3.2);  // lands in bin 3, single sample sits at its midpoint 3.5
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile_interpolated(q), 3.5);
    EXPECT_DOUBLE_EQ(h.quantile(q), 3.5);
  }
}

TEST(HistogramEdge, FarOutOfRangeSamplesSaturateEdgeBins) {
  histogram h{0.0, 100.0, 10};
  // Values whose bin offset overflows size_t (or is infinite) must clamp
  // to the top bin, not trip an out-of-range float->int cast.
  h.add(1.0e308);
  h.add(std::numeric_limits<double>::max());
  h.add(kInf);
  h.add(250.0);  // ordinary overshoot, same top bin
  // Below-range (including hugely so) lands in bin 0.
  h.add(-1.0e308);
  h.add(-kInf);
  h.add(-5.0);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.count_in_bin(9), 4u);
  EXPECT_EQ(h.count_in_bin(0), 3u);
  // Quantiles stay inside the layout even with saturated edges.
  for (double q : {0.0, 0.5, 1.0}) {
    const double v = h.quantile_interpolated(q);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(HistogramEdge, NaNSampleCountsWithoutPoisoning) {
  histogram h{0.0, 10.0, 4};
  h.add(kNaN);  // bin offset comparisons all fail -> bin 0, like <= lo
  h.add(7.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_TRUE(std::isfinite(h.quantile_interpolated(0.5)));
}

TEST(HistogramEdge, InterpolationMatchesReconstructedSamples) {
  rng gen{0x9e3779b97f4a7c15ULL};
  for (int trial = 0; trial < 200; ++trial) {
    const double lo = gen.uniform(-50.0, 50.0);
    const double hi = lo + gen.uniform(0.5, 200.0);
    const auto bins = static_cast<std::size_t>(gen.uniform_int(1, 12));
    histogram h{lo, hi, bins};
    const auto n = static_cast<std::size_t>(gen.uniform_int(1, 160));
    for (std::size_t i = 0; i < n; ++i) {
      // Mostly in-range, with a deliberate out-of-range tail including
      // magnitudes that overflow the bin-offset arithmetic.
      if (gen.bernoulli(0.1)) {
        h.add(gen.bernoulli(0.5) ? 1.0e307 : -1.0e307);
      } else {
        h.add(gen.uniform(lo - 10.0, hi + 10.0));
      }
    }
    const std::vector<double> samples = reconstructed_samples(h);
    ASSERT_EQ(samples.size(), h.total());
    ASSERT_TRUE(std::is_sorted(samples.begin(), samples.end()));
    for (int k = 0; k < 8; ++k) {
      const double q = gen.uniform();
      const double expected = reference_quantile(samples, q);
      EXPECT_NEAR(h.quantile_interpolated(q), expected,
                  1.0e-9 * std::max(1.0, std::abs(expected)))
          << "trial " << trial << " q=" << q;
    }
    EXPECT_DOUBLE_EQ(h.quantile_interpolated(0.0), samples.front());
    EXPECT_DOUBLE_EQ(h.quantile_interpolated(1.0), samples.back());
  }
}

TEST(HistogramEdge, LogHistogramExtremesStayInRange) {
  log_histogram h{16};
  h.add(0.0);
  h.add(-3.0);
  h.add(1.0e300);  // log2 ~ 996, clamps to the last bucket
  h.add(kInf);
  EXPECT_EQ(h.total(), 4u);
}

}  // namespace
}  // namespace mca::util
