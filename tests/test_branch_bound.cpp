#include "ilp/branch_bound.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace mca::ilp {
namespace {

TEST(BranchBound, FractionalRelaxationRoundsUpCorrectly) {
  // min 3x s.t. 2x >= 5, x integer -> LP gives 2.5, ILP must give 3.
  problem p;
  const auto x = p.add_integer_variable(3.0, 0.0, 100.0);
  p.add_constraint({{x, 2.0}}, relation::greater_equal, 5.0);
  const auto s = solve_ilp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.values[x], 3.0, 1e-9);
  EXPECT_NEAR(s.objective, 9.0, 1e-9);
}

TEST(BranchBound, PureLpPassthrough) {
  problem p;
  const auto x = p.add_variable(1.0);
  p.add_constraint({{x, 1.0}}, relation::greater_equal, 2.5);
  const auto s = solve_ilp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.values[x], 2.5, 1e-9);
}

TEST(BranchBound, TwoVariableCoverProblem) {
  // Two server types: capacity 30 @ $1, capacity 90 @ $2.5; cover 100 users.
  // Options: 4 small ($4), 2 big ($5), 1 big + 1 small = 120 cap ($3.5) <-.
  problem p;
  const auto small = p.add_integer_variable(1.0, 0.0, 20.0);
  const auto big = p.add_integer_variable(2.5, 0.0, 20.0);
  p.add_constraint({{small, 30.0}, {big, 90.0}}, relation::greater_equal,
                   100.0);
  const auto s = solve_ilp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.objective, 3.5, 1e-9);
  EXPECT_NEAR(s.values[small], 1.0, 1e-9);
  EXPECT_NEAR(s.values[big], 1.0, 1e-9);
}

TEST(BranchBound, InfeasibleIntegerProblem) {
  // 2 <= 2x <= 3 has no integer point (x must be 1 -> 2x=2 ok... make it
  // strict: 2.2 <= 2x <= 2.8 -> x in [1.1, 1.4], no integer).
  problem p;
  const auto x = p.add_integer_variable(1.0, 0.0, 10.0);
  p.add_constraint({{x, 2.0}}, relation::greater_equal, 2.2);
  p.add_constraint({{x, 2.0}}, relation::less_equal, 2.8);
  const auto s = solve_ilp(p);
  EXPECT_EQ(s.status, solve_status::infeasible);
}

TEST(BranchBound, KnapsackStyleMaximization) {
  // max 5a + 4b + 3c s.t. 2a+3b+c <= 5, binary -> a=1,c=1 wait check all:
  // (1,1,0): w=5 v=9; (1,0,1): w=3 v=8; (1,1,1): w=6 infeasible;
  // (0,1,1): w=4 v=7. Optimum 9.
  problem p;
  const auto a = p.add_integer_variable(-5.0, 0.0, 1.0);
  const auto b = p.add_integer_variable(-4.0, 0.0, 1.0);
  const auto c = p.add_integer_variable(-3.0, 0.0, 1.0);
  p.add_constraint({{a, 2.0}, {b, 3.0}, {c, 1.0}}, relation::less_equal, 5.0);
  const auto s = solve_ilp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(-s.objective, 9.0, 1e-9);
  EXPECT_NEAR(s.values[a], 1.0, 1e-9);
  EXPECT_NEAR(s.values[b], 1.0, 1e-9);
  EXPECT_NEAR(s.values[c], 0.0, 1e-9);
}

TEST(BranchBound, MixedIntegerProblem) {
  // x integer, y continuous: min x + y, x + y >= 3.5, x >= y.
  // Best: y as large as allowed relative to x... optimum x=2, y=1.5? obj 3.5.
  // Check x=1,y=2.5 violates x>=y. x=2,y=1.5 ok obj 3.5. x=3,y=0.5 obj 3.5.
  problem p;
  const auto x = p.add_integer_variable(1.0, 0.0, 10.0);
  const auto y = p.add_variable(1.0, 0.0, 10.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, relation::greater_equal, 3.5);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, relation::greater_equal, 0.0);
  const auto s = solve_ilp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.objective, 3.5, 1e-9);
  EXPECT_NEAR(s.values[x], std::round(s.values[x]), 1e-9);
}

TEST(BranchBound, NodeBudgetReportsIterationLimit) {
  problem p;
  // A problem needing at least a few nodes.
  const auto x = p.add_integer_variable(1.0, 0.0, 100.0);
  const auto y = p.add_integer_variable(1.1, 0.0, 100.0);
  p.add_constraint({{x, 3.0}, {y, 7.0}}, relation::greater_equal, 20.0);
  ilp_options opts;
  opts.max_nodes = 1;
  const auto s = solve_ilp(p, opts);
  EXPECT_EQ(s.status, solve_status::iteration_limit);
}

/// Brute-force reference: enumerate integer boxes up to `limit` per var.
double brute_force_min(const problem& p, int limit) {
  const std::size_t n = p.variable_count();
  std::vector<double> x(n, 0.0);
  double best = std::numeric_limits<double>::infinity();
  const auto total = static_cast<std::size_t>(std::pow(limit + 1, n));
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t rest = code;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<double>(rest % (limit + 1));
      rest /= (limit + 1);
    }
    if (p.is_feasible(x)) best = std::min(best, p.objective_value(x));
  }
  return best;
}

/// Property sweep: on random small pure-integer problems the B&B optimum
/// must match exhaustive enumeration exactly.
class IlpVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IlpVsBruteForce, MatchesExhaustiveEnumeration) {
  util::rng rng{GetParam()};
  constexpr int kLimit = 6;  // variables range over 0..6
  problem p;
  const auto n_vars = static_cast<std::size_t>(rng.uniform_int(2, 3));
  for (std::size_t i = 0; i < n_vars; ++i) {
    p.add_integer_variable(rng.uniform(0.5, 5.0), 0.0, kLimit);
  }
  const auto n_rows = static_cast<std::size_t>(rng.uniform_int(1, 3));
  for (std::size_t r = 0; r < n_rows; ++r) {
    std::vector<linear_term> terms;
    for (std::size_t i = 0; i < n_vars; ++i) {
      terms.push_back({i, rng.uniform(0.5, 4.0)});
    }
    // Mix of cover (>=) and packing (<=) rows with feasible-ish rhs.
    if (rng.bernoulli(0.6)) {
      p.add_constraint(std::move(terms), relation::greater_equal,
                       rng.uniform(1.0, 10.0));
    } else {
      p.add_constraint(std::move(terms), relation::less_equal,
                       rng.uniform(8.0, 30.0));
    }
  }
  const double reference = brute_force_min(p, kLimit);
  const auto s = solve_ilp(p);
  if (std::isinf(reference)) {
    EXPECT_EQ(s.status, solve_status::infeasible);
  } else {
    ASSERT_EQ(s.status, solve_status::optimal);
    EXPECT_NEAR(s.objective, reference, 1e-6);
    EXPECT_TRUE(p.is_feasible(s.values));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, IlpVsBruteForce,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace mca::ilp
