#include "trace/log_store.h"

#include <gtest/gtest.h>

#include "util/sim_time.h"

namespace mca::trace {
namespace {

trace_record make_record(double ts, user_id user, group_id group) {
  trace_record r;
  r.timestamp = ts;
  r.user = user;
  r.group = group;
  r.battery_level = 0.8;
  r.rtt_ms = 250.0;
  return r;
}

TEST(LogStore, AppendAndSize) {
  log_store store;
  EXPECT_TRUE(store.empty());
  store.append(make_record(1.0, 1, 0));
  store.append(make_record(2.0, 2, 1));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.empty());
}

TEST(LogStore, OutOfOrderAppendsGetSorted) {
  log_store store;
  store.append(make_record(30.0, 3, 0));
  store.append(make_record(10.0, 1, 0));
  store.append(make_record(20.0, 2, 0));
  const auto range = store.in_range(0.0, 100.0);
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[0].user, 1u);
  EXPECT_EQ(range[1].user, 2u);
  EXPECT_EQ(range[2].user, 3u);
}

TEST(LogStore, RangeQueryIsHalfOpen) {
  log_store store;
  store.append(make_record(10.0, 1, 0));
  store.append(make_record(20.0, 2, 0));
  store.append(make_record(30.0, 3, 0));
  const auto range = store.in_range(10.0, 30.0);
  ASSERT_EQ(range.size(), 2u);
  EXPECT_EQ(range[0].user, 1u);
  EXPECT_EQ(range[1].user, 2u);
}

TEST(LogStore, EmptyRange) {
  log_store store;
  store.append(make_record(10.0, 1, 0));
  EXPECT_TRUE(store.in_range(20.0, 30.0).empty());
  EXPECT_TRUE(store.in_range(5.0, 10.0).empty());
}

TEST(LogStore, BuildSlotsGroupsUsersByWindow) {
  log_store store;
  store.append(make_record(100.0, 1, 0));
  store.append(make_record(200.0, 2, 1));
  store.append(make_record(1'100.0, 3, 0));
  const auto slots = store.build_slots(1'000.0, 2);
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0].user_count(0), 1u);
  EXPECT_EQ(slots[0].user_count(1), 1u);
  EXPECT_EQ(slots[1].user_count(0), 1u);
  EXPECT_EQ(slots[1].users_in(0)[0], 3u);
}

TEST(LogStore, BuildSlotsPreservesEmptyWindows) {
  log_store store;
  store.append(make_record(100.0, 1, 0));
  store.append(make_record(3'500.0, 2, 0));
  const auto slots = store.build_slots(1'000.0, 1);
  ASSERT_EQ(slots.size(), 4u);
  EXPECT_TRUE(slots[1].empty());
  EXPECT_TRUE(slots[2].empty());
  EXPECT_FALSE(slots[3].empty());
}

TEST(LogStore, BuildSlotsDeduplicatesUserPerWindow) {
  log_store store;
  store.append(make_record(10.0, 1, 0));
  store.append(make_record(20.0, 1, 0));
  store.append(make_record(30.0, 1, 0));
  const auto slots = store.build_slots(1'000.0, 1);
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0].user_count(0), 1u);
}

TEST(LogStore, BuildSlotsRespectsOrigin) {
  log_store store;
  store.append(make_record(500.0, 1, 0));   // before origin: skipped
  store.append(make_record(1'500.0, 2, 0));
  const auto slots = store.build_slots(1'000.0, 1, 1'000.0);
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0].users_in(0)[0], 2u);
}

TEST(LogStore, BuildSlotsIgnoresOutOfRangeGroups) {
  log_store store;
  store.append(make_record(10.0, 1, 5));  // group beyond requested count
  store.append(make_record(20.0, 2, 0));
  const auto slots = store.build_slots(1'000.0, 2);
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0].total_users(), 1u);
}

TEST(LogStore, BuildSlotsValidation) {
  log_store store;
  EXPECT_THROW(store.build_slots(0.0, 1), std::invalid_argument);
  EXPECT_THROW(store.build_slots(-5.0, 1), std::invalid_argument);
  EXPECT_THROW(store.build_slots(100.0, 0), std::invalid_argument);
}

TEST(LogStore, ClearResets) {
  log_store store;
  store.append(make_record(10.0, 1, 0));
  store.clear();
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(store.build_slots(100.0, 1).empty());
}

TEST(LogStore, RecordFieldsRoundTrip) {
  log_store store;
  trace_record r;
  r.timestamp = 42.0;
  r.user = 7;
  r.group = 2;
  r.battery_level = 0.55;
  r.rtt_ms = 987.0;
  store.append(r);
  const auto& stored = store.records()[0];
  EXPECT_EQ(stored.timestamp, 42.0);
  EXPECT_EQ(stored.user, 7u);
  EXPECT_EQ(stored.group, 2u);
  EXPECT_DOUBLE_EQ(stored.battery_level, 0.55);
  EXPECT_DOUBLE_EQ(stored.rtt_ms, 987.0);
}

}  // namespace
}  // namespace mca::trace
