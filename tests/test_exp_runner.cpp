#include "exp/runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "exp/scenario.h"
#include "tasks/task.h"

namespace mca::exp {
namespace {

/// The tiny closed-loop scenario used by the determinism tests: small
/// enough that a 16-thread sweep finishes quickly even on one core.
scenario_spec tiny_scenario() {
  scenario_spec spec;
  spec.name = "tiny";
  spec.base_seed = 99;
  spec.user_count = 8;
  spec.duration = util::minutes(30.0);
  spec.slot_length = util::minutes(10.0);
  // Exponential gaps: the study-trace synthesis would dominate the tests'
  // runtime without adding anything to the determinism property.
  spec.gaps = gap_model::exponential;
  spec.arrival_rate_hz = 0.05;
  spec.background_requests_per_burst = 2;
  spec.background_burst_period = util::seconds(10.0);
  spec.groups = {{1, "t2.nano", 1, 4.0}, {2, "t2.large", 1, 30.0}};
  return spec;
}

TEST(ReplicationPlan, SweepSplitsOneSeedAcrossIndices) {
  const auto plan = replication_plan::sweep(7, 4);
  ASSERT_EQ(plan.count(), 4u);
  for (const auto seed : plan.seeds) EXPECT_EQ(seed, 7u);
  // Same seed, distinct indices: the split streams must still diverge.
  util::rng a = replication_context{0, 7}.stream();
  util::rng b = replication_context{1, 7}.stream();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(ReplicationRunner, ResultsLandInReplicationOrder) {
  thread_pool pool{4};
  const auto plan = replication_plan::explicit_seeds({10, 11, 12, 13, 14});
  const auto outcome =
      run_replications(pool, plan, [](const replication_context& context) {
        return context.index * 100 + context.seed;
      });
  ASSERT_EQ(outcome.results.size(), 5u);
  EXPECT_TRUE(outcome.errors.empty());
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(outcome.results[i].has_value());
    EXPECT_EQ(*outcome.results[i], i * 100 + 10 + i);
  }
}

TEST(ReplicationRunner, ThrowingReplicationIsReportedNotDropped) {
  thread_pool pool{4};
  const auto plan = replication_plan::sweep(3, 6);
  const auto outcome =
      run_replications(pool, plan, [](const replication_context& context) {
        if (context.index == 2) {
          throw std::runtime_error{"backend exploded"};
        }
        return context.index;
      });
  EXPECT_EQ(outcome.completed(), 5u);
  EXPECT_FALSE(outcome.results[2].has_value());
  ASSERT_EQ(outcome.errors.size(), 1u);
  EXPECT_EQ(outcome.errors[0].index, 2u);
  EXPECT_EQ(outcome.errors[0].seed, 3u);
  EXPECT_EQ(outcome.errors[0].message, "backend exploded");
}

TEST(ReplicationRunner, ParallelMapPreservesOrderAndRethrows) {
  thread_pool pool{4};
  const auto squares =
      parallel_map(pool, 20, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(squares[i], i * i);

  EXPECT_THROW(parallel_map(pool, 4,
                            [](std::size_t i) {
                              if (i == 1) {
                                throw std::invalid_argument{"bad item"};
                              }
                              return i;
                            }),
               std::invalid_argument);
}

TEST(ScenarioRunner, MergedAggregateIsIdenticalAcrossThreadCounts) {
  const auto spec = tiny_scenario();
  const auto plan = spec.plan(6);
  tasks::task_pool tasks;

  scenario_result results[3];
  const std::size_t thread_counts[3] = {1, 4, 16};
  for (int i = 0; i < 3; ++i) {
    thread_pool pool{thread_counts[i]};
    results[i] = run_scenario(spec, plan, tasks, pool);
    EXPECT_TRUE(results[i].errors.empty());
    EXPECT_EQ(results[i].aggregate.replications, 6u);
    EXPECT_GT(results[i].aggregate.requests, 0u);
  }

  const auto reference = results[0].aggregate.fingerprint();
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(results[i].aggregate.fingerprint(), reference)
        << "thread count " << thread_counts[i];
    // Spot-check raw fields bit-for-bit, not just the hash.
    EXPECT_EQ(results[i].aggregate.response.mean(),
              results[0].aggregate.response.mean());
    EXPECT_EQ(results[i].aggregate.cost_usd.sum(),
              results[0].aggregate.cost_usd.sum());
    EXPECT_EQ(results[i].aggregate.successes, results[0].aggregate.successes);
  }
  // And per-replication digests line up one-to-one.
  for (int i = 1; i < 3; ++i) {
    ASSERT_EQ(results[i].per_replication.size(),
              results[0].per_replication.size());
    for (std::size_t r = 0; r < results[0].per_replication.size(); ++r) {
      EXPECT_EQ(results[i].per_replication[r].requests,
                results[0].per_replication[r].requests);
      EXPECT_EQ(results[i].per_replication[r].response.mean(),
                results[0].per_replication[r].response.mean());
    }
  }
}

TEST(ScenarioRunner, ReplicationsVaryButStayDeterministic) {
  const auto spec = tiny_scenario();
  tasks::task_pool tasks;
  thread_pool pool{2};
  const auto result = run_scenario(spec, spec.plan(4), tasks, pool);
  ASSERT_EQ(result.per_replication.size(), 4u);
  // Different rng streams must actually change the workload: at least two
  // replications differ in some digest field.
  bool any_difference = false;
  for (std::size_t r = 1; r < result.per_replication.size(); ++r) {
    if (result.per_replication[r].requests !=
            result.per_replication[0].requests ||
        result.per_replication[r].response.mean() !=
            result.per_replication[0].response.mean()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(ScenarioRunner, BrokenScenarioSurfacesEveryFailure) {
  auto spec = tiny_scenario();
  spec.groups = {{1, "no.such.instance", 1, 4.0}};
  tasks::task_pool tasks;
  thread_pool pool{4};
  const auto result = run_scenario(spec, spec.plan(3), tasks, pool);
  EXPECT_EQ(result.per_replication.size(), 0u);
  EXPECT_EQ(result.aggregate.replications, 0u);
  ASSERT_EQ(result.errors.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(result.errors[i].index, i);
    EXPECT_FALSE(result.errors[i].message.empty());
  }
}

TEST(ScenarioSpecValidation, RejectsDegenerateSpecs) {
  const auto expect_rejected = [](scenario_spec spec, const char* what) {
    try {
      validate(spec);
      FAIL() << "accepted a spec with " << what;
    } catch (const std::invalid_argument& e) {
      // The message names the scenario and the offending field.
      EXPECT_NE(std::string{e.what()}.find(spec.name), std::string::npos)
          << what;
    }
  };

  scenario_spec spec = tiny_scenario();
  EXPECT_NO_THROW(validate(spec));

  spec = tiny_scenario();
  spec.user_count = 0;
  expect_rejected(spec, "zero users");

  spec = tiny_scenario();
  spec.duration = 0.0;
  expect_rejected(spec, "zero duration");

  spec = tiny_scenario();
  spec.slot_length = -1.0;
  expect_rejected(spec, "negative slot length");

  spec = tiny_scenario();
  spec.groups.clear();
  expect_rejected(spec, "no groups");

  spec = tiny_scenario();
  spec.session_probability = 1.5;
  expect_rejected(spec, "session probability above 1");

  spec = tiny_scenario();
  spec.session_probability = -0.1;
  expect_rejected(spec, "negative session probability");
}

TEST(ScenarioSpecValidation, RunScenarioThrowsInsteadOfFailingEverySeed) {
  auto spec = tiny_scenario();
  spec.user_count = 0;
  tasks::task_pool tasks;
  thread_pool pool{2};
  EXPECT_THROW(run_scenario(spec, spec.plan(3), tasks, pool),
               std::invalid_argument);
}

TEST(ScenarioSpecValidation, GroupCountCoversSparseGroupIds) {
  auto spec = tiny_scenario();
  EXPECT_EQ(group_count_of(spec), 3u);  // groups 1 and 2 -> ids 0..2
  spec.groups.push_back({7, "t2.large", 1, 30.0});
  EXPECT_EQ(group_count_of(spec), 8u);
}

TEST(ScenarioMetrics, DigestAndMergeCountConsistently) {
  core::system_metrics metrics;
  metrics.promotions = 2;
  metrics.total_cost_usd = 1.5;
  for (int i = 0; i < 10; ++i) {
    core::request_metric request;
    request.user = static_cast<user_id>(i);
    request.group = i % 2 == 0 ? 1 : 2;
    request.response_ms = 100.0 * (i + 1);
    request.success = i != 9;  // one failure
    metrics.requests.push_back(request);
  }
  const auto digest = digest_metrics(metrics, 3, 77);
  EXPECT_EQ(digest.requests, 10u);
  EXPECT_EQ(digest.successes, 9u);
  EXPECT_EQ(digest.group_successes[1], 5u);
  EXPECT_EQ(digest.group_successes[2], 4u);
  EXPECT_EQ(digest.latency.total(), 9u);

  const replication_metrics digests[2] = {digest, digest};
  const auto merged = merge_replications(digests);
  EXPECT_EQ(merged.replications, 2u);
  EXPECT_EQ(merged.requests, 20u);
  EXPECT_EQ(merged.successes, 18u);
  EXPECT_EQ(merged.latency.total(), 18u);
  EXPECT_DOUBLE_EQ(merged.cost_usd.mean(), 1.5);
  EXPECT_DOUBLE_EQ(merged.acceptance_rate(), 0.9);
}

}  // namespace
}  // namespace mca::exp
