// Degenerate-pivot coverage for the candidate-list Dantzig pricing: Beale's
// classic cycling example (which loops forever under naive most-negative
// pricing without an anti-cycling fallback) and a fully degenerate equality
// chain that stresses phase-1 artificial drive-out.
#include "ilp/simplex.h"

#include <gtest/gtest.h>

#include <vector>

namespace mca::ilp {
namespace {

TEST(SimplexDegenerate, BealesCyclingExampleTerminatesAtOptimum) {
  // min -3/4 x1 + 150 x2 - 1/50 x3 + 6 x4
  // s.t. 1/4 x1 - 60 x2 - 1/25 x3 + 9 x4 <= 0
  //      1/2 x1 - 90 x2 - 1/50 x3 + 3 x4 <= 0
  //      x3 <= 1,  x >= 0
  // Optimum -1/20 at x = (1/25, 0, 1, 0).  Every vertex on the way is
  // degenerate; naive Dantzig pricing with a fixed tie-break cycles.
  problem p;
  const auto x1 = p.add_variable(-0.75);
  const auto x2 = p.add_variable(150.0);
  const auto x3 = p.add_variable(-0.02);
  const auto x4 = p.add_variable(6.0);
  p.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                   relation::less_equal, 0.0);
  p.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                   relation::less_equal, 0.0);
  p.add_constraint({{x3, 1.0}}, relation::less_equal, 1.0);

  const solution s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-9);
  EXPECT_NEAR(s.values[x1], 0.04, 1e-9);
  EXPECT_NEAR(s.values[x3], 1.0, 1e-9);
}

TEST(SimplexDegenerate, EqualityChainDrivesArtificialsOut) {
  // x0 = x1 = ... = x5 (all-zero rhs equalities: phase 1 ends with every
  // artificial basic at level zero) plus x0 + x5 >= 2; minimize the sum.
  problem p;
  std::vector<std::size_t> x;
  for (int i = 0; i < 6; ++i) x.push_back(p.add_variable(1.0));
  for (int i = 0; i + 1 < 6; ++i) {
    p.add_constraint({{x[static_cast<std::size_t>(i)], 1.0},
                      {x[static_cast<std::size_t>(i + 1)], -1.0}},
                     relation::equal, 0.0);
  }
  p.add_constraint({{x.front(), 1.0}, {x.back(), 1.0}},
                   relation::greater_equal, 2.0);

  const solution s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.objective, 6.0, 1e-7);
  for (const auto v : x) EXPECT_NEAR(s.values[v], 1.0, 1e-7);
}

TEST(SimplexDegenerate, ManyRedundantTiesStillOptimal) {
  // A block of identical constraints produces maximal ratio-test ties; the
  // lowest-basis-index tie-break must keep the walk finite.
  problem p;
  const auto x = p.add_variable(1.0, 0.0, 50.0);
  const auto y = p.add_variable(1.3, 0.0, 50.0);
  for (int i = 0; i < 8; ++i) {
    p.add_constraint({{x, 2.0}, {y, 1.0}}, relation::greater_equal, 10.0);
  }
  for (int i = 0; i < 8; ++i) {
    p.add_constraint({{x, 1.0}, {y, 3.0}}, relation::greater_equal, 9.0);
  }
  const solution s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  // Vertex of 2x + y = 10 and x + 3y = 9: x = 4.2, y = 1.6.
  EXPECT_NEAR(s.values[x], 4.2, 1e-7);
  EXPECT_NEAR(s.values[y], 1.6, 1e-7);
  EXPECT_NEAR(s.objective, 4.2 + 1.3 * 1.6, 1e-7);
}

}  // namespace
}  // namespace mca::ilp
