// Golden semantic-equivalence gate for the PR-5 hot-path overhaul.
//
// The per-request pipeline was rewritten around pooled state, SoA user
// slabs, and streaming digests; the bit-parallel edit distance replaced
// the DP; the slot scan became a streaming accumulator.  None of that may
// change simulation semantics.  Two layers of protection:
//
//  1. Pinned goldens — request counts, acceptance, billing totals, and
//     latency-digest numbers recorded from the pre-refactor tree (PR-4
//     code) for a fixed scenario/seed, asserted here.  Integer counts are
//     exact; monetary/latency aggregates allow float-noise tolerance.
//  2. Properties — the streaming request digest must equal the digest
//     recomputed from the raw per-request series, and a run must not
//     depend on whether the raw series is recorded at all.
#include "exp/scenario.h"

#include <gtest/gtest.h>

#include <cmath>

#include "exp/thread_pool.h"
#include "fleet/fleet_runner.h"
#include "tasks/task.h"

namespace mca {
namespace {

/// The fixed scenario the goldens were recorded on (PR-4 tree, seed
/// 20170): mixed task pool, Poisson gaps, background load, promotions,
/// four backend tiers over three groups, five 10-minute slots.
exp::scenario_spec golden_spec() {
  exp::scenario_spec spec;
  spec.name = "golden";
  spec.base_seed = 20170;
  spec.user_count = 600;
  spec.duration = util::minutes(50.0);
  spec.slot_length = util::minutes(10.0);
  spec.tasks = exp::task_mix::random_pool;
  spec.gaps = exp::gap_model::exponential;
  spec.arrival_rate_hz = 0.02;
  spec.background_requests_per_burst = 5;
  spec.background_burst_period = util::seconds(10.0);
  spec.promotion_probability = 1.0 / 40.0;
  spec.groups = {
      {1, "t2.nano", 2, 6.0},      {1, "t2.small", 0, 18.0},
      {2, "t2.large", 1, 30.0},    {3, "m4.4xlarge", 1, 100.0},
  };
  spec.max_total_instances = 40;
  spec.fleet_max_total_instances = 40;
  spec.fleet_shards = 3;
  return spec;
}

exp::replication_metrics run_golden_digest() {
  tasks::task_pool pool;
  const exp::scenario_spec spec = golden_spec();
  exp::replication_context ctx;
  ctx.index = 0;
  ctx.seed = spec.base_seed;
  const core::system_metrics metrics = exp::run_replication(spec, pool, ctx);
  return exp::digest_metrics(metrics, exp::group_count_of(spec), ctx.seed);
}

TEST(GoldenEquivalence, MonolithicRunMatchesPreRefactorGoldens) {
  const exp::replication_metrics digest = run_golden_digest();

  // Recorded from the PR-4 tree (see CHANGES.md): any drift here means
  // the refactor changed what is simulated, not just how fast.
  EXPECT_EQ(digest.requests, 36182u);
  EXPECT_EQ(digest.successes, 36182u);
  EXPECT_EQ(digest.promotions, 740u);
  EXPECT_EQ(digest.background_submitted, 66005u);
  EXPECT_NEAR(digest.total_cost_usd, 4.2681, 1e-9);
  EXPECT_EQ(digest.response.count(), 36182u);
  EXPECT_NEAR(digest.response.mean(), 221.4674971996, 1e-6);
  EXPECT_EQ(digest.latency.total(), 36182u);
  EXPECT_NEAR(digest.latency.quantile(0.50), 125.0, 1e-9);
  EXPECT_NEAR(digest.latency.quantile(0.95), 375.0, 1e-9);
}

TEST(GoldenEquivalence, ShardedFleetMatchesPreRefactorGoldens) {
  tasks::task_pool pool;
  const exp::scenario_spec spec = golden_spec();
  exp::thread_pool tpool{2};
  fleet::fleet_options options;
  options.shards = 3;
  const fleet::fleet_result result =
      fleet::run_fleet(spec, options, pool, tpool);

  EXPECT_EQ(result.aggregate.requests, 36269u);
  EXPECT_EQ(result.aggregate.successes, 32521u);
  EXPECT_EQ(result.aggregate.promotions, 713u);
  EXPECT_NEAR(result.aggregate.cost_usd.mean(), 1.5004666667, 1e-9);
  EXPECT_EQ(result.aggregate.latency.total(), 32521u);
  EXPECT_NEAR(result.aggregate.response.mean(), 222.0504903205, 1e-6);
  EXPECT_EQ(result.ilp_solves, 4u);
  EXPECT_EQ(result.slot_count, 5u);
}

TEST(GoldenEquivalence, StreamingDigestEqualsRawSeriesScan) {
  tasks::task_pool pool;
  const exp::scenario_spec spec = golden_spec();
  exp::replication_context ctx;
  ctx.index = 0;
  ctx.seed = spec.base_seed;
  // run_replication records the raw series, so the metrics carry both the
  // streaming digest and the per-request vector.
  const core::system_metrics metrics = exp::run_replication(spec, pool, ctx);
  ASSERT_FALSE(metrics.requests.empty());

  const auto& streamed = metrics.digest;
  EXPECT_EQ(streamed.issued, metrics.requests.size());

  // Recompute every aggregate from the raw series, in push order — the
  // streaming path must be bit-identical (same add order, same floats).
  util::running_stats response;
  util::histogram latency = core::default_latency_histogram();
  std::vector<util::running_stats> group_response(
      streamed.group_response.size());
  std::vector<std::uint64_t> group_successes(streamed.group_successes.size(),
                                             0);
  std::size_t successes = 0;
  for (const auto& r : metrics.requests) {
    if (!r.success) continue;
    ++successes;
    response.add(r.response_ms);
    latency.add(r.response_ms);
    if (r.group < group_response.size()) {
      group_response[r.group].add(r.response_ms);
      ++group_successes[r.group];
    }
  }
  EXPECT_EQ(streamed.succeeded, successes);
  EXPECT_EQ(streamed.response.count(), response.count());
  EXPECT_EQ(streamed.response.mean(), response.mean());
  EXPECT_EQ(streamed.response.variance(), response.variance());
  EXPECT_EQ(streamed.response.min(), response.min());
  EXPECT_EQ(streamed.response.max(), response.max());
  ASSERT_EQ(streamed.latency.bin_count(), latency.bin_count());
  for (std::size_t b = 0; b < latency.bin_count(); ++b) {
    EXPECT_EQ(streamed.latency.count_in_bin(b), latency.count_in_bin(b));
  }
  for (std::size_t g = 0; g < group_response.size(); ++g) {
    EXPECT_EQ(streamed.group_response[g].count(), group_response[g].count());
    EXPECT_EQ(streamed.group_response[g].mean(), group_response[g].mean());
    EXPECT_EQ(streamed.group_successes[g], group_successes[g]);
  }

  // The per-user index must agree with a linear scan of the raw series.
  for (user_id u = 0; u < 5; ++u) {
    std::vector<double> scanned;
    for (const auto& r : metrics.requests) {
      if (r.user == u && r.success) scanned.push_back(r.response_ms);
    }
    EXPECT_EQ(metrics.user_response_series(u), scanned);
  }
}

TEST(GoldenEquivalence, RawSeriesFlagDoesNotChangeSimulation) {
  tasks::task_pool pool;
  exp::scenario_spec spec = golden_spec();
  spec.user_count = 120;  // keep this variant quick
  spec.duration = util::minutes(30.0);

  const std::size_t groups = exp::group_count_of(spec);
  auto run_with_series = [&](bool record) {
    util::rng stream{spec.base_seed};
    core::system_config config = exp::make_system_config(spec, pool, stream);
    config.record_request_series = record;
    config.sdn.retain_trace_records = record;
    core::offloading_system system{std::move(config), pool};
    system.run(spec.duration);
    return exp::digest_metrics(system.metrics(), groups, spec.base_seed);
  };

  const exp::replication_metrics with_series = run_with_series(true);
  const exp::replication_metrics without_series = run_with_series(false);

  EXPECT_EQ(with_series.requests, without_series.requests);
  EXPECT_EQ(with_series.successes, without_series.successes);
  EXPECT_EQ(with_series.promotions, without_series.promotions);
  EXPECT_EQ(with_series.total_cost_usd, without_series.total_cost_usd);
  EXPECT_EQ(with_series.response.mean(), without_series.response.mean());
  EXPECT_EQ(with_series.latency.total(), without_series.latency.total());
  EXPECT_EQ(with_series.mean_prediction_accuracy,
            without_series.mean_prediction_accuracy);
}

}  // namespace
}  // namespace mca
