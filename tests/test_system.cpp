#include "core/system.h"

#include <gtest/gtest.h>

#include <memory>

#include "net/operators.h"

namespace mca::core {
namespace {

class SystemTest : public ::testing::Test {
 protected:
  system_config base_config() {
    system_config config;
    config.groups = {
        {1, "t2.nano", 1, 10.0},
        {2, "t2.large", 1, 40.0},
        {3, "m4.4xlarge", 1, 100.0},
    };
    config.user_count = 20;
    config.tasks = workload::static_source(pool_.static_minimax_request());
    config.gaps = workload::fixed_interarrival(util::seconds(30));
    config.slot_length = util::minutes(10);
    config.background_requests_per_burst = 0;  // off for unit tests
    config.sdn.routing_overhead_sd_ms = 0.0;
    // No promotions by default so per-group counts are exact; promotion
    // tests install their own policy.
    config.policy_factory = [] {
      return std::make_unique<client::never_promote>();
    };
    config.seed = 11;
    return config;
  }

  tasks::task_pool pool_;
};

TEST_F(SystemTest, ValidatesConfig) {
  auto no_groups = base_config();
  no_groups.groups.clear();
  EXPECT_THROW(offloading_system(no_groups, pool_), std::invalid_argument);

  auto no_tasks = base_config();
  no_tasks.tasks = nullptr;
  EXPECT_THROW(offloading_system(no_tasks, pool_), std::invalid_argument);

  auto no_users = base_config();
  no_users.user_count = 0;
  EXPECT_THROW(offloading_system(no_users, pool_), std::invalid_argument);

  auto no_mix = base_config();
  no_mix.device_mix.clear();
  EXPECT_THROW(offloading_system(no_mix, pool_), std::invalid_argument);
}

TEST_F(SystemTest, RunRejectsNonPositiveDuration) {
  offloading_system system{base_config(), pool_};
  EXPECT_THROW(system.run(0.0), std::invalid_argument);
}

TEST_F(SystemTest, RequestsFlowEndToEnd) {
  offloading_system system{base_config(), pool_};
  system.run(util::minutes(30));
  const auto& metrics = system.metrics();
  // 20 users at 1 request / 30 s over 30 min ~ 1200 requests.
  EXPECT_GT(metrics.requests.size(), 600u);
  std::size_t successes = 0;
  for (const auto& r : metrics.requests) {
    if (r.success) ++successes;
    EXPECT_LT(r.user, 20u);
  }
  EXPECT_EQ(successes, metrics.requests.size());  // no saturation here
}

TEST_F(SystemTest, AllUsersStartInInitialGroup) {
  auto config = base_config();
  config.policy_factory = [] { return std::make_unique<client::never_promote>(); };
  offloading_system system{config, pool_};
  system.run(util::minutes(20));
  for (const auto& r : system.metrics().requests) {
    EXPECT_EQ(r.group, 1u);
  }
  EXPECT_EQ(system.metrics().promotions, 0u);
}

TEST_F(SystemTest, PromotionsMoveUsersUpward) {
  auto config = base_config();
  config.policy_factory = [] {
    return std::make_unique<client::static_probability_promotion>(0.2);
  };
  offloading_system system{config, pool_};
  system.run(util::minutes(30));
  EXPECT_GT(system.metrics().promotions, 0u);
  // Per-user group series must be non-decreasing (promotion only).
  for (user_id u = 0; u < 20; ++u) {
    const auto series = system.metrics().user_group_series(u);
    for (std::size_t i = 1; i < series.size(); ++i) {
      EXPECT_GE(series[i], series[i - 1]);
    }
  }
}

TEST_F(SystemTest, SlotReportsCoverRun) {
  offloading_system system{base_config(), pool_};
  system.run(util::hours(1));
  // 10-minute slots over an hour -> 6 reports.
  EXPECT_EQ(system.metrics().slots.size(), 6u);
  for (const auto& slot : system.metrics().slots) {
    // All 20 users offload every 30 s, so every slot sees all of them.
    std::size_t total = 0;
    for (const auto count : slot.actual_counts) total += count;
    EXPECT_EQ(total, 20u);
  }
}

TEST_F(SystemTest, PredictionsAppearOnceHistoryExists) {
  offloading_system system{base_config(), pool_};
  system.run(util::hours(1));
  const auto& slots = system.metrics().slots;
  // First slot: knowledge base too small in successor mode.
  EXPECT_FALSE(slots.front().predicted_counts.has_value());
  EXPECT_TRUE(slots.back().predicted_counts.has_value());
  EXPECT_TRUE(system.metrics().mean_prediction_accuracy().has_value());
  // Stationary workload -> near-perfect prediction.
  EXPECT_GT(*system.metrics().mean_prediction_accuracy(), 0.95);
}

TEST_F(SystemTest, AdaptationLaunchesInstancesForLoad) {
  auto config = base_config();
  config.user_count = 35;
  // Each nano carries 10 users; 35 users in group 1 need 4 nanos.
  offloading_system system{config, pool_};
  system.run(util::hours(1));
  EXPECT_GE(system.backend().instance_count(1, "t2.nano"), 4u);
}

TEST_F(SystemTest, AdaptationDisabledKeepsInitialFleet) {
  auto config = base_config();
  config.user_count = 35;
  config.enable_adaptation = false;
  offloading_system system{config, pool_};
  system.run(util::hours(1));
  EXPECT_EQ(system.backend().instance_count(1, "t2.nano"), 1u);
  for (const auto& slot : system.metrics().slots) {
    EXPECT_FALSE(slot.plan.has_value());
  }
}

TEST_F(SystemTest, SeedHistoryEnablesImmediatePrediction) {
  auto config = base_config();
  // Two seed slots make successor-mode prediction possible from slot 0.
  trace::time_slot seed{4};
  for (user_id u = 0; u < 20; ++u) seed.add_user(1, u);
  config.seed_history = {seed, seed};
  offloading_system system{config, pool_};
  system.run(util::minutes(20));
  ASSERT_FALSE(system.metrics().slots.empty());
  EXPECT_TRUE(system.metrics().slots.front().predicted_counts.has_value());
}

TEST_F(SystemTest, CostAccruesWithFleet) {
  offloading_system system{base_config(), pool_};
  system.run(util::hours(2));
  EXPECT_GT(system.metrics().total_cost_usd, 0.0);
}

TEST_F(SystemTest, BackgroundLoadInflatesResponseTimes) {
  auto fast = base_config();
  auto loaded = base_config();
  loaded.background_requests_per_burst = 40;
  offloading_system a{fast, pool_};
  offloading_system b{loaded, pool_};
  a.run(util::minutes(20));
  b.run(util::minutes(20));
  double mean_fast = 0.0;
  for (const auto& r : a.metrics().requests) mean_fast += r.response_ms;
  mean_fast /= static_cast<double>(a.metrics().requests.size());
  double mean_loaded = 0.0;
  for (const auto& r : b.metrics().requests) mean_loaded += r.response_ms;
  mean_loaded /= static_cast<double>(b.metrics().requests.size());
  EXPECT_GT(b.metrics().background_submitted, 0u);
  EXPECT_GT(mean_loaded, mean_fast * 1.5);
}

TEST_F(SystemTest, UserSeriesHelpersFilterCorrectly) {
  offloading_system system{base_config(), pool_};
  system.run(util::minutes(20));
  const auto responses = system.metrics().user_response_series(3);
  const auto groups = system.metrics().user_group_series(3);
  EXPECT_EQ(responses.size(), groups.size());
  EXPECT_FALSE(responses.empty());
  for (const double r : responses) EXPECT_GT(r, 0.0);
}

TEST_F(SystemTest, ThreeGLinkIsSlowerEndToEnd) {
  auto lte = base_config();
  auto threeg = base_config();
  threeg.mobile_link = net::calibrated_model(net::operator_by_name("beta"),
                                             net::technology::threeg);
  offloading_system fast{lte, pool_};
  offloading_system slow{threeg, pool_};
  fast.run(util::minutes(20));
  slow.run(util::minutes(20));
  auto mean_response = [](const system_metrics& m) {
    double total = 0.0;
    for (const auto& r : m.requests) total += r.response_ms;
    return total / static_cast<double>(m.requests.size());
  };
  // 3G adds ~100 ms of mean RTT over LTE (paper Fig. 11).
  EXPECT_GT(mean_response(slow.metrics()),
            mean_response(fast.metrics()) + 50.0);
}

TEST_F(SystemTest, DemotionReturnsIdleUsersToLowerGroups) {
  auto config = base_config();
  config.allow_demotion = true;
  // Heavy background keeps level 1 slow (promote); levels 2/3 answer well
  // under the lower bound (demote) -> users oscillate, proving demotion.
  config.background_requests_per_burst = 60;
  config.policy_factory = [] {
    return std::make_unique<client::latency_band_policy>(600.0, 1'200.0, 1);
  };
  offloading_system system{config, pool_};
  system.run(util::minutes(40));
  EXPECT_GT(system.metrics().promotions, 0u);
  EXPECT_GT(system.metrics().demotions, 0u);
  for (user_id u = 0; u < 5; ++u) {
    for (const auto g : system.metrics().user_group_series(u)) {
      EXPECT_GE(g, 1u);  // never below the initial group
    }
  }
}

TEST_F(SystemTest, CumulativeCapacityModeRuns) {
  auto config = base_config();
  config.cumulative_capacity = true;
  config.user_count = 30;
  offloading_system system{config, pool_};
  system.run(util::hours(1));
  // Plans exist and respect the cap; cumulative mode may buy fewer
  // low-tier instances because fast groups can absorb slow demand.
  bool planned = false;
  for (const auto& slot : system.metrics().slots) {
    if (slot.plan) {
      planned = true;
      EXPECT_LE(slot.plan->total_instances(), config.max_total_instances);
    }
  }
  EXPECT_TRUE(planned);
}

TEST_F(SystemTest, MatchModePredictorRuns) {
  auto config = base_config();
  config.predictor_mode = prediction_mode::match;
  offloading_system system{config, pool_};
  system.run(util::hours(1));
  // Match mode predicts from the first boundary (single slot suffices).
  EXPECT_TRUE(system.metrics().slots.front().predicted_counts.has_value());
  EXPECT_GT(*system.metrics().mean_prediction_accuracy(), 0.9);
}

TEST_F(SystemTest, TraceLogMatchesRequestMetrics) {
  offloading_system system{base_config(), pool_};
  system.run(util::minutes(30));
  std::size_t successes = 0;
  for (const auto& r : system.metrics().requests) {
    if (r.success) ++successes;
  }
  EXPECT_EQ(system.log().size(), successes);
}

TEST_F(SystemTest, DeterministicForSeed) {
  offloading_system a{base_config(), pool_};
  offloading_system b{base_config(), pool_};
  a.run(util::minutes(15));
  b.run(util::minutes(15));
  ASSERT_EQ(a.metrics().requests.size(), b.metrics().requests.size());
  for (std::size_t i = 0; i < a.metrics().requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.metrics().requests[i].response_ms,
                     b.metrics().requests[i].response_ms);
  }
}

}  // namespace
}  // namespace mca::core
