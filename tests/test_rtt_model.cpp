#include "net/rtt_model.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/operators.h"
#include "util/stats.h"

namespace mca::net {
namespace {

TEST(MixtureStats, PureLognormalMoments) {
  rtt_model_params p;
  p.log_mu = std::log(50.0);
  p.log_sigma = 1.0;
  p.spike_probability = 0.0;
  EXPECT_NEAR(mixture_median(p), 50.0, 0.1);
  EXPECT_NEAR(mixture_mean(p), 50.0 * std::exp(0.5), 0.1);
}

TEST(MixtureStats, SpikesRaiseMeanAndSd) {
  rtt_model_params base;
  base.log_mu = std::log(50.0);
  base.log_sigma = 0.8;
  rtt_model_params spiky = base;
  spiky.spike_probability = 0.05;
  spiky.spike_min_ms = 500.0;
  spiky.spike_max_ms = 2'000.0;
  EXPECT_GT(mixture_mean(spiky), mixture_mean(base));
  EXPECT_GT(mixture_stddev(spiky), mixture_stddev(base));
  // Median barely moves (spikes are rare and far in the tail).
  EXPECT_NEAR(mixture_median(spiky), mixture_median(base),
              mixture_median(base) * 0.1);
}

TEST(MixtureStats, AnalyticMatchesMonteCarlo) {
  rtt_model_params p;
  p.log_mu = std::log(40.0);
  p.log_sigma = 1.1;
  p.spike_probability = 0.03;
  p.spike_min_ms = 300.0;
  p.spike_max_ms = 3'000.0;
  rtt_model model{p};
  util::rng rng{123};
  std::vector<double> samples;
  for (int i = 0; i < 400'000; ++i) samples.push_back(model.sample(rng));
  const auto s = util::summary_of(samples);
  EXPECT_NEAR(s.mean, mixture_mean(p), mixture_mean(p) * 0.03);
  EXPECT_NEAR(s.median, mixture_median(p), mixture_median(p) * 0.03);
  EXPECT_NEAR(s.stddev, mixture_stddev(p), mixture_stddev(p) * 0.08);
}

TEST(FitRtt, RejectsNonPositiveTargets) {
  EXPECT_THROW(fit_rtt_params({0.0, 1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(fit_rtt_params({1.0, -1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(fit_rtt_params({1.0, 1.0, 0.0}), std::invalid_argument);
}

TEST(FitRtt, ParallelFitIsBitIdenticalToSerial) {
  // The range-split grid scan must reproduce the serial first-minimum
  // incumbent exactly — same cells, same reduction order semantics — at
  // any thread count, odd slice counts included.
  const rtt_target_stats target{141.0, 60.0, 376.0};  // beta LTE
  const auto serial = fit_rtt_params(target, 1);
  for (unsigned threads : {2u, 3u, 4u, 7u}) {
    const auto parallel = fit_rtt_params(target, threads);
    EXPECT_EQ(serial.log_mu, parallel.log_mu) << threads;
    EXPECT_EQ(serial.log_sigma, parallel.log_sigma) << threads;
    EXPECT_EQ(serial.spike_probability, parallel.spike_probability) << threads;
    EXPECT_EQ(serial.spike_min_ms, parallel.spike_min_ms) << threads;
    EXPECT_EQ(serial.spike_max_ms, parallel.spike_max_ms) << threads;
  }
}

/// Property sweep: calibration must hit every published operator target
/// (all six mean/median/SD triples of Fig. 11) within 5%.
struct fit_case {
  std::string label;
  rtt_target_stats target;
};

class FitOperators : public ::testing::TestWithParam<fit_case> {};

TEST_P(FitOperators, CalibratesWithinFivePercent) {
  const auto& target = GetParam().target;
  const auto params = fit_rtt_params(target);
  EXPECT_LT(fit_error(params, target), 0.05) << GetParam().label;
  EXPECT_NEAR(mixture_mean(params), target.mean_ms, target.mean_ms * 0.05);
  EXPECT_NEAR(mixture_median(params), target.median_ms,
              target.median_ms * 0.05);
  EXPECT_NEAR(mixture_stddev(params), target.stddev_ms,
              target.stddev_ms * 0.05);
}

std::vector<fit_case> all_operator_targets() {
  std::vector<fit_case> cases;
  for (const auto& op : netradar_operators()) {
    cases.push_back({op.name + "-3G", op.threeg});
    cases.push_back({op.name + "-LTE", op.lte});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(PaperTargets, FitOperators,
                         ::testing::ValuesIn(all_operator_targets()),
                         [](const auto& param_info) {
                           std::string name = param_info.param.label;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(RttModel, DiurnalFactorAveragesToOne) {
  rtt_model_params p;
  p.log_mu = std::log(50.0);
  p.log_sigma = 0.5;
  rtt_model model{p, 0.3};
  double total = 0.0;
  const int steps = 24 * 60;
  for (int i = 0; i < steps; ++i) {
    total += model.diurnal_factor(24.0 * i / steps);
  }
  EXPECT_NEAR(total / steps, 1.0, 1e-6);
}

TEST(RttModel, BusyHoursAreSlower) {
  rtt_model_params p;
  p.log_mu = std::log(50.0);
  p.log_sigma = 0.5;
  rtt_model model{p, 0.3};
  EXPECT_GT(model.diurnal_factor(20.0), model.diurnal_factor(3.0));
  EXPECT_GT(model.diurnal_factor(9.0), model.diurnal_factor(3.0));
}

TEST(RttModel, ZeroAmplitudeIsFlat) {
  rtt_model_params p;
  p.log_mu = std::log(50.0);
  p.log_sigma = 0.5;
  rtt_model model{p, 0.0};
  EXPECT_NEAR(model.diurnal_factor(3.0), model.diurnal_factor(20.0), 1e-12);
}

TEST(RttModel, SamplesArePositive) {
  rtt_model model{fit_rtt_params({128.0, 51.0, 362.0}), 0.25};
  util::rng rng{9};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GT(model.sample(rng, 12.0), 0.0);
  }
}

TEST(Operators, PaperConstantsPresent) {
  const auto& ops = netradar_operators();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].name, "alpha");
  EXPECT_DOUBLE_EQ(ops[0].threeg.mean_ms, 128.0);
  EXPECT_DOUBLE_EQ(ops[1].lte.mean_ms, 36.0);
  EXPECT_DOUBLE_EQ(ops[2].threeg.stddev_ms, 379.0);
  EXPECT_EQ(ops[1].samples_lte, 493'956u);
}

TEST(Operators, LookupByName) {
  EXPECT_EQ(operator_by_name("gamma").name, "gamma");
  EXPECT_THROW(operator_by_name("delta"), std::out_of_range);
}

TEST(Operators, TechnologyNames) {
  EXPECT_STREQ(to_string(technology::threeg), "3G");
  EXPECT_STREQ(to_string(technology::lte), "LTE");
}

TEST(Operators, DefaultLteModelIsFast) {
  auto model = default_lte_model();
  util::rng rng{4};
  util::running_stats s;
  for (int i = 0; i < 50'000; ++i) s.add(model.sample(rng, 12.0));
  // Operator beta's LTE mean is 36 ms.
  EXPECT_NEAR(s.mean(), 36.0, 4.0);
}

}  // namespace
}  // namespace mca::net
