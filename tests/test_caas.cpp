#include "core/caas.h"

#include <gtest/gtest.h>

namespace mca::core {
namespace {

acceleration_map demo_map() {
  acceleration_group g0;
  g0.id = 0;
  g0.type_names = {"t2.micro"};
  g0.capacity_users = 10.0;
  acceleration_group g1;
  g1.id = 1;
  g1.type_names = {"t2.nano", "t2.small"};
  g1.capacity_users = 20.0;
  g1.solo_mean_ms = 30.0;
  acceleration_group g2;
  g2.id = 2;
  g2.type_names = {"t2.large"};
  g2.capacity_users = 60.0;
  g2.solo_mean_ms = 24.0;
  return acceleration_map{{g0, g1, g2}};
}

TEST(Caas, GroupZeroIsNotSold) {
  const auto plans = build_price_sheet(demo_map(), cloud::ec2_catalog());
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].level, 1u);
  EXPECT_EQ(plans[1].level, 2u);
}

TEST(Caas, PicksCheapestBackingType) {
  const auto plans = build_price_sheet(demo_map(), cloud::ec2_catalog());
  // Level 1 can be backed by nano ($0.0063) or small ($0.025): nano wins.
  EXPECT_EQ(plans[0].backing_type, "t2.nano");
}

TEST(Caas, PriceArithmeticIsConsistent) {
  caas_config config;
  config.margin = 0.5;
  config.active_hours_per_month = 100.0;
  config.utilization_target = 0.8;
  const auto plans = build_price_sheet(demo_map(), cloud::ec2_catalog(), config);
  const auto& level1 = plans[0];
  // sellable = 20 * 0.8 = 16 users; cost/user/hour = 0.0063/16.
  EXPECT_NEAR(level1.users_per_instance, 16.0, 1e-9);
  EXPECT_NEAR(level1.cost_per_user_month, 0.0063 / 16.0 * 100.0, 1e-9);
  EXPECT_NEAR(level1.price_per_user_month, level1.cost_per_user_month * 1.5,
              1e-9);
}

TEST(Caas, HigherLevelsCostMorePerUser) {
  const auto plans = build_price_sheet(demo_map(), cloud::ec2_catalog());
  // t2.large at $0.101/h over 48 sellable users is pricier per user than
  // nano at $0.0063/h over 16.
  EXPECT_GT(plans[1].price_per_user_month, plans[0].price_per_user_month);
}

TEST(Caas, SoloResponseTimeCarriedIntoPlan) {
  const auto plans = build_price_sheet(demo_map(), cloud::ec2_catalog());
  EXPECT_DOUBLE_EQ(plans[0].solo_response_ms, 30.0);
  EXPECT_DOUBLE_EQ(plans[1].solo_response_ms, 24.0);
}

TEST(Caas, ValidatesConfig) {
  caas_config bad_margin;
  bad_margin.margin = -0.1;
  EXPECT_THROW(build_price_sheet(demo_map(), cloud::ec2_catalog(), bad_margin),
               std::invalid_argument);
  caas_config bad_hours;
  bad_hours.active_hours_per_month = 0.0;
  EXPECT_THROW(build_price_sheet(demo_map(), cloud::ec2_catalog(), bad_hours),
               std::invalid_argument);
  caas_config bad_util;
  bad_util.utilization_target = 1.5;
  EXPECT_THROW(build_price_sheet(demo_map(), cloud::ec2_catalog(), bad_util),
               std::invalid_argument);
}

TEST(Caas, UnknownTypeThrows) {
  acceleration_group g1;
  g1.id = 0;
  acceleration_group g2;
  g2.id = 1;
  g2.type_names = {"made.up"};
  g2.capacity_users = 5.0;
  acceleration_map map{{g1, g2}};
  EXPECT_THROW(build_price_sheet(map, cloud::ec2_catalog()),
               std::invalid_argument);
}

TEST(Caas, EmptyMapThrows) {
  acceleration_map map{{}};
  EXPECT_THROW(build_price_sheet(map, cloud::ec2_catalog()),
               std::invalid_argument);
}

TEST(Caas, UpgradeComparison) {
  caas_plan plan;
  plan.price_per_user_month = 2.5;
  const auto cmp = caas_vs_device_upgrade(600.0, plan);
  EXPECT_DOUBLE_EQ(cmp.months_of_service, 240.0);
  EXPECT_DOUBLE_EQ(cmp.device_price, 600.0);
  EXPECT_THROW(caas_vs_device_upgrade(0.0, plan), std::invalid_argument);
  caas_plan unpriced;
  EXPECT_THROW(caas_vs_device_upgrade(100.0, unpriced), std::invalid_argument);
}

}  // namespace
}  // namespace mca::core
