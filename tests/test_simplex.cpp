#include "ilp/simplex.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.h"

namespace mca::ilp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Simplex, SimpleTwoVariableMinimum) {
  // min 2x + 3y  s.t. x + y >= 4, x >= 0, y >= 0  -> x=4, y=0, obj=8.
  problem p;
  const auto x = p.add_variable(2.0);
  const auto y = p.add_variable(3.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, relation::greater_equal, 4.0);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-9);
  EXPECT_NEAR(s.values[x], 4.0, 1e-9);
  EXPECT_NEAR(s.values[y], 0.0, 1e-9);
}

TEST(Simplex, BindingUpperBound) {
  // min -x (maximize x) with x <= 7.5.
  problem p;
  const auto x = p.add_variable(-1.0, 0.0, 7.5);
  p.add_constraint({{x, 1.0}}, relation::less_equal, 100.0);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.values[x], 7.5, 1e-9);
  EXPECT_NEAR(s.objective, -7.5, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y  s.t. x + 2y = 6, y <= 2 -> y=2, x=2? check: x+2y=6, minimize
  // x+y = (6-2y)+y = 6-y -> y as large as possible: y=2, x=2, obj=4.
  problem p;
  const auto x = p.add_variable(1.0);
  const auto y = p.add_variable(1.0, 0.0, 2.0);
  p.add_constraint({{x, 1.0}, {y, 2.0}}, relation::equal, 6.0);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-9);
  EXPECT_NEAR(s.values[y], 2.0, 1e-9);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1 and x >= 3 cannot hold.
  problem p;
  const auto x = p.add_variable(1.0);
  p.add_constraint({{x, 1.0}}, relation::less_equal, 1.0);
  p.add_constraint({{x, 1.0}}, relation::greater_equal, 3.0);
  const auto s = solve_lp(p);
  EXPECT_EQ(s.status, solve_status::infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x with only a lower-bounding constraint -> x can grow forever.
  problem p;
  const auto x = p.add_variable(-1.0);
  p.add_constraint({{x, 1.0}}, relation::greater_equal, 0.0);
  const auto s = solve_lp(p);
  EXPECT_EQ(s.status, solve_status::unbounded);
}

TEST(Simplex, ShiftedLowerBounds) {
  // min x + y with x >= 2, y >= 3 and x + y >= 10.
  problem p;
  const auto x = p.add_variable(1.0, 2.0);
  const auto y = p.add_variable(1.0, 3.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, relation::greater_equal, 10.0);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-9);
  EXPECT_GE(s.values[x], 2.0 - 1e-9);
  EXPECT_GE(s.values[y], 3.0 - 1e-9);
}

TEST(Simplex, ClassicMaximizationViaNegation) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Dantzig's example):
  // optimum (2,6), objective 36.
  problem p;
  const auto x = p.add_variable(-3.0, 0.0, 4.0);
  const auto y = p.add_variable(-5.0);
  p.add_constraint({{y, 2.0}}, relation::less_equal, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, relation::less_equal, 18.0);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(-s.objective, 36.0, 1e-9);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
  EXPECT_NEAR(s.values[y], 6.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex (degeneracy);
  // Bland's rule must still terminate.
  problem p;
  const auto x = p.add_variable(1.0);
  const auto y = p.add_variable(1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, relation::greater_equal, 2.0);
  p.add_constraint({{x, 2.0}, {y, 2.0}}, relation::greater_equal, 4.0);
  p.add_constraint({{x, 3.0}, {y, 3.0}}, relation::greater_equal, 6.0);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Simplex, ZeroRhsEquality) {
  // x - y = 0, x + y >= 2, min x -> x=y=1.
  problem p;
  const auto x = p.add_variable(1.0);
  const auto y = p.add_variable(0.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, relation::equal, 0.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, relation::greater_equal, 2.0);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.values[x], 1.0, 1e-9);
  EXPECT_NEAR(s.values[y], 1.0, 1e-9);
}

TEST(Simplex, ThrowsOnNoVariables) {
  problem p;
  EXPECT_THROW(solve_lp(p), std::invalid_argument);
}

TEST(Simplex, ThrowsOnInfiniteLowerBound) {
  problem p;
  p.add_variable(1.0, -kInf);
  EXPECT_THROW(solve_lp(p), std::invalid_argument);
}

TEST(Simplex, SolutionSatisfiesProblemFeasibility) {
  problem p;
  const auto x = p.add_variable(1.5, 1.0, 10.0);
  const auto y = p.add_variable(0.5, 0.0, 8.0);
  const auto z = p.add_variable(2.0);
  p.add_constraint({{x, 1.0}, {y, 2.0}, {z, 1.0}}, relation::greater_equal,
                   12.0);
  p.add_constraint({{x, 1.0}, {z, 1.0}}, relation::less_equal, 9.0);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_TRUE(p.is_feasible(s.values, 1e-6));
}

TEST(Problem, ValidationErrors) {
  problem p;
  EXPECT_THROW(p.add_variable(1.0, 5.0, 2.0), std::invalid_argument);
  const auto x = p.add_variable(1.0);
  EXPECT_THROW(p.add_constraint({}, relation::equal, 0.0),
               std::invalid_argument);
  EXPECT_THROW(p.add_constraint({{x + 7, 1.0}}, relation::equal, 0.0),
               std::out_of_range);
  EXPECT_THROW(p.set_bounds(x, 3.0, 1.0), std::invalid_argument);
}

TEST(Problem, ObjectiveAndFeasibilityHelpers) {
  problem p;
  const auto x = p.add_variable(2.0, 0.0, 5.0);
  const auto y = p.add_integer_variable(3.0, 0.0, 5.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, relation::less_equal, 6.0);
  EXPECT_TRUE(p.has_integer_variables());
  EXPECT_DOUBLE_EQ(p.objective_value({1.0, 2.0}), 8.0);
  EXPECT_TRUE(p.is_feasible({1.0, 2.0}));
  EXPECT_FALSE(p.is_feasible({1.0, 2.5}));   // integer violated
  EXPECT_FALSE(p.is_feasible({4.0, 3.0}));   // row violated
  EXPECT_FALSE(p.is_feasible({-1.0, 0.0}));  // bound violated
  EXPECT_FALSE(p.is_feasible({1.0}));        // wrong arity
}

// Property sweep: on random cover LPs the simplex optimum must be
// feasible and no worse than any randomly sampled feasible point.
class SimplexOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexOptimality, BeatsRandomFeasiblePoints) {
  mca::util::rng rng{GetParam()};
  problem p;
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 4));
  for (std::size_t i = 0; i < n; ++i) {
    p.add_variable(rng.uniform(0.5, 4.0), 0.0, 50.0);
  }
  const std::size_t rows = static_cast<std::size_t>(rng.uniform_int(1, 3));
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<linear_term> terms;
    for (std::size_t i = 0; i < n; ++i) {
      terms.push_back({i, rng.uniform(0.2, 3.0)});
    }
    p.add_constraint(std::move(terms), relation::greater_equal,
                     rng.uniform(1.0, 20.0));
  }
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  ASSERT_TRUE(p.is_feasible(s.values, 1e-6));
  // Sample random points; every feasible one must cost at least as much.
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> x(n);
    for (auto& v : x) v = rng.uniform(0.0, 50.0);
    if (p.is_feasible(x)) {
      EXPECT_GE(p.objective_value(x), s.objective - 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexOptimality,
                         ::testing::Range<std::uint64_t>(100, 120));

TEST(SolveStatus, Names) {
  EXPECT_STREQ(to_string(solve_status::optimal), "optimal");
  EXPECT_STREQ(to_string(solve_status::infeasible), "infeasible");
  EXPECT_STREQ(to_string(solve_status::unbounded), "unbounded");
  EXPECT_STREQ(to_string(solve_status::iteration_limit), "iteration_limit");
}

}  // namespace
}  // namespace mca::ilp
