#include "client/moderator.h"

#include <gtest/gtest.h>

#include <memory>

namespace mca::client {
namespace {

TEST(NeverPromote, StaysPut) {
  never_promote policy;
  util::rng rng{1};
  response_context ctx;
  ctx.current_group = 1;
  ctx.max_group = 3;
  ctx.response_ms = 99'999.0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.next_group(ctx, rng), 1u);
  }
}

TEST(StaticProbability, ValidationRejectsBadProbability) {
  EXPECT_THROW(static_probability_promotion{-0.1}, std::invalid_argument);
  EXPECT_THROW(static_probability_promotion{1.5}, std::invalid_argument);
}

TEST(StaticProbability, PromotionRateMatchesProbability) {
  static_probability_promotion policy{1.0 / 50.0};
  util::rng rng{7};
  response_context ctx;
  ctx.current_group = 1;
  ctx.max_group = 3;
  int promotions = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (policy.next_group(ctx, rng) == 2u) ++promotions;
  }
  EXPECT_NEAR(static_cast<double>(promotions) / n, 0.02, 0.003);
}

TEST(StaticProbability, NeverExceedsMaxGroup) {
  static_probability_promotion policy{1.0};
  util::rng rng{7};
  response_context ctx;
  ctx.current_group = 3;
  ctx.max_group = 3;
  EXPECT_EQ(policy.next_group(ctx, rng), 3u);
}

TEST(LatencyThreshold, ValidatesArguments) {
  EXPECT_THROW(latency_threshold_promotion(0.0, 3), std::invalid_argument);
  EXPECT_THROW(latency_threshold_promotion(100.0, 0), std::invalid_argument);
}

TEST(LatencyThreshold, PromotesAfterConsecutiveSlowResponses) {
  latency_threshold_promotion policy{500.0, 3};
  util::rng rng{1};
  response_context ctx;
  ctx.user = 1;
  ctx.current_group = 1;
  ctx.max_group = 3;
  ctx.response_ms = 600.0;
  EXPECT_EQ(policy.next_group(ctx, rng), 1u);  // strike 1
  EXPECT_EQ(policy.next_group(ctx, rng), 1u);  // strike 2
  EXPECT_EQ(policy.next_group(ctx, rng), 2u);  // strike 3 -> promote
}

TEST(LatencyThreshold, FastResponseResetsStrikes) {
  latency_threshold_promotion policy{500.0, 3};
  util::rng rng{1};
  response_context ctx;
  ctx.user = 1;
  ctx.current_group = 1;
  ctx.max_group = 3;
  ctx.response_ms = 600.0;
  policy.next_group(ctx, rng);
  policy.next_group(ctx, rng);
  ctx.response_ms = 100.0;  // fast response wipes the streak
  EXPECT_EQ(policy.next_group(ctx, rng), 1u);
  ctx.response_ms = 600.0;
  EXPECT_EQ(policy.next_group(ctx, rng), 1u);
  EXPECT_EQ(policy.next_group(ctx, rng), 1u);
  EXPECT_EQ(policy.next_group(ctx, rng), 2u);
}

TEST(LatencyThreshold, StrikesTrackedPerUser) {
  latency_threshold_promotion policy{500.0, 2};
  util::rng rng{1};
  response_context a;
  a.user = 1;
  a.current_group = 1;
  a.max_group = 3;
  a.response_ms = 900.0;
  response_context b = a;
  b.user = 2;
  policy.next_group(a, rng);
  policy.next_group(b, rng);
  // Each user has one strike; neither promotes yet.
  EXPECT_EQ(policy.next_group(a, rng), 2u);  // a reaches 2 strikes
  EXPECT_EQ(policy.next_group(b, rng), 2u);  // b independently
}

TEST(BatteryAware, ValidatesFloor) {
  EXPECT_THROW(battery_aware_promotion{0.0}, std::invalid_argument);
  EXPECT_THROW(battery_aware_promotion{1.0}, std::invalid_argument);
}

TEST(BatteryAware, PromotesOnceWhenBatteryLow) {
  battery_aware_promotion policy{0.3};
  util::rng rng{1};
  response_context ctx;
  ctx.user = 1;
  ctx.current_group = 1;
  ctx.max_group = 3;
  ctx.battery = 0.5;
  EXPECT_EQ(policy.next_group(ctx, rng), 1u);
  ctx.battery = 0.2;
  EXPECT_EQ(policy.next_group(ctx, rng), 2u);
  ctx.current_group = 2;
  // Still low, but the one-shot promotion already fired.
  EXPECT_EQ(policy.next_group(ctx, rng), 2u);
}

TEST(Moderator, ValidatesConstruction) {
  EXPECT_THROW(moderator(nullptr, 1, 3, util::rng{1}), std::invalid_argument);
  EXPECT_THROW(moderator(std::make_unique<never_promote>(), 4, 3, util::rng{1}),
               std::invalid_argument);
}

TEST(Moderator, UsersStartInInitialGroup) {
  moderator mod{std::make_unique<never_promote>(), 1, 3, util::rng{1}};
  EXPECT_EQ(mod.group_of(17), 1u);
  EXPECT_EQ(mod.group_of(99), 1u);
}

TEST(Moderator, RecordResponseAppliesPolicy) {
  moderator mod{std::make_unique<static_probability_promotion>(1.0), 1, 3,
                util::rng{1}};
  EXPECT_EQ(mod.record_response(5, 100.0), 2u);
  EXPECT_EQ(mod.group_of(5), 2u);
  EXPECT_EQ(mod.record_response(5, 100.0), 3u);
  EXPECT_EQ(mod.record_response(5, 100.0), 3u);  // capped at max
  EXPECT_EQ(mod.promotions(), 2u);
}

TEST(Moderator, PromotionsAreSequential) {
  moderator mod{std::make_unique<static_probability_promotion>(1.0), 1, 3,
                util::rng{1}};
  // Even with probability 1, each response promotes by exactly one level.
  EXPECT_EQ(mod.record_response(1, 1.0), 2u);
  EXPECT_EQ(mod.record_response(1, 1.0), 3u);
}

TEST(Moderator, PolicyAccessors) {
  moderator mod{std::make_unique<never_promote>(), 1, 4, util::rng{1}};
  EXPECT_STREQ(mod.policy().name(), "never");
  EXPECT_EQ(mod.initial_group(), 1u);
  EXPECT_EQ(mod.max_group(), 4u);
}

TEST(LatencyBand, ValidatesArguments) {
  EXPECT_THROW((latency_band_policy{0.0, 100.0}), std::invalid_argument);
  EXPECT_THROW((latency_band_policy{200.0, 100.0}), std::invalid_argument);
  EXPECT_THROW((latency_band_policy{100.0, 200.0, 0}), std::invalid_argument);
}

TEST(LatencyBand, PromotesAboveUpperBound) {
  latency_band_policy policy{200.0, 1'000.0, 2};
  util::rng rng{1};
  response_context ctx;
  ctx.user = 1;
  ctx.current_group = 1;
  ctx.max_group = 3;
  ctx.response_ms = 1'500.0;
  EXPECT_EQ(policy.next_group(ctx, rng), 1u);
  EXPECT_EQ(policy.next_group(ctx, rng), 2u);
}

TEST(LatencyBand, DemotesBelowLowerBound) {
  latency_band_policy policy{200.0, 1'000.0, 2};
  util::rng rng{1};
  response_context ctx;
  ctx.user = 1;
  ctx.current_group = 3;
  ctx.max_group = 3;
  ctx.response_ms = 50.0;
  EXPECT_EQ(policy.next_group(ctx, rng), 3u);
  EXPECT_EQ(policy.next_group(ctx, rng), 2u);
}

TEST(LatencyBand, InBandResetsBothCounters) {
  latency_band_policy policy{200.0, 1'000.0, 2};
  util::rng rng{1};
  response_context ctx;
  ctx.user = 1;
  ctx.current_group = 2;
  ctx.max_group = 3;
  ctx.response_ms = 1'500.0;
  policy.next_group(ctx, rng);  // slow strike 1
  ctx.response_ms = 500.0;      // in band: reset
  policy.next_group(ctx, rng);
  ctx.response_ms = 1'500.0;
  EXPECT_EQ(policy.next_group(ctx, rng), 2u);  // strike 1 again
  EXPECT_EQ(policy.next_group(ctx, rng), 3u);
}

TEST(LatencyBand, SlowAndFastStrikesCancel) {
  latency_band_policy policy{200.0, 1'000.0, 2};
  util::rng rng{1};
  response_context ctx;
  ctx.user = 1;
  ctx.current_group = 2;
  ctx.max_group = 3;
  ctx.response_ms = 1'500.0;
  policy.next_group(ctx, rng);  // slow strike
  ctx.response_ms = 100.0;      // fast strike wipes the slow streak
  policy.next_group(ctx, rng);
  EXPECT_EQ(policy.next_group(ctx, rng), 1u);  // second fast -> demote
}

TEST(Moderator, DemotionDisabledClampsDownwardMoves) {
  // Without allow_demotion a demote-happy policy cannot move users down.
  moderator mod{std::make_unique<latency_band_policy>(200.0, 1'000.0, 1), 1,
                3, util::rng{1}};
  mod.record_response(1, 5'000.0);  // promote to 2
  EXPECT_EQ(mod.group_of(1), 2u);
  mod.record_response(1, 50.0);  // demotion suppressed
  EXPECT_EQ(mod.group_of(1), 2u);
  EXPECT_EQ(mod.demotions(), 0u);
  EXPECT_FALSE(mod.allows_demotion());
}

TEST(Moderator, DemotionEnabledMovesUsersDown) {
  moderator mod{std::make_unique<latency_band_policy>(200.0, 1'000.0, 1), 1,
                3, util::rng{1}, /*allow_demotion=*/true};
  mod.record_response(1, 5'000.0);
  mod.record_response(1, 5'000.0);
  EXPECT_EQ(mod.group_of(1), 3u);
  mod.record_response(1, 50.0);
  EXPECT_EQ(mod.group_of(1), 2u);
  EXPECT_EQ(mod.demotions(), 1u);
  EXPECT_EQ(mod.promotions(), 2u);
}

TEST(Moderator, DemotionNeverGoesBelowInitialGroup) {
  moderator mod{std::make_unique<latency_band_policy>(200.0, 1'000.0, 1), 1,
                3, util::rng{1}, /*allow_demotion=*/true};
  mod.record_response(1, 50.0);
  mod.record_response(1, 50.0);
  EXPECT_EQ(mod.group_of(1), 1u);  // clamped at the initial group
  EXPECT_EQ(mod.demotions(), 0u);
}

TEST(PolicyNames, AllDistinct) {
  EXPECT_STREQ(never_promote{}.name(), "never");
  EXPECT_STREQ(static_probability_promotion{}.name(), "static_probability");
  EXPECT_STREQ((latency_threshold_promotion{100.0, 1}.name()),
               "latency_threshold");
  EXPECT_STREQ(battery_aware_promotion{}.name(), "battery_aware");
}

}  // namespace
}  // namespace mca::client
