// Correctness net for the dual-simplex warm-started branch & bound:
// randomized small ILPs are cross-checked against exhaustive enumeration
// of the integer box, so any bound-tightening or basis-reuse bug shows up
// as a wrong optimum rather than a silent performance artifact.
#include "ilp/branch_bound.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "ilp/tableau.h"
#include "util/rng.h"

namespace mca::ilp {
namespace {

struct enumerated {
  bool feasible = false;
  double objective = std::numeric_limits<double>::infinity();
};

/// Brute-force optimum over the integer box of `p` (all variables integer
/// with small finite bounds).
enumerated enumerate(const problem& p) {
  const std::size_t n = p.variable_count();
  std::vector<double> x(n);
  enumerated best;
  std::vector<int> lo(n), hi(n);
  for (std::size_t j = 0; j < n; ++j) {
    lo[j] = static_cast<int>(p.variable(j).lower);
    hi[j] = static_cast<int>(p.variable(j).upper);
    x[j] = lo[j];
  }
  for (;;) {
    if (p.is_feasible(x, 1e-9)) {
      const double obj = p.objective_value(x);
      if (obj < best.objective) {
        best.feasible = true;
        best.objective = obj;
      }
    }
    // Odometer increment.
    std::size_t j = 0;
    while (j < n) {
      if (x[j] + 1.0 <= hi[j]) {
        x[j] += 1.0;
        break;
      }
      x[j] = lo[j];
      ++j;
    }
    if (j == n) break;
  }
  return best;
}

TEST(BranchBoundWarmStart, MatchesExhaustiveEnumeration) {
  util::rng rng{20260728};
  int feasible_seen = 0;
  int infeasible_seen = 0;
  for (int instance = 0; instance < 40; ++instance) {
    problem p;
    const std::size_t n = 4;
    for (std::size_t j = 0; j < n; ++j) {
      p.add_integer_variable(rng.uniform(0.5, 3.0), 0.0, 4.0);
    }
    const int rows = static_cast<int>(rng.uniform_int(2, 4));
    for (int r = 0; r < rows; ++r) {
      std::vector<linear_term> terms;
      for (std::size_t j = 0; j < n; ++j) {
        const double coeff = static_cast<double>(rng.uniform_int(0, 3));
        if (coeff != 0.0) terms.push_back({j, coeff});
      }
      if (terms.empty()) terms.push_back({0, 1.0});
      p.add_constraint(std::move(terms), relation::greater_equal,
                       rng.uniform(2.0, 14.0));
    }
    {
      std::vector<linear_term> cap;
      for (std::size_t j = 0; j < n; ++j) cap.push_back({j, 1.0});
      p.add_constraint(std::move(cap), relation::less_equal, 10.0);
    }

    const enumerated truth = enumerate(p);
    const solution got = solve_ilp(p);
    if (truth.feasible) {
      ++feasible_seen;
      ASSERT_EQ(got.status, solve_status::optimal) << "instance " << instance;
      EXPECT_NEAR(got.objective, truth.objective, 1e-6)
          << "instance " << instance;
      EXPECT_TRUE(p.is_feasible(got.values, 1e-6)) << "instance " << instance;
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(got.values[j], std::round(got.values[j]), 1e-6);
      }
    } else {
      ++infeasible_seen;
      EXPECT_EQ(got.status, solve_status::infeasible) << "instance " << instance;
    }
  }
  // The generator should exercise both outcomes; if not, tighten it.
  EXPECT_GT(feasible_seen, 5);
  EXPECT_GT(infeasible_seen, 0);
}

TEST(TableauWarmStart, FirstFiniteUpperBoundNeedsNoRebuild) {
  // x is unbounded above at build time; maximize it against a shared row,
  // then hand it its first finite upper bound.  In the bounded-variable
  // formulation this is a pure span update — the dual simplex repairs the
  // violated basic value in place, without the full primal rebuild the
  // explicit-row tableau needed to materialize a bound row.
  problem p;
  const auto x = p.add_variable(-1.0);  // maximize x, upper = +inf
  const auto y = p.add_variable(1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, relation::less_equal, 10.0);

  simplex_options opts;
  dense_tableau t{p, opts.tolerance};
  ASSERT_EQ(t.solve(opts), solve_status::optimal);
  solution before;
  t.extract(before);
  EXPECT_NEAR(before.values[x], 10.0, 1e-9);

  const std::size_t pivots_before = t.pivots();
  t.tighten_upper(x, 6.5);
  ASSERT_EQ(t.resolve(opts), solve_status::optimal);
  solution after;
  t.extract(after);
  EXPECT_NEAR(after.values[x], 6.5, 1e-9);
  EXPECT_NEAR(after.values[y], 0.0, 1e-9);
  EXPECT_NEAR(after.objective, -6.5, 1e-9);
  // The warm path is a handful of dual repairs, not a two-phase re-solve.
  EXPECT_LE(t.pivots() - pivots_before, 3u);
  // Cross-check against a cold solve of the tightened model.
  problem fresh;
  const auto fx = fresh.add_variable(-1.0, 0.0, 6.5);
  const auto fy = fresh.add_variable(1.0);
  fresh.add_constraint({{fx, 1.0}, {fy, 1.0}}, relation::less_equal, 10.0);
  const auto cold = solve_lp(fresh);
  ASSERT_EQ(cold.status, solve_status::optimal);
  EXPECT_NEAR(cold.objective, after.objective, 1e-9);
}

TEST(TableauWarmStart, DualRecoversAfterBoundFlipAtUpper) {
  // The optimum parks y on its upper bound (an at-upper, flipped column).
  // Tightening that bound moves the parked variable itself — the rhs sweep
  // over the flipped column — and the dual simplex must then restore
  // feasibility by driving x up to its own box.
  problem p;
  const auto x = p.add_variable(-1.0, 0.0, 4.0);
  const auto y = p.add_variable(-2.0, 0.0, 8.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, relation::less_equal, 10.0);

  simplex_options opts;
  dense_tableau t{p, opts.tolerance};
  ASSERT_EQ(t.solve(opts), solve_status::optimal);
  solution before;
  t.extract(before);
  EXPECT_NEAR(before.values[y], 8.0, 1e-9);  // parked at its upper bound
  EXPECT_NEAR(before.values[x], 2.0, 1e-9);

  t.tighten_upper(y, 5.0);
  ASSERT_EQ(t.resolve(opts), solve_status::optimal);
  solution after;
  t.extract(after);
  EXPECT_NEAR(after.values[y], 5.0, 1e-9);
  EXPECT_NEAR(after.values[x], 4.0, 1e-9);  // now parked on its own box
  EXPECT_NEAR(after.objective, -14.0, 1e-9);

  // A second tightening chain on the other variable keeps the same
  // tableau warm across consecutive resolves, like branch & bound does.
  t.tighten_upper(x, 2.0);
  ASSERT_EQ(t.resolve(opts), solve_status::optimal);
  solution third;
  t.extract(third);
  EXPECT_NEAR(third.values[x], 2.0, 1e-9);
  EXPECT_NEAR(third.values[y], 5.0, 1e-9);
  EXPECT_NEAR(third.objective, -12.0, 1e-9);
}

TEST(TableauWarmStart, TightenLowerOnAtUpperVariableKeepsPoint) {
  // Raising the lower bound of a variable parked at its upper bound leaves
  // the vertex untouched (only the box shrinks); the resolve is a no-op
  // and the optimum survives unchanged.
  problem p;
  const auto x = p.add_variable(-3.0, 0.0, 5.0);
  const auto y = p.add_variable(1.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, relation::less_equal, 20.0);

  simplex_options opts;
  dense_tableau t{p, opts.tolerance};
  ASSERT_EQ(t.solve(opts), solve_status::optimal);
  solution before;
  t.extract(before);
  EXPECT_NEAR(before.values[x], 5.0, 1e-9);

  const std::size_t pivots_before = t.pivots();
  t.tighten_lower(x, 2.0);
  ASSERT_EQ(t.resolve(opts), solve_status::optimal);
  EXPECT_EQ(t.pivots(), pivots_before);  // nothing to repair
  solution after;
  t.extract(after);
  EXPECT_NEAR(after.values[x], 5.0, 1e-9);
  EXPECT_NEAR(after.objective, before.objective, 1e-9);
  EXPECT_GE(after.values[x], t.lower(x) - 1e-12);
}

TEST(BranchBoundWarmStart, DeepBranchingChainStaysExact) {
  // Knapsack-ish instance engineered for many fractional nodes: costs
  // nearly proportional to weights so the LP bound is tight and branching
  // goes deep before fathoming.
  problem p;
  const double weights[] = {7.0, 11.0, 13.0, 17.0, 19.0, 23.0};
  std::vector<std::size_t> vars;
  for (const double w : weights) {
    vars.push_back(p.add_integer_variable(w + 0.01, 0.0, 6.0));
  }
  std::vector<linear_term> cover;
  for (std::size_t j = 0; j < vars.size(); ++j) {
    cover.push_back({vars[j], weights[j]});
  }
  p.add_constraint(std::move(cover), relation::greater_equal, 200.0);

  const solution got = solve_ilp(p);
  ASSERT_EQ(got.status, solve_status::optimal);
  const enumerated truth = enumerate(p);
  ASSERT_TRUE(truth.feasible);
  EXPECT_NEAR(got.objective, truth.objective, 1e-6);
}

}  // namespace
}  // namespace mca::ilp
