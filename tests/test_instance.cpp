#include "cloud/instance.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"

namespace mca::cloud {
namespace {

/// Deterministic single-core reference type (no jitter, no steal).
instance_type exact_type(double vcpus = 1.0, double speed = 1.0) {
  instance_type t;
  t.name = "test.exact";
  t.vcpus = vcpus;
  t.memory_gb = 64.0;  // large admission cap
  t.cost_per_hour = 0.1;
  t.speed_factor = speed;
  t.jitter_sigma = 0.0;
  t.steal_max = 0.0;
  t.baseline_fraction = 1.0;
  return t;
}

TEST(Instance, SingleJobServiceTimeIsWorkPlusSpawn) {
  sim::simulation sim;
  instance server{sim, 1, exact_type(), util::rng{1}};
  double service = -1.0;
  ASSERT_TRUE(server.submit(10.0, [&](double t, bool) { service = t; }));
  sim.run();
  // 10 wu compute + 8 wu dalvikvm spawn at 1 wu/ms.
  EXPECT_NEAR(service, 18.0, 1e-9);
  EXPECT_EQ(server.completed(), 1u);
}

TEST(Instance, SpeedFactorDividesServiceTime) {
  sim::simulation sim;
  instance server{sim, 1, exact_type(1.0, 2.0), util::rng{1}};
  double service = -1.0;
  server.submit(10.0, [&](double t, bool) { service = t; });
  sim.run();
  EXPECT_NEAR(service, 9.0, 1e-9);
}

TEST(Instance, ProcessorSharingDoublesWithTwoJobs) {
  sim::simulation sim;
  instance server{sim, 1, exact_type(), util::rng{1}};
  std::vector<double> services;
  server.submit(10.0, [&](double t, bool) { services.push_back(t); });
  server.submit(10.0, [&](double t, bool) { services.push_back(t); });
  sim.run();
  ASSERT_EQ(services.size(), 2u);
  // Both 18-wu jobs share one core: each sees 36 ms.
  EXPECT_NEAR(services[0], 36.0, 1e-6);
  EXPECT_NEAR(services[1], 36.0, 1e-6);
}

TEST(Instance, MultipleCoresAvoidSharingPenalty) {
  sim::simulation sim;
  instance server{sim, 1, exact_type(2.0), util::rng{1}};
  std::vector<double> services;
  server.submit(10.0, [&](double t, bool) { services.push_back(t); });
  server.submit(10.0, [&](double t, bool) { services.push_back(t); });
  sim.run();
  ASSERT_EQ(services.size(), 2u);
  EXPECT_NEAR(services[0], 18.0, 1e-6);
  EXPECT_NEAR(services[1], 18.0, 1e-6);
}

TEST(Instance, LateArrivalSharesRemainingWork) {
  sim::simulation sim;
  instance server{sim, 1, exact_type(), util::rng{1}};
  std::vector<std::pair<double, double>> completions;  // (finish, service)
  server.submit(10.0, [&](double t, bool) { completions.push_back({sim.now(), t}); });
  sim.schedule_at(9.0, [&] {
    server.submit(1.0, [&](double t, bool) { completions.push_back({sim.now(), t}); });
  });
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  // Job A runs alone for 9 ms (9 wu done, 9 left), then shares.  Job B is
  // 9 wu total.  Both have 9 wu left at t=9 and finish together at t=27;
  // their in-server times are 27 (A) and 18 (B), in either callback order.
  EXPECT_NEAR(completions[0].first, 27.0, 1e-6);
  EXPECT_NEAR(completions[1].first, 27.0, 1e-6);
  std::vector<double> services{completions[0].second, completions[1].second};
  std::sort(services.begin(), services.end());
  EXPECT_NEAR(services[0], 18.0, 1e-6);
  EXPECT_NEAR(services[1], 27.0, 1e-6);
}

TEST(Instance, AdmissionCapDropsExcess) {
  sim::simulation sim;
  auto type = exact_type();
  type.memory_gb = 0.1;  // floor cap applies
  instance server{sim, 1, type, util::rng{1}};
  const auto cap = type.max_concurrent();
  int accepted = 0;
  for (std::size_t i = 0; i < cap + 2; ++i) {
    if (server.submit(5.0, {})) ++accepted;
  }
  EXPECT_EQ(static_cast<std::size_t>(accepted), cap);
  EXPECT_EQ(server.dropped(), 2u);
  EXPECT_EQ(server.active_jobs(), cap);
}

TEST(Instance, DrainRejectsNewWorkButFinishesRunning) {
  sim::simulation sim;
  instance server{sim, 1, exact_type(), util::rng{1}};
  bool finished = false;
  server.submit(10.0, [&](double, bool) { finished = true; });
  server.drain();
  EXPECT_FALSE(server.submit(1.0, {}));
  EXPECT_TRUE(server.draining());
  sim.run();
  EXPECT_TRUE(finished);
  EXPECT_TRUE(server.idle());
}

TEST(Instance, NegativeWorkThrows) {
  sim::simulation sim;
  instance server{sim, 1, exact_type(), util::rng{1}};
  EXPECT_THROW(server.submit(-1.0, {}), std::invalid_argument);
}

TEST(Instance, ServiceStatsTrackCompletions) {
  sim::simulation sim;
  instance server{sim, 1, exact_type(), util::rng{1}};
  server.submit(2.0, {});
  sim.run();
  server.submit(12.0, {});
  sim.run();
  EXPECT_EQ(server.service_stats().count(), 2u);
  EXPECT_NEAR(server.service_stats().mean(), 15.0, 1e-9);  // (10+20)/2
}

TEST(Instance, UtilizationReflectsBusyFraction) {
  sim::simulation sim;
  instance server{sim, 1, exact_type(), util::rng{1}};
  server.submit(42.0, {});  // busy for 50 ms
  sim.run();
  sim.run_until(100.0);  // idle for another 50 ms
  EXPECT_NEAR(server.mean_utilization(), 0.5, 1e-6);
}

TEST(Instance, StealSlowsServiceUnderContention) {
  sim::simulation sim;
  auto micro = exact_type();
  micro.steal_max = 0.5;
  instance stealing{sim, 1, micro, util::rng{1}};
  instance clean{sim, 2, exact_type(), util::rng{1}};
  std::vector<double> steal_times;
  std::vector<double> clean_times;
  for (int i = 0; i < 4; ++i) {
    stealing.submit(10.0, [&](double t, bool) { steal_times.push_back(t); });
    clean.submit(10.0, [&](double t, bool) { clean_times.push_back(t); });
  }
  sim.run();
  ASSERT_EQ(steal_times.size(), 4u);
  // With 4-way contention steal(4) = 0.5 * 4/12 = 1/6 -> 20% slower.
  EXPECT_GT(steal_times.front(), clean_times.front() * 1.15);
}

TEST(Instance, JitterPerturbsServiceTimes) {
  sim::simulation sim;
  auto noisy = exact_type();
  noisy.jitter_sigma = 0.3;
  instance server{sim, 1, noisy, util::rng{7}};
  std::vector<double> services;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(i * 1000.0, [&] {
      server.submit(10.0, [&](double t, bool) { services.push_back(t); });
    });
  }
  sim.run();
  ASSERT_EQ(services.size(), 50u);
  double lo = services[0];
  double hi = services[0];
  for (double s : services) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_GT(hi - lo, 1.0);  // visible spread
}

TEST(Instance, CreditExhaustionThrottlesToBaseline) {
  sim::simulation sim;
  auto type = exact_type();
  type.baseline_fraction = 0.1;
  instance::options opts;
  opts.enable_cpu_credits = true;
  opts.initial_credits_core_ms = 50.0;
  instance server{sim, 1, type, util::rng{1}, opts};
  double service = -1.0;
  server.submit(92.0, [&](double t, bool) { service = t; });  // 100 wu total
  sim.run();
  // Full speed while credits last: net drain 0.9/ms -> 55.55 ms doing
  // 55.55 wu.  The remaining 44.44 wu run at 0.1 wu/ms -> 444.4 ms.
  EXPECT_NEAR(service, 55.5556 + 444.444, 1.0);
  EXPECT_TRUE(server.throttled());
}

TEST(Instance, ThrottledUtilizationUsesEffectiveCores) {
  // Regression: the since-last-event tail of mean_utilization() used raw
  // vcpus, overstating busy cores while credit-throttled.  Sampled mid
  // throttled interval (no event since exhaustion), the tail must accrue
  // at the baseline share like advance() does.
  sim::simulation sim;
  auto type = exact_type();
  type.baseline_fraction = 0.1;
  instance::options opts;
  opts.enable_cpu_credits = true;
  opts.initial_credits_core_ms = 50.0;
  instance server{sim, 1, type, util::rng{1}, opts};
  server.submit(992.0, {});  // 1000 wu: throttles at ~55.6 ms, runs long
  sim.run_until(500.0);
  ASSERT_TRUE(server.throttled());
  ASSERT_EQ(server.completed(), 0u);
  // Busy core-ms by t=500: 55.56 at one full core, then 444.4 ms at 0.1
  // cores = 100 total -> 0.2 mean utilization.  The bug reported ~1.0.
  EXPECT_NEAR(server.mean_utilization(), 0.2, 1e-3);
}

TEST(Instance, CreditsRecoverWhenIdle) {
  sim::simulation sim;
  auto type = exact_type();
  type.baseline_fraction = 0.5;
  instance::options opts;
  opts.enable_cpu_credits = true;
  opts.initial_credits_core_ms = 10.0;
  instance server{sim, 1, type, util::rng{1}, opts};
  server.submit(42.0, {});
  sim.run();
  const double after_work = server.credit_balance();
  server.submit(0.0, {});  // forces an advance() much later
  sim.run_until(10'000.0);
  server.submit(0.0, {});
  sim.run();
  EXPECT_GT(server.credit_balance(), after_work);
}

TEST(Instance, CreditsDisabledMeansNeverThrottled) {
  sim::simulation sim;
  auto type = exact_type();
  type.baseline_fraction = 0.05;
  instance server{sim, 1, type, util::rng{1}};
  server.submit(10'000.0, {});
  sim.run();
  EXPECT_FALSE(server.throttled());
  // Full speed throughout: 10,008 wu in 10,008 ms.
  EXPECT_NEAR(server.service_stats().mean(), 10'008.0, 1e-6);
}

// Property sweep: processor sharing conserves work — however arrivals
// interleave, the server's busy time equals total work / speed, and the
// last completion lands exactly when all work is done (single core).
class WorkConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkConservation, BusyTimeEqualsTotalWork) {
  sim::simulation sim;
  instance server{sim, 1, exact_type(), util::rng{1}};
  util::rng rng{GetParam()};
  double total_work = 0.0;
  double last_arrival = 0.0;
  const int jobs = static_cast<int>(rng.uniform_int(2, 12));
  std::vector<double> completion_times;
  for (int i = 0; i < jobs; ++i) {
    // Arrivals packed densely enough that the server never idles.
    last_arrival += rng.uniform(0.0, 3.0);
    const double work = rng.uniform(1.0, 30.0);
    total_work += work + 8.0;  // + spawn overhead
    sim.schedule_at(last_arrival, [&server, work, &completion_times, &sim] {
      server.submit(work, [&completion_times, &sim](double, bool) {
        completion_times.push_back(sim.now());
      });
    });
  }
  sim.run();
  ASSERT_EQ(completion_times.size(), static_cast<std::size_t>(jobs));
  // No idle gaps (arrival gaps < smallest job) -> last completion at
  // first_arrival-independent bound: total busy time = total work.
  double latest = 0.0;
  for (const double t : completion_times) latest = std::max(latest, t);
  EXPECT_LE(latest, total_work + last_arrival + 1e-6);
  EXPECT_GE(latest, total_work - 1e-6);
  EXPECT_EQ(server.completed(), static_cast<std::uint64_t>(jobs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkConservation,
                         ::testing::Range<std::uint64_t>(200, 216));

TEST(Instance, CompletionCallbackMayResubmit) {
  sim::simulation sim;
  instance server{sim, 1, exact_type(), util::rng{1}};
  int completions = 0;
  std::function<void(double, bool)> resubmit = [&](double, bool) {
    if (++completions < 3) server.submit(2.0, resubmit);
  };
  server.submit(2.0, resubmit);
  sim.run();
  EXPECT_EQ(completions, 3);
  EXPECT_NEAR(sim.now(), 30.0, 1e-9);  // 3 x 10 ms back to back
}

}  // namespace
}  // namespace mca::cloud
