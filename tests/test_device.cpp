#include "client/device.h"

#include <gtest/gtest.h>

namespace mca::client {
namespace {

TEST(DeviceProfile, ClassesOrderedBySpeed) {
  EXPECT_LT(profile_for(device_class::wearable).local_speed_wu_per_ms,
            profile_for(device_class::budget).local_speed_wu_per_ms);
  EXPECT_LT(profile_for(device_class::budget).local_speed_wu_per_ms,
            profile_for(device_class::midrange).local_speed_wu_per_ms);
  EXPECT_LT(profile_for(device_class::midrange).local_speed_wu_per_ms,
            profile_for(device_class::flagship).local_speed_wu_per_ms);
}

TEST(DeviceProfile, WeakerHardwareBurnsMoreEnergyPerUnit) {
  EXPECT_GT(profile_for(device_class::wearable).cpu_drain_per_wu,
            profile_for(device_class::flagship).cpu_drain_per_wu);
}

TEST(DeviceProfile, Names) {
  EXPECT_STREQ(to_string(device_class::wearable), "wearable");
  EXPECT_STREQ(to_string(device_class::budget), "budget");
  EXPECT_STREQ(to_string(device_class::midrange), "midrange");
  EXPECT_STREQ(to_string(device_class::flagship), "flagship");
}

TEST(MobileDevice, LocalExecutionScalesWithSpeed) {
  mobile_device wearable{1, device_class::wearable};
  mobile_device flagship{2, device_class::flagship};
  // 280 wu (the static minimax) on a wearable: 5.6 s; flagship: 0.4 s.
  EXPECT_NEAR(wearable.local_execution_ms(280.0), 5'600.0, 1.0);
  EXPECT_NEAR(flagship.local_execution_ms(280.0), 400.0, 1.0);
}

TEST(MobileDevice, OffloadDecisionFollowsEnergyInequality) {
  mobile_device device{1, device_class::midrange};
  const double work = 100.0;
  const double local_energy = device.local_energy(work);
  // A response fast enough to cost less radio energy than the local run.
  const double cheap_ms = local_energy / device.profile().radio_drain_per_ms * 0.5;
  const double pricey_ms = local_energy / device.profile().radio_drain_per_ms * 2.0;
  EXPECT_TRUE(device.should_offload(work, cheap_ms));
  EXPECT_FALSE(device.should_offload(work, pricey_ms));
}

TEST(MobileDevice, WeakDevicesOffloadMoreEagerly) {
  mobile_device wearable{1, device_class::wearable};
  mobile_device flagship{2, device_class::flagship};
  const double work = 50.0;
  const double response = 1'500.0;
  // The wearable's local energy is far higher, so offloading at this
  // response time pays off for it but not for the flagship.
  EXPECT_TRUE(wearable.should_offload(work, response));
  EXPECT_FALSE(flagship.should_offload(work, response));
}

TEST(MobileDevice, FasterRemotelyComparesLatency) {
  mobile_device wearable{1, device_class::wearable};
  // 280 wu locally = 5.6 s; a 2 s cloud response is faster.
  EXPECT_TRUE(wearable.faster_remotely(280.0, 2'000.0));
  EXPECT_FALSE(wearable.faster_remotely(280.0, 6'000.0));
}

TEST(MobileDevice, BatteryDrainsAndClampsAtZero) {
  mobile_device device{1, device_class::budget, 1.0};
  EXPECT_DOUBLE_EQ(device.battery(), 1.0);
  device.account_local_run(1'000.0);
  const double after_local = device.battery();
  EXPECT_LT(after_local, 1.0);
  device.account_offload(10'000.0);
  EXPECT_LT(device.battery(), after_local);
  // Massive drain clamps at zero instead of going negative.
  device.account_local_run(1e12);
  EXPECT_DOUBLE_EQ(device.battery(), 0.0);
}

TEST(MobileDevice, InitialBatteryClamped) {
  mobile_device over{1, device_class::budget, 1.7};
  mobile_device under{2, device_class::budget, -0.5};
  EXPECT_DOUBLE_EQ(over.battery(), 1.0);
  EXPECT_DOUBLE_EQ(under.battery(), 0.0);
}

TEST(MobileDevice, IdAndClassAccessors) {
  mobile_device device{42, device_class::flagship};
  EXPECT_EQ(device.id(), 42u);
  EXPECT_EQ(device.cls(), device_class::flagship);
}

}  // namespace
}  // namespace mca::client
