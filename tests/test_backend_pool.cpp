#include "cloud/backend_pool.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/simulation.h"

namespace mca::cloud {
namespace {

instance_type plain_type(const char* name = "test.plain", double vcpus = 1.0) {
  instance_type t;
  t.name = name;
  t.vcpus = vcpus;
  t.memory_gb = 64.0;
  t.cost_per_hour = 1.0;
  t.speed_factor = 1.0;
  t.jitter_sigma = 0.0;
  return t;
}

class BackendPoolTest : public ::testing::Test {
 protected:
  sim::simulation sim_;
  backend_pool pool_{sim_, util::rng{42}};
};

TEST_F(BackendPoolTest, LaunchAssignsUniqueIds) {
  const auto a = pool_.launch(1, plain_type());
  const auto b = pool_.launch(1, plain_type());
  EXPECT_NE(a, b);
  EXPECT_EQ(pool_.instance_count(1), 2u);
}

TEST_F(BackendPoolTest, RouteToEmptyGroupFails) {
  EXPECT_EQ(pool_.route(3, 1.0, {}), route_status::no_instances);
}

TEST_F(BackendPoolTest, RoutePrefersLeastLoadedInstance) {
  pool_.launch(1, plain_type());
  pool_.launch(1, plain_type());
  // Four submissions should spread 2/2 across the two instances.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pool_.route(1, 100.0, {}), route_status::ok);
  }
  const auto members = pool_.instances_in(1);
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0]->active_jobs(), 2u);
  EXPECT_EQ(members[1]->active_jobs(), 2u);
}

TEST_F(BackendPoolTest, GroupsAreIsolated) {
  pool_.launch(1, plain_type());
  pool_.launch(2, plain_type());
  ASSERT_EQ(pool_.route(2, 5.0, {}), route_status::ok);
  EXPECT_EQ(pool_.instances_in(1)[0]->active_jobs(), 0u);
  EXPECT_EQ(pool_.instances_in(2)[0]->active_jobs(), 1u);
}

TEST_F(BackendPoolTest, RetireDrainsIdleImmediately) {
  pool_.launch(1, plain_type());
  pool_.launch(1, plain_type());
  EXPECT_EQ(pool_.retire(1, plain_type(), 1), 1u);
  EXPECT_EQ(pool_.instance_count(1), 1u);
  // The idle retired instance is reaped (billing record closed).
  EXPECT_EQ(pool_.billing().active_instances(), 1u);
}

TEST_F(BackendPoolTest, RetireBusyInstanceWaitsForDrain) {
  pool_.launch(1, plain_type());
  ASSERT_EQ(pool_.route(1, 100.0, {}), route_status::ok);
  EXPECT_EQ(pool_.retire(1, plain_type(), 1), 1u);
  // Still draining: counted out of accepting capacity but not reaped.
  EXPECT_EQ(pool_.instance_count(1), 0u);
  EXPECT_EQ(pool_.billing().active_instances(), 1u);
  sim_.run();
  pool_.sweep();
  EXPECT_EQ(pool_.billing().active_instances(), 0u);
}

TEST_F(BackendPoolTest, RetireMoreThanExistingMarksAll) {
  pool_.launch(1, plain_type());
  EXPECT_EQ(pool_.retire(1, plain_type(), 5), 1u);
  EXPECT_EQ(pool_.retire(2, plain_type(), 1), 0u);
}

TEST_F(BackendPoolTest, RetireMatchesTypeName) {
  pool_.launch(1, plain_type("a"));
  pool_.launch(1, plain_type("b"));
  EXPECT_EQ(pool_.retire(1, plain_type("a"), 2), 1u);
  EXPECT_EQ(pool_.instance_count(1, "b"), 1u);
  EXPECT_EQ(pool_.instance_count(1, "a"), 0u);
}

TEST_F(BackendPoolTest, RouteAfterAllDrainingFails) {
  pool_.launch(1, plain_type());
  ASSERT_EQ(pool_.route(1, 50.0, {}), route_status::ok);
  pool_.retire(1, plain_type(), 1);
  EXPECT_EQ(pool_.route(1, 1.0, {}), route_status::no_instances);
}

TEST_F(BackendPoolTest, DroppedWhenInstancesFull) {
  auto tiny = plain_type();
  tiny.memory_gb = 0.1;  // floor admission cap applies
  const auto cap = tiny.max_concurrent();
  pool_.launch(1, tiny);
  std::size_t ok = 0;
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < cap + 2; ++i) {
    const auto status = pool_.route(1, 10.0, {});
    if (status == route_status::ok) ++ok;
    if (status == route_status::dropped) ++dropped;
  }
  EXPECT_EQ(ok, cap);
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(pool_.total_dropped(), 2u);
}

TEST_F(BackendPoolTest, GroupsListsNonEmptyGroups) {
  pool_.launch(2, plain_type());
  pool_.launch(5, plain_type());
  const auto groups = pool_.groups();
  EXPECT_EQ(groups, (std::vector<group_id>{2, 5}));
}

TEST_F(BackendPoolTest, CompletionCountsAggregate) {
  pool_.launch(1, plain_type());
  int completions = 0;
  pool_.route(1, 1.0, [&](double, bool) { ++completions; });
  pool_.route(1, 1.0, [&](double, bool) { ++completions; });
  sim_.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(pool_.total_completed(), 2u);
}

TEST_F(BackendPoolTest, RetiredInstanceStatsSurvive) {
  pool_.launch(1, plain_type());
  pool_.route(1, 1.0, {});
  sim_.run();
  pool_.retire(1, plain_type(), 1);
  pool_.sweep();
  EXPECT_EQ(pool_.total_completed(), 1u);
}

TEST_F(BackendPoolTest, BillingAccruesWhileRunning) {
  pool_.launch(1, plain_type());
  sim_.run_until(util::hours(2.5));
  EXPECT_DOUBLE_EQ(pool_.billing().total_cost(sim_.now()), 3.0);
}

TEST_F(BackendPoolTest, MutableAccessSkipsDraining) {
  pool_.launch(1, plain_type());
  pool_.launch(1, plain_type());
  pool_.route(1, 100.0, {});
  pool_.route(1, 100.0, {});
  pool_.retire(1, plain_type(), 1);
  EXPECT_EQ(pool_.mutable_instances_in(1).size(), 1u);
}

TEST_F(BackendPoolTest, RetireWhileRoutingChurn) {
  // Interleave routing with partial drains over several simulated rounds:
  // drained instances must never accept another request, live ones must
  // absorb the full load, and every billing record must close exactly
  // once no matter how often the reaper runs.
  const auto type = plain_type();
  for (int i = 0; i < 4; ++i) pool_.launch(1, type);

  std::size_t completions = 0;
  std::size_t failures = 0;
  std::size_t routed = 0;
  std::size_t drained_total = 0;
  const auto terminal = [&](double, bool ok) {
    if (ok) {
      ++completions;
    } else {
      ++failures;
    }
  };
  for (int round = 0; round < 6; ++round) {
    // Load every accepting instance, then mark one busy member mid-work.
    for (int r = 0; r < 8; ++r) {
      if (pool_.route(1, 50.0, terminal) == route_status::ok) {
        ++routed;
      }
    }
    // Pointers stay inside the round: the reaper frees drained instances.
    std::vector<instance*> drained;
    if (round < 2) {
      auto accepting = pool_.mutable_instances_in(1);
      ASSERT_EQ(pool_.retire(1, type, 1), 1u);
      for (instance* server : accepting) {
        if (server->draining()) drained.push_back(server);
      }
      // Everyone was busy, so the drain marks a loaded server (no reap).
      ASSERT_EQ(drained.size(), 1u);
      ++drained_total;
    }
    // Mid-drain routing: new work lands only on accepting instances.
    std::vector<std::size_t> jobs_before;
    for (const instance* server : drained) {
      jobs_before.push_back(server->active_jobs());
    }
    for (int r = 0; r < 4; ++r) {
      if (pool_.route(1, 25.0, terminal) == route_status::ok) {
        ++routed;
      }
    }
    for (std::size_t d = 0; d < drained.size(); ++d) {
      EXPECT_LE(drained[d]->active_jobs(), jobs_before[d])
          << "drained instance accepted work in round " << round;
    }
    // The router's accepting view must exclude every drained instance.
    for (instance* server : pool_.mutable_instances_in(1)) {
      EXPECT_EQ(std::find(drained.begin(), drained.end(), server),
                drained.end())
          << "drained instance still visible to routing in round " << round;
    }
    // Direct submission to a draining instance must be refused outright.
    for (instance* server : drained) {
      EXPECT_FALSE(server->submit(1.0, {}));
    }
    // Let some work finish, reap repeatedly (idempotent: a double
    // on_terminate would throw logic_error out of sweep()).
    sim_.run_until(sim_.now() + util::minutes(2.0));
    ASSERT_NO_THROW(pool_.sweep());
    ASSERT_NO_THROW(pool_.sweep());
  }
  EXPECT_EQ(drained_total, 2u);
  EXPECT_EQ(pool_.instance_count(1), 2u);

  // Drain the simulation: all in-flight work completes, the two retired
  // instances are reaped, and exactly the two live records stay open.
  sim_.run();
  ASSERT_NO_THROW(pool_.sweep());
  ASSERT_NO_THROW(pool_.sweep());
  EXPECT_EQ(completions, routed);
  EXPECT_EQ(pool_.total_completed(), routed);
  EXPECT_EQ(pool_.billing().active_instances(), 2u);
  // The only refusals are this test's own direct probes of the draining
  // instances; the router itself never hit a drop.
  EXPECT_EQ(pool_.total_dropped(), drained_total);
  // Billing keeps charging the live instances only: cost equals two
  // still-open records plus the two closed ones, each >= one started
  // hour — and stays put when sweep() runs again on an already-reaped
  // pool.
  const double cost = pool_.billing().total_cost(sim_.now());
  EXPECT_GE(cost, 4.0);  // four records, minimum one hour each at $1/h
  pool_.sweep();
  EXPECT_DOUBLE_EQ(pool_.billing().total_cost(sim_.now()), cost);

  // Preemption phase: spot-kill both survivors while loaded.  Every job
  // in flight on a victim must be failure-notified exactly once — the
  // terminal-accounting invariant the resilient offload path builds on:
  // routed == completed + failure-notified, nothing silently lost.
  EXPECT_EQ(completions, routed);  // everything so far finished ok
  EXPECT_EQ(failures, 0u);
  std::size_t preempt_routed = 0;
  for (int r = 0; r < 6; ++r) {
    if (pool_.route(1, 40.0, terminal) == route_status::ok) {
      ++preempt_routed;
    }
  }
  ASSERT_EQ(preempt_routed, 6u);
  const auto strike = pool_.preempt_in(1, 5);
  EXPECT_TRUE(strike.applied);
  EXPECT_GT(strike.killed, 0u);
  EXPECT_EQ(pool_.instance_count(1), 1u);
  const auto second = pool_.preempt_in(1, 0);
  EXPECT_TRUE(second.applied);
  EXPECT_GT(second.killed, 0u);
  EXPECT_EQ(pool_.instance_count(1), 0u);
  // A preempted group with no survivors refuses routing and strikes.
  EXPECT_EQ(pool_.route(1, 1.0, {}), route_status::no_instances);
  EXPECT_FALSE(pool_.preempt_in(1, 0).applied);
  sim_.run();
  ASSERT_NO_THROW(pool_.sweep());
  EXPECT_EQ(strike.killed + second.killed, failures);
  EXPECT_EQ(completions + failures, routed + preempt_routed);
  EXPECT_EQ(pool_.total_completed(), completions);
  // Both victims' billing records closed on the kill.
  EXPECT_EQ(pool_.billing().active_instances(), 0u);
}

TEST(RouteStatus, Names) {
  EXPECT_STREQ(to_string(route_status::ok), "ok");
  EXPECT_STREQ(to_string(route_status::dropped), "dropped");
  EXPECT_STREQ(to_string(route_status::no_instances), "no_instances");
}

}  // namespace
}  // namespace mca::cloud
