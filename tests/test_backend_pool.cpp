#include "cloud/backend_pool.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace mca::cloud {
namespace {

instance_type plain_type(const char* name = "test.plain", double vcpus = 1.0) {
  instance_type t;
  t.name = name;
  t.vcpus = vcpus;
  t.memory_gb = 64.0;
  t.cost_per_hour = 1.0;
  t.speed_factor = 1.0;
  t.jitter_sigma = 0.0;
  return t;
}

class BackendPoolTest : public ::testing::Test {
 protected:
  sim::simulation sim_;
  backend_pool pool_{sim_, util::rng{42}};
};

TEST_F(BackendPoolTest, LaunchAssignsUniqueIds) {
  const auto a = pool_.launch(1, plain_type());
  const auto b = pool_.launch(1, plain_type());
  EXPECT_NE(a, b);
  EXPECT_EQ(pool_.instance_count(1), 2u);
}

TEST_F(BackendPoolTest, RouteToEmptyGroupFails) {
  EXPECT_EQ(pool_.route(3, 1.0, {}), route_status::no_instances);
}

TEST_F(BackendPoolTest, RoutePrefersLeastLoadedInstance) {
  pool_.launch(1, plain_type());
  pool_.launch(1, plain_type());
  // Four submissions should spread 2/2 across the two instances.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pool_.route(1, 100.0, {}), route_status::ok);
  }
  const auto members = pool_.instances_in(1);
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0]->active_jobs(), 2u);
  EXPECT_EQ(members[1]->active_jobs(), 2u);
}

TEST_F(BackendPoolTest, GroupsAreIsolated) {
  pool_.launch(1, plain_type());
  pool_.launch(2, plain_type());
  ASSERT_EQ(pool_.route(2, 5.0, {}), route_status::ok);
  EXPECT_EQ(pool_.instances_in(1)[0]->active_jobs(), 0u);
  EXPECT_EQ(pool_.instances_in(2)[0]->active_jobs(), 1u);
}

TEST_F(BackendPoolTest, RetireDrainsIdleImmediately) {
  pool_.launch(1, plain_type());
  pool_.launch(1, plain_type());
  EXPECT_EQ(pool_.retire(1, plain_type(), 1), 1u);
  EXPECT_EQ(pool_.instance_count(1), 1u);
  // The idle retired instance is reaped (billing record closed).
  EXPECT_EQ(pool_.billing().active_instances(), 1u);
}

TEST_F(BackendPoolTest, RetireBusyInstanceWaitsForDrain) {
  pool_.launch(1, plain_type());
  ASSERT_EQ(pool_.route(1, 100.0, {}), route_status::ok);
  EXPECT_EQ(pool_.retire(1, plain_type(), 1), 1u);
  // Still draining: counted out of accepting capacity but not reaped.
  EXPECT_EQ(pool_.instance_count(1), 0u);
  EXPECT_EQ(pool_.billing().active_instances(), 1u);
  sim_.run();
  pool_.sweep();
  EXPECT_EQ(pool_.billing().active_instances(), 0u);
}

TEST_F(BackendPoolTest, RetireMoreThanExistingMarksAll) {
  pool_.launch(1, plain_type());
  EXPECT_EQ(pool_.retire(1, plain_type(), 5), 1u);
  EXPECT_EQ(pool_.retire(2, plain_type(), 1), 0u);
}

TEST_F(BackendPoolTest, RetireMatchesTypeName) {
  pool_.launch(1, plain_type("a"));
  pool_.launch(1, plain_type("b"));
  EXPECT_EQ(pool_.retire(1, plain_type("a"), 2), 1u);
  EXPECT_EQ(pool_.instance_count(1, "b"), 1u);
  EXPECT_EQ(pool_.instance_count(1, "a"), 0u);
}

TEST_F(BackendPoolTest, RouteAfterAllDrainingFails) {
  pool_.launch(1, plain_type());
  ASSERT_EQ(pool_.route(1, 50.0, {}), route_status::ok);
  pool_.retire(1, plain_type(), 1);
  EXPECT_EQ(pool_.route(1, 1.0, {}), route_status::no_instances);
}

TEST_F(BackendPoolTest, DroppedWhenInstancesFull) {
  auto tiny = plain_type();
  tiny.memory_gb = 0.1;  // floor admission cap applies
  const auto cap = tiny.max_concurrent();
  pool_.launch(1, tiny);
  std::size_t ok = 0;
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < cap + 2; ++i) {
    const auto status = pool_.route(1, 10.0, {});
    if (status == route_status::ok) ++ok;
    if (status == route_status::dropped) ++dropped;
  }
  EXPECT_EQ(ok, cap);
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(pool_.total_dropped(), 2u);
}

TEST_F(BackendPoolTest, GroupsListsNonEmptyGroups) {
  pool_.launch(2, plain_type());
  pool_.launch(5, plain_type());
  const auto groups = pool_.groups();
  EXPECT_EQ(groups, (std::vector<group_id>{2, 5}));
}

TEST_F(BackendPoolTest, CompletionCountsAggregate) {
  pool_.launch(1, plain_type());
  int completions = 0;
  pool_.route(1, 1.0, [&](double) { ++completions; });
  pool_.route(1, 1.0, [&](double) { ++completions; });
  sim_.run();
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(pool_.total_completed(), 2u);
}

TEST_F(BackendPoolTest, RetiredInstanceStatsSurvive) {
  pool_.launch(1, plain_type());
  pool_.route(1, 1.0, {});
  sim_.run();
  pool_.retire(1, plain_type(), 1);
  pool_.sweep();
  EXPECT_EQ(pool_.total_completed(), 1u);
}

TEST_F(BackendPoolTest, BillingAccruesWhileRunning) {
  pool_.launch(1, plain_type());
  sim_.run_until(util::hours(2.5));
  EXPECT_DOUBLE_EQ(pool_.billing().total_cost(sim_.now()), 3.0);
}

TEST_F(BackendPoolTest, MutableAccessSkipsDraining) {
  pool_.launch(1, plain_type());
  pool_.launch(1, plain_type());
  pool_.route(1, 100.0, {});
  pool_.route(1, 100.0, {});
  pool_.retire(1, plain_type(), 1);
  EXPECT_EQ(pool_.mutable_instances_in(1).size(), 1u);
}

TEST(RouteStatus, Names) {
  EXPECT_STREQ(to_string(route_status::ok), "ok");
  EXPECT_STREQ(to_string(route_status::dropped), "dropped");
  EXPECT_STREQ(to_string(route_status::no_instances), "no_instances");
}

}  // namespace
}  // namespace mca::cloud
