#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace mca::sim {
namespace {

TEST(Simulation, StartsAtZero) {
  simulation sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, EventsRunInTimeOrder) {
  simulation sim;
  std::vector<int> order;
  sim.schedule_at(30.0, [&] { order.push_back(3); });
  sim.schedule_at(10.0, [&] { order.push_back(1); });
  sim.schedule_at(20.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30.0);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulation, SameTimeIsFifo) {
  simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(10.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  simulation sim;
  double fired_at = -1.0;
  sim.schedule_at(100.0, [&] {
    sim.schedule_after(50.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150.0);
}

TEST(Simulation, NegativeDelayThrows) {
  simulation sim;
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulation, EmptyCallbackThrows) {
  simulation sim;
  EXPECT_THROW(sim.schedule_at(1.0, {}), std::invalid_argument);
}

TEST(Simulation, PastEventFiresAtCurrentTime) {
  simulation sim;
  sim.schedule_at(100.0, [] {});
  sim.run();
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] { fired_at = sim.now(); });  // in the past
  sim.run();
  EXPECT_EQ(fired_at, 100.0);  // clamped to now
}

TEST(Simulation, CancelPreventsExecution) {
  simulation sim;
  bool fired = false;
  const auto handle = sim.schedule_at(10.0, [&] { fired = true; });
  sim.cancel(handle);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulation, CancelUnknownHandleIsNoop) {
  simulation sim;
  sim.cancel(event_handle{12345});
  sim.cancel(event_handle{});  // invalid handle
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulation, PendingEventsExcludesCancelled) {
  simulation sim;
  const auto a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  simulation sim;
  int fired = 0;
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.schedule_at(20.0, [&] { ++fired; });
  sim.schedule_at(30.0, [&] { ++fired; });
  sim.run_until(25.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 25.0);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, RunUntilAdvancesClockWithoutEvents) {
  simulation sim;
  sim.run_until(500.0);
  EXPECT_EQ(sim.now(), 500.0);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, ClearDropsPendingEvents) {
  simulation sim;
  bool fired = false;
  sim.schedule_at(1.0, [&] { fired = true; });
  sim.clear();
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_after(10.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40.0);
}

TEST(PeriodicProcess, TicksAtFixedPeriod) {
  simulation sim;
  std::vector<double> tick_times;
  periodic_process p{sim, 10.0, 5.0, [&](std::uint64_t) {
                       tick_times.push_back(sim.now());
                       return tick_times.size() < 4;
                     }};
  sim.run();
  EXPECT_EQ(tick_times, (std::vector<double>{10.0, 15.0, 20.0, 25.0}));
  EXPECT_EQ(p.ticks(), 4u);
}

TEST(PeriodicProcess, TickIndexIncrements) {
  simulation sim;
  std::vector<std::uint64_t> indices;
  periodic_process p{sim, 0.0, 1.0, [&](std::uint64_t tick) {
                       indices.push_back(tick);
                       return tick < 2;
                     }};
  sim.run();
  EXPECT_EQ(indices, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(PeriodicProcess, StopCancelsFutureTicks) {
  simulation sim;
  int ticks = 0;
  periodic_process p{sim, 0.0, 10.0, [&](std::uint64_t) {
                       ++ticks;
                       return true;
                     }};
  sim.run_until(35.0);
  p.stop();
  sim.run();
  EXPECT_EQ(ticks, 4);  // t = 0, 10, 20, 30
}

TEST(PeriodicProcess, ValidatesArguments) {
  simulation sim;
  EXPECT_THROW(periodic_process(sim, 0.0, 0.0, [](std::uint64_t) {
                 return false;
               }),
               std::invalid_argument);
  EXPECT_THROW(periodic_process(sim, 0.0, 1.0, {}), std::invalid_argument);
}

TEST(PeriodicProcess, DestructorStopsTicking) {
  simulation sim;
  int ticks = 0;
  {
    periodic_process p{sim, 0.0, 1.0, [&](std::uint64_t) {
                         ++ticks;
                         return true;
                       }};
    sim.run_until(2.5);
  }
  sim.run_until(100.0);
  EXPECT_EQ(ticks, 3);
}

}  // namespace
}  // namespace mca::sim
