#include "util/histogram.h"

#include <gtest/gtest.h>

namespace mca::util {
namespace {

TEST(Histogram, BinsSamplesCorrectly) {
  histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(9.9);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(1), 2u);
  EXPECT_EQ(h.count_in_bin(9), 1u);
}

TEST(Histogram, OutOfRangeSaturatesEdges) {
  histogram h{0.0, 10.0, 5};
  h.add(-3.0);
  h.add(42.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(4), 1u);
}

TEST(Histogram, BinLowerEdges) {
  histogram h{10.0, 20.0, 5};
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(4), 18.0);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_THROW(h.bin_lower(5), std::out_of_range);
}

TEST(Histogram, MergeCombinesCounts) {
  histogram a{0.0, 10.0, 10};
  histogram b{0.0, 10.0, 10};
  a.add(0.5);
  a.add(4.5);
  b.add(4.7);
  b.add(9.5);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count_in_bin(0), 1u);
  EXPECT_EQ(a.count_in_bin(4), 2u);
  EXPECT_EQ(a.count_in_bin(9), 1u);
  // b is untouched.
  EXPECT_EQ(b.total(), 2u);
}

TEST(Histogram, MergeRejectsMismatchedLayouts) {
  histogram a{0.0, 10.0, 10};
  histogram bins{0.0, 10.0, 5};
  histogram range{0.0, 20.0, 10};
  EXPECT_THROW(a.merge(bins), std::invalid_argument);
  EXPECT_THROW(a.merge(range), std::invalid_argument);
}

TEST(Histogram, QuantileApproximation) {
  histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 1.5);
}

TEST(Histogram, QuantileErrors) {
  histogram h{0.0, 1.0, 2};
  EXPECT_THROW(h.quantile(0.5), std::logic_error);
  h.add(0.5);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.5), std::invalid_argument);
}

TEST(Histogram, ConstructorValidation) {
  EXPECT_THROW(histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(LogHistogram, PowerOfTwoBuckets) {
  log_histogram h;
  h.add(0.5);   // bucket 0: [0,1)
  h.add(1.0);   // bucket 1: [1,2)
  h.add(3.0);   // bucket 2: [2,4)
  h.add(1000);  // bucket 10: [512,1024)
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_in_bucket(0), 1u);
  EXPECT_EQ(h.count_in_bucket(1), 1u);
  EXPECT_EQ(h.count_in_bucket(2), 1u);
  EXPECT_EQ(h.count_in_bucket(10), 1u);
}

TEST(LogHistogram, BucketLowerBounds) {
  log_histogram h;
  EXPECT_DOUBLE_EQ(h.bucket_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower(4), 8.0);
}

TEST(LogHistogram, SaturatesAtLastBucket) {
  log_histogram h{4};
  h.add(1e12);
  EXPECT_EQ(h.count_in_bucket(3), 1u);
}

TEST(LogHistogram, ToStringListsNonEmpty) {
  log_histogram h;
  h.add(3.0);
  const auto text = h.to_string();
  EXPECT_NE(text.find("[2,4): 1"), std::string::npos);
}

}  // namespace
}  // namespace mca::util
