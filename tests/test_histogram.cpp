#include "util/histogram.h"

#include <gtest/gtest.h>

namespace mca::util {
namespace {

TEST(Histogram, BinsSamplesCorrectly) {
  histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(9.9);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(1), 2u);
  EXPECT_EQ(h.count_in_bin(9), 1u);
}

TEST(Histogram, OutOfRangeSaturatesEdges) {
  histogram h{0.0, 10.0, 5};
  h.add(-3.0);
  h.add(42.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(4), 1u);
}

TEST(Histogram, BinLowerEdges) {
  histogram h{10.0, 20.0, 5};
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(4), 18.0);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_THROW(h.bin_lower(5), std::out_of_range);
}

TEST(Histogram, MergeCombinesCounts) {
  histogram a{0.0, 10.0, 10};
  histogram b{0.0, 10.0, 10};
  a.add(0.5);
  a.add(4.5);
  b.add(4.7);
  b.add(9.5);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count_in_bin(0), 1u);
  EXPECT_EQ(a.count_in_bin(4), 2u);
  EXPECT_EQ(a.count_in_bin(9), 1u);
  // b is untouched.
  EXPECT_EQ(b.total(), 2u);
}

TEST(Histogram, MergeRejectsMismatchedLayouts) {
  histogram a{0.0, 10.0, 10};
  histogram bins{0.0, 10.0, 5};
  histogram range{0.0, 20.0, 10};
  EXPECT_THROW(a.merge(bins), std::invalid_argument);
  EXPECT_THROW(a.merge(range), std::invalid_argument);
}

TEST(Histogram, QuantileApproximation) {
  histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 1.5);
}

TEST(Histogram, QuantileErrors) {
  histogram h{0.0, 1.0, 2};
  EXPECT_THROW(h.quantile(0.5), std::logic_error);
  h.add(0.5);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.5), std::invalid_argument);
}

TEST(Histogram, InterpolatedQuantileExactWithOneSamplePerBin) {
  // One sample per bin at the bin's (j+0.5)/c position == the sample's
  // actual value: the interpolated quantile must reproduce numpy's
  // "linear" method on the underlying values exactly.
  histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  // numpy.percentile([0.5..99.5], 50, method="linear") = 50.0
  EXPECT_NEAR(h.quantile_interpolated(0.5), 50.0, 1e-9);
  // rank 0.95*(100-1) = 94.05 -> between samples 94 (94.5) and 95 (95.5).
  EXPECT_NEAR(h.quantile_interpolated(0.95), 94.55, 1e-9);
  // rank 0.999*99 = 98.901 -> 98.5 + 0.901 * (99.5 - 98.5).
  EXPECT_NEAR(h.quantile_interpolated(0.999), 99.401, 1e-9);
}

TEST(Histogram, InterpolatedQuantileBounds) {
  histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  // q=0 is the smallest sample, q=1 the largest (no extrapolation past
  // the data).
  EXPECT_NEAR(h.quantile_interpolated(0.0), 0.5, 1e-9);
  EXPECT_NEAR(h.quantile_interpolated(1.0), 9.5, 1e-9);
}

TEST(Histogram, InterpolatedQuantileWithinBinSpacing) {
  // Four samples in one bin sit at 1/8, 3/8, 5/8, 7/8 of the bin width.
  histogram h{0.0, 8.0, 1};
  for (int i = 0; i < 4; ++i) h.add(1.0);
  EXPECT_NEAR(h.quantile_interpolated(0.0), 1.0, 1e-9);
  EXPECT_NEAR(h.quantile_interpolated(1.0), 7.0, 1e-9);
  // rank 0.5*3 = 1.5 -> midway between samples 1 (3.0) and 2 (5.0).
  EXPECT_NEAR(h.quantile_interpolated(0.5), 4.0, 1e-9);
}

TEST(Histogram, InterpolatedQuantileMonotonic) {
  histogram h{0.0, 60.0, 240};
  for (int i = 0; i < 1000; ++i) h.add((i * 37) % 60 + 0.25);
  double prev = h.quantile_interpolated(0.0);
  for (int step = 1; step <= 20; ++step) {
    const double q = static_cast<double>(step) / 20.0;
    const double v = h.quantile_interpolated(q);
    EXPECT_GE(v, prev - 1e-12) << "q=" << q;
    prev = v;
  }
}

TEST(Histogram, InterpolatedQuantileSingleSample) {
  histogram h{0.0, 10.0, 10};
  h.add(3.0);
  // The lone sample sits at the middle of its bin.
  EXPECT_NEAR(h.quantile_interpolated(0.0), 3.5, 1e-9);
  EXPECT_NEAR(h.quantile_interpolated(0.5), 3.5, 1e-9);
  EXPECT_NEAR(h.quantile_interpolated(1.0), 3.5, 1e-9);
}

TEST(Histogram, InterpolatedQuantileErrors) {
  histogram h{0.0, 1.0, 2};
  EXPECT_THROW(h.quantile_interpolated(0.5), std::logic_error);
  h.add(0.5);
  EXPECT_THROW(h.quantile_interpolated(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile_interpolated(1.5), std::invalid_argument);
}

TEST(Histogram, ConstructorValidation) {
  EXPECT_THROW(histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(LogHistogram, PowerOfTwoBuckets) {
  log_histogram h;
  h.add(0.5);   // bucket 0: [0,1)
  h.add(1.0);   // bucket 1: [1,2)
  h.add(3.0);   // bucket 2: [2,4)
  h.add(1000);  // bucket 10: [512,1024)
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_in_bucket(0), 1u);
  EXPECT_EQ(h.count_in_bucket(1), 1u);
  EXPECT_EQ(h.count_in_bucket(2), 1u);
  EXPECT_EQ(h.count_in_bucket(10), 1u);
}

TEST(LogHistogram, BucketLowerBounds) {
  log_histogram h;
  EXPECT_DOUBLE_EQ(h.bucket_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower(4), 8.0);
}

TEST(LogHistogram, SaturatesAtLastBucket) {
  log_histogram h{4};
  h.add(1e12);
  EXPECT_EQ(h.count_in_bucket(3), 1u);
}

TEST(LogHistogram, MergeCombinesBuckets) {
  log_histogram a;
  log_histogram b;
  a.add(0.5);
  a.add(3.0);
  b.add(3.5);
  b.add(1000.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.count_in_bucket(0), 1u);
  EXPECT_EQ(a.count_in_bucket(2), 2u);
  EXPECT_EQ(a.count_in_bucket(10), 1u);
  EXPECT_EQ(b.total(), 2u);  // b untouched
}

TEST(LogHistogram, MergeRejectsMismatchedBucketCounts) {
  log_histogram a{8};
  log_histogram b{16};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LogHistogram, ToStringListsNonEmpty) {
  log_histogram h;
  h.add(3.0);
  const auto text = h.to_string();
  EXPECT_NE(text.find("[2,4): 1"), std::string::npos);
}

}  // namespace
}  // namespace mca::util
