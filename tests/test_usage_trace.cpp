#include "client/usage_trace.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mca::client {
namespace {

usage_study_config small_study() {
  usage_study_config config;
  config.participants = 2;
  config.days = 7.0;
  return config;
}

TEST(DiurnalActivity, QuietAtNightActiveInEvening) {
  EXPECT_EQ(diurnal_activity(2.0), 0.0);
  EXPECT_EQ(diurnal_activity(5.0), 0.0);
  EXPECT_GT(diurnal_activity(20.5), 0.8);
  EXPECT_GT(diurnal_activity(12.0), 0.2);
  EXPECT_GT(diurnal_activity(20.5), diurnal_activity(8.0));
}

TEST(DiurnalActivity, BoundedByOne) {
  for (double h = 0.0; h < 24.0; h += 0.25) {
    EXPECT_GE(diurnal_activity(h), 0.0);
    EXPECT_LE(diurnal_activity(h), 1.0);
  }
}

TEST(UsageTrace, EventsAreSortedAndInStudyWindow) {
  util::rng rng{5};
  const auto config = small_study();
  const auto events = synthesize_participant_events(config, rng);
  ASSERT_GT(events.size(), 50u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i], events[i - 1]);
  }
  EXPECT_GE(events.front(), 0.0);
  EXPECT_LE(events.back(), util::hours(24.0 * config.days) + util::hours(1));
}

TEST(UsageTrace, NightsAreQuiet) {
  util::rng rng{6};
  const auto events = synthesize_participant_events(small_study(), rng);
  std::size_t night_events = 0;
  for (const auto t : events) {
    const double hour = std::fmod(util::to_hours(t), 24.0);
    if (hour < 6.5) ++night_events;
  }
  // Sessions start only in active hours; a tail of a late session may leak
  // past midnight but nights must stay essentially empty.
  EXPECT_LT(static_cast<double>(night_events),
            0.02 * static_cast<double>(events.size()));
}

TEST(UsageTrace, InterarrivalsClippedToPaperBand) {
  util::rng rng{7};
  const auto config = small_study();
  const auto gaps = study_interarrivals(config, rng);
  ASSERT_GT(gaps.size(), 100u);
  for (const double g : gaps) {
    EXPECT_GE(g, config.min_interarrival);
    EXPECT_LE(g, config.max_interarrival);
  }
}

TEST(UsageTrace, DistributionMeanIsSubSecondScale) {
  const auto dist = study_interarrival_distribution(small_study(), 42);
  const auto stats = dist.stats();
  // Within-session gaps centre around the lognormal's ~900 ms body.
  EXPECT_GT(stats.mean, 400.0);
  EXPECT_LT(stats.mean, 2'500.0);
  EXPECT_GE(stats.min, 100.0);
  EXPECT_LE(stats.max, 5'000.0);
}

TEST(UsageTrace, DeterministicForSeed) {
  const auto a = study_interarrival_distribution(small_study(), 9);
  const auto b = study_interarrival_distribution(small_study(), 9);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a.min(), b.min());
  EXPECT_DOUBLE_EQ(a.max(), b.max());
}

TEST(UsageTrace, MoreParticipantsMoreData) {
  auto small = small_study();
  auto large = small_study();
  large.participants = 6;
  const auto few = study_interarrival_distribution(small, 3);
  const auto many = study_interarrival_distribution(large, 3);
  EXPECT_GT(many.size(), few.size());
}

}  // namespace
}  // namespace mca::client
