#include "fleet/fleet_runner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "fleet/coordinator.h"
#include "fleet/demand_digest.h"
#include "fleet/shard.h"
#include "tasks/task.h"

namespace mca::fleet {
namespace {

/// Small fleet scenario: quick even single-threaded, yet crossing several
/// slot boundaries so the coordinator actually provisions.
exp::scenario_spec tiny_fleet_scenario() {
  exp::scenario_spec spec;
  spec.name = "tiny_fleet";
  spec.base_seed = 4242;
  spec.user_count = 60;
  spec.duration = util::minutes(40.0);
  spec.slot_length = util::minutes(10.0);
  spec.gaps = exp::gap_model::exponential;
  spec.arrival_rate_hz = 0.05;
  spec.background_requests_per_burst = 2;
  spec.background_burst_period = util::seconds(10.0);
  spec.groups = {{1, "t2.nano", 1, 4.0}, {2, "t2.large", 1, 30.0}};
  spec.fleet_max_total_instances = 40;
  return spec;
}

demand_digest make_digest(std::size_t shard, std::vector<double> demand,
                          bool predicted = true) {
  demand_digest digest;
  digest.shard = shard;
  digest.has_prediction = predicted;
  digest.demand_per_group = std::move(demand);
  return digest;
}

TEST(ShardUserCount, SplitsRemainderAcrossLowShards) {
  EXPECT_EQ(shard_user_count(10, 0, 4), 3u);
  EXPECT_EQ(shard_user_count(10, 1, 4), 3u);
  EXPECT_EQ(shard_user_count(10, 2, 4), 2u);
  EXPECT_EQ(shard_user_count(10, 3, 4), 2u);
  std::size_t total = 0;
  for (std::size_t k = 0; k < 7; ++k) total += shard_user_count(100, k, 7);
  EXPECT_EQ(total, 100u);
}

TEST(DemandDigest, CombineSumsPredictingShardsOnly) {
  const demand_digest digests[3] = {
      make_digest(0, {4.0, 1.0}),
      make_digest(1, {0.0, 0.0}, /*predicted=*/false),
      make_digest(2, {2.0, 5.0}),
  };
  const fleet_demand fleet = combine(digests, 3);
  EXPECT_EQ(fleet.total_shards, 3u);
  EXPECT_EQ(fleet.predicting_shards, 2u);
  ASSERT_EQ(fleet.demand_per_group.size(), 3u);
  EXPECT_DOUBLE_EQ(fleet.demand_per_group[0], 6.0);
  EXPECT_DOUBLE_EQ(fleet.demand_per_group[1], 6.0);
  EXPECT_DOUBLE_EQ(fleet.demand_per_group[2], 0.0);
  EXPECT_DOUBLE_EQ(fleet.total(), 12.0);
}

TEST(DemandDigest, CombineRejectsOverWideDigests) {
  const demand_digest digests[1] = {make_digest(0, {1.0, 2.0, 3.0})};
  EXPECT_THROW(combine(digests, 2), std::invalid_argument);
}

TEST(SplitFleetPlan, ProportionalWithDeterministicRemainders) {
  core::allocation_plan fleet_plan;
  fleet_plan.feasible = true;
  fleet_plan.status = ilp::solve_status::optimal;
  fleet_plan.entries = {{1, "large", 7}};
  core::allocation_request shape;
  shape.workload_per_group = {0.0, 0.0};
  shape.candidates_per_group = {{}, {{"large", 30.0, 3.0}}};

  // Demands 4:2:1 over three predicting shards -> exact shares 4, 2, 1.
  const demand_digest digests[3] = {
      make_digest(0, {0.0, 4.0}),
      make_digest(1, {0.0, 2.0}),
      make_digest(2, {0.0, 1.0}),
  };
  const auto quotas = split_fleet_plan(fleet_plan, digests, shape);
  ASSERT_EQ(quotas.size(), 3u);
  ASSERT_TRUE(quotas[0] && quotas[1] && quotas[2]);
  EXPECT_EQ(quotas[0]->count_of(1, "large"), 4u);
  EXPECT_EQ(quotas[1]->count_of(1, "large"), 2u);
  EXPECT_EQ(quotas[2]->count_of(1, "large"), 1u);
  // Quota costs come from the shape's candidate prices.
  EXPECT_DOUBLE_EQ(quotas[0]->total_cost_per_hour, 12.0);

  std::size_t total = 0;
  for (const auto& quota : quotas) total += quota->total_instances();
  EXPECT_EQ(total, fleet_plan.total_instances());
}

TEST(SplitFleetPlan, NonPredictingShardKeepsItsFleet) {
  core::allocation_plan fleet_plan;
  fleet_plan.entries = {{1, "large", 4}};
  core::allocation_request shape;
  shape.workload_per_group = {0.0, 0.0};
  shape.candidates_per_group = {{}, {{"large", 30.0, 3.0}}};
  const demand_digest digests[2] = {
      make_digest(0, {0.0, 9.0}),
      make_digest(1, {}, /*predicted=*/false),
  };
  const auto quotas = split_fleet_plan(fleet_plan, digests, shape);
  ASSERT_TRUE(quotas[0].has_value());
  EXPECT_FALSE(quotas[1].has_value());
  EXPECT_EQ(quotas[0]->count_of(1, "large"), 4u);
}

TEST(SplitFleetPlan, ZeroDemandGroupSplitsEquallyWithLowIndexTies) {
  // The margin instance of an idle group: demand 0 everywhere, count 3
  // over two predicting shards -> 2 for shard 0, 1 for shard 1.
  core::allocation_plan fleet_plan;
  fleet_plan.entries = {{0, "small", 3}};
  core::allocation_request shape;
  shape.workload_per_group = {0.0};
  shape.candidates_per_group = {{{"small", 10.0, 1.0}}};
  const demand_digest digests[2] = {
      make_digest(0, {0.0}),
      make_digest(1, {0.0}),
  };
  const auto quotas = split_fleet_plan(fleet_plan, digests, shape);
  EXPECT_EQ(quotas[0]->count_of(0, "small"), 2u);
  EXPECT_EQ(quotas[1]->count_of(0, "small"), 1u);
}

TEST(SplitFleetPlan, MinFootprintCoversDemandingShards) {
  // A consolidated fleet plan (one instance for the whole group) starves
  // every shard the apportionment skips; the resilience floor tops each
  // demanding shard up with one instance of the group's cheapest type.
  core::allocation_plan fleet_plan;
  fleet_plan.entries = {{1, "large", 1}};
  core::allocation_request shape;
  shape.workload_per_group = {0.0, 0.0};
  shape.candidates_per_group = {{}, {{"large", 30.0, 3.0}, {"small", 9.0, 1.0}}};
  const demand_digest digests[3] = {
      make_digest(0, {0.0, 4.0}),
      make_digest(1, {0.0, 3.0}),
      make_digest(2, {0.0, 0.0}),
  };

  // Baseline split: the single instance lands on the highest-demand shard
  // and the others get nothing at all.
  const auto bare = split_fleet_plan(fleet_plan, digests, shape);
  EXPECT_EQ(bare[0]->count_of(1, "large"), 1u);
  EXPECT_EQ(bare[1]->total_instances(), 0u);

  const auto quotas =
      split_fleet_plan(fleet_plan, digests, shape, /*min_footprint=*/true);
  EXPECT_EQ(quotas[0]->count_of(1, "large"), 1u);
  EXPECT_EQ(quotas[0]->count_of(1, "small"), 0u);  // already covered
  EXPECT_EQ(quotas[1]->count_of(1, "small"), 1u);  // cheapest type top-up
  EXPECT_DOUBLE_EQ(quotas[1]->total_cost_per_hour, 1.0);
  EXPECT_EQ(quotas[2]->total_instances(), 0u);  // no demand, no floor
}

TEST(Coordinator, NoPredictionsMeansNoQuotas) {
  coordinator coord{fleet_allocation_shape(tiny_fleet_scenario())};
  const demand_digest digests[2] = {
      make_digest(0, {}, /*predicted=*/false),
      make_digest(1, {}, /*predicted=*/false),
  };
  const auto quotas = coord.allocate_slot(digests);
  EXPECT_FALSE(quotas[0] || quotas[1]);
  ASSERT_EQ(coord.records().size(), 1u);
  EXPECT_FALSE(coord.records()[0].solved);
  EXPECT_EQ(coord.ilp_solves(), 0u);
}

TEST(Coordinator, SolvesFleetDemandAndSplitsCounts) {
  coordinator coord{fleet_allocation_shape(tiny_fleet_scenario())};
  const demand_digest digests[2] = {
      make_digest(0, {0.0, 6.0, 50.0}),
      make_digest(1, {0.0, 2.0, 70.0}),
  };
  const auto quotas = coord.allocate_slot(digests);
  ASSERT_TRUE(quotas[0] && quotas[1]);
  ASSERT_EQ(coord.records().size(), 1u);
  const auto& record = coord.records()[0];
  EXPECT_TRUE(record.solved);
  EXPECT_DOUBLE_EQ(record.fleet_demand, 128.0);
  EXPECT_EQ(quotas[0]->total_instances() + quotas[1]->total_instances(),
            record.fleet_instances);
  EXPECT_EQ(coord.ilp_solves(), 1u);
}

TEST(Coordinator, ReservesNonPredictingShardsInstancesFromCap) {
  // Account cap 40; a warming-up shard still holds 30 instances, so the
  // predicting shard's allocation may use at most 10 — and when the
  // reservation swallows the whole cap, no allocation runs at all.
  auto spec = tiny_fleet_scenario();
  coordinator coord{fleet_allocation_shape(spec)};

  demand_digest idle = make_digest(1, {}, /*predicted=*/false);
  idle.instances = 30;
  const demand_digest digests[2] = {
      make_digest(0, {0.0, 100.0, 200.0}),  // wants far more than 10
      idle,
  };
  const auto quotas = coord.allocate_slot(digests);
  ASSERT_TRUE(quotas[0].has_value());
  EXPECT_FALSE(quotas[1].has_value());
  EXPECT_EQ(coord.records()[0].reserved_instances, 30u);
  EXPECT_LE(quotas[0]->total_instances(), 10u);

  idle.instances = 40;  // reservation swallows the cap entirely
  const demand_digest full[2] = {make_digest(0, {0.0, 5.0, 5.0}), idle};
  const auto none = coord.allocate_slot(full);
  EXPECT_FALSE(none[0].has_value());
  EXPECT_FALSE(coord.records()[1].solved);
}

TEST(ShardExternalMode, BoundaryParksDemandUntilQuotaApplied) {
  tasks::task_pool tasks;
  const auto spec = tiny_fleet_scenario();
  shard member{spec, tasks, 0, 2};
  member.begin();

  // Slot 0: predictor has no history yet, so no demand is parked.
  demand_digest first = member.advance_to_slot(0);
  EXPECT_EQ(first.shard, 0u);
  EXPECT_FALSE(first.has_prediction);
  EXPECT_GT(first.requests, 0u);

  // By the second boundary the successor predictor can forecast.
  demand_digest second = member.advance_to_slot(1);
  ASSERT_TRUE(second.has_prediction);
  ASSERT_EQ(second.demand_per_group.size(), member.group_count());

  // Apply a quota and check the backend reshaped to it.
  core::allocation_plan quota;
  quota.feasible = true;
  quota.status = ilp::solve_status::optimal;
  quota.entries = {{1, "t2.nano", 3}, {2, "t2.large", 2}};
  member.apply_quota(quota);
  auto& backend = member.system().backend();
  EXPECT_EQ(backend.instance_count(1, "t2.nano"), 3u);
  EXPECT_EQ(backend.instance_count(2, "t2.large"), 2u);

  const exp::replication_metrics digest = member.finish();
  EXPECT_GT(digest.requests, 0u);
}

TEST(RunFleet, MergesAllUsersAndRecordsSlots) {
  tasks::task_pool tasks;
  exp::thread_pool pool{2};
  const auto spec = tiny_fleet_scenario();
  fleet_options options;
  options.shards = 3;
  const fleet_result result = run_fleet(spec, options, tasks, pool);

  EXPECT_EQ(result.shard_count, 3u);
  EXPECT_EQ(result.total_users, spec.user_count);
  EXPECT_EQ(result.per_shard.size(), 3u);
  EXPECT_EQ(result.slot_count, 4u);
  EXPECT_EQ(result.slots.size(), 4u);
  EXPECT_GT(result.aggregate.requests, 0u);
  EXPECT_EQ(result.aggregate.replications, 3u);
  // Slot 0 has no predictions; later slots solve with a warm tableau.
  EXPECT_FALSE(result.slots[0].solved);
  EXPECT_GT(result.ilp_solves, 0u);
  EXPECT_EQ(result.warm_solves + 1, result.ilp_solves);
  EXPECT_EQ(result.fleet_demands.size(), result.ilp_solves);
}

TEST(RunFleet, FingerprintIdenticalAcrossThreadCounts) {
  tasks::task_pool tasks;
  const auto spec = tiny_fleet_scenario();
  fleet_options options;
  options.shards = 4;

  fleet_result results[3];
  const std::size_t thread_counts[3] = {1, 4, 16};
  for (int i = 0; i < 3; ++i) {
    exp::thread_pool pool{thread_counts[i]};
    results[i] = run_fleet(spec, options, tasks, pool);
  }
  const auto reference = results[0].fingerprint();
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(results[i].fingerprint(), reference)
        << "thread count " << thread_counts[i];
    // Spot-check raw fields bit-for-bit, not just the hash.
    EXPECT_EQ(results[i].aggregate.response.mean(),
              results[0].aggregate.response.mean());
    EXPECT_EQ(results[i].aggregate.successes, results[0].aggregate.successes);
    ASSERT_EQ(results[i].per_shard.size(), results[0].per_shard.size());
    for (std::size_t k = 0; k < results[0].per_shard.size(); ++k) {
      EXPECT_EQ(results[i].per_shard[k].requests,
                results[0].per_shard[k].requests);
    }
  }
}

TEST(RunFleet, ShardingChangesPartitionNotValidity) {
  // Different shard counts are different experiments (per-shard predictors
  // and rng streams), but every sharding must carry the full population.
  tasks::task_pool tasks;
  exp::thread_pool pool{2};
  const auto spec = tiny_fleet_scenario();
  for (const std::size_t shards : {1, 2, 5}) {
    fleet_options options;
    options.shards = shards;
    const fleet_result result = run_fleet(spec, options, tasks, pool);
    EXPECT_EQ(result.shard_count, shards);
    std::size_t users = 0;
    for (std::size_t k = 0; k < shards; ++k) {
      users += shard_user_count(spec.user_count, k, shards);
    }
    EXPECT_EQ(users, spec.user_count);
    EXPECT_GT(result.aggregate.requests, 0u);
  }
}

TEST(RunFleet, RejectsDegenerateInputs) {
  tasks::task_pool tasks;
  exp::thread_pool pool{1};
  auto spec = tiny_fleet_scenario();
  fleet_options options;
  options.shards = spec.user_count + 1;  // more shards than users
  EXPECT_THROW(run_fleet(spec, options, tasks, pool), std::invalid_argument);

  options.shards = 2;
  spec.user_count = 0;
  EXPECT_THROW(run_fleet(spec, options, tasks, pool), std::invalid_argument);
}

}  // namespace
}  // namespace mca::fleet
