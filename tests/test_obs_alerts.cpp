// Deterministic SLO burn-rate alerting: multiwindow fire/clear semantics
// over synthetic timelines (golden slot indices under fixed inputs), the
// long-window guard against one-bad-slot pages, error-budget burn rates,
// alert spans for the trace lane, the plain-text health report, and a
// fixed-seed fleet golden — tight objectives fire at slot 0, loose ones
// never fire, and evaluation reproduces bit-identically.
#include "obs/alerts.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "exp/thread_pool.h"
#include "fleet/fleet_runner.h"
#include "obs/health.h"
#include "tasks/task.h"

namespace mca::obs {
namespace {

constexpr double kSlotMs = 1'000.0;

/// Closes one single-group window holding `good` 100 ms responses and
/// `bad` 6000 ms responses (plus matching request/failure counters).
void close_window(registry& reg, timeline& tl, std::uint64_t slot,
                  std::size_t good, std::size_t bad,
                  std::uint64_t failures = 0) {
  for (std::size_t i = 0; i < good; ++i) reg.observe_response(0, 100.0);
  for (std::size_t i = 0; i < bad; ++i) reg.observe_response(0, 6'000.0);
  reg.add(counter::sdn_requests, good + bad + failures);
  if (failures > 0) reg.add(counter::sdn_failures, failures);
  tl.snapshot(reg, slot, kSlotMs * static_cast<double>(slot + 1));
}

slo_objective latency_objective(double threshold_ms, std::size_t short_windows,
                                std::size_t long_windows) {
  slo_objective obj;
  obj.name = "p99_ceiling";
  obj.kind = alert_kind::latency_p99;
  obj.threshold = threshold_ms;
  obj.short_windows = short_windows;
  obj.long_windows = long_windows;
  return obj;
}

TEST(ObsAlerts, KindNamesAreStable) {
  EXPECT_STREQ(alert_kind_name(alert_kind::latency_p99), "latency_p99");
  EXPECT_STREQ(alert_kind_name(alert_kind::error_rate), "error_rate");
}

TEST(ObsAlerts, FiresAndClearsAtGoldenSlots) {
  registry reg{1};
  timeline tl{6, 1};
  close_window(reg, tl, 0, 50, 0);   // healthy
  close_window(reg, tl, 1, 0, 50);   // breach begins
  close_window(reg, tl, 2, 0, 50);   // sustained
  close_window(reg, tl, 3, 50, 0);   // recovered
  close_window(reg, tl, 4, 50, 0);
  close_window(reg, tl, 5, 50, 0);

  const std::vector<slo_objective> objectives{
      latency_objective(1'000.0, 1, 2)};
  const alert_report report = evaluate_alerts(tl, objectives);
  ASSERT_EQ(report.events.size(), 2u);
  EXPECT_EQ(report.fires, 1u);
  EXPECT_EQ(report.clears, 1u);
  // Golden edges: fire when slot 1 closes, clear when slot 3 closes.
  EXPECT_TRUE(report.events[0].fired);
  EXPECT_EQ(report.events[0].slot, 1u);
  EXPECT_DOUBLE_EQ(report.events[0].sim_ms, 2'000.0);
  EXPECT_GT(report.events[0].short_value, 1'000.0);
  EXPECT_FALSE(report.events[1].fired);
  EXPECT_EQ(report.events[1].slot, 3u);
  EXPECT_FALSE(report.active[0]);

  // Same timeline, same objectives → the same report, bit for bit.
  EXPECT_EQ(report.fingerprint(),
            evaluate_alerts(tl, objectives).fingerprint());
}

TEST(ObsAlerts, LongWindowGuardsAgainstOneBadSlot) {
  // One sparse bad slot after a dense healthy one: the short window
  // breaches but the long window's merged p99 stays low — no page.
  registry reg{1};
  timeline tl{3, 1};
  close_window(reg, tl, 0, 1'000, 0);
  close_window(reg, tl, 1, 0, 5);
  close_window(reg, tl, 2, 1'000, 0);

  const alert_report report =
      evaluate_alerts(tl, {latency_objective(1'000.0, 1, 2)});
  EXPECT_EQ(report.fires, 0u);
  EXPECT_TRUE(report.events.empty());

  // Shrinking the long window to 1 removes the guard.
  const alert_report paged =
      evaluate_alerts(tl, {latency_objective(1'000.0, 1, 1)});
  EXPECT_EQ(paged.fires, 1u);
  EXPECT_EQ(paged.events[0].slot, 1u);
}

TEST(ObsAlerts, ErrorRateBurnsAgainstScaledBudget) {
  registry reg{1};
  timeline tl{3, 1};
  close_window(reg, tl, 0, 80, 0, 20);  // 20% failures
  close_window(reg, tl, 1, 100, 0, 0);  // clean
  close_window(reg, tl, 2, 0, 0, 0);    // idle: burns no budget

  slo_objective obj;
  obj.name = "error_budget";
  obj.kind = alert_kind::error_rate;
  obj.threshold = 0.05;
  obj.burn_rate = 2.0;  // effective threshold 0.10
  obj.short_windows = 1;
  obj.long_windows = 1;
  const alert_report report = evaluate_alerts(tl, {obj});
  ASSERT_EQ(report.events.size(), 2u);
  EXPECT_TRUE(report.events[0].fired);
  EXPECT_EQ(report.events[0].slot, 0u);
  EXPECT_DOUBLE_EQ(report.events[0].short_value, 0.2);
  EXPECT_FALSE(report.events[1].fired);
  EXPECT_EQ(report.events[1].slot, 1u);
  // The idle window produced no further edges.
  EXPECT_FALSE(report.active[0]);
}

TEST(ObsAlerts, DefaultFleetObjectivesCoverFleetAndEveryGroup) {
  const std::vector<slo_objective> objectives =
      default_fleet_objectives(3, 2'500.0, 0.02);
  ASSERT_EQ(objectives.size(), 5u);
  EXPECT_EQ(objectives[0].name, "fleet_p99_latency");
  EXPECT_EQ(objectives[0].kind, alert_kind::latency_p99);
  EXPECT_EQ(objectives[0].group, kAllGroups);
  EXPECT_EQ(objectives[1].name, "fleet_error_budget");
  EXPECT_EQ(objectives[1].kind, alert_kind::error_rate);
  EXPECT_DOUBLE_EQ(objectives[1].threshold, 0.02);
  EXPECT_EQ(objectives[2].name, "group0_p99_latency");
  EXPECT_EQ(objectives[2].group, 0u);
  EXPECT_EQ(objectives[4].group, 2u);
}

TEST(ObsAlerts, SpansCoverFireToClearAndActiveToHorizon) {
  registry reg{1};
  timeline tl{4, 1};
  close_window(reg, tl, 0, 50, 0);
  close_window(reg, tl, 1, 0, 50);  // fire (short=long=1)
  close_window(reg, tl, 2, 50, 0);  // clear
  close_window(reg, tl, 3, 0, 50);  // fire again, still active at end

  const alert_report report =
      evaluate_alerts(tl, {latency_objective(1'000.0, 1, 1)});
  ASSERT_EQ(report.fires, 2u);
  ASSERT_EQ(report.clears, 1u);
  const std::vector<span_record> spans = alert_spans(report, tl);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, span_kind::slo_alert);
  EXPECT_DOUBLE_EQ(spans[0].sim_start_ms, 2'000.0);  // slot 1 close
  EXPECT_DOUBLE_EQ(spans[0].sim_dur_ms, 1'000.0);    // to slot 2 close
  EXPECT_EQ(spans[0].arg_b, 1u);
  // The still-active alert extends to the timeline horizon.
  EXPECT_DOUBLE_EQ(spans[1].sim_start_ms, 4'000.0);
  EXPECT_DOUBLE_EQ(spans[1].sim_dur_ms, 0.0);
  EXPECT_EQ(spans[1].arg_b, 3u);
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

TEST(ObsAlerts, HealthReportListsWindowsEventsAndObjectives) {
  registry reg{1};
  timeline tl{3, 1};
  close_window(reg, tl, 0, 50, 0);
  close_window(reg, tl, 1, 0, 50);
  close_window(reg, tl, 2, 50, 0);
  const alert_report report =
      evaluate_alerts(tl, {latency_objective(1'000.0, 1, 1)});

  exemplar_record slowest;
  slowest.response_ms = 6'000.0;
  slowest.request = 123;
  slowest.slot = 1;

  const std::string path = "obs_alerts_health.txt";
  ASSERT_TRUE(write_health_report(path, tl, report, {slowest}));
  const std::string text = slurp(path);
  std::remove(path.c_str());
  EXPECT_NE(text.find("fleet health report"), std::string::npos);
  EXPECT_NE(text.find("timeline: 3 windows"), std::string::npos);
  EXPECT_NE(text.find("FIRE"), std::string::npos);
  EXPECT_NE(text.find("CLEAR"), std::string::npos);
  EXPECT_NE(text.find("p99_ceiling"), std::string::npos);
  EXPECT_NE(text.find("slowest overall: request 123"), std::string::npos);
}

// ---------------------------------------------------------------------------
// fleet integration: fixed-seed golden

/// Small fleet scenario crossing several slot boundaries (mirrors
/// test_obs's obs_fleet_scenario).
exp::scenario_spec alerts_fleet_scenario() {
  exp::scenario_spec spec;
  spec.name = "obs_alerts_fleet";
  spec.base_seed = 90210;
  spec.user_count = 48;
  spec.duration = util::minutes(30.0);
  spec.slot_length = util::minutes(10.0);
  spec.gaps = exp::gap_model::exponential;
  spec.arrival_rate_hz = 0.05;
  spec.background_requests_per_burst = 0;
  spec.groups = {{1, "t2.nano", 1, 4.0}, {2, "t2.large", 1, 30.0}};
  spec.fleet_max_total_instances = 40;
  spec.fleet_shards = 4;
  return spec;
}

TEST(ObsAlertsFleet, TightObjectivesFireAtSlotZeroLooseNeverFire) {
  const exp::scenario_spec spec = alerts_fleet_scenario();
  const tasks::task_pool task_pool;
  exp::thread_pool pool{2};
  fleet::fleet_options options;
  const fleet::fleet_result result =
      fleet::run_fleet(spec, options, task_pool, pool);
  ASSERT_TRUE(result.timeline.enabled());

  // A 1 ms fleet p99 ceiling is below any real response: it must fire
  // the moment the first window closes and never clear.
  std::vector<slo_objective> tight{latency_objective(1.0, 1, 1)};
  const alert_report fired = evaluate_alerts(result.timeline, tight);
  ASSERT_GE(fired.events.size(), 1u);
  EXPECT_TRUE(fired.events[0].fired);
  EXPECT_EQ(fired.events[0].slot, 0u);
  EXPECT_EQ(fired.clears, 0u);
  EXPECT_TRUE(fired.active[0]);

  // An unreachable ceiling never fires.
  std::vector<slo_objective> loose{latency_objective(1e9, 1, 1)};
  const alert_report quiet = evaluate_alerts(result.timeline, loose);
  EXPECT_TRUE(quiet.events.empty());
  EXPECT_EQ(quiet.fires, 0u);

  // Evaluation over the same merged timeline is bit-stable — run it at
  // another pool size and compare the full event golden.
  exp::thread_pool other_pool{4};
  const fleet::fleet_result other =
      fleet::run_fleet(spec, options, task_pool, other_pool);
  const alert_report refired = evaluate_alerts(other.timeline, tight);
  EXPECT_EQ(refired.fingerprint(), fired.fingerprint());
  ASSERT_EQ(refired.events.size(), fired.events.size());
  for (std::size_t i = 0; i < fired.events.size(); ++i) {
    EXPECT_EQ(refired.events[i].slot, fired.events[i].slot) << i;
    EXPECT_EQ(refired.events[i].fired, fired.events[i].fired) << i;
    EXPECT_DOUBLE_EQ(refired.events[i].short_value,
                     fired.events[i].short_value)
        << i;
  }
}

}  // namespace
}  // namespace mca::obs
