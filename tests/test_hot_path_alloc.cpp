// Zero-allocation gate for the steady-state request path (PR-5).
//
// Global operator new/delete are replaced with counting wrappers; a
// closed-loop system in fleet configuration (streaming digests only, no
// raw series, no retained trace records) is warmed through two
// provisioning slots, then advanced across a mid-slot window.  The window
// processes hundreds of requests end to end — generator draw, moderator
// decision, SDN chain, backend processor sharing, digest update — and
// must allocate NOTHING: all per-request state lives in pooled slabs and
// fixed-size accumulators after warm-up.
//
// The scenario is built to make the steady state exact, not merely
// likely: fixed inter-arrival gaps and a never-promote policy give every
// user at most one in-flight request and identical load in every slot, so
// warm-up provably reaches every high-water mark the window will see.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "client/moderator.h"
#include "core/system.h"
#include "tasks/task.h"
#include "workload/generator.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, alignment < sizeof(void*) ? sizeof(void*) : alignment,
                     size ? size : alignment) != 0) {
    throw std::bad_alloc{};
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mca {
namespace {

TEST(HotPathAllocation, SteadyStateRequestPathAllocatesNothing) {
  tasks::task_pool pool;

  core::system_config config;
  config.groups = {
      {1, "t2.large", 2, 200.0},
      {2, "m4.4xlarge", 1, 600.0},
  };
  config.user_count = 400;
  config.tasks = workload::static_source(pool.static_minimax_request());
  config.gaps = workload::fixed_interarrival(util::seconds(40.0));
  config.slot_length = util::minutes(10.0);
  config.background_requests_per_burst = 0;
  // Deterministic steady state: nobody changes group, so per-slot load —
  // and with it the provisioning plan — is constant after the first slot.
  config.policy_factory = [] {
    return std::make_unique<client::never_promote>();
  };
  // Fleet configuration: streaming digests only.
  config.record_request_series = false;
  config.sdn.retain_trace_records = false;
  config.seed = 99;

  core::offloading_system system{std::move(config), pool};
  system.begin(util::hours(1.0));

  // Warm-up: two full slots establish every pool's high-water mark (the
  // event arena, the SDN in-flight slab, instance job slabs, the slot
  // accumulator, moderator state).
  system.advance_to(util::minutes(21.0));

  const std::uint64_t before = allocation_count();
  system.advance_to(util::minutes(29.0));
  const std::uint64_t during_window = allocation_count() - before;

  // ~400 users * 24 requests each flow through the window; the digest
  // keeps counting.
  EXPECT_GT(system.metrics().digest.issued, 10'000u);
  EXPECT_EQ(during_window, 0u)
      << "steady-state request path performed " << during_window
      << " heap allocations";

  system.finish();
  EXPECT_EQ(system.metrics().digest.issued, system.metrics().digest.succeeded);
}

TEST(HotPathAllocation, FaultSteadyStateRequestPathAllocatesNothing) {
  // The same gate with the fault program live: timeout timers armed on
  // every dispatch, a spot strike landing inside the measured window, and
  // the retry/backoff/fallback machinery absorbing everything after it.
  //
  // Adaptation is off and three hand-placed strikes progressively empty
  // group 1 (nothing relaunches), so the run walks through every fault
  // regime before the window opens: full capacity, then one overloaded
  // survivor (warm-up saturates its job slab at max_concurrent and pushes
  // the in-flight pool and timeout machinery to their high-water marks),
  // then — after the in-window strike at minute 23 — a drained group
  // where every request runs route-refusal → backoff retries → local
  // fallback.  The window must absorb the strike itself (billing close,
  // heap-order kill callbacks) and the regime change without a single
  // allocation.
  tasks::task_pool pool;

  core::system_config config;
  config.groups = {
      {1, "t2.large", 3, 200.0},
      {2, "m4.4xlarge", 1, 600.0},
  };
  config.user_count = 400;
  config.tasks = workload::static_source(pool.static_minimax_request());
  config.gaps = workload::fixed_interarrival(util::seconds(40.0));
  config.slot_length = util::minutes(10.0);
  config.background_requests_per_burst = 0;
  config.policy_factory = [] {
    return std::make_unique<client::never_promote>();
  };
  config.enable_adaptation = false;
  config.record_request_series = false;
  config.sdn.retain_trace_records = false;
  config.seed = 99;

  config.faults.enabled = true;
  config.faults.preempt_hazard_per_hour = {0.0, 0.0, 0.0};
  config.faults.cold_start_mean_ms = 500.0;
  config.faults.max_retries = 2;
  config.faults.request_timeout_ms = 60'000.0;
  config.faults.local_fallback = true;
  // A fast local device keeps the post-drain fallback cheap (the paper's
  // 0.005 wu/ms would hold ~56 s of pending local events per request).
  config.faults.local_exec_wu_per_ms = 1.0;
  const double strike_minutes[3] = {5.0, 13.0, 23.0};
  for (std::uint64_t i = 0; i < 3; ++i) {
    fault::preemption_event ev;
    ev.at = util::minutes(strike_minutes[i]);
    ev.group = 1;
    ev.ordinal = i;
    ev.seq = i;
    config.preemption_schedule.push_back(ev);
  }

  core::offloading_system system{std::move(config), pool};
  system.begin(util::hours(1.0));

  system.advance_to(util::minutes(21.0));

  const std::uint64_t before = allocation_count();
  system.advance_to(util::minutes(29.0));
  const std::uint64_t during_window = allocation_count() - before;

  EXPECT_GT(system.metrics().digest.issued, 10'000u);
  EXPECT_EQ(during_window, 0u)
      << "fault-steady-state request path performed " << during_window
      << " heap allocations";
  // All three strikes fired; the machinery they exercise actually ran.
  const obs::registry& r = system.observability();
  EXPECT_GE(r.get(obs::counter::fault_preemptions), 3u);
  EXPECT_GT(r.get(obs::counter::sdn_retries), 0u);
  EXPECT_GT(r.get(obs::counter::sdn_local_fallbacks), 0u);

  system.finish();
  // Zero loss end to end: with the local fallback on, every issued
  // request still terminates successfully despite losing the whole group.
  EXPECT_EQ(system.metrics().digest.issued, system.metrics().digest.succeeded);
}

}  // namespace
}  // namespace mca
