// Overflow-adjacent bound arithmetic for the dense simplex tableau: rhs
// values and variable boxes near the top of the double range flow through
// build, solve, warm-started rhs re-aims, and branch-style bound
// tightening without producing infinities, NaNs, or undefined float
// behavior.  These magnitudes never occur in the allocator's own models
// (work units are bounded), so this is pure edge coverage for the
// ASan+UBSan CI leg; expectations are deliberately loose — finite values,
// sane statuses — rather than exact optima.
#include "ilp/tableau.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "ilp/problem.h"
#include "ilp/simplex.h"
#include "util/rng.h"

namespace mca::ilp {
namespace {

constexpr double kHuge = 1.0e300;

bool all_finite(const std::vector<double>& xs) {
  for (double x : xs) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

TEST(TableauBounds, HugeRhsSolvesFinite) {
  // min x0 + x1  s.t.  x0 + x1 >= 1e300 — optimum rides the huge rhs.
  problem p;
  const auto x0 = p.add_variable(1.0);
  const auto x1 = p.add_variable(1.0);
  p.add_constraint({{x0, 1.0}, {x1, 1.0}}, relation::greater_equal, kHuge);
  const solution s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_TRUE(all_finite(s.values));
  EXPECT_TRUE(std::isfinite(s.objective));
  EXPECT_NEAR(s.objective, kHuge, 1.0e-9 * kHuge);
}

TEST(TableauBounds, HugeUpperBoundBoxStaysFinite) {
  // A finite-but-enormous upper bound is materialized as a bound row; its
  // slack arithmetic must not overflow into inf during the build.
  problem p;
  const auto x0 = p.add_variable(-1.0, 0.0, kHuge);  // min -x0: push to upper
  p.add_constraint({{x0, 1.0}}, relation::greater_equal, 0.0);
  const solution s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_TRUE(std::isfinite(s.objective));
  EXPECT_NEAR(s.values.at(x0), kHuge, 1.0e-9 * kHuge);
}

TEST(TableauBounds, RhsReaimTracksModerateSwings) {
  // Warm tableau tracks the exact optimum across wide (but representable-
  // delta) rhs swings — the batched allocator's sync_constraint_rhs path.
  problem p;
  const auto x0 = p.add_variable(2.0);
  const auto x1 = p.add_variable(3.0);
  p.add_constraint({{x0, 1.0}, {x1, 1.0}}, relation::greater_equal, 1.0);
  dense_tableau t{p, 1.0e-9};
  ASSERT_EQ(t.solve({}), solve_status::optimal);

  for (double rhs : {1.0e-300, 1.0, 1.0e9, 5.0, 1.0e12, 0.0}) {
    p.set_constraint_rhs(0, rhs);
    t.sync_constraint_rhs(0);
    ASSERT_EQ(t.resolve({}), solve_status::optimal) << "rhs=" << rhs;
    solution s;
    t.extract(s);
    EXPECT_TRUE(all_finite(s.values)) << "rhs=" << rhs;
    EXPECT_NEAR(s.objective, 2.0 * rhs, 1.0e-6 * std::max(1.0, rhs));
  }
}

TEST(TableauBounds, RhsReaimSurvivesOverflowAdjacentSwings) {
  // Swinging the rhs through 1e300 and back intentionally destroys the
  // small components of the incremental B^-1*delta update (absolute FP
  // error ~1e284 swamps any later moderate rhs) — the allocator only ever
  // re-aims between nearby demands, so exactness is out of contract here.
  // What IS in contract, and what the UBSan leg watches, is that the
  // arithmetic stays defined: every resolve must terminate with a sane
  // status and hand back finite numbers.
  problem p;
  const auto x0 = p.add_variable(2.0);
  const auto x1 = p.add_variable(3.0);
  p.add_constraint({{x0, 1.0}, {x1, 1.0}}, relation::greater_equal, 1.0);
  dense_tableau t{p, 1.0e-9};
  ASSERT_EQ(t.solve({}), solve_status::optimal);

  for (double rhs : {kHuge, 5.0, 1.0e280, 0.0, kHuge}) {
    p.set_constraint_rhs(0, rhs);
    t.sync_constraint_rhs(0);
    ASSERT_EQ(t.resolve({}), solve_status::optimal) << "rhs=" << rhs;
    solution s;
    t.extract(s);
    EXPECT_TRUE(all_finite(s.values)) << "rhs=" << rhs;
    EXPECT_TRUE(std::isfinite(s.objective)) << "rhs=" << rhs;
  }
  // A fresh full solve (not the incremental path) restores exactness.
  p.set_constraint_rhs(0, 7.0);
  dense_tableau fresh{p, 1.0e-9};
  ASSERT_EQ(fresh.solve({}), solve_status::optimal);
  solution s;
  fresh.extract(s);
  EXPECT_NEAR(s.objective, 14.0, 1.0e-9);
}

TEST(TableauBounds, TightenToHugeBoundsThenResolve) {
  // Branch-style in-place bound moves with overflow-adjacent values: lift
  // the lower bound to a huge value (forcing the optimum up), then pull it
  // back down via a fresh solve.
  problem p;
  const auto x0 = p.add_variable(1.0, 0.0, kHuge);
  const auto x1 = p.add_variable(4.0, 0.0, kHuge);
  p.add_constraint({{x0, 1.0}, {x1, 1.0}}, relation::greater_equal, 2.0);
  dense_tableau t{p, 1.0e-9};
  ASSERT_EQ(t.solve({}), solve_status::optimal);

  t.tighten_lower(x1, 1.0e299);
  ASSERT_EQ(t.resolve({}), solve_status::optimal);
  solution s;
  t.extract(s);
  EXPECT_TRUE(all_finite(s.values));
  EXPECT_GE(s.values.at(x1), 1.0e299 * (1.0 - 1.0e-9));

  t.tighten_upper(x0, 1.0);
  ASSERT_EQ(t.resolve({}), solve_status::optimal);
  t.extract(s);
  EXPECT_TRUE(all_finite(s.values));
  EXPECT_LE(s.values.at(x0), 1.0 + 1.0e-6);
}

TEST(TableauBounds, HugeConstraintVsBoundConflictIsInfeasible) {
  // A bound tightened into conflict with a huge-rhs row must come back
  // `infeasible`, not as an overflow artifact.  (Empty *boxes* — lower >
  // upper on one variable — are out of contract: branch & bound guards
  // against creating them and problem::set_bounds throws on them, so the
  // conflict the tableau must detect is always row-vs-bound.)
  problem p;
  const auto x0 = p.add_variable(1.0, 0.0, kHuge);
  p.add_constraint({{x0, 1.0}}, relation::greater_equal, kHuge);
  dense_tableau t{p, 1.0e-9};
  ASSERT_EQ(t.solve({}), solve_status::optimal);
  t.tighten_upper(x0, 1.0);  // conflicts with x0 >= 1e300
  EXPECT_EQ(t.resolve({}), solve_status::infeasible);
}

TEST(TableauBounds, RandomizedHugeScaleProblemsStayFinite) {
  // Fuzz small LPs whose coefficients, bounds, and rhs mix ordinary and
  // overflow-adjacent magnitudes; every terminal status is acceptable, but
  // an `optimal` solve must hand back finite numbers.
  util::rng gen{0xb00575bad5eedULL};
  for (int trial = 0; trial < 100; ++trial) {
    problem p;
    const auto vars = static_cast<std::size_t>(gen.uniform_int(1, 4));
    for (std::size_t v = 0; v < vars; ++v) {
      const double cost = gen.uniform(-3.0, 3.0);
      const double upper = gen.bernoulli(0.3) ? gen.uniform(1.0, 1.0e299)
                                              : gen.uniform(1.0, 100.0);
      p.add_variable(cost, 0.0, upper);
    }
    const auto rows = static_cast<std::size_t>(gen.uniform_int(1, 3));
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<linear_term> terms;
      for (std::size_t v = 0; v < vars; ++v) {
        terms.push_back({v, gen.uniform(0.1, 4.0)});
      }
      const double rhs = gen.bernoulli(0.25) ? gen.uniform(1.0, 1.0e290)
                                             : gen.uniform(0.0, 50.0);
      p.add_constraint(std::move(terms),
                       gen.bernoulli(0.5) ? relation::less_equal
                                          : relation::greater_equal,
                       rhs);
    }
    const solution s = solve_lp(p);
    if (s.status == solve_status::optimal) {
      EXPECT_TRUE(all_finite(s.values)) << "trial " << trial;
      EXPECT_TRUE(std::isfinite(s.objective)) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace mca::ilp
