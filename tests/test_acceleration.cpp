#include "core/acceleration.h"

#include <gtest/gtest.h>

namespace mca::core {
namespace {

acceleration_map three_level_map() {
  acceleration_group g0;
  g0.id = 0;
  g0.type_names = {"t2.micro"};
  acceleration_group g1;
  g1.id = 1;
  g1.type_names = {"t2.nano", "t2.small"};
  g1.capacity_users = 10.0;
  acceleration_group g2;
  g2.id = 2;
  g2.type_names = {"t2.large"};
  g2.capacity_users = 40.0;
  return acceleration_map{{g0, g1, g2}};
}

TEST(AccelerationMap, GroupLookupById) {
  const auto map = three_level_map();
  EXPECT_EQ(map.group_count(), 3u);
  EXPECT_EQ(map.group(1).type_names.size(), 2u);
  EXPECT_EQ(map.group(2).capacity_users, 40.0);
  EXPECT_THROW(map.group(3), std::out_of_range);
}

TEST(AccelerationMap, GroupOfTypeName) {
  const auto map = three_level_map();
  EXPECT_EQ(map.group_of("t2.micro"), 0u);
  EXPECT_EQ(map.group_of("t2.nano"), 1u);
  EXPECT_EQ(map.group_of("t2.small"), 1u);
  EXPECT_EQ(map.group_of("t2.large"), 2u);
  EXPECT_THROW(map.group_of("m4.10xlarge"), std::out_of_range);
}

TEST(AccelerationMap, ContainsChecksMembership) {
  const auto map = three_level_map();
  EXPECT_TRUE(map.contains("t2.nano"));
  EXPECT_FALSE(map.contains("c4.8xlarge"));
}

TEST(AccelerationMap, MaxGroupIsHighestId) {
  EXPECT_EQ(three_level_map().max_group(), 2u);
}

TEST(AccelerationMap, RejectsNonDenseIds) {
  acceleration_group g0;
  g0.id = 0;
  acceleration_group g2;
  g2.id = 2;  // gap: no group 1
  EXPECT_THROW(acceleration_map({g0, g2}), std::invalid_argument);
}

TEST(AccelerationMap, EmptyMapMaxGroupThrows) {
  acceleration_map map{{}};
  EXPECT_THROW(map.max_group(), std::logic_error);
}

}  // namespace
}  // namespace mca::core
