#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mca::trace {
namespace {

log_store sample_store() {
  log_store store;
  store.append({100.5, 1, 2, 0.85, 420.25});
  store.append({50.0, 2, 1, 1.0, 300.0});
  store.append({200.0, 1, 3, 0.5, 150.75});
  return store;
}

TEST(TraceIo, WriteEmitsHeaderAndSortedRows) {
  std::ostringstream out;
  EXPECT_EQ(write_csv(sample_store(), out), 3u);
  std::istringstream in{out.str()};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "timestamp_ms,user,group,battery,rtt_ms");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 9), "50.000000");  // chronological order
}

TEST(TraceIo, RoundTripPreservesRecords) {
  std::ostringstream out;
  write_csv(sample_store(), out);
  std::istringstream in{out.str()};
  const auto restored = read_csv(in);
  ASSERT_EQ(restored.size(), 3u);
  const auto records = restored.in_range(0.0, 1e9);
  EXPECT_DOUBLE_EQ(records[0].timestamp, 50.0);
  EXPECT_EQ(records[0].user, 2u);
  EXPECT_EQ(records[1].group, 2u);
  EXPECT_DOUBLE_EQ(records[1].battery_level, 0.85);
  EXPECT_DOUBLE_EQ(records[2].rtt_ms, 150.75);
}

TEST(TraceIo, EmptyStoreRoundTrips) {
  std::ostringstream out;
  EXPECT_EQ(write_csv(log_store{}, out), 0u);
  std::istringstream in{out.str()};
  EXPECT_TRUE(read_csv(in).empty());
}

TEST(TraceIo, MissingHeaderThrows) {
  std::istringstream in{"1,2,3,4,5\n"};
  EXPECT_THROW(read_csv(in), std::invalid_argument);
  std::istringstream empty{""};
  EXPECT_THROW(read_csv(empty), std::invalid_argument);
}

TEST(TraceIo, WrongFieldCountReportsLine) {
  std::istringstream in{
      "timestamp_ms,user,group,battery,rtt_ms\n1,2,3,4\n"};
  try {
    read_csv(in);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("line 2"), std::string::npos);
  }
}

TEST(TraceIo, BadNumberReportsField) {
  std::istringstream in{
      "timestamp_ms,user,group,battery,rtt_ms\n1.0,xyz,1,0.5,100\n"};
  try {
    read_csv(in);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("xyz"), std::string::npos);
  }
}

TEST(TraceIo, BlankLinesSkipped) {
  std::istringstream in{
      "timestamp_ms,user,group,battery,rtt_ms\n\n1.0,1,1,0.5,100\n\n"};
  EXPECT_EQ(read_csv(in).size(), 1u);
}

TEST(TraceIo, SlotsSurviveRoundTrip) {
  log_store store;
  for (int i = 0; i < 50; ++i) {
    store.append({i * 100.0, static_cast<user_id>(i % 7),
                  static_cast<group_id>(i % 3), 1.0, 200.0});
  }
  std::ostringstream out;
  write_csv(store, out);
  std::istringstream in{out.str()};
  const auto restored = read_csv(in);
  const auto original_slots = store.build_slots(1'000.0, 3);
  const auto restored_slots = restored.build_slots(1'000.0, 3);
  ASSERT_EQ(original_slots.size(), restored_slots.size());
  for (std::size_t i = 0; i < original_slots.size(); ++i) {
    EXPECT_EQ(slot_distance(original_slots[i], restored_slots[i]), 0u);
  }
}

}  // namespace
}  // namespace mca::trace
