// Time-resolved telemetry: per-slot timeline windows (delta semantics,
// ring wrap, slot-aligned merge, fingerprint exclusions), the
// tail-exemplar reservoir (top-K admission, deterministic tie-breaks,
// fleet per-window cut), trace lanes and the slot-window export filter,
// and the fleet integration — the merged timeline fingerprint must be
// bit-identical at jobs 1/4/16 and between traced and untraced legs.
#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "exp/thread_pool.h"
#include "fleet/fleet_runner.h"
#include "obs/exemplar.h"
#include "obs/tracer.h"
#include "tasks/task.h"

namespace mca::obs {
namespace {

// ---------------------------------------------------------------------------
// timeline windows

TEST(ObsTimeline, SnapshotStoresDeltasNotTotals) {
  registry reg{2};
  timeline tl{4, 2};
  ASSERT_TRUE(tl.enabled());

  reg.add(counter::sdn_requests, 10);
  reg.observe_response(0, 200.0);
  reg.observe_response(1, 700.0);
  tl.snapshot(reg, 0, 1'000.0);

  reg.add(counter::sdn_requests, 3);
  reg.observe_response(0, 300.0);
  tl.snapshot(reg, 1, 2'000.0);

  ASSERT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl.window(0).slot, 0u);
  EXPECT_DOUBLE_EQ(tl.window(0).sim_end_ms, 1'000.0);
  EXPECT_EQ(tl.window(0).delta(counter::sdn_requests), 10u);
  EXPECT_EQ(tl.window(0).slo[0].total(), 1u);
  EXPECT_EQ(tl.window(0).slo[1].total(), 1u);
  // Second window holds only what landed after the first snapshot.
  EXPECT_EQ(tl.window(1).delta(counter::sdn_requests), 3u);
  EXPECT_EQ(tl.window(1).slo[0].total(), 1u);
  EXPECT_EQ(tl.window(1).slo[1].total(), 0u);
  EXPECT_EQ(tl.window(1).merged_slo().total(), 1u);
}

TEST(ObsTimeline, GaugesArePointSamples) {
  registry reg;
  timeline tl{2, 0};
  reg.set_gauge(gauge::groups, 7);
  tl.snapshot(reg, 0, 1'000.0);
  reg.set_gauge(gauge::groups, 4);
  tl.snapshot(reg, 1, 2'000.0);
  EXPECT_EQ(tl.window(0).sample(gauge::groups), 7u);
  EXPECT_EQ(tl.window(1).sample(gauge::groups), 4u);
}

TEST(ObsTimeline, RingOverwritesOldestWindow) {
  registry reg;
  timeline tl{2, 0};
  for (std::uint64_t slot = 0; slot < 3; ++slot) {
    reg.add(counter::sdn_requests);
    tl.snapshot(reg, slot, 1'000.0 * static_cast<double>(slot + 1));
  }
  EXPECT_EQ(tl.pushed(), 3u);
  EXPECT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl.dropped(), 1u);
  EXPECT_EQ(tl.window(0).slot, 1u);
  EXPECT_EQ(tl.window(1).slot, 2u);
}

TEST(ObsTimeline, ZeroCapacityDisablesSnapshot) {
  registry reg;
  timeline tl;
  EXPECT_FALSE(tl.enabled());
  reg.add(counter::sdn_requests);
  tl.snapshot(reg, 0, 1'000.0);
  EXPECT_EQ(tl.size(), 0u);
}

TEST(ObsTimeline, MergeAlignsOnSlotIndex) {
  registry a{1};
  timeline ta{4, 1};
  a.add(counter::sdn_requests, 5);
  a.observe_response(0, 100.0);
  ta.snapshot(a, 0, 1'000.0);
  a.add(counter::sdn_requests, 2);
  ta.snapshot(a, 1, 2'000.0);

  // The other shard saw slots 1 and 2 only.
  registry b{1};
  timeline tb{4, 1};
  tb.snapshot(b, 1, 2'000.0);
  b.add(counter::sdn_requests, 7);
  b.observe_response(0, 900.0);
  tb.snapshot(b, 2, 3'000.0);

  timeline merged;
  merged.merge(ta);
  merged.merge(tb);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.window(0).slot, 0u);
  EXPECT_EQ(merged.window(0).delta(counter::sdn_requests), 5u);
  EXPECT_EQ(merged.window(1).slot, 1u);
  EXPECT_EQ(merged.window(1).delta(counter::sdn_requests), 2u);
  EXPECT_EQ(merged.window(2).slot, 2u);
  EXPECT_EQ(merged.window(2).delta(counter::sdn_requests), 7u);
  EXPECT_EQ(merged.window(2).slo[0].total(), 1u);
}

TEST(ObsTimeline, FingerprintExcludesGaugesSchedulingAndTraceCounters) {
  registry a{1};
  registry b{1};
  a.add(counter::sdn_requests, 50);
  b.add(counter::sdn_requests, 50);
  // Gauges, pool telemetry, and trace-dependent counters differ between
  // legs; the timeline fingerprint must not.
  a.set_gauge(gauge::pool_workers, 16);
  a.add(counter::pool_steals, 11);
  a.add(counter::sdn_sampled_spans, 9);
  ASSERT_TRUE(counter_is_trace_dependent(counter::sdn_sampled_spans));
  ASSERT_FALSE(counter_is_trace_dependent(counter::sdn_requests));

  timeline ta{2, 1};
  timeline tb{2, 1};
  ta.snapshot(a, 0, 1'000.0);
  tb.snapshot(b, 0, 1'000.0);
  EXPECT_EQ(ta.fingerprint(), tb.fingerprint());

  // A deterministic counter delta does move it.
  registry c{1};
  c.add(counter::sdn_requests, 51);
  timeline tc{2, 1};
  tc.snapshot(c, 0, 1'000.0);
  EXPECT_NE(ta.fingerprint(), tc.fingerprint());
}

// ---------------------------------------------------------------------------
// tail-exemplar reservoir

exemplar_record make_exemplar(double response_ms, std::uint64_t request) {
  exemplar_record r;
  r.response_ms = response_ms;
  r.issued_at_ms = 100.0;
  r.request = request;
  r.success = true;
  return r;
}

TEST(ObsExemplar, ReservoirKeepsTheSlowestK) {
  exemplar_reservoir res{2, 4};
  ASSERT_TRUE(res.enabled());
  for (double ms : {120.0, 900.0, 45.0, 610.0, 300.0}) {
    res.observe(make_exemplar(ms, static_cast<std::uint64_t>(ms)));
  }
  res.roll_window(0);
  ASSERT_EQ(res.records().size(), 2u);
  EXPECT_DOUBLE_EQ(res.records()[0].response_ms, 900.0);  // slowest first
  EXPECT_DOUBLE_EQ(res.records()[1].response_ms, 610.0);
  EXPECT_EQ(res.observed(), 5u);
  EXPECT_EQ(res.admitted(), 3u);  // 120 and 900 fill, 610 displaces 120
}

TEST(ObsExemplar, EqualLatencyTiesBreakOnLowerRequestId) {
  // All candidates identical except the request id: the reservoir must
  // keep the lowest ids, whatever the arrival order.
  exemplar_reservoir res{2, 2};
  for (const std::uint64_t id : {41u, 7u, 99u, 12u, 60u}) {
    res.observe(make_exemplar(500.0, id));
  }
  res.roll_window(0);
  ASSERT_EQ(res.records().size(), 2u);
  EXPECT_EQ(res.records()[0].request, 7u);
  EXPECT_EQ(res.records()[1].request, 12u);

  // Same set, different order → identical flush.
  exemplar_reservoir again{2, 2};
  for (const std::uint64_t id : {99u, 12u, 60u, 41u, 7u}) {
    again.observe(make_exemplar(500.0, id));
  }
  again.roll_window(0);
  ASSERT_EQ(again.records().size(), 2u);
  EXPECT_EQ(again.records()[0].request, 7u);
  EXPECT_EQ(again.records()[1].request, 12u);
}

TEST(ObsExemplar, WindowsFlushIndependently) {
  exemplar_reservoir res{1, 2};
  res.observe(make_exemplar(200.0, 1));
  res.roll_window(0);
  res.observe(make_exemplar(900.0, 2));
  res.observe(make_exemplar(100.0, 3));
  res.roll_window(1);
  ASSERT_EQ(res.records().size(), 2u);
  EXPECT_EQ(res.records()[0].slot, 0u);
  EXPECT_EQ(res.records()[0].request, 1u);
  EXPECT_EQ(res.records()[1].slot, 1u);
  EXPECT_DOUBLE_EQ(res.records()[1].response_ms, 900.0);
}

TEST(ObsExemplar, FleetCutKeepsTopKPerWindow) {
  // Two shards' flushed records concatenated in shard order.
  std::vector<exemplar_record> all;
  auto put = [&](std::uint32_t slot, double ms, std::uint64_t id) {
    exemplar_record r = make_exemplar(ms, id);
    r.slot = slot;
    all.push_back(r);
  };
  put(0, 400.0, 10);
  put(0, 800.0, 11);
  put(1, 350.0, 12);
  put(0, 600.0, 20);  // second shard starts here
  put(1, 900.0, 21);
  const std::vector<exemplar_record> cut = top_exemplars_per_window(all, 2);
  ASSERT_EQ(cut.size(), 4u);
  EXPECT_EQ(cut[0].request, 11u);  // slot 0: 800 then 600
  EXPECT_EQ(cut[1].request, 20u);
  EXPECT_EQ(cut[2].request, 21u);  // slot 1: 900 then 350
  EXPECT_EQ(cut[3].request, 12u);
}

TEST(ObsExemplar, SpansCarryLifecycleExtentAndIds) {
  exemplar_record r = make_exemplar(250.0, 77);
  r.user = 5;
  r.issued_at_ms = 1'250.0;
  const std::vector<span_record> spans = exemplar_spans({r});
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, span_kind::request_exemplar);
  EXPECT_DOUBLE_EQ(spans[0].sim_start_ms, 1'250.0);
  EXPECT_DOUBLE_EQ(spans[0].sim_dur_ms, 250.0);
  EXPECT_EQ(spans[0].arg_a, 5u);
  EXPECT_EQ(spans[0].arg_b, 77u);
}

// ---------------------------------------------------------------------------
// trace lanes and the slot-window filter

TEST(ObsTraceFilter, KeepsSimSpansByOverlapAndWallSpansBySlot) {
  trace_filter filter;
  filter.slot_begin = 1;
  filter.slot_end = 2;
  filter.sim_begin_ms = 1'000.0;
  filter.sim_end_ms = 3'000.0;

  span_record sim_inside;
  sim_inside.kind = span_kind::request_lifecycle;
  sim_inside.sim_start_ms = 1'500.0;
  sim_inside.sim_dur_ms = 100.0;
  EXPECT_TRUE(trace_filter_keeps(filter, sim_inside));

  span_record sim_overlapping = sim_inside;
  sim_overlapping.sim_start_ms = 500.0;
  sim_overlapping.sim_dur_ms = 600.0;  // ends at 1100, inside
  EXPECT_TRUE(trace_filter_keeps(filter, sim_overlapping));

  span_record sim_before = sim_inside;
  sim_before.sim_start_ms = 100.0;
  sim_before.sim_dur_ms = 50.0;
  EXPECT_FALSE(trace_filter_keeps(filter, sim_before));

  span_record sim_after = sim_inside;
  sim_after.sim_start_ms = 3'000.0;
  EXPECT_FALSE(trace_filter_keeps(filter, sim_after));

  // Wall-only coordinator spans carry the slot in arg_a.
  span_record solve;
  solve.kind = span_kind::coordinator_solve;
  solve.sim_start_ms = -1.0;
  solve.arg_a = 2;
  EXPECT_TRUE(trace_filter_keeps(filter, solve));
  solve.arg_a = 3;
  EXPECT_FALSE(trace_filter_keeps(filter, solve));

  // Un-slotted wall-only spans are dropped.
  span_record idle;
  idle.kind = span_kind::pool_idle;
  idle.sim_start_ms = -1.0;
  EXPECT_FALSE(trace_filter_keeps(filter, idle));
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

TEST(ObsTraceLanes, ExportAddsLaneThreadsAndAppliesFilter) {
  tracer t{{1, 16}};
  span_record ring_span;
  ring_span.kind = span_kind::slot_round;
  ring_span.wall_start_us = 10.0;
  ring_span.wall_dur_us = 5.0;
  ring_span.sim_start_ms = 0.0;
  ring_span.sim_dur_ms = 1'000.0;
  ring_span.arg_a = 0;
  t.ring(0).push(ring_span);

  trace_lane lane;
  lane.name = "tail exemplars";
  span_record kept;
  kept.kind = span_kind::request_exemplar;
  kept.sim_start_ms = 500.0;
  kept.sim_dur_ms = 100.0;
  kept.arg_b = 42;
  lane.spans.push_back(kept);
  span_record cut = kept;
  cut.sim_start_ms = 9'000.0;
  cut.arg_b = 43;
  lane.spans.push_back(cut);

  trace_filter filter;
  filter.slot_begin = 0;
  filter.slot_end = 0;
  filter.sim_begin_ms = 0.0;
  filter.sim_end_ms = 1'000.0;

  const std::string path = "obs_timeline_lane_trace.json";
  ASSERT_TRUE(t.export_chrome_trace(path, {"ring"}, {lane}, &filter));
  const std::string text = slurp(path);
  std::remove(path.c_str());
  EXPECT_NE(text.find("\"tail exemplars\""), std::string::npos);
  EXPECT_NE(text.find("\"request_exemplar\""), std::string::npos);
  // The in-window exemplar survives (1 sim ms = 1 trace µs); the one
  // past sim_end_ms is cut.
  EXPECT_NE(text.find("\"ts\":500.000"), std::string::npos);
  EXPECT_EQ(text.find("\"ts\":9000.000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// fleet integration

/// Small fleet scenario crossing several slot boundaries (mirrors
/// test_obs's obs_fleet_scenario).
exp::scenario_spec timeline_fleet_scenario() {
  exp::scenario_spec spec;
  spec.name = "obs_timeline_fleet";
  spec.base_seed = 90210;
  spec.user_count = 48;
  spec.duration = util::minutes(30.0);
  spec.slot_length = util::minutes(10.0);
  spec.gaps = exp::gap_model::exponential;
  spec.arrival_rate_hz = 0.05;
  spec.background_requests_per_burst = 0;
  spec.groups = {{1, "t2.nano", 1, 4.0}, {2, "t2.large", 1, 30.0}};
  spec.fleet_max_total_instances = 40;
  spec.fleet_shards = 4;
  return spec;
}

TEST(ObsTimelineFleet, FingerprintIdenticalAcrossPoolSizes) {
  const exp::scenario_spec spec = timeline_fleet_scenario();
  const tasks::task_pool task_pool;
  fleet::fleet_options options;

  std::uint64_t first = 0;
  for (const std::size_t jobs : {1u, 4u, 16u}) {
    exp::thread_pool pool{jobs};
    const fleet::fleet_result result =
        fleet::run_fleet(spec, options, task_pool, pool);
    ASSERT_TRUE(result.timeline.enabled());
    // One window per slot plus the drain tail, slots in order.
    ASSERT_EQ(result.timeline.size(), result.slot_count + 1);
    for (std::size_t w = 0; w < result.timeline.size(); ++w) {
      EXPECT_EQ(result.timeline.window(w).slot, w);
    }
    // The window deltas sum back to the merged registry totals.
    std::uint64_t requests = 0;
    std::uint64_t snapshots = 0;
    for (std::size_t w = 0; w < result.timeline.size(); ++w) {
      requests += result.timeline.window(w).delta(counter::sdn_requests);
      snapshots +=
          result.timeline.window(w).delta(counter::timeline_snapshots);
    }
    EXPECT_EQ(requests, result.observability.get(counter::sdn_requests));
    EXPECT_EQ(result.observability.get(counter::timeline_snapshots),
              snapshots);
    EXPECT_EQ(result.observability.get_gauge(gauge::timeline_windows),
              result.timeline.size());
    if (jobs == 1) {
      first = result.timeline.fingerprint();
      EXPECT_GT(requests, 0u);
    } else {
      EXPECT_EQ(result.timeline.fingerprint(), first) << "jobs=" << jobs;
    }
  }
}

TEST(ObsTimelineFleet, FingerprintIdenticalBetweenTracedAndUntracedLegs) {
  const exp::scenario_spec spec = timeline_fleet_scenario();
  const tasks::task_pool task_pool;
  exp::thread_pool pool{2};

  fleet::fleet_options plain;
  const fleet::fleet_result untraced =
      fleet::run_fleet(spec, plain, task_pool, pool);

  tracer t{{spec.fleet_shards + 1, 512}};
  fleet::fleet_options traced_options;
  traced_options.tracer = &t;
  traced_options.trace_sample_every = 8;
  const fleet::fleet_result traced =
      fleet::run_fleet(spec, traced_options, task_pool, pool);

  // Sampled-span counts differ (trace-dependent), the timeline
  // fingerprint must not.
  EXPECT_GT(traced.observability.get(counter::sdn_sampled_spans), 0u);
  EXPECT_EQ(untraced.observability.get(counter::sdn_sampled_spans), 0u);
  EXPECT_EQ(traced.timeline.fingerprint(), untraced.timeline.fingerprint());
}

TEST(ObsTimelineFleet, TimelineOffLeavesResultIdentical) {
  const exp::scenario_spec spec = timeline_fleet_scenario();
  const tasks::task_pool task_pool;
  exp::thread_pool pool{2};

  fleet::fleet_options on;
  const fleet::fleet_result with_timeline =
      fleet::run_fleet(spec, on, task_pool, pool);
  fleet::fleet_options off;
  off.obs_timeline = false;
  off.exemplar_top_k = 0;
  const fleet::fleet_result without =
      fleet::run_fleet(spec, off, task_pool, pool);

  EXPECT_EQ(with_timeline.fingerprint(), without.fingerprint());
  // The timeline layer's own meta-counters stop moving when it is off;
  // everything the simulation itself counts is unchanged.
  EXPECT_GT(with_timeline.observability.get(counter::timeline_snapshots), 0u);
  EXPECT_EQ(without.observability.get(counter::timeline_snapshots), 0u);
  EXPECT_EQ(without.observability.get(counter::exemplar_admitted), 0u);
  EXPECT_EQ(with_timeline.observability.get(counter::sdn_requests),
            without.observability.get(counter::sdn_requests));
  EXPECT_FALSE(without.timeline.enabled());
  EXPECT_TRUE(without.exemplars.empty());
}

TEST(ObsTimelineFleet, ExemplarsDeterministicAcrossPoolSizes) {
  const exp::scenario_spec spec = timeline_fleet_scenario();
  const tasks::task_pool task_pool;
  fleet::fleet_options options;

  std::vector<exemplar_record> first;
  for (const std::size_t jobs : {1u, 4u}) {
    exp::thread_pool pool{jobs};
    const fleet::fleet_result result =
        fleet::run_fleet(spec, options, task_pool, pool);
    ASSERT_FALSE(result.exemplars.empty());
    EXPECT_LE(result.exemplars.size(),
              options.exemplar_top_k * (result.slot_count + 1));
    if (jobs == 1) {
      first = result.exemplars;
    } else {
      // Request *ids* come from a process-global counter (values depend
      // on thread interleaving, see workload::next_request_id), so the
      // determinism statement is over the requests' deterministic
      // identity: which user, in which window, at what latency.
      ASSERT_EQ(result.exemplars.size(), first.size());
      for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(result.exemplars[i].user, first[i].user) << i;
        EXPECT_EQ(result.exemplars[i].group, first[i].group) << i;
        EXPECT_EQ(result.exemplars[i].slot, first[i].slot) << i;
        EXPECT_DOUBLE_EQ(result.exemplars[i].response_ms,
                         first[i].response_ms)
            << i;
      }
    }
  }
}

}  // namespace
}  // namespace mca::obs
