#include "core/predictor.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace mca::core {
namespace {

/// Slot with `count` users (ids base..base+count-1) in group `g` of `n`.
trace::time_slot slot_with(std::size_t n_groups, group_id g, std::size_t count,
                           user_id base = 0) {
  trace::time_slot slot{n_groups};
  for (std::size_t i = 0; i < count; ++i) {
    slot.add_user(g, base + static_cast<user_id>(i));
  }
  return slot;
}

/// A perfectly periodic day: counts cycle over `pattern` per slot.
std::vector<trace::time_slot> periodic_history(
    const std::vector<std::size_t>& pattern, std::size_t repetitions) {
  std::vector<trace::time_slot> history;
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    for (const std::size_t count : pattern) {
      history.push_back(slot_with(2, 1, count));
    }
  }
  return history;
}

TEST(Predictor, EmptyHistoryPredictsNothing) {
  workload_predictor p;
  EXPECT_FALSE(p.predict_next(slot_with(2, 1, 3)).has_value());
  EXPECT_FALSE(p.nearest_index(slot_with(2, 1, 3)).has_value());
}

TEST(Predictor, ObserveGrowsHistory) {
  workload_predictor p;
  p.observe(slot_with(2, 1, 1));
  p.observe(slot_with(2, 1, 2));
  EXPECT_EQ(p.history_size(), 2u);
}

TEST(Predictor, NearestIndexFindsExactMatch) {
  workload_predictor p;
  p.set_history({slot_with(2, 1, 2), slot_with(2, 1, 5), slot_with(2, 1, 9)});
  const auto idx = p.nearest_index(slot_with(2, 1, 5));
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 1u);
}

TEST(Predictor, TiesResolveToMostRecent) {
  workload_predictor p;
  // Two identical slots: index 2 (most recent) must win over index 0.
  p.set_history({slot_with(2, 1, 4), slot_with(2, 1, 9), slot_with(2, 1, 4)});
  const auto idx = p.nearest_index(slot_with(2, 1, 4));
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 2u);
}

TEST(Predictor, SuccessorModePredictsFollowingSlot) {
  workload_predictor p{prediction_mode::successor};
  p.set_history({slot_with(2, 1, 2), slot_with(2, 1, 7), slot_with(2, 1, 3)});
  const auto predicted = p.predict_next(slot_with(2, 1, 2));
  ASSERT_TRUE(predicted.has_value());
  EXPECT_EQ(predicted->user_count(1), 7u);  // slot after the match
}

TEST(Predictor, MatchModePredictsTheMatchItself) {
  workload_predictor p{prediction_mode::match};
  p.set_history({slot_with(2, 1, 2), slot_with(2, 1, 7), slot_with(2, 1, 3)});
  const auto predicted = p.predict_next(slot_with(2, 1, 2));
  ASSERT_TRUE(predicted.has_value());
  EXPECT_EQ(predicted->user_count(1), 2u);
}

TEST(Predictor, SuccessorFallsBackWhenMatchIsLast) {
  workload_predictor p{prediction_mode::successor};
  p.set_history({slot_with(2, 1, 2), slot_with(2, 1, 9)});
  const auto predicted = p.predict_next(slot_with(2, 1, 9));
  ASSERT_TRUE(predicted.has_value());
  EXPECT_EQ(predicted->user_count(1), 9u);  // persistence fallback
}

TEST(Predictor, SingleSlotHistorySuccessorModeReturnsNothing) {
  workload_predictor p{prediction_mode::successor};
  p.set_history({slot_with(2, 1, 2)});
  EXPECT_FALSE(p.predict_next(slot_with(2, 1, 2)).has_value());
}

TEST(Predictor, GrowingLoadMatchedToLargestSeen) {
  // The paper's conservatism remark: a load larger than anything stored is
  // matched to the largest historical load.
  workload_predictor p{prediction_mode::match};
  p.set_history({slot_with(2, 1, 2), slot_with(2, 1, 10)});
  const auto predicted = p.predict_next(slot_with(2, 1, 60));
  ASSERT_TRUE(predicted.has_value());
  EXPECT_EQ(predicted->user_count(1), 10u);
}

TEST(Predictor, PredictCountsMatchesSlotCounts) {
  workload_predictor p{prediction_mode::match};
  trace::time_slot mixed{3};
  mixed.add_user(0, 1);
  mixed.add_user(2, 5);
  mixed.add_user(2, 6);
  p.set_history({mixed});
  const auto counts = p.predict_counts(mixed);
  ASSERT_TRUE(counts.has_value());
  EXPECT_EQ(*counts, (std::vector<std::size_t>{1, 0, 2}));
}

TEST(PredictionAccuracy, PerfectForecastIsOne) {
  const std::vector<std::size_t> counts{3, 0, 7};
  EXPECT_DOUBLE_EQ(prediction_accuracy(counts, counts), 1.0);
}

TEST(PredictionAccuracy, EmptyGroupsScoreFullMarks) {
  const std::vector<std::size_t> zeros{0, 0};
  EXPECT_DOUBLE_EQ(prediction_accuracy(zeros, zeros), 1.0);
}

TEST(PredictionAccuracy, KnownPartialScores) {
  // Group 0: |5-10|/10 -> 0.5; group 1: exact -> 1.0; mean 0.75.
  EXPECT_DOUBLE_EQ(
      prediction_accuracy(std::vector<std::size_t>{5, 4},
                          std::vector<std::size_t>{10, 4}),
      0.75);
}

TEST(PredictionAccuracy, TotallyWrongIsZero) {
  EXPECT_DOUBLE_EQ(prediction_accuracy(std::vector<std::size_t>{0},
                                       std::vector<std::size_t>{100}),
                   0.0);
}

TEST(PredictionAccuracy, Validation) {
  EXPECT_THROW(prediction_accuracy(std::vector<std::size_t>{1},
                                   std::vector<std::size_t>{1, 2}),
               std::invalid_argument);
  EXPECT_THROW(prediction_accuracy(std::vector<std::size_t>{},
                                   std::vector<std::size_t>{}),
               std::invalid_argument);
}

TEST(WalkForward, PerfectOnPeriodicHistory) {
  // With a full period of *unambiguous* states in the knowledge base,
  // nearest-neighbour successor prediction nails a periodic workload.
  const auto history = periodic_history({2, 5, 9, 13}, 6);
  const auto accuracy = walk_forward_accuracy(history, 8);
  ASSERT_TRUE(accuracy.has_value());
  EXPECT_NEAR(*accuracy, 1.0, 1e-12);
}

TEST(WalkForward, AccuracyImprovesWithHistory) {
  // Noisy quasi-periodic data: more knowledge -> better (or equal) score.
  util::rng rng{5};
  std::vector<trace::time_slot> history;
  const std::vector<std::size_t> pattern{3, 8, 15, 22, 15, 8};
  for (std::size_t i = 0; i < 48; ++i) {
    const auto noise = static_cast<std::size_t>(rng.uniform_int(0, 2));
    history.push_back(slot_with(2, 1, pattern[i % pattern.size()] + noise));
  }
  const auto early = walk_forward_accuracy(history, 3);
  const auto late = walk_forward_accuracy(history, 24);
  ASSERT_TRUE(early.has_value());
  ASSERT_TRUE(late.has_value());
  // Noise keeps this from being strictly monotone; allow a small slack.
  EXPECT_GE(*late + 0.03, *early);
  EXPECT_GT(*late, 0.8);
}

TEST(WalkForward, DegenerateSizesReturnNothing) {
  const auto history = periodic_history({1, 2}, 3);
  EXPECT_FALSE(walk_forward_accuracy(history, 0).has_value());
  EXPECT_FALSE(walk_forward_accuracy(history, 1).has_value());
  EXPECT_FALSE(walk_forward_accuracy(history, history.size()).has_value());
}

TEST(CrossValidate, TenFoldOnPeriodicDataScoresHigh) {
  const auto history = periodic_history({2, 5, 9, 5, 3, 7}, 10);  // 60 slots
  const auto result = cross_validate(history, 10);
  EXPECT_EQ(result.fold_accuracy.size(), 10u);
  EXPECT_GT(result.mean_accuracy, 0.9);
}

TEST(CrossValidate, Validation) {
  const auto history = periodic_history({1, 2}, 2);
  EXPECT_THROW(cross_validate(history, 1), std::invalid_argument);
  EXPECT_THROW(cross_validate(history, 10), std::invalid_argument);
}

TEST(PredictionModeNames, Stable) {
  EXPECT_STREQ(to_string(prediction_mode::successor), "successor");
  EXPECT_STREQ(to_string(prediction_mode::match), "match");
}

}  // namespace
}  // namespace mca::core
