#include "tasks/task.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace mca::tasks {
namespace {

class TaskPoolTest : public ::testing::Test {
 protected:
  task_pool pool_;
};

TEST_F(TaskPoolTest, HasExactlyTenTasks) { EXPECT_EQ(pool_.size(), 10u); }

TEST_F(TaskPoolTest, AllNamesDistinct) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    names.insert(std::string{pool_.at(i).name()});
  }
  EXPECT_EQ(names.size(), 10u);
}

TEST_F(TaskPoolTest, FindLocatesEveryTask) {
  for (const char* name :
       {"minimax", "nqueens", "quicksort", "bubblesort", "mergesort",
        "fibonacci", "sieve", "knapsack", "matmul", "fft"}) {
    EXPECT_NE(pool_.find(name), nullptr) << name;
  }
  EXPECT_EQ(pool_.find("does-not-exist"), nullptr);
}

TEST_F(TaskPoolTest, RandomRequestsStayInRange) {
  util::rng rng{42};
  for (int i = 0; i < 500; ++i) {
    const auto request = pool_.random_request(rng);
    ASSERT_NE(request.algorithm, nullptr);
    EXPECT_GE(request.size, request.algorithm->min_size());
    EXPECT_LE(request.size, request.algorithm->max_size());
    EXPECT_GT(request.work_units(), 0.0);
  }
}

TEST_F(TaskPoolTest, RandomRequestsCoverAllTasks) {
  util::rng rng{7};
  std::set<std::string> seen;
  for (int i = 0; i < 300; ++i) {
    seen.insert(std::string{pool_.random_request(rng).algorithm->name()});
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST_F(TaskPoolTest, StaticMinimaxUsesDefaultSize) {
  const auto request = pool_.static_minimax_request();
  EXPECT_EQ(request.algorithm->name(), "minimax");
  EXPECT_EQ(request.size, request.algorithm->default_size());
  // The paper's static benchmark task should be the heavyweight of the
  // pool: ~280 work units (≈280 ms on the reference core).
  EXPECT_NEAR(request.work_units(), 280.0, 5.0);
}

TEST_F(TaskPoolTest, MeanRandomWorkIsModerate) {
  const double mean = pool_.mean_random_work_units();
  // Random pool draws average a few tens of work units — the calibration
  // the Fig. 4 characterization relies on.
  EXPECT_GT(mean, 10.0);
  EXPECT_LT(mean, 60.0);
}

TEST_F(TaskPoolTest, FftSizesArePowersOfTwo) {
  util::rng rng{11};
  for (int i = 0; i < 2'000; ++i) {
    const auto request = pool_.random_request(rng);
    if (request.algorithm->name() == "fft") {
      EXPECT_EQ(request.size & (request.size - 1), 0u);
    }
  }
}

TEST(TaskRequest, NullAlgorithmHasZeroWork) {
  task_request empty;
  EXPECT_EQ(empty.work_units(), 0.0);
}

// --- correctness of the actual algorithm implementations ---

TEST(Fibonacci, KnownValues) {
  const auto fib = make_fibonacci();
  util::rng rng{1};
  EXPECT_EQ(fib->execute(10, rng), 55u);
  EXPECT_EQ(fib->execute(20, rng), 6'765u);
  EXPECT_EQ(fib->execute(1, rng), 1u);
  EXPECT_EQ(fib->execute(0, rng), 0u);
}

TEST(Fibonacci, ThrowsOnOversize) {
  const auto fib = make_fibonacci();
  util::rng rng{1};
  EXPECT_THROW(fib->execute(46, rng), std::invalid_argument);
}

TEST(Nqueens, KnownSolutionCounts) {
  const auto nq = make_nqueens();
  util::rng rng{1};
  EXPECT_EQ(nq->execute(1, rng), 1u);
  EXPECT_EQ(nq->execute(4, rng), 2u);
  EXPECT_EQ(nq->execute(6, rng), 4u);
  EXPECT_EQ(nq->execute(8, rng), 92u);
  EXPECT_EQ(nq->execute(9, rng), 352u);
}

TEST(Nqueens, ThrowsOutsideBoard) {
  const auto nq = make_nqueens();
  util::rng rng{1};
  EXPECT_THROW(nq->execute(0, rng), std::invalid_argument);
  EXPECT_THROW(nq->execute(17, rng), std::invalid_argument);
}

TEST(Minimax, DeterministicAndDepthSensitive) {
  const auto mm = make_minimax();
  util::rng rng{1};
  const auto full = mm->execute(9, rng);
  EXPECT_EQ(full, mm->execute(9, rng));  // deterministic
  EXPECT_NE(full, mm->execute(5, rng));  // depth matters
}

TEST(Minimax, FullTreeVisitsKnownNodeCount) {
  const auto mm = make_minimax();
  util::rng rng{1};
  // Low 48 bits of the checksum are the visited-node count; the full
  // tic-tac-toe game tree with win cut-offs has a fixed size.
  const auto nodes = mm->execute(9, rng) & ((1ULL << 48) - 1);
  EXPECT_EQ(nodes, 549'946u);
}

TEST(Minimax, ThrowsOnBadDepth) {
  const auto mm = make_minimax();
  util::rng rng{1};
  EXPECT_THROW(mm->execute(0, rng), std::invalid_argument);
  EXPECT_THROW(mm->execute(10, rng), std::invalid_argument);
}

TEST(Sorting, QuicksortAndMergesortAgree) {
  // Same rng seed -> same random input array -> identical sorted checksum.
  const auto quick = make_quicksort();
  const auto merge = make_mergesort();
  for (std::uint32_t n : {1u, 2u, 100u, 5'000u, 50'000u}) {
    util::rng a{99};
    util::rng b{99};
    EXPECT_EQ(quick->execute(n, a), merge->execute(n, b)) << "n=" << n;
  }
}

TEST(Sorting, BubblesortAgreesWithMergesort) {
  const auto bubble = make_bubblesort();
  const auto merge = make_mergesort();
  for (std::uint32_t n : {1u, 2u, 500u, 2'000u}) {
    util::rng a{123};
    util::rng b{123};
    EXPECT_EQ(bubble->execute(n, a), merge->execute(n, b)) << "n=" << n;
  }
}

TEST(Sorting, ThrowOnZeroSize) {
  util::rng rng{1};
  EXPECT_THROW(make_quicksort()->execute(0, rng), std::invalid_argument);
  EXPECT_THROW(make_bubblesort()->execute(0, rng), std::invalid_argument);
  EXPECT_THROW(make_mergesort()->execute(0, rng), std::invalid_argument);
}

TEST(Sieve, ChecksumEncodesPrimeCount) {
  const auto sieve = make_sieve();
  util::rng rng{1};
  // pi(100) = 25; count is packed in the high bits.
  const auto checksum = sieve->execute(100, rng);
  EXPECT_EQ(checksum >> 40, 25u);
  // pi(1000) = 168.
  EXPECT_EQ(sieve->execute(1'000, rng) >> 40, 168u);
}

TEST(Sieve, ThrowsBelowTwo) {
  util::rng rng{1};
  EXPECT_THROW(make_sieve()->execute(1, rng), std::invalid_argument);
}

TEST(Knapsack, DeterministicForSeedAndBounded) {
  const auto ks = make_knapsack();
  util::rng a{5};
  util::rng b{5};
  const auto v1 = ks->execute(150, a);
  const auto v2 = ks->execute(150, b);
  EXPECT_EQ(v1, v2);
  // Value bounded by items * max item value.
  EXPECT_LE(v1, 150u * 100u);
  EXPECT_GT(v1, 0u);
}

TEST(Matmul, DeterministicForSeed) {
  const auto mm = make_matrix_multiply();
  util::rng a{5};
  util::rng b{5};
  EXPECT_EQ(mm->execute(64, a), mm->execute(64, b));
}

TEST(Fft, EnergyConservationChecksumStable) {
  const auto fft = make_fft();
  util::rng a{5};
  util::rng b{5};
  EXPECT_EQ(fft->execute(1u << 14, a), fft->execute(1u << 14, b));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  util::rng rng{1};
  EXPECT_THROW(make_fft()->execute(1000, rng), std::invalid_argument);
  EXPECT_THROW(make_fft()->execute(1, rng), std::invalid_argument);
}

// Property sweep: work_units must be positive and monotone non-decreasing
// in size for every pool member.
class WorkUnitsMonotone : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkUnitsMonotone, PositiveAndNonDecreasing) {
  task_pool pool;
  const task& t = pool.at(GetParam());
  double last = 0.0;
  const std::uint32_t lo = t.min_size();
  const std::uint32_t hi = t.max_size();
  for (int step = 0; step <= 10; ++step) {
    const auto size = static_cast<std::uint32_t>(
        lo + (static_cast<std::uint64_t>(hi - lo) * step) / 10);
    const double wu = t.work_units(size);
    EXPECT_GT(wu, 0.0) << t.name() << " size=" << size;
    EXPECT_GE(wu, last - 1e-12) << t.name() << " size=" << size;
    last = wu;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTasks, WorkUnitsMonotone,
                         ::testing::Range<std::size_t>(0, 10));

}  // namespace
}  // namespace mca::tasks
