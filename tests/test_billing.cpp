#include "cloud/billing.h"

#include <gtest/gtest.h>

#include "util/sim_time.h"

namespace mca::cloud {
namespace {

instance_type dollar_type(const char* name = "t.one", double price = 1.0) {
  instance_type t;
  t.name = name;
  t.cost_per_hour = price;
  return t;
}

TEST(Billing, StartedHourIsBilledInFull) {
  billing_meter meter;
  meter.on_launch(1, dollar_type(), 0.0);
  meter.on_terminate(1, util::minutes(10));
  EXPECT_DOUBLE_EQ(meter.total_cost(util::hours(5)), 1.0);
}

TEST(Billing, CeilOfPartialHours) {
  billing_meter meter;
  meter.on_launch(1, dollar_type(), 0.0);
  meter.on_terminate(1, util::hours(2.5));
  EXPECT_DOUBLE_EQ(meter.total_cost(util::hours(5)), 3.0);
}

TEST(Billing, ExactHoursNotOverbilled) {
  billing_meter meter;
  meter.on_launch(1, dollar_type(), 0.0);
  meter.on_terminate(1, util::hours(2.0));
  EXPECT_DOUBLE_EQ(meter.total_cost(util::hours(5)), 2.0);
}

TEST(Billing, RunningInstancesAccrue) {
  billing_meter meter;
  meter.on_launch(1, dollar_type(), util::hours(1.0));
  EXPECT_DOUBLE_EQ(meter.total_cost(util::hours(1.5)), 1.0);
  EXPECT_DOUBLE_EQ(meter.total_cost(util::hours(3.2)), 3.0);
  EXPECT_EQ(meter.active_instances(), 1u);
}

TEST(Billing, MixedTypesSummedAndQueryable) {
  billing_meter meter;
  meter.on_launch(1, dollar_type("cheap", 0.5), 0.0);
  meter.on_launch(2, dollar_type("pricey", 2.0), 0.0);
  meter.on_terminate(1, util::hours(1.0));
  meter.on_terminate(2, util::hours(2.0));
  EXPECT_DOUBLE_EQ(meter.total_cost(util::hours(3)), 0.5 + 4.0);
  EXPECT_DOUBLE_EQ(meter.cost_for_type("cheap", util::hours(3)), 0.5);
  EXPECT_DOUBLE_EQ(meter.cost_for_type("pricey", util::hours(3)), 4.0);
  EXPECT_DOUBLE_EQ(meter.cost_for_type("unknown", util::hours(3)), 0.0);
}

TEST(Billing, InstanceHoursTracked) {
  billing_meter meter;
  meter.on_launch(1, dollar_type(), 0.0);
  meter.on_terminate(1, util::hours(1.5));
  meter.on_launch(2, dollar_type(), 0.0);
  EXPECT_DOUBLE_EQ(meter.total_instance_hours(util::hours(0.5)), 3.0);
}

TEST(Billing, DoubleLaunchThrows) {
  billing_meter meter;
  meter.on_launch(1, dollar_type(), 0.0);
  EXPECT_THROW(meter.on_launch(1, dollar_type(), 1.0), std::logic_error);
}

TEST(Billing, TerminateUnknownThrows) {
  billing_meter meter;
  EXPECT_THROW(meter.on_terminate(9, 0.0), std::logic_error);
}

TEST(Billing, RelaunchAfterTerminateAllowed) {
  billing_meter meter;
  meter.on_launch(1, dollar_type(), 0.0);
  meter.on_terminate(1, util::hours(1));
  meter.on_launch(1, dollar_type(), util::hours(2));
  meter.on_terminate(1, util::hours(3));
  EXPECT_DOUBLE_EQ(meter.total_cost(util::hours(4)), 2.0);
}

}  // namespace
}  // namespace mca::cloud
