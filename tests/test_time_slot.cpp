#include "trace/time_slot.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace mca::trace {
namespace {

TEST(TimeSlot, StartsEmpty) {
  time_slot slot{3};
  EXPECT_EQ(slot.group_count(), 3u);
  EXPECT_TRUE(slot.empty());
  EXPECT_EQ(slot.total_users(), 0u);
}

TEST(TimeSlot, AddKeepsUsersSortedAndUnique) {
  time_slot slot{2};
  slot.add_user(0, 5);
  slot.add_user(0, 1);
  slot.add_user(0, 9);
  slot.add_user(0, 5);  // duplicate absorbed
  const auto users = slot.users_in(0);
  ASSERT_EQ(users.size(), 3u);
  EXPECT_EQ(users[0], 1u);
  EXPECT_EQ(users[1], 5u);
  EXPECT_EQ(users[2], 9u);
}

TEST(TimeSlot, GroupsAreIndependent) {
  time_slot slot{3};
  slot.add_user(0, 1);
  slot.add_user(2, 1);
  slot.add_user(2, 2);
  EXPECT_EQ(slot.user_count(0), 1u);
  EXPECT_EQ(slot.user_count(1), 0u);
  EXPECT_EQ(slot.user_count(2), 2u);
  EXPECT_EQ(slot.total_users(), 3u);
  EXPECT_EQ(slot.group_counts(), (std::vector<std::size_t>{1, 0, 2}));
}

TEST(TimeSlot, UnknownGroupThrows) {
  time_slot slot{2};
  EXPECT_THROW(slot.add_user(2, 1), std::out_of_range);
  EXPECT_THROW(slot.users_in(5), std::out_of_range);
}

TEST(TimeSlot, EqualityComparesContents) {
  time_slot a{2};
  time_slot b{2};
  EXPECT_EQ(a, b);
  a.add_user(0, 1);
  EXPECT_NE(a, b);
  b.add_user(0, 1);
  EXPECT_EQ(a, b);
}

TEST(GroupDistance, ZeroForIdenticalGroups) {
  time_slot a{1};
  time_slot b{1};
  a.add_user(0, 1);
  a.add_user(0, 2);
  b.add_user(0, 2);
  b.add_user(0, 1);  // same set, different insertion order
  EXPECT_EQ(group_distance(a, b, 0), 0u);
}

TEST(GroupDistance, CountsUserChurn) {
  time_slot a{1};
  time_slot b{1};
  a.add_user(0, 1);
  a.add_user(0, 2);
  b.add_user(0, 2);
  b.add_user(0, 3);
  // Sorted sequences {1,2} vs {2,3}: substitute both ends -> 2.
  EXPECT_EQ(group_distance(a, b, 0), 2u);
}

TEST(GroupDistance, EmptyVsPopulated) {
  time_slot a{1};
  time_slot b{1};
  b.add_user(0, 1);
  b.add_user(0, 2);
  b.add_user(0, 3);
  EXPECT_EQ(group_distance(a, b, 0), 3u);
}

TEST(SlotDistance, SumsAcrossGroups) {
  time_slot a{3};
  time_slot b{3};
  a.add_user(0, 1);         // group 0: {1} vs {} -> 1
  b.add_user(1, 7);         // group 1: {} vs {7} -> 1
  a.add_user(2, 3);         // group 2: {3} vs {3} -> 0
  b.add_user(2, 3);
  EXPECT_EQ(slot_distance(a, b), 2u);
}

TEST(SlotDistance, ZeroForEqualSlots) {
  time_slot a{2};
  a.add_user(0, 1);
  a.add_user(1, 2);
  EXPECT_EQ(slot_distance(a, a), 0u);
}

TEST(SlotDistance, GroupCountMismatchThrows) {
  time_slot a{2};
  time_slot b{3};
  EXPECT_THROW(slot_distance(a, b), std::invalid_argument);
}

TEST(SlotDistance, SymmetricOverRandomSlots) {
  mca::util::rng rng{11};
  for (int round = 0; round < 30; ++round) {
    time_slot a{4};
    time_slot b{4};
    for (int i = 0; i < 20; ++i) {
      a.add_user(static_cast<group_id>(rng.uniform_int(0, 3)),
                 static_cast<user_id>(rng.uniform_int(0, 15)));
      b.add_user(static_cast<group_id>(rng.uniform_int(0, 3)),
                 static_cast<user_id>(rng.uniform_int(0, 15)));
    }
    EXPECT_EQ(slot_distance(a, b), slot_distance(b, a));
  }
}

}  // namespace
}  // namespace mca::trace
