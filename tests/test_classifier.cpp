#include "core/classifier.h"

#include <gtest/gtest.h>

#include <vector>

namespace mca::core {
namespace {

classifier_config fast_config() {
  classifier_config config;
  config.rounds_per_level = 3;
  config.load_levels = {1, 10, 20, 30, 40, 60, 80, 100};
  config.seed = 99;
  return config;
}

class ClassifierTest : public ::testing::Test {
 protected:
  tasks::task_pool pool_;
};

TEST_F(ClassifierTest, CharacterizationCurveCoversLevels) {
  const auto profile = characterize_type(cloud::type_by_name("t2.nano"),
                                         pool_, fast_config());
  EXPECT_EQ(profile.type_name, "t2.nano");
  EXPECT_EQ(profile.curve.size(), fast_config().load_levels.size());
  EXPECT_GT(profile.solo_mean_ms, 0.0);
}

TEST_F(ClassifierTest, ResponseTimeDegradesWithLoadOnNarrowTypes) {
  const auto profile = characterize_type(cloud::type_by_name("t2.nano"),
                                         pool_, fast_config());
  // Single-core server: 100 concurrent users must be far slower than 1.
  EXPECT_GT(profile.curve.back().mean_ms, profile.curve.front().mean_ms * 10);
}

TEST_F(ClassifierTest, WideTypesBarelyDegrade) {
  const auto profile = characterize_type(cloud::type_by_name("m4.10xlarge"),
                                         pool_, fast_config());
  // 40 cores: even 100 users only ~2.5x the solo time.
  EXPECT_LT(profile.curve.back().mean_ms, profile.curve.front().mean_ms * 5);
}

TEST_F(ClassifierTest, CapacityGrowsWithInstanceSize) {
  const auto nano = characterize_type(cloud::type_by_name("t2.nano"), pool_,
                                      fast_config());
  const auto large = characterize_type(cloud::type_by_name("t2.large"), pool_,
                                       fast_config());
  const auto m4 = characterize_type(cloud::type_by_name("m4.10xlarge"), pool_,
                                    fast_config());
  EXPECT_LT(nano.capacity_users, large.capacity_users);
  EXPECT_LT(large.capacity_users, m4.capacity_users);
  // Ks is expressed in requests/minute and equals the user capacity under
  // the paper's one-request-per-user-per-minute benchmark.
  EXPECT_DOUBLE_EQ(nano.capacity_requests_per_min,
                   static_cast<double>(nano.capacity_users));
}

TEST_F(ClassifierTest, ValidationErrors) {
  classifier_config no_levels = fast_config();
  no_levels.load_levels.clear();
  EXPECT_THROW(characterize_type(cloud::type_by_name("t2.nano"), pool_,
                                 no_levels),
               std::invalid_argument);
  classifier_config no_rounds = fast_config();
  no_rounds.rounds_per_level = 0;
  EXPECT_THROW(characterize_type(cloud::type_by_name("t2.nano"), pool_,
                                 no_rounds),
               std::invalid_argument);
  EXPECT_THROW(classify({}, pool_, fast_config()), std::invalid_argument);
}

TEST_F(ClassifierTest, CreditThrottlingWouldCorruptCharacterization) {
  // Why the credit model is off by default (DESIGN.md): with credits
  // enabled and a near-empty bank, a burstable type characterizes far
  // below its paper-mode capacity.
  auto config = fast_config();
  config.rounds_per_level = 4;
  classifier_config throttled = config;
  throttled.instance_options.enable_cpu_credits = true;
  throttled.instance_options.initial_credits_core_ms = 100.0;
  const auto normal =
      characterize_type(cloud::type_by_name("t2.nano"), pool_, config);
  const auto starved =
      characterize_type(cloud::type_by_name("t2.nano"), pool_, throttled);
  EXPECT_LT(starved.capacity_users, normal.capacity_users);
  EXPECT_GT(starved.curve.back().mean_ms, normal.curve.back().mean_ms * 2.0);
}

class FullCatalogClassification : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Classifying the full catalog stresses every type; do it once.
    tasks::task_pool pool;
    map_ = new acceleration_map{
        classify(cloud::ec2_catalog(), pool, fast_config())};
  }
  static void TearDownTestSuite() {
    delete map_;
    map_ = nullptr;
  }
  static const acceleration_map* map_;
};

const acceleration_map* FullCatalogClassification::map_ = nullptr;

TEST_F(FullCatalogClassification, MicroIsDemotedToGroupZero) {
  // The paper's Fig. 6 anomaly: micro costs more than nano yet performs
  // worse under load, so it lands in group 0.
  EXPECT_EQ(map_->group_of("t2.micro"), 0u);
}

TEST_F(FullCatalogClassification, NanoAndSmallShareLevelOne) {
  EXPECT_EQ(map_->group_of("t2.nano"), 1u);
  EXPECT_EQ(map_->group_of("t2.small"), 1u);
}

TEST_F(FullCatalogClassification, MediumAndLargeShareALevel) {
  EXPECT_EQ(map_->group_of("t2.medium"), map_->group_of("t2.large"));
  EXPECT_GT(map_->group_of("t2.medium"), map_->group_of("t2.nano"));
}

TEST_F(FullCatalogClassification, M4FamilySharesALevel) {
  EXPECT_EQ(map_->group_of("m4.4xlarge"), map_->group_of("m4.10xlarge"));
  EXPECT_GT(map_->group_of("m4.4xlarge"), map_->group_of("t2.large"));
}

TEST_F(FullCatalogClassification, ComputeOptimizedTopsTheLevels) {
  // c4.8xlarge "surpassed our previous acceleration levels" -> level 4.
  EXPECT_EQ(map_->group_of("c4.8xlarge"), map_->max_group());
  EXPECT_GT(map_->group_of("c4.8xlarge"), map_->group_of("m4.10xlarge"));
}

TEST_F(FullCatalogClassification, ProducesThreeRegularLevelsPlusAnomalyAndC4) {
  // Groups: 0 (micro), 1 (nano/small), 2 (medium/large), 3 (m4s), 4 (c4).
  EXPECT_EQ(map_->group_count(), 5u);
}

TEST_F(FullCatalogClassification, CapacityIncreasesWithLevel) {
  for (group_id g = 2; g <= map_->max_group(); ++g) {
    EXPECT_GE(map_->group(g).capacity_users,
              map_->group(g - 1).capacity_users)
        << "group " << g;
  }
}

TEST_F(FullCatalogClassification, EveryCatalogTypeIsClassified) {
  for (const auto& type : cloud::ec2_catalog()) {
    EXPECT_TRUE(map_->contains(type.name)) << type.name;
  }
}

}  // namespace
}  // namespace mca::core
