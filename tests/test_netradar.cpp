#include "net/netradar.h"

#include <gtest/gtest.h>

namespace mca::net {
namespace {

TEST(Netradar, CampaignRespectsSampleCount) {
  util::rng rng{1};
  const auto& op = netradar_operators()[0];
  const auto samples = generate_campaign(op, technology::lte, 5'000, rng);
  EXPECT_EQ(samples.size(), 5'000u);
  for (const auto& s : samples) {
    EXPECT_GE(s.hour_of_day, 0.0);
    EXPECT_LT(s.hour_of_day, 24.0);
    EXPECT_GT(s.rtt_ms, 0.0);
  }
}

TEST(Netradar, CampaignSummaryNearCalibrationTargets) {
  util::rng rng{2};
  const auto& op = operator_by_name("beta");
  const auto samples = generate_campaign(op, technology::threeg, 200'000, rng);
  const auto s = campaign_summary(samples);
  EXPECT_NEAR(s.mean, op.threeg.mean_ms, op.threeg.mean_ms * 0.10);
  EXPECT_NEAR(s.median, op.threeg.median_ms, op.threeg.median_ms * 0.10);
  EXPECT_NEAR(s.stddev, op.threeg.stddev_ms, op.threeg.stddev_ms * 0.15);
}

TEST(Netradar, ThreeGIsSlowerThanLte) {
  util::rng rng{3};
  const auto& op = operator_by_name("alpha");
  const auto threeg = generate_campaign(op, technology::threeg, 50'000, rng);
  const auto lte = generate_campaign(op, technology::lte, 50'000, rng);
  EXPECT_GT(campaign_summary(threeg).mean, campaign_summary(lte).mean * 2.0);
}

TEST(Netradar, HourlyAggregationCoversDay) {
  util::rng rng{4};
  const auto& op = netradar_operators()[0];
  const auto samples = generate_campaign(op, technology::lte, 100'000, rng);
  const auto series = aggregate_hourly(samples);
  ASSERT_EQ(series.mean_rtt_ms.size(), 24u);
  std::size_t total = 0;
  for (std::size_t h = 0; h < 24; ++h) total += series.sample_count[h];
  EXPECT_EQ(total, samples.size());
  // Daytime hours must carry far more measurements than deep night.
  EXPECT_GT(series.sample_count[20], series.sample_count[3] * 2);
}

TEST(Netradar, DiurnalCongestionVisibleInHourlyMeans) {
  util::rng rng{5};
  const auto& op = operator_by_name("gamma");
  const auto samples = generate_campaign(op, technology::threeg, 400'000, rng);
  const auto series = aggregate_hourly(samples);
  // Evening busy hour should show a higher mean RTT than pre-dawn.
  EXPECT_GT(series.mean_rtt_ms[20], series.mean_rtt_ms[4]);
}

TEST(Netradar, EmptySummaryThrows) {
  EXPECT_THROW(campaign_summary({}), std::invalid_argument);
}

TEST(Netradar, EmptyAggregationIsAllZero) {
  const auto series = aggregate_hourly({});
  for (std::size_t h = 0; h < 24; ++h) {
    EXPECT_EQ(series.sample_count[h], 0u);
    EXPECT_EQ(series.mean_rtt_ms[h], 0.0);
  }
}

}  // namespace
}  // namespace mca::net
