#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <set>
#include <vector>

namespace mca::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  rng a{42};
  rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a{1};
  rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  rng r{7};
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  rng r{7};
  double total = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) total += r.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  rng r{11};
  for (int i = 0; i < 1'000; ++i) {
    const double x = r.uniform(-5.0, 3.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  rng r{3};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(r.uniform_int(1, 6));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(Rng, UniformIntSinglePoint) {
  rng r{3};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntThrowsOnInvertedBounds) {
  rng r{3};
  EXPECT_THROW(r.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  rng r{9};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRateMatchesProbability) {
  rng r{10};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  rng r{13};
  double total = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) total += r.exponential(2.0);
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, ExponentialThrowsOnNonPositiveRate) {
  rng r{13};
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(r.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  rng r{17};
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, LognormalMedianIsExpMu) {
  rng r{19};
  std::vector<double> xs;
  const int n = 100'001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(r.lognormal(2.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], std::exp(2.0), 0.15);
}

TEST(Rng, ForkProducesIndependentStream) {
  rng parent{23};
  rng child = parent.fork();
  // Child and parent should not produce identical sequences.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministic) {
  rng a{23};
  rng b{23};
  rng ca = a.fork();
  rng cb = b.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, PickReturnsElementFromSpan) {
  rng r{29};
  const std::vector<int> items{1, 2, 3, 4};
  for (int i = 0; i < 100; ++i) {
    const int x = r.pick(std::span<const int>{items});
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 4);
  }
}

TEST(Rng, PickThrowsOnEmpty) {
  rng r{29};
  const std::vector<int> empty;
  EXPECT_THROW(r.pick(std::span<const int>{empty}), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  rng r{31};
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = items;
  r.shuffle(std::span<int>{items});
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(Rng, ShuffleChangesOrderEventually) {
  rng r{31};
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  const auto original = items;
  bool changed = false;
  for (int i = 0; i < 10 && !changed; ++i) {
    r.shuffle(std::span<int>{items});
    changed = items != original;
  }
  EXPECT_TRUE(changed);
}

TEST(RngSplit, DeterministicPureFunction) {
  rng a = rng::split(42, 7);
  rng b = rng::split(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngSplit, AdjacentStreamsDiverge) {
  rng a = rng::split(42, 0);
  rng b = rng::split(42, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngSplit, AdjacentSeedsDiverge) {
  rng a = rng::split(42, 3);
  rng b = rng::split(43, 3);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

// Statistical smoke test for stream independence: across a sweep's worth
// of streams, (1) every stream's uniforms look uniform, (2) no pair of
// adjacent streams is linearly correlated, and (3) the streams' raw words
// are bit-balanced.  `seed + i` seeding fails none of these on its own,
// but the split construction must not regress them either.
TEST(RngSplit, StreamIndependenceSmoke) {
  constexpr int kStreams = 16;
  constexpr int kDraws = 20'000;
  std::vector<std::vector<double>> uniforms(kStreams);
  double bit_total = 0.0;
  for (int s = 0; s < kStreams; ++s) {
    rng stream = rng::split(2017, static_cast<std::uint64_t>(s));
    uniforms[s].reserve(kDraws);
    for (int i = 0; i < kDraws; ++i) {
      const std::uint64_t word = stream();
      bit_total += std::popcount(word);
      uniforms[s].push_back(static_cast<double>(word >> 11) * 0x1.0p-53);
    }
  }
  // (1) per-stream mean near 1/2 (sd of the mean ~ 0.002).
  for (int s = 0; s < kStreams; ++s) {
    double mean = 0.0;
    for (const double u : uniforms[s]) mean += u;
    mean /= kDraws;
    EXPECT_NEAR(mean, 0.5, 0.01) << "stream " << s;
  }
  // (2) adjacent-stream correlation indistinguishable from zero
  // (|r| ~ N(0, 1/sqrt(n)); 5/sqrt(n) ~ 0.035).
  for (int s = 0; s + 1 < kStreams; ++s) {
    double xy = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      xy += (uniforms[s][i] - 0.5) * (uniforms[s + 1][i] - 0.5);
    }
    const double correlation = (xy / kDraws) / (1.0 / 12.0);
    EXPECT_LT(std::abs(correlation), 0.035) << "streams " << s << "," << s + 1;
  }
  // (3) bits are balanced: mean popcount of a uniform word is 32.
  EXPECT_NEAR(bit_total / (kStreams * kDraws), 32.0, 0.05);
}

TEST(Splitmix, KnownGolden) {
  // splitmix64 with a fixed state must be stable across platforms.
  std::uint64_t state = 0;
  const auto first = splitmix64(state);
  const auto second = splitmix64(state);
  EXPECT_NE(first, second);
  std::uint64_t replay = 0;
  EXPECT_EQ(splitmix64(replay), first);
}

}  // namespace
}  // namespace mca::util
