// Cross-check net for the bounded-variable simplex: every randomized
// problem is solved twice — once with box upper bounds handled implicitly
// (the production path) and once with each finite upper bound rewritten as
// an explicit `x_j <= u` constraint row over an unbounded variable (the
// formulation the pre-rewrite tableau materialized internally).  The two
// models describe the same polytope, so statuses must agree and optimal
// objectives must coincide; any bound-flip, flipped-column, or
// at-upper-extraction bug shows up as a divergence.
#include "ilp/branch_bound.h"
#include "ilp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace mca::ilp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Rewrites every finite variable upper bound of `p` as an explicit
/// less-equal row, leaving the variable itself unbounded above.
problem explicit_row_formulation(const problem& p) {
  problem out;
  for (std::size_t j = 0; j < p.variable_count(); ++j) {
    const auto& v = p.variable(j);
    if (v.is_integer) {
      out.add_integer_variable(v.cost, v.lower, kInf, v.name);
    } else {
      out.add_variable(v.cost, v.lower, kInf, v.name);
    }
  }
  for (std::size_t i = 0; i < p.constraint_count(); ++i) {
    const auto& c = p.constraint(i);
    out.add_constraint(c.terms, c.rel, c.rhs, c.name);
  }
  for (std::size_t j = 0; j < p.variable_count(); ++j) {
    const auto& v = p.variable(j);
    if (std::isfinite(v.upper)) {
      out.add_constraint({{j, 1.0}}, relation::less_equal, v.upper);
    }
  }
  return out;
}

/// Random box-constrained LP/ILP: mixed-sign costs (so optima land on both
/// bounds), a sprinkle of infinite uppers, and mixed-sense rows.
problem random_boxed(util::rng& rng, bool integer) {
  problem p;
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 6));
  for (std::size_t j = 0; j < n; ++j) {
    const double cost = rng.uniform(-3.0, 3.0);
    const double lower = rng.uniform(0.0, 2.0);
    const double upper = rng.uniform(0.0, 1.0) < 0.25
                             ? kInf
                             : lower + rng.uniform(1.0, 8.0);
    if (integer) {
      const double lo = std::floor(lower);
      const double hi =
          std::isfinite(upper) ? lo + std::ceil(upper - lower) : kInf;
      p.add_integer_variable(cost, lo, hi);
    } else {
      p.add_variable(cost, lower, upper);
    }
  }
  const int rows = static_cast<int>(rng.uniform_int(1, 4));
  for (int r = 0; r < rows; ++r) {
    std::vector<linear_term> terms;
    for (std::size_t j = 0; j < n; ++j) {
      const double coeff = rng.uniform(-1.0, 3.0);
      if (std::abs(coeff) > 0.15) terms.push_back({j, coeff});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    const double pick = rng.uniform(0.0, 1.0);
    const relation rel = pick < 0.5   ? relation::greater_equal
                         : pick < 0.9 ? relation::less_equal
                                      : relation::equal;
    p.add_constraint(std::move(terms), rel, rng.uniform(1.0, 15.0));
  }
  return p;
}

class BoundedVsExplicitRows : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BoundedVsExplicitRows, LpObjectivesAgree) {
  util::rng rng{GetParam()};
  for (int instance = 0; instance < 25; ++instance) {
    const problem boxed = random_boxed(rng, /*integer=*/false);
    const problem rows = explicit_row_formulation(boxed);
    const solution got = solve_lp(boxed);
    const solution want = solve_lp(rows);
    ASSERT_EQ(got.status, want.status) << "instance " << instance;
    if (got.status != solve_status::optimal) continue;
    EXPECT_NEAR(got.objective, want.objective, 1e-6)
        << "instance " << instance;
    EXPECT_TRUE(boxed.is_feasible(got.values, 1e-6))
        << "instance " << instance;
    // extract() promises values clamped inside the box — no -1e-10s.
    for (std::size_t j = 0; j < boxed.variable_count(); ++j) {
      EXPECT_GE(got.values[j], boxed.variable(j).lower)
          << "instance " << instance << " var " << j;
      EXPECT_LE(got.values[j], boxed.variable(j).upper)
          << "instance " << instance << " var " << j;
    }
  }
}

TEST_P(BoundedVsExplicitRows, IlpObjectivesAgree) {
  util::rng rng{GetParam() + 1000};
  for (int instance = 0; instance < 12; ++instance) {
    const problem boxed = random_boxed(rng, /*integer=*/true);
    const problem rows = explicit_row_formulation(boxed);
    const solution got = solve_ilp(boxed);
    const solution want = solve_ilp(rows);
    ASSERT_EQ(got.status, want.status) << "instance " << instance;
    if (got.status != solve_status::optimal) continue;
    EXPECT_NEAR(got.objective, want.objective, 1e-6)
        << "instance " << instance;
    EXPECT_TRUE(boxed.is_feasible(got.values, 1e-6))
        << "instance " << instance;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedVsExplicitRows,
                         ::testing::Range<std::uint64_t>(500, 520));

// Integer variables with *fractional* box bounds: legal per
// problem::is_feasible, and the case where reduced-cost tightening must
// not round its reach down (the variable's tableau-space offsets are not
// integers, so the floored reach would cut off true optima).  The oracle
// is brute force over the integer points inside the boxes.
class FractionalBoundsIlp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FractionalBoundsIlp, MatchesBruteForce) {
  util::rng rng{GetParam()};
  for (int instance = 0; instance < 20; ++instance) {
    problem p;
    const std::size_t n = 3;
    std::vector<int> lo(n), hi(n);
    for (std::size_t j = 0; j < n; ++j) {
      const double lower = rng.uniform(0.1, 1.9);   // deliberately fractional
      const double upper = lower + rng.uniform(2.0, 5.0);
      p.add_integer_variable(rng.uniform(-3.0, 3.0), lower, upper);
      lo[j] = static_cast<int>(std::ceil(lower));
      hi[j] = static_cast<int>(std::floor(upper));
    }
    const int rows = static_cast<int>(rng.uniform_int(1, 3));
    for (int r = 0; r < rows; ++r) {
      std::vector<linear_term> terms;
      for (std::size_t j = 0; j < n; ++j) {
        terms.push_back({j, rng.uniform(0.3, 2.5)});
      }
      p.add_constraint(std::move(terms),
                       rng.uniform(0.0, 1.0) < 0.5 ? relation::greater_equal
                                                   : relation::less_equal,
                       rng.uniform(2.0, 12.0));
    }

    double best = std::numeric_limits<double>::infinity();
    std::vector<double> x(n);
    for (int a = lo[0]; a <= hi[0]; ++a) {
      for (int b = lo[1]; b <= hi[1]; ++b) {
        for (int c = lo[2]; c <= hi[2]; ++c) {
          x = {static_cast<double>(a), static_cast<double>(b),
               static_cast<double>(c)};
          if (p.is_feasible(x, 1e-9)) {
            best = std::min(best, p.objective_value(x));
          }
        }
      }
    }

    const solution got = solve_ilp(p);
    if (std::isfinite(best)) {
      ASSERT_EQ(got.status, solve_status::optimal) << "instance " << instance;
      EXPECT_NEAR(got.objective, best, 1e-6) << "instance " << instance;
      EXPECT_TRUE(p.is_feasible(got.values, 1e-6)) << "instance " << instance;
    } else {
      EXPECT_EQ(got.status, solve_status::infeasible)
          << "instance " << instance;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FractionalBoundsIlp,
                         ::testing::Range<std::uint64_t>(900, 910));

TEST(BoundedSimplex, OptimumRestsOnUpperBounds) {
  // Maximize x + 2y inside boxes: both variables must finish exactly on
  // their upper bounds, which only the at-upper nonbasic state can
  // represent without bound rows.
  problem p;
  const auto x = p.add_variable(-1.0, 0.0, 4.0);
  const auto y = p.add_variable(-2.0, 0.0, 8.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, relation::less_equal, 100.0);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.values[x], 4.0, 1e-9);
  EXPECT_NEAR(s.values[y], 8.0, 1e-9);
  EXPECT_NEAR(s.objective, -20.0, 1e-9);
}

// Cross-check net for warm rhs updates (the batched allocator's path):
// one persistent tableau follows a random walk of right-hand sides via
// problem::set_constraint_rhs + sync_constraint_rhs + resolve, and after
// every step its optimum must match a cold solve of the mutated problem.
class WarmRhsWalk : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WarmRhsWalk, LpResolveMatchesColdSolve) {
  util::rng rng{GetParam()};
  for (int instance = 0; instance < 10; ++instance) {
    problem p = random_boxed(rng, /*integer=*/false);
    dense_tableau warm{p, 1e-9};
    simplex_options opts;
    solve_status status = warm.solve(opts);
    for (int step = 0; step < 8; ++step) {
      const std::size_t row =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(p.constraint_count()) - 1));
      p.set_constraint_rhs(row,
                           p.constraint(row).rhs + rng.uniform(-6.0, 6.0));
      warm.sync_constraint_rhs(row);
      status = status == solve_status::optimal ? warm.resolve(opts)
                                               : warm.solve(opts);
      const solution cold = solve_lp(p, opts);
      ASSERT_EQ(status, cold.status)
          << "instance " << instance << " step " << step;
      if (status != solve_status::optimal) continue;
      solution got;
      warm.extract(got);
      EXPECT_NEAR(got.objective, cold.objective, 1e-6)
          << "instance " << instance << " step " << step;
      EXPECT_TRUE(p.is_feasible(got.values, 1e-6))
          << "instance " << instance << " step " << step;
    }
  }
}

TEST_P(WarmRhsWalk, IlpWarmRootMatchesColdSolve) {
  util::rng rng{GetParam() + 4000};
  for (int instance = 0; instance < 6; ++instance) {
    problem p = random_boxed(rng, /*integer=*/true);
    dense_tableau root{p, 1e-9};
    const ilp_options opts;
    solve_status status = root.solve(opts.lp);
    std::vector<double> hint;
    for (int step = 0; step < 6; ++step) {
      const std::size_t row =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(p.constraint_count()) - 1));
      p.set_constraint_rhs(row,
                           p.constraint(row).rhs + rng.uniform(-4.0, 4.0));
      root.sync_constraint_rhs(row);
      status = status == solve_status::optimal ? root.resolve(opts.lp)
                                               : root.solve(opts.lp);
      // The persistent root stays pristine: branch & bound gets a copy,
      // plus the previous step's integral solution as incumbent hint.
      const solution warm = solve_ilp_warm(p, root, status, opts,
                                           hint.empty() ? nullptr : &hint);
      const solution cold = solve_ilp(p, opts);
      ASSERT_EQ(warm.status, cold.status)
          << "instance " << instance << " step " << step;
      if (warm.status != solve_status::optimal) continue;
      EXPECT_NEAR(warm.objective, cold.objective, 1e-6)
          << "instance " << instance << " step " << step;
      EXPECT_TRUE(p.is_feasible(warm.values, 1e-6))
          << "instance " << instance << " step " << step;
      hint = warm.values;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmRhsWalk,
                         ::testing::Range<std::uint64_t>(2100, 2112));

TEST(BoundedSimplex, TightBoxesDominateRows) {
  // The binding structure mixes all three: one variable pinned by the
  // shared row, one by its box, one fixed (lower == upper).
  problem p;
  const auto x = p.add_variable(-5.0, 0.0, 3.0);   // box-bound
  const auto y = p.add_variable(-1.0, 0.0, 50.0);  // row-bound
  const auto z = p.add_variable(2.0, 1.5, 1.5);    // fixed
  p.add_constraint({{x, 1.0}, {y, 1.0}, {z, 1.0}}, relation::less_equal,
                   10.0);
  const auto s = solve_lp(p);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.values[x], 3.0, 1e-9);
  EXPECT_NEAR(s.values[y], 5.5, 1e-9);
  EXPECT_NEAR(s.values[z], 1.5, 1e-9);
}

}  // namespace
}  // namespace mca::ilp
