#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mca::util {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("123.5"), "123.5");
}

TEST(CsvEscape, QuotesFieldsWithSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream out;
  csv_writer w{out, {"a", "b"}};
  w.row({"1", "2"});
  w.row({"x,y", "z"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n\"x,y\",z\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvWriter, RowValuesFormatsNumbers) {
  std::ostringstream out;
  csv_writer w{out, {"n", "x", "s"}};
  w.row_values(42, 3.25, "label");
  EXPECT_EQ(out.str(), "n,x,s\n42,3.25,label\n");
}

TEST(CsvWriter, FieldCountMismatchThrows) {
  std::ostringstream out;
  csv_writer w{out, {"a", "b"}};
  EXPECT_THROW(w.row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(w.row({"1", "2", "3"}), std::invalid_argument);
}

TEST(CsvWriter, EmptyHeaderThrows) {
  std::ostringstream out;
  EXPECT_THROW(csv_writer(out, {}), std::invalid_argument);
}

TEST(CsvWriter, DoubleFormattingIsCompact) {
  EXPECT_EQ(csv_writer::format_field(1.0), "1");
  EXPECT_EQ(csv_writer::format_field(0.5), "0.5");
  EXPECT_EQ(csv_writer::format_field(1234567.0), "1.23457e+06");
}

}  // namespace
}  // namespace mca::util
