#include "core/sdn_accelerator.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/operators.h"
#include "tasks/task.h"

namespace mca::core {
namespace {

/// Deterministic, fast mobile link for exact timing assertions.
net::rtt_model fixed_link(double rtt_ms) {
  net::rtt_model_params p;
  p.log_mu = std::log(rtt_ms);
  p.log_sigma = 1e-9;  // effectively constant
  return net::rtt_model{p, 0.0};
}

cloud::instance_type exact_type() {
  cloud::instance_type t;
  t.name = "test.exact";
  t.vcpus = 1.0;
  t.memory_gb = 64.0;
  t.cost_per_hour = 0.1;
  t.speed_factor = 1.0;
  t.jitter_sigma = 0.0;
  return t;
}

class SdnTest : public ::testing::Test {
 protected:
  SdnTest() {
    config_.routing_overhead_mean_ms = 150.0;
    config_.routing_overhead_sd_ms = 0.0;
    config_.backend_one_way_ms = 3.0;
    config_.keep_routing_samples = true;
  }

  workload::offload_request make_request(user_id user) {
    workload::offload_request r;
    r.id = ++next_id_;
    r.user = user;
    r.work = pool_.static_minimax_request();
    r.created_at = sim_.now();
    return r;
  }

  sim::simulation sim_;
  tasks::task_pool pool_;
  cloud::backend_pool backend_{sim_, util::rng{1}};
  trace::log_store log_;
  sdn_config config_;
  request_id next_id_ = 0;
};

TEST_F(SdnTest, TimingDecompositionIsExact) {
  backend_.launch(1, exact_type());
  sdn_accelerator sdn{sim_, backend_, fixed_link(40.0), &log_, config_,
                      util::rng{2}};
  request_timing observed;
  sdn.submit(make_request(1), 1, 0.9,
             [&](const workload::offload_request&, const request_timing& t) {
               observed = t;
             });
  sim_.run();
  ASSERT_TRUE(observed.success);
  EXPECT_NEAR(observed.mobile_to_front, 20.0, 0.2);   // RTT/2
  EXPECT_NEAR(observed.front_to_mobile, 20.0, 0.2);
  EXPECT_NEAR(observed.routing, 150.0, 1e-9);
  EXPECT_NEAR(observed.front_to_back, 3.0, 1e-9);
  EXPECT_NEAR(observed.back_to_front, 3.0, 1e-9);
  // T_cloud: 280 wu minimax + 8 wu spawn on a 1 wu/ms core.
  EXPECT_NEAR(observed.cloud, 288.0, 2.5);
  EXPECT_NEAR(observed.t1(), 40.0, 0.4);
  EXPECT_NEAR(observed.t2(), 156.0, 1e-9);
  EXPECT_NEAR(observed.total(),
              observed.t1() + observed.t2() + observed.cloud, 1e-9);
}

TEST_F(SdnTest, RoutingOverheadIsAboutOneFiftyMs) {
  backend_.launch(1, exact_type());
  config_.routing_overhead_sd_ms = 20.0;
  sdn_accelerator sdn{sim_, backend_, fixed_link(40.0), &log_, config_,
                      util::rng{3}};
  for (int i = 0; i < 200; ++i) {
    sim_.schedule_at(i * 2'000.0, [&, i] {
      sdn.submit(make_request(static_cast<user_id>(i)), 1, 1.0, {});
    });
  }
  sim_.run();
  const auto& stats = sdn.routing_stats(1);
  EXPECT_EQ(stats.count(), 200u);
  EXPECT_NEAR(stats.mean(), 150.0, 5.0);
  EXPECT_GT(stats.stddev(), 5.0);
  EXPECT_EQ(sdn.routing_samples(1).size(), 200u);
}

TEST_F(SdnTest, LogsTraceRecordPerSuccess) {
  backend_.launch(2, exact_type());
  sdn_accelerator sdn{sim_, backend_, fixed_link(40.0), &log_, config_,
                      util::rng{4}};
  sdn.submit(make_request(7), 2, 0.65, {});
  sim_.run();
  ASSERT_EQ(log_.size(), 1u);
  const auto& record = log_.records()[0];
  EXPECT_EQ(record.user, 7u);
  EXPECT_EQ(record.group, 2u);
  EXPECT_DOUBLE_EQ(record.battery_level, 0.65);
  EXPECT_GT(record.rtt_ms, 400.0);  // T1 + T2 + Tcloud
}

TEST_F(SdnTest, NoLoggingWhenDisabled) {
  backend_.launch(1, exact_type());
  config_.log_traces = false;
  sdn_accelerator sdn{sim_, backend_, fixed_link(40.0), &log_, config_,
                      util::rng{5}};
  sdn.submit(make_request(1), 1, 1.0, {});
  sim_.run();
  EXPECT_EQ(log_.size(), 0u);
}

TEST_F(SdnTest, NullLogPointerIsSafe) {
  backend_.launch(1, exact_type());
  sdn_accelerator sdn{sim_, backend_, fixed_link(40.0), nullptr, config_,
                      util::rng{6}};
  sdn.submit(make_request(1), 1, 1.0, {});
  sim_.run();
  EXPECT_EQ(sdn.succeeded(), 1u);
}

TEST_F(SdnTest, MissingGroupFailsTheRequest) {
  sdn_accelerator sdn{sim_, backend_, fixed_link(40.0), &log_, config_,
                      util::rng{7}};
  request_timing observed;
  bool called = false;
  sdn.submit(make_request(1), 9, 1.0,
             [&](const workload::offload_request&, const request_timing& t) {
               observed = t;
               called = true;
             });
  sim_.run();
  ASSERT_TRUE(called);
  EXPECT_FALSE(observed.success);
  EXPECT_EQ(observed.cloud, 0.0);
  EXPECT_EQ(sdn.failed(), 1u);
  EXPECT_EQ(sdn.succeeded(), 0u);
  EXPECT_EQ(log_.size(), 0u);  // failures are not logged as processed
}

TEST_F(SdnTest, SaturatedBackendDropsAreReported) {
  auto tiny = exact_type();
  tiny.memory_gb = 0.1;  // floor admission cap applies
  const auto burst = tiny.max_concurrent() + 12;
  backend_.launch(1, tiny);
  sdn_accelerator sdn{sim_, backend_, fixed_link(40.0), &log_, config_,
                      util::rng{8}};
  int failures = 0;
  for (std::size_t i = 0; i < burst; ++i) {
    sdn.submit(make_request(static_cast<user_id>(i)), 1, 1.0,
               [&](const workload::offload_request&,
                   const request_timing& t) {
                 if (!t.success) ++failures;
               });
  }
  sim_.run();
  EXPECT_EQ(sdn.received(), burst);
  EXPECT_GT(failures, 0);
  EXPECT_EQ(sdn.succeeded() + sdn.failed(), burst);
}

TEST_F(SdnTest, CountsMultipleGroupsSeparately) {
  backend_.launch(1, exact_type());
  backend_.launch(2, exact_type());
  sdn_accelerator sdn{sim_, backend_, fixed_link(40.0), &log_, config_,
                      util::rng{9}};
  sdn.submit(make_request(1), 1, 1.0, {});
  sdn.submit(make_request(2), 2, 1.0, {});
  sdn.submit(make_request(3), 2, 1.0, {});
  sim_.run();
  EXPECT_EQ(sdn.routing_stats(1).count(), 1u);
  EXPECT_EQ(sdn.routing_stats(2).count(), 2u);
  EXPECT_EQ(sdn.routing_stats(3).count(), 0u);
}

TEST_F(SdnTest, ThreeGLinkInflatesT1Only) {
  backend_.launch(1, exact_type());
  sdn_accelerator lte{sim_, backend_, fixed_link(40.0), nullptr, config_,
                      util::rng{10}};
  sdn_accelerator threeg{sim_, backend_, fixed_link(130.0), nullptr, config_,
                         util::rng{10}};
  request_timing timing_lte;
  request_timing timing_threeg;
  lte.submit(make_request(1), 1, 1.0,
             [&](const workload::offload_request&, const request_timing& t) {
               timing_lte = t;
             });
  sim_.run();
  threeg.submit(make_request(2), 1, 1.0,
                [&](const workload::offload_request&,
                    const request_timing& t) { timing_threeg = t; });
  sim_.run();
  EXPECT_NEAR(timing_threeg.t1() - timing_lte.t1(), 90.0, 2.0);
  // The internal path is identical: same routing model, same backend hops.
  EXPECT_NEAR(timing_threeg.front_to_back, timing_lte.front_to_back, 1e-9);
}

TEST_F(SdnTest, ConcurrentSubmissionsShareTheBackend) {
  backend_.launch(1, exact_type());
  sdn_accelerator sdn{sim_, backend_, fixed_link(40.0), &log_, config_,
                      util::rng{11}};
  std::vector<double> cloud_times;
  for (int i = 0; i < 4; ++i) {
    sdn.submit(make_request(static_cast<user_id>(i)), 1, 1.0,
               [&](const workload::offload_request&,
                   const request_timing& t) {
                 cloud_times.push_back(t.cloud);
               });
  }
  sim_.run();
  ASSERT_EQ(cloud_times.size(), 4u);
  // All four arrive (nearly) together and share one core: each sees ~4x
  // the solo 288 ms service time.
  for (const double t : cloud_times) {
    EXPECT_GT(t, 288.0 * 3.0);
  }
}

TEST_F(SdnTest, ConfigValidation) {
  sdn_config bad;
  bad.routing_overhead_mean_ms = -1.0;
  EXPECT_THROW(sdn_accelerator(sim_, backend_, fixed_link(40.0), &log_, bad,
                               util::rng{1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mca::core
