// Observability layer: registry determinism, span-ring semantics, Chrome
// trace export, and the fleet integration (counter fingerprints identical
// across pool sizes, slot-round span structure under a fixed seed).
#include "obs/registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "exp/thread_pool.h"
#include "fleet/fleet_runner.h"
#include "obs/slo.h"
#include "obs/tracer.h"
#include "tasks/task.h"

namespace mca::obs {
namespace {

// ---------------------------------------------------------------------------
// registry

TEST(ObsRegistry, CountersAddAndMergeBySum) {
  registry a;
  registry b;
  a.add(counter::sdn_requests);
  a.add(counter::sdn_requests, 4);
  b.add(counter::sdn_requests, 10);
  b.add(counter::ilp_solves, 2);
  a.merge(b);
  EXPECT_EQ(a.get(counter::sdn_requests), 15u);
  EXPECT_EQ(a.get(counter::ilp_solves), 2u);
  EXPECT_EQ(b.get(counter::sdn_requests), 10u);  // b untouched
}

TEST(ObsRegistry, GaugesMergeByMax) {
  registry a;
  registry b;
  a.set_gauge(gauge::pool_workers, 4);
  b.set_gauge(gauge::pool_workers, 16);
  b.set_gauge(gauge::fleet_shards, 8);
  a.merge(b);
  EXPECT_EQ(a.get_gauge(gauge::pool_workers), 16u);
  EXPECT_EQ(a.get_gauge(gauge::fleet_shards), 8u);
}

TEST(ObsRegistry, SeriesTrackCountSumMaxAndMerge) {
  registry a;
  a.observe(series::ps_queue_depth, 3.0);
  a.observe(series::ps_queue_depth, 7.0);
  EXPECT_EQ(a.stats(series::ps_queue_depth).samples, 2u);
  EXPECT_DOUBLE_EQ(a.stats(series::ps_queue_depth).sum, 10.0);
  EXPECT_DOUBLE_EQ(a.stats(series::ps_queue_depth).max, 7.0);
  EXPECT_DOUBLE_EQ(a.stats(series::ps_queue_depth).mean(), 5.0);

  registry b;
  b.observe(series::ps_queue_depth, 20.0);
  a.merge(b);
  EXPECT_EQ(a.stats(series::ps_queue_depth).samples, 3u);
  EXPECT_DOUBLE_EQ(a.stats(series::ps_queue_depth).max, 20.0);
}

TEST(ObsRegistry, FingerprintExcludesSchedulingDependentCounters) {
  registry a;
  registry b;
  a.add(counter::sdn_requests, 100);
  b.add(counter::sdn_requests, 100);
  // Pool telemetry differs between "runs" — the fingerprint must not.
  a.add(counter::pool_steals, 17);
  a.add(counter::pool_idle_waits, 3);
  b.add(counter::pool_tasks_executed, 99);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_TRUE(counter_is_scheduling_dependent(counter::pool_steals));
  EXPECT_TRUE(counter_is_scheduling_dependent(counter::pool_tasks_executed));
  EXPECT_TRUE(counter_is_scheduling_dependent(counter::pool_idle_waits));
  EXPECT_FALSE(counter_is_scheduling_dependent(counter::sdn_requests));
  // A deterministic counter does move it.
  b.add(counter::sdn_failures);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(ObsRegistry, FingerprintExcludesGauges) {
  registry a;
  registry b;
  a.add(counter::ilp_solves, 5);
  b.add(counter::ilp_solves, 5);
  a.set_gauge(gauge::pool_workers, 1);
  b.set_gauge(gauge::pool_workers, 16);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(ObsRegistry, FingerprintCoversSeriesAndSlo) {
  registry a{2};
  registry b{2};
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  a.observe(series::ps_event_batch, 4.0);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b.observe(series::ps_event_batch, 4.0);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  a.observe_response(0, 120.0);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(ObsRegistry, SloReportRowsAndFleetTotal) {
  registry reg{2};
  for (int i = 0; i < 100; ++i) {
    reg.observe_response(0, 100.0 + i);  // group 0: 100..199 ms
    reg.observe_response(1, 1000.0);     // group 1: constant 1 s
  }
  reg.observe_response(7, 5.0);  // out of range: dropped, no crash
  const slo_report report = build_slo_report(reg);
  ASSERT_EQ(report.rows.size(), 3u);
  EXPECT_EQ(report.rows[0].label, "fleet");
  EXPECT_EQ(report.rows[0].samples, 200u);
  EXPECT_EQ(report.rows[1].samples, 100u);
  EXPECT_EQ(report.rows[2].samples, 100u);
  // Group 0 percentiles rise through the 100..199 ms band.
  EXPECT_GT(report.rows[1].p99_ms, report.rows[1].p50_ms);
  EXPECT_GE(report.rows[1].p999_ms, report.rows[1].p99_ms);
  // Group 1 is a point mass within one 250 ms bin.
  EXPECT_NEAR(report.rows[2].p50_ms, report.rows[2].p999_ms, 250.0);
}

// ---------------------------------------------------------------------------
// span ring

TEST(ObsSpanRing, WraparoundKeepsNewestSpans) {
  span_ring ring{4};
  for (std::uint64_t i = 0; i < 10; ++i) {
    span_record r;
    r.arg_a = i;
    ring.push(r);
  }
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Oldest-first iteration over the surviving window: 6, 7, 8, 9.
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).arg_a, 6u + i) << "slot " << i;
  }
}

TEST(ObsSpanRing, UnderfilledRingIsOldestFirst) {
  span_ring ring{8};
  for (std::uint64_t i = 0; i < 3; ++i) {
    span_record r;
    r.arg_a = i;
    ring.push(r);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.at(0).arg_a, 0u);
  EXPECT_EQ(ring.at(2).arg_a, 2u);
}

TEST(ObsSpanRing, ZeroCapacityThrows) {
  EXPECT_THROW(span_ring{0}, std::invalid_argument);
  EXPECT_THROW(tracer({0, 16}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Chrome trace export

/// Minimal recursive-descent JSON syntax checker — no DOM, just enough to
/// prove the exporter emits well-formed JSON a real viewer will accept.
class json_checker {
 public:
  explicit json_checker(std::string_view text)
      : p_{text.data()}, end_{text.data() + text.size()} {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  bool value() {
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++p_;  // '{'
    skip_ws();
    if (p_ != end_ && *p_ == '}') { ++p_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == '}') { ++p_; return true; }
      return false;
    }
  }
  bool array() {
    ++p_;  // '['
    skip_ws();
    if (p_ != end_ && *p_ == ']') { ++p_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == ']') { ++p_; return true; }
      return false;
    }
  }
  bool string() {
    if (p_ == end_ || *p_ != '"') return false;
    ++p_;
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
      }
      ++p_;
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }
  bool number() {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                          *p_ == 'e' || *p_ == 'E' || *p_ == '-' ||
                          *p_ == '+')) {
      digits = digits || (*p_ >= '0' && *p_ <= '9');
      ++p_;
    }
    return digits && p_ != start;
  }
  bool literal(const char* word) {
    for (const char* w = word; *w != '\0'; ++w, ++p_) {
      if (p_ == end_ || *p_ != *w) return false;
    }
    return true;
  }
  void skip_ws() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  const char* p_;
  const char* end_;
};

std::size_t count_occurrences(const std::string& text,
                              std::string_view needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

std::string export_to_string(const tracer& t,
                             const std::vector<std::string>& names) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  t.export_chrome_trace(f, names);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::rewind(f);
  std::string text(static_cast<std::size_t>(size), '\0');
  const std::size_t read = std::fread(text.data(), 1, text.size(), f);
  std::fclose(f);
  EXPECT_EQ(read, text.size());
  return text;
}

TEST(ObsTracer, ChromeTraceParsesAndMatchesSchema) {
  tracer t{{2, 16}};
  {
    span_record r;  // wall-only span
    r.wall_start_us = 10.0;
    r.wall_dur_us = 5.0;
    r.kind = span_kind::coordinator_solve;
    r.arg_a = 3;
    t.ring(0).push(r);
  }
  {
    span_record r;  // dual-clock span: wall + sim events
    r.wall_start_us = 20.0;
    r.wall_dur_us = 2.0;
    r.sim_start_ms = 600000.0;
    r.sim_dur_ms = 600000.0;
    r.kind = span_kind::shard_advance;
    r.arg_a = 1;
    r.arg_b = 0;
    t.ring(1).push(r);
  }

  const std::string text =
      export_to_string(t, {"coordinator", "shard 0"});
  json_checker checker{text};
  EXPECT_TRUE(checker.valid()) << text;

  // Chrome trace-event schema: a traceEvents array of ph:"X" complete
  // events plus ph:"M" metadata naming both processes and every ring.
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  // 1 wall-only + 1 dual-clock span -> 3 complete events.
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"X\""), 3u);
  EXPECT_EQ(count_occurrences(text, "\"name\":\"shard_advance\""), 2u);
  EXPECT_EQ(count_occurrences(text, "\"name\":\"coordinator_solve\""), 1u);
  EXPECT_EQ(count_occurrences(text, "\"name\":\"process_name\""), 2u);
  // thread_name metadata for each ring on each process timeline.
  EXPECT_EQ(count_occurrences(text, "\"name\":\"thread_name\""), 4u);
  EXPECT_NE(text.find("coordinator"), std::string::npos);
  EXPECT_NE(text.find("\"ts\":10.000"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":5.000"), std::string::npos);
  // The sim event of the dual-clock span (1 sim ms = 1 us).
  EXPECT_NE(text.find("\"ts\":600000.000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// fleet integration

/// Small fleet scenario crossing several slot boundaries (mirrors
/// test_fleet's tiny_fleet, trimmed for three runs per test).
exp::scenario_spec obs_fleet_scenario() {
  exp::scenario_spec spec;
  spec.name = "obs_fleet";
  spec.base_seed = 90210;
  spec.user_count = 48;
  spec.duration = util::minutes(30.0);
  spec.slot_length = util::minutes(10.0);
  spec.gaps = exp::gap_model::exponential;
  spec.arrival_rate_hz = 0.05;
  spec.background_requests_per_burst = 0;
  spec.groups = {{1, "t2.nano", 1, 4.0}, {2, "t2.large", 1, 30.0}};
  spec.fleet_max_total_instances = 40;
  spec.fleet_shards = 4;
  return spec;
}

TEST(ObsFleet, CounterFingerprintIdenticalAcrossPoolSizes) {
  const exp::scenario_spec spec = obs_fleet_scenario();
  const tasks::task_pool task_pool;
  fleet::fleet_options options;

  std::uint64_t first_obs = 0;
  std::uint64_t first_agg = 0;
  for (const std::size_t jobs : {1u, 4u, 16u}) {
    exp::thread_pool pool{jobs};
    const fleet::fleet_result result =
        fleet::run_fleet(spec, options, task_pool, pool);
    if (jobs == 1) {
      first_obs = result.observability.fingerprint();
      first_agg = result.fingerprint();
      // The counters saw real traffic.
      EXPECT_GT(result.observability.get(counter::sdn_requests), 0u);
      EXPECT_EQ(result.observability.get(counter::sdn_requests),
                result.observability.get(counter::sdn_successes) +
                    result.observability.get(counter::sdn_failures));
      EXPECT_EQ(result.observability.get(counter::fleet_slot_rounds),
                result.slot_count);
      EXPECT_EQ(result.observability.get(counter::ilp_solves),
                result.ilp_solves);
      EXPECT_GT(result.observability.get(counter::ps_submits), 0u);
      EXPECT_GT(result.observability.get(counter::slot_boundaries), 0u);
      EXPECT_GT(result.observability.stats(series::ps_queue_depth).samples,
                0u);
    } else {
      EXPECT_EQ(result.observability.fingerprint(), first_obs)
          << "jobs=" << jobs;
      EXPECT_EQ(result.fingerprint(), first_agg) << "jobs=" << jobs;
    }
    // Scheduling-dependent pool telemetry is present but outside the
    // fingerprint; executed covers at least one task per shard per round.
    EXPECT_GE(result.observability.get(counter::pool_tasks_executed),
              result.shard_count);
    EXPECT_EQ(result.observability.get_gauge(gauge::pool_workers), jobs);
    EXPECT_EQ(result.observability.get_gauge(gauge::fleet_shards),
              result.shard_count);
  }
}

TEST(ObsFleet, CountersOffLeavesRegistryZeroAndResultIdentical) {
  const exp::scenario_spec spec = obs_fleet_scenario();
  const tasks::task_pool task_pool;
  exp::thread_pool pool{2};

  fleet::fleet_options on;
  const fleet::fleet_result with_counters =
      fleet::run_fleet(spec, on, task_pool, pool);
  fleet::fleet_options off;
  off.obs_counters = false;
  const fleet::fleet_result without =
      fleet::run_fleet(spec, off, task_pool, pool);

  EXPECT_EQ(with_counters.fingerprint(), without.fingerprint());
  EXPECT_EQ(without.observability.get(counter::sdn_requests), 0u);
  EXPECT_EQ(without.observability.get(counter::ilp_solves), 0u);
  EXPECT_GT(with_counters.observability.get(counter::sdn_requests), 0u);
}

TEST(ObsFleet, SlotRoundSpanStructureUnderFixedSeed) {
  const exp::scenario_spec spec = obs_fleet_scenario();
  const tasks::task_pool task_pool;
  const std::size_t shards = spec.fleet_shards;
  const std::size_t jobs = 2;

  // Capacity comfortably above the spans a shard produces (advances +
  // sampled lifecycles) so nothing wraps and the structure is complete.
  tracer t{{shards + 1 + jobs, 512}};
  exp::thread_pool pool{jobs};
  fleet::fleet_options options;
  options.tracer = &t;
  options.trace_sample_every = 8;
  const fleet::fleet_result result =
      fleet::run_fleet(spec, options, task_pool, pool);
  ASSERT_EQ(result.shard_count, shards);
  ASSERT_GT(result.slot_count, 0u);

  // Coordinator ring: one slot_round span per boundary, slots in order,
  // each with the slot's simulated extent.
  const span_ring& coord = t.ring(shards);
  std::vector<const span_record*> rounds;
  bool has_solve = false;
  for (std::size_t i = 0; i < coord.size(); ++i) {
    const span_record& s = coord.at(i);
    if (s.kind == span_kind::slot_round) rounds.push_back(&s);
    if (s.kind == span_kind::coordinator_solve) has_solve = true;
  }
  ASSERT_EQ(rounds.size(), result.slot_count);
  EXPECT_TRUE(has_solve);
  for (std::size_t slot = 0; slot < rounds.size(); ++slot) {
    EXPECT_EQ(rounds[slot]->arg_a, slot);
    EXPECT_DOUBLE_EQ(rounds[slot]->sim_start_ms,
                     static_cast<double>(slot) * spec.slot_length);
    EXPECT_DOUBLE_EQ(rounds[slot]->sim_dur_ms, spec.slot_length);
    EXPECT_GE(rounds[slot]->wall_dur_us, 0.0);
  }

  // Every shard ring: one shard_advance per round, tagged with its own
  // shard index and nested (on the wall clock) inside its slot round.
  for (std::size_t k = 0; k < shards; ++k) {
    const span_ring& ring = t.ring(k);
    std::size_t advances = 0;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const span_record& s = ring.at(i);
      if (s.kind != span_kind::shard_advance) continue;
      EXPECT_EQ(s.arg_b, k);
      ASSERT_LT(s.arg_a, rounds.size());
      const span_record& round = *rounds[s.arg_a];
      EXPECT_GE(s.wall_start_us, round.wall_start_us);
      EXPECT_LE(s.wall_start_us + s.wall_dur_us,
                round.wall_start_us + round.wall_dur_us + 1e-3);
      ++advances;
    }
    EXPECT_EQ(advances, result.slot_count) << "shard " << k;
  }

  // Sampled request lifecycles landed in shard rings.
  EXPECT_GT(result.observability.get(counter::sdn_sampled_spans), 0u);
  bool has_lifecycle = false;
  for (std::size_t k = 0; k < shards; ++k) {
    for (std::size_t i = 0; i < t.ring(k).size(); ++i) {
      has_lifecycle = has_lifecycle ||
                      t.ring(k).at(i).kind == span_kind::request_lifecycle;
    }
  }
  EXPECT_TRUE(has_lifecycle);
}

TEST(ObsFleet, TracerWithTooFewRingsIsRejected) {
  const exp::scenario_spec spec = obs_fleet_scenario();
  const tasks::task_pool task_pool;
  exp::thread_pool pool{1};
  tracer t{{spec.fleet_shards, 16}};  // missing the coordinator ring
  fleet::fleet_options options;
  options.tracer = &t;
  EXPECT_THROW(fleet::run_fleet(spec, options, task_pool, pool),
               std::invalid_argument);
}

}  // namespace
}  // namespace mca::obs
