#include "exp/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <thread>
#include <vector>

namespace mca::exp {
namespace {

TEST(ThreadPool, RunsEveryPostedTask) {
  thread_pool pool{4};
  std::atomic<int> executed{0};
  for (int i = 0; i < 200; ++i) {
    pool.post([&executed] { executed.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(executed.load(), 200);
}

TEST(ThreadPool, RejectsEmptyTask) {
  thread_pool pool{1};
  EXPECT_THROW(pool.post({}), std::invalid_argument);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
  thread_pool pool{2};
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, WorkerCountClampsToAtLeastOne) {
  thread_pool pool{0};  // 0 = hardware_workers(), itself floored at 1
  EXPECT_GE(pool.worker_count(), 1u);
  EXPECT_GE(thread_pool::hardware_workers(), 1u);
}

TEST(ThreadPool, TasksRunOnPoolThreadsNotCaller) {
  thread_pool pool{2};
  const auto caller = std::this_thread::get_id();
  std::mutex mutex;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 32; ++i) {
    pool.post([&] {
      std::lock_guard lock{mutex};
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  EXPECT_FALSE(ids.contains(caller));
  EXPECT_GE(ids.size(), 1u);
}

TEST(ThreadPool, IdleWorkerStealsFromTheOtherQueue) {
  thread_pool pool{2};
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  pool.post([&started, released] {
    started.set_value();
    released.wait();
  });
  // One worker is now parked inside the blocker.  The next two posts
  // round-robin onto both deques, so whichever worker survives owns only
  // one of them and must steal the other task.
  started.get_future().wait();
  std::atomic<int> quick_done{0};
  pool.post([&quick_done] { quick_done.fetch_add(1); });
  pool.post([&quick_done] { quick_done.fetch_add(1); });
  while (quick_done.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  EXPECT_GE(pool.steal_count(), 1u);
  release.set_value();
  pool.wait_idle();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  thread_pool pool{4};
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsANoOp) {
  thread_pool pool{2};
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, PoolIsReusableAcrossWaves) {
  thread_pool pool{3};
  std::atomic<int> total{0};
  for (int wave = 0; wave < 5; ++wave) {
    parallel_for(pool, 40, [&total](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(ThreadPool, CountersReportExactExecutedTotal) {
  thread_pool pool{4};
  EXPECT_EQ(pool.counters().executed, 0u);
  parallel_for(pool, 100, [](std::size_t) {});
  parallel_for(pool, 57, [](std::size_t) {});
  const pool_counters after = pool.counters();
  EXPECT_EQ(after.executed, 157u);
  // Steals and idle waits are scheduling-dependent; only sanity-bound
  // them: a worker cannot steal more tasks than ran in total.
  EXPECT_LE(after.steals, after.executed);
  EXPECT_EQ(after.steals, static_cast<std::uint64_t>(pool.steal_count()));
}

TEST(ThreadPool, SingleWorkerNeverSteals) {
  thread_pool pool{1};
  parallel_for(pool, 64, [](std::size_t) {});
  const pool_counters counters = pool.counters();
  EXPECT_EQ(counters.executed, 64u);
  EXPECT_EQ(counters.steals, 0u);
}

TEST(ThreadPool, DestructorDrainsOutstandingTasks) {
  std::atomic<int> executed{0};
  {
    thread_pool pool{2};
    for (int i = 0; i < 64; ++i) {
      pool.post([&executed] { executed.fetch_add(1); });
    }
  }
  EXPECT_EQ(executed.load(), 64);
}

}  // namespace
}  // namespace mca::exp
