// Cross-module integration tests: the paper's headline behaviours,
// end to end, on scaled-down versions of the §VI experiments.
#include <gtest/gtest.h>

#include <memory>

#include "client/usage_trace.h"
#include "core/classifier.h"
#include "core/system.h"
#include "net/operators.h"
#include "workload/generator.h"

namespace mca::core {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  tasks::task_pool pool_;
};

TEST_F(IntegrationTest, PromotedUsersSeeFasterResponses) {
  // Scaled-down Fig. 9: heavy background on every server; users promoted
  // to faster groups must perceive lower response times.
  system_config config;
  config.groups = {
      {1, "t2.nano", 1, 5.0},
      {2, "t2.large", 1, 40.0},
      {3, "m4.4xlarge", 1, 100.0},
  };
  config.user_count = 30;
  config.tasks = workload::static_source(pool_.static_minimax_request());
  config.gaps = workload::fixed_interarrival(util::seconds(20));
  config.slot_length = util::minutes(15);
  config.background_requests_per_burst = 40;
  config.policy_factory = [] {
    return std::make_unique<client::static_probability_promotion>(1.0 / 25.0);
  };
  config.seed = 3;
  offloading_system system{config, pool_};
  system.run(util::hours(1));

  util::running_stats group1;
  util::running_stats group3;
  for (const auto& r : system.metrics().requests) {
    if (!r.success) continue;
    if (r.group == 1) group1.add(r.response_ms);
    if (r.group == 3) group3.add(r.response_ms);
  }
  ASSERT_GT(group1.count(), 50u);
  ASSERT_GT(group3.count(), 50u);
  EXPECT_LT(group3.mean(), group1.mean() * 0.7);
}

TEST_F(IntegrationTest, AccelerationRatiosSurviveTheFullStack) {
  // Fig. 5 through the SDN: the same static minimax, solo per group, must
  // show the catalog's speed ratios in T_cloud.
  sim::simulation sim;
  cloud::backend_pool backend{sim, util::rng{5}};
  backend.launch(1, cloud::type_by_name("t2.nano"));
  backend.launch(2, cloud::type_by_name("t2.large"));
  backend.launch(3, cloud::type_by_name("m4.4xlarge"));
  trace::log_store log;
  sdn_config config;
  config.routing_overhead_sd_ms = 0.0;
  sdn_accelerator sdn{sim, backend, net::default_lte_model(), &log, config,
                      util::rng{6}};
  const auto minimax = pool_.static_minimax_request();

  std::map<group_id, util::running_stats> cloud_time;
  request_id next = 0;
  for (group_id g = 1; g <= 3; ++g) {
    for (int i = 0; i < 40; ++i) {
      sim.schedule_at(static_cast<double>(next) * 5'000.0, [&, g] {
        workload::offload_request r;
        r.id = ++next;
        r.user = 1;
        r.work = minimax;
        r.created_at = sim.now();
        sdn.submit(r, g, 1.0,
                   [&cloud_time, g](const workload::offload_request&,
                                    const request_timing& t) {
                     cloud_time[g].add(t.cloud);
                   });
      });
      ++next;
    }
  }
  sim.run();
  const double level1 = cloud_time[1].mean();
  const double level2 = cloud_time[2].mean();
  const double level3 = cloud_time[3].mean();
  EXPECT_NEAR(level1 / level2, 1.25, 0.08);
  EXPECT_NEAR(level1 / level3, 1.73, 0.12);
  EXPECT_NEAR(level2 / level3, 1.38, 0.12);
}

TEST_F(IntegrationTest, ClassifierCapacitiesFeedTheAllocator) {
  // Pipeline: characterize two types, then let the ILP choose a fleet for
  // a 60-user group-1 workload using the measured Ks values.
  classifier_config cc;
  cc.rounds_per_level = 2;
  cc.load_levels = {1, 10, 20, 30, 40, 60, 80, 100};
  const auto nano = characterize_type(cloud::type_by_name("t2.nano"), pool_, cc);
  const auto large =
      characterize_type(cloud::type_by_name("t2.large"), pool_, cc);
  ASSERT_GT(nano.capacity_requests_per_min, 0.0);
  ASSERT_GT(large.capacity_requests_per_min, nano.capacity_requests_per_min);

  allocation_request request;
  request.workload_per_group = {60.0};
  request.candidates_per_group = {{
      {"t2.nano", nano.capacity_requests_per_min,
       cloud::type_by_name("t2.nano").cost_per_hour},
      {"t2.large", large.capacity_requests_per_min,
       cloud::type_by_name("t2.large").cost_per_hour},
  }};
  const auto plan = allocate_ilp(request);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GT(plan.total_instances(), 0u);
  EXPECT_LE(plan.total_instances(), 20u);
}

TEST_F(IntegrationTest, DiurnalWorkloadIsPredictable) {
  // Fig. 10a mechanism: a usage-study-driven diurnal workload, sliced into
  // slots, must be predictable well above chance once history accumulates.
  util::rng rng{9};
  trace::log_store log;
  client::usage_study_config study;
  study.participants = 4;
  study.days = 4.0;
  for (user_id u = 0; u < study.participants; ++u) {
    util::rng stream = rng.fork();
    const auto events = client::synthesize_participant_events(study, stream);
    for (const auto t : events) {
      log.append({t, u, 1, 1.0, 200.0});
    }
  }
  const auto slots = log.build_slots(util::hours(1.0), 2);
  ASSERT_GT(slots.size(), 48u);
  const auto accuracy = walk_forward_accuracy(slots, slots.size() / 2);
  ASSERT_TRUE(accuracy.has_value());
  EXPECT_GT(*accuracy, 0.7);
}

TEST_F(IntegrationTest, AdaptiveBeatsStaticPeakOnCost) {
  // The allocator's reason to exist: tracking the predicted workload must
  // be cheaper than provisioning every slot for the peak.
  const std::vector<double> hourly_workload = {5, 8, 20, 45, 30, 12};
  allocation_request base;
  base.workload_per_group = {0.0};
  base.candidates_per_group = {{{"t2.nano", 10.0, 1.0}}};

  double adaptive_cost = 0.0;
  double static_cost = 0.0;
  for (const double w : hourly_workload) {
    auto request = base;
    request.workload_per_group[0] = w;
    adaptive_cost += allocate_ilp(request).total_cost_per_hour;
    static_cost += allocate_static_peak(base, 45.0).total_cost_per_hour;
  }
  EXPECT_LT(adaptive_cost, static_cost * 0.75);
}

}  // namespace
}  // namespace mca::core
