#include "workload/generator.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mca::workload {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  sim::simulation sim_;
  tasks::task_pool pool_;
  std::vector<offload_request> received_;

  request_sink collect() {
    return [this](const offload_request& r) { received_.push_back(r); };
  }
};

TEST_F(GeneratorTest, ConcurrentModeEmitsUsersTimesRounds) {
  concurrent_config config;
  config.users = 30;
  config.rounds = 3;
  config.gap = util::minutes(1);
  concurrent_generator gen{sim_, random_pool_source(pool_), collect(), config,
                           util::rng{1}};
  sim_.run();
  EXPECT_EQ(gen.emitted(), 90u);
  EXPECT_EQ(received_.size(), 90u);
}

TEST_F(GeneratorTest, ConcurrentRoundsAreSimultaneousBursts) {
  concurrent_config config;
  config.users = 10;
  config.rounds = 2;
  config.gap = 500.0;
  concurrent_generator gen{sim_, random_pool_source(pool_), collect(), config,
                           util::rng{1}};
  sim_.run();
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(received_[i].created_at, 0.0);
  }
  for (std::size_t i = 10; i < 20; ++i) {
    EXPECT_EQ(received_[i].created_at, 500.0);
  }
}

TEST_F(GeneratorTest, ConcurrentUsersAreDistinctPerRound) {
  concurrent_config config;
  config.users = 25;
  config.rounds = 1;
  config.first_user = 100;
  concurrent_generator gen{sim_, random_pool_source(pool_), collect(), config,
                           util::rng{1}};
  sim_.run();
  std::set<user_id> users;
  for (const auto& r : received_) users.insert(r.user);
  EXPECT_EQ(users.size(), 25u);
  EXPECT_EQ(*users.begin(), 100u);
  EXPECT_EQ(*users.rbegin(), 124u);
}

TEST_F(GeneratorTest, ConcurrentValidation) {
  concurrent_config bad;
  bad.users = 0;
  EXPECT_THROW(concurrent_generator(sim_, random_pool_source(pool_), collect(),
                                    bad, util::rng{1}),
               std::invalid_argument);
  concurrent_config no_rounds;
  no_rounds.rounds = 0;
  EXPECT_THROW(concurrent_generator(sim_, random_pool_source(pool_), collect(),
                                    no_rounds, util::rng{1}),
               std::invalid_argument);
  EXPECT_THROW(concurrent_generator(sim_, {}, collect(), concurrent_config{},
                                    util::rng{1}),
               std::invalid_argument);
}

TEST_F(GeneratorTest, InterarrivalStopsAtDeadline) {
  interarrival_config config;
  config.devices = 5;
  config.active_duration = util::seconds(10);
  interarrival_generator gen{sim_,
                             random_pool_source(pool_),
                             collect(),
                             fixed_interarrival(util::seconds(1)),
                             config,
                             util::rng{1}};
  sim_.run();
  // ~10 requests per device over 10 s at 1 Hz (initial offsets shift it).
  EXPECT_GT(gen.emitted(), 30u);
  EXPECT_LT(gen.emitted(), 60u);
  for (const auto& r : received_) {
    EXPECT_LT(r.created_at, util::seconds(10));
  }
}

TEST_F(GeneratorTest, InterarrivalUsesAllDevices) {
  interarrival_config config;
  config.devices = 8;
  config.active_duration = util::seconds(20);
  interarrival_generator gen{sim_,
                             random_pool_source(pool_),
                             collect(),
                             fixed_interarrival(util::seconds(1)),
                             config,
                             util::rng{2}};
  sim_.run();
  std::set<user_id> users;
  for (const auto& r : received_) users.insert(r.user);
  EXPECT_EQ(users.size(), 8u);
}

TEST_F(GeneratorTest, ExponentialInterarrivalApproximatesRate) {
  interarrival_config config;
  config.devices = 1;
  config.active_duration = util::hours(1);
  interarrival_generator gen{sim_,
                             random_pool_source(pool_),
                             collect(),
                             exponential_interarrival(2.0),
                             config,
                             util::rng{3}};
  sim_.run();
  // 2 Hz over one hour ~ 7200 requests.
  EXPECT_NEAR(static_cast<double>(gen.emitted()), 7'200.0, 400.0);
}

TEST_F(GeneratorTest, InterarrivalValidation) {
  EXPECT_THROW(fixed_interarrival(0.0), std::invalid_argument);
  EXPECT_THROW(exponential_interarrival(-1.0), std::invalid_argument);
  EXPECT_THROW(empirical_interarrival(nullptr), std::invalid_argument);
  interarrival_config bad;
  bad.devices = 0;
  EXPECT_THROW(interarrival_generator(sim_, random_pool_source(pool_),
                                      collect(), fixed_interarrival(1.0), bad,
                                      util::rng{1}),
               std::invalid_argument);
}

TEST_F(GeneratorTest, RateDoublingDoublesEveryPhase) {
  rate_doubling_config config;
  config.initial_hz = 1.0;
  config.final_hz = 8.0;
  config.phase_length = util::seconds(10);
  rate_doubling_generator gen{sim_, random_pool_source(pool_), collect(),
                              config, util::rng{4}};
  sim_.run();
  // Phases: 1, 2, 4, 8 Hz for 10 s each -> ~10+20+40+80 = 150 requests.
  EXPECT_NEAR(static_cast<double>(gen.emitted()), 150.0, 45.0);
  EXPECT_GT(gen.current_rate_hz(), 8.0);  // ended past the final phase
}

TEST_F(GeneratorTest, RateDoublingPhasesRampRequestDensity) {
  rate_doubling_config config;
  config.initial_hz = 2.0;
  config.final_hz = 16.0;
  config.phase_length = util::seconds(20);
  rate_doubling_generator gen{sim_, random_pool_source(pool_), collect(),
                              config, util::rng{5}};
  sim_.run();
  std::size_t first_phase = 0;
  std::size_t last_phase = 0;
  for (const auto& r : received_) {
    if (r.created_at < util::seconds(20)) ++first_phase;
    if (r.created_at >= util::seconds(60)) ++last_phase;
  }
  EXPECT_GT(last_phase, first_phase * 3);
}

TEST_F(GeneratorTest, RateDoublingValidation) {
  rate_doubling_config bad;
  bad.initial_hz = 0.0;
  EXPECT_THROW(rate_doubling_generator(sim_, random_pool_source(pool_),
                                       collect(), bad, util::rng{1}),
               std::invalid_argument);
  rate_doubling_config inverted;
  inverted.initial_hz = 8.0;
  inverted.final_hz = 2.0;
  EXPECT_THROW(rate_doubling_generator(sim_, random_pool_source(pool_),
                                       collect(), inverted, util::rng{1}),
               std::invalid_argument);
}

TEST_F(GeneratorTest, HeavyPoolSourceUsesMaximumSizes) {
  auto source = heavy_pool_source(pool_);
  util::rng rng{6};
  for (int i = 0; i < 50; ++i) {
    const auto request = source(rng);
    EXPECT_EQ(request.size, request.algorithm->max_size());
  }
}

TEST_F(GeneratorTest, StaticSourceAlwaysSameTask) {
  auto source = static_source(pool_.static_minimax_request());
  util::rng rng{6};
  for (int i = 0; i < 10; ++i) {
    const auto request = source(rng);
    EXPECT_EQ(request.algorithm->name(), "minimax");
    EXPECT_EQ(request.size, 9u);
  }
}

TEST_F(GeneratorTest, StaticSourceRejectsNull) {
  EXPECT_THROW(static_source(tasks::task_request{}), std::invalid_argument);
}

TEST_F(GeneratorTest, ReplayFiresAtExactTimestamps) {
  std::vector<replay_event> events = {
      {500.0, 3}, {100.0, 1}, {900.0, 2}};  // deliberately unsorted
  replay_generator gen{sim_, random_pool_source(pool_), collect(),
                       events, util::rng{7}};
  EXPECT_EQ(gen.scheduled(), 3u);
  sim_.run();
  EXPECT_EQ(gen.emitted(), 3u);
  ASSERT_EQ(received_.size(), 3u);
  EXPECT_EQ(received_[0].created_at, 100.0);
  EXPECT_EQ(received_[0].user, 1u);
  EXPECT_EQ(received_[1].created_at, 500.0);
  EXPECT_EQ(received_[2].user, 2u);
}

TEST_F(GeneratorTest, ReplayBatchesSameTimestampBursts) {
  // Six trace entries at two distinct timestamps must cost two simulator
  // events, not six, while emitting every entry in (time, original-order)
  // order.
  std::vector<replay_event> events = {{200.0, 10}, {100.0, 20}, {200.0, 11},
                                      {100.0, 21}, {200.0, 12}, {100.0, 22}};
  replay_generator gen{sim_, random_pool_source(pool_), collect(), events,
                       util::rng{7}};
  EXPECT_EQ(gen.scheduled(), 6u);
  EXPECT_EQ(sim_.pending_events(), 2u);
  sim_.run();
  EXPECT_EQ(gen.emitted(), 6u);
  ASSERT_EQ(received_.size(), 6u);
  const std::vector<user_id> expected_users = {20, 21, 22, 10, 11, 12};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(received_[i].user, expected_users[i]) << "entry " << i;
    EXPECT_EQ(received_[i].created_at, i < 3 ? 100.0 : 200.0);
  }
}

TEST_F(GeneratorTest, ReplayEmptyEventListIsFine) {
  replay_generator gen{sim_, random_pool_source(pool_), collect(), {},
                       util::rng{7}};
  sim_.run();
  EXPECT_EQ(gen.emitted(), 0u);
}

TEST_F(GeneratorTest, ReplayValidation) {
  EXPECT_THROW(replay_generator(sim_, {}, collect(), {}, util::rng{1}),
               std::invalid_argument);
  EXPECT_THROW(replay_generator(sim_, random_pool_source(pool_), {}, {},
                                util::rng{1}),
               std::invalid_argument);
}

TEST_F(GeneratorTest, RequestIdsAreUnique) {
  concurrent_config config;
  config.users = 50;
  config.rounds = 2;
  concurrent_generator gen{sim_, random_pool_source(pool_), collect(), config,
                           util::rng{1}};
  sim_.run();
  std::set<request_id> ids;
  for (const auto& r : received_) ids.insert(r.id);
  EXPECT_EQ(ids.size(), received_.size());
}

TEST_F(GeneratorTest, WeightedPoolSourceFollowsWeights) {
  // All mass on tasks 0 and 2; nothing else may ever be drawn, and the
  // 3:1 ratio must show up in the draw frequencies.
  std::vector<double> weights(pool_.size(), 0.0);
  weights[0] = 3.0;
  weights[2] = 1.0;
  auto source = weighted_pool_source(pool_, weights);
  util::rng rng{5};
  int first = 0;
  int third = 0;
  for (int i = 0; i < 20'000; ++i) {
    const auto request = source(rng);
    ASSERT_NE(request.algorithm, nullptr);
    if (request.algorithm == &pool_.at(0)) {
      ++first;
    } else {
      ASSERT_EQ(request.algorithm, &pool_.at(2));
      ++third;
    }
    EXPECT_GE(request.size, request.algorithm->min_size());
    EXPECT_LE(request.size, request.algorithm->max_size());
  }
  const double ratio = static_cast<double>(first) / third;
  EXPECT_NEAR(ratio, 3.0, 0.3);
}

TEST_F(GeneratorTest, WeightedPoolSourceRejectsWrongArity) {
  const std::vector<double> too_few{1.0, 2.0};
  EXPECT_THROW(weighted_pool_source(pool_, too_few), std::invalid_argument);
}

}  // namespace
}  // namespace mca::workload
