// Fault-injection subsystem tests: schedule determinism and sharding
// invariance, program validation, the SDN retry/backoff/fallback path,
// preemption failure notices, and fleet-level zero-loss accounting with
// faults enabled across thread counts.
#include "fault/fault_program.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "cloud/backend_pool.h"
#include "core/sdn_accelerator.h"
#include "exp/scenario.h"
#include "fleet/fleet_runner.h"
#include "net/operators.h"
#include "sim/simulation.h"
#include "tasks/task.h"
#include "util/sim_time.h"

namespace mca {
namespace {

// ---------------------------------------------------------------------------
// Schedule expansion: purity, ordering, shard-slice partition.
// ---------------------------------------------------------------------------

fault::fault_program hazard_program(std::vector<double> hazards) {
  fault::fault_program program;
  program.enabled = true;
  program.preempt_hazard_per_hour = std::move(hazards);
  return program;
}

TEST(FaultSchedule, PureFunctionOfProgramHorizonSeed) {
  const auto program = hazard_program({0.0, 30.0, 12.0});
  const auto a =
      fault::make_preemption_schedule(program, util::hours(4.0), 99);
  const auto b =
      fault::make_preemption_schedule(program, util::hours(4.0), 99);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].group, b[i].group);
    EXPECT_EQ(a[i].ordinal, b[i].ordinal);
    EXPECT_EQ(a[i].seq, i);  // seq is the sorted index
    if (i > 0) {
      EXPECT_GE(a[i].at, a[i - 1].at);  // time-sorted
    }
  }
  // A different seed is a different fault environment.
  const auto c =
      fault::make_preemption_schedule(program, util::hours(4.0), 100);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = c[i].at != a[i].at;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, GroupStreamsAreIndependent) {
  // Group 1's strikes must not depend on which other groups carry
  // hazards: each group draws from its own counter-split stream.
  const auto narrow = fault::make_preemption_schedule(
      hazard_program({0.0, 20.0, 0.0}), util::hours(2.0), 7);
  const auto wide = fault::make_preemption_schedule(
      hazard_program({15.0, 20.0, 40.0}), util::hours(2.0), 7);
  std::vector<fault::preemption_event> wide_g1;
  for (const auto& ev : wide) {
    if (ev.group == 1) wide_g1.push_back(ev);
  }
  ASSERT_EQ(narrow.size(), wide_g1.size());
  for (std::size_t i = 0; i < narrow.size(); ++i) {
    EXPECT_EQ(narrow[i].at, wide_g1[i].at);
    EXPECT_EQ(narrow[i].ordinal, wide_g1[i].ordinal);
  }
}

TEST(FaultSchedule, DisabledOrZeroHazardDrawsNothing) {
  fault::fault_program off = hazard_program({50.0, 50.0});
  off.enabled = false;
  EXPECT_TRUE(
      fault::make_preemption_schedule(off, util::hours(8.0), 1).empty());
  EXPECT_TRUE(fault::make_preemption_schedule(hazard_program({0.0, 0.0}),
                                              util::hours(8.0), 1)
                  .empty());
  EXPECT_TRUE(fault::make_preemption_schedule(hazard_program({50.0}), 0.0, 1)
                  .empty());
}

TEST(FaultSchedule, ShardSlicesPartitionTheMonolithSchedule) {
  // seq % shard_count slicing must reproduce the monolith's global fault
  // set exactly, for any shard count: same strikes, each on exactly one
  // shard.
  const auto full = fault::make_preemption_schedule(
      hazard_program({10.0, 25.0, 5.0}), util::hours(6.0), 4242);
  ASSERT_GT(full.size(), 10u);
  for (const std::size_t shard_count : {1u, 2u, 3u, 5u}) {
    std::vector<fault::preemption_event> merged;
    for (std::size_t k = 0; k < shard_count; ++k) {
      for (const auto& ev : full) {
        if (ev.seq % shard_count == k) merged.push_back(ev);
      }
    }
    ASSERT_EQ(merged.size(), full.size()) << shard_count << " shards";
    std::sort(merged.begin(), merged.end(),
              [](const fault::preemption_event& a,
                 const fault::preemption_event& b) { return a.seq < b.seq; });
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_EQ(merged[i].at, full[i].at);
      EXPECT_EQ(merged[i].group, full[i].group);
      EXPECT_EQ(merged[i].ordinal, full[i].ordinal);
    }
  }
}

// ---------------------------------------------------------------------------
// Program validation: malformed programs rejected with actionable text.
// ---------------------------------------------------------------------------

std::string rejection_of(const fault::fault_program& program,
                         util::time_ms horizon) {
  try {
    fault::validate(program, horizon, "test");
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(FaultValidate, RejectsNegativeHazard) {
  auto program = hazard_program({1.0, -3.0});
  const std::string what = rejection_of(program, util::hours(1.0));
  EXPECT_NE(what.find("preempt_hazard_per_hour[1]"), std::string::npos)
      << what;
  EXPECT_NE(what.find("negative"), std::string::npos) << what;
}

TEST(FaultValidate, RejectsOutageOutsideHorizonOrInverted) {
  fault::fault_program program;
  program.enabled = true;
  program.outages = {{1, util::minutes(50.0), util::minutes(70.0)}};
  std::string what = rejection_of(program, util::hours(1.0));
  EXPECT_NE(what.find("outside the scenario duration"), std::string::npos)
      << what;

  program.outages = {{1, util::minutes(20.0), util::minutes(10.0)}};
  what = rejection_of(program, util::hours(1.0));
  EXPECT_NE(what.find("empty or inverted"), std::string::npos) << what;
}

TEST(FaultValidate, RejectsZeroRetriesWithoutFallback) {
  fault::fault_program program;
  program.enabled = true;
  program.max_retries = 0;
  program.local_fallback = false;
  const std::string what = rejection_of(program, util::hours(1.0));
  EXPECT_NE(what.find("max_retries is 0 with local_fallback disabled"),
            std::string::npos)
      << what;
}

TEST(FaultValidate, RejectsBackoffCapBelowBase) {
  fault::fault_program program;
  program.enabled = true;
  program.retry_backoff_base_ms = 500.0;
  program.retry_backoff_cap_ms = 100.0;
  const std::string what = rejection_of(program, util::hours(1.0));
  EXPECT_NE(what.find("retry_backoff_cap_ms"), std::string::npos) << what;
}

TEST(FaultValidate, DisabledProgramIsNeverRejected) {
  fault::fault_program program = hazard_program({-1.0});
  program.enabled = false;
  program.outages = {{0, util::hours(5.0), util::hours(2.0)}};
  EXPECT_NO_THROW(fault::validate(program, util::hours(1.0), "test"));
}

TEST(FaultValidate, ScenarioValidationNamesTheScenario) {
  exp::scenario_spec spec;
  spec.name = "broken_faults";
  spec.faults.enabled = true;
  spec.faults.outages = {{1, 0.0, spec.duration * 2.0}};
  try {
    exp::validate(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("broken_faults"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Report vocabulary and trace-lane spans.
// ---------------------------------------------------------------------------

TEST(FaultKind, NamesAreStable) {
  EXPECT_STREQ(fault::fault_kind_name(fault::fault_kind::preemption),
               "preemption");
  EXPECT_STREQ(fault::fault_kind_name(fault::fault_kind::outage_begin),
               "outage_begin");
  EXPECT_STREQ(fault::fault_kind_name(fault::fault_kind::outage_end),
               "outage_end");
}

TEST(FaultSpans, OneSpanPerOutageOneMarkerPerStrike) {
  fault::fault_program program = hazard_program({0.0, 40.0});
  program.outages = {{2, util::minutes(10.0), util::minutes(20.0)}};
  const auto schedule =
      fault::make_preemption_schedule(program, util::hours(1.0), 11);
  ASSERT_GT(schedule.size(), 0u);
  const auto spans = fault::fault_spans(program, schedule);
  ASSERT_EQ(spans.size(), 1 + schedule.size());
  EXPECT_EQ(spans[0].kind, obs::span_kind::fault_window);
  EXPECT_EQ(spans[0].arg_a, 2u);
  EXPECT_EQ(spans[0].arg_b,
            static_cast<std::uint64_t>(fault::fault_kind::outage_begin));
  EXPECT_DOUBLE_EQ(spans[0].sim_start_ms, util::minutes(10.0));
  EXPECT_DOUBLE_EQ(spans[0].sim_dur_ms, util::minutes(10.0));
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].kind, obs::span_kind::fault_window);
    EXPECT_EQ(spans[i].arg_b,
              static_cast<std::uint64_t>(fault::fault_kind::preemption));
    EXPECT_DOUBLE_EQ(spans[i].sim_dur_ms, 0.0);
    EXPECT_DOUBLE_EQ(spans[i].sim_start_ms, schedule[i - 1].at);
  }
}

// ---------------------------------------------------------------------------
// Scenario wiring: the program maps onto sdn_config / instance options.
// ---------------------------------------------------------------------------

TEST(FaultScenario, ProgramMapsOntoSystemConfig) {
  tasks::task_pool pool;
  exp::scenario_spec spec;
  spec.user_count = 4;
  spec.duration = util::hours(1.0);
  spec.faults.enabled = true;
  spec.faults.preempt_hazard_per_hour = {0.0, 20.0, 20.0, 20.0};
  spec.faults.max_retries = 3;
  spec.faults.request_timeout_ms = 7'500.0;
  spec.faults.retry_backoff_base_ms = 50.0;
  spec.faults.retry_backoff_cap_ms = 800.0;
  spec.faults.local_fallback = true;
  spec.faults.local_exec_wu_per_ms = 0.25;
  spec.faults.cold_start_mean_ms = 1'234.0;

  util::rng stream{1};
  const core::system_config config =
      exp::make_system_config(spec, pool, stream);
  EXPECT_TRUE(config.faults.active());
  EXPECT_GT(config.preemption_schedule.size(), 0u);
  // The schedule is the spec's expansion, shared by every replication.
  const auto expected = fault::make_preemption_schedule(
      spec.faults, spec.duration, spec.base_seed);
  ASSERT_EQ(config.preemption_schedule.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(config.preemption_schedule[i].at, expected[i].at);
  }
}

// ---------------------------------------------------------------------------
// SDN resilience: timeout -> retry -> fallback, failure notices, and
// deterministic backoff.
// ---------------------------------------------------------------------------

net::rtt_model fixed_link(double rtt_ms) {
  net::rtt_model_params p;
  p.log_mu = std::log(rtt_ms);
  p.log_sigma = 1e-9;
  return net::rtt_model{p, 0.0};
}

cloud::instance_type exact_type() {
  cloud::instance_type t;
  t.name = "test.exact";
  t.vcpus = 1.0;
  t.memory_gb = 64.0;
  t.cost_per_hour = 0.1;
  t.speed_factor = 1.0;
  t.jitter_sigma = 0.0;
  return t;
}

class SdnResilienceTest : public ::testing::Test {
 protected:
  SdnResilienceTest() {
    config_.routing_overhead_mean_ms = 150.0;
    config_.routing_overhead_sd_ms = 0.0;
    config_.backend_one_way_ms = 3.0;
  }

  workload::offload_request make_request(user_id user) {
    workload::offload_request r;
    r.id = ++next_id_;
    r.user = user;
    r.work = pool_.static_minimax_request();
    r.created_at = sim_.now();
    return r;
  }

  sim::simulation sim_;
  tasks::task_pool pool_;
  cloud::backend_pool backend_{sim_, util::rng{1}};
  trace::log_store log_;
  core::sdn_config config_;
  request_id next_id_ = 0;
};

TEST_F(SdnResilienceTest, TimeoutRetriesThenFallsBackLocally) {
  // Service takes ~288 ms on a 1 wu/ms core; a 100 ms timeout fires on
  // both attempts, after which the device runs the task itself.
  backend_.launch(1, exact_type());
  config_.max_retries = 1;
  config_.request_timeout_ms = 100.0;
  config_.retry_backoff_base_ms = 10.0;
  config_.retry_backoff_cap_ms = 20.0;
  config_.local_fallback = true;
  config_.local_exec_wu_per_ms = 1.0;
  core::sdn_accelerator sdn{sim_,    backend_, fixed_link(40.0),
                            &log_,   config_,  util::rng{2}};
  core::request_timing observed;
  sdn.submit(make_request(1), 1, 0.9,
             [&](const workload::offload_request&,
                 const core::request_timing& t) { observed = t; });
  sim_.run();
  EXPECT_TRUE(observed.success);
  EXPECT_TRUE(observed.local);
  // Local execution of the 280 wu task at 1 wu/ms.
  EXPECT_NEAR(observed.cloud, 280.0, 1e-9);
  // Routing absorbed both timeout windows plus one jittered backoff wait
  // in [5, 15) ms: 150 + 2*100 + backoff.
  EXPECT_GE(observed.routing, 355.0);
  EXPECT_LT(observed.routing, 365.0);
  // The stale backend completions (epoch-orphaned) must not double count.
  EXPECT_EQ(sdn.succeeded(), 1u);
  EXPECT_EQ(sdn.failed(), 0u);
}

TEST_F(SdnResilienceTest, RetryBudgetExhaustionDeliversFailureNotice) {
  // No instances, one retry, no fallback: the failure notice still pays
  // the return hops and lands at the device.
  config_.max_retries = 1;
  config_.retry_backoff_base_ms = 10.0;
  config_.retry_backoff_cap_ms = 20.0;
  core::sdn_accelerator sdn{sim_,    backend_, fixed_link(40.0),
                            &log_,   config_,  util::rng{2}};
  core::request_timing observed;
  sdn.submit(make_request(1), 1, 0.9,
             [&](const workload::offload_request&,
                 const core::request_timing& t) { observed = t; });
  sim_.run();
  EXPECT_FALSE(observed.success);
  EXPECT_FALSE(observed.local);
  EXPECT_DOUBLE_EQ(observed.cloud, 0.0);
  EXPECT_EQ(sdn.failed(), 1u);
  EXPECT_EQ(sdn.succeeded(), 0u);
}

TEST_F(SdnResilienceTest, PreemptedInFlightRetriesOnSurvivingInstance) {
  backend_.launch(1, exact_type());
  config_.max_retries = 2;
  config_.retry_backoff_base_ms = 10.0;
  config_.retry_backoff_cap_ms = 20.0;
  core::sdn_accelerator sdn{sim_,    backend_, fixed_link(40.0),
                            &log_,   config_,  util::rng{2}};
  core::request_timing observed;
  sdn.submit(make_request(1), 1, 0.9,
             [&](const workload::offload_request&,
                 const core::request_timing& t) { observed = t; });
  // Dispatch lands at ~173 ms (20 uplink + 150 routing + 3 internal); at
  // 250 ms the job is mid-service.  A second instance comes up, then the
  // loaded one is spot-killed: the failure must re-dispatch to the
  // survivor and succeed without the fallback.
  sim_.schedule_at(250.0, [&] {
    backend_.launch(1, exact_type());
    const auto strike = backend_.preempt_in(1, 0);
    EXPECT_TRUE(strike.applied);
    EXPECT_EQ(strike.killed, 1u);
  });
  sim_.run();
  EXPECT_TRUE(observed.success);
  EXPECT_FALSE(observed.local);
  EXPECT_NEAR(observed.cloud, 288.0, 1e-6);  // full re-execution
  EXPECT_EQ(sdn.succeeded(), 1u);
  EXPECT_EQ(sdn.failed(), 0u);
}

TEST_F(SdnResilienceTest, BackoffJitterIsDeterministicPerRequest) {
  config_.max_retries = 2;
  config_.local_fallback = true;
  config_.local_exec_wu_per_ms = 1.0;
  double routing[2] = {0.0, 0.0};
  for (int run = 0; run < 2; ++run) {
    sim::simulation sim;
    cloud::backend_pool backend{sim, util::rng{1}};  // empty group: retries
    core::sdn_accelerator sdn{sim,    backend, fixed_link(40.0),
                              &log_,  config_, util::rng{2}};
    workload::offload_request r;
    r.id = 77;
    r.user = 1;
    r.work = pool_.static_minimax_request();
    sdn.submit(r, 1, 0.9,
               [&, run](const workload::offload_request&,
                        const core::request_timing& t) {
                 routing[run] = t.routing;
               });
    sim.run();
  }
  EXPECT_GT(routing[0], 150.0);  // backoff waits actually accrued
  EXPECT_EQ(routing[0], routing[1]);  // bit-identical across runs
}

// ---------------------------------------------------------------------------
// Fleet-level: determinism across thread counts, zero-loss accounting,
// outage recovery, and disabled-program inertness.
// ---------------------------------------------------------------------------

exp::scenario_spec tiny_fleet_scenario() {
  exp::scenario_spec spec;
  spec.name = "tiny_fleet_faults";
  spec.base_seed = 4242;
  spec.user_count = 60;
  spec.duration = util::minutes(40.0);
  spec.slot_length = util::minutes(10.0);
  spec.gaps = exp::gap_model::exponential;
  spec.arrival_rate_hz = 0.05;
  spec.background_requests_per_burst = 2;
  spec.background_burst_period = util::seconds(10.0);
  spec.groups = {{1, "t2.nano", 1, 4.0}, {2, "t2.large", 1, 30.0}};
  spec.fleet_max_total_instances = 40;
  return spec;
}

exp::scenario_spec faulted_fleet_scenario() {
  exp::scenario_spec spec = tiny_fleet_scenario();
  spec.faults.enabled = true;
  spec.faults.preempt_hazard_per_hour = {0.0, 12.0, 12.0};
  // Mid-run outage on the initial group, ending inside the 10..20 min
  // slot so the off-cycle re-aim path runs.
  spec.faults.outages = {{1, util::minutes(12.0), util::minutes(18.0)}};
  spec.faults.cold_start_mean_ms = 1'000.0;
  spec.faults.max_retries = 2;
  spec.faults.request_timeout_ms = 30'000.0;
  spec.faults.retry_backoff_base_ms = 100.0;
  spec.faults.retry_backoff_cap_ms = 1'000.0;
  spec.faults.local_fallback = true;
  return spec;
}

TEST(FaultFleet, FingerprintIdenticalAcrossThreadCounts) {
  tasks::task_pool tasks;
  const auto spec = faulted_fleet_scenario();
  fleet::fleet_options options;
  options.shards = 4;

  fleet::fleet_result results[3];
  const std::size_t thread_counts[3] = {1, 4, 16};
  for (int i = 0; i < 3; ++i) {
    exp::thread_pool pool{thread_counts[i]};
    results[i] = fleet::run_fleet(spec, options, tasks, pool);
  }
  const auto reference = results[0].fingerprint();
  const auto obs_reference = results[0].observability.fingerprint();
  const auto timeline_reference = results[0].timeline.fingerprint();
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(results[i].fingerprint(), reference)
        << "thread count " << thread_counts[i];
    EXPECT_EQ(results[i].observability.fingerprint(), obs_reference)
        << "thread count " << thread_counts[i];
    EXPECT_EQ(results[i].timeline.fingerprint(), timeline_reference)
        << "thread count " << thread_counts[i];
  }
}

TEST(FaultFleet, ZeroLossAccountingAndRecovery) {
  tasks::task_pool tasks;
  exp::thread_pool pool{2};
  const auto spec = faulted_fleet_scenario();
  fleet::fleet_options options;
  options.shards = 2;
  const fleet::fleet_result result =
      fleet::run_fleet(spec, options, tasks, pool);
  const obs::registry& r = result.observability;

  // The zero-loss invariant: every request that entered the front-end was
  // terminally accounted — delivered as a success (cloud or local
  // fallback) or as an explicit failure notice.  Nothing vanished in a
  // preemption, outage, or timeout.
  const std::uint64_t requests = r.get(obs::counter::sdn_requests);
  const std::uint64_t successes = r.get(obs::counter::sdn_successes);
  const std::uint64_t failures = r.get(obs::counter::sdn_failures);
  EXPECT_GT(requests, 0u);
  EXPECT_EQ(requests, successes + failures);
  EXPECT_LE(r.get(obs::counter::sdn_local_fallbacks), successes);

  // The fault engine actually fired: every shard opened and closed the
  // scheduled outage; the outage forced fallbacks on the drained group.
  EXPECT_EQ(r.get(obs::counter::fault_outages), 2u);
  EXPECT_EQ(r.get(obs::counter::fault_recoveries), 2u);
  EXPECT_GT(r.get(obs::counter::sdn_local_fallbacks) +
                r.get(obs::counter::sdn_retries),
            0u);
  // Cold starts were paid on the initial launches at least.
  EXPECT_GT(r.get(obs::counter::fault_cold_starts), 0u);
  // Preemption strikes only apply when the group has a live member, so
  // applied <= scheduled; killed jobs were all failure-notified (covered
  // by the zero-loss equation above).
  const auto schedule = fault::make_preemption_schedule(
      spec.faults, spec.duration, spec.base_seed);
  EXPECT_LE(r.get(obs::counter::fault_preemptions), schedule.size());
}

TEST(FaultFleet, DisabledProgramIsByteInert) {
  // A populated-but-disabled fault program must leave the run bit-for-bit
  // identical to a spec that never heard of faults: no rng draws, no
  // events, no counter deltas.
  tasks::task_pool tasks;
  const auto pristine = tiny_fleet_scenario();
  auto disabled = tiny_fleet_scenario();
  disabled.faults = faulted_fleet_scenario().faults;
  disabled.faults.enabled = false;

  fleet::fleet_options options;
  options.shards = 2;
  exp::thread_pool pool{2};
  const auto a = fleet::run_fleet(pristine, options, tasks, pool);
  const auto b = fleet::run_fleet(disabled, options, tasks, pool);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.observability.fingerprint(), b.observability.fingerprint());
  EXPECT_EQ(a.timeline.fingerprint(), b.timeline.fingerprint());
  EXPECT_EQ(b.observability.get(obs::counter::fault_outages), 0u);
  EXPECT_EQ(b.observability.get(obs::counter::sdn_retries), 0u);
}

}  // namespace
}  // namespace mca
