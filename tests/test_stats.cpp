#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace mca::util {
namespace {

TEST(RunningStats, EmptyDefaults) {
  running_stats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  running_stats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownValues) {
  running_stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  rng r{5};
  running_stats all;
  running_stats left;
  running_stats right;
  for (int i = 0; i < 1'000; ++i) {
    const double x = r.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  running_stats a;
  a.add(1.0);
  a.add(2.0);
  running_stats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  running_stats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Percentile, KnownQuartiles) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.5);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 7.0);
}

TEST(Percentile, ThrowsOnEmptyOrBadQ) {
  const std::vector<double> empty;
  const std::vector<double> one{1.0};
  EXPECT_THROW(percentile(empty, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile(one, -0.1), std::invalid_argument);
  EXPECT_THROW(percentile(one, 1.1), std::invalid_argument);
}

TEST(Summary, MatchesRunningStats) {
  rng r{6};
  std::vector<double> xs;
  running_stats s;
  for (int i = 0; i < 5'000; ++i) {
    const double x = r.uniform(0.0, 100.0);
    xs.push_back(x);
    s.add(x);
  }
  const summary sum = summary_of(xs);
  EXPECT_EQ(sum.count, 5'000u);
  EXPECT_NEAR(sum.mean, s.mean(), 1e-9);
  EXPECT_NEAR(sum.stddev, s.stddev(), 1e-9);
  EXPECT_EQ(sum.min, s.min());
  EXPECT_EQ(sum.max, s.max());
  EXPECT_NEAR(sum.median, 50.0, 2.0);
  EXPECT_LT(sum.p5, sum.p25);
  EXPECT_LT(sum.p25, sum.median);
  EXPECT_LT(sum.median, sum.p75);
  EXPECT_LT(sum.p75, sum.p95);
}

TEST(Summary, ThrowsOnEmpty) {
  const std::vector<double> empty;
  EXPECT_THROW(summary_of(empty), std::invalid_argument);
}

TEST(MeanStddevOf, Basics) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.0);
  EXPECT_NEAR(stddev_of(xs), 1.0, 1e-12);
  const std::vector<double> empty;
  EXPECT_EQ(mean_of(empty), 0.0);
  EXPECT_EQ(stddev_of(empty), 0.0);
}

// Property sweep: percentile_sorted must be monotone in q for any data.
class PercentileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileMonotone, MonotoneInQ) {
  rng r{GetParam()};
  std::vector<double> xs;
  const int n = 1 + static_cast<int>(r.uniform_int(1, 200));
  for (int i = 0; i < n; ++i) xs.push_back(r.normal(0.0, 10.0));
  std::sort(xs.begin(), xs.end());
  double last = percentile_sorted(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double v = percentile_sorted(xs, q);
    EXPECT_GE(v, last - 1e-12);
    last = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mca::util
