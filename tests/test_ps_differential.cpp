// Differential test: the analytic virtual-time processor-sharing
// implementation in cloud::instance against the pre-overhaul per-event
// sweep, kept here as a reference oracle.
//
// The oracle re-implements the legacy algorithm verbatim: every event
// sweeps all active jobs decrementing `remaining_wu`, the next completion
// is an O(n) min scan, and the pending event is cancelled and re-inserted
// on every state change.  Both implementations draw identical rng streams
// (one lognormal per accepted submission), so any divergence beyond
// floating-point noise is a semantics bug in the rewrite, not workload
// randomness.
//
// Expected agreement: admission/drop decisions, completion counts, and
// per-job completion/service times to 1e-6 ms.  Bit-identity is NOT
// expected — the virtual-time formulation rounds through a shared clock
// where the sweep rounded per-job — which is exactly why these traces
// (simultaneous-finish batches, kWorkEpsilon near-ties, credit
// exhaustion, drains, callback resubmission) pin the semantics instead.
#include "cloud/instance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "sim/simulation.h"
#include "util/rng.h"

namespace mca::cloud {
namespace {

constexpr double kWorkEpsilon = 1e-6;  // mirrors instance.cpp

// ---------------------------------------------------------------------------
// Legacy oracle: the event-rescheduling PS instance exactly as shipped
// before the virtual-time overhaul (per-job remaining_wu, O(n) sweeps,
// cancel + re-insert per event).  Do not modernize.
// ---------------------------------------------------------------------------
class legacy_ps_oracle {
 public:
  legacy_ps_oracle(sim::simulation& sim, const instance_type& type,
                   util::rng rng, instance::options opts)
      : sim_{sim},
        type_{type},
        rng_{rng},
        opts_{opts},
        last_update_{sim.now()},
        credits_{opts.initial_credits_core_ms} {}

  ~legacy_ps_oracle() {
    if (pending_.valid()) sim_.cancel(pending_);
  }

  bool submit(double work_units, instance::completion_fn on_complete) {
    if (work_units < 0.0) throw std::invalid_argument{"submit: negative work"};
    if (draining_ || active_.size() >= type_.max_concurrent()) {
      ++dropped_;
      return false;
    }
    advance();
    const double noisy = work_units * rng_.lognormal(0.0, type_.jitter_sigma) +
                         k_spawn_overhead_wu;
    jobs_.push_back({noisy, sim_.now(), std::move(on_complete)});
    active_.push_back(static_cast<std::uint32_t>(jobs_.size() - 1));
    reschedule();
    return true;
  }

  void drain() noexcept { draining_ = true; }
  std::uint64_t completed() const noexcept { return completed_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  double credit_balance() const noexcept { return credits_; }
  bool throttled() const noexcept {
    return opts_.enable_cpu_credits && credits_ <= 0.0;
  }

 private:
  struct job {
    double remaining_wu = 0.0;
    util::time_ms submitted_at = 0.0;
    instance::completion_fn on_complete;
  };

  double steal(std::size_t n) const noexcept {
    if (type_.steal_max <= 0.0 || n == 0) return 0.0;
    const double x = static_cast<double>(n);
    return type_.steal_max * x / (x + 8.0);
  }

  double effective_cores() const noexcept {
    if (opts_.enable_cpu_credits && credits_ <= 0.0) {
      return std::max(type_.baseline_fraction * type_.vcpus, 0.05);
    }
    return type_.vcpus;
  }

  double rate_per_job(std::size_t n) const noexcept {
    if (n == 0) return 0.0;
    const double cores = effective_cores();
    const double share = std::min(1.0, cores / static_cast<double>(n));
    return type_.speed_factor * (1.0 - steal(n)) * share;
  }

  void advance() {
    const util::time_ms now = sim_.now();
    const double elapsed = now - last_update_;
    if (elapsed <= 0.0) {
      last_update_ = now;
      return;
    }
    const std::size_t n = active_.size();
    if (n > 0) {
      const double done = elapsed * rate_per_job(n);
      for (const std::uint32_t idx : active_) jobs_[idx].remaining_wu -= done;
      const double busy = std::min(static_cast<double>(n), effective_cores());
      if (opts_.enable_cpu_credits) {
        const double accrual = type_.baseline_fraction * type_.vcpus;
        credits_ += elapsed * (accrual - busy);
        credits_ = std::clamp(credits_, 0.0,
                              24.0 * 3'600'000.0 * accrual);
      }
    } else if (opts_.enable_cpu_credits) {
      const double accrual = type_.baseline_fraction * type_.vcpus;
      credits_ = std::min(credits_ + elapsed * accrual,
                          24.0 * 3'600'000.0 * accrual);
    }
    last_update_ = now;
  }

  void reschedule() {
    if (pending_.valid()) {
      sim_.cancel(pending_);
      pending_ = {};
    }
    if (active_.empty()) return;
    double min_remaining = std::numeric_limits<double>::infinity();
    for (const std::uint32_t idx : active_) {
      min_remaining = std::min(min_remaining, jobs_[idx].remaining_wu);
    }
    const double rate = rate_per_job(active_.size());
    double eta = std::max(min_remaining, 0.0) / rate;
    if (opts_.enable_cpu_credits && credits_ > 0.0) {
      const double busy =
          std::min(static_cast<double>(active_.size()), type_.vcpus);
      const double accrual = type_.baseline_fraction * type_.vcpus;
      if (busy > accrual) {
        const double exhaustion = credits_ / (busy - accrual);
        if (exhaustion + 1e-9 < eta) eta = std::max(exhaustion, 1e-6);
      }
    }
    pending_ = sim_.schedule_after(eta, [this] { on_completion_event(); });
  }

  void on_completion_event() {
    pending_ = {};
    advance();
    std::vector<std::uint32_t> finished;
    std::size_t keep = 0;
    for (const std::uint32_t idx : active_) {
      if (jobs_[idx].remaining_wu <= kWorkEpsilon) {
        finished.push_back(idx);
      } else {
        active_[keep++] = idx;
      }
    }
    active_.resize(keep);
    for (const std::uint32_t idx : finished) {
      job& j = jobs_[idx];
      const util::time_ms service_time = sim_.now() - j.submitted_at;
      instance::completion_fn fn = std::move(j.on_complete);
      j.on_complete = nullptr;
      ++completed_;
      if (fn) fn(service_time, true);
    }
    reschedule();
  }

  sim::simulation& sim_;
  instance_type type_;
  util::rng rng_;
  instance::options opts_;
  std::vector<job> jobs_;
  std::vector<std::uint32_t> active_;
  sim::event_handle pending_{};
  util::time_ms last_update_ = 0.0;
  double credits_ = 0.0;
  bool draining_ = false;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
};

// ---------------------------------------------------------------------------
// Trace driver: replays the same submission schedule against either
// implementation and records what happened.
// ---------------------------------------------------------------------------
struct trace_op {
  util::time_ms at = 0.0;
  double work = 0.0;
};

struct trace_result {
  std::vector<char> accepted;            // per op
  std::vector<double> completion_at;     // per op, -1 if never completed
  std::vector<double> service;           // per op, -1 if never completed
  std::uint64_t completed = 0;
  std::uint64_t dropped = 0;
  double credits = 0.0;
  bool throttled = false;
};

template <typename Server, typename... Extra>
trace_result run_trace(const instance_type& type, instance::options opts,
                       const std::vector<trace_op>& ops, double drain_at,
                       std::uint64_t seed, Extra&&... extra) {
  sim::simulation sim;
  Server server{sim, std::forward<Extra>(extra)..., type, util::rng{seed},
                opts};
  trace_result r;
  r.accepted.assign(ops.size(), 0);
  r.completion_at.assign(ops.size(), -1.0);
  r.service.assign(ops.size(), -1.0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    sim.schedule_at(ops[i].at, [&, i] {
      r.accepted[i] = server.submit(ops[i].work,
                                    [&r, i, &sim](double s, bool) {
                                      r.completion_at[i] = sim.now();
                                      r.service[i] = s;
                                    })
                          ? 1
                          : 0;
    });
  }
  if (drain_at >= 0.0) {
    sim.schedule_at(drain_at, [&server] { server.drain(); });
  }
  sim.run();
  r.completed = server.completed();
  r.dropped = server.dropped();
  r.credits = server.credit_balance();
  r.throttled = server.throttled();
  return r;
}

trace_result run_new(const instance_type& type, instance::options opts,
                     const std::vector<trace_op>& ops, double drain_at,
                     std::uint64_t seed) {
  return run_trace<instance>(type, opts, ops, drain_at, seed,
                             static_cast<instance_id>(1));
}

trace_result run_legacy(const instance_type& type, instance::options opts,
                        const std::vector<trace_op>& ops, double drain_at,
                        std::uint64_t seed) {
  return run_trace<legacy_ps_oracle>(type, opts, ops, drain_at, seed);
}

void expect_equivalent(const trace_result& vt, const trace_result& legacy,
                       double tol = 1e-6) {
  ASSERT_EQ(vt.accepted.size(), legacy.accepted.size());
  EXPECT_EQ(vt.completed, legacy.completed);
  EXPECT_EQ(vt.dropped, legacy.dropped);
  EXPECT_EQ(vt.throttled, legacy.throttled);
  EXPECT_NEAR(vt.credits, legacy.credits, 1e-3);
  for (std::size_t i = 0; i < vt.accepted.size(); ++i) {
    EXPECT_EQ(vt.accepted[i], legacy.accepted[i]) << "op " << i;
    EXPECT_NEAR(vt.completion_at[i], legacy.completion_at[i], tol)
        << "op " << i;
    EXPECT_NEAR(vt.service[i], legacy.service[i], tol) << "op " << i;
  }
}

instance_type base_type() {
  instance_type t;
  t.name = "diff.test";
  t.vcpus = 2.0;
  t.memory_gb = 64.0;
  t.cost_per_hour = 0.1;
  t.speed_factor = 1.0;
  t.jitter_sigma = 0.0;
  t.steal_max = 0.0;
  t.baseline_fraction = 1.0;
  return t;
}

// ---------------------------------------------------------------------------
// Deterministic cases
// ---------------------------------------------------------------------------

TEST(PsDifferential, SimultaneousFinishersDrainAsOneBatchInOrder) {
  // Five identical jobs submitted at the same instant finish at the same
  // instant; both implementations must complete all of them at one time,
  // in submission order.
  std::vector<trace_op> ops;
  for (int i = 0; i < 5; ++i) ops.push_back({10.0, 12.0});
  const auto vt = run_new(base_type(), {}, ops, -1.0, 3);
  const auto legacy = run_legacy(base_type(), {}, ops, -1.0, 3);
  expect_equivalent(vt, legacy);
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(vt.completion_at[i], vt.completion_at[0]);
  }
}

TEST(PsDifferential, WithinEpsilonFinishersCompleteTogether) {
  // Work totals differing by less than kWorkEpsilon complete in the same
  // event in both implementations (remaining <= eps when the first one
  // finishes); totals differing by more complete apart.
  std::vector<trace_op> together = {{0.0, 20.0},
                                    {0.0, 20.0 + 0.25 * kWorkEpsilon}};
  auto vt = run_new(base_type(), {}, together, -1.0, 4);
  auto legacy = run_legacy(base_type(), {}, together, -1.0, 4);
  expect_equivalent(vt, legacy);
  EXPECT_EQ(vt.completion_at[0], vt.completion_at[1]);

  std::vector<trace_op> apart = {{0.0, 20.0}, {0.0, 20.0 + 1e-3}};
  vt = run_new(base_type(), {}, apart, -1.0, 4);
  legacy = run_legacy(base_type(), {}, apart, -1.0, 4);
  expect_equivalent(vt, legacy);
  EXPECT_LT(vt.completion_at[0], vt.completion_at[1]);
}

TEST(PsDifferential, DrainCutsAdmissionIdentically) {
  std::vector<trace_op> ops = {
      {0.0, 30.0}, {5.0, 30.0}, {60.0, 10.0}, {70.0, 10.0}};
  const auto vt = run_new(base_type(), {}, ops, 50.0, 5);
  const auto legacy = run_legacy(base_type(), {}, ops, 50.0, 5);
  expect_equivalent(vt, legacy);
  EXPECT_EQ(vt.accepted[2], 0);
  EXPECT_EQ(vt.accepted[3], 0);
  EXPECT_EQ(vt.dropped, 2u);
}

TEST(PsDifferential, CreditExhaustionSlopeChangeAgrees) {
  auto type = base_type();
  type.vcpus = 1.0;
  type.baseline_fraction = 0.1;
  instance::options opts;
  opts.enable_cpu_credits = true;
  opts.initial_credits_core_ms = 40.0;
  // One long job exhausts the balance mid-flight; a second arrives while
  // throttled; both finish under the baseline slope.
  std::vector<trace_op> ops = {{0.0, 100.0}, {200.0, 5.0}};
  const auto vt = run_new(type, opts, ops, -1.0, 6);
  const auto legacy = run_legacy(type, opts, ops, -1.0, 6);
  expect_equivalent(vt, legacy, 1e-5);
  EXPECT_TRUE(vt.throttled);
}

// ---------------------------------------------------------------------------
// Randomized sweep: mixed arrival bursts, jitter, steal, occasional
// near-zero work, drains, and credit configs across seeds.
// ---------------------------------------------------------------------------
class PsDifferentialRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PsDifferentialRandom, TraceMatchesLegacySweep) {
  const std::uint64_t seed = GetParam();
  util::rng gen{seed * 977 + 11};

  auto type = base_type();
  type.vcpus = (seed % 3 == 0) ? 1.0 : 2.0;
  type.jitter_sigma = (seed % 2 == 0) ? 0.3 : 0.0;
  type.steal_max = (seed % 4 == 0) ? 0.4 : 0.0;
  if (seed % 5 == 1) type.memory_gb = 0.4;  // small admission cap -> drops

  instance::options opts;
  if (seed % 3 == 2) {
    opts.enable_cpu_credits = true;
    opts.initial_credits_core_ms = gen.uniform(20.0, 120.0);
    type.baseline_fraction = 0.2;
  }

  std::vector<trace_op> ops;
  double at = 0.0;
  const int n = 30 + static_cast<int>(gen.uniform_int(0, 40));
  for (int i = 0; i < n; ++i) {
    // ~1/3 of arrivals land on the previous timestamp (burst), the rest
    // advance by a random gap that sometimes lets the server go idle.
    if (i > 0 && gen.uniform() < 0.33) {
      at = ops.back().at;
    } else {
      at += gen.uniform(0.0, 40.0);
    }
    double work = gen.uniform(0.5, 60.0);
    if (gen.uniform() < 0.1) work = gen.uniform(0.0, 1e-3);  // near-zero
    ops.push_back({at, work});
  }
  const double drain_at = (seed % 7 == 3) ? at * 0.6 : -1.0;

  const auto vt = run_new(type, opts, ops, drain_at, seed);
  const auto legacy = run_legacy(type, opts, ops, drain_at, seed);
  // Tolerance: the kWorkEpsilon (1e-6 wu) drain threshold converts to
  // time as eps / rate.  Under the credit throttle the per-job rate can
  // fall to baseline_fraction * vcpus / n ~ 0.02 wu/ms, so a job on the
  // batching boundary may legitimately land eps/rate ~ 5e-5 ms apart
  // between the two implementations (relative error ~1e-8).  5e-4 ms of
  // simulated time bounds a few such boundary events per trace while
  // still catching any semantic divergence (wrong n, wrong slope, lost
  // wake-up), which shows up as whole milliseconds.
  expect_equivalent(vt, legacy, 5e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsDifferentialRandom,
                         ::testing::Range<std::uint64_t>(0, 24));

TEST(PsDifferential, CallbackResubmissionChainsAgree) {
  // A completion callback that immediately resubmits exercises the
  // submit-during-drain-of-completions path in both implementations.
  auto run_chain = [](auto&& make_server) {
    sim::simulation sim;
    auto server = make_server(sim);
    std::vector<double> times;
    std::function<void(double, bool)> resubmit = [&](double, bool) {
      times.push_back(sim.now());
      if (times.size() < 4) server->submit(3.0, resubmit);
    };
    server->submit(3.0, resubmit);
    sim.run();
    return times;
  };
  const auto vt_times = run_chain([](sim::simulation& sim) {
    return std::make_unique<instance>(sim, 1, base_type(), util::rng{9},
                                      instance::options{});
  });
  const auto legacy_times = run_chain([](sim::simulation& sim) {
    return std::make_unique<legacy_ps_oracle>(sim, base_type(), util::rng{9},
                                              instance::options{});
  });
  ASSERT_EQ(vt_times.size(), 4u);
  ASSERT_EQ(legacy_times.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(vt_times[i], legacy_times[i], 1e-6);
  }
}

}  // namespace
}  // namespace mca::cloud
