// Sharded fleet in ~50 lines: the builtin fleet scenario split over four
// shards, provisioned by one batched coordinator ILP per slot, merged
// deterministically.
//
// Each shard runs its own closed-loop simulation over a quarter of the
// population; at every provisioning-slot boundary the coordinator folds
// the shards' demand digests, solves a single fleet-wide allocation, and
// hands each shard its instance quota.  The merged aggregate (and its
// fingerprint) is bit-identical whatever the pool size — try --jobs 1.
#include <cstdio>

#include "fleet/fleet_runner.h"

int main() {
  using namespace mca;

  tasks::task_pool tasks;
  exp::thread_pool pool;  // one worker per hardware thread

  // The builtin fleet scenario: 400 users, four acceleration groups over
  // seven EC2 tiers, fleet_shards = 4.
  exp::scenario_spec spec;
  for (const auto& builtin : exp::builtin_scenarios()) {
    if (builtin.name == "fleet") spec = builtin;
  }

  std::printf("running '%s': %zu users over %zu shards on %zu workers...\n",
              spec.name.c_str(), spec.user_count, spec.fleet_shards,
              pool.worker_count());
  const fleet::fleet_result result =
      fleet::run_fleet(spec, fleet::fleet_options{}, tasks, pool);

  std::printf("\nper shard:\n%-6s %-10s %-10s %-12s %s\n", "shard", "requests",
              "accepted", "mean [ms]", "cost [$]");
  for (std::size_t k = 0; k < result.per_shard.size(); ++k) {
    const auto& shard = result.per_shard[k];
    std::printf("%-6zu %-10zu %-10zu %-12.0f %.3f\n", k, shard.requests,
                shard.successes, shard.response.mean(), shard.total_cost_usd);
  }

  std::printf("\ncoordination (%zu slots, %zu fleet ILP solves, %zu warm):\n",
              result.slot_count, result.ilp_solves, result.warm_solves);
  for (const auto& slot : result.slots) {
    if (!slot.solved) {
      std::printf("  slot %zu: no shard predicted yet\n", slot.slot);
      continue;
    }
    std::printf(
        "  slot %zu: fleet demand %.0f users, %zu instances, $%.2f/h, "
        "queue depth %.0f\n",
        slot.slot, slot.fleet_demand, slot.fleet_instances, slot.cost_per_hour,
        slot.queue_depth);
  }

  const auto& merged = result.aggregate;
  std::printf("\nmerged over %zu shards (%.2f s wall, %.1f%% coordination):\n",
              result.shard_count, result.wall_seconds,
              result.coordination_overhead() * 100.0);
  std::printf("  requests   %zu (%.1f%% accepted)\n", merged.requests,
              merged.acceptance_rate() * 100.0);
  std::printf("  response   mean %.0f ms, p95 %.0f ms\n",
              merged.response.mean(), merged.latency.quantile(0.95));
  std::printf("  cost       $%.3f total\n", merged.cost_usd.sum());
  std::printf("  fingerprint %016llx (bit-identical at any thread count)\n",
              static_cast<unsigned long long>(result.fingerprint()));
  return 0;
}
