// Quickstart: offload real computations through the SDN-accelerator.
//
// Builds a three-group back-end (the paper's Fig. 9a deployment), runs one
// of the pool's algorithms locally to show these are real kernels, then
// offloads the static minimax benchmark at each acceleration level and
// prints the paper's timing decomposition (T1, T2, T_cloud).
#include <cstdio>

#include "cloud/backend_pool.h"
#include "core/sdn_accelerator.h"
#include "net/operators.h"
#include "sim/simulation.h"
#include "tasks/task.h"
#include "trace/log_store.h"
#include "workload/request.h"

int main() {
  using namespace mca;

  // The tasks are real: run n-queens on the spot.
  tasks::task_pool pool;
  util::rng rng{2024};
  const auto* nqueens = pool.find("nqueens");
  std::printf("local execution: %s(8) -> %llu solutions\n",
              std::string{nqueens->name()}.c_str(),
              static_cast<unsigned long long>(nqueens->execute(8, rng)));

  // A simulated deployment: one instance per acceleration group.
  sim::simulation sim;
  cloud::backend_pool backend{sim, rng.fork()};
  backend.launch(1, cloud::type_by_name("t2.nano"));
  backend.launch(2, cloud::type_by_name("t2.large"));
  backend.launch(3, cloud::type_by_name("m4.4xlarge"));

  trace::log_store log;
  core::sdn_config config;
  core::sdn_accelerator sdn{sim,  backend, net::default_lte_model(),
                            &log, config,  rng.fork()};

  // Offload the paper's static minimax task once per group.
  std::printf("\n%-8s %12s %8s %8s %10s\n", "group", "Tresponse", "T1", "T2",
              "Tcloud");
  const auto minimax = pool.static_minimax_request();
  request_id next_id = 0;
  for (group_id group = 1; group <= 3; ++group) {
    workload::offload_request request;
    request.id = ++next_id;
    request.user = 7;
    request.work = minimax;
    request.created_at = sim.now();
    sdn.submit(request, group, /*battery=*/0.8,
               [group](const workload::offload_request&,
                       const core::request_timing& t) {
                 std::printf("%-8u %9.0f ms %5.0f ms %5.0f ms %7.0f ms\n",
                             group, t.total(), t.t1(), t.t2(), t.cloud);
               });
    sim.run();
  }

  std::printf("\nlogged %zu trace records; total cloud cost so far: $%.4f\n",
              log.size(), backend.billing().total_cost(sim.now()));
  std::printf("quickstart done.\n");
  return 0;
}
