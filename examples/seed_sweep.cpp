// Seed-sweep replication: the experiment runner end to end.
//
// Declares the paper's Fig. 9 deployment as a scenario_spec, runs a
// 8-replication seed sweep on the work-stealing pool, and prints the
// per-replication spread next to the deterministically merged aggregate —
// the same machinery fig_suite uses, in ~40 lines.
#include <cstdio>

#include "exp/scenario.h"

int main() {
  using namespace mca;

  tasks::task_pool tasks;

  exp::scenario_spec spec;  // defaults = the paper's Fig. 9 deployment
  spec.name = "fig9_sweep";
  spec.duration = util::hours(1);
  spec.base_seed = 2017;

  const std::size_t replications = 8;
  exp::thread_pool pool;  // one worker per hardware thread
  std::printf("running %zu replications of '%s' on %zu workers...\n\n",
              replications, spec.name.c_str(), pool.worker_count());
  const auto result =
      exp::run_scenario(spec, spec.plan(replications), tasks, pool);

  std::printf("%-5s %-10s %-10s %-12s %-10s %s\n", "rep", "requests",
              "accepted", "mean [ms]", "p95 [ms]", "cost [$]");
  for (std::size_t r = 0; r < result.per_replication.size(); ++r) {
    const auto& rep = result.per_replication[r];
    std::printf("%-5zu %-10zu %-10zu %-12.0f %-10.0f %.3f\n", r, rep.requests,
                rep.successes, rep.response.mean(),
                rep.latency.quantile(0.95), rep.total_cost_usd);
  }
  for (const auto& error : result.errors) {
    std::printf("%-5zu FAILED: %s\n", error.index, error.message.c_str());
  }

  const auto& merged = result.aggregate;
  std::printf("\nmerged over %zu replications (%.2f s wall):\n",
              merged.replications, result.wall_seconds);
  std::printf("  requests   %zu (%.1f%% accepted)\n", merged.requests,
              merged.acceptance_rate() * 100.0);
  std::printf("  response   mean %.0f ms, p95 %.0f ms\n",
              merged.response.mean(), merged.latency.quantile(0.95));
  std::printf("  cost       $%.3f +/- %.3f per replication\n",
              merged.cost_usd.mean(), merged.cost_usd.stddev());
  std::printf("  fingerprint %016llx (bit-identical at any thread count)\n",
              static_cast<unsigned long long>(merged.fingerprint()));
  return result.errors.empty() ? 0 : 1;
}
