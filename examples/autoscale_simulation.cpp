// Autoscale simulation: the closed loop of predict -> allocate -> route.
//
// Runs a six-hour deployment with a usage-study-driven workload.  At every
// provisioning hour the predictor forecasts each group's user count from
// the trace log and the ILP reshapes the fleet under the account cap, all
// against hourly billing — §IV's adaptive model end to end.
#include <cstdio>
#include <memory>

#include "client/usage_trace.h"
#include "core/system.h"
#include "workload/generator.h"

int main() {
  using namespace mca;

  tasks::task_pool pool;

  // Inter-arrival gaps learned from the synthetic 6-participant study,
  // mixed with between-session idle periods (sessions are bursty).
  auto study = std::make_shared<util::empirical_distribution>(
      client::study_interarrival_distribution({}, 77));
  auto session_gaps = [study](util::rng& rng) {
    if (rng.bernoulli(0.85)) return study->sample(rng);
    return util::minutes(rng.uniform(4.0, 25.0));  // idle between sessions
  };

  core::system_config config;
  config.groups = {
      {1, "t2.nano", 1, 10.0},
      {2, "t2.large", 1, 40.0},
      {3, "m4.4xlarge", 1, 100.0},
  };
  config.user_count = 100;
  config.tasks = workload::random_pool_source(pool);
  config.gaps = session_gaps;
  config.slot_length = util::hours(1);
  config.max_total_instances = 20;  // Amazon's default account cap
  config.background_requests_per_burst = 10;
  config.seed = 42;

  core::offloading_system system{config, pool};
  std::printf("running 6 simulated hours with %zu users...\n\n",
              config.user_count);
  system.run(util::hours(6));

  std::printf("%-6s %-22s %-22s %-9s %-10s\n", "hour", "actual users/group",
              "predicted next", "accuracy", "fleet");
  for (const auto& slot : system.metrics().slots) {
    char actual[64];
    std::snprintf(actual, sizeof actual, "[%zu %zu %zu %zu]",
                  slot.actual_counts[0], slot.actual_counts[1],
                  slot.actual_counts[2], slot.actual_counts[3]);
    char predicted[64] = "-";
    if (slot.predicted_counts) {
      std::snprintf(predicted, sizeof predicted, "[%zu %zu %zu %zu]",
                    (*slot.predicted_counts)[0], (*slot.predicted_counts)[1],
                    (*slot.predicted_counts)[2], (*slot.predicted_counts)[3]);
    }
    char accuracy[16] = "-";
    if (slot.accuracy) {
      std::snprintf(accuracy, sizeof accuracy, "%.1f%%",
                    *slot.accuracy * 100.0);
    }
    char fleet[32] = "-";
    if (slot.plan) {
      std::snprintf(fleet, sizeof fleet, "%zu inst $%.3f/h",
                    slot.plan->total_instances(),
                    slot.plan->total_cost_per_hour);
    }
    std::printf("%-6zu %-22s %-22s %-9s %-10s\n", slot.slot_index + 1, actual,
                predicted, accuracy, fleet);
  }

  const auto& metrics = system.metrics();
  std::printf("\nrequests served: %zu   promotions: %llu   total cost: $%.3f\n",
              metrics.requests.size(),
              static_cast<unsigned long long>(metrics.promotions),
              metrics.total_cost_usd);
  if (const auto accuracy = metrics.mean_prediction_accuracy()) {
    std::printf("mean prediction accuracy: %.1f%%\n", *accuracy * 100.0);
  }
  return 0;
}
