// Trace workflow: record, export, import, replay.
//
// The paper's authors published their traces alongside the system; this
// example shows the same loop: run a deployment, export its request log
// as CSV, re-import it, and drive a *new* deployment with the recorded
// event times (`workload::replay_generator`).  Useful for regression
// comparisons: same arrival process, different backend or policy.
#include <cstdio>
#include <sstream>

#include "cloud/backend_pool.h"
#include "core/sdn_accelerator.h"
#include "net/operators.h"
#include "sim/simulation.h"
#include "tasks/task.h"
#include "trace/trace_io.h"
#include "workload/generator.h"

int main() {
  using namespace mca;
  tasks::task_pool pool;

  // --- phase 1: a short live run that produces a trace -----------------
  trace::log_store recorded;
  {
    sim::simulation sim;
    util::rng rng{55};
    cloud::backend_pool backend{sim, rng.fork()};
    backend.launch(1, cloud::type_by_name("t2.medium"));
    core::sdn_accelerator sdn{sim,       backend, net::default_lte_model(),
                              &recorded, {},      rng.fork()};
    workload::interarrival_config load;
    load.devices = 40;
    load.active_duration = util::minutes(10);
    // ~80 req/s of pool tasks: the t2.medium runs near 90% utilization,
    // so the recorded trace carries real queueing delay.
    workload::interarrival_generator gen{
        sim, workload::random_pool_source(pool),
        [&](const workload::offload_request& r) { sdn.submit(r, 1, 0.9, {}); },
        workload::exponential_interarrival(2.0), load, rng.fork()};
    sim.run();
  }
  std::printf("phase 1: recorded %zu requests\n", recorded.size());

  // --- phase 2: export + import (normally a file; a stream here) -------
  std::stringstream csv;
  trace::write_csv(recorded, csv);
  const auto imported = trace::read_csv(csv);
  std::printf("phase 2: CSV round trip, %zu records restored\n",
              imported.size());

  // --- phase 3: replay the exact arrivals against a faster backend -----
  std::vector<workload::replay_event> events;
  for (const auto& r : imported.records()) {
    events.push_back({r.timestamp, r.user});
  }
  sim::simulation sim;
  util::rng rng{56};
  cloud::backend_pool backend{sim, rng.fork()};
  backend.launch(1, cloud::type_by_name("m4.4xlarge"));
  trace::log_store replay_log;
  core::sdn_accelerator sdn{sim,         backend, net::default_lte_model(),
                            &replay_log, {},      rng.fork()};
  workload::replay_generator replay{
      sim, workload::random_pool_source(pool),
      [&](const workload::offload_request& r) { sdn.submit(r, 1, 0.9, {}); },
      std::move(events), rng.fork()};
  sim.run();

  util::running_stats original;
  for (const auto& r : imported.records()) original.add(r.rtt_ms);
  util::running_stats upgraded;
  for (const auto& r : replay_log.records()) upgraded.add(r.rtt_ms);
  std::printf("phase 3: replayed %llu requests on m4.4xlarge\n",
              static_cast<unsigned long long>(replay.emitted()));
  std::printf("\nmean response  t2.medium: %6.0f ms   m4.4xlarge: %6.0f ms "
              "(%.2fx faster)\n",
              original.mean(), upgraded.mean(),
              original.mean() / upgraded.mean());
  return 0;
}
