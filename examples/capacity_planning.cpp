// Capacity planning: benchmark the instance catalog, classify it into
// acceleration levels, and let the ILP pick the cheapest fleet.
//
// This is the paper's §IV-C.1 administrator workflow: choose a minimum
// acceleration (a response-time bound), characterize every purchasable
// type against it, then answer "what do I buy for W users per group?".
#include <cstdio>

#include "cloud/instance_type.h"
#include "core/allocator.h"
#include "core/classifier.h"
#include "tasks/task.h"

int main() {
  using namespace mca;

  tasks::task_pool pool;
  core::classifier_config config;
  config.response_bound_ms = 500.0;  // the administrator's minimum level
  config.rounds_per_level = 4;

  std::printf("characterizing %zu instance types (bound: %.0f ms)...\n\n",
              cloud::ec2_catalog().size(), config.response_bound_ms);
  std::printf("%-14s %8s %10s %12s %10s\n", "type", "$/hour", "solo[ms]",
              "capacity", "Ks[req/min]");
  for (const auto& type : cloud::ec2_catalog()) {
    const auto profile = core::characterize_type(type, pool, config);
    std::printf("%-14s %8.4f %10.1f %9zu usr %11.0f\n", type.name.c_str(),
                type.cost_per_hour, profile.solo_mean_ms,
                profile.capacity_users, profile.capacity_requests_per_min);
  }

  const auto map = core::classify(cloud::ec2_catalog(), pool, config);
  std::printf("\nacceleration groups (0 = demoted anomaly):\n");
  for (const auto& group : map.groups()) {
    std::printf("  level %u (capacity %3.0f users/instance): ", group.id,
                group.capacity_users);
    for (const auto& name : group.type_names) std::printf("%s ", name.c_str());
    std::printf("\n");
  }

  // Plan a fleet: 120 users at level 1, 60 at level 2, 25 at level 3.
  core::allocation_request request;
  request.workload_per_group = {0.0, 120.0, 60.0, 25.0};
  request.candidates_per_group.resize(4);
  for (const auto& group : map.groups()) {
    if (group.id == 0 || group.id > 3) continue;
    for (const auto& name : group.type_names) {
      const auto& type = cloud::type_by_name(name);
      request.candidates_per_group[group.id].push_back(
          {name, group.capacity_users, type.cost_per_hour});
    }
  }
  // Group 0 serves no planned workload; drop it from the model.
  request.workload_per_group.erase(request.workload_per_group.begin());
  request.candidates_per_group.erase(request.candidates_per_group.begin());

  const auto ilp = core::allocate_ilp(request);
  const auto greedy = core::allocate_greedy(request);
  std::printf("\nILP plan ($%.4f/hour, %zu instances):\n",
              ilp.total_cost_per_hour, ilp.total_instances());
  for (const auto& entry : ilp.entries) {
    std::printf("  level %u: %zu x %s\n", entry.group + 1, entry.count,
                entry.type_name.c_str());
  }
  std::printf("greedy baseline: $%.4f/hour  (ILP saves %.1f%%)\n",
              greedy.total_cost_per_hour,
              100.0 * (1.0 - ilp.total_cost_per_hour /
                                 greedy.total_cost_per_hour));
  return 0;
}
