// Code acceleration as a service — the §VII-4 business case.
//
// Characterizes the catalog, builds a subscription price sheet from the
// benchmarked capacities, and answers the paper's motivating question:
// for the price of a new flagship, how many months of cloud acceleration
// could a user buy instead?
#include <cstdio>

#include "core/caas.h"
#include "core/classifier.h"
#include "tasks/task.h"

int main() {
  using namespace mca;

  tasks::task_pool pool;
  core::classifier_config cc;
  cc.rounds_per_level = 4;
  const auto map = core::classify(cloud::ec2_catalog(), pool, cc);

  core::caas_config pricing;
  pricing.margin = 0.4;
  pricing.active_hours_per_month = 120.0;
  const auto plans = core::build_price_sheet(map, cloud::ec2_catalog(), pricing);

  std::printf("CaaS price sheet (%.0f active hours/month, %.0f%% margin)\n\n",
              pricing.active_hours_per_month, pricing.margin * 100.0);
  std::printf("%-7s %-14s %14s %12s %14s %12s\n", "level", "backed by",
              "users/instance", "cost/mo[$]", "price/mo[$]", "solo[ms]");
  for (const auto& plan : plans) {
    std::printf("%-7u %-14s %14.1f %12.3f %14.3f %12.1f\n", plan.level,
                plan.backing_type.c_str(), plan.users_per_instance,
                plan.cost_per_user_month, plan.price_per_user_month,
                plan.solo_response_ms);
  }

  std::printf("\naccelerate instead of upgrade (a $600 flagship):\n");
  for (const auto& plan : plans) {
    const auto cmp = core::caas_vs_device_upgrade(600.0, plan);
    std::printf("  level %u at $%.2f/mo -> %.0f months (%.1f years) of "
                "service\n",
                plan.level, cmp.caas_price_per_month, cmp.months_of_service,
                cmp.months_of_service / 12.0);
  }
  std::printf("\n(the paper's point: extending device lifespan via CaaS "
              "costs a fraction of new hardware)\n");
  return 0;
}
