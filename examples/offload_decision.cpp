// The §II-A offloading inequality across device classes.
//
// For every device tier and every pool algorithm: how long the task takes
// locally, how long the cloud path is expected to take (LTE + routing +
// level-1 execution), and whether the energy rule says "offload".  This is
// the paper's motivating table — old devices and wearables offload nearly
// everything, flagships barely anything.
#include <cstdio>
#include <vector>

#include "client/device.h"
#include "cloud/instance_type.h"
#include "net/operators.h"
#include "tasks/task.h"
#include "util/stats.h"

int main() {
  using namespace mca;

  tasks::task_pool pool;

  // Expected cloud path: mean LTE RTT + SDN routing + level-1 execution.
  auto lte = net::default_lte_model();
  util::rng rng{31};
  util::running_stats rtt;
  for (int i = 0; i < 20'000; ++i) rtt.add(lte.sample(rng, 12.0));
  const double routing_ms = 150.0;
  const auto& level1 = cloud::type_by_name("t2.nano");

  const std::vector<client::device_class> classes = {
      client::device_class::wearable, client::device_class::budget,
      client::device_class::midrange, client::device_class::flagship};

  for (const auto cls : classes) {
    client::mobile_device device{1, cls};
    std::printf("\n=== %s (local speed %.2f wu/ms) ===\n",
                to_string(cls), device.profile().local_speed_wu_per_ms);
    std::printf("%-12s %12s %12s %10s %10s\n", "task", "local[ms]",
                "cloud[ms]", "faster?", "offload?");
    std::size_t offloaded = 0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const auto& task = pool.at(i);
      const double work = task.work_units(task.default_size());
      const double local_ms = device.local_execution_ms(work);
      const double cloud_ms = rtt.mean() + routing_ms +
                              (work + cloud::k_spawn_overhead_wu) /
                                  level1.speed_factor;
      const bool faster = device.faster_remotely(work, cloud_ms);
      const bool offload = device.should_offload(work, cloud_ms);
      if (offload) ++offloaded;
      std::printf("%-12s %12.0f %12.0f %10s %10s\n",
                  std::string{task.name()}.c_str(), local_ms, cloud_ms,
                  faster ? "yes" : "no", offload ? "yes" : "no");
    }
    std::printf("-> offloads %zu/%zu of the pool\n", offloaded, pool.size());
  }
  std::printf("\n(the weaker the device, the more the cloud pays off — the "
              "paper's premise)\n");
  return 0;
}
