// Promotion policy comparison: what the client-side moderator buys you.
//
// The same loaded deployment is run under four policies — never promote,
// the paper's static 1/50 coin flip, the latency-threshold detector the
// architecture motivates, and the §VII-3 battery-aware rule — and the
// user-perceived response times are compared.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/system.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace {

struct policy_option {
  std::string label;
  std::function<std::unique_ptr<mca::client::promotion_policy>()> factory;
};

}  // namespace

int main() {
  using namespace mca;

  tasks::task_pool pool;
  const std::vector<policy_option> options = {
      {"never", [] { return std::make_unique<client::never_promote>(); }},
      {"static 1/50",
       [] {
         return std::make_unique<client::static_probability_promotion>(1.0 /
                                                                       50.0);
       }},
      {"latency>1.5s x3",
       [] {
         return std::make_unique<client::latency_threshold_promotion>(1'500.0,
                                                                      3);
       }},
      {"battery<30%",
       [] {
         return std::make_unique<client::battery_aware_promotion>(0.3);
       }},
  };

  std::printf("%-18s %10s %10s %10s %12s %10s\n", "policy", "mean[ms]",
              "p95[ms]", "promoted", "requests", "cost[$]");
  for (const auto& option : options) {
    core::system_config config;
    config.groups = {
        {1, "t2.nano", 1, 5.0},
        {2, "t2.large", 1, 40.0},
        {3, "m4.4xlarge", 1, 100.0},
    };
    config.user_count = 40;
    config.tasks = workload::static_source(pool.static_minimax_request());
    config.gaps = workload::fixed_interarrival(util::seconds(15));
    config.slot_length = util::minutes(30);
    config.background_requests_per_burst = 45;  // keep level 1 busy
    config.policy_factory = option.factory;
    config.seed = 9;

    core::offloading_system system{config, pool};
    system.run(util::hours(2));

    std::vector<double> responses;
    for (const auto& r : system.metrics().requests) {
      if (r.success) responses.push_back(r.response_ms);
    }
    const auto s = util::summary_of(responses);
    std::printf("%-18s %10.0f %10.0f %10llu %12zu %10.3f\n",
                option.label.c_str(), s.mean, s.p95,
                static_cast<unsigned long long>(system.metrics().promotions),
                responses.size(), system.metrics().total_cost_usd);
  }
  std::printf("\npromotion trades cloud cost for user-perceived latency.\n");
  return 0;
}
