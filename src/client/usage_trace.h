// Synthetic smartphone usage study.
//
// The paper deployed a tracking app on 6 participants' phones for 3 months
// and distilled one number range out of it: within active sessions (nights
// removed), offloadable app events arrive 100–5000 ms apart.  This module
// synthesizes an equivalent study — diurnal session starts, lognormal
// session lengths, lognormal within-session event gaps — and exposes the
// pooled inter-arrival sample in exactly the form the paper feeds to its
// load generator.
#pragma once

#include <cstddef>
#include <vector>

#include "util/empirical.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace mca::client {

/// Parameters of the synthetic study (defaults reproduce the paper's).
struct usage_study_config {
  std::size_t participants = 6;
  double days = 90.0;  ///< 3 months
  /// Mean app sessions per active (daytime) hour per participant.
  double sessions_per_active_hour = 3.0;
  /// Mean session length.
  util::time_ms mean_session_length = util::minutes(2.5);
  /// Within-session event gaps are clipped into this band (the paper's
  /// observed 100–5000 ms range).
  util::time_ms min_interarrival = 100.0;
  util::time_ms max_interarrival = 5000.0;
};

/// App-event timestamps (ms since study start) for one participant.
/// Nights (00:00–07:00) have essentially no activity.
std::vector<util::time_ms> synthesize_participant_events(
    const usage_study_config& config, util::rng& rng);

/// Pooled within-session inter-arrival samples across all participants,
/// clipped to [min_interarrival, max_interarrival] (long idle gaps between
/// sessions removed, as the paper removes inactive periods).
std::vector<double> study_interarrivals(const usage_study_config& config,
                                        util::rng& rng);

/// The study distilled into a samplable distribution.
util::empirical_distribution study_interarrival_distribution(
    const usage_study_config& config, std::uint64_t seed);

/// Diurnal session-start weight at an hour of day: ~0 at night, rising
/// through the day to an evening peak (normalized to max 1).
double diurnal_activity(double hour_of_day) noexcept;

}  // namespace mca::client
