// The client-side moderator: promotion of devices between acceleration
// groups.
//
// The paper's architecture puts the promotion decision on the mobile side:
// the moderator "monitors the execution time of the code in the
// application, and promotes the execution of code to a higher level of
// acceleration when it detects that the response time of the application
// starts to degrade".  Promotions are sequential (group n -> n+1).
//
// Policies provided:
//  * never_promote               — control group.
//  * static_probability_promotion — the paper's evaluation policy (p=1/50
//    per request).
//  * latency_threshold_promotion — the mechanism the paper motivates:
//    promote after k consecutive responses above a threshold.
//  * battery_aware_promotion     — §VII-3's sketched extension: promote
//    when battery drops below a floor, shortening radio-active time.
#pragma once

#include <memory>
#include <vector>

#include "util/ids.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace mca::client {

/// Dense per-user state for moderator policies: user ids are dense
/// (0..population) everywhere in this codebase, so a grow-on-demand flat
/// vector replaces the former per-user hash maps — no hashing and no node
/// allocation on the per-response path once the population is touched.
template <typename T>
class user_state_map {
 public:
  explicit user_state_map(T initial = T{}) : initial_{initial} {}

  T& operator[](user_id user) {
    if (user >= values_.size()) values_.resize(user + 1, initial_);
    return values_[user];
  }
  void reserve(std::size_t users) { values_.reserve(users); }

 private:
  std::vector<T> values_;
  T initial_{};
};

/// Everything a policy may look at when deciding on one response.
struct response_context {
  user_id user = 0;
  group_id current_group = 1;
  group_id max_group = 3;
  util::time_ms response_ms = 0.0;
  double battery = 1.0;
};

/// Strategy interface; implementations may keep per-user state.
class promotion_policy {
 public:
  virtual ~promotion_policy() = default;
  /// Returns the group the user should use from now on (>= current).
  virtual group_id next_group(const response_context& ctx, util::rng& rng) = 0;
  virtual const char* name() const noexcept = 0;
};

/// Keeps every user where it started.
class never_promote final : public promotion_policy {
 public:
  group_id next_group(const response_context& ctx, util::rng&) override {
    return ctx.current_group;
  }
  const char* name() const noexcept override { return "never"; }
};

/// The paper's evaluation policy: each request promotes with a fixed
/// probability (1/50 in §VI-C).
class static_probability_promotion final : public promotion_policy {
 public:
  /// Throws std::invalid_argument unless probability is in [0,1].
  explicit static_probability_promotion(double probability = 1.0 / 50.0);
  group_id next_group(const response_context& ctx, util::rng& rng) override;
  const char* name() const noexcept override { return "static_probability"; }

 private:
  double probability_;
};

/// Promote after `consecutive` responses slower than `threshold_ms` — the
/// degradation detector the architecture section describes.
class latency_threshold_promotion final : public promotion_policy {
 public:
  /// Throws std::invalid_argument on non-positive threshold/consecutive.
  latency_threshold_promotion(util::time_ms threshold_ms, int consecutive = 3);
  group_id next_group(const response_context& ctx, util::rng& rng) override;
  const char* name() const noexcept override { return "latency_threshold"; }

 private:
  util::time_ms threshold_ms_;
  int consecutive_;
  user_state_map<int> strikes_;
};

/// Two-sided latency band: promote after `consecutive` responses above the
/// upper bound, demote after `consecutive` responses below the lower bound
/// — the full "re-assigned to another group based on demand" behaviour the
/// paper sketches (demotions require a moderator with allow_demotion).
class latency_band_policy final : public promotion_policy {
 public:
  /// Throws std::invalid_argument unless 0 < lower < upper and
  /// consecutive > 0.
  latency_band_policy(util::time_ms lower_ms, util::time_ms upper_ms,
                      int consecutive = 3);
  group_id next_group(const response_context& ctx, util::rng& rng) override;
  const char* name() const noexcept override { return "latency_band"; }

 private:
  util::time_ms lower_ms_;
  util::time_ms upper_ms_;
  int consecutive_;
  user_state_map<int> slow_strikes_;
  user_state_map<int> fast_strikes_;
};

/// Promote (once per crossing) when battery falls below a floor, so the
/// radio stays open for less time per request (§VII-3).
class battery_aware_promotion final : public promotion_policy {
 public:
  /// Throws std::invalid_argument unless floor is in (0,1).
  explicit battery_aware_promotion(double battery_floor = 0.3);
  group_id next_group(const response_context& ctx, util::rng& rng) override;
  const char* name() const noexcept override { return "battery_aware"; }

 private:
  double battery_floor_;
  user_state_map<std::uint8_t> already_promoted_;  ///< bool sans vector<bool>
};

/// Tracks each user's current acceleration group and applies a policy to
/// every observed response.
class moderator {
 public:
  /// Users start in `initial_group` ("initially, each user is located in
  /// the group that provides the lowest acceleration"); `max_group` caps
  /// promotion.  With `allow_demotion` a policy may also move users down
  /// (never below `initial_group`) — the paper's "re-assigned to another
  /// group based on demand".  Throws std::invalid_argument if
  /// initial > max.
  moderator(std::unique_ptr<promotion_policy> policy, group_id initial_group,
            group_id max_group, util::rng rng, bool allow_demotion = false);

  /// Current group of a user (registering it on first sight).
  group_id group_of(user_id user);

  /// Feeds one completed response through the policy; returns the group
  /// the user will use for the *next* request.
  group_id record_response(user_id user, util::time_ms response_ms,
                           double battery = 1.0);

  /// Number of promotions applied so far across all users.
  std::uint64_t promotions() const noexcept { return promotions_; }
  /// Number of demotions (always 0 unless allow_demotion).
  std::uint64_t demotions() const noexcept { return demotions_; }
  const promotion_policy& policy() const noexcept { return *policy_; }
  group_id initial_group() const noexcept { return initial_group_; }
  group_id max_group() const noexcept { return max_group_; }
  bool allows_demotion() const noexcept { return allow_demotion_; }

 private:
  std::unique_ptr<promotion_policy> policy_;
  group_id initial_group_;
  group_id max_group_;
  util::rng rng_;
  bool allow_demotion_;
  user_state_map<group_id> groups_;
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
};

}  // namespace mca::client
