// Mobile device model: heterogeneous local compute, battery, and the
// classic offloading decision inequality.
//
// The paper's motivation is exactly this heterogeneity: "complex routines
// ... can be computed easily by last generation smartphones but can be
// expensive to compute on older devices and wearables".  Device classes
// span that range; each class has a local execution speed (work units per
// ms) and energy coefficients for CPU and radio, so the §II-A rule — a
// device delegates a task iff the effort to delegate is less than the
// effort to run it — is computable.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/ids.h"
#include "util/sim_time.h"

namespace mca::client {

/// Hardware tiers from the paper's intro narrative.
enum class device_class { wearable, budget, midrange, flagship };

const char* to_string(device_class c) noexcept;

/// Static per-class characteristics.
struct device_profile {
  device_class cls = device_class::midrange;
  double local_speed_wu_per_ms = 0.35;  ///< reference cloud core = 1.0
  double cpu_drain_per_wu = 4.0e-6;     ///< battery fraction per local wu
  double radio_drain_per_ms = 2.5e-7;   ///< battery fraction per radio-ms
};

/// Lookup of the built-in profile for a class.
device_profile profile_for(device_class cls) noexcept;

/// One simulated handset/wearable.
class mobile_device {
 public:
  mobile_device(user_id id, device_class cls, double initial_battery = 1.0);

  user_id id() const noexcept { return id_; }
  device_class cls() const noexcept { return profile_.cls; }
  const device_profile& profile() const noexcept { return profile_; }
  /// Remaining battery in [0,1].
  double battery() const noexcept { return battery_; }

  /// Time to run `work_units` locally on this hardware.
  util::time_ms local_execution_ms(double work_units) const noexcept;

  /// Battery cost of computing locally.
  double local_energy(double work_units) const noexcept;
  /// Battery cost of keeping the radio active for `active_ms` (the
  /// offloading cost: the connection stays open until the result returns).
  double offload_energy(util::time_ms active_ms) const noexcept;

  /// §II-A decision: offload iff the energy effort to delegate (radio
  /// active for the expected end-to-end response) is below the energy
  /// effort of local execution.
  bool should_offload(double work_units,
                      util::time_ms expected_response_ms) const noexcept;

  /// Latency-oriented variant: true when the cloud path is expected to be
  /// faster than local execution.
  bool faster_remotely(double work_units,
                       util::time_ms expected_response_ms) const noexcept;

  /// Drains battery for a local run / an offload round trip (clamped at 0).
  void account_local_run(double work_units) noexcept;
  void account_offload(util::time_ms active_ms) noexcept;

 private:
  user_id id_;
  device_profile profile_;
  double battery_;
};

/// Struct-of-arrays population state: one battery level and one device
/// class per user, profiles shared per class.  The closed-loop system's
/// per-request device accounting touches two flat arrays instead of a
/// vector of full mobile_device objects; semantics match mobile_device
/// exactly (same profiles, same clamping).
class device_slab {
 public:
  /// `mix` is cycled over users, like system_config::device_mix.
  device_slab(std::size_t user_count, std::span<const device_class> mix);

  // Per-request SoA accessors: one array read/write per decision or
  // accounting call, no indirection — lint-enforced as a hot-path region.
  // mca:hot-path-begin(client-soa-state)
  std::size_t size() const noexcept { return battery_.size(); }
  double battery(user_id u) const noexcept { return battery_[u]; }
  device_class cls(user_id u) const noexcept {
    return static_cast<device_class>(class_[u]);
  }
  const device_profile& profile(user_id u) const noexcept {
    return profiles_[class_[u]];
  }

  /// Battery drain of one offload round trip (radio active the whole
  /// time); mirrors mobile_device::account_offload.
  void account_offload(user_id u, util::time_ms active_ms) noexcept {
    const double drained =
        battery_[u] - active_ms * profiles_[class_[u]].radio_drain_per_ms;
    battery_[u] = drained > 0.0 ? drained : 0.0;
  }
  /// Mirrors mobile_device::account_local_run.
  void account_local_run(user_id u, double work_units) noexcept {
    const double drained =
        battery_[u] - work_units * profiles_[class_[u]].cpu_drain_per_wu;
    battery_[u] = drained > 0.0 ? drained : 0.0;
  }
  // mca:hot-path-end

 private:
  std::vector<double> battery_;
  std::vector<std::uint8_t> class_;
  device_profile profiles_[4];
};

}  // namespace mca::client
