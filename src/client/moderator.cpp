#include "client/moderator.h"

#include <algorithm>
#include <stdexcept>

namespace mca::client {

static_probability_promotion::static_probability_promotion(double probability)
    : probability_{probability} {
  if (probability < 0.0 || probability > 1.0) {
    throw std::invalid_argument{
        "static_probability_promotion: probability outside [0,1]"};
  }
}

group_id static_probability_promotion::next_group(const response_context& ctx,
                                                  util::rng& rng) {
  if (ctx.current_group < ctx.max_group && rng.bernoulli(probability_)) {
    return ctx.current_group + 1;
  }
  return ctx.current_group;
}

latency_threshold_promotion::latency_threshold_promotion(
    util::time_ms threshold_ms, int consecutive)
    : threshold_ms_{threshold_ms}, consecutive_{consecutive} {
  if (threshold_ms <= 0.0) {
    throw std::invalid_argument{"latency_threshold_promotion: threshold <= 0"};
  }
  if (consecutive <= 0) {
    throw std::invalid_argument{"latency_threshold_promotion: consecutive <= 0"};
  }
}

group_id latency_threshold_promotion::next_group(const response_context& ctx,
                                                 util::rng&) {
  int& strikes = strikes_[ctx.user];
  if (ctx.response_ms > threshold_ms_) {
    ++strikes;
  } else {
    strikes = 0;
  }
  if (strikes >= consecutive_ && ctx.current_group < ctx.max_group) {
    strikes = 0;
    return ctx.current_group + 1;
  }
  return ctx.current_group;
}

latency_band_policy::latency_band_policy(util::time_ms lower_ms,
                                         util::time_ms upper_ms,
                                         int consecutive)
    : lower_ms_{lower_ms}, upper_ms_{upper_ms}, consecutive_{consecutive} {
  if (lower_ms <= 0.0 || upper_ms <= lower_ms) {
    throw std::invalid_argument{"latency_band_policy: need 0 < lower < upper"};
  }
  if (consecutive <= 0) {
    throw std::invalid_argument{"latency_band_policy: consecutive <= 0"};
  }
}

group_id latency_band_policy::next_group(const response_context& ctx,
                                         util::rng&) {
  int& slow = slow_strikes_[ctx.user];
  int& fast = fast_strikes_[ctx.user];
  if (ctx.response_ms > upper_ms_) {
    ++slow;
    fast = 0;
  } else if (ctx.response_ms < lower_ms_) {
    ++fast;
    slow = 0;
  } else {
    slow = 0;
    fast = 0;
  }
  if (slow >= consecutive_ && ctx.current_group < ctx.max_group) {
    slow = 0;
    return ctx.current_group + 1;
  }
  if (fast >= consecutive_ && ctx.current_group > 0) {
    fast = 0;
    return ctx.current_group - 1;
  }
  return ctx.current_group;
}

battery_aware_promotion::battery_aware_promotion(double battery_floor)
    : battery_floor_{battery_floor} {
  if (battery_floor <= 0.0 || battery_floor >= 1.0) {
    throw std::invalid_argument{"battery_aware_promotion: floor outside (0,1)"};
  }
}

group_id battery_aware_promotion::next_group(const response_context& ctx,
                                             util::rng&) {
  std::uint8_t& done = already_promoted_[ctx.user];
  if (!done && ctx.battery < battery_floor_ &&
      ctx.current_group < ctx.max_group) {
    done = 1;
    return ctx.current_group + 1;
  }
  return ctx.current_group;
}

moderator::moderator(std::unique_ptr<promotion_policy> policy,
                     group_id initial_group, group_id max_group, util::rng rng,
                     bool allow_demotion)
    : policy_{std::move(policy)},
      initial_group_{initial_group},
      max_group_{max_group},
      rng_{rng},
      allow_demotion_{allow_demotion},
      groups_{initial_group} {
  if (policy_ == nullptr) {
    throw std::invalid_argument{"moderator: null policy"};
  }
  if (initial_group > max_group) {
    throw std::invalid_argument{"moderator: initial group above max"};
  }
}

// Per-request group lookup and per-response promotion decision; the dense
// user_state_map keeps both at flat-array cost (amortized member-vector
// growth only, no hashing or node allocation).
// mca:hot-path-begin(moderator-promotion)
group_id moderator::group_of(user_id user) { return groups_[user]; }

group_id moderator::record_response(user_id user, util::time_ms response_ms,
                                    double battery) {
  response_context ctx;
  ctx.user = user;
  ctx.current_group = group_of(user);
  ctx.max_group = max_group_;
  ctx.response_ms = response_ms;
  ctx.battery = battery;
  const group_id next = policy_->next_group(ctx, rng_);
  const group_id floor =
      allow_demotion_ ? initial_group_ : ctx.current_group;
  const group_id clamped = std::clamp(next, floor, max_group_);
  if (clamped > ctx.current_group) ++promotions_;
  if (clamped < ctx.current_group) ++demotions_;
  groups_[user] = clamped;
  return clamped;
}
// mca:hot-path-end

}  // namespace mca::client
