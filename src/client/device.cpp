#include "client/device.h"

#include <algorithm>

namespace mca::client {

const char* to_string(device_class c) noexcept {
  switch (c) {
    case device_class::wearable: return "wearable";
    case device_class::budget: return "budget";
    case device_class::midrange: return "midrange";
    case device_class::flagship: return "flagship";
  }
  return "unknown";
}

device_profile profile_for(device_class cls) noexcept {
  // Local speeds relative to the reference cloud core (1.0 wu/ms).  Weaker
  // hardware also pays more energy per unit of work (older process nodes).
  switch (cls) {
    case device_class::wearable:
      return {cls, 0.05, 1.2e-5, 3.0e-7};
    case device_class::budget:
      return {cls, 0.15, 7.0e-6, 2.8e-7};
    case device_class::midrange:
      return {cls, 0.35, 4.0e-6, 2.5e-7};
    case device_class::flagship:
      return {cls, 0.70, 2.5e-6, 2.2e-7};
  }
  return {};
}

mobile_device::mobile_device(user_id id, device_class cls,
                             double initial_battery)
    : id_{id},
      profile_{profile_for(cls)},
      battery_{std::clamp(initial_battery, 0.0, 1.0)} {}

util::time_ms mobile_device::local_execution_ms(
    double work_units) const noexcept {
  return work_units / profile_.local_speed_wu_per_ms;
}

double mobile_device::local_energy(double work_units) const noexcept {
  return work_units * profile_.cpu_drain_per_wu;
}

double mobile_device::offload_energy(util::time_ms active_ms) const noexcept {
  return active_ms * profile_.radio_drain_per_ms;
}

bool mobile_device::should_offload(
    double work_units, util::time_ms expected_response_ms) const noexcept {
  return offload_energy(expected_response_ms) < local_energy(work_units);
}

bool mobile_device::faster_remotely(
    double work_units, util::time_ms expected_response_ms) const noexcept {
  return expected_response_ms < local_execution_ms(work_units);
}

void mobile_device::account_local_run(double work_units) noexcept {
  battery_ = std::max(0.0, battery_ - local_energy(work_units));
}

void mobile_device::account_offload(util::time_ms active_ms) noexcept {
  battery_ = std::max(0.0, battery_ - offload_energy(active_ms));
}

device_slab::device_slab(std::size_t user_count,
                         std::span<const device_class> mix) {
  profiles_[0] = profile_for(device_class::wearable);
  profiles_[1] = profile_for(device_class::budget);
  profiles_[2] = profile_for(device_class::midrange);
  profiles_[3] = profile_for(device_class::flagship);
  battery_.assign(user_count, 1.0);
  class_.resize(user_count);
  for (std::size_t u = 0; u < user_count; ++u) {
    class_[u] = static_cast<std::uint8_t>(mix[u % mix.size()]);
  }
}

}  // namespace mca::client
