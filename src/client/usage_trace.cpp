#include "client/usage_trace.h"

#include <algorithm>
#include <cmath>

namespace mca::client {

double diurnal_activity(double hour_of_day) noexcept {
  // Asleep at night; usage builds over the morning, dips mid-afternoon,
  // peaks in the evening — the canonical smartphone usage curve.
  if (hour_of_day < 7.0 || hour_of_day >= 24.0) return 0.0;
  auto bump = [hour_of_day](double center, double width, double height) {
    const double d = hour_of_day - center;
    return height * std::exp(-d * d / (2.0 * width * width));
  };
  const double w = bump(9.5, 1.8, 0.55) + bump(13.0, 2.2, 0.6) +
                   bump(20.5, 2.6, 1.0);
  return std::min(w, 1.0);
}

std::vector<util::time_ms> synthesize_participant_events(
    const usage_study_config& config, util::rng& rng) {
  std::vector<util::time_ms> events;
  const auto total_days = static_cast<std::size_t>(config.days);
  for (std::size_t day = 0; day < total_days; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      const double weight = diurnal_activity(hour + 0.5);
      if (weight <= 0.0) continue;
      const double expected_sessions = config.sessions_per_active_hour * weight;
      // Poisson number of session starts this hour (inverse-CDF draw).
      std::size_t sessions = 0;
      double p = std::exp(-expected_sessions);
      double cumulative = p;
      const double u = rng.uniform();
      while (u > cumulative && sessions < 50) {
        ++sessions;
        p *= expected_sessions / static_cast<double>(sessions);
        cumulative += p;
      }
      for (std::size_t s = 0; s < sessions; ++s) {
        const util::time_ms session_start =
            util::hours(static_cast<double>(day) * 24.0 + hour) +
            rng.uniform(0.0, util::hours(1.0));
        // Session length: lognormal around the configured mean.
        const double sigma = 0.8;
        const double mu =
            std::log(config.mean_session_length) - sigma * sigma / 2.0;
        const util::time_ms length = rng.lognormal(mu, sigma);
        util::time_ms t = session_start;
        const util::time_ms session_end = session_start + length;
        while (t < session_end) {
          events.push_back(t);
          // Within-session gaps: lognormal body landing mostly inside the
          // paper's 100–5000 ms band.
          const double gap = std::clamp(rng.lognormal(std::log(900.0), 0.9),
                                        config.min_interarrival,
                                        config.max_interarrival);
          t += gap;
        }
      }
    }
  }
  std::sort(events.begin(), events.end());
  return events;
}

std::vector<double> study_interarrivals(const usage_study_config& config,
                                        util::rng& rng) {
  std::vector<double> gaps;
  for (std::size_t participant = 0; participant < config.participants;
       ++participant) {
    util::rng stream = rng.fork();
    const auto events = synthesize_participant_events(config, stream);
    for (std::size_t i = 1; i < events.size(); ++i) {
      const double gap = events[i] - events[i - 1];
      // Gaps longer than the band are between-session idle time, which the
      // paper removes; shorter ones are clock-resolution artifacts.
      if (gap >= config.min_interarrival && gap <= config.max_interarrival) {
        gaps.push_back(gap);
      }
    }
  }
  return gaps;
}

util::empirical_distribution study_interarrival_distribution(
    const usage_study_config& config, std::uint64_t seed) {
  util::rng rng{seed};
  const auto gaps = study_interarrivals(config, rng);
  return util::empirical_distribution{gaps};
}

}  // namespace mca::client
