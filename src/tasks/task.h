// Offloadable computational tasks.
//
// The paper's simulator offloads "common algorithms found in apps, e.g.,
// quicksort, bubblesort" plus the minimax routine used as the static
// benchmark load.  Each task here exists twice over:
//
//  * `execute` — the real C++ implementation, runnable on the spot (used by
//    examples, correctness tests, and work-unit calibration);
//  * `work_units` — an analytic cost in *work units* consumed by the cloud
//    simulator.  By convention 1 work unit costs 1 ms on the reference
//    core (speed factor 1.0, the t2 baseline core).
//
// A task's `size` parameter is task-specific (search depth, element count,
// matrix dimension, ...) and constrained to [min_size, max_size];
// `default_size` reproduces the paper's "static input" runs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace mca::tasks {

/// One offloadable algorithm (stateless; safe to share across threads).
class task {
 public:
  virtual ~task() = default;

  /// Stable identifier, e.g. "minimax".
  virtual std::string_view name() const noexcept = 0;

  /// Runs the real computation and returns a checksum of the result (so
  /// optimizers cannot elide the work and tests can assert correctness).
  /// Throws std::invalid_argument if `size` lies outside the valid range.
  virtual std::uint64_t execute(std::uint32_t size, util::rng& rng) const = 0;

  /// Analytic cost of `execute(size)` in work units (1 wu = 1 ms on the
  /// reference core).
  virtual double work_units(std::uint32_t size) const noexcept = 0;

  /// The paper's static-input size for this task.
  virtual std::uint32_t default_size() const noexcept = 0;

  /// Smallest / largest size the random workload generator may draw.
  virtual std::uint32_t min_size() const noexcept = 0;
  virtual std::uint32_t max_size() const noexcept = 0;

 protected:
  void check_size(std::uint32_t size) const;
};

/// A concrete unit of offloadable work: which algorithm and what input size.
struct task_request {
  const task* algorithm = nullptr;
  std::uint32_t size = 0;

  double work_units() const noexcept {
    return algorithm == nullptr ? 0.0 : algorithm->work_units(size);
  }
};

// Factories for the ten pool members (definitions spread over the
// per-family translation units).
std::unique_ptr<task> make_minimax();
std::unique_ptr<task> make_nqueens();
std::unique_ptr<task> make_quicksort();
std::unique_ptr<task> make_bubblesort();
std::unique_ptr<task> make_mergesort();
std::unique_ptr<task> make_fibonacci();
std::unique_ptr<task> make_sieve();
std::unique_ptr<task> make_knapsack();
std::unique_ptr<task> make_matrix_multiply();
std::unique_ptr<task> make_fft();

/// The paper's pool of 10 independent tasks.
class task_pool {
 public:
  /// Builds the standard 10-task pool.
  task_pool();

  std::size_t size() const noexcept { return tasks_.size(); }
  const task& at(std::size_t i) const { return *tasks_.at(i); }

  /// Finds a task by name; nullptr when absent.
  const task* find(std::string_view name) const noexcept;

  /// Draws a random task with a uniformly random size in its valid range
  /// ("each request ... is taken randomly from the pool; the processing
  /// required for each task is also determined randomly").
  task_request random_request(util::rng& rng) const;

  /// A request for pool task `index` with a uniformly random valid size
  /// (the size rule shared by every mix, including per-task constraints
  /// like FFT's power-of-two inputs).  Throws std::out_of_range on a bad
  /// index.
  task_request request_for(std::size_t index, util::rng& rng) const;

  /// The paper's static benchmark request: minimax at its default size.
  task_request static_minimax_request() const;

  /// Mean work units of a random draw (Monte-Carlo estimate, deterministic
  /// for a given seed); used for load calibration in benches.
  double mean_random_work_units(std::size_t samples = 10'000,
                                std::uint64_t seed = 42) const;

 private:
  std::vector<std::unique_ptr<task>> tasks_;
};

}  // namespace mca::tasks
