// Numeric kernels: naive recursive Fibonacci (the classic offloading
// micro-benchmark), sieve of Eratosthenes, and 0/1 knapsack DP.
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "tasks/task.h"

namespace mca::tasks {
namespace {

std::uint64_t naive_fib(std::uint32_t n) noexcept {
  if (n < 2) return n;
  return naive_fib(n - 1) + naive_fib(n - 2);
}

class fibonacci_task final : public task {
 public:
  std::string_view name() const noexcept override { return "fibonacci"; }
  std::uint32_t default_size() const noexcept override { return 27; }
  std::uint32_t min_size() const noexcept override { return 22; }
  std::uint32_t max_size() const noexcept override { return 30; }

  std::uint64_t execute(std::uint32_t size, util::rng& rng) const override {
    if (size > 45) throw std::invalid_argument{"fibonacci: n > 45"};
    (void)rng;
    return naive_fib(size);
  }

  double work_units(std::uint32_t size) const noexcept override {
    // Call count of naive fib is ~2*fib(n+1)-1 ~ phi^n; anchored so the
    // default (n=27) costs ~15 wu.
    constexpr double phi = 1.6180339887498949;
    return 15.0 * std::pow(phi, static_cast<double>(size) - 27.0);
  }
};

class sieve_task final : public task {
 public:
  std::string_view name() const noexcept override { return "sieve"; }
  std::uint32_t default_size() const noexcept override { return 1'000'000; }
  std::uint32_t min_size() const noexcept override { return 100'000; }
  std::uint32_t max_size() const noexcept override { return 2'000'000; }

  std::uint64_t execute(std::uint32_t size, util::rng& rng) const override {
    if (size < 2) throw std::invalid_argument{"sieve: limit < 2"};
    (void)rng;
    std::vector<bool> composite(size + 1, false);
    std::uint64_t count = 0;
    std::uint64_t checksum = 0;
    for (std::uint32_t p = 2; p <= size; ++p) {
      if (composite[p]) continue;
      ++count;
      checksum = checksum * 31 + p;
      for (std::uint64_t multiple = static_cast<std::uint64_t>(p) * p;
           multiple <= size; multiple += p) {
        composite[static_cast<std::size_t>(multiple)] = true;
      }
    }
    // Prime count in the high bits, hash of the primes in the low bits.
    return (count << 40) | (checksum & ((1ULL << 40) - 1));
  }

  double work_units(std::uint32_t size) const noexcept override {
    const double n = size;
    return n * std::log(std::log(std::max(n, 16.0))) / 100'000.0;  // ≈ 26 wu
  }
};

class knapsack_task final : public task {
 public:
  std::string_view name() const noexcept override { return "knapsack"; }
  std::uint32_t default_size() const noexcept override { return 200; }
  std::uint32_t min_size() const noexcept override { return 100; }
  std::uint32_t max_size() const noexcept override { return 400; }

  std::uint64_t execute(std::uint32_t size, util::rng& rng) const override {
    if (size == 0) throw std::invalid_argument{"knapsack: no items"};
    // `size` items, capacity 10x items; weights/values drawn from rng.
    const std::uint32_t capacity = size * 10;
    std::vector<std::uint32_t> weight(size);
    std::vector<std::uint32_t> value(size);
    for (std::uint32_t i = 0; i < size; ++i) {
      weight[i] = static_cast<std::uint32_t>(rng.uniform_int(1, 30));
      value[i] = static_cast<std::uint32_t>(rng.uniform_int(1, 100));
    }
    std::vector<std::uint64_t> best(capacity + 1, 0);
    for (std::uint32_t i = 0; i < size; ++i) {
      for (std::uint32_t c = capacity; c >= weight[i]; --c) {
        best[c] = std::max(best[c], best[c - weight[i]] + value[i]);
      }
    }
    return best[capacity];
  }

  double work_units(std::uint32_t size) const noexcept override {
    const double cells = static_cast<double>(size) * (size * 10.0);
    return cells / 30'000.0;  // default ≈ 13 wu
  }
};

}  // namespace

std::unique_ptr<task> make_fibonacci() {
  return std::make_unique<fibonacci_task>();
}
std::unique_ptr<task> make_sieve() { return std::make_unique<sieve_task>(); }
std::unique_ptr<task> make_knapsack() {
  return std::make_unique<knapsack_task>();
}

}  // namespace mca::tasks
