// Minimax over the tic-tac-toe game tree — the paper's canonical "complex
// decision-making routine" and its static benchmark load.
#include <array>
#include <stdexcept>

#include "tasks/task.h"

namespace mca::tasks {
namespace {

// Board cells: 0 empty, 1 max player, 2 min player.
using board = std::array<int, 9>;

constexpr std::array<std::array<int, 3>, 8> kLines{{{0, 1, 2},
                                                    {3, 4, 5},
                                                    {6, 7, 8},
                                                    {0, 3, 6},
                                                    {1, 4, 7},
                                                    {2, 5, 8},
                                                    {0, 4, 8},
                                                    {2, 4, 6}}};

int winner(const board& b) noexcept {
  for (const auto& line : kLines) {
    const int v = b[static_cast<std::size_t>(line[0])];
    if (v != 0 && v == b[static_cast<std::size_t>(line[1])] &&
        v == b[static_cast<std::size_t>(line[2])]) {
      return v;
    }
  }
  return 0;
}

// Plain minimax (no alpha-beta: the paper's routine is the expensive,
// unpruned decision tree).  Returns the score; `nodes` counts visits.
int minimax(board& b, int depth, bool maximizing, std::uint64_t& nodes) {
  ++nodes;
  const int w = winner(b);
  if (w == 1) return 10 + depth;
  if (w == 2) return -10 - depth;
  if (depth == 0) return 0;
  bool moved = false;
  int best = maximizing ? -1000 : 1000;
  for (std::size_t cell = 0; cell < b.size(); ++cell) {
    if (b[cell] != 0) continue;
    moved = true;
    b[cell] = maximizing ? 1 : 2;
    const int score = minimax(b, depth - 1, !maximizing, nodes);
    b[cell] = 0;
    best = maximizing ? std::max(best, score) : std::min(best, score);
  }
  return moved ? best : 0;  // draw on a full board
}

class minimax_task final : public task {
 public:
  std::string_view name() const noexcept override { return "minimax"; }
  std::uint32_t default_size() const noexcept override { return 9; }
  std::uint32_t min_size() const noexcept override { return 5; }
  std::uint32_t max_size() const noexcept override { return 7; }

  std::uint64_t execute(std::uint32_t size, util::rng& rng) const override {
    if (size < 1 || size > 9) {
      throw std::invalid_argument{"minimax: depth must be in [1,9]"};
    }
    (void)rng;  // the game tree from the empty board is deterministic
    board b{};
    std::uint64_t nodes = 0;
    const int score = minimax(b, static_cast<int>(size), true, nodes);
    return nodes ^ (static_cast<std::uint64_t>(score + 1000) << 48);
  }

  double work_units(std::uint32_t size) const noexcept override {
    // Visited-node estimate: sum of falling-factorial path counts up to the
    // requested depth, scaled so the full-depth (size 9) static benchmark
    // costs ~280 wu (≈280 ms on the reference core, matching the Fig. 5
    // single-user response-time band).
    double nodes = 1.0;
    double product = 1.0;
    for (std::uint32_t level = 0; level < size && level < 9; ++level) {
      product *= static_cast<double>(9 - level);
      nodes += product;
    }
    return nodes * (280.0 / 986'410.0);
  }
};

}  // namespace

std::unique_ptr<task> make_minimax() {
  return std::make_unique<minimax_task>();
}

}  // namespace mca::tasks
