// N-queens solution counting — the second "decision making algorithm"
// named by the paper's introduction (alongside minimax).
#include <stdexcept>

#include "tasks/task.h"

namespace mca::tasks {
namespace {

// Bitmask backtracking counter.
std::uint64_t count_solutions(unsigned n, std::uint32_t columns,
                              std::uint32_t diag_left, std::uint32_t diag_right,
                              std::uint32_t full) {
  if (columns == full) return 1;
  std::uint64_t count = 0;
  std::uint32_t available = full & ~(columns | diag_left | diag_right);
  while (available != 0) {
    const std::uint32_t bit = available & (0u - available);
    available -= bit;
    count += count_solutions(n, columns | bit, (diag_left | bit) << 1,
                             (diag_right | bit) >> 1, full);
  }
  return count;
}

class nqueens_task final : public task {
 public:
  std::string_view name() const noexcept override { return "nqueens"; }
  std::uint32_t default_size() const noexcept override { return 9; }
  std::uint32_t min_size() const noexcept override { return 6; }
  std::uint32_t max_size() const noexcept override { return 10; }

  std::uint64_t execute(std::uint32_t size, util::rng& rng) const override {
    if (size < 1 || size > 16) {
      throw std::invalid_argument{"nqueens: board size must be in [1,16]"};
    }
    (void)rng;  // exact enumeration; no randomness
    const std::uint32_t full = (1u << size) - 1;
    return count_solutions(size, 0, 0, 0, full);
  }

  double work_units(std::uint32_t size) const noexcept override {
    // Search-tree size grows roughly ~3.1x per added row in this range;
    // anchored so the default (9-queens) costs ~22 wu.
    double units = 22.0;
    for (std::uint32_t n = size; n < 9; ++n) units /= 3.1;
    for (std::uint32_t n = 9; n < size; ++n) units *= 3.1;
    return units;
  }
};

}  // namespace

std::unique_ptr<task> make_nqueens() {
  return std::make_unique<nqueens_task>();
}

}  // namespace mca::tasks
