#include <stdexcept>

#include "tasks/task.h"

namespace mca::tasks {

void task::check_size(std::uint32_t size) const {
  if (size < min_size() || size > max_size()) {
    throw std::invalid_argument{std::string{name()} +
                                ": size outside generator range"};
  }
}

task_pool::task_pool() {
  tasks_.push_back(make_minimax());
  tasks_.push_back(make_nqueens());
  tasks_.push_back(make_quicksort());
  tasks_.push_back(make_bubblesort());
  tasks_.push_back(make_mergesort());
  tasks_.push_back(make_fibonacci());
  tasks_.push_back(make_sieve());
  tasks_.push_back(make_knapsack());
  tasks_.push_back(make_matrix_multiply());
  tasks_.push_back(make_fft());
}

const task* task_pool::find(std::string_view name) const noexcept {
  for (const auto& t : tasks_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

task_request task_pool::random_request(util::rng& rng) const {
  const auto index = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(tasks_.size()) - 1));
  return request_for(index, rng);
}

task_request task_pool::request_for(std::size_t index, util::rng& rng) const {
  const task& chosen = *tasks_.at(index);
  auto size = static_cast<std::uint32_t>(
      rng.uniform_int(chosen.min_size(), chosen.max_size()));
  if (chosen.name() == "fft") {
    // FFT sizes must stay powers of two; round down to the nearest one.
    std::uint32_t pow2 = chosen.min_size();
    while (pow2 * 2 <= size) pow2 *= 2;
    size = pow2;
  }
  return {&chosen, size};
}

task_request task_pool::static_minimax_request() const {
  const task* minimax = find("minimax");
  if (minimax == nullptr) throw std::logic_error{"pool: minimax missing"};
  return {minimax, minimax->default_size()};
}

double task_pool::mean_random_work_units(std::size_t samples,
                                         std::uint64_t seed) const {
  util::rng rng{seed};
  double total = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    total += random_request(rng).work_units();
  }
  return total / static_cast<double>(samples);
}

}  // namespace mca::tasks
