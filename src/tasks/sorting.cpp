// Sorting kernels from the paper's example pool: quicksort, bubblesort,
// and mergesort over randomly generated integer arrays.
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "tasks/task.h"

namespace mca::tasks {
namespace {

std::vector<std::uint32_t> random_array(std::uint32_t n, util::rng& rng) {
  std::vector<std::uint32_t> data(n);
  for (auto& x : data) x = static_cast<std::uint32_t>(rng());
  return data;
}

/// FNV-1a over the sorted output; order-sensitive so a mis-sort changes it.
std::uint64_t checksum(const std::vector<std::uint32_t>& data) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::uint32_t x : data) {
    hash ^= x;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void quicksort_impl(std::vector<std::uint32_t>& a, std::int64_t lo,
                    std::int64_t hi) {
  while (lo < hi) {
    // Median-of-three pivot to dodge quadratic behaviour on sorted input.
    const std::int64_t mid = lo + (hi - lo) / 2;
    std::uint32_t pivot = a[static_cast<std::size_t>(mid)];
    const std::uint32_t a_lo = a[static_cast<std::size_t>(lo)];
    const std::uint32_t a_hi = a[static_cast<std::size_t>(hi)];
    if ((a_lo <= pivot && pivot <= a_hi) || (a_hi <= pivot && pivot <= a_lo)) {
      // pivot already the median
    } else if ((pivot <= a_lo && a_lo <= a_hi) ||
               (a_hi <= a_lo && a_lo <= pivot)) {
      pivot = a_lo;
    } else {
      pivot = a_hi;
    }
    std::int64_t i = lo;
    std::int64_t j = hi;
    while (i <= j) {
      while (a[static_cast<std::size_t>(i)] < pivot) ++i;
      while (a[static_cast<std::size_t>(j)] > pivot) --j;
      if (i <= j) {
        std::swap(a[static_cast<std::size_t>(i)], a[static_cast<std::size_t>(j)]);
        ++i;
        --j;
      }
    }
    // Recurse on the smaller half, loop on the larger (bounded stack).
    if (j - lo < hi - i) {
      quicksort_impl(a, lo, j);
      lo = i;
    } else {
      quicksort_impl(a, i, hi);
      hi = j;
    }
  }
}

class quicksort_task final : public task {
 public:
  std::string_view name() const noexcept override { return "quicksort"; }
  std::uint32_t default_size() const noexcept override { return 100'000; }
  std::uint32_t min_size() const noexcept override { return 20'000; }
  std::uint32_t max_size() const noexcept override { return 200'000; }

  std::uint64_t execute(std::uint32_t size, util::rng& rng) const override {
    if (size == 0) throw std::invalid_argument{"quicksort: size == 0"};
    auto data = random_array(size, rng);
    quicksort_impl(data, 0, static_cast<std::int64_t>(data.size()) - 1);
    return checksum(data);
  }

  double work_units(std::uint32_t size) const noexcept override {
    const double n = size;
    return n * std::log2(std::max(n, 2.0)) / 120'000.0;  // default ≈ 14 wu
  }
};

class bubblesort_task final : public task {
 public:
  std::string_view name() const noexcept override { return "bubblesort"; }
  std::uint32_t default_size() const noexcept override { return 3'000; }
  std::uint32_t min_size() const noexcept override { return 1'000; }
  std::uint32_t max_size() const noexcept override { return 5'000; }

  std::uint64_t execute(std::uint32_t size, util::rng& rng) const override {
    if (size == 0) throw std::invalid_argument{"bubblesort: size == 0"};
    auto data = random_array(size, rng);
    for (std::size_t pass = 0; pass + 1 < data.size(); ++pass) {
      bool swapped = false;
      for (std::size_t i = 0; i + 1 < data.size() - pass; ++i) {
        if (data[i] > data[i + 1]) {
          std::swap(data[i], data[i + 1]);
          swapped = true;
        }
      }
      if (!swapped) break;
    }
    return checksum(data);
  }

  double work_units(std::uint32_t size) const noexcept override {
    const double n = size;
    return n * n / 300'000.0;  // default ≈ 30 wu
  }
};

class mergesort_task final : public task {
 public:
  std::string_view name() const noexcept override { return "mergesort"; }
  std::uint32_t default_size() const noexcept override { return 100'000; }
  std::uint32_t min_size() const noexcept override { return 20'000; }
  std::uint32_t max_size() const noexcept override { return 200'000; }

  std::uint64_t execute(std::uint32_t size, util::rng& rng) const override {
    if (size == 0) throw std::invalid_argument{"mergesort: size == 0"};
    auto data = random_array(size, rng);
    std::vector<std::uint32_t> scratch(data.size());
    merge_sort(data, scratch, 0, data.size());
    return checksum(data);
  }

  double work_units(std::uint32_t size) const noexcept override {
    const double n = size;
    return n * std::log2(std::max(n, 2.0)) / 100'000.0;  // default ≈ 17 wu
  }

 private:
  static void merge_sort(std::vector<std::uint32_t>& a,
                         std::vector<std::uint32_t>& scratch, std::size_t lo,
                         std::size_t hi) {
    if (hi - lo < 2) return;
    const std::size_t mid = lo + (hi - lo) / 2;
    merge_sort(a, scratch, lo, mid);
    merge_sort(a, scratch, mid, hi);
    std::size_t i = lo;
    std::size_t j = mid;
    std::size_t k = lo;
    while (i < mid && j < hi) {
      scratch[k++] = (a[i] <= a[j]) ? a[i++] : a[j++];
    }
    while (i < mid) scratch[k++] = a[i++];
    while (j < hi) scratch[k++] = a[j++];
    for (std::size_t m = lo; m < hi; ++m) a[m] = scratch[m];
  }
};

}  // namespace

std::unique_ptr<task> make_quicksort() {
  return std::make_unique<quicksort_task>();
}
std::unique_ptr<task> make_bubblesort() {
  return std::make_unique<bubblesort_task>();
}
std::unique_ptr<task> make_mergesort() {
  return std::make_unique<mergesort_task>();
}

}  // namespace mca::tasks
