// Dense linear-algebra / signal kernels: matrix multiply and radix-2 FFT.
#include <cmath>
#include <complex>
#include <cstdint>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "tasks/task.h"

namespace mca::tasks {
namespace {

class matrix_multiply_task final : public task {
 public:
  std::string_view name() const noexcept override { return "matmul"; }
  std::uint32_t default_size() const noexcept override { return 128; }
  std::uint32_t min_size() const noexcept override { return 64; }
  std::uint32_t max_size() const noexcept override { return 192; }

  std::uint64_t execute(std::uint32_t size, util::rng& rng) const override {
    if (size == 0) throw std::invalid_argument{"matmul: size == 0"};
    const std::size_t n = size;
    std::vector<double> a(n * n);
    std::vector<double> b(n * n);
    std::vector<double> c(n * n, 0.0);
    for (auto& x : a) x = rng.uniform(-1.0, 1.0);
    for (auto& x : b) x = rng.uniform(-1.0, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < n; ++k) {
        const double aik = a[i * n + k];
        for (std::size_t j = 0; j < n; ++j) {
          c[i * n + j] += aik * b[k * n + j];
        }
      }
    }
    double trace = 0.0;
    for (std::size_t i = 0; i < n; ++i) trace += c[i * n + i];
    return static_cast<std::uint64_t>(std::llround(trace * 1e6)) ^
           (static_cast<std::uint64_t>(n) << 48);
  }

  double work_units(std::uint32_t size) const noexcept override {
    const double n = size;
    return n * n * n / 80'000.0;  // default ≈ 26 wu
  }
};

class fft_task final : public task {
 public:
  std::string_view name() const noexcept override { return "fft"; }
  std::uint32_t default_size() const noexcept override { return 1u << 16; }
  std::uint32_t min_size() const noexcept override { return 1u << 14; }
  std::uint32_t max_size() const noexcept override { return 1u << 17; }

  std::uint64_t execute(std::uint32_t size, util::rng& rng) const override {
    if (size < 2 || (size & (size - 1)) != 0) {
      throw std::invalid_argument{"fft: size must be a power of two >= 2"};
    }
    std::vector<std::complex<double>> data(size);
    for (auto& x : data) x = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    fft_in_place(data);
    // Parseval-style checksum over spectrum magnitudes.
    double energy = 0.0;
    for (const auto& x : data) energy += std::norm(x);
    return static_cast<std::uint64_t>(std::llround(energy * 1e3)) ^
           (static_cast<std::uint64_t>(size) << 40);
  }

  double work_units(std::uint32_t size) const noexcept override {
    const double n = size;
    return n * std::log2(std::max(n, 2.0)) / 100'000.0;  // default ≈ 10 wu
  }

 private:
  static void fft_in_place(std::vector<std::complex<double>>& a) {
    const std::size_t n = a.size();
    // Bit reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; (j & bit) != 0; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) std::swap(a[i], a[j]);
    }
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const double angle =
          -2.0 * std::numbers::pi / static_cast<double>(len);
      const std::complex<double> root{std::cos(angle), std::sin(angle)};
      for (std::size_t block = 0; block < n; block += len) {
        std::complex<double> w{1.0, 0.0};
        for (std::size_t k = 0; k < len / 2; ++k) {
          const auto even = a[block + k];
          const auto odd = a[block + k + len / 2] * w;
          a[block + k] = even + odd;
          a[block + k + len / 2] = even - odd;
          w *= root;
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<task> make_matrix_multiply() {
  return std::make_unique<matrix_multiply_task>();
}
std::unique_ptr<task> make_fft() { return std::make_unique<fft_task>(); }

}  // namespace mca::tasks
