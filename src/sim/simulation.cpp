#include "sim/simulation.h"

#include <stdexcept>
#include <utility>

namespace mca::sim {

event_handle simulation::schedule_at(util::time_ms at, callback fn) {
  if (!fn) throw std::invalid_argument{"schedule_at: empty callback"};
  const std::uint64_t id = next_id_++;
  queue_.push(scheduled{std::max(at, now_), next_sequence_++, id, std::move(fn)});
  pending_ids_.insert(id);
  return event_handle{id};
}

event_handle simulation::schedule_after(util::time_ms delay, callback fn) {
  if (delay < 0) throw std::invalid_argument{"schedule_after: negative delay"};
  return schedule_at(now_ + delay, std::move(fn));
}

void simulation::cancel(event_handle handle) noexcept {
  // Only a genuinely pending event can be cancelled; unknown or already
  // fired handles are ignored.
  if (handle.valid() && pending_ids_.erase(handle.id) > 0) {
    cancelled_.insert(handle.id);
  }
}

void simulation::skip_cancelled() {
  while (!queue_.empty() && cancelled_.count(queue_.top().id) != 0) {
    cancelled_.erase(queue_.top().id);
    queue_.pop();
  }
}

bool simulation::step() {
  skip_cancelled();
  if (queue_.empty()) return false;
  // Move the callback out before popping so the event may schedule others.
  scheduled next = std::move(const_cast<scheduled&>(queue_.top()));
  queue_.pop();
  pending_ids_.erase(next.id);
  now_ = next.at;
  ++executed_;
  next.fn();
  return true;
}

void simulation::run_until(util::time_ms deadline) {
  for (;;) {
    skip_cancelled();
    if (queue_.empty() || queue_.top().at > deadline) break;
    step();
  }
  now_ = std::max(now_, deadline);
}

void simulation::run() {
  while (step()) {
  }
}

void simulation::clear() noexcept {
  while (!queue_.empty()) queue_.pop();
  pending_ids_.clear();
  cancelled_.clear();
}

std::size_t simulation::pending_events() const noexcept {
  return pending_ids_.size();
}

periodic_process::periodic_process(simulation& sim, util::time_ms start,
                                   util::time_ms period, tick_fn fn)
    : sim_{sim}, period_{period}, fn_{std::move(fn)} {
  if (period <= 0) throw std::invalid_argument{"periodic_process: period <= 0"};
  if (!fn_) throw std::invalid_argument{"periodic_process: empty callback"};
  arm(start);
}

void periodic_process::arm(util::time_ms at) {
  pending_ = sim_.schedule_at(at, [this] {
    if (stopped_) return;
    const bool keep_going = fn_(tick_++);
    if (keep_going && !stopped_) {
      arm(sim_.now() + period_);
    } else {
      pending_ = {};
    }
  });
}

void periodic_process::stop() noexcept {
  stopped_ = true;
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = {};
  }
}

}  // namespace mca::sim
