#include "sim/simulation.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mca::sim {
namespace {

constexpr std::uint32_t kChildren = 4;  // 4-ary heap: shallow and cache-dense
constexpr std::uint32_t kSlotBits = 24;
constexpr std::uint64_t kSlotMask = (1u << kSlotBits) - 1;
constexpr std::uint64_t kMaxSequence = (1ull << (64 - kSlotBits)) - 1;

constexpr std::uint64_t pack_key(std::uint64_t sequence,
                                 std::uint32_t slot) noexcept {
  return (sequence << kSlotBits) | slot;
}

}  // namespace

std::uint32_t simulation::acquire_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = static_cast<std::uint32_t>(slots_[index].sequence);
    return index;
  }
  if (slots_.size() > kSlotMask) {
    throw std::length_error{"simulation: too many pending events"};
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void simulation::release_slot(std::uint32_t index) noexcept {
  event_slot& slot = slots_[index];
  slot.live = false;
  slot.fn = nullptr;
  slot.sequence = free_head_;  // intrusive free list
  free_head_ = index;
}

void simulation::record_pos(const heap_entry& entry, std::size_t pos) noexcept {
  slots_[entry.key & kSlotMask].heap_pos = static_cast<std::uint32_t>(pos);
}

void simulation::sift_up(std::size_t hole, heap_entry entry) noexcept {
  heap_entry* base = heap_base();
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / kChildren;
    if (!earlier(entry, base[parent])) break;
    base[hole] = base[parent];
    record_pos(base[hole], hole);
    hole = parent;
  }
  base[hole] = entry;
  record_pos(entry, hole);
}

std::size_t simulation::sift_down(std::size_t hole, heap_entry entry) noexcept {
  heap_entry* base = heap_base();
  const std::size_t n = heap_size();
  for (;;) {
    const std::size_t first_child = hole * kChildren + 1;
    if (first_child >= n) break;
    const std::size_t end = std::min(first_child + kChildren, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (earlier(base[c], base[best])) best = c;
    }
    if (!earlier(base[best], entry)) break;
    base[hole] = base[best];
    record_pos(base[hole], hole);
    hole = best;
  }
  base[hole] = entry;
  record_pos(entry, hole);
  return hole;
}

void simulation::heap_push(heap_entry entry) {
  heap_.push_back(entry);
  sift_up(heap_size() - 1, entry);
}

void simulation::heap_remove(std::size_t pos) noexcept {
  const heap_entry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_size();
  if (pos == n) return;  // removed the tail entry itself
  // Re-seat the displaced tail entry at the hole: first try downward (the
  // common case for a root pop), then upward (possible for a mid-heap
  // removal whose hole sits below `last`'s true position).
  if (sift_down(pos, last) == pos) sift_up(pos, last);
}

event_handle simulation::schedule_at(util::time_ms at, callback fn) {
  if (!fn) throw std::invalid_argument{"schedule_at: empty callback"};
  if (next_sequence_ > kMaxSequence) {
    // Sequence wrap would corrupt packed keys (handle validation and the
    // FIFO tie-break); fail loudly like the 2^24 slot limit does.
    throw std::length_error{"simulation: sequence number space exhausted"};
  }
  const std::uint32_t index = acquire_slot();
  const std::uint64_t sequence = next_sequence_++;
  event_slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.sequence = sequence;
  slot.live = true;
  const std::uint64_t key = pack_key(sequence, index);
  heap_push({at > now_ ? at : now_, key});
  return event_handle{key};
}

event_handle simulation::schedule_after(util::time_ms delay, callback fn) {
  if (delay < 0) throw std::invalid_argument{"schedule_after: negative delay"};
  return schedule_at(now_ + delay, std::move(fn));
}

void simulation::cancel(event_handle handle) noexcept {
  if (!handle.valid()) return;
  const std::uint32_t index = static_cast<std::uint32_t>(handle.id & kSlotMask);
  if (index >= slots_.size()) return;
  const event_slot& slot = slots_[index];
  if (!slot.live || slot.sequence != (handle.id >> kSlotBits)) return;  // stale
  const std::uint32_t pos = slot.heap_pos;
  release_slot(index);
  heap_remove(pos);
}

bool simulation::reschedule(event_handle handle, util::time_ms at) noexcept {
  if (!handle.valid()) return false;
  const std::uint32_t index = static_cast<std::uint32_t>(handle.id & kSlotMask);
  if (index >= slots_.size()) return false;
  const event_slot& slot = slots_[index];
  if (!slot.live || slot.sequence != (handle.id >> kSlotBits)) return false;
  const std::size_t pos = slot.heap_pos;
  heap_entry entry = heap_base()[pos];
  entry.at = at > now_ ? at : now_;
  if (sift_down(pos, entry) == pos) sift_up(pos, entry);
  return true;
}

bool simulation::step() {
  if (heap_empty()) return false;
  const heap_entry top = heap_base()[0];
  const std::uint32_t index = static_cast<std::uint32_t>(top.key & kSlotMask);
  event_slot& slot = slots_[index];
  // Move the callback out and retire the slot before running it, so the
  // event may freely schedule (and reuse the slot) or self-cancel.
  callback fn = std::move(slot.fn);
  release_slot(index);
  heap_remove(0);
  now_ = top.at;
  ++executed_;
  fn();
  return true;
}

void simulation::run_until(util::time_ms deadline) {
  while (!heap_empty() && heap_base()[0].at <= deadline) step();
  now_ = std::max(now_, deadline);
}

void simulation::run() {
  while (step()) {
  }
}

void simulation::clear() noexcept {
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live) release_slot(i);
  }
  heap_.resize(kHeapPad);
}

periodic_process::periodic_process(simulation& sim, util::time_ms start,
                                   util::time_ms period, tick_fn fn)
    : sim_{sim}, period_{period}, fn_{std::move(fn)} {
  if (period <= 0) throw std::invalid_argument{"periodic_process: period <= 0"};
  if (!fn_) throw std::invalid_argument{"periodic_process: empty callback"};
  arm(start);
}

void periodic_process::arm(util::time_ms at) {
  pending_ = sim_.schedule_at(at, [this] {
    if (stopped_) return;
    const bool keep_going = fn_(tick_++);
    if (keep_going && !stopped_) {
      arm(sim_.now() + period_);
    } else {
      pending_ = {};
    }
  });
}

void periodic_process::stop() noexcept {
  stopped_ = true;
  if (pending_.valid()) {
    sim_.cancel(pending_);
    pending_ = {};
  }
}

}  // namespace mca::sim
