// Discrete-event simulation engine.
//
// A single-threaded event loop over simulated milliseconds: every testbed
// experiment in the paper (3-hour server characterizations, 8-hour
// closed-loop runs) executes against this clock in well under a second of
// wall time.  Events at the same timestamp run in scheduling (FIFO) order,
// which makes runs deterministic.
//
// Internals: events live in a contiguous slot arena indexed by a flat
// 4-ary min-heap of 16-byte (time, key) entries, where the key packs the
// scheduling sequence number (high 40 bits) with the slot index (low 24
// bits).  The sequence number doubles as the slot's liveness tag, so a
// handle is just the key; each slot tracks its entry's heap position, so
// cancellation physically removes the entry (no lazy tombstones, no hash
// sets, no per-event allocation beyond the callback itself).  Cancelling a
// far-future timer — the dominant pattern — touches a near-leaf entry and
// is effectively O(1).  Capacity limits from the packing: 2^24
// concurrently pending events and 2^40 total schedules per simulation —
// orders of magnitude beyond the paper's workloads.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/aligned.h"
#include "util/sim_time.h"

namespace mca::sim {

/// Token identifying a scheduled event, usable for cancellation.  Holds
/// the packed (sequence, slot) key; a stale or fabricated handle simply
/// fails the sequence check on use.
struct event_handle {
  std::uint64_t id = 0;
  bool valid() const noexcept { return id != 0; }
};

/// The event loop.  Not thread-safe; one simulation per experiment.
class simulation {
 public:
  using callback = std::function<void()>;

  /// Current simulated time (ms).  Starts at 0.
  util::time_ms now() const noexcept { return now_; }

  /// Schedules `fn` at absolute simulated time `at` (>= now, else it fires
  /// immediately at the current time).  Returns a cancellation handle.
  event_handle schedule_at(util::time_ms at, callback fn);

  /// Schedules `fn` after `delay` milliseconds of simulated time.
  /// Throws std::invalid_argument on negative delay.
  event_handle schedule_after(util::time_ms delay, callback fn);

  /// Cancels a pending event; cancelling an already-fired or unknown
  /// handle is a harmless no-op.
  void cancel(event_handle handle) noexcept;

  /// Moves a pending event to a new absolute time (clamped to now) without
  /// releasing its slot or callback: one heap sift instead of a cancel +
  /// schedule pair.  The handle stays valid and the event keeps its
  /// original FIFO tie-break sequence.  Returns false (and does nothing)
  /// for an already-fired or unknown handle.
  bool reschedule(event_handle handle, util::time_ms at) noexcept;

  /// Runs the next pending event.  Returns false when the queue is empty.
  bool step();

  /// Runs events until the queue is empty or the next event is later than
  /// `deadline`; afterwards the clock reads min(deadline, last event time)
  /// advanced to `deadline`.
  void run_until(util::time_ms deadline);

  /// Runs until no events remain.
  void run();

  /// Drops every pending event (the clock is left where it is).
  void clear() noexcept;

  std::size_t pending_events() const noexcept { return heap_size(); }
  std::size_t executed_events() const noexcept { return executed_; }

 private:
  /// Arena slot for one scheduled (or free) event.  The sequence number of
  /// the occupying event doubles as the liveness tag for handles; while
  /// the slot is free, `sequence` holds the next free slot index
  /// (intrusive free list).  `heap_pos` is the logical heap index of the
  /// slot's entry, maintained by every sift.
  struct event_slot {
    callback fn;
    std::uint64_t sequence = 0;
    std::uint32_t heap_pos = 0;
    bool live = false;
  };
  /// 16-byte heap entry: primary key `at`, tie-break and identity in the
  /// packed (sequence << 24 | slot) key.  The backing vector is cache-line
  /// aligned and starts with kHeapPad dummy entries so every 4-child group
  /// (logical indices 4i+1..4i+4, physical 4i+4..4i+7) occupies exactly
  /// one cache line.
  struct heap_entry {
    util::time_ms at = 0;
    std::uint64_t key = 0;
  };
  static constexpr std::size_t kHeapPad = 3;

  static bool earlier(const heap_entry& a, const heap_entry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;  // sequence occupies the high bits
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index) noexcept;
  void record_pos(const heap_entry& entry, std::size_t pos) noexcept;
  void sift_up(std::size_t hole, heap_entry entry) noexcept;
  /// Returns the hole's final position.
  std::size_t sift_down(std::size_t hole, heap_entry entry) noexcept;
  void heap_push(heap_entry entry);
  /// Removes the entry at logical position `pos` (root pop is pos 0).
  void heap_remove(std::size_t pos) noexcept;

  bool heap_empty() const noexcept { return heap_.size() == kHeapPad; }
  std::size_t heap_size() const noexcept { return heap_.size() - kHeapPad; }
  /// Base pointer for logical indexing (logical i at physical i+kHeapPad).
  const heap_entry* heap_base() const noexcept {
    return heap_.data() + kHeapPad;
  }
  heap_entry* heap_base() noexcept { return heap_.data() + kHeapPad; }

  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

  util::time_ms now_ = 0.0;
  std::uint64_t next_sequence_ = 1;  // 0 is reserved so handles are nonzero
  std::size_t executed_ = 0;
  std::uint32_t free_head_ = kNoFreeSlot;
  std::vector<event_slot> slots_;
  std::vector<heap_entry, util::aligned_allocator<heap_entry>> heap_ =
      std::vector<heap_entry, util::aligned_allocator<heap_entry>>(kHeapPad);
};

/// Repeats a callback at a fixed simulated period until cancelled.
///
/// The callback receives the tick index (0-based) and returns `true` to
/// keep going, `false` to stop.
class periodic_process {
 public:
  using tick_fn = std::function<bool(std::uint64_t tick)>;

  /// Starts ticking at `start` and then every `period` ms.
  /// Throws std::invalid_argument if period <= 0.
  periodic_process(simulation& sim, util::time_ms start, util::time_ms period,
                   tick_fn fn);
  ~periodic_process() { stop(); }

  periodic_process(const periodic_process&) = delete;
  periodic_process& operator=(const periodic_process&) = delete;

  void stop() noexcept;
  std::uint64_t ticks() const noexcept { return tick_; }

 private:
  void arm(util::time_ms at);

  simulation& sim_;
  util::time_ms period_;
  tick_fn fn_;
  std::uint64_t tick_ = 0;
  event_handle pending_{};
  bool stopped_ = false;
};

}  // namespace mca::sim
