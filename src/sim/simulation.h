// Discrete-event simulation engine.
//
// A single-threaded event loop over simulated milliseconds: every testbed
// experiment in the paper (3-hour server characterizations, 8-hour
// closed-loop runs) executes against this clock in well under a second of
// wall time.  Events at the same timestamp run in scheduling (FIFO) order,
// which makes runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/sim_time.h"

namespace mca::sim {

/// Token identifying a scheduled event, usable for cancellation.
struct event_handle {
  std::uint64_t id = 0;
  bool valid() const noexcept { return id != 0; }
};

/// The event loop.  Not thread-safe; one simulation per experiment.
class simulation {
 public:
  using callback = std::function<void()>;

  /// Current simulated time (ms).  Starts at 0.
  util::time_ms now() const noexcept { return now_; }

  /// Schedules `fn` at absolute simulated time `at` (>= now, else it fires
  /// immediately at the current time).  Returns a cancellation handle.
  event_handle schedule_at(util::time_ms at, callback fn);

  /// Schedules `fn` after `delay` milliseconds of simulated time.
  /// Throws std::invalid_argument on negative delay.
  event_handle schedule_after(util::time_ms delay, callback fn);

  /// Cancels a pending event; cancelling an already-fired or unknown
  /// handle is a harmless no-op.
  void cancel(event_handle handle) noexcept;

  /// Runs the next pending event.  Returns false when the queue is empty.
  bool step();

  /// Runs events until the queue is empty or the next event is later than
  /// `deadline`; afterwards the clock reads min(deadline, last event time)
  /// advanced to `deadline`.
  void run_until(util::time_ms deadline);

  /// Runs until no events remain.
  void run();

  /// Drops every pending event (the clock is left where it is).
  void clear() noexcept;

  std::size_t pending_events() const noexcept;
  std::size_t executed_events() const noexcept { return executed_; }

 private:
  struct scheduled {
    util::time_ms at = 0;
    std::uint64_t sequence = 0;  // FIFO tie-break for equal times
    std::uint64_t id = 0;
    callback fn;
  };
  struct later {
    bool operator()(const scheduled& a, const scheduled& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  /// Pops cancelled entries off the top of the queue.
  void skip_cancelled();

  util::time_ms now_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_sequence_ = 0;
  std::size_t executed_ = 0;
  std::priority_queue<scheduled, std::vector<scheduled>, later> queue_;
  std::unordered_set<std::uint64_t> pending_ids_;
  std::unordered_set<std::uint64_t> cancelled_;
};

/// Repeats a callback at a fixed simulated period until cancelled.
///
/// The callback receives the tick index (0-based) and returns `true` to
/// keep going, `false` to stop.
class periodic_process {
 public:
  using tick_fn = std::function<bool(std::uint64_t tick)>;

  /// Starts ticking at `start` and then every `period` ms.
  /// Throws std::invalid_argument if period <= 0.
  periodic_process(simulation& sim, util::time_ms start, util::time_ms period,
                   tick_fn fn);
  ~periodic_process() { stop(); }

  periodic_process(const periodic_process&) = delete;
  periodic_process& operator=(const periodic_process&) = delete;

  void stop() noexcept;
  std::uint64_t ticks() const noexcept { return tick_; }

 private:
  void arm(util::time_ms at);

  simulation& sim_;
  util::time_ms period_;
  tick_fn fn_;
  std::uint64_t tick_ = 0;
  event_handle pending_{};
  bool stopped_ = false;
};

}  // namespace mca::sim
