// Time slots: the unit of evidence for workload prediction.
//
// A slot covers one fixed-length window and records, per acceleration
// group, the set of users that offloaded at that level during the window
// (§IV-A: "each acceleration group at a time period t contains a certain
// number of users or an empty set").  Users are kept sorted and unique so
// slot comparison is deterministic.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/ids.h"

namespace mca::trace {

/// Per-group user assignments of one time window.
class time_slot {
 public:
  /// Creates a slot with groups [0, group_count).
  explicit time_slot(std::size_t group_count);

  /// Records that `user` offloaded at level `group` during this window.
  /// Duplicate (group, user) pairs are absorbed.  Throws std::out_of_range
  /// for an unknown group.
  void add_user(group_id group, user_id user);

  /// Bulk construction from per-group user lists (any order, duplicates
  /// allowed): one sort+unique per group instead of an O(n) sorted insert
  /// per observation — the slot-boundary path at fleet scale.  The result
  /// equals add_user() over every (group, user) pair.
  static time_slot from_group_users(std::vector<std::vector<user_id>> groups);

  std::size_t group_count() const noexcept { return groups_.size(); }
  /// Sorted, de-duplicated users of a group.
  std::span<const user_id> users_in(group_id group) const;
  std::size_t user_count(group_id group) const;
  /// Users summed over groups (a user may count once per group it used).
  std::size_t total_users() const noexcept;
  /// Per-group cardinalities, index = group id.
  std::vector<std::size_t> group_counts() const;
  bool empty() const noexcept { return total_users() == 0; }

  friend bool operator==(const time_slot& a, const time_slot& b) = default;

 private:
  std::vector<std::vector<user_id>> groups_;
};

/// δ of §IV-B.1: 0 when the two groups hold identical user sets, otherwise
/// the edit distance between their (sorted) user sequences.
std::size_t group_distance(const time_slot& a, const time_slot& b,
                           group_id group);

/// Δ of §IV-B.1: the sum of per-group distances.  Throws
/// std::invalid_argument when slot group counts differ.
std::size_t slot_distance(const time_slot& a, const time_slot& b);

}  // namespace mca::trace
