// The request log — the paper's MySQL table, in memory.
//
// The Code Offloader logs every processed request as
// <timestamp, user-id, acceleration-group, battery-level, round-trip-time>;
// the predictor's knowledge base is built by sorting these traces
// chronologically and cutting them into fixed-length time slots.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "trace/time_slot.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace mca::trace {

/// One logged request, exactly the key-value tuple of §IV-A.
struct trace_record {
  util::time_ms timestamp = 0.0;
  user_id user = 0;
  group_id group = 0;
  double battery_level = 1.0;  ///< [0,1]
  double rtt_ms = 0.0;         ///< end-to-end response time of the request
};

/// Append-mostly trace database with slot extraction.
class log_store {
 public:
  void append(trace_record record);
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  std::span<const trace_record> records() const noexcept { return records_; }

  /// Records with timestamp in [from, to).
  std::vector<trace_record> in_range(util::time_ms from,
                                     util::time_ms to) const;

  /// Cuts the log into consecutive slots of `slot_length` starting at
  /// `origin`; produces ceil((last - origin)/len) slots (empty slots
  /// preserved so periodic structure survives).  `group_count` fixes the
  /// slot dimensionality.  Throws std::invalid_argument on a non-positive
  /// slot length or zero groups.
  std::vector<time_slot> build_slots(util::time_ms slot_length,
                                     std::size_t group_count,
                                     util::time_ms origin = 0.0) const;

  void clear() noexcept { records_.clear(); sorted_ = true; }

 private:
  void ensure_sorted() const;

  mutable std::vector<trace_record> records_;
  mutable bool sorted_ = true;
};

}  // namespace mca::trace
