#include "trace/trace_io.h"

#include <charconv>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

namespace mca::trace {
namespace {

constexpr const char* kHeader = "timestamp_ms,user,group,battery,rtt_ms";

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (;;) {
    const auto comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

double parse_double(const std::string& field, std::size_t line_number) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(field, &consumed);
    if (consumed != field.size()) throw std::invalid_argument{"trailing"};
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument{"trace csv line " +
                                std::to_string(line_number) +
                                ": bad number '" + field + "'"};
  }
}

std::uint32_t parse_u32(const std::string& field, std::size_t line_number) {
  std::uint32_t value = 0;
  const auto* first = field.data();
  const auto* last = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) {
    throw std::invalid_argument{"trace csv line " +
                                std::to_string(line_number) +
                                ": bad integer '" + field + "'"};
  }
  return value;
}

}  // namespace

std::size_t write_csv(const log_store& store, std::ostream& out) {
  out << kHeader << '\n';
  // in_range over everything yields the chronologically sorted view.
  const auto sorted = store.in_range(-1e300, 1e300);
  char buffer[160];
  for (const auto& r : sorted) {
    std::snprintf(buffer, sizeof buffer, "%.6f,%u,%u,%.6f,%.6f", r.timestamp,
                  r.user, r.group, r.battery_level, r.rtt_ms);
    out << buffer << '\n';
  }
  return sorted.size();
}

log_store read_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    throw std::invalid_argument{"trace csv: missing or wrong header"};
  }
  log_store store;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = split_fields(line);
    if (fields.size() != 5) {
      throw std::invalid_argument{"trace csv line " +
                                  std::to_string(line_number) +
                                  ": expected 5 fields, got " +
                                  std::to_string(fields.size())};
    }
    trace_record record;
    record.timestamp = parse_double(fields[0], line_number);
    record.user = parse_u32(fields[1], line_number);
    record.group = parse_u32(fields[2], line_number);
    record.battery_level = parse_double(fields[3], line_number);
    record.rtt_ms = parse_double(fields[4], line_number);
    store.append(record);
  }
  return store;
}

}  // namespace mca::trace
