#include "trace/log_store.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mca::trace {

void log_store::append(trace_record record) {
  if (!records_.empty() && record.timestamp < records_.back().timestamp) {
    sorted_ = false;
  }
  records_.push_back(record);
}

void log_store::ensure_sorted() const {
  if (sorted_) return;
  std::stable_sort(records_.begin(), records_.end(),
                   [](const trace_record& a, const trace_record& b) {
                     return a.timestamp < b.timestamp;
                   });
  sorted_ = true;
}

std::vector<trace_record> log_store::in_range(util::time_ms from,
                                              util::time_ms to) const {
  ensure_sorted();
  const auto lo = std::lower_bound(
      records_.begin(), records_.end(), from,
      [](const trace_record& r, util::time_ms t) { return r.timestamp < t; });
  const auto hi = std::lower_bound(
      lo, records_.end(), to,
      [](const trace_record& r, util::time_ms t) { return r.timestamp < t; });
  return {lo, hi};
}

std::vector<time_slot> log_store::build_slots(util::time_ms slot_length,
                                              std::size_t group_count,
                                              util::time_ms origin) const {
  if (slot_length <= 0.0) {
    throw std::invalid_argument{"build_slots: slot_length <= 0"};
  }
  if (group_count == 0) {
    throw std::invalid_argument{"build_slots: group_count == 0"};
  }
  ensure_sorted();
  std::vector<time_slot> slots;
  for (const auto& r : records_) {
    if (r.timestamp < origin) continue;
    const auto index =
        static_cast<std::size_t>((r.timestamp - origin) / slot_length);
    while (slots.size() <= index) slots.emplace_back(group_count);
    if (r.group < group_count) {
      slots[index].add_user(r.group, r.user);
    }
  }
  return slots;
}

}  // namespace mca::trace
