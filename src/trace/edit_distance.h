// Edit distances over user-assignment sequences.
//
// The predictor (§IV-B) measures how alike two time slots are by the edit
// distance between the user sequences assigned to each acceleration group.
// Provided here: classic Levenshtein (unit insert/delete/substitute),
// post-normalized distance, and the exact Marzal–Vidal normalized edit
// distance (the paper's reference [33]) via Dinkelbach's fractional
// programming iteration.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/ids.h"

namespace mca::trace {

/// Unit-cost Levenshtein distance between two sequences.
std::size_t edit_distance(std::span<const user_id> a,
                          std::span<const user_id> b);

/// Levenshtein divided by max(|a|, |b|); 0 for two empty sequences.
/// The cheap normalization commonly substituted for Marzal–Vidal.
double post_normalized_edit_distance(std::span<const user_id> a,
                                     std::span<const user_id> b);

/// Exact Marzal–Vidal normalized edit distance: the minimum over edit
/// paths P of weight(P)/length(P), computed by Dinkelbach iteration over
/// a parametric DP.  Returns 0 for two empty sequences; value is in [0,1]
/// for unit costs.
double normalized_edit_distance(std::span<const user_id> a,
                                std::span<const user_id> b);

}  // namespace mca::trace
