#include "trace/time_slot.h"

#include <algorithm>
#include <stdexcept>

#include "trace/edit_distance.h"

namespace mca::trace {

time_slot::time_slot(std::size_t group_count) : groups_(group_count) {}

void time_slot::add_user(group_id group, user_id user) {
  if (group >= groups_.size()) {
    throw std::out_of_range{"time_slot: unknown group"};
  }
  auto& users = groups_[group];
  const auto pos = std::lower_bound(users.begin(), users.end(), user);
  if (pos != users.end() && *pos == user) return;
  users.insert(pos, user);
}

time_slot time_slot::from_group_users(
    std::vector<std::vector<user_id>> groups) {
  time_slot slot{groups.size()};
  for (std::size_t g = 0; g < groups.size(); ++g) {
    auto& users = groups[g];
    std::sort(users.begin(), users.end());
    users.erase(std::unique(users.begin(), users.end()), users.end());
    slot.groups_[g] = std::move(users);
  }
  return slot;
}

std::span<const user_id> time_slot::users_in(group_id group) const {
  if (group >= groups_.size()) {
    throw std::out_of_range{"time_slot: unknown group"};
  }
  return groups_[group];
}

std::size_t time_slot::user_count(group_id group) const {
  return users_in(group).size();
}

std::size_t time_slot::total_users() const noexcept {
  std::size_t total = 0;
  for (const auto& users : groups_) total += users.size();
  return total;
}

std::vector<std::size_t> time_slot::group_counts() const {
  std::vector<std::size_t> counts(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) counts[g] = groups_[g].size();
  return counts;
}

std::size_t group_distance(const time_slot& a, const time_slot& b,
                           group_id group) {
  const auto ua = a.users_in(group);
  const auto ub = b.users_in(group);
  if (ua.size() == ub.size() && std::equal(ua.begin(), ua.end(), ub.begin())) {
    return 0;
  }
  return edit_distance(ua, ub);
}

std::size_t slot_distance(const time_slot& a, const time_slot& b) {
  if (a.group_count() != b.group_count()) {
    throw std::invalid_argument{"slot_distance: group count mismatch"};
  }
  std::size_t total = 0;
  for (group_id g = 0; g < a.group_count(); ++g) {
    total += group_distance(a, b, g);
  }
  return total;
}

}  // namespace mca::trace
