// Trace persistence: CSV export/import of the request log.
//
// The paper published its traces and case study alongside the code; these
// helpers round-trip a `log_store` through the same plain CSV format so
// experiments can be replayed, diffed, and fed to external tooling
// (gnuplot, R, pandas).
//
// Format: header `timestamp_ms,user,group,battery,rtt_ms`, one record per
// line, numbers in decimal.
#pragma once

#include <istream>
#include <ostream>

#include "trace/log_store.h"

namespace mca::trace {

/// Writes the whole store (chronologically sorted) as CSV.
/// Returns the number of records written.
std::size_t write_csv(const log_store& store, std::ostream& out);

/// Parses CSV produced by `write_csv` (header required) into a new store.
/// Throws std::invalid_argument on a malformed header, field count
/// mismatch, or unparsable number (the error message carries the line
/// number).
log_store read_csv(std::istream& in);

}  // namespace mca::trace
