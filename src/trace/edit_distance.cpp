#include "trace/edit_distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mca::trace {

std::size_t edit_distance(std::span<const user_id> a,
                          std::span<const user_id> b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  // Two-row DP.
  std::vector<std::size_t> prev(m + 1);
  std::vector<std::size_t> curr(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t substitution =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitution});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double post_normalized_edit_distance(std::span<const user_id> a,
                                     std::span<const user_id> b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(edit_distance(a, b)) /
         static_cast<double>(longest);
}

namespace {

/// Parametric DP for Dinkelbach: minimizes weight(P) - lambda * length(P)
/// over all edit paths, returning (value, weight, length) of the optimum.
struct parametric_result {
  double value = 0.0;
  double weight = 0.0;
  double length = 0.0;
};

parametric_result parametric_edit(std::span<const user_id> a,
                                  std::span<const user_id> b, double lambda) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  struct cell {
    double value;
    double weight;
    double length;
  };
  std::vector<cell> prev(m + 1);
  std::vector<cell> curr(m + 1);
  prev[0] = {0.0, 0.0, 0.0};
  for (std::size_t j = 1; j <= m; ++j) {
    prev[j] = {prev[j - 1].value + 1.0 - lambda, prev[j - 1].weight + 1.0,
               prev[j - 1].length + 1.0};
  }
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = {prev[0].value + 1.0 - lambda, prev[0].weight + 1.0,
               prev[0].length + 1.0};
    for (std::size_t j = 1; j <= m; ++j) {
      const double sub_cost = (a[i - 1] == b[j - 1]) ? 0.0 : 1.0;
      const cell via_sub = {prev[j - 1].value + sub_cost - lambda,
                            prev[j - 1].weight + sub_cost,
                            prev[j - 1].length + 1.0};
      const cell via_del = {prev[j].value + 1.0 - lambda, prev[j].weight + 1.0,
                            prev[j].length + 1.0};
      const cell via_ins = {curr[j - 1].value + 1.0 - lambda,
                            curr[j - 1].weight + 1.0,
                            curr[j - 1].length + 1.0};
      curr[j] = via_sub;
      if (via_del.value < curr[j].value) curr[j] = via_del;
      if (via_ins.value < curr[j].value) curr[j] = via_ins;
    }
    std::swap(prev, curr);
  }
  return {prev[m].value, prev[m].weight, prev[m].length};
}

}  // namespace

double normalized_edit_distance(std::span<const user_id> a,
                                std::span<const user_id> b) {
  if (a.empty() && b.empty()) return 0.0;
  // Dinkelbach: iterate lambda <- weight/length of the path minimizing the
  // parametric objective until the objective reaches ~0.
  double lambda = post_normalized_edit_distance(a, b);  // good initial guess
  for (int iter = 0; iter < 64; ++iter) {
    const auto r = parametric_edit(a, b, lambda);
    if (std::abs(r.value) < 1e-12 || r.length == 0.0) break;
    const double next = r.weight / r.length;
    if (std::abs(next - lambda) < 1e-12) {
      lambda = next;
      break;
    }
    lambda = next;
  }
  return lambda;
}

}  // namespace mca::trace
