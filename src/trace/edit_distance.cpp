#include "trace/edit_distance.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace mca::trace {

namespace {

/// Classic two-row DP; kept as the general-input path (and the reference
/// the bit-parallel fast path is tested against).
std::size_t edit_distance_dp(std::span<const user_id> a,
                             std::span<const user_id> b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  std::vector<std::size_t> prev(m + 1);
  std::vector<std::size_t> curr(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t substitution =
          prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitution});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

bool strictly_increasing(std::span<const user_id> s) noexcept {
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (s[i] <= s[i - 1]) return false;
  }
  return true;
}

/// Myers' bit-parallel Levenshtein (multiword, Hyyrö's block formulation),
/// specialized for two strictly increasing sequences — the shape every
/// time-slot user list has.  Because both sides are sorted and duplicate
/// free, each text symbol matches at most one pattern position, found by a
/// single linear merge instead of per-symbol match masks; the column
/// update then runs over ceil(m/64) machine words, a 64x cell-rate win
/// over the DP that used to dominate fleet-scale slot boundaries.
std::size_t edit_distance_sorted_bitparallel(std::span<const user_id> text,
                                             std::span<const user_id> pattern) {
  const std::size_t n = text.size();
  const std::size_t m = pattern.size();
  const std::size_t words = (m + 63) / 64;

  // match_pos[i]: position of text[i] in the pattern, or npos.  One merge
  // pass — both sequences are strictly increasing.
  constexpr std::uint32_t kNoMatch = 0xffffffffu;
  static thread_local std::vector<std::uint32_t> match_pos;
  match_pos.assign(n, kNoMatch);
  for (std::size_t i = 0, j = 0; i < n && j < m;) {
    if (text[i] == pattern[j]) {
      match_pos[i] = static_cast<std::uint32_t>(j);
      ++i;
      ++j;
    } else if (text[i] < pattern[j]) {
      ++i;
    } else {
      ++j;
    }
  }

  static thread_local std::vector<std::uint64_t> pv_store;
  static thread_local std::vector<std::uint64_t> mv_store;
  pv_store.assign(words, ~std::uint64_t{0});
  mv_store.assign(words, 0);
  std::uint64_t* const pv = pv_store.data();
  std::uint64_t* const mv = mv_store.data();

  std::size_t score = m;
  const std::size_t top = words - 1;
  const std::uint64_t top_bit = std::uint64_t{1} << ((m - 1) % 64);

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t pos = match_pos[i];
    const std::size_t eq_word =
        pos == kNoMatch ? words : static_cast<std::size_t>(pos) / 64;
    const std::uint64_t eq_bit =
        pos == kNoMatch ? 0 : std::uint64_t{1} << (pos % 64);
    // Global alignment: the row-0 boundary contributes +1 per column.
    std::uint64_t ph_in = 1;
    std::uint64_t mh_in = 0;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t eq = w == eq_word ? eq_bit : 0;
      const std::uint64_t pvw = pv[w];
      const std::uint64_t mvw = mv[w];
      const std::uint64_t xv = eq | mvw;
      const std::uint64_t eq2 = eq | mh_in;
      const std::uint64_t xh = (((eq2 & pvw) + pvw) ^ pvw) | eq2;
      std::uint64_t ph = mvw | ~(xh | pvw);
      std::uint64_t mh = pvw & xh;
      if (w == top) {
        score += (ph & top_bit) != 0;
        score -= (mh & top_bit) != 0;
      }
      const std::uint64_t ph_out = ph >> 63;
      const std::uint64_t mh_out = mh >> 63;
      ph = (ph << 1) | ph_in;
      mh = (mh << 1) | mh_in;
      pv[w] = mh | ~(xv | ph);
      mv[w] = ph & xv;
      ph_in = ph_out;
      mh_in = mh_out;
    }
  }
  return score;
}

}  // namespace

std::size_t edit_distance(std::span<const user_id> a,
                          std::span<const user_id> b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  if (strictly_increasing(a) && strictly_increasing(b)) {
    // Fewer pattern words when the shorter side is the pattern (the
    // distance is symmetric).
    return m <= n ? edit_distance_sorted_bitparallel(a, b)
                  : edit_distance_sorted_bitparallel(b, a);
  }
  return edit_distance_dp(a, b);
}

double post_normalized_edit_distance(std::span<const user_id> a,
                                     std::span<const user_id> b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(edit_distance(a, b)) /
         static_cast<double>(longest);
}

namespace {

/// Parametric DP for Dinkelbach: minimizes weight(P) - lambda * length(P)
/// over all edit paths, returning (value, weight, length) of the optimum.
struct parametric_result {
  double value = 0.0;
  double weight = 0.0;
  double length = 0.0;
};

parametric_result parametric_edit(std::span<const user_id> a,
                                  std::span<const user_id> b, double lambda) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  struct cell {
    double value;
    double weight;
    double length;
  };
  std::vector<cell> prev(m + 1);
  std::vector<cell> curr(m + 1);
  prev[0] = {0.0, 0.0, 0.0};
  for (std::size_t j = 1; j <= m; ++j) {
    prev[j] = {prev[j - 1].value + 1.0 - lambda, prev[j - 1].weight + 1.0,
               prev[j - 1].length + 1.0};
  }
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = {prev[0].value + 1.0 - lambda, prev[0].weight + 1.0,
               prev[0].length + 1.0};
    for (std::size_t j = 1; j <= m; ++j) {
      const double sub_cost = (a[i - 1] == b[j - 1]) ? 0.0 : 1.0;
      const cell via_sub = {prev[j - 1].value + sub_cost - lambda,
                            prev[j - 1].weight + sub_cost,
                            prev[j - 1].length + 1.0};
      const cell via_del = {prev[j].value + 1.0 - lambda, prev[j].weight + 1.0,
                            prev[j].length + 1.0};
      const cell via_ins = {curr[j - 1].value + 1.0 - lambda,
                            curr[j - 1].weight + 1.0,
                            curr[j - 1].length + 1.0};
      curr[j] = via_sub;
      if (via_del.value < curr[j].value) curr[j] = via_del;
      if (via_ins.value < curr[j].value) curr[j] = via_ins;
    }
    std::swap(prev, curr);
  }
  return {prev[m].value, prev[m].weight, prev[m].length};
}

}  // namespace

double normalized_edit_distance(std::span<const user_id> a,
                                std::span<const user_id> b) {
  if (a.empty() && b.empty()) return 0.0;
  // Dinkelbach: iterate lambda <- weight/length of the path minimizing the
  // parametric objective until the objective reaches ~0.
  double lambda = post_normalized_edit_distance(a, b);  // good initial guess
  for (int iter = 0; iter < 64; ++iter) {
    const auto r = parametric_edit(a, b, lambda);
    if (std::abs(r.value) < 1e-12 || r.length == 0.0) break;
    const double next = r.weight / r.length;
    if (std::abs(next - lambda) < 1e-12) {
      lambda = next;
      break;
    }
    lambda = next;
  }
  return lambda;
}

}  // namespace mca::trace
