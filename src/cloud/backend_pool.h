// The back-end: acceleration groups of running instances.
//
// The pool owns every provisioned server, keyed by acceleration group, and
// offers the two operations the SDN-accelerator needs: route a request to
// the least-loaded member of a group, and reshape the fleet (launch /
// retire) when the allocator produces a new plan.  Retired instances drain
// — they stop accepting work, finish what they have, and are reaped (and
// their billing record closed) once idle.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloud/billing.h"
#include "cloud/instance.h"
#include "sim/simulation.h"
#include "util/ids.h"
#include "util/rng.h"

namespace mca::cloud {

/// Outcome of routing one request into a group.
enum class route_status {
  ok,            ///< accepted by an instance
  dropped,       ///< every instance in the group is at its admission cap
  no_instances,  ///< the group currently has no (accepting) instances
};

const char* to_string(route_status s) noexcept;

/// Owns the fleet; one per simulated deployment.
class backend_pool {
 public:
  backend_pool(sim::simulation& sim, util::rng rng,
               instance::options instance_opts = {});

  /// Launches one instance of `type` into `group`; returns its id.
  instance_id launch(group_id group, const instance_type& type);

  /// Drains up to `count` instances of `type` in `group` (idle ones are
  /// reaped immediately).  Returns how many were marked.
  std::size_t retire(group_id group, const instance_type& type,
                     std::size_t count);

  /// Sends `work_units` to the least-loaded accepting instance of `group`;
  /// `on_complete(service_time)` fires when the server finishes.
  route_status route(group_id group, double work_units,
                     instance::completion_fn on_complete);

  /// Reaps drained+idle instances (also runs inside route/launch/retire).
  /// O(1) while nothing is draining — the steady-state request path pays
  /// only a counter check.
  void sweep();

  /// Outcome of a spot-preemption strike against a group.
  struct preempt_result {
    bool applied = false;     ///< a live instance was killed
    std::size_t killed = 0;   ///< in-flight jobs failure-notified
  };

  /// Spot-kills one live (non-draining) instance of `group`, chosen as
  /// member `ordinal % live` — the ordinal comes from the deterministic
  /// fault schedule, so the victim never depends on thread or shard
  /// layout.  Every in-flight job on the victim fires its callback with
  /// ok=false.  No-op (applied=false) when the group has no live member.
  preempt_result preempt_in(group_id group, std::uint64_t ordinal);

  /// Opens an outage on `group`: every live instance drains (in-flight
  /// work finishes; nothing new is accepted) and route() reports
  /// no_instances until end_outage.  Returns how many instances drained.
  std::size_t begin_outage(group_id group);
  /// Closes the outage; the group accepts launches and routes again.
  void end_outage(group_id group) noexcept;
  /// True while begin_outage holds the group down.
  bool group_available(group_id group) const noexcept {
    return group >= unavailable_.size() || unavailable_[group] == 0;
  }

  /// Attaches the PS observability counters to every current and future
  /// instance (nullptr detaches).  Setup-time only.
  void set_observability(obs::registry* registry) noexcept {
    obs_ = registry;
    for (auto& members : groups_) {
      for (auto& inst : members) inst->set_observability(registry);
    }
  }

  /// Accepting (non-draining) instance count in a group.
  std::size_t instance_count(group_id group) const noexcept;
  /// Accepting instances of one type in a group.
  std::size_t instance_count(group_id group,
                             const std::string& type_name) const noexcept;
  std::size_t instance_count(group_id group,
                             instance_type_id type) const noexcept;
  /// All groups that currently have instances.
  std::vector<group_id> groups() const;
  /// Observing pointers to a group's accepting instances (simulation-owned).
  std::vector<const instance*> instances_in(group_id group) const;
  /// Mutable access to a group's accepting instances, for induced
  /// background load (§VI-C.1) and white-box tests.
  std::vector<instance*> mutable_instances_in(group_id group);
  /// Visits a group's accepting instances without materializing a vector —
  /// the allocation-free counterpart of mutable_instances_in.  Warming
  /// (cold-starting) instances are skipped: they exist plan-wise but do
  /// not accept work yet.
  template <typename F>
  void for_each_accepting(group_id group, F&& fn) {
    if (group >= groups_.size()) return;
    for (auto& inst : groups_[group]) {
      if (!inst->draining() && !inst->warming()) fn(*inst);
    }
  }

  std::uint64_t total_completed() const noexcept;
  std::uint64_t total_dropped() const noexcept;

  const billing_meter& billing() const noexcept { return billing_; }

 private:
  sim::simulation& sim_;
  util::rng rng_;
  instance::options instance_opts_;
  instance_id next_id_ = 1;
  /// Indexed directly by group id (ids are small and dense); empty slots
  /// are groups never launched into.  Replaces the former std::map so the
  /// per-request route() is a bounds check plus one vector scan.
  std::vector<std::vector<std::unique_ptr<instance>>> groups_;
  /// Instances marked draining but not yet reaped; sweep() is a no-op at
  /// zero, which is the steady state between provisioning slots.
  std::size_t draining_count_ = 0;
  /// Per-group outage flags (1 = down); indexed like groups_.  Groups
  /// past the end are available.
  std::vector<std::uint8_t> unavailable_;
  obs::registry* obs_ = nullptr;
  billing_meter billing_;
  std::uint64_t retired_completed_ = 0;
  std::uint64_t retired_dropped_ = 0;
};

}  // namespace mca::cloud
