#include "cloud/instance_type.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace mca::cloud {

std::size_t instance_type::max_concurrent() const noexcept {
  // The stripped Dalvik-x86 surrogate (no Zygote, no GUI manager, -40%
  // storage) keeps a request's process around ~16 MB resident, so even the
  // nano absorbs the paper's 100-user characterization bursts; the floor
  // covers swap headroom on the smallest types.
  const auto by_memory = static_cast<std::size_t>(memory_gb * 64.0);
  return std::max<std::size_t>(by_memory, 128);
}

const std::vector<instance_type>& ec2_catalog() {
  // vCPU/memory/price: EC2 Ireland on-demand, 2016.  Speed factors encode
  // the paper's measured acceleration levels (§VI-A.3): L1 = 1.00 (t2.nano,
  // t2.small), L2 = 1.25 (t2.medium, t2.large), L3 = 1.73 (m4.4xlarge,
  // m4.10xlarge), L4 = 2.10 (c4.8xlarge).  t2.micro nominally matches L1
  // but carries heavy steal + jitter (Fig. 6 anomaly) and ends up demoted
  // to group 0 by the classifier.
  static const std::vector<instance_type> catalog = {
      //  name           vcpu  mem     $/h     speed jitter steal  baseline
      {"t2.nano",         1.0,  0.5, 0.0063,  1.00, 0.08, 0.00, 0.05},
      {"t2.micro",        1.0,  1.0, 0.0126,  1.00, 0.25, 0.35, 0.10},
      {"t2.small",        1.0,  2.0, 0.0250,  1.00, 0.08, 0.00, 0.20},
      {"t2.medium",       2.0,  4.0, 0.0500,  1.25, 0.08, 0.00, 0.20},
      {"t2.large",        2.0,  8.0, 0.1010,  1.25, 0.08, 0.00, 0.30},
      {"m4.4xlarge",     16.0, 64.0, 0.8880,  1.73, 0.06, 0.00, 1.00},
      {"m4.10xlarge",    40.0,160.0, 2.2200,  1.73, 0.06, 0.00, 1.00},
      {"c4.8xlarge",     36.0, 60.0, 1.8110,  2.10, 0.06, 0.00, 1.00},
  };
  return catalog;
}

const instance_type& type_by_name(std::string_view name) {
  for (const auto& t : ec2_catalog()) {
    if (t.name == name) return t;
  }
  throw std::out_of_range{"type_by_name: unknown instance type '" +
                          std::string{name} + "'"};
}

namespace {

/// Name <-> id registry behind intern_type_name.  Seeded with the catalog
/// so catalog ids equal catalog indices; custom names (white-box tests)
/// append.  Guarded by a mutex: interning happens on launch/retire paths,
/// never per request, and fleet shards construct in parallel.
struct type_registry {
  std::mutex mutex;
  std::vector<std::string> names;
  std::unordered_map<std::string, instance_type_id> ids;

  type_registry() {
    for (const auto& t : ec2_catalog()) {
      ids.emplace(t.name, static_cast<instance_type_id>(names.size()));
      names.push_back(t.name);
    }
  }
};

type_registry& registry() {
  static type_registry r;
  return r;
}

}  // namespace

instance_type_id find_type_id(std::string_view name) {
  type_registry& r = registry();
  std::lock_guard lock{r.mutex};
  const auto it = r.ids.find(std::string{name});
  return it == r.ids.end() ? kUnknownTypeId : it->second;
}

instance_type_id intern_type_name(std::string_view name) {
  type_registry& r = registry();
  std::lock_guard lock{r.mutex};
  const auto it = r.ids.find(std::string{name});
  if (it != r.ids.end()) return it->second;
  const auto id = static_cast<instance_type_id>(r.names.size());
  r.names.emplace_back(name);
  r.ids.emplace(r.names.back(), id);
  return id;
}

std::string type_name_of(instance_type_id id) {
  type_registry& r = registry();
  std::lock_guard lock{r.mutex};
  if (id >= r.names.size()) {
    throw std::out_of_range{"type_name_of: unknown instance type id"};
  }
  return r.names[id];
}

}  // namespace mca::cloud
