#include "cloud/backend_pool.h"

#include <algorithm>
#include <limits>

namespace mca::cloud {

const char* to_string(route_status s) noexcept {
  switch (s) {
    case route_status::ok: return "ok";
    case route_status::dropped: return "dropped";
    case route_status::no_instances: return "no_instances";
  }
  return "unknown";
}

backend_pool::backend_pool(sim::simulation& sim, util::rng rng,
                           instance::options instance_opts)
    : sim_{sim}, rng_{rng}, instance_opts_{instance_opts} {}

instance_id backend_pool::launch(group_id group, const instance_type& type) {
  sweep();
  if (group >= groups_.size()) groups_.resize(group + 1);
  const instance_id id = next_id_++;
  auto inst = std::make_unique<instance>(sim_, id, type, rng_.fork(),
                                         instance_opts_);
  // Keep the sweep fast path's accounting exact no matter who calls
  // drain() — retire() here or a white-box caller via
  // mutable_instances_in.
  inst->set_drain_observer(
      [](void* self) noexcept {
        ++static_cast<backend_pool*>(self)->draining_count_;
      },
      this);
  inst->set_observability(obs_);
  if (obs_ != nullptr && inst->warming()) {
    obs_->add(obs::counter::fault_cold_starts);
  }
  groups_[group].push_back(std::move(inst));
  billing_.on_launch(id, type, sim_.now());
  return id;
}

std::size_t backend_pool::retire(group_id group, const instance_type& type,
                                 std::size_t count) {
  if (group >= groups_.size()) return 0;
  auto& members = groups_[group];
  const instance_type_id wanted = intern_type_name(type.name);
  std::size_t marked = 0;
  // Prefer draining idle instances so capacity leaves the fleet gracefully.
  for (int pass = 0; pass < 2 && marked < count; ++pass) {
    const bool idle_only = (pass == 0);
    for (auto& inst : members) {
      if (marked >= count) break;
      if (inst->draining() || inst->type_id() != wanted) continue;
      if (idle_only && !inst->idle()) continue;
      inst->drain();  // the drain observer bumps draining_count_
      ++marked;
    }
  }
  sweep();
  return marked;
}

// Per-request routing plus the draining sweep's O(1) fast path: both run
// once per offloaded request, between the SDN dispatch stage and
// instance::submit, so they live in a lint-enforced hot-path region.
// mca:hot-path-begin(backend-route)
route_status backend_pool::route(group_id group, double work_units,
                                 instance::completion_fn on_complete) {
  sweep();
  if (group >= groups_.size() || !group_available(group)) {
    return route_status::no_instances;
  }

  // Least-loaded by active-jobs-per-core — "routes the request to the
  // corresponding group of instances" picking the member with headroom.
  // Warming instances are invisible here: capacity that has not finished
  // its cold start cannot take the request.
  instance* best = nullptr;
  double best_load = std::numeric_limits<double>::infinity();
  for (auto& inst : groups_[group]) {
    if (inst->draining() || inst->warming()) continue;
    const double load =
        static_cast<double>(inst->active_jobs()) / inst->type().vcpus;
    if (load < best_load) {
      best_load = load;
      best = inst.get();
    }
  }
  if (best == nullptr) return route_status::no_instances;
  return best->submit(work_units, std::move(on_complete))
             ? route_status::ok
             : route_status::dropped;
}

void backend_pool::sweep() {
  if (draining_count_ == 0) return;
  for (auto& members : groups_) {
    auto reap = std::remove_if(
        members.begin(), members.end(), [this](std::unique_ptr<instance>& p) {
          if (p->draining() && p->idle()) {
            billing_.on_terminate(p->id(), sim_.now());
            retired_completed_ += p->completed();
            retired_dropped_ += p->dropped();
            if (draining_count_ > 0) --draining_count_;
            return true;
          }
          return false;
        });
    members.erase(reap, members.end());
  }
}
// mca:hot-path-end

backend_pool::preempt_result backend_pool::preempt_in(group_id group,
                                                      std::uint64_t ordinal) {
  preempt_result result;
  if (group >= groups_.size()) return result;
  auto& members = groups_[group];
  std::size_t live = 0;
  for (const auto& inst : members) {
    if (!inst->draining()) ++live;
  }
  if (live == 0) return result;
  // The ordinal comes from the fault schedule's rng stream; the modulo
  // pins the victim to a member index, which is deterministic because
  // launch/retire order is.
  std::size_t victim = static_cast<std::size_t>(ordinal % live);
  for (auto& inst : members) {
    if (inst->draining()) continue;
    if (victim-- == 0) {
      result.applied = true;
      result.killed = inst->preempt();
      break;
    }
  }
  sweep();  // the victim is draining and idle now — reap it immediately
  return result;
}

std::size_t backend_pool::begin_outage(group_id group) {
  if (group >= unavailable_.size()) unavailable_.resize(group + 1, 0);
  unavailable_[group] = 1;
  std::size_t drained = 0;
  if (group < groups_.size()) {
    for (auto& inst : groups_[group]) {
      if (inst->draining()) continue;
      inst->drain();
      ++drained;
    }
  }
  sweep();
  return drained;
}

void backend_pool::end_outage(group_id group) noexcept {
  if (group < unavailable_.size()) unavailable_[group] = 0;
}

std::size_t backend_pool::instance_count(group_id group) const noexcept {
  if (group >= groups_.size()) return 0;
  std::size_t n = 0;
  for (const auto& inst : groups_[group]) {
    if (!inst->draining()) ++n;
  }
  return n;
}

std::size_t backend_pool::instance_count(
    group_id group, const std::string& type_name) const noexcept {
  const instance_type_id type = find_type_id(type_name);
  if (type == kUnknownTypeId) return 0;  // never seen, so never launched
  return instance_count(group, type);
}

std::size_t backend_pool::instance_count(
    group_id group, instance_type_id type) const noexcept {
  if (group >= groups_.size()) return 0;
  std::size_t n = 0;
  for (const auto& inst : groups_[group]) {
    if (!inst->draining() && inst->type_id() == type) ++n;
  }
  return n;
}

std::vector<group_id> backend_pool::groups() const {
  std::vector<group_id> ids;
  for (group_id g = 0; g < groups_.size(); ++g) {
    if (!groups_[g].empty()) ids.push_back(g);
  }
  return ids;
}

std::vector<const instance*> backend_pool::instances_in(
    group_id group) const {
  std::vector<const instance*> out;
  if (group >= groups_.size()) return out;
  for (const auto& inst : groups_[group]) {
    if (!inst->draining()) out.push_back(inst.get());
  }
  return out;
}

std::vector<instance*> backend_pool::mutable_instances_in(group_id group) {
  std::vector<instance*> out;
  if (group >= groups_.size()) return out;
  for (auto& inst : groups_[group]) {
    if (!inst->draining()) out.push_back(inst.get());
  }
  return out;
}

std::uint64_t backend_pool::total_completed() const noexcept {
  std::uint64_t n = retired_completed_;
  for (const auto& members : groups_) {
    for (const auto& inst : members) n += inst->completed();
  }
  return n;
}

std::uint64_t backend_pool::total_dropped() const noexcept {
  std::uint64_t n = retired_dropped_;
  for (const auto& members : groups_) {
    for (const auto& inst : members) n += inst->dropped();
  }
  return n;
}

}  // namespace mca::cloud
