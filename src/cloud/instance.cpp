#include "cloud/instance.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mca::cloud {

namespace {
/// Work below this is considered finished (guards float drift).  A job
/// whose finish-V is within this of the clock completes now.
constexpr double kWorkEpsilon = 1e-6;
/// Cap on banked credits: 24 hours of baseline accrual.
constexpr double kCreditCapHours = 24.0;
/// Finish-heap key packing, mirroring sim::simulation: low 24 bits are the
/// job-slab slot, high 40 bits the per-instance submission sequence.  2^40
/// submissions per instance is unreachable in any experiment (a fleet run
/// totals ~10^6 requests across hundreds of instances).
constexpr std::uint32_t kJobSlotBits = 24;
constexpr std::uint64_t kJobSlotMask = (1u << kJobSlotBits) - 1;
}  // namespace

instance::instance(sim::simulation& sim, instance_id id,
                   const instance_type& type, util::rng rng, options opts)
    : sim_{sim},
      id_{id},
      type_{type},
      type_id_{intern_type_name(type.name)},
      rng_{rng},
      opts_{opts},
      last_update_{sim.now()},
      launched_at_{sim.now()},
      credits_{opts.initial_credits_core_ms} {
  if (opts_.cold_start_mean_ms > 0.0) {
    ready_at_ = sim.now() + opts_.cold_start_mean_ms *
                                rng_.lognormal(0.0, opts_.cold_start_sigma);
  }
}

instance::~instance() {
  if (pending_completion_.valid()) sim_.cancel(pending_completion_);
}

// The PS event math: advance / wake planning / batched completion drain /
// submit all run per request (or per completion event), so they form one
// lint-enforced hot-path region.  The job slab and finish-V heap are
// member vectors whose growth amortizes to zero in steady state — the
// counting-allocator test holds them to that at runtime, the region
// rules hold the code to it statically.
// mca:hot-path-begin(ps-event-math)
double instance::steal(std::size_t n) const noexcept {
  if (type_.steal_max <= 0.0 || n == 0) return 0.0;
  // Contention-dependent steal: negligible solo, approaching steal_max as
  // neighbours pile on (the t2.micro oversubscription anomaly of Fig. 6).
  const double x = static_cast<double>(n);
  return type_.steal_max * x / (x + 8.0);
}

double instance::effective_cores() const noexcept {
  if (opts_.enable_cpu_credits && credits_ <= 0.0) {
    return std::max(type_.baseline_fraction * type_.vcpus, 0.05);
  }
  return type_.vcpus;
}

double instance::rate_per_job(std::size_t n) const noexcept {
  if (n == 0) return 0.0;
  const double cores = effective_cores();
  const double share = std::min(1.0, cores / static_cast<double>(n));
  return type_.speed_factor * (1.0 - steal(n)) * share;
}

void instance::advance() {
  const util::time_ms now = sim_.now();
  const double elapsed = now - last_update_;
  if (elapsed <= 0.0) {
    last_update_ = now;
    return;
  }
  // The per-job rate is piecewise-constant between events (submissions,
  // completions, and the credit-exhaustion wake are all events), so the
  // whole interval integrates to one multiply — no per-job state to touch.
  const std::size_t n = heap_.size();
  if (n > 0) {
    vclock_ += elapsed * rate_per_job(n);
    const double busy_cores =
        std::min(static_cast<double>(n), effective_cores());
    busy_core_ms_ += elapsed * busy_cores;
    if (opts_.enable_cpu_credits) {
      const double accrual = type_.baseline_fraction * type_.vcpus;
      credits_ += elapsed * (accrual - busy_cores);
      credits_ = std::clamp(
          credits_, 0.0,
          kCreditCapHours * 3'600'000.0 * type_.baseline_fraction * type_.vcpus);
    }
  } else if (opts_.enable_cpu_credits) {
    credits_ += elapsed * type_.baseline_fraction * type_.vcpus;
    credits_ = std::min(credits_, kCreditCapHours * 3'600'000.0 *
                                      type_.baseline_fraction * type_.vcpus);
  }
  last_update_ = now;
}

double instance::next_wake_delay() const noexcept {
  const double remaining = heap_.front().finish_v - vclock_;
  const double rate = rate_per_job(heap_.size());
  double eta = std::max(remaining, 0.0) / rate;
  if (opts_.enable_cpu_credits && credits_ > 0.0) {
    // If the balance empties before the next completion, wake up at the
    // exhaustion moment so the throttled rate takes effect from there on
    // (on_completion_event tolerates firing with nothing finished).
    const double busy_cores =
        std::min(static_cast<double>(heap_.size()), type_.vcpus);
    const double accrual = type_.baseline_fraction * type_.vcpus;
    if (busy_cores > accrual) {
      const double exhaustion = credits_ / (busy_cores - accrual);
      if (exhaustion + 1e-9 < eta) eta = std::max(exhaustion, 1e-6);
    }
  }
  return eta;
}

void instance::arm_no_later_than(double delay) {
  const util::time_ms target = sim_.now() + delay;
  if (pending_completion_.valid()) {
    // Never push the armed event later: an early fire merely advances the
    // clock and re-arms, but a late one would delay a real completion.
    if (target < armed_at_) {
      sim_.reschedule(pending_completion_, target);
      armed_at_ = target;
    }
    return;
  }
  pending_completion_ =
      sim_.schedule_at(target, [this] { on_completion_event(); });
  armed_at_ = target;
}

void instance::on_completion_event() {
  pending_completion_ = {};
  advance();
  // Pop every job whose finish-V the clock has (numerically) reached — a
  // whole batch of simultaneous finishers drains in this one event.
  // Callbacks run after internal state is consistent so they may submit
  // again immediately.  The scratch list keeps its capacity across events
  // and the completed slab entries return to the free list — no
  // steady-state allocation.
  finished_scratch_.clear();
  const double due = vclock_ + kWorkEpsilon;
  while (!heap_.empty() && heap_.front().finish_v <= due) {
    finished_scratch_.push_back(
        static_cast<std::uint32_t>(heap_.front().key & kJobSlotMask));
    std::pop_heap(heap_.begin(), heap_.end(), finishes_later);
    heap_.pop_back();
  }
  if (obs_ != nullptr) {
    obs_->add(obs::counter::ps_completion_events);
    obs_->add(obs::counter::ps_completions, finished_scratch_.size());
    obs_->observe(obs::series::ps_event_batch,
                  static_cast<double>(finished_scratch_.size()));
    if (finished_scratch_.empty()) {
      obs_->add(obs::counter::ps_spurious_wakes);
    }
    if (heap_.empty()) obs_->add(obs::counter::ps_vclock_resets);
  }
  if (heap_.empty()) {
    // Fresh busy period, fresh origin: V never accumulates across idle
    // gaps, so its magnitude (and hence the absolute rounding error of
    // `finish_v - vclock_`) stays bounded by one busy period's work.
    vclock_ = 0.0;
  }
  for (const std::uint32_t idx : finished_scratch_) {
    job& j = jobs_[idx];
    const util::time_ms service_time = sim_.now() - j.submitted_at;
    completion_fn fn = std::move(j.on_complete);
    j.on_complete = nullptr;
    j.next_free = free_head_;
    free_head_ = idx;
    ++completed_;
    stats_.add(service_time);
    if (fn) fn(service_time, true);
  }
  // A stale-early fire (submissions slowed the shared rate after arming)
  // lands here with nothing due; either way, re-arm exactly for the new
  // heap top.  Resubmitting callbacks have already armed via submit().
  if (!heap_.empty()) arm_no_later_than(next_wake_delay());
}

bool instance::submit(double work_units, completion_fn on_complete) {
  // mca-lint: allow(hot-throw) cold caller-bug validation: fires once per
  // programming error, never on the steady-state request path.
  if (work_units < 0.0) throw std::invalid_argument{"submit: negative work"};
  if (draining_ || warming() || heap_.size() >= type_.max_concurrent()) {
    ++dropped_;
    if (obs_ != nullptr) obs_->add(obs::counter::ps_drops);
    return false;
  }
  if (obs_ != nullptr) {
    obs_->add(obs::counter::ps_submits);
    obs_->observe(obs::series::ps_queue_depth,
                  static_cast<double>(heap_.size()));
  }
  advance();
  // Multi-tenancy jitter multiplies the compute portion; the dalvikvm spawn
  // cost is paid per request on top.
  const double noisy =
      work_units * rng_.lognormal(0.0, type_.jitter_sigma) +
      k_spawn_overhead_wu;
  std::uint32_t idx;
  if (free_head_ != kNoFreeJob) {
    idx = free_head_;
    free_head_ = jobs_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(jobs_.size());
    jobs_.emplace_back();
  }
  job& j = jobs_[idx];
  j.submitted_at = sim_.now();
  j.on_complete = std::move(on_complete);
  const double new_finish = vclock_ + noisy;
  // The pending event (if any) was armed for a faster rate and therefore
  // fires no later than the true next completion — leave it alone unless
  // this job (or the now-nearer credit exhaustion) needs an earlier wake:
  //  * the new job undercuts the heap front (it is the next completion), or
  //  * the heap was empty (nothing armed at all), or
  //  * credits are burning faster than they accrue, so this extra job pulls
  //    the exhaustion slope-change closer.
  // Otherwise the armed event already fires early-or-exact, and a spurious
  // early fire just advances the clock and re-arms — skipping the wake math
  // here is what keeps bursty submits O(log n) with no event churn.
  bool need_arm = heap_.empty() || new_finish < heap_.front().finish_v;
  heap_.push_back({new_finish, (next_sequence_++ << kJobSlotBits) | idx});
  std::push_heap(heap_.begin(), heap_.end(), finishes_later);
  if (!need_arm && opts_.enable_cpu_credits && credits_ > 0.0) {
    const double busy_cores =
        std::min(static_cast<double>(heap_.size()), type_.vcpus);
    need_arm = busy_cores > type_.baseline_fraction * type_.vcpus;
  }
  if (need_arm) arm_no_later_than(next_wake_delay());
  return true;
}

std::size_t instance::preempt() {
  advance();
  vclock_ = 0.0;
  if (pending_completion_.valid()) {
    sim_.cancel(pending_completion_);
    pending_completion_ = {};
  }
  // Drain before the failure callbacks run: a callback that immediately
  // re-routes must not land back on this instance — which also freezes
  // heap_ (submit() bails on draining_ before touching it), so the
  // callbacks fire straight off the heap storage in layout order.  Kill
  // order is deterministic given the deterministic submission history,
  // and skipping the scratch copy keeps a strike on a freshly relaunched
  // instance (whose scratch buffer would still be cold) allocation-free.
  drain();
  const std::size_t killed = heap_.size();
  for (const finish_entry& e : heap_) {
    const std::uint32_t idx = static_cast<std::uint32_t>(e.key & kJobSlotMask);
    job& j = jobs_[idx];
    const util::time_ms elapsed = sim_.now() - j.submitted_at;
    completion_fn fn = std::move(j.on_complete);
    j.on_complete = nullptr;
    j.next_free = free_head_;
    free_head_ = idx;
    if (fn) fn(elapsed, false);
  }
  heap_.clear();
  return killed;
}
// mca:hot-path-end

double instance::mean_utilization() const noexcept {
  // Include the interval since the last event so callers can sample at any
  // simulated moment without forcing an advance().  The tail uses the same
  // busy-core formula as advance() — in particular effective_cores(), not
  // raw vcpus, so a credit-throttled instance is not overstated.
  double busy = busy_core_ms_;
  const double tail = sim_.now() - last_update_;
  if (tail > 0.0 && !heap_.empty()) {
    busy += tail * std::min(static_cast<double>(heap_.size()),
                            effective_cores());
  }
  const double lifetime = sim_.now() - launched_at_;
  if (lifetime <= 0.0) return 0.0;
  return busy / (lifetime * type_.vcpus);
}

bool instance::throttled() const noexcept {
  return opts_.enable_cpu_credits && credits_ <= 0.0;
}

}  // namespace mca::cloud
