#include "cloud/instance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mca::cloud {

namespace {
/// Work below this is considered finished (guards float drift).
constexpr double kWorkEpsilon = 1e-6;
/// Cap on banked credits: 24 hours of baseline accrual.
constexpr double kCreditCapHours = 24.0;
}  // namespace

instance::instance(sim::simulation& sim, instance_id id,
                   const instance_type& type, util::rng rng, options opts)
    : sim_{sim},
      id_{id},
      type_{type},
      type_id_{intern_type_name(type.name)},
      rng_{rng},
      opts_{opts},
      last_update_{sim.now()},
      launched_at_{sim.now()},
      credits_{opts.initial_credits_core_ms} {}

instance::~instance() {
  if (pending_completion_.valid()) sim_.cancel(pending_completion_);
}

double instance::steal(std::size_t n) const noexcept {
  if (type_.steal_max <= 0.0 || n == 0) return 0.0;
  // Contention-dependent steal: negligible solo, approaching steal_max as
  // neighbours pile on (the t2.micro oversubscription anomaly of Fig. 6).
  const double x = static_cast<double>(n);
  return type_.steal_max * x / (x + 8.0);
}

double instance::effective_cores() const noexcept {
  if (opts_.enable_cpu_credits && credits_ <= 0.0) {
    return std::max(type_.baseline_fraction * type_.vcpus, 0.05);
  }
  return type_.vcpus;
}

double instance::rate_per_job(std::size_t n) const noexcept {
  if (n == 0) return 0.0;
  const double cores = effective_cores();
  const double share = std::min(1.0, cores / static_cast<double>(n));
  return type_.speed_factor * (1.0 - steal(n)) * share;
}

void instance::advance() {
  const util::time_ms now = sim_.now();
  const double elapsed = now - last_update_;
  if (elapsed <= 0.0) {
    last_update_ = now;
    return;
  }
  const std::size_t n = active_.size();
  if (n > 0) {
    const double rate = rate_per_job(n);
    const double done = elapsed * rate;
    for (const std::uint32_t idx : active_) jobs_[idx].remaining_wu -= done;
    const double busy_cores =
        std::min(static_cast<double>(n), effective_cores());
    busy_core_ms_ += elapsed * busy_cores;
    if (opts_.enable_cpu_credits) {
      const double accrual = type_.baseline_fraction * type_.vcpus;
      credits_ += elapsed * (accrual - busy_cores);
      credits_ = std::clamp(
          credits_, 0.0,
          kCreditCapHours * 3'600'000.0 * type_.baseline_fraction * type_.vcpus);
    }
  } else if (opts_.enable_cpu_credits) {
    credits_ += elapsed * type_.baseline_fraction * type_.vcpus;
    credits_ = std::min(credits_, kCreditCapHours * 3'600'000.0 *
                                      type_.baseline_fraction * type_.vcpus);
  }
  last_update_ = now;
}

void instance::reschedule() {
  if (pending_completion_.valid()) {
    sim_.cancel(pending_completion_);
    pending_completion_ = {};
  }
  if (active_.empty()) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const std::uint32_t idx : active_) {
    min_remaining = std::min(min_remaining, jobs_[idx].remaining_wu);
  }
  const double rate = rate_per_job(active_.size());
  double eta = std::max(min_remaining, 0.0) / rate;
  if (opts_.enable_cpu_credits && credits_ > 0.0) {
    // If the balance empties before the next completion, wake up at the
    // exhaustion moment so the throttled rate takes effect from there on
    // (on_completion_event tolerates firing with nothing finished).
    const double busy_cores =
        std::min(static_cast<double>(active_.size()), type_.vcpus);
    const double accrual = type_.baseline_fraction * type_.vcpus;
    if (busy_cores > accrual) {
      const double exhaustion = credits_ / (busy_cores - accrual);
      if (exhaustion + 1e-9 < eta) eta = std::max(exhaustion, 1e-6);
    }
  }
  pending_completion_ =
      sim_.schedule_after(eta, [this] { on_completion_event(); });
}

void instance::on_completion_event() {
  pending_completion_ = {};
  advance();
  // Complete every job that has (numerically) finished; callbacks run after
  // internal state is consistent so they may immediately submit again.
  // The scratch list keeps its capacity across events and the completed
  // slab entries return to the free list — no steady-state allocation.
  finished_scratch_.clear();
  std::size_t keep = 0;
  for (const std::uint32_t idx : active_) {
    if (jobs_[idx].remaining_wu <= kWorkEpsilon) {
      finished_scratch_.push_back(idx);
    } else {
      active_[keep++] = idx;
    }
  }
  active_.resize(keep);
  for (const std::uint32_t idx : finished_scratch_) {
    job& j = jobs_[idx];
    const util::time_ms service_time = sim_.now() - j.submitted_at;
    completion_fn fn = std::move(j.on_complete);
    j.on_complete = nullptr;
    j.next_free = free_head_;
    free_head_ = idx;
    ++completed_;
    stats_.add(service_time);
    if (fn) fn(service_time);
  }
  reschedule();
}

bool instance::submit(double work_units, completion_fn on_complete) {
  if (work_units < 0.0) throw std::invalid_argument{"submit: negative work"};
  if (draining_ || active_.size() >= type_.max_concurrent()) {
    ++dropped_;
    return false;
  }
  advance();
  // Multi-tenancy jitter multiplies the compute portion; the dalvikvm spawn
  // cost is paid per request on top.
  const double noisy =
      work_units * rng_.lognormal(0.0, type_.jitter_sigma) +
      k_spawn_overhead_wu;
  std::uint32_t idx;
  if (free_head_ != kNoFreeJob) {
    idx = free_head_;
    free_head_ = jobs_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(jobs_.size());
    jobs_.emplace_back();
  }
  job& j = jobs_[idx];
  j.remaining_wu = noisy;
  j.submitted_at = sim_.now();
  j.on_complete = std::move(on_complete);
  active_.push_back(idx);
  reschedule();
  return true;
}

double instance::mean_utilization() const noexcept {
  // Include the interval since the last event so callers can sample at any
  // simulated moment without forcing an advance().
  double busy = busy_core_ms_;
  const double tail = sim_.now() - last_update_;
  if (tail > 0.0 && !active_.empty()) {
    busy += tail * std::min(static_cast<double>(active_.size()),
                            static_cast<double>(type_.vcpus));
  }
  const double lifetime = sim_.now() - launched_at_;
  if (lifetime <= 0.0) return 0.0;
  return busy / (lifetime * type_.vcpus);
}

bool instance::throttled() const noexcept {
  return opts_.enable_cpu_credits && credits_ <= 0.0;
}

}  // namespace mca::cloud
