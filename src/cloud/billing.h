// Instance-hour billing, the cost side of the allocation model.
//
// The paper's premise: "a provisioned instance is billed by hour by most of
// the cloud vendors".  Every launch opens a billing record; cost accrues in
// started hours (ceil, minimum one) at the type's on-demand price.
#pragma once

#include <string>
#include <unordered_map>

#include "cloud/instance_type.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace mca::cloud {

/// Tracks the dollar cost of a fleet over simulated time.
class billing_meter {
 public:
  /// Opens a record for a launched instance.
  /// Throws std::logic_error when the id is already active.
  void on_launch(instance_id id, const instance_type& type,
                 util::time_ms at);

  /// Closes a record.  Throws std::logic_error when the id is not active.
  void on_terminate(instance_id id, util::time_ms at);

  /// Total cost of all closed records plus the accrued (started-hour) cost
  /// of instances still running at `now`.
  double total_cost(util::time_ms now) const;

  /// Same, restricted to one type name.
  double cost_for_type(const std::string& type_name, util::time_ms now) const;

  /// Number of currently open records.
  std::size_t active_instances() const noexcept { return open_.size(); }

  /// Total billed instance-hours (closed + accrued).
  double total_instance_hours(util::time_ms now) const;

 private:
  struct record {
    std::string type_name;
    double cost_per_hour = 0.0;
    util::time_ms start = 0.0;
  };

  static double billed_hours(util::time_ms start, util::time_ms end);

  std::unordered_map<instance_id, record> open_;
  /// Closed records fold into running aggregates at termination time (in
  /// close order, so the FP accumulation order the golden fingerprints
  /// pin is unchanged) instead of accumulating one stored record each: a
  /// preemption-heavy fleet run closes records at fault rate, and the
  /// close path must neither allocate nor grow without bound.
  double closed_cost_ = 0.0;
  double closed_hours_ = 0.0;
  std::unordered_map<std::string, double> closed_cost_by_type_;
};

}  // namespace mca::cloud
