#include "cloud/billing.h"

#include <cmath>
#include <stdexcept>

namespace mca::cloud {

double billing_meter::billed_hours(util::time_ms start, util::time_ms end) {
  const double hours = util::to_hours(std::max(end - start, 0.0));
  return std::max(std::ceil(hours), 1.0);  // a started hour is a billed hour
}

void billing_meter::on_launch(instance_id id, const instance_type& type,
                              util::time_ms at) {
  const auto [it, inserted] =
      open_.emplace(id, record{type.name, type.cost_per_hour, at});
  (void)it;
  if (!inserted) throw std::logic_error{"billing: instance already active"};
  // Seed the per-type close aggregate here, at (slot-rate) launch time, so
  // the termination path below never inserts — a spot preemption may close
  // a record from the allocation-free fault path.
  closed_cost_by_type_.try_emplace(type.name, 0.0);
}

void billing_meter::on_terminate(instance_id id, util::time_ms at) {
  const auto it = open_.find(id);
  if (it == open_.end()) throw std::logic_error{"billing: unknown instance"};
  const record& rec = it->second;
  const double hours = billed_hours(rec.start, at);
  closed_cost_ += rec.cost_per_hour * hours;
  closed_hours_ += hours;
  closed_cost_by_type_.find(rec.type_name)->second +=
      rec.cost_per_hour * hours;
  open_.erase(it);
}

double billing_meter::total_cost(util::time_ms now) const {
  double cost = closed_cost_;
  // mca-lint: allow(det-unordered-iter) cost_usd feeds the golden fleet
  // fingerprint, which pins this exact FP accumulation order: open_'s
  // iteration order is fixed for a given stdlib + insertion sequence, so
  // identical runs sum identically, and reordering the sweep (e.g. to a
  // launch-order vector) would re-golden the fingerprint for no
  // correctness gain.  open_ holds only the instances still running.
  for (const auto& [id, rec] : open_) {
    cost += rec.cost_per_hour * billed_hours(rec.start, now);
  }
  return cost;
}

double billing_meter::cost_for_type(const std::string& type_name,
                                    util::time_ms now) const {
  double cost = 0.0;
  if (const auto it = closed_cost_by_type_.find(type_name);
      it != closed_cost_by_type_.end()) {
    cost = it->second;
  }
  // mca-lint: allow(det-unordered-iter) same pinned-order argument as
  // total_cost above: per-binary-reproducible sweep over the open set.
  for (const auto& [id, rec] : open_) {
    if (rec.type_name == type_name) {
      cost += rec.cost_per_hour * billed_hours(rec.start, now);
    }
  }
  return cost;
}

double billing_meter::total_instance_hours(util::time_ms now) const {
  double hours = closed_hours_;
  // mca-lint: allow(det-unordered-iter) same pinned-order argument as
  // total_cost above: per-binary-reproducible sweep over the open set.
  for (const auto& [id, rec] : open_) hours += billed_hours(rec.start, now);
  return hours;
}

}  // namespace mca::cloud
