// EC2-like instance-type catalog.
//
// This is the calibration surface of the cloud simulator: each type carries
// the published vCPU/memory/price numbers (Amazon EC2 Ireland, 2016-era, as
// used by the paper) plus the behavioural parameters of our service model:
//
//  * `speed_factor` — work units per millisecond per core, relative to the
//    reference t2 core (1.0).  Chosen so the acceleration-level ratios the
//    paper measures (L2/L1 ≈ 1.25, L3/L1 ≈ 1.73, L4 above L3) fall out of
//    the catalog.
//  * `jitter_sigma` — lognormal service-time noise (multi-tenant wobble).
//  * `steal_max` — asymptotic CPU-steal fraction under load; nonzero only
//    for t2.micro, reproducing the paper's Fig. 6 anomaly where the
//    nominally stronger micro underperforms the nano.
//  * `baseline_fraction` — t2 CPU-credit baseline share (1.0 = never
//    throttles).  The credit model is off by default (the paper's runs show
//    no credit exhaustion thanks to cool-down gaps) and exercised by the
//    ablation bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mca::cloud {

/// Static description of a purchasable server type.
struct instance_type {
  std::string name;
  double vcpus = 1.0;
  double memory_gb = 1.0;
  double cost_per_hour = 0.0;      ///< USD, on-demand, billed per started hour
  double speed_factor = 1.0;       ///< wu/ms per core (reference core = 1.0)
  double jitter_sigma = 0.08;      ///< lognormal sigma of service noise
  double steal_max = 0.0;          ///< asymptotic stolen CPU fraction
  double baseline_fraction = 1.0;  ///< t2 credit baseline share of all cores

  /// Maximum simultaneous dalvikvm processes (memory-bound); requests
  /// beyond this are dropped, which is what saturates Fig. 8c.
  std::size_t max_concurrent() const noexcept;

  /// Aggregate full-speed throughput in work units per millisecond.
  double capacity_wu_per_ms() const noexcept { return vcpus * speed_factor; }
};

/// Work units charged per request for dalvikvm process spawn (the paper's
/// one-process-per-request surrogate design).
inline constexpr double k_spawn_overhead_wu = 8.0;

/// The catalog used throughout the paper's evaluation: the six general
/// purpose types of Fig. 4 plus m4.4xlarge (Fig. 9) and c4.8xlarge (the
/// level-4 addition of Fig. 7).
const std::vector<instance_type>& ec2_catalog();

/// Looks up a catalog entry; throws std::out_of_range for unknown names.
const instance_type& type_by_name(std::string_view name);

/// Small integer id for an instance-type name.  Catalog names get stable
/// ids (their catalog index); unknown names (custom test types) are
/// interned on first sight.  Ids let the pool and the provisioning paths
/// compare types without touching a std::string per request.  Thread-safe.
using instance_type_id = std::uint32_t;
instance_type_id intern_type_name(std::string_view name);

/// Id reserved for "no such type" — returned by find_type_id for names
/// never interned; never handed out by intern_type_name.
inline constexpr instance_type_id kUnknownTypeId = 0xffffffffu;

/// Non-interning lookup: the id of an already-interned name, or
/// kUnknownTypeId.  Read-only queries (instance counts by name) use this
/// so a typo'd or speculative name cannot grow the registry.
instance_type_id find_type_id(std::string_view name);

/// The name an id was interned from (by value — the registry may grow
/// concurrently); throws std::out_of_range on an id never handed out.
std::string type_name_of(instance_type_id id);

}  // namespace mca::cloud
