// A simulated cloud server executing offloaded tasks.
//
// Service model: egalitarian processor sharing.  With `n` active requests
// on `c` cores each request progresses at
//
//     speed_factor * (1 - steal(n)) * min(1, c/n)   work units per ms,
//
// which yields exactly the behaviour the paper characterizes in §VI-A: flat
// response time until concurrency exceeds the core count, then linear
// degradation whose slope flattens as the type gets wider/faster (Fig. 4).
// Each request additionally pays the dalvikvm spawn overhead and a
// lognormal multi-tenancy jitter on its total work.  Admission is capped at
// `instance_type::max_concurrent()`; beyond it requests are dropped, which
// produces the success/fail split of Fig. 8c.
//
// Implementation: analytic virtual-time accounting, O(1) per event.  A
// single virtual-work clock V(t) accumulates the per-job progress rate —
// piecewise linear in wall time, with slope changes only at submissions,
// completions, and credit exhaustion (each of which is an event, so V
// advances by `elapsed * rate` per event and never needs sub-interval
// integration).  A job submitted when the clock reads V with `w` noisy work
// units finishes exactly when V reaches V + w; under egalitarian sharing
// every active job progresses at the same rate, so ordering jobs in a
// min-heap keyed by that finish-V *is* completion order.  advance() is a
// constant-time clock/credit/utilization update instead of an O(n) sweep
// decrementing per-job remaining work, the next completion is the heap top
// instead of an O(n) min scan, and all jobs whose finish-V falls within
// kWorkEpsilon of the clock drain in one event.  The one pending
// sim-event is kept at a time <= the true next completion (submissions
// slow the shared rate, pushing completions later, so the armed event may
// fire early, find nothing due, and re-arm exactly — which replaces the
// former cancel/re-insert pair per submission with at most one O(1)
// spurious wake per busy burst); it is moved earlier in place via
// sim::simulation::reschedule when a short job or a credit-exhaustion
// boundary needs a sooner wake.
//
// An optional t2 CPU-credit model (off by default, matching the paper's
// cool-down methodology) throttles the instance to its baseline share when
// the credit balance empties; the throttle changes only the V(t) slope (a
// piecewise segment starting at the exhaustion wake-up), so the heap order
// is unaffected.  `bench/ablation_credits` exercises it.
//
// Numerical note for re-goldening: the virtual-time formulation computes a
// job's remaining work as `finish_V - V` (one subtraction against a shared
// accumulator) where the legacy event-rescheduling implementation kept a
// per-job `remaining_wu` decremented every event.  The two accumulate
// floating-point rounding differently, so individual completion times can
// drift by O(1 ulp of V) — semantically identical service times, but not
// guaranteed bit-identical.  In practice every scenario-level golden
// (tests/test_golden_equivalence.cpp) and the 100k-user fleet fingerprint
// came out bit-identical; only the 500k-user fleet fingerprint moved (its
// deeper per-instance queues hit the rounding difference), and was
// re-recorded in the PR that introduced this file after
// tests/test_ps_differential.cpp bounded the drift against the legacy
// sweep kept in-test.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cloud/instance_type.h"
#include "obs/registry.h"
#include "sim/simulation.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/stats.h"

namespace mca::cloud {

/// One provisioned server inside the discrete-event simulation.
class instance {
 public:
  struct options {
    /// Enables the t2 CPU-credit throttling model.
    bool enable_cpu_credits = false;
    /// Initial credit balance in core-milliseconds (30 credit-minutes of a
    /// full core by default, roughly EC2's launch allotment).
    double initial_credits_core_ms = 30.0 * 60'000.0;
    /// Cold-start delay paid between launch and first-accept: lognormal
    /// with median `cold_start_mean_ms` and shape `cold_start_sigma`.
    /// 0 (the default) disables the warm-up and draws nothing from the
    /// instance's rng stream, so fault-free runs are bit-identical to
    /// builds that predate the knob.
    double cold_start_mean_ms = 0.0;
    double cold_start_sigma = 0.4;
  };

  /// Invoked when a request leaves the server: `ok` is true for a normal
  /// completion (`service_time` is the in-server time — spawn + compute
  /// under sharing, excluding network) and false when the job was killed
  /// in flight (preemption / forced drain; `service_time` is then the
  /// time the job had spent on the server).
  using completion_fn =
      std::function<void(util::time_ms service_time, bool ok)>;

  instance(sim::simulation& sim, instance_id id, const instance_type& type,
           util::rng rng, options opts);
  instance(sim::simulation& sim, instance_id id, const instance_type& type,
           util::rng rng)
      : instance{sim, id, type, rng, options{}} {}

  instance(const instance&) = delete;
  instance& operator=(const instance&) = delete;
  ~instance();

  /// Submits `work_units` of compute.  Returns false when the admission cap
  /// is hit or the instance is draining (the callback is then never run).
  bool submit(double work_units, completion_fn on_complete);

  /// Stops accepting new work; running requests finish normally.  Fires
  /// the drain observer on the first call, so an owning pool's sweep
  /// accounting stays exact even when drain() is invoked directly (e.g.
  /// through mutable_instances_in).
  void drain() noexcept {
    if (!draining_) {
      draining_ = true;
      if (drain_observer_ != nullptr) drain_observer_(drain_observer_ctx_);
    }
  }
  /// Observer invoked once, at the accepting->draining transition.
  using drain_observer_fn = void (*)(void*) noexcept;
  void set_drain_observer(drain_observer_fn fn, void* ctx) noexcept {
    drain_observer_ = fn;
    drain_observer_ctx_ = ctx;
  }
  bool draining() const noexcept { return draining_; }
  bool idle() const noexcept { return heap_.empty(); }

  /// True while the cold-start delay is still running: the instance is
  /// provisioned (and billed) but not yet accepting work.
  bool warming() const noexcept { return sim_.now() < ready_at_; }
  util::time_ms ready_at() const noexcept { return ready_at_; }

  /// Spot-style preemption: every in-flight job is killed *now* — each
  /// callback fires with ok=false so the client hears a failure notice
  /// instead of silence — and the instance drains (an owning pool's sweep
  /// reaps it immediately, since the heap is empty).  Returns the number
  /// of jobs killed.  Allocation-free: reuses the completion scratch.
  std::size_t preempt();

  /// Attaches the PS counters (submits/drops/completions, queue-depth and
  /// event-batch series, virtual-clock resets).  nullptr (the default)
  /// disables them; the pointer is fixed after setup, so the off path is
  /// one predictable branch per event.
  void set_observability(obs::registry* registry) noexcept {
    obs_ = registry;
  }

  instance_id id() const noexcept { return id_; }
  const instance_type& type() const noexcept { return type_; }
  /// Interned id of type().name, resolved once at construction so routing
  /// and fleet reshaping never compare type names per request.
  instance_type_id type_id() const noexcept { return type_id_; }
  std::size_t active_jobs() const noexcept { return heap_.size(); }

  std::uint64_t completed() const noexcept { return completed_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  /// In-server response-time statistics over all completed requests.
  const util::running_stats& service_stats() const noexcept { return stats_; }
  /// Mean number of busy cores since launch (time-averaged).
  double mean_utilization() const noexcept;
  /// Remaining CPU-credit balance in core-ms (meaningful when the credit
  /// model is enabled).
  double credit_balance() const noexcept { return credits_; }
  /// True while the credit model has the instance throttled to baseline.
  bool throttled() const noexcept;

 private:
  /// Slab entry for one in-flight (or free) job.  Free entries chain
  /// through `next_free`; steady-state submissions reuse storage instead
  /// of allocating.  Remaining work is not stored — it is implied by the
  /// job's finish-V heap entry relative to the clock.
  struct job {
    util::time_ms submitted_at = 0.0;
    completion_fn on_complete;
    std::uint32_t next_free = 0;
  };

  /// Finish-V min-heap entry: 16 bytes, primary key `finish_v`, FIFO
  /// tie-break and slab identity in the packed (sequence << 24 | slot)
  /// key, mirroring the event engine's layout — simultaneous finishers
  /// complete in submission order, exactly like the legacy sweep.
  struct finish_entry {
    double finish_v = 0.0;
    std::uint64_t key = 0;
  };
  static bool finishes_later(const finish_entry& a,
                             const finish_entry& b) noexcept {
    if (a.finish_v != b.finish_v) return a.finish_v > b.finish_v;
    return a.key > b.key;
  }

  /// Per-job progress rate (wu/ms) for `n` active jobs under current state.
  double rate_per_job(std::size_t n) const noexcept;
  /// Cores actually usable right now (credit throttling applied).
  double effective_cores() const noexcept;
  /// Steal fraction under `n`-way contention.
  double steal(std::size_t n) const noexcept;
  /// Advances the virtual-work clock and accrues credits/utilization from
  /// `last_update_` to now.  O(1): no per-job state is touched.
  void advance();
  /// Wall delay until the next state change (heap-top completion, or
  /// credit exhaustion if that comes first).  Requires a non-empty heap.
  double next_wake_delay() const noexcept;
  /// Ensures the single pending event fires no later than `delay` from
  /// now, moving it earlier in place when necessary (never later: a
  /// too-early event is harmless, it re-arms exactly).
  void arm_no_later_than(double delay);
  void on_completion_event();

  sim::simulation& sim_;
  instance_id id_;
  instance_type type_;
  instance_type_id type_id_;
  util::rng rng_;
  options opts_;

  std::vector<job> jobs_;              ///< slab; entries recycled via free list
  std::vector<finish_entry> heap_;     ///< active jobs, keyed by finish-V
  std::vector<std::uint32_t> finished_scratch_;  ///< reused per completion
  std::uint32_t free_head_ = kNoFreeJob;
  static constexpr std::uint32_t kNoFreeJob = 0xffffffffu;
  std::uint64_t next_sequence_ = 1;
  /// Virtual work completed per active job this busy period (wu); resets
  /// to zero whenever the instance idles so precision never degrades over
  /// a long simulation.
  double vclock_ = 0.0;
  sim::event_handle pending_completion_{};
  util::time_ms armed_at_ = 0.0;  ///< wall time pending_completion_ fires
  drain_observer_fn drain_observer_ = nullptr;
  void* drain_observer_ctx_ = nullptr;
  obs::registry* obs_ = nullptr;
  util::time_ms last_update_ = 0.0;
  util::time_ms launched_at_ = 0.0;
  util::time_ms ready_at_ = 0.0;  ///< first-accept time (cold start)
  double busy_core_ms_ = 0.0;
  double credits_ = 0.0;
  bool draining_ = false;

  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  util::running_stats stats_;
};

}  // namespace mca::cloud
