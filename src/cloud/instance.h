// A simulated cloud server executing offloaded tasks.
//
// Service model: egalitarian processor sharing.  With `n` active requests
// on `c` cores each request progresses at
//
//     speed_factor * (1 - steal(n)) * min(1, c/n)   work units per ms,
//
// which yields exactly the behaviour the paper characterizes in §VI-A: flat
// response time until concurrency exceeds the core count, then linear
// degradation whose slope flattens as the type gets wider/faster (Fig. 4).
// Each request additionally pays the dalvikvm spawn overhead and a
// lognormal multi-tenancy jitter on its total work.  Admission is capped at
// `instance_type::max_concurrent()`; beyond it requests are dropped, which
// produces the success/fail split of Fig. 8c.
//
// An optional t2 CPU-credit model (off by default, matching the paper's
// cool-down methodology) throttles the instance to its baseline share when
// the credit balance empties; `bench/ablation_credits` exercises it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cloud/instance_type.h"
#include "sim/simulation.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/stats.h"

namespace mca::cloud {

/// One provisioned server inside the discrete-event simulation.
class instance {
 public:
  struct options {
    /// Enables the t2 CPU-credit throttling model.
    bool enable_cpu_credits = false;
    /// Initial credit balance in core-milliseconds (30 credit-minutes of a
    /// full core by default, roughly EC2's launch allotment).
    double initial_credits_core_ms = 30.0 * 60'000.0;
  };

  /// Invoked when a request finishes; `service_time` is the in-server time
  /// (spawn + compute under sharing), excluding network.
  using completion_fn = std::function<void(util::time_ms service_time)>;

  instance(sim::simulation& sim, instance_id id, const instance_type& type,
           util::rng rng, options opts);
  instance(sim::simulation& sim, instance_id id, const instance_type& type,
           util::rng rng)
      : instance{sim, id, type, rng, options{}} {}

  instance(const instance&) = delete;
  instance& operator=(const instance&) = delete;
  ~instance();

  /// Submits `work_units` of compute.  Returns false when the admission cap
  /// is hit or the instance is draining (the callback is then never run).
  bool submit(double work_units, completion_fn on_complete);

  /// Stops accepting new work; running requests finish normally.  Fires
  /// the drain observer on the first call, so an owning pool's sweep
  /// accounting stays exact even when drain() is invoked directly (e.g.
  /// through mutable_instances_in).
  void drain() noexcept {
    if (!draining_) {
      draining_ = true;
      if (drain_observer_ != nullptr) drain_observer_(drain_observer_ctx_);
    }
  }
  /// Observer invoked once, at the accepting->draining transition.
  using drain_observer_fn = void (*)(void*) noexcept;
  void set_drain_observer(drain_observer_fn fn, void* ctx) noexcept {
    drain_observer_ = fn;
    drain_observer_ctx_ = ctx;
  }
  bool draining() const noexcept { return draining_; }
  bool idle() const noexcept { return active_.empty(); }

  instance_id id() const noexcept { return id_; }
  const instance_type& type() const noexcept { return type_; }
  /// Interned id of type().name, resolved once at construction so routing
  /// and fleet reshaping never compare type names per request.
  instance_type_id type_id() const noexcept { return type_id_; }
  std::size_t active_jobs() const noexcept { return active_.size(); }

  std::uint64_t completed() const noexcept { return completed_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  /// In-server response-time statistics over all completed requests.
  const util::running_stats& service_stats() const noexcept { return stats_; }
  /// Mean number of busy cores since launch (time-averaged).
  double mean_utilization() const noexcept;
  /// Remaining CPU-credit balance in core-ms (meaningful when the credit
  /// model is enabled).
  double credit_balance() const noexcept { return credits_; }
  /// True while the credit model has the instance throttled to baseline.
  bool throttled() const noexcept;

 private:
  /// Slab entry for one in-flight (or free) job.  Free entries chain
  /// through `next_free`; the slab plus the `active_` index list replace
  /// the former per-job hash-map nodes, so steady-state submissions reuse
  /// storage instead of allocating.
  struct job {
    double remaining_wu = 0.0;
    util::time_ms submitted_at = 0.0;
    completion_fn on_complete;
    std::uint32_t next_free = 0;
  };

  /// Per-job progress rate (wu/ms) for `n` active jobs under current state.
  double rate_per_job(std::size_t n) const noexcept;
  /// Cores actually usable right now (credit throttling applied).
  double effective_cores() const noexcept;
  /// Steal fraction under `n`-way contention.
  double steal(std::size_t n) const noexcept;
  /// Accrues progress/credits/utilization from `last_update_` to now.
  void advance();
  /// (Re)schedules the completion event for the closest-to-done job.
  void reschedule();
  void on_completion_event();

  sim::simulation& sim_;
  instance_id id_;
  instance_type type_;
  instance_type_id type_id_;
  util::rng rng_;
  options opts_;

  std::vector<job> jobs_;            ///< slab; entries recycled via free list
  std::vector<std::uint32_t> active_;  ///< live slab indices, insertion order
  std::vector<std::uint32_t> finished_scratch_;  ///< reused per completion
  std::uint32_t free_head_ = kNoFreeJob;
  static constexpr std::uint32_t kNoFreeJob = 0xffffffffu;
  sim::event_handle pending_completion_{};
  drain_observer_fn drain_observer_ = nullptr;
  void* drain_observer_ctx_ = nullptr;
  util::time_ms last_update_ = 0.0;
  util::time_ms launched_at_ = 0.0;
  double busy_core_ms_ = 0.0;
  double credits_ = 0.0;
  bool draining_ = false;

  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
  util::running_stats stats_;
};

}  // namespace mca::cloud
