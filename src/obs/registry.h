// Deterministic observability registry: preregistered counters, gauges,
// value series, and per-group SLO latency histograms.
//
// Everything a component can record is enumerated here at compile time and
// stored in plain arrays sized at setup — recording is an array increment
// behind one pointer check (components hold an `obs::registry*` that is
// nullptr when observability is off and never changes after construction,
// so the disabled path costs a branch on a constant).  No locks, no
// allocation after setup: each single-threaded simulation (a fleet shard,
// a monolithic run) owns its own registry, and owners fold them with
// merge() in shard-index order, exactly like the metric digests — so the
// merged totals, and the fingerprint over them, are bit-identical whatever
// the pool size or shard→thread mapping.
//
// Counters fed by the work-stealing pool itself (steals, idle waits) are
// inherently scheduling-dependent; they merge and report normally but are
// excluded from fingerprint() so the determinism gate stays meaningful.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/histogram.h"
#include "util/ids.h"

namespace mca::obs {

/// Every monotonic counter in the system.  Grouped by subsystem; the name
/// table in registry.cpp mirrors this order.
enum class counter : std::uint32_t {
  // --- SDN front-end request pipeline ---
  sdn_requests,       ///< requests entering sdn_accelerator::submit
  sdn_successes,      ///< responses delivered with success
  sdn_failures,       ///< responses delivered as failure notices
  sdn_sampled_spans,  ///< 1-in-N requests traced end to end
  // --- processor-sharing backend (cloud::instance) ---
  ps_submits,            ///< jobs accepted into an instance
  ps_drops,              ///< jobs rejected (admission cap / draining)
  ps_completions,        ///< jobs finished
  ps_completion_events,  ///< completion events fired (batches)
  ps_spurious_wakes,     ///< events that found nothing due and re-armed
  ps_vclock_resets,      ///< virtual-clock resets at idle (busy periods)
  // --- ILP allocation (batched_allocator + monolith slot path) ---
  ilp_solves,            ///< batched/monolith ILP solves started
  ilp_warm_solves,       ///< solves that reused the warm tableau
  ilp_root_builds,       ///< cold root tableau builds
  ilp_rhs_reaims,        ///< constraint rows re-aimed in place
  ilp_bb_nodes,          ///< branch & bound nodes explored
  ilp_root_pivots,       ///< simplex pivots in the persistent root tableau
  ilp_incumbent_seeds,   ///< solves seeded with the previous slot's plan
  ilp_best_effort,       ///< solves that fell back to the best-effort fill
  // --- fleet coordination ---
  fleet_slot_rounds,    ///< bulk-synchronous slot rounds coordinated
  fleet_quota_splits,   ///< fleet plans split into per-shard quotas
  slot_boundaries,      ///< provisioning-slot boundaries observed
  // --- time-resolved telemetry (obs::timeline / obs::exemplar) ---
  timeline_snapshots,   ///< per-slot windows closed into a timeline
  exemplar_admitted,    ///< responses admitted to a tail top-K reservoir
  // --- fault injection & resilience (src/fault + the retry path) ---
  fault_preemptions,      ///< spot preemption events applied
  fault_inflight_killed,  ///< in-flight jobs killed by preemption/drain
  fault_outages,          ///< outage windows opened (group drained)
  fault_recoveries,       ///< outage ends + off-cycle re-allocation solves
  fault_cold_starts,      ///< launches that paid a cold-start delay
  sdn_timeouts,           ///< per-request timeout timers that fired
  sdn_retries,            ///< re-dispatch attempts after backoff
  sdn_local_fallbacks,    ///< requests served on-device after exhaustion
  // --- work-stealing pool (scheduling-dependent: reported, never
  //     fingerprinted) ---
  pool_tasks_executed,
  pool_steals,
  pool_idle_waits,
  count  ///< sentinel
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(counter::count);

/// Stable snake_case name (JSON keys, trace labels).
const char* counter_name(counter c) noexcept;

/// True for counters whose value depends on the shard→thread mapping
/// (pool telemetry).  Excluded from fingerprint().
bool counter_is_scheduling_dependent(counter c) noexcept;

/// True for counters whose value depends on whether a span tracer is
/// attached (1-in-N lifecycle sampling only counts while tracing).  They
/// merge, report, and registry-fingerprint normally — the bench only
/// compares registry fingerprints across untraced legs — but the
/// timeline fingerprint excludes them so traced and untraced legs of the
/// same workload produce bit-identical timelines.
bool counter_is_trace_dependent(counter c) noexcept;

/// Point-in-time values; merge takes the max (gauges describe the run's
/// configuration/high-water marks, not flows).  Never fingerprinted —
/// pool_workers legitimately differs across --jobs legs.
enum class gauge : std::uint32_t {
  pool_workers,
  fleet_shards,
  groups,
  trace_spans_dropped,  ///< ring-buffer overwrites during tracing
  timeline_windows,     ///< retained per-slot windows after the merge
  count
};

inline constexpr std::size_t kGaugeCount =
    static_cast<std::size_t>(gauge::count);

const char* gauge_name(gauge g) noexcept;

/// Distribution-valued observations (queue depths, batch sizes): each
/// series keeps count/sum/max plus a log2-bucketed histogram, all
/// preallocated.
enum class series : std::uint32_t {
  ps_queue_depth,      ///< instance queue depth at submit
  ps_event_batch,      ///< completions drained per event
  ilp_nodes_per_solve, ///< branch & bound nodes per ILP solve
  count
};

inline constexpr std::size_t kSeriesCount =
    static_cast<std::size_t>(series::count);

const char* series_name(series s) noexcept;

struct series_stats {
  std::uint64_t samples = 0;
  double sum = 0.0;
  double max = 0.0;
  util::log_histogram histo{32};

  double mean() const noexcept {
    return samples == 0 ? 0.0 : sum / static_cast<double>(samples);
  }
};

/// The SLO latency-histogram layout: 250 ms bins to one minute, matching
/// core::default_latency_histogram so SLO rows and digest latencies are
/// directly comparable (obs cannot include core).
util::histogram slo_histogram_layout();

class registry {
 public:
  registry() = default;
  explicit registry(std::size_t group_count) { resize_groups(group_count); }

  /// (Re)allocates the per-group SLO histograms; setup-time only.  Growing
  /// keeps existing samples, shrinking is ignored.
  void resize_groups(std::size_t group_count);
  std::size_t group_count() const noexcept { return slo_.size(); }

  // Recording sites: called from inside every other hot-path region
  // (request pipeline, PS event math, shard advance), so they are one
  // themselves — a null check plus an array increment, nothing else.
  // mca:hot-path-begin(obs-recording)
  void add(counter c, std::uint64_t n = 1) noexcept {
    counters_[static_cast<std::size_t>(c)] += n;
  }
  std::uint64_t get(counter c) const noexcept {
    return counters_[static_cast<std::size_t>(c)];
  }

  void set_gauge(gauge g, std::uint64_t v) noexcept {
    gauges_[static_cast<std::size_t>(g)] = v;
  }
  std::uint64_t get_gauge(gauge g) const noexcept {
    return gauges_[static_cast<std::size_t>(g)];
  }

  void observe(series s, double v) noexcept {
    series_stats& st = series_[static_cast<std::size_t>(s)];
    ++st.samples;
    st.sum += v;
    if (v > st.max) st.max = v;
    st.histo.add(v);
  }
  const series_stats& stats(series s) const noexcept {
    return series_[static_cast<std::size_t>(s)];
  }

  /// Feeds one successful response into its group's SLO histogram.
  /// Out-of-range groups are dropped (groups are fixed at setup; the hot
  /// path never grows the vector).
  void observe_response(group_id group, double response_ms) noexcept {
    if (group < slo_.size()) slo_[group].add(response_ms);
  }
  // mca:hot-path-end
  const util::histogram& group_slo(std::size_t group) const {
    return slo_.at(group);
  }
  /// All groups' SLO samples merged (the fleet-wide row).
  util::histogram fleet_slo() const;

  /// Folds `other` in: counters and series add, gauges take the max,
  /// SLO histograms merge bin-wise (growing the group dimension when
  /// `other` has more groups).  Deterministic given a deterministic fold
  /// order — callers merge in shard-index order.
  void merge(const registry& other);

  /// FNV-1a over every deterministic value (counters minus the
  /// scheduling-dependent ones, series, SLO bins).  Bit-identical across
  /// thread counts for deterministic workloads; gauges are excluded.
  std::uint64_t fingerprint() const noexcept;

 private:
  std::array<std::uint64_t, kCounterCount> counters_{};
  std::array<std::uint64_t, kGaugeCount> gauges_{};
  std::array<series_stats, kSeriesCount> series_{};
  std::vector<util::histogram> slo_;  ///< per group, slo_histogram_layout
};

}  // namespace mca::obs
