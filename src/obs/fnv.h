// Shared FNV-1a accumulator for the obs fingerprints (registry, timeline,
// alert report).  Word-at-a-time over little-endian byte order so every
// fingerprint in the layer composes the same way.
#pragma once

#include <cstdint>

namespace mca::obs {

struct fnv_state {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  void word(std::uint64_t w) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash ^= (w >> (i * 8)) & 0xffu;
      hash *= 0x100000001b3ULL;
    }
  }
  void real(double d) noexcept {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    word(bits);
  }
};

}  // namespace mca::obs
