#include "obs/alerts.h"

#include <algorithm>

#include "obs/fnv.h"
#include "util/histogram.h"

namespace mca::obs {
namespace {

constexpr const char* kAlertKindNames[kAlertKindCount] = {
    "latency_p99",
    "error_rate",
};

/// The objective's value over timeline windows [first, last]: windowed
/// p99 from the merged in-scope SLO bins, or the windowed failure
/// fraction.  Empty scopes evaluate to 0 (healthy).
double windowed_value(const timeline& tl, const slo_objective& obj,
                      std::size_t first, std::size_t last) {
  if (obj.kind == alert_kind::error_rate) {
    std::uint64_t requests = 0;
    std::uint64_t failures = 0;
    for (std::size_t i = first; i <= last; ++i) {
      const timeline_window& w = tl.window(i);
      requests += w.delta(counter::sdn_requests);
      failures += w.delta(counter::sdn_failures);
    }
    return requests == 0
               ? 0.0
               : static_cast<double>(failures) / static_cast<double>(requests);
  }
  util::histogram merged = slo_histogram_layout();
  for (std::size_t i = first; i <= last; ++i) {
    const timeline_window& w = tl.window(i);
    if (obj.group == kAllGroups) {
      for (const util::histogram& h : w.slo) merged.merge(h);
    } else if (obj.group < w.slo.size()) {
      merged.merge(w.slo[obj.group]);
    }
  }
  return merged.total() == 0 ? 0.0 : merged.quantile_interpolated(0.99);
}

double effective_threshold(const slo_objective& obj) noexcept {
  return obj.kind == alert_kind::error_rate ? obj.threshold * obj.burn_rate
                                            : obj.threshold;
}

}  // namespace

const char* alert_kind_name(alert_kind k) noexcept {
  return kAlertKindNames[static_cast<std::size_t>(k)];
}

std::uint64_t alert_report::fingerprint() const noexcept {
  fnv_state fnv;
  fnv.word(static_cast<std::uint64_t>(events.size()));
  for (const alert_event& e : events) {
    fnv.word(static_cast<std::uint64_t>(e.objective));
    fnv.word(e.slot);
    fnv.word(e.fired ? 1 : 0);
  }
  return fnv.hash;
}

alert_report evaluate_alerts(const timeline& tl,
                             const std::vector<slo_objective>& objectives) {
  alert_report report;
  report.objectives = objectives;
  report.active.assign(objectives.size(), false);
  // Walk windows outermost so events come out in (window, objective)
  // order — the order they would fire in simulated time.
  for (std::size_t i = 0; i < tl.size(); ++i) {
    const timeline_window& closing = tl.window(i);
    for (std::size_t o = 0; o < objectives.size(); ++o) {
      const slo_objective& obj = objectives[o];
      const std::size_t short_span = std::max<std::size_t>(obj.short_windows, 1);
      const std::size_t long_span = std::max<std::size_t>(obj.long_windows, 1);
      const std::size_t short_first = i + 1 >= short_span ? i + 1 - short_span : 0;
      const std::size_t long_first = i + 1 >= long_span ? i + 1 - long_span : 0;
      const double short_value = windowed_value(tl, obj, short_first, i);
      const double long_value = windowed_value(tl, obj, long_first, i);
      const double threshold = effective_threshold(obj);
      const bool breach = short_value > threshold && long_value > threshold;
      if (breach == report.active[o]) continue;
      alert_event event;
      event.objective = o;
      event.slot = closing.slot;
      event.sim_ms = closing.sim_end_ms;
      event.fired = breach;
      event.short_value = short_value;
      event.long_value = long_value;
      report.events.push_back(event);
      report.active[o] = breach;
      if (breach) {
        ++report.fires;
      } else {
        ++report.clears;
      }
    }
  }
  return report;
}

std::vector<slo_objective> default_fleet_objectives(std::size_t group_count,
                                                    double p99_ceiling_ms,
                                                    double error_budget) {
  std::vector<slo_objective> objectives;
  objectives.reserve(group_count + 2);
  slo_objective fleet_latency;
  fleet_latency.name = "fleet_p99_latency";
  fleet_latency.kind = alert_kind::latency_p99;
  fleet_latency.threshold = p99_ceiling_ms;
  objectives.push_back(fleet_latency);
  slo_objective fleet_errors;
  fleet_errors.name = "fleet_error_budget";
  fleet_errors.kind = alert_kind::error_rate;
  fleet_errors.threshold = error_budget;
  objectives.push_back(fleet_errors);
  for (std::size_t g = 0; g < group_count; ++g) {
    slo_objective per_group;
    per_group.name = "group" + std::to_string(g) + "_p99_latency";
    per_group.kind = alert_kind::latency_p99;
    per_group.group = static_cast<std::uint32_t>(g);
    per_group.threshold = p99_ceiling_ms;
    objectives.push_back(per_group);
  }
  return objectives;
}

std::vector<span_record> alert_spans(const alert_report& report,
                                     const timeline& tl) {
  std::vector<span_record> spans;
  const double horizon_ms =
      tl.size() == 0 ? 0.0 : tl.window(tl.size() - 1).sim_end_ms;
  // Pair each fire with the matching clear (events are time-ordered, so
  // the next edge for the same objective is always the clear).
  std::vector<double> fire_at(report.objectives.size(), -1.0);
  std::vector<std::uint64_t> fire_slot(report.objectives.size(), 0);
  for (const alert_event& e : report.events) {
    if (e.fired) {
      fire_at[e.objective] = e.sim_ms;
      fire_slot[e.objective] = e.slot;
      continue;
    }
    span_record span;
    span.sim_start_ms = fire_at[e.objective];
    span.sim_dur_ms = e.sim_ms - fire_at[e.objective];
    span.arg_a = e.objective;
    span.arg_b = fire_slot[e.objective];
    span.kind = span_kind::slo_alert;
    spans.push_back(span);
    fire_at[e.objective] = -1.0;
  }
  for (std::size_t o = 0; o < fire_at.size(); ++o) {
    if (fire_at[o] < 0.0) continue;
    span_record span;
    span.sim_start_ms = fire_at[o];
    span.sim_dur_ms = horizon_ms > fire_at[o] ? horizon_ms - fire_at[o] : 0.0;
    span.arg_a = o;
    span.arg_b = fire_slot[o];
    span.kind = span_kind::slo_alert;
    spans.push_back(span);
  }
  return spans;
}

}  // namespace mca::obs
