#include "obs/registry.h"

#include "obs/fnv.h"

namespace mca::obs {
namespace {

constexpr const char* kCounterNames[kCounterCount] = {
    "sdn_requests",
    "sdn_successes",
    "sdn_failures",
    "sdn_sampled_spans",
    "ps_submits",
    "ps_drops",
    "ps_completions",
    "ps_completion_events",
    "ps_spurious_wakes",
    "ps_vclock_resets",
    "ilp_solves",
    "ilp_warm_solves",
    "ilp_root_builds",
    "ilp_rhs_reaims",
    "ilp_bb_nodes",
    "ilp_root_pivots",
    "ilp_incumbent_seeds",
    "ilp_best_effort",
    "fleet_slot_rounds",
    "fleet_quota_splits",
    "slot_boundaries",
    "timeline_snapshots",
    "exemplar_admitted",
    "fault_preemptions",
    "fault_inflight_killed",
    "fault_outages",
    "fault_recoveries",
    "fault_cold_starts",
    "sdn_timeouts",
    "sdn_retries",
    "sdn_local_fallbacks",
    "pool_tasks_executed",
    "pool_steals",
    "pool_idle_waits",
};

constexpr const char* kGaugeNames[kGaugeCount] = {
    "pool_workers",
    "fleet_shards",
    "groups",
    "trace_spans_dropped",
    "timeline_windows",
};

constexpr const char* kSeriesNames[kSeriesCount] = {
    "ps_queue_depth",
    "ps_event_batch",
    "ilp_nodes_per_solve",
};

}  // namespace

const char* counter_name(counter c) noexcept {
  return kCounterNames[static_cast<std::size_t>(c)];
}

bool counter_is_scheduling_dependent(counter c) noexcept {
  switch (c) {
    case counter::pool_tasks_executed:
    case counter::pool_steals:
    case counter::pool_idle_waits:
      return true;
    default:
      return false;
  }
}

bool counter_is_trace_dependent(counter c) noexcept {
  return c == counter::sdn_sampled_spans;
}

const char* gauge_name(gauge g) noexcept {
  return kGaugeNames[static_cast<std::size_t>(g)];
}

const char* series_name(series s) noexcept {
  return kSeriesNames[static_cast<std::size_t>(s)];
}

util::histogram slo_histogram_layout() {
  return util::histogram{0.0, 60'000.0, 240};
}

void registry::resize_groups(std::size_t group_count) {
  while (slo_.size() < group_count) slo_.push_back(slo_histogram_layout());
}

util::histogram registry::fleet_slo() const {
  util::histogram fleet = slo_histogram_layout();
  for (const auto& group : slo_) fleet.merge(group);
  return fleet;
}

void registry::merge(const registry& other) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    counters_[i] += other.counters_[i];
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    if (other.gauges_[i] > gauges_[i]) gauges_[i] = other.gauges_[i];
  }
  for (std::size_t i = 0; i < kSeriesCount; ++i) {
    series_stats& mine = series_[i];
    const series_stats& theirs = other.series_[i];
    mine.samples += theirs.samples;
    mine.sum += theirs.sum;
    if (theirs.max > mine.max) mine.max = theirs.max;
    mine.histo.merge(theirs.histo);
  }
  resize_groups(other.slo_.size());
  for (std::size_t g = 0; g < other.slo_.size(); ++g) {
    slo_[g].merge(other.slo_[g]);
  }
}

std::uint64_t registry::fingerprint() const noexcept {
  fnv_state fnv;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (counter_is_scheduling_dependent(static_cast<counter>(i))) continue;
    fnv.word(counters_[i]);
  }
  for (const series_stats& st : series_) {
    fnv.word(st.samples);
    fnv.real(st.sum);
    fnv.real(st.max);
    for (std::size_t b = 0; b < st.histo.bucket_count(); ++b) {
      fnv.word(st.histo.count_in_bucket(b));
    }
  }
  fnv.word(slo_.size());
  for (const util::histogram& h : slo_) {
    fnv.word(h.total());
    for (std::size_t b = 0; b < h.bin_count(); ++b) {
      fnv.word(h.count_in_bin(b));
    }
  }
  return fnv.hash;
}

}  // namespace mca::obs
