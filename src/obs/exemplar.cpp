#include "obs/exemplar.h"

#include <algorithm>
#include <utility>

namespace mca::obs {

void exemplar_reservoir::reset(std::size_t top_k,
                               std::size_t window_capacity) {
  top_k_ = top_k;
  heap_size_ = 0;
  heap_.assign(top_k, exemplar_record{});
  records_.clear();
  records_.reserve(top_k * window_capacity);
  observed_ = 0;
  admitted_ = 0;
}

// mca:hot-path-begin(obs-exemplar)
bool exemplar_reservoir::observe(const exemplar_record& r) noexcept {
  ++observed_;
  if (top_k_ == 0) return false;
  if (heap_size_ < top_k_) {
    // Sift up: the heap keeps its least-slow kept record at the root, so
    // a parent must never outrank (be slower than) its child.
    std::size_t i = heap_size_;
    heap_[i] = r;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!exemplar_before(heap_[parent], heap_[i])) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
    ++heap_size_;
    ++admitted_;
    return true;
  }
  if (!exemplar_before(r, heap_[0])) return false;
  // Displace the least-slow kept record and sift down.
  heap_[0] = r;
  std::size_t i = 0;
  for (;;) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t least = i;
    if (left < heap_size_ && exemplar_before(heap_[least], heap_[left])) {
      least = left;
    }
    if (right < heap_size_ && exemplar_before(heap_[least], heap_[right])) {
      least = right;
    }
    if (least == i) break;
    std::swap(heap_[i], heap_[least]);
    i = least;
  }
  ++admitted_;
  return true;
}
// mca:hot-path-end

void exemplar_reservoir::roll_window(std::uint32_t slot) {
  if (heap_size_ == 0) return;
  std::sort(heap_.begin(),
            heap_.begin() + static_cast<std::ptrdiff_t>(heap_size_),
            exemplar_before);
  for (std::size_t i = 0; i < heap_size_; ++i) {
    heap_[i].slot = slot;
    records_.push_back(heap_[i]);
  }
  heap_size_ = 0;
}

std::vector<exemplar_record> top_exemplars_per_window(
    std::vector<exemplar_record> all, std::size_t top_k) {
  std::stable_sort(all.begin(), all.end(),
                   [](const exemplar_record& a, const exemplar_record& b) {
                     if (a.slot != b.slot) return a.slot < b.slot;
                     return exemplar_before(a, b);
                   });
  std::vector<exemplar_record> kept;
  kept.reserve(all.size());
  std::size_t in_window = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i > 0 && all[i].slot != all[i - 1].slot) in_window = 0;
    if (in_window < top_k) {
      kept.push_back(all[i]);
      ++in_window;
    }
  }
  return kept;
}

std::vector<span_record> exemplar_spans(
    const std::vector<exemplar_record>& records) {
  std::vector<span_record> spans;
  spans.reserve(records.size());
  for (const exemplar_record& r : records) {
    span_record span;
    span.sim_start_ms = r.issued_at_ms;
    span.sim_dur_ms = r.response_ms;
    span.arg_a = r.user;
    span.arg_b = r.request;
    span.kind = span_kind::request_exemplar;
    spans.push_back(span);
  }
  return spans;
}

}  // namespace mca::obs
