// Time-resolved telemetry: a preallocated ring of per-provisioning-slot
// windows over an obs::registry.
//
// The registry reports end-of-run totals; the timeline adds the time
// dimension by snapshotting the registry at every slot boundary and
// storing the *delta* since the previous snapshot — counter increments,
// gauge point samples, and per-group SLO latency histogram bins that
// landed inside the window.  Recording follows the registry's
// discipline: every buffer is sized once at setup (reset()), snapshot()
// is allocation-free and runs at slot rate, each single-threaded
// simulation owns its own timeline, and owners fold them with merge()
// in shard-index order — so the merged timeline, and the fingerprint
// over it, is bit-identical whatever the pool size.
//
// The fingerprint excludes gauges (pool_workers legitimately differs
// across --jobs legs), scheduling-dependent counters (pool telemetry),
// and trace-dependent counters (sdn_sampled_spans only counts while a
// tracer is attached) — so it is also bit-identical between traced and
// untraced legs of the same workload.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/registry.h"
#include "util/histogram.h"

namespace mca::obs {

/// One closed window: everything recorded between two consecutive
/// snapshots.  `slot` is the provisioning-slot index the window covers
/// (the run's drain tail gets index == slot count); `sim_end_ms` is the
/// simulated time the window closed.
struct timeline_window {
  std::uint64_t slot = 0;
  double sim_end_ms = 0.0;
  std::array<std::uint64_t, kCounterCount> counters{};  ///< in-window deltas
  std::array<std::uint64_t, kGaugeCount> gauges{};      ///< samples at close
  std::vector<util::histogram> slo;  ///< per-group in-window latency bins

  std::uint64_t delta(counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  std::uint64_t sample(gauge g) const noexcept {
    return gauges[static_cast<std::size_t>(g)];
  }
  /// All groups' in-window SLO samples merged (the fleet-wide row).
  util::histogram merged_slo() const;
};

class timeline {
 public:
  timeline() = default;
  timeline(std::size_t window_capacity, std::size_t group_count) {
    reset(window_capacity, group_count);
  }

  /// (Re)allocates `window_capacity` windows, each with `group_count`
  /// SLO histograms, and clears the delta baseline.  Setup-time only; a
  /// capacity of zero disables the timeline (snapshot() becomes a no-op).
  void reset(std::size_t window_capacity, std::size_t group_count);

  bool enabled() const noexcept { return !windows_.empty(); }
  std::size_t capacity() const noexcept { return windows_.size(); }
  std::size_t group_count() const noexcept { return groups_; }

  /// Closes the window that ends at `sim_end_ms`: stores the counter and
  /// SLO deltas since the previous snapshot plus point-in-time gauge
  /// samples.  Oldest windows are overwritten once the ring wraps.
  /// Allocation-free after reset(); called at slot boundaries only.
  void snapshot(const registry& reg, std::uint64_t slot, double sim_end_ms);

  /// Windows closed / retained / overwritten.
  std::uint64_t pushed() const noexcept { return pushed_; }
  std::size_t size() const noexcept;
  std::uint64_t dropped() const noexcept;
  /// i-th retained window, oldest first.
  const timeline_window& window(std::size_t i) const;

  /// Folds `other` in, aligning windows on their slot index: counters
  /// and SLO bins add, gauges take the max, `sim_end_ms` takes the max
  /// (shards close slot k at the same boundary; the drain window closes
  /// at the last shard event).  Windows `other` has and this timeline
  /// lacks are inserted in slot order.  Post-run only — a merged
  /// timeline holds exactly its windows and must not snapshot() again.
  /// Deterministic given a deterministic fold order: callers merge in
  /// shard-index order, coordinator last.
  void merge(const timeline& other);

  /// FNV-1a over every deterministic per-window value: slot ids, close
  /// times, counter deltas minus the scheduling- and trace-dependent
  /// ones, and SLO bins.  Gauges are excluded.
  std::uint64_t fingerprint() const noexcept;

 private:
  std::vector<timeline_window> windows_;  ///< ring while recording
  std::uint64_t pushed_ = 0;
  std::size_t groups_ = 0;
  /// Registry state at the previous snapshot (the delta baseline).
  std::array<std::uint64_t, kCounterCount> prev_counters_{};
  std::vector<util::histogram> prev_slo_;
};

}  // namespace mca::obs
