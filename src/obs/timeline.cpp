#include "obs/timeline.h"

#include <algorithm>

#include "obs/fnv.h"

namespace mca::obs {

util::histogram timeline_window::merged_slo() const {
  util::histogram merged = slo_histogram_layout();
  for (const util::histogram& h : slo) merged.merge(h);
  return merged;
}

void timeline::reset(std::size_t window_capacity, std::size_t group_count) {
  groups_ = group_count;
  windows_.clear();
  windows_.reserve(window_capacity);
  for (std::size_t i = 0; i < window_capacity; ++i) {
    timeline_window w;
    w.slo.reserve(group_count);
    for (std::size_t g = 0; g < group_count; ++g) {
      w.slo.push_back(slo_histogram_layout());
    }
    windows_.push_back(std::move(w));
  }
  prev_slo_.clear();
  prev_slo_.reserve(group_count);
  for (std::size_t g = 0; g < group_count; ++g) {
    prev_slo_.push_back(slo_histogram_layout());
  }
  prev_counters_ = {};
  pushed_ = 0;
}

// Slot-rate, but shares the hot-path discipline of the registry it reads:
// plain array arithmetic over preallocated storage, nothing else.
// mca:hot-path-begin(obs-timeline-snapshot)
void timeline::snapshot(const registry& reg, std::uint64_t slot,
                        double sim_end_ms) {
  if (windows_.empty()) return;
  timeline_window& w = windows_[pushed_ % windows_.size()];
  w.slot = slot;
  w.sim_end_ms = sim_end_ms;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const std::uint64_t cur = reg.get(static_cast<counter>(i));
    w.counters[i] = cur - prev_counters_[i];
    prev_counters_[i] = cur;
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    w.gauges[i] = reg.get_gauge(static_cast<gauge>(i));
  }
  const std::size_t groups = std::min(groups_, reg.group_count());
  for (std::size_t g = 0; g < groups; ++g) {
    // delta = cumulative - baseline, then baseline += delta == cumulative:
    // both steps are bin-wise integer math on same-layout histograms.
    w.slo[g].assign_difference(reg.group_slo(g), prev_slo_[g]);
    prev_slo_[g].merge(w.slo[g]);
  }
  ++pushed_;
}
// mca:hot-path-end

std::size_t timeline::size() const noexcept {
  return windows_.empty()
             ? 0
             : static_cast<std::size_t>(std::min<std::uint64_t>(
                   pushed_, static_cast<std::uint64_t>(windows_.size())));
}

std::uint64_t timeline::dropped() const noexcept {
  return pushed_ - static_cast<std::uint64_t>(size());
}

const timeline_window& timeline::window(std::size_t i) const {
  const std::size_t retained = size();
  // Oldest-first: once the ring wraps, the oldest retained window sits at
  // pushed_ % capacity.
  const std::size_t base =
      pushed_ > retained ? static_cast<std::size_t>(pushed_ % windows_.size())
                         : 0;
  return windows_.at((base + i) % windows_.size());
}

void timeline::merge(const timeline& other) {
  // Collapse both ring representations into one slot-ordered store.  This
  // grows (post-run allocation is fine); the result indexes linearly, so
  // window(i) keeps working with pushed_ == size().
  std::vector<timeline_window> merged;
  merged.reserve(size() + other.size());
  for (std::size_t i = 0; i < size(); ++i) merged.push_back(window(i));
  for (std::size_t i = 0; i < other.size(); ++i) {
    const timeline_window& theirs = other.window(i);
    auto pos = std::lower_bound(
        merged.begin(), merged.end(), theirs.slot,
        [](const timeline_window& w, std::uint64_t slot) {
          return w.slot < slot;
        });
    if (pos == merged.end() || pos->slot != theirs.slot) {
      merged.insert(pos, theirs);
      continue;
    }
    timeline_window& mine = *pos;
    if (theirs.sim_end_ms > mine.sim_end_ms) mine.sim_end_ms = theirs.sim_end_ms;
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      mine.counters[c] += theirs.counters[c];
    }
    for (std::size_t g = 0; g < kGaugeCount; ++g) {
      if (theirs.gauges[g] > mine.gauges[g]) mine.gauges[g] = theirs.gauges[g];
    }
    while (mine.slo.size() < theirs.slo.size()) {
      mine.slo.push_back(slo_histogram_layout());
    }
    for (std::size_t g = 0; g < theirs.slo.size(); ++g) {
      mine.slo[g].merge(theirs.slo[g]);
    }
  }
  windows_ = std::move(merged);
  pushed_ = static_cast<std::uint64_t>(windows_.size());
  groups_ = std::max(groups_, other.groups_);
}

std::uint64_t timeline::fingerprint() const noexcept {
  fnv_state fnv;
  fnv.word(static_cast<std::uint64_t>(size()));
  for (std::size_t i = 0; i < size(); ++i) {
    const timeline_window& w = window(i);
    fnv.word(w.slot);
    fnv.real(w.sim_end_ms);
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      const auto which = static_cast<counter>(c);
      if (counter_is_scheduling_dependent(which)) continue;
      if (counter_is_trace_dependent(which)) continue;
      fnv.word(w.counters[c]);
    }
    fnv.word(static_cast<std::uint64_t>(w.slo.size()));
    for (const util::histogram& h : w.slo) {
      fnv.word(h.total());
      for (std::size_t b = 0; b < h.bin_count(); ++b) {
        fnv.word(h.count_in_bin(b));
      }
    }
  }
  return fnv.hash;
}

}  // namespace mca::obs
