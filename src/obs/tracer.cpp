#include "obs/tracer.h"

#include <stdexcept>

namespace mca::obs {

namespace {

/// The two trace processes: every span lands on the wall timeline; spans
/// with a simulated extent land on the sim timeline too.
constexpr int kWallPid = 1;
constexpr int kSimPid = 2;

void write_metadata(std::FILE* out, int pid, const char* process_name,
                    std::size_t rings,
                    const std::vector<std::string>& ring_names, bool* first) {
  std::fprintf(out,
               "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
               "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
               *first ? "" : ",\n", pid, process_name);
  *first = false;
  for (std::size_t r = 0; r < rings; ++r) {
    if (r < ring_names.size()) {
      std::fprintf(out,
                   ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                   "\"tid\":%zu,\"args\":{\"name\":\"%s\"}}",
                   pid, r, ring_names[r].c_str());
    }
  }
}

}  // namespace

const char* span_name(span_kind k) noexcept {
  switch (k) {
    case span_kind::slot_round:
      return "slot_round";
    case span_kind::shard_advance:
      return "shard_advance";
    case span_kind::coordinator_solve:
      return "coordinator_solve";
    case span_kind::quota_split:
      return "quota_split";
    case span_kind::request_lifecycle:
      return "request_lifecycle";
    case span_kind::pool_idle:
      return "pool_idle";
    case span_kind::request_exemplar:
      return "request_exemplar";
    case span_kind::slo_alert:
      return "slo_alert";
    case span_kind::fault_window:
      return "fault_window";
  }
  return "span";
}

bool trace_filter_keeps(const trace_filter& filter,
                        const span_record& s) noexcept {
  if (s.sim_start_ms >= 0.0) {
    return s.sim_start_ms < filter.sim_end_ms &&
           s.sim_start_ms + s.sim_dur_ms >= filter.sim_begin_ms;
  }
  if (s.kind == span_kind::coordinator_solve ||
      s.kind == span_kind::quota_split) {
    return s.arg_a >= filter.slot_begin && s.arg_a <= filter.slot_end;
  }
  return false;
}

span_ring::span_ring(std::size_t capacity) : slots_(capacity) {
  if (capacity == 0) throw std::invalid_argument{"span_ring: zero capacity"};
}

// mca-lint: allow(det-wallclock) tracer epoch: wall timestamps live only
// in the trace's wall lane and never reach a digest or fingerprint.
tracer::tracer(options opts) : epoch_{std::chrono::steady_clock::now()} {
  if (opts.rings == 0) throw std::invalid_argument{"tracer: zero rings"};
  rings_.reserve(opts.rings);
  for (std::size_t i = 0; i < opts.rings; ++i) {
    rings_.emplace_back(opts.capacity_per_ring);
  }
}

std::uint64_t tracer::total_spans() const noexcept {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring.size();
  return total;
}

std::uint64_t tracer::total_dropped() const noexcept {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring.dropped();
  return total;
}

namespace {

void write_span(std::FILE* out, const span_record& s, std::size_t tid,
                bool wall_lane) {
  const char* name = span_name(s.kind);
  // Lane spans are synthesized post-run without wall timestamps; emitting
  // them on the wall process would pile zero-width events at t=0.
  if (wall_lane || s.sim_start_ms < 0.0) {
    std::fprintf(out,
                 ",\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%zu,"
                 "\"ts\":%.3f,\"dur\":%.3f,"
                 "\"args\":{\"a\":%llu,\"b\":%llu}}",
                 name, kWallPid, tid, s.wall_start_us, s.wall_dur_us,
                 static_cast<unsigned long long>(s.arg_a),
                 static_cast<unsigned long long>(s.arg_b));
  }
  if (s.sim_start_ms >= 0.0) {
    // The sim timeline renders 1 simulated ms as 1 µs, so an 8-hour
    // scenario spans ~29 s of trace time — comfortably navigable.
    std::fprintf(out,
                 ",\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,"
                 "\"tid\":%zu,\"ts\":%.3f,\"dur\":%.3f,"
                 "\"args\":{\"a\":%llu,\"b\":%llu}}",
                 name, kSimPid, tid, s.sim_start_ms, s.sim_dur_ms,
                 static_cast<unsigned long long>(s.arg_a),
                 static_cast<unsigned long long>(s.arg_b));
  }
}

}  // namespace

void tracer::export_chrome_trace(
    std::FILE* out, const std::vector<std::string>& ring_names) const {
  export_chrome_trace(out, ring_names, {}, nullptr);
}

void tracer::export_chrome_trace(std::FILE* out,
                                 const std::vector<std::string>& ring_names,
                                 const std::vector<trace_lane>& lanes,
                                 const trace_filter* filter) const {
  std::fprintf(out, "{\"traceEvents\":[\n");
  bool first = true;
  write_metadata(out, kWallPid, "wall clock", rings_.size(), ring_names,
                 &first);
  write_metadata(out, kSimPid, "simulated time (1ms = 1us)", rings_.size(),
                 ring_names, &first);
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    std::fprintf(out,
                 ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                 "\"tid\":%zu,\"args\":{\"name\":\"%s\"}}",
                 kSimPid, rings_.size() + l, lanes[l].name.c_str());
  }
  for (std::size_t r = 0; r < rings_.size(); ++r) {
    const span_ring& ring = rings_[r];
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const span_record& s = ring.at(i);
      if (filter != nullptr && !trace_filter_keeps(*filter, s)) continue;
      write_span(out, s, r, /*wall_lane=*/true);
    }
  }
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    for (const span_record& s : lanes[l].spans) {
      if (filter != nullptr && !trace_filter_keeps(*filter, s)) continue;
      write_span(out, s, rings_.size() + l, /*wall_lane=*/false);
    }
  }
  std::fprintf(out, "\n]}\n");
}

bool tracer::export_chrome_trace(
    const std::string& path, const std::vector<std::string>& ring_names) const {
  return export_chrome_trace(path, ring_names, {}, nullptr);
}

bool tracer::export_chrome_trace(const std::string& path,
                                 const std::vector<std::string>& ring_names,
                                 const std::vector<trace_lane>& lanes,
                                 const trace_filter* filter) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  export_chrome_trace(out, ring_names, lanes, filter);
  std::fclose(out);
  return true;
}

}  // namespace mca::obs
