// Plain-text fleet health report: the timeline, exemplars, and alert
// events rendered as a table a human can read in a CI artifact listing —
// one row per provisioning-slot window, then the alert event log and the
// objective catalog.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/alerts.h"
#include "obs/exemplar.h"
#include "obs/timeline.h"

namespace mca::obs {

void write_health_report(std::FILE* out, const timeline& tl,
                         const alert_report& alerts,
                         const std::vector<exemplar_record>& exemplars);

/// Same, to a file path.  Returns false when the file cannot be opened.
bool write_health_report(const std::string& path, const timeline& tl,
                         const alert_report& alerts,
                         const std::vector<exemplar_record>& exemplars);

}  // namespace mca::obs
