// SLO percentile reporting: p50/p95/p99/p99.9 response time per group and
// fleet-wide, extracted from util::histogram with within-bin linear
// interpolation (histogram::quantile_interpolated).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "util/histogram.h"

namespace mca::obs {

struct slo_row {
  std::string label;         ///< "fleet" or "group N"
  std::size_t samples = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

struct slo_report {
  /// rows[0] is the fleet-wide row; one row per group follows.
  std::vector<slo_row> rows;
};

/// Percentiles of one histogram (zeros when empty).
slo_row slo_from_histogram(const util::histogram& h, std::string label);

/// The full report off a registry's SLO histograms.
slo_report build_slo_report(const registry& reg);

/// Writes the report as a JSON array of row objects onto `out` (no
/// trailing newline); `indent` spaces prefix each row line.
void write_slo_json(std::FILE* out, const slo_report& report, int indent);

}  // namespace mca::obs
