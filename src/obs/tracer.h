// Span tracing into preallocated per-shard ring buffers, exported as
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
//
// Every span carries both clocks: the wall time the host spent producing
// it (where did the run's real seconds go) and, when meaningful, the
// simulated interval it covers (where did the scenario's virtual hours
// go).  The exporter emits two trace processes — pid 1 is the wall-clock
// timeline, pid 2 the simulated-time timeline (1 simulated ms rendered as
// 1 µs) — with one trace thread per ring, so a fleet run reads as: shard
// lanes showing advance rounds with sampled request lifecycles inside
// them, a coordinator lane with per-slot solve/split spans, and pool
// worker lanes showing idle gaps between rounds.
//
// Concurrency contract: each ring has exactly one writer at a time (ring k
// is written only by whichever pool thread is advancing shard k, and the
// bulk-synchronous barriers order successive rounds; the coordinator ring
// is written by the coordinating thread; each pool worker owns its own
// ring).  Rings are preallocated at tracer construction and never grow: a
// full ring overwrites its oldest span, so a trace is always the newest
// window of activity and recording is allocation-free.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace mca::obs {

enum class span_kind : std::uint8_t {
  slot_round,         ///< one bulk-synchronous fleet round (a=slot)
  shard_advance,      ///< one shard advancing to the boundary (a=slot, b=shard)
  coordinator_solve,  ///< fleet ILP solve (a=slot, b=plan instances)
  quota_split,        ///< largest-remainder quota split (a=slot, b=shards)
  request_lifecycle,  ///< sampled request through the SDN (a=user, b=success)
  pool_idle,          ///< worker idle gap between tasks (a=worker)
  request_exemplar,   ///< tail top-K request lifecycle (a=user, b=request id)
  slo_alert,          ///< SLO alert active interval (a=objective, b=fire slot)
  fault_window,       ///< injected outage interval (a=group, b=fault kind)
};

/// Trace-event name of a kind.
const char* span_name(span_kind k) noexcept;

struct span_record {
  double wall_start_us = 0.0;  ///< relative to the tracer's epoch
  double wall_dur_us = 0.0;
  double sim_start_ms = -1.0;  ///< negative: wall-only span
  double sim_dur_ms = 0.0;
  std::uint64_t arg_a = 0;     ///< kind-specific (see span_kind)
  std::uint64_t arg_b = 0;
  span_kind kind = span_kind::slot_round;
};

/// Fixed-capacity overwrite-oldest span buffer; single writer.
class span_ring {
 public:
  explicit span_ring(std::size_t capacity);

  void push(const span_record& r) noexcept {
    slots_[pushed_ % slots_.size()] = r;
    ++pushed_;
  }
  std::size_t capacity() const noexcept { return slots_.size(); }
  /// Spans currently held: min(pushed, capacity).
  std::size_t size() const noexcept {
    return pushed_ < slots_.size() ? static_cast<std::size_t>(pushed_)
                                   : slots_.size();
  }
  std::uint64_t pushed() const noexcept { return pushed_; }
  /// Spans lost to wraparound (the oldest ones).
  std::uint64_t dropped() const noexcept {
    return pushed_ <= slots_.size() ? 0 : pushed_ - slots_.size();
  }
  /// i-th retained span, oldest first (i < size()).
  const span_record& at(std::size_t i) const noexcept {
    const std::uint64_t first = dropped();
    return slots_[(first + i) % slots_.size()];
  }

 private:
  std::vector<span_record> slots_;
  std::uint64_t pushed_ = 0;
};

/// An extra named trace thread built post-run from records rather than a
/// live ring — the exemplar and alert lanes.  Lane spans are usually
/// sim-stamped; they render on the simulated-time process with one trace
/// thread per lane, after the ring threads.
struct trace_lane {
  std::string name;
  std::vector<span_record> spans;
};

/// Slot-window export filter (`fleet_scale --trace-slots A:B`): spans
/// with a simulated extent are kept when they overlap
/// [sim_begin_ms, sim_end_ms); wall-only spans that carry a slot index
/// (coordinator_solve, quota_split: arg_a) are kept when it falls in
/// [slot_begin, slot_end]; un-slotted wall-only spans (pool_idle) are
/// dropped — an outage window stays inspectable without the
/// multi-hundred-MB full trace.
struct trace_filter {
  std::uint64_t slot_begin = 0;
  std::uint64_t slot_end = 0;
  double sim_begin_ms = 0.0;
  double sim_end_ms = 0.0;
};

/// True when `filter` retains `s` (the rule above).
bool trace_filter_keeps(const trace_filter& filter,
                        const span_record& s) noexcept;

class tracer {
 public:
  struct options {
    std::size_t rings = 1;
    std::size_t capacity_per_ring = 4096;
  };

  explicit tracer(options opts);

  std::size_t ring_count() const noexcept { return rings_.size(); }
  span_ring& ring(std::size_t i) noexcept { return rings_[i]; }
  const span_ring& ring(std::size_t i) const noexcept { return rings_[i]; }

  /// Wall microseconds since tracer construction (span timestamps).
  double now_us() const noexcept {
    // mca-lint: allow(det-wallclock) wall lane of the span trace (pid 1);
    // span timestamps are excluded from every fingerprint by design.
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(now - epoch_).count();
  }

  std::uint64_t total_spans() const noexcept;
  std::uint64_t total_dropped() const noexcept;

  /// Writes the whole trace as Chrome trace-event JSON.  `ring_names`
  /// labels the trace threads (thread_name metadata); rings beyond the
  /// list fall back to "ring N".
  void export_chrome_trace(std::FILE* out,
                           const std::vector<std::string>& ring_names) const;
  /// Same, to a file path.  Returns false when the file cannot be opened.
  bool export_chrome_trace(const std::string& path,
                           const std::vector<std::string>& ring_names) const;

  /// Full export: ring spans plus extra lanes (exemplars, alerts), with
  /// an optional slot-window filter (nullptr exports everything).
  void export_chrome_trace(std::FILE* out,
                           const std::vector<std::string>& ring_names,
                           const std::vector<trace_lane>& lanes,
                           const trace_filter* filter) const;
  bool export_chrome_trace(const std::string& path,
                           const std::vector<std::string>& ring_names,
                           const std::vector<trace_lane>& lanes,
                           const trace_filter* filter) const;

 private:
  std::vector<span_ring> rings_;
  // mca-lint: allow(det-wallclock) wall epoch for the trace's wall lane.
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace mca::obs
