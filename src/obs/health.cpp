#include "obs/health.h"

#include <algorithm>

#include "util/histogram.h"

namespace mca::obs {
namespace {

/// Interpolated quantile, or 0 when the window saw no responses.
double quantile_or_zero(const util::histogram& h, double q) {
  return h.total() == 0 ? 0.0 : h.quantile_interpolated(q);
}

}  // namespace

void write_health_report(std::FILE* out, const timeline& tl,
                         const alert_report& alerts,
                         const std::vector<exemplar_record>& exemplars) {
  std::fprintf(out, "fleet health report\n");
  std::fprintf(out,
               "timeline: %zu windows (one per provisioning slot; the last "
               "covers the drain tail)\n\n",
               tl.size());
  std::fprintf(out, "%6s %12s %10s %10s %8s %10s %10s %12s %7s\n", "slot",
               "end_min", "requests", "success", "failed", "p50_ms", "p99_ms",
               "tail_max_ms", "alerts");
  for (std::size_t i = 0; i < tl.size(); ++i) {
    const timeline_window& w = tl.window(i);
    const util::histogram slo = w.merged_slo();
    double tail_max = 0.0;
    for (const exemplar_record& r : exemplars) {
      if (r.slot == w.slot && r.response_ms > tail_max) {
        tail_max = r.response_ms;
      }
    }
    std::size_t fired = 0;
    std::size_t cleared = 0;
    for (const alert_event& e : alerts.events) {
      if (e.slot != w.slot) continue;
      if (e.fired) {
        ++fired;
      } else {
        ++cleared;
      }
    }
    char marks[16];
    if (fired == 0 && cleared == 0) {
      std::snprintf(marks, sizeof marks, "-");
    } else {
      std::snprintf(marks, sizeof marks, "%zu!/%zuok", fired, cleared);
    }
    std::fprintf(out, "%6llu %12.1f %10llu %10llu %8llu %10.1f %10.1f %12.1f %7s\n",
                 static_cast<unsigned long long>(w.slot),
                 w.sim_end_ms / 60'000.0,
                 static_cast<unsigned long long>(w.delta(counter::sdn_requests)),
                 static_cast<unsigned long long>(w.delta(counter::sdn_successes)),
                 static_cast<unsigned long long>(w.delta(counter::sdn_failures)),
                 quantile_or_zero(slo, 0.50), quantile_or_zero(slo, 0.99),
                 tail_max, marks);
  }

  std::fprintf(out, "\nalert events (%llu fired, %llu cleared):\n",
               static_cast<unsigned long long>(alerts.fires),
               static_cast<unsigned long long>(alerts.clears));
  if (alerts.events.empty()) {
    std::fprintf(out, "  (none)\n");
  }
  for (const alert_event& e : alerts.events) {
    const slo_objective& obj = alerts.objectives[e.objective];
    std::fprintf(out,
                 "  slot %4llu @ %10.1f min  %-5s %-24s short=%.3f long=%.3f "
                 "threshold=%.3f\n",
                 static_cast<unsigned long long>(e.slot), e.sim_ms / 60'000.0,
                 e.fired ? "FIRE" : "CLEAR", obj.name.c_str(), e.short_value,
                 e.long_value, obj.threshold);
  }

  std::fprintf(out, "\nobjectives:\n");
  for (std::size_t o = 0; o < alerts.objectives.size(); ++o) {
    const slo_objective& obj = alerts.objectives[o];
    std::fprintf(out,
                 "  [%zu] %-24s kind=%-12s scope=%s threshold=%.3f "
                 "windows=%zu/%zu burn_rate=%.2f%s\n",
                 o, obj.name.c_str(), alert_kind_name(obj.kind),
                 obj.group == kAllGroups
                     ? "fleet"
                     : ("group" + std::to_string(obj.group)).c_str(),
                 obj.threshold, obj.short_windows, obj.long_windows,
                 obj.burn_rate,
                 alerts.active.size() > o && alerts.active[o]
                     ? "  [ACTIVE AT END]"
                     : "");
  }

  std::fprintf(out, "\ntail exemplars: %zu flushed", exemplars.size());
  if (!exemplars.empty()) {
    const auto slowest = std::max_element(
        exemplars.begin(), exemplars.end(),
        [](const exemplar_record& a, const exemplar_record& b) {
          return exemplar_before(b, a);
        });
    std::fprintf(out,
                 "; slowest overall: request %llu (user %llu, group %llu) "
                 "%.1f ms in slot %llu",
                 static_cast<unsigned long long>(slowest->request),
                 static_cast<unsigned long long>(slowest->user),
                 static_cast<unsigned long long>(slowest->group),
                 slowest->response_ms,
                 static_cast<unsigned long long>(slowest->slot));
  }
  std::fprintf(out, "\n");
}

bool write_health_report(const std::string& path, const timeline& tl,
                         const alert_report& alerts,
                         const std::vector<exemplar_record>& exemplars) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  write_health_report(out, tl, alerts, exemplars);
  std::fclose(out);
  return true;
}

}  // namespace mca::obs
