#include "obs/slo.h"

#include <utility>

namespace mca::obs {

slo_row slo_from_histogram(const util::histogram& h, std::string label) {
  slo_row row;
  row.label = std::move(label);
  row.samples = h.total();
  if (row.samples > 0) {
    row.p50_ms = h.quantile_interpolated(0.50);
    row.p95_ms = h.quantile_interpolated(0.95);
    row.p99_ms = h.quantile_interpolated(0.99);
    row.p999_ms = h.quantile_interpolated(0.999);
  }
  return row;
}

slo_report build_slo_report(const registry& reg) {
  slo_report report;
  report.rows.push_back(slo_from_histogram(reg.fleet_slo(), "fleet"));
  for (std::size_t g = 0; g < reg.group_count(); ++g) {
    report.rows.push_back(slo_from_histogram(
        reg.group_slo(g), "group " + std::to_string(g)));
  }
  return report;
}

void write_slo_json(std::FILE* out, const slo_report& report, int indent) {
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const slo_row& row = report.rows[i];
    std::fprintf(out,
                 "%*s{\"label\": \"%s\", \"samples\": %zu, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"p999_ms\": %.3f}%s\n",
                 indent, "", row.label.c_str(), row.samples, row.p50_ms,
                 row.p95_ms, row.p99_ms, row.p999_ms,
                 i + 1 < report.rows.size() ? "," : "");
  }
  std::fprintf(out, "%*s]", indent > 2 ? indent - 2 : 0, "");
}

}  // namespace mca::obs
