// Tail-based request sampling: a bounded top-K reservoir of the slowest
// request lifecycles per provisioning-slot window.
//
// The tracer's 1-in-N head sampling decides whether to record a request
// when it *arrives*, so at any realistic sampling rate it statistically
// never captures a p99 request.  The reservoir decides at the *response
// sink*, when the latency is known: every delivered response is offered
// to a K-slot min-heap keyed "slower first, ties to the lower request
// id", and at each slot boundary the window's K slowest lifecycles are
// flushed to a preallocated store.  Admission is an O(log K) compare /
// sift over storage sized once at setup — allocation-free and
// deterministic, so per-shard reservoirs merged in shard-index order
// reproduce bit-identically at any pool size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/tracer.h"
#include "util/ids.h"

namespace mca::obs {

/// One tail exemplar: the lifecycle of one of the slowest requests in
/// its window.  `slot` is stamped at flush time by roll_window().
struct exemplar_record {
  double response_ms = 0.0;
  double issued_at_ms = 0.0;  ///< sim time the request was created
  std::uint64_t request = 0;  ///< request id — the deterministic tie-break
  user_id user = 0;
  group_id group = 0;
  std::uint32_t slot = 0;
  bool success = false;
};

/// Strict tail order: `a` ranks ahead of `b` when it is slower, ties
/// resolved toward the lower request id.
inline bool exemplar_before(const exemplar_record& a,
                            const exemplar_record& b) noexcept {
  if (a.response_ms != b.response_ms) return a.response_ms > b.response_ms;
  return a.request < b.request;
}

class exemplar_reservoir {
 public:
  exemplar_reservoir() = default;
  exemplar_reservoir(std::size_t top_k, std::size_t window_capacity) {
    reset(top_k, window_capacity);
  }

  /// (Re)allocates the K-slot heap and reserves the flush store for
  /// `window_capacity` windows.  Setup-time only; top_k == 0 disables
  /// the reservoir (observe() rejects everything).
  void reset(std::size_t top_k, std::size_t window_capacity);

  bool enabled() const noexcept { return top_k_ != 0; }
  std::size_t top_k() const noexcept { return top_k_; }

  // Called per delivered response from inside the SDN request pipeline's
  // hot-path region: a compare against the heap root and at most one
  // O(log K) sift, over preallocated storage.
  // mca:hot-path-begin(obs-exemplar)
  /// Offers a completed lifecycle; returns true when it displaced into
  /// the current window's top-K.
  bool observe(const exemplar_record& r) noexcept;
  // mca:hot-path-end

  /// Closes the current window: sorts its top-K slowest-first, stamps
  /// `slot`, and appends to the flushed store.  Slot-rate.
  void roll_window(std::uint32_t slot);

  std::uint64_t observed() const noexcept { return observed_; }
  std::uint64_t admitted() const noexcept { return admitted_; }
  /// Flushed exemplars in window order, slowest-first within a window.
  const std::vector<exemplar_record>& records() const noexcept {
    return records_;
  }

 private:
  std::size_t top_k_ = 0;
  std::size_t heap_size_ = 0;
  std::vector<exemplar_record> heap_;  ///< min-heap: root = least slow kept
  std::vector<exemplar_record> records_;
  std::uint64_t observed_ = 0;
  std::uint64_t admitted_ = 0;
};

/// Fleet merge: concatenated per-shard records (in shard-index order) cut
/// back to the `top_k` slowest per window under the same tail order —
/// stable, so cross-shard full ties keep shard order and the result is
/// deterministic.  Post-run only.
std::vector<exemplar_record> top_exemplars_per_window(
    std::vector<exemplar_record> all, std::size_t top_k);

/// Chrome-trace lane spans for flushed exemplars: one sim-timeline span
/// per record covering issue → response (a=user, b=request id).
std::vector<span_record> exemplar_spans(
    const std::vector<exemplar_record>& records);

}  // namespace mca::obs
