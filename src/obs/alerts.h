// Deterministic SLO burn-rate alerting over an obs::timeline.
//
// Declarative objectives — a per-group (or fleet-wide) p99 latency
// ceiling, an error-rate budget — are evaluated over two sliding windows
// of the timeline, short and long, in the multiwindow burn-rate style:
// an alert fires only when *both* windows breach (the short window gives
// fast detection, the long window keeps one bad slot from paging), and
// clears as soon as either recovers.  Evaluation is a pure post-run
// function of the timeline: same timeline, same objectives → the same
// fire/clear events, bit for bit, whatever the pool size — so alert slot
// indices can be golden-tested and gated like every other fingerprint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeline.h"
#include "obs/tracer.h"

namespace mca::obs {

enum class alert_kind : std::uint32_t {
  latency_p99,  ///< windowed p99 above the ceiling (threshold in ms)
  error_rate,   ///< windowed failure fraction above budget × burn rate
  count
};

inline constexpr std::size_t kAlertKindCount =
    static_cast<std::size_t>(alert_kind::count);

/// Stable snake_case name (JSON keys, health report rows).
const char* alert_kind_name(alert_kind k) noexcept;

/// Objective scope covering every group's merged SLO histogram.
inline constexpr std::uint32_t kAllGroups = 0xffffffffu;

struct slo_objective {
  std::string name;
  alert_kind kind = alert_kind::latency_p99;
  std::uint32_t group = kAllGroups;  ///< group index, or kAllGroups
  double threshold = 1000.0;  ///< ms ceiling, or error-budget fraction
  std::size_t short_windows = 1;  ///< fast-detection window, in slots
  std::size_t long_windows = 4;   ///< sustained-burn window, in slots
  double burn_rate = 1.0;  ///< budget multiplier (error_rate only)
};

/// One edge of an alert: fired (breach began) or cleared (breach ended),
/// stamped with the closing slot window's simulated time.
struct alert_event {
  std::size_t objective = 0;  ///< index into alert_report::objectives
  std::uint64_t slot = 0;
  double sim_ms = 0.0;
  bool fired = true;  ///< false: cleared
  double short_value = 0.0;
  double long_value = 0.0;
};

struct alert_report {
  std::vector<slo_objective> objectives;
  std::vector<alert_event> events;  ///< in (window, objective) order
  std::vector<bool> active;         ///< per objective, at end of timeline
  std::uint64_t fires = 0;
  std::uint64_t clears = 0;

  /// FNV-1a over (objective, slot, edge) triples — the determinism gate
  /// for alert evaluation.
  std::uint64_t fingerprint() const noexcept;
};

/// Evaluates `objectives` over every retained window of `tl`.  Windows
/// with no samples in scope evaluate as healthy (an idle slot burns no
/// budget).  Pure and deterministic.
alert_report evaluate_alerts(const timeline& tl,
                             const std::vector<slo_objective>& objectives);

/// The stock fleet objectives: a fleet-wide p99 ceiling, a fleet-wide
/// error budget, and one p99 ceiling per group.
std::vector<slo_objective> default_fleet_objectives(std::size_t group_count,
                                                    double p99_ceiling_ms,
                                                    double error_budget);

/// Chrome-trace lane spans: one sim-timeline span per fired alert,
/// covering fire → clear (or → the last window when still active;
/// a=objective index, b=fire slot).
std::vector<span_record> alert_spans(const alert_report& report,
                                     const timeline& tl);

}  // namespace mca::obs
