#include "fleet/coordinator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "exp/bench_clock.h"

namespace mca::fleet {
namespace {

/// Price of one instance of `type_name` in `group` under the shape (the
/// same candidate list the fleet ILP priced the plan with).
double candidate_cost(const core::allocation_request& shape, group_id group,
                      const std::string& type_name) {
  if (group >= shape.candidates_per_group.size()) return 0.0;
  for (const auto& cand : shape.candidates_per_group[group]) {
    if (cand.type_name == type_name) return cand.cost_per_hour;
  }
  return 0.0;
}

}  // namespace

std::vector<std::optional<core::allocation_plan>> split_fleet_plan(
    const core::allocation_plan& fleet_plan,
    std::span<const demand_digest> digests,
    const core::allocation_request& shape, bool min_footprint) {
  const std::size_t shard_count = digests.size();
  std::vector<std::optional<core::allocation_plan>> quotas(shard_count);
  std::vector<std::size_t> predicting;
  for (std::size_t k = 0; k < shard_count; ++k) {
    if (!digests[k].has_prediction) continue;
    predicting.push_back(k);
    quotas[k].emplace();
    quotas[k]->feasible = fleet_plan.feasible;
    quotas[k]->best_effort = fleet_plan.best_effort;
    quotas[k]->status = fleet_plan.status;
  }
  if (predicting.empty()) return quotas;

  std::vector<std::size_t> base(predicting.size());
  std::vector<double> remainder(predicting.size());
  std::vector<std::size_t> order(predicting.size());
  for (const auto& entry : fleet_plan.entries) {
    // Weights: each predicting shard's own demand in this entry's group;
    // an all-zero group (margin capacity) splits equally.
    double total_weight = 0.0;
    for (const std::size_t k : predicting) {
      const auto& demand = digests[k].demand_per_group;
      if (entry.group < demand.size()) total_weight += demand[entry.group];
    }
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < predicting.size(); ++i) {
      const auto& demand = digests[predicting[i]].demand_per_group;
      const double weight =
          entry.group < demand.size() ? demand[entry.group] : 0.0;
      const double exact =
          total_weight > 0.0
              ? static_cast<double>(entry.count) * weight / total_weight
              : static_cast<double>(entry.count) /
                    static_cast<double>(predicting.size());
      base[i] = static_cast<std::size_t>(std::floor(exact));
      remainder[i] = exact - std::floor(exact);
      assigned += base[i];
    }
    // Largest remainder takes the leftover counts, ties toward the lower
    // shard index — sums exactly to the fleet entry, deterministically.
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return remainder[a] > remainder[b];
                     });
    for (std::size_t i = 0; assigned < entry.count; ++i) {
      ++base[order[i % order.size()]];
      ++assigned;
    }
    const double cost = candidate_cost(shape, entry.group, entry.type_name);
    for (std::size_t i = 0; i < predicting.size(); ++i) {
      if (base[i] == 0) continue;
      auto& quota = *quotas[predicting[i]];
      quota.entries.push_back({entry.group, entry.type_name, base[i]});
      quota.total_cost_per_hour += cost * static_cast<double>(base[i]);
    }
  }
  if (min_footprint) {
    // Resilience floor: shards route only within themselves, so a shard
    // the apportionment left with zero instances in a group it still has
    // demand for would push that whole group onto the local-fallback
    // path.  Top such shards up with one instance of the group's
    // cheapest candidate type — appended after the split entries, so the
    // quota stays a deterministic function of (plan, digests, shape).
    for (const std::size_t k : predicting) {
      auto& quota = *quotas[k];
      const auto& demand = digests[k].demand_per_group;
      const std::size_t groups =
          std::min(demand.size(), shape.candidates_per_group.size());
      for (group_id g = 0; g < groups; ++g) {
        if (demand[g] <= 0.0) continue;
        const auto& candidates = shape.candidates_per_group[g];
        if (candidates.empty()) continue;
        bool covered = false;
        for (const auto& e : quota.entries) {
          if (e.group == g && e.count > 0) {
            covered = true;
            break;
          }
        }
        if (covered) continue;
        const core::allocation_candidate* cheapest = &candidates.front();
        for (const auto& cand : candidates) {
          if (cand.cost_per_hour < cheapest->cost_per_hour) cheapest = &cand;
        }
        quota.entries.push_back({g, cheapest->type_name, 1});
        quota.total_cost_per_hour += cheapest->cost_per_hour;
      }
    }
  }
  return quotas;
}

coordinator::coordinator(core::allocation_request shape, ilp::ilp_options opts)
    : shape_{std::move(shape)}, allocator_{shape_, opts} {
  shape_.workload_per_group.assign(shape_.candidates_per_group.size(), 0.0);
  obs_.resize_groups(allocator_.group_count());
  obs_ptr_ = &obs_;
  allocator_.set_observability(obs_ptr_);
}

void coordinator::set_observability(bool counters, obs::tracer* tracer,
                                    std::size_t ring) noexcept {
  obs_ptr_ = counters ? &obs_ : nullptr;
  allocator_.set_observability(obs_ptr_);
  tracer_ = tracer;
  trace_ring_ = ring;
}

std::vector<std::optional<core::allocation_plan>> coordinator::allocate_slot(
    std::span<const demand_digest> digests) {
  coordination_record record;
  record.slot = next_slot_++;
  if (obs_ptr_) obs_ptr_->add(obs::counter::fleet_slot_rounds);
  for (const auto& digest : digests) {
    for (const std::size_t depth : digest.queue_depth_per_group) {
      record.queue_depth += static_cast<double>(depth);
    }
  }

  std::vector<std::optional<core::allocation_plan>> quotas(digests.size());
  const fleet_demand fleet = combine(digests, group_count());
  // Shards without a forecast keep their fleets untouched, so their
  // instances are spoken for: reserve them out of the account cap before
  // solving, or the fleet total could exceed it while predictors warm up.
  for (const auto& digest : digests) {
    if (!digest.has_prediction) record.reserved_instances += digest.instances;
  }
  const bool cap_left =
      record.reserved_instances < shape_.max_total_instances;
  if (fleet.any_prediction() && cap_left) {
    record.solved = true;
    record.fleet_demand = fleet.total();
    core::allocation_plan plan;
    const double solve_t0 = tracer_ ? tracer_->now_us() : 0.0;
    ilp_seconds_ += exp::seconds_of([&] {
      plan = allocator_.solve(
          fleet.demand_per_group,
          shape_.max_total_instances - record.reserved_instances);
    });
    record.fleet_instances = plan.total_instances();
    record.cost_per_hour = plan.total_cost_per_hour;
    if (tracer_) {
      obs::span_record span;
      span.wall_start_us = solve_t0;
      span.wall_dur_us = tracer_->now_us() - solve_t0;
      span.arg_a = record.slot;
      span.arg_b = record.fleet_instances;
      span.kind = obs::span_kind::coordinator_solve;
      tracer_->ring(trace_ring_).push(span);
    }
    solved_demands_.push_back(fleet.demand_per_group);
    last_digests_.assign(digests.begin(), digests.end());
    last_cap_ = shape_.max_total_instances - record.reserved_instances;
    const double split_t0 = tracer_ ? tracer_->now_us() : 0.0;
    quotas = split_fleet_plan(plan, digests, shape_, resilient_split_);
    if (obs_ptr_) obs_ptr_->add(obs::counter::fleet_quota_splits);
    if (tracer_) {
      obs::span_record span;
      span.wall_start_us = split_t0;
      span.wall_dur_us = tracer_->now_us() - split_t0;
      span.arg_a = record.slot;
      span.arg_b = digests.size();
      span.kind = obs::span_kind::quota_split;
      tracer_->ring(trace_ring_).push(span);
    }
  }
  records_.push_back(record);
  if (obs_ptr_ != nullptr && timeline_.enabled()) {
    // Close the coordinator's window for this slot.  The boundary that
    // triggered this round sits at (slot + 1) * slot_length in simulated
    // time; the coordinator itself runs on no simulated clock.
    obs_ptr_->add(obs::counter::timeline_snapshots);
    timeline_.snapshot(*obs_ptr_, record.slot,
                       slot_length_ms_ * static_cast<double>(record.slot + 1));
  }
  return quotas;
}

std::vector<std::optional<core::allocation_plan>> coordinator::reallocate() {
  if (last_digests_.empty()) return {};
  core::allocation_plan plan;
  ilp_seconds_ += exp::seconds_of([&] {
    plan = allocator_.solve(solved_demands_.back(), last_cap_);
  });
  return split_fleet_plan(plan, last_digests_, shape_, resilient_split_);
}

void coordinator::enable_timeline(std::size_t window_capacity,
                                  double slot_length_ms) {
  slot_length_ms_ = slot_length_ms;
  timeline_.reset(window_capacity, group_count());
}

}  // namespace mca::fleet
