// Per-shard demand digests — what crosses the shard/coordinator boundary.
//
// At every provisioning-slot boundary each shard reduces its state to this
// small value type: the predicted per-group load its own predictor derived
// from its sub-population's history (via the shared
// core::demand_from_prediction path), the current queue depth on its
// instances, and its acceptance counters.  The coordinator folds the
// digests of one slot into the fleet-wide demand the batched ILP covers.
// Digests carry no pointers into the shard, so gathering them across the
// thread pool is race-free by construction.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mca::fleet {

/// One shard's state at one provisioning-slot boundary.
struct demand_digest {
  std::size_t shard = 0;
  std::size_t slot = 0;
  /// False until the shard's predictor has enough history to forecast; the
  /// coordinator leaves such shards' fleets untouched.
  bool has_prediction = false;
  /// Predicted load per group (the allocator's W), empty-group-padded to
  /// the scenario's group count.  All zeros when has_prediction is false.
  std::vector<double> demand_per_group;
  /// Requests currently executing on the shard's instances, per group.
  std::vector<std::size_t> queue_depth_per_group;
  /// Accepting instances currently deployed on the shard (all groups).
  /// The coordinator reserves the non-predicting shards' instances out of
  /// the account cap so the fleet total never exceeds it.
  std::size_t instances = 0;
  /// Foreground requests issued / succeeded since the shard started.
  std::size_t requests = 0;
  std::size_t successes = 0;

  /// Successful / issued foreground requests so far, in [0, 1].
  double acceptance() const noexcept;
};

/// The coordinator's fold of one slot's digests: summed demand over the
/// shards that predicted, sized to `group_count`.
struct fleet_demand {
  std::vector<double> demand_per_group;
  std::size_t predicting_shards = 0;
  std::size_t total_shards = 0;

  bool any_prediction() const noexcept { return predicting_shards > 0; }
  double total() const noexcept;
};

/// Folds `digests` (one slot, shard order).  Demands shorter than
/// `group_count` are zero-padded; longer ones are an error in the caller
/// and throw std::invalid_argument.
fleet_demand combine(std::span<const demand_digest> digests,
                     std::size_t group_count);

}  // namespace mca::fleet
