// One fleet shard: a self-contained closed-loop simulation over a slice of
// the population, provisioned from outside.
//
// A shard wraps one core::offloading_system in external_allocation mode:
// the arena event engine underneath stays single-threaded and untouched,
// the shard's devices / moderator / SDN front-end / backend pool are all
// private to it, and the only things that cross its boundary are the
// demand digest it emits at each provisioning-slot boundary and the
// instance quota the coordinator hands back.  A shard is a pure function
// of (scenario spec, shard index, shard count, quota sequence): it draws
// all randomness from rng::split(spec.base_seed, index), so fleet results
// cannot depend on which pool thread happens to advance which shard.
#pragma once

#include <cstddef>
#include <optional>

#include "core/system.h"
#include "exp/scenario.h"
#include "fleet/demand_digest.h"
#include "tasks/task.h"

namespace mca::fleet {

/// The population slice of shard `index` among `shard_count` shards:
/// user_count / shard_count users, the first user_count % shard_count
/// shards carrying one extra.
std::size_t shard_user_count(std::size_t user_count, std::size_t index,
                             std::size_t shard_count);

/// Observability wiring handed to one shard at construction.  Counter
/// totals are deterministic per shard; spans go to `tracer->ring(ring)`
/// (written only by whichever pool thread advances this shard — the
/// bulk-synchronous rounds order the writes).
struct shard_obs {
  bool counters = true;            ///< preregistered counters + SLO digest
  bool timeline = true;            ///< per-slot telemetry windows
  std::size_t exemplar_top_k = 4;  ///< tail reservoir size (0 = off)
  obs::tracer* tracer = nullptr;   ///< not owned; nullptr = no spans
  std::size_t ring = 0;            ///< this shard's span ring
  std::size_t sample_every = 1024; ///< request-lifecycle sampling period
};

class shard {
 public:
  /// Builds shard `index` of `shard_count` over its population slice.
  /// Throws std::invalid_argument on a malformed spec, a zero shard count,
  /// an index out of range, or a slice with zero users (more shards than
  /// users).
  shard(const exp::scenario_spec& spec, const tasks::task_pool& pool,
        std::size_t index, std::size_t shard_count, shard_obs obs = {});

  /// Installs the workload; must be called once before the first advance.
  void begin();

  /// Runs the shard's event loop to the end of slot `slot_index` (the
  /// boundary at (slot_index + 1) * slot_length) and digests its demand
  /// state for the coordinator.
  demand_digest advance_to_slot(std::size_t slot_index);

  /// Runs the shard's event loop to an arbitrary time inside the current
  /// slot — fleet_runner uses this to park every shard at a fault edge
  /// (outage end) before the coordinator's off-cycle re-aim.
  void advance_to(util::time_ms t);

  /// Applies this shard's slice of the fleet plan (launch/retire on the
  /// shard's own backend pool, recorded in its slot report).
  void apply_quota(const core::allocation_plan& quota);

  /// Drains in-flight requests past the horizon and digests the shard's
  /// full run for the deterministic fleet merge.
  exp::replication_metrics finish();

  std::size_t index() const noexcept { return index_; }
  std::size_t user_count() const noexcept { return spec_.user_count; }
  std::size_t group_count() const noexcept { return group_count_; }
  /// The shard system's counter registry (zeroed when counters are off);
  /// fleet_runner merges these in shard order.
  const obs::registry& observability() const noexcept {
    return system_->observability();
  }
  /// The shard's per-slot telemetry windows; fleet_runner merges these in
  /// shard order before the coordinator's.
  const obs::timeline& timeline() const noexcept {
    return system_->timeline();
  }
  /// The shard's flushed tail exemplars.
  const obs::exemplar_reservoir& exemplars() const noexcept {
    return system_->exemplars();
  }
  core::offloading_system& system() noexcept { return *system_; }
  const core::offloading_system& system() const noexcept { return *system_; }

 private:
  exp::scenario_spec spec_;  ///< population slice applied
  std::size_t index_ = 0;
  std::uint64_t seed_ = 0;
  std::size_t group_count_ = 0;
  std::optional<core::offloading_system> system_;
  /// Next boundary, accumulated with the same `previous + slot_length`
  /// arithmetic the slot ticker rearms with: a multiplied-out
  /// (k+1)*slot_length can land an ULP before the ticker's accumulated
  /// fire time when slot_length is not exactly representable, and
  /// run_until would then skip the boundary event entirely.
  util::time_ms next_boundary_ = 0.0;
};

}  // namespace mca::fleet
