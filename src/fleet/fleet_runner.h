// Sharded fleet simulator — the scale layer between `exp` and `sim`.
//
// run_fleet partitions a scenario's population into K shards, each a
// self-contained single-threaded closed-loop simulation (shard.h), and
// advances them in bulk-synchronous rounds on the experiment runner's
// work-stealing pool: every provisioning slot, all shards advance to the
// boundary in parallel (a barrier — shards never block mid-simulation, so
// the pool can be smaller than the shard count without deadlock), the
// coordinator gathers their demand digests in shard order, solves ONE
// batched fleet allocation, and scatters per-shard quotas before the next
// round.  Because each shard is a pure function of (spec, index, quota
// sequence) and the coordinator consumes digests in shard order, the
// merged aggregate — folded shard-by-shard through the same
// exp::merge_replications path the replication sweeps use — is
// bit-identical whatever the pool size or shard→thread mapping; the
// fingerprint gates that in tests, fleet_scale, and CI.
#pragma once

#include <cstddef>
#include <vector>

#include "exp/scenario.h"
#include "exp/thread_pool.h"
#include "fleet/coordinator.h"
#include "fleet/shard.h"

namespace mca::fleet {

struct fleet_options {
  /// Shard count; 0 falls back to the spec's fleet_shards (and 1 if that
  /// is unset) — a monolithic run in fleet clothing.
  std::size_t shards = 0;
  /// Fleet ILP knobs (node budget, tolerances).
  ilp::ilp_options ilp;
  /// Preregistered counters in every shard and the coordinator, merged in
  /// shard order into fleet_result::observability.  Off reduces every
  /// recording site to one branch on a constant.
  bool obs_counters = true;
  /// Per-slot telemetry windows in every shard and the coordinator,
  /// merged in the same order into fleet_result::timeline.  Requires
  /// obs_counters.
  bool obs_timeline = true;
  /// Tail-exemplar reservoir size per shard (0 = off); the per-window
  /// fleet top-K lands in fleet_result::exemplars.  Requires obs_counters.
  std::size_t exemplar_top_k = 4;
  /// Optional span tracer (not owned).  Ring layout: ring k is shard k's,
  /// ring `shards` the coordinator's, rings `shards + 1 + w` the pool
  /// workers' (attached only when the tracer has that many rings).
  /// run_fleet throws std::invalid_argument when the tracer has fewer
  /// than shards + 1 rings.
  obs::tracer* tracer = nullptr;
  /// 1-in-N request-lifecycle span sampling inside each shard's SDN.
  std::size_t trace_sample_every = 1024;
};

/// One completed fleet run.
struct fleet_result {
  /// Per-shard digests folded in shard-index order; fingerprint() is the
  /// thread-mapping-independence witness.
  exp::aggregate_metrics aggregate;
  std::vector<exp::replication_metrics> per_shard;
  std::vector<coordination_record> slots;
  /// The batched ILP inputs, one per solved slot (for allocation replay).
  std::vector<std::vector<double>> fleet_demands;
  /// Fleet-wide counter registry: shard registries merged in shard-index
  /// order, then the coordinator's, then the pool's scheduling-dependent
  /// deltas — fingerprint() is bit-identical across pool sizes.
  obs::registry observability;
  /// Fleet-wide per-slot windows: shard timelines merged in shard-index
  /// order, then the coordinator's, aligned on slot index — fingerprint()
  /// is bit-identical across pool sizes and trace legs.
  obs::timeline timeline;
  /// The fleet's tail exemplars: per-shard top-K reservoirs concatenated
  /// in shard order and cut back to the top-K slowest per window.
  std::vector<obs::exemplar_record> exemplars;

  std::size_t total_users = 0;
  std::size_t shard_count = 0;
  std::size_t slot_count = 0;
  std::size_t ilp_solves = 0;
  std::size_t warm_solves = 0;

  double wall_seconds = 0.0;
  /// Serial coordination time (gather + fleet ILP + quota scatter): the
  /// synchronization overhead the shards pay per slot.
  double coordination_seconds = 0.0;
  /// The ILP share of coordination_seconds.
  double ilp_seconds = 0.0;

  std::uint64_t fingerprint() const noexcept {
    return aggregate.fingerprint();
  }
  double coordination_overhead() const noexcept {
    return wall_seconds > 0.0 ? coordination_seconds / wall_seconds : 0.0;
  }
};

/// The fleet-wide allocation shape of a scenario: candidates per group
/// from the group backends, the fleet account cap
/// (fleet_max_total_instances, falling back to max_total_instances), the
/// spec's cumulative reading.  Shared by run_fleet and the fleet_scale
/// allocation-replay bench.
core::allocation_request fleet_allocation_shape(const exp::scenario_spec& spec);

/// Runs `spec`'s population sharded `options.shards` ways on `pool`.
/// Throws std::invalid_argument on a malformed spec or more shards than
/// users.
fleet_result run_fleet(const exp::scenario_spec& spec,
                       const fleet_options& options,
                       const tasks::task_pool& task_pool,
                       exp::thread_pool& pool);

}  // namespace mca::fleet
