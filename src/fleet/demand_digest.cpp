#include "fleet/demand_digest.h"

#include <stdexcept>

namespace mca::fleet {

double demand_digest::acceptance() const noexcept {
  if (requests == 0) return 0.0;
  return static_cast<double>(successes) / static_cast<double>(requests);
}

double fleet_demand::total() const noexcept {
  double sum = 0.0;
  for (const double d : demand_per_group) sum += d;
  return sum;
}

fleet_demand combine(std::span<const demand_digest> digests,
                     std::size_t group_count) {
  fleet_demand fleet;
  fleet.demand_per_group.assign(group_count, 0.0);
  fleet.total_shards = digests.size();
  for (const auto& digest : digests) {
    if (!digest.has_prediction) continue;
    if (digest.demand_per_group.size() > group_count) {
      throw std::invalid_argument{
          "fleet::combine: digest wider than the fleet's group count"};
    }
    ++fleet.predicting_shards;
    for (std::size_t g = 0; g < digest.demand_per_group.size(); ++g) {
      fleet.demand_per_group[g] += digest.demand_per_group[g];
    }
  }
  return fleet;
}

}  // namespace mca::fleet
