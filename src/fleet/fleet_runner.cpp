#include "fleet/fleet_runner.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <utility>

#include "exp/bench_clock.h"
#include "exp/runner.h"

namespace mca::fleet {

core::allocation_request fleet_allocation_shape(
    const exp::scenario_spec& spec) {
  // Reuse the slot-boundary request builder (one candidate path for
  // monolith, shards, and coordinator) with the fleet-wide account cap.
  core::system_config deployment;
  deployment.groups = spec.groups;
  deployment.max_total_instances = spec.fleet_max_total_instances != 0
                                       ? spec.fleet_max_total_instances
                                       : spec.max_total_instances;
  deployment.cumulative_capacity = spec.cumulative_capacity;
  return core::make_slot_allocation_request(deployment,
                                            exp::group_count_of(spec), {});
}

fleet_result run_fleet(const exp::scenario_spec& spec,
                       const fleet_options& options,
                       const tasks::task_pool& task_pool,
                       exp::thread_pool& pool) {
  exp::validate(spec, task_pool);
  const std::size_t shards =
      options.shards != 0 ? options.shards
                          : (spec.fleet_shards != 0 ? spec.fleet_shards : 1);
  if (shards > spec.user_count) {
    throw std::invalid_argument{
        "run_fleet: more shards than users (empty slices)"};
  }
  obs::tracer* const tracer = options.tracer;
  if (tracer != nullptr && tracer->ring_count() < shards + 1) {
    throw std::invalid_argument{
        "run_fleet: tracer needs at least shards + 1 rings "
        "(one per shard plus the coordinator's)"};
  }

  // mca-lint: allow(det-wallclock) reported wall_seconds is advisory
  // perf output; the fingerprint gates never read it.
  const auto start = std::chrono::steady_clock::now();

  // Shard construction (study-trace synthesis, device setup) is itself a
  // parallel round; each shard is a pure function of (spec, index).
  std::vector<std::unique_ptr<shard>> members =
      exp::parallel_map(pool, shards, [&](std::size_t k) {
        shard_obs obs;
        obs.counters = options.obs_counters;
        obs.timeline = options.obs_timeline;
        obs.exemplar_top_k = options.exemplar_top_k;
        obs.tracer = tracer;
        obs.ring = k;
        obs.sample_every = options.trace_sample_every;
        auto s = std::make_unique<shard>(spec, task_pool, k, shards, obs);
        s->begin();
        return s;
      });

  coordinator coord{fleet_allocation_shape(spec), options.ilp};
  coord.set_resilient_split(spec.faults.active());
  coord.set_observability(options.obs_counters, tracer, shards);
  if (options.obs_counters && options.obs_timeline) {
    // One coordinator window per slot round; count the boundaries with
    // the same accumulated arithmetic as the round loop below.
    std::size_t expected_slots = 0;
    for (util::time_ms boundary = spec.slot_length; boundary <= spec.duration;
         boundary += spec.slot_length) {
      ++expected_slots;
    }
    coord.enable_timeline(expected_slots, spec.slot_length);
  }

  // Worker idle-gap rings ride after the coordinator's when the tracer
  // was sized for them; the pool snapshot brackets the run so only this
  // run's scheduling-dependent deltas land in the merged registry.
  const exp::pool_counters pool_before = pool.counters();
  const bool worker_rings =
      tracer != nullptr &&
      tracer->ring_count() >= shards + 1 + pool.worker_count();
  if (worker_rings) pool.set_observability(tracer, shards + 1);

  fleet_result result;
  result.total_users = spec.user_count;
  result.shard_count = shards;

  // Outage-end edges strictly inside a slot trigger an off-cycle re-aim:
  // the fleet lost (and just regained) a group's capacity mid-slot, and
  // waiting for the next boundary would leave the recovered group idle.
  // Edges landing exactly on a boundary are covered by that slot's solve.
  std::vector<util::time_ms> recovery_edges;
  if (spec.faults.active()) {
    for (const fault::outage_window& w : spec.faults.outages) {
      if (w.end_ms > 0.0 && w.end_ms < spec.duration) {
        recovery_edges.push_back(w.end_ms);
      }
    }
    std::sort(recovery_edges.begin(), recovery_edges.end());
  }
  std::size_t next_edge = 0;

  // Bulk-synchronous slot rounds: advance all shards to the boundary in
  // parallel, then coordinate serially (gather is already ordered by
  // shard index, so the ILP input — and with it every quota — depends
  // only on the digests, never on the shard→thread mapping).  The
  // boundary accumulates with the same arithmetic the shards' slot
  // tickers rearm with, so the loop covers exactly the boundaries that
  // fire within the horizon.
  for (util::time_ms boundary = spec.slot_length; boundary <= spec.duration;
       boundary += spec.slot_length) {
    const std::size_t slot = result.slot_count;
    // Park every shard at each fault edge inside this round, then let the
    // coordinator re-aim with its warm tableau.  The edge times come from
    // the spec, the shard advance is bulk-synchronous, and the split uses
    // the remembered digests — deterministic like the boundary rounds.
    while (next_edge < recovery_edges.size() &&
           recovery_edges[next_edge] < boundary) {
      const util::time_ms edge = recovery_edges[next_edge++];
      exp::parallel_map(pool, shards, [&](std::size_t k) {
        members[k]->advance_to(edge);
        return k;
      });
      const auto quotas = coord.reallocate();
      for (std::size_t k = 0; k < quotas.size(); ++k) {
        if (quotas[k]) members[k]->apply_quota(*quotas[k]);
      }
    }
    const double round_t0 = tracer != nullptr ? tracer->now_us() : 0.0;
    const std::vector<demand_digest> digests =
        exp::parallel_map(pool, shards, [&](std::size_t k) {
          const double t0 = tracer != nullptr ? tracer->now_us() : 0.0;
          demand_digest digest = members[k]->advance_to_slot(slot);
          if (tracer != nullptr) {
            obs::span_record span;
            span.wall_start_us = t0;
            span.wall_dur_us = tracer->now_us() - t0;
            span.sim_start_ms = boundary - spec.slot_length;
            span.sim_dur_ms = spec.slot_length;
            span.arg_a = slot;
            span.arg_b = k;
            span.kind = obs::span_kind::shard_advance;
            tracer->ring(k).push(span);
          }
          return digest;
        });
    result.coordination_seconds += exp::seconds_of([&] {
      const auto quotas = coord.allocate_slot(digests);
      for (std::size_t k = 0; k < shards; ++k) {
        if (quotas[k]) members[k]->apply_quota(*quotas[k]);
      }
    });
    if (tracer != nullptr) {
      obs::span_record span;
      span.wall_start_us = round_t0;
      span.wall_dur_us = tracer->now_us() - round_t0;
      span.sim_start_ms = boundary - spec.slot_length;
      span.sim_dur_ms = spec.slot_length;
      span.arg_a = slot;
      span.kind = obs::span_kind::slot_round;
      tracer->ring(shards).push(span);
    }
    ++result.slot_count;
  }

  result.per_shard = exp::parallel_map(
      pool, shards, [&](std::size_t k) { return members[k]->finish(); });
  result.aggregate = exp::merge_replications(result.per_shard);

  // Deterministic counter merge: shard registries in shard-index order,
  // then the coordinator's, then the pool's scheduling-dependent deltas
  // (excluded from the registry fingerprint by construction).
  if (worker_rings) pool.set_observability(nullptr, 0);
  for (const auto& member : members) {
    result.observability.merge(member->observability());
  }
  result.observability.merge(coord.observability());
  if (options.obs_counters) {
    const exp::pool_counters pool_after = pool.counters();
    result.observability.add(obs::counter::pool_tasks_executed,
                             pool_after.executed - pool_before.executed);
    result.observability.add(obs::counter::pool_steals,
                             pool_after.steals - pool_before.steals);
    result.observability.add(obs::counter::pool_idle_waits,
                             pool_after.idle_waits - pool_before.idle_waits);
    result.observability.set_gauge(obs::gauge::pool_workers,
                                   pool.worker_count());
    result.observability.set_gauge(obs::gauge::fleet_shards, shards);
  }
  if (tracer != nullptr) {
    result.observability.set_gauge(obs::gauge::trace_spans_dropped,
                                   tracer->total_dropped());
  }

  // Time-resolved merge, same fold order as the registries: shard
  // timelines in shard-index order (aligned on slot), the coordinator's
  // last; then the fleet-wide per-window tail exemplars, concatenated in
  // shard order and re-cut to the top-K slowest per window.
  if (options.obs_counters && options.obs_timeline) {
    for (const auto& member : members) {
      result.timeline.merge(member->timeline());
    }
    result.timeline.merge(coord.timeline());
    result.observability.set_gauge(obs::gauge::timeline_windows,
                                   result.timeline.size());
  }
  if (options.obs_counters && options.exemplar_top_k > 0) {
    std::vector<obs::exemplar_record> all;
    for (const auto& member : members) {
      const auto& records = member->exemplars().records();
      all.insert(all.end(), records.begin(), records.end());
    }
    result.exemplars =
        obs::top_exemplars_per_window(std::move(all), options.exemplar_top_k);
  }

  result.slots = coord.records();
  result.fleet_demands = coord.solved_demands();
  result.ilp_solves = coord.ilp_solves();
  result.warm_solves = coord.warm_solves();
  result.ilp_seconds = coord.ilp_seconds();
  // mca-lint: allow(det-wallclock) see above: advisory wall time only.
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace mca::fleet
