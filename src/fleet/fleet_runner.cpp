#include "fleet/fleet_runner.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <utility>

#include "exp/bench_clock.h"
#include "exp/runner.h"

namespace mca::fleet {

core::allocation_request fleet_allocation_shape(
    const exp::scenario_spec& spec) {
  // Reuse the slot-boundary request builder (one candidate path for
  // monolith, shards, and coordinator) with the fleet-wide account cap.
  core::system_config deployment;
  deployment.groups = spec.groups;
  deployment.max_total_instances = spec.fleet_max_total_instances != 0
                                       ? spec.fleet_max_total_instances
                                       : spec.max_total_instances;
  deployment.cumulative_capacity = spec.cumulative_capacity;
  return core::make_slot_allocation_request(deployment,
                                            exp::group_count_of(spec), {});
}

fleet_result run_fleet(const exp::scenario_spec& spec,
                       const fleet_options& options,
                       const tasks::task_pool& task_pool,
                       exp::thread_pool& pool) {
  exp::validate(spec, task_pool);
  const std::size_t shards =
      options.shards != 0 ? options.shards
                          : (spec.fleet_shards != 0 ? spec.fleet_shards : 1);
  if (shards > spec.user_count) {
    throw std::invalid_argument{
        "run_fleet: more shards than users (empty slices)"};
  }

  const auto start = std::chrono::steady_clock::now();

  // Shard construction (study-trace synthesis, device setup) is itself a
  // parallel round; each shard is a pure function of (spec, index).
  std::vector<std::unique_ptr<shard>> members =
      exp::parallel_map(pool, shards, [&](std::size_t k) {
        auto s = std::make_unique<shard>(spec, task_pool, k, shards);
        s->begin();
        return s;
      });

  coordinator coord{fleet_allocation_shape(spec), options.ilp};

  fleet_result result;
  result.total_users = spec.user_count;
  result.shard_count = shards;

  // Bulk-synchronous slot rounds: advance all shards to the boundary in
  // parallel, then coordinate serially (gather is already ordered by
  // shard index, so the ILP input — and with it every quota — depends
  // only on the digests, never on the shard→thread mapping).  The
  // boundary accumulates with the same arithmetic the shards' slot
  // tickers rearm with, so the loop covers exactly the boundaries that
  // fire within the horizon.
  for (util::time_ms boundary = spec.slot_length; boundary <= spec.duration;
       boundary += spec.slot_length) {
    const std::size_t slot = result.slot_count;
    const std::vector<demand_digest> digests =
        exp::parallel_map(pool, shards, [&](std::size_t k) {
          return members[k]->advance_to_slot(slot);
        });
    result.coordination_seconds += exp::seconds_of([&] {
      const auto quotas = coord.allocate_slot(digests);
      for (std::size_t k = 0; k < shards; ++k) {
        if (quotas[k]) members[k]->apply_quota(*quotas[k]);
      }
    });
    ++result.slot_count;
  }

  result.per_shard = exp::parallel_map(
      pool, shards, [&](std::size_t k) { return members[k]->finish(); });
  result.aggregate = exp::merge_replications(result.per_shard);

  result.slots = coord.records();
  result.fleet_demands = coord.solved_demands();
  result.ilp_solves = coord.ilp_solves();
  result.warm_solves = coord.warm_solves();
  result.ilp_seconds = coord.ilp_seconds();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace mca::fleet
