// The fleet's provisioning plane: one batched allocation per slot, split
// into per-shard quotas.
//
// The shard/coordinator contract:
//   * Shards never provision themselves.  At each provisioning-slot
//     boundary every shard emits a demand_digest; the coordinator folds
//     them (shard order, so the result is thread-mapping independent),
//     solves ONE fleet-wide allocation — through core::batched_allocator,
//     which keeps a warm ILP tableau across consecutive slots and seeds
//     branch & bound with the previous slot's plan — and splits the fleet
//     plan back into per-shard quotas.
//   * The split is largest-remainder apportionment per (group, type)
//     against the shards' own predicted demand in that group, ties broken
//     toward the lower shard index: counts sum exactly to the fleet plan
//     and depend only on the digests, never on timing.
//   * A shard whose predictor has no forecast yet receives no quota
//     (nullopt) and keeps its current fleet, exactly like a monolithic
//     run before its first prediction.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/allocator.h"
#include "fleet/demand_digest.h"
#include "obs/registry.h"
#include "obs/timeline.h"
#include "obs/tracer.h"

namespace mca::fleet {

/// Per-slot telemetry of the coordinator.
struct coordination_record {
  std::size_t slot = 0;
  bool solved = false;  ///< a fleet ILP ran (some shard predicted)
  double fleet_demand = 0.0;       ///< summed predicted load
  std::size_t fleet_instances = 0; ///< instances in the fleet plan
  /// Instances held by non-predicting shards, subtracted from the account
  /// cap before the solve so the fleet total never exceeds it.
  std::size_t reserved_instances = 0;
  double cost_per_hour = 0.0;      ///< fleet plan cost
  double queue_depth = 0.0;        ///< summed in-flight requests at gather
};

class coordinator {
 public:
  /// `shape` fixes the fleet deployment: candidates per group, the
  /// account-wide instance cap, margin, cumulative reading.  Demands
  /// arrive per slot via allocate_slot.
  explicit coordinator(core::allocation_request shape,
                       ilp::ilp_options opts = {});

  /// One provisioning slot: fold the digests, solve the batched fleet
  /// ILP, split into per-shard quotas (digest order).  `plans[k]` is
  /// nullopt when digest k's shard should keep its fleet untouched.
  std::vector<std::optional<core::allocation_plan>> allocate_slot(
      std::span<const demand_digest> digests);

  std::size_t group_count() const noexcept { return allocator_.group_count(); }
  const std::vector<coordination_record>& records() const noexcept {
    return records_;
  }
  /// The batched ILP inputs, one per solved slot (fleet_scale replays
  /// these to time batched vs independent solving).
  const std::vector<std::vector<double>>& solved_demands() const noexcept {
    return solved_demands_;
  }
  std::size_t ilp_solves() const noexcept { return allocator_.solves(); }
  std::size_t warm_solves() const noexcept { return allocator_.warm_solves(); }
  /// Wall time spent inside the batched ILP (gather/split excluded).
  double ilp_seconds() const noexcept { return ilp_seconds_; }

  /// Observability: `counters` toggles the coordinator-owned registry
  /// (ILP solve internals + slot-round counters; on by default), `tracer`
  /// adds coordinator_solve / quota_split wall spans into
  /// `tracer->ring(ring)` (nullptr: no spans; not owned).
  void set_observability(bool counters, obs::tracer* tracer = nullptr,
                         std::size_t ring = 0) noexcept;
  /// The coordinator's registry: ilp_* counters from the batched
  /// allocator plus fleet_slot_rounds / fleet_quota_splits.
  const obs::registry& observability() const noexcept { return obs_; }

  /// Preallocates a per-slot timeline over the coordinator's registry
  /// (one window per allocate_slot call, closed at the end of the call;
  /// `slot_length_ms` stamps window end times in simulated time).
  /// Requires counters; setup-time only.
  void enable_timeline(std::size_t window_capacity, double slot_length_ms);
  /// The coordinator's per-slot windows (empty unless enabled);
  /// fleet_runner merges this after the shard timelines.
  const obs::timeline& timeline() const noexcept { return timeline_; }

 private:
  core::allocation_request shape_;
  core::batched_allocator allocator_;
  std::vector<coordination_record> records_;
  std::vector<std::vector<double>> solved_demands_;
  std::size_t next_slot_ = 0;
  double ilp_seconds_ = 0.0;
  obs::registry obs_;
  obs::registry* obs_ptr_ = nullptr;
  obs::timeline timeline_;
  double slot_length_ms_ = 0.0;
  obs::tracer* tracer_ = nullptr;
  std::size_t trace_ring_ = 0;
};

/// Largest-remainder split of `fleet_plan` into one quota per digest,
/// weighted by each predicting shard's demand in the entry's group (equal
/// split among predicting shards when the group's fleet demand is zero).
/// Per-shard costs come from `shape`'s candidate prices.  Exposed for
/// tests; allocate_slot is the production caller.
std::vector<std::optional<core::allocation_plan>> split_fleet_plan(
    const core::allocation_plan& fleet_plan,
    std::span<const demand_digest> digests,
    const core::allocation_request& shape);

}  // namespace mca::fleet
