// The fleet's provisioning plane: one batched allocation per slot, split
// into per-shard quotas.
//
// The shard/coordinator contract:
//   * Shards never provision themselves.  At each provisioning-slot
//     boundary every shard emits a demand_digest; the coordinator folds
//     them (shard order, so the result is thread-mapping independent),
//     solves ONE fleet-wide allocation — through core::batched_allocator,
//     which keeps a warm ILP tableau across consecutive slots and seeds
//     branch & bound with the previous slot's plan — and splits the fleet
//     plan back into per-shard quotas.
//   * The split is largest-remainder apportionment per (group, type)
//     against the shards' own predicted demand in that group, ties broken
//     toward the lower shard index: counts sum exactly to the fleet plan
//     and depend only on the digests, never on timing.
//   * A shard whose predictor has no forecast yet receives no quota
//     (nullopt) and keeps its current fleet, exactly like a monolithic
//     run before its first prediction.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/allocator.h"
#include "fleet/demand_digest.h"
#include "obs/registry.h"
#include "obs/timeline.h"
#include "obs/tracer.h"

namespace mca::fleet {

/// Per-slot telemetry of the coordinator.
struct coordination_record {
  std::size_t slot = 0;
  bool solved = false;  ///< a fleet ILP ran (some shard predicted)
  double fleet_demand = 0.0;       ///< summed predicted load
  std::size_t fleet_instances = 0; ///< instances in the fleet plan
  /// Instances held by non-predicting shards, subtracted from the account
  /// cap before the solve so the fleet total never exceeds it.
  std::size_t reserved_instances = 0;
  double cost_per_hour = 0.0;      ///< fleet plan cost
  double queue_depth = 0.0;        ///< summed in-flight requests at gather
};

class coordinator {
 public:
  /// `shape` fixes the fleet deployment: candidates per group, the
  /// account-wide instance cap, margin, cumulative reading.  Demands
  /// arrive per slot via allocate_slot.
  explicit coordinator(core::allocation_request shape,
                       ilp::ilp_options opts = {});

  /// One provisioning slot: fold the digests, solve the batched fleet
  /// ILP, split into per-shard quotas (digest order).  `plans[k]` is
  /// nullopt when digest k's shard should keep its fleet untouched.
  std::vector<std::optional<core::allocation_plan>> allocate_slot(
      std::span<const demand_digest> digests);

  /// Off-cycle re-aim after a fault collapsed a group's capacity (outage
  /// lifting, mass preemption): re-solves the batched fleet ILP against
  /// the most recent solved slot's demands — the warm tableau plus the
  /// previous plan as incumbent make this ~free — and re-splits with the
  /// remembered digests.  Returns an empty vector before the first
  /// solved slot (nothing to re-aim yet).
  std::vector<std::optional<core::allocation_plan>> reallocate();

  std::size_t group_count() const noexcept { return allocator_.group_count(); }
  const std::vector<coordination_record>& records() const noexcept {
    return records_;
  }
  /// The batched ILP inputs, one per solved slot (fleet_scale replays
  /// these to time batched vs independent solving).
  const std::vector<std::vector<double>>& solved_demands() const noexcept {
    return solved_demands_;
  }
  std::size_t ilp_solves() const noexcept { return allocator_.solves(); }
  std::size_t warm_solves() const noexcept { return allocator_.warm_solves(); }
  /// Wall time spent inside the batched ILP (gather/split excluded).
  double ilp_seconds() const noexcept { return ilp_seconds_; }

  /// Observability: `counters` toggles the coordinator-owned registry
  /// (ILP solve internals + slot-round counters; on by default), `tracer`
  /// adds coordinator_solve / quota_split wall spans into
  /// `tracer->ring(ring)` (nullptr: no spans; not owned).
  void set_observability(bool counters, obs::tracer* tracer = nullptr,
                         std::size_t ring = 0) noexcept;
  /// Resilience floor on the quota split (see split_fleet_plan).
  /// fleet_runner turns this on exactly when the scenario's fault program
  /// is active, so a disabled-fault replay splits like the baseline.
  void set_resilient_split(bool on) noexcept { resilient_split_ = on; }
  /// The coordinator's registry: ilp_* counters from the batched
  /// allocator plus fleet_slot_rounds / fleet_quota_splits.
  const obs::registry& observability() const noexcept { return obs_; }

  /// Preallocates a per-slot timeline over the coordinator's registry
  /// (one window per allocate_slot call, closed at the end of the call;
  /// `slot_length_ms` stamps window end times in simulated time).
  /// Requires counters; setup-time only.
  void enable_timeline(std::size_t window_capacity, double slot_length_ms);
  /// The coordinator's per-slot windows (empty unless enabled);
  /// fleet_runner merges this after the shard timelines.
  const obs::timeline& timeline() const noexcept { return timeline_; }

 private:
  core::allocation_request shape_;
  core::batched_allocator allocator_;
  /// The digests and remaining cap of the last solved slot — what
  /// reallocate() re-aims against between boundaries.
  std::vector<demand_digest> last_digests_;
  std::size_t last_cap_ = 0;
  std::vector<coordination_record> records_;
  std::vector<std::vector<double>> solved_demands_;
  std::size_t next_slot_ = 0;
  double ilp_seconds_ = 0.0;
  bool resilient_split_ = false;
  obs::registry obs_;
  obs::registry* obs_ptr_ = nullptr;
  obs::timeline timeline_;
  double slot_length_ms_ = 0.0;
  obs::tracer* tracer_ = nullptr;
  std::size_t trace_ring_ = 0;
};

/// Largest-remainder split of `fleet_plan` into one quota per digest,
/// weighted by each predicting shard's demand in the entry's group (equal
/// split among predicting shards when the group's fleet demand is zero).
/// Per-shard costs come from `shape`'s candidate prices.  Exposed for
/// tests; allocate_slot is the production caller.
///
/// `min_footprint` adds the resilience floor (fault-program runs only):
/// a fleet-optimal plan may put a whole group's capacity on one shard —
/// fine when requests can fail over, but shards route only within
/// themselves, so every other shard's requests in that group would ride
/// the local-fallback path at device speed.  With the floor, a predicting
/// shard with nonzero demand in a group whose split left it no instances
/// there gets one instance of the group's cheapest candidate type on top
/// of its quota.  The floor adds at most (shards x groups) instances over
/// the ILP optimum and keeps the split a pure function of its inputs.
std::vector<std::optional<core::allocation_plan>> split_fleet_plan(
    const core::allocation_plan& fleet_plan,
    std::span<const demand_digest> digests,
    const core::allocation_request& shape, bool min_footprint = false);

}  // namespace mca::fleet
