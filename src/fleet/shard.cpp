#include "fleet/shard.h"

#include <stdexcept>
#include <utility>

namespace mca::fleet {
namespace {

/// Domain tag folded into the shard rng streams so they never collide with
/// the replication streams rng::split(base_seed, index) hands a seed sweep
/// of the same scenario.
constexpr std::uint64_t kShardStreamTag = 0x666c656574736872ULL;  // "fleetshr"

}  // namespace

std::size_t shard_user_count(std::size_t user_count, std::size_t index,
                             std::size_t shard_count) {
  return user_count / shard_count + (index < user_count % shard_count ? 1 : 0);
}

shard::shard(const exp::scenario_spec& spec, const tasks::task_pool& pool,
             std::size_t index, std::size_t shard_count, shard_obs obs)
    : spec_{spec}, index_{index} {
  exp::validate(spec);
  if (shard_count == 0) {
    throw std::invalid_argument{"fleet::shard: zero shard count"};
  }
  if (index >= shard_count) {
    throw std::invalid_argument{"fleet::shard: index out of range"};
  }
  spec_.user_count = shard_user_count(spec.user_count, index, shard_count);
  if (spec_.user_count == 0) {
    throw std::invalid_argument{
        "fleet::shard: more shards than users (empty slice)"};
  }
  seed_ = spec.base_seed;
  group_count_ = exp::group_count_of(spec_);

  util::rng stream = util::rng::split(spec.base_seed ^ kShardStreamTag, index);
  core::system_config config = exp::make_system_config(spec_, pool, stream);
  config.external_allocation = true;
  // Shards are digest-only consumers: the streaming request digest covers
  // acceptance and latency, so neither the raw per-request series nor the
  // trace log's record storage is kept (the trace point still feeds the
  // predictor's slot windows).
  config.record_request_series = false;
  config.sdn.retain_trace_records = false;
  config.obs_counters = obs.counters;
  config.obs_timeline = obs.timeline;
  config.exemplar_top_k = obs.exemplar_top_k;
  config.trace_sink = obs.tracer;
  config.trace_ring = obs.ring;
  config.trace_sample_every = obs.sample_every;
  if (config.faults.active() && shard_count > 1) {
    // Slice the shared fault trace by global order index: strike `seq`
    // lands on shard `seq % shard_count`, so the union across shards is
    // exactly the monolith's schedule regardless of shard count.  Outage
    // windows are NOT sliced — a zone outage hits every shard's slice of
    // the group at once.
    std::vector<fault::preemption_event> mine;
    for (const fault::preemption_event& ev : config.preemption_schedule) {
      if (ev.seq % shard_count == index) mine.push_back(ev);
    }
    config.preemption_schedule = std::move(mine);
  }
  system_.emplace(std::move(config), pool);
}

void shard::begin() {
  system_->begin(spec_.duration);
  next_boundary_ = spec_.slot_length;
}

// The shard advance drives every per-request event in its slice of the
// fleet between two slot boundaries — K shards run this concurrently on
// the pool, so anything slow or allocating here multiplies by the whole
// population.  The per-boundary digest assembly below is slot-rate (4-ish
// per run), not request-rate, but it shares the region: it runs with the
// barrier held, where a stall delays every other shard.
// mca:hot-path-begin(fleet-shard-advance)
demand_digest shard::advance_to_slot(std::size_t slot_index) {
  system_->advance_to(next_boundary_);
  next_boundary_ += spec_.slot_length;

  demand_digest digest;
  digest.shard = index_;
  digest.slot = slot_index;
  if (auto request = system_->take_pending_demand()) {
    digest.has_prediction = true;
    digest.demand_per_group = std::move(request->workload_per_group);
  } else {
    digest.demand_per_group.assign(group_count_, 0.0);
  }

  digest.queue_depth_per_group.assign(group_count_, 0);
  for (group_id g = 0; g < group_count_; ++g) {
    const auto servers = system_->backend().instances_in(g);
    digest.instances += servers.size();
    for (const cloud::instance* server : servers) {
      digest.queue_depth_per_group[g] += server->active_jobs();
    }
  }

  // Acceptance so far, straight off the streaming request digest.
  digest.requests = system_->metrics().digest.issued;
  digest.successes = system_->metrics().digest.succeeded;
  return digest;
}
// mca:hot-path-end

void shard::advance_to(util::time_ms t) { system_->advance_to(t); }

void shard::apply_quota(const core::allocation_plan& quota) {
  system_->apply_external_plan(quota);
}

exp::replication_metrics shard::finish() {
  system_->finish();
  return exp::digest_metrics(system_->metrics(), group_count_, seed_);
}

}  // namespace mca::fleet
