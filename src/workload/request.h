// The unit of traffic between workload generators and the front-end.
#pragma once

#include <functional>

#include "tasks/task.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace mca::workload {

/// One code-offloading request emitted by a simulated device.
struct offload_request {
  request_id id = 0;
  user_id user = 0;
  tasks::task_request work;
  util::time_ms created_at = 0.0;
};

/// Receives generated requests (typically the SDN-accelerator's request
/// handler, or a bare instance in characterization benches).
using request_sink = std::function<void(const offload_request&)>;

}  // namespace mca::workload
