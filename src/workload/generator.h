// Workload generators — the paper's simulator component (§V).
//
// "The simulator creates workload in two different operational modes,
// 1) concurrent and 2) inter-arrival rate."  The concurrent mode stresses a
// server with n simultaneous offloads per round (used to benchmark cloud
// instances, Fig. 4); the inter-arrival mode replays per-device request
// gaps (used for the realistic 100-user load of Fig. 9/10).  A third
// schedule, rate doubling, drives the saturation study of Fig. 8.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sim/simulation.h"
#include "tasks/task.h"
#include "util/empirical.h"
#include "util/rng.h"
#include "workload/request.h"

namespace mca::workload {

/// Draws the next task for a request.
using task_source = std::function<tasks::task_request(util::rng&)>;

/// Random task, uniformly random size in its range (Fig. 4 methodology).
task_source random_pool_source(const tasks::task_pool& pool);
/// Random task at its maximum size — the heavy mix that saturates a
/// t2.large near the paper's 32 Hz knee (Fig. 8 methodology; the paper
/// does not state its mix, see DESIGN.md §5).
task_source heavy_pool_source(const tasks::task_pool& pool);
/// Weighted task mix: task i drawn with probability weights[i]/sum via an
/// O(1) alias table (util::alias_sampler), uniformly random size — lets a
/// scenario skew its pool toward chatty or heavy algorithms without a
/// per-request CDF walk.  Throws std::invalid_argument unless
/// weights.size() == pool.size() (and weights are valid alias input).
task_source weighted_pool_source(const tasks::task_pool& pool,
                                 std::span<const double> weights);
/// Always the same request (the static minimax benchmark of Fig. 5/9).
task_source static_source(tasks::task_request request);

/// Draws the next inter-arrival gap in ms.
using interarrival_fn = std::function<double(util::rng&)>;

interarrival_fn fixed_interarrival(util::time_ms gap);
/// Poisson arrivals at `rate_hz` per device.
interarrival_fn exponential_interarrival(double rate_hz);
/// Replays an empirical gap distribution (the smartphone study).
interarrival_fn empirical_interarrival(
    std::shared_ptr<const util::empirical_distribution> distribution);

/// Concurrent mode: every `gap` ms, all `users` fire one request at once;
/// `rounds` rounds in total.  The 1-minute default gap is the paper's
/// cool-down between bursts.
struct concurrent_config {
  std::size_t users = 1;
  std::size_t rounds = 1;
  util::time_ms gap = util::minutes(1);
  user_id first_user = 0;
};

class concurrent_generator {
 public:
  /// Schedules all rounds on `sim`.  Throws std::invalid_argument on zero
  /// users/rounds or a missing sink/source.
  concurrent_generator(sim::simulation& sim, task_source source,
                       request_sink sink, concurrent_config config,
                       util::rng rng);
  std::uint64_t emitted() const noexcept { return emitted_; }

 private:
  void emit_round();

  sim::simulation& sim_;
  task_source source_;
  request_sink sink_;
  concurrent_config config_;
  util::rng rng_;
  std::size_t rounds_done_ = 0;
  std::uint64_t emitted_ = 0;
  std::unique_ptr<sim::periodic_process> process_;
};

/// Inter-arrival mode: `devices` independent devices, each issuing its next
/// request one sampled gap after the previous completes being issued, for
/// `active_duration` of simulated time.
struct interarrival_config {
  std::size_t devices = 1;
  util::time_ms active_duration = util::hours(1);
  user_id first_user = 0;
};

class interarrival_generator {
 public:
  /// Throws std::invalid_argument on zero devices or empty callbacks.
  interarrival_generator(sim::simulation& sim, task_source source,
                         request_sink sink, interarrival_fn gaps,
                         interarrival_config config, util::rng rng);
  std::uint64_t emitted() const noexcept { return emitted_; }

 private:
  void schedule_next(user_id user);

  sim::simulation& sim_;
  task_source source_;
  request_sink sink_;
  interarrival_fn gaps_;
  interarrival_config config_;
  util::rng rng_;
  util::time_ms deadline_ = 0.0;
  std::uint64_t emitted_ = 0;
};

/// Trace replay: re-issues requests at exact recorded (timestamp, user)
/// pairs — e.g. a smartphone-study event list or an imported request log
/// (`trace::trace_io`).  Task payloads are drawn from the source, since
/// logs record timing, not code.
struct replay_event {
  util::time_ms at = 0.0;
  user_id user = 0;
};

class replay_generator {
 public:
  /// Schedules the trace (events need not be sorted).  Same-timestamp
  /// bursts share one simulator wake-up — a trace of n events at k
  /// distinct timestamps schedules k events, not n — while emission
  /// order (and hence rng draw order) matches per-event scheduling.
  /// Throws std::invalid_argument on empty callbacks.
  replay_generator(sim::simulation& sim, task_source source,
                   request_sink sink, std::vector<replay_event> events,
                   util::rng rng);
  std::uint64_t emitted() const noexcept { return emitted_; }
  /// Total trace entries (not the number of simulator events).
  std::size_t scheduled() const noexcept { return total_; }

 private:
  void emit_range(std::size_t first, std::size_t last);

  sim::simulation& sim_;
  task_source source_;
  request_sink sink_;
  util::rng rng_;
  std::vector<replay_event> events_;  ///< sorted by (at, original order)
  std::size_t total_ = 0;
  std::uint64_t emitted_ = 0;
};

/// Rate-doubling schedule (Fig. 8): Poisson arrivals at `initial_hz`,
/// doubling every `phase_length` until past `final_hz`.
struct rate_doubling_config {
  double initial_hz = 1.0;
  double final_hz = 1024.0;
  util::time_ms phase_length = util::minutes(5);
  std::size_t user_population = 1000;
};

class rate_doubling_generator {
 public:
  /// Throws std::invalid_argument on non-positive rates or phase length.
  rate_doubling_generator(sim::simulation& sim, task_source source,
                          request_sink sink, rate_doubling_config config,
                          util::rng rng);
  double current_rate_hz() const noexcept { return rate_hz_; }
  std::uint64_t emitted() const noexcept { return emitted_; }

 private:
  void schedule_arrival();

  sim::simulation& sim_;
  task_source source_;
  request_sink sink_;
  rate_doubling_config config_;
  util::rng rng_;
  double rate_hz_;
  util::time_ms phase_end_;
  std::uint64_t emitted_ = 0;
  user_id next_user_ = 0;
};

}  // namespace mca::workload
