#include "workload/generator.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

namespace mca::workload {
namespace {

std::uint64_t next_request_id() {
  // Request ids only need uniqueness within a process run; with the
  // experiment runner farming simulations out to worker threads the
  // counter must be atomic.  Id *values* then depend on thread
  // interleaving, so replication digests must never incorporate them
  // (exp::digest_metrics does not).
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

task_source random_pool_source(const tasks::task_pool& pool) {
  return [&pool](util::rng& rng) { return pool.random_request(rng); };
}

task_source heavy_pool_source(const tasks::task_pool& pool) {
  return [&pool](util::rng& rng) {
    auto request = pool.random_request(rng);
    request.size = request.algorithm->max_size();
    return request;
  };
}

task_source weighted_pool_source(const tasks::task_pool& pool,
                                 std::span<const double> weights) {
  if (weights.size() != pool.size()) {
    throw std::invalid_argument{
        "weighted_pool_source: one weight per pool task required"};
  }
  // The alias table is built once per source, shared by copies of the
  // closure; each draw costs one uniform for the task and one for the
  // size, like the uniform pool source.
  auto sampler = std::make_shared<const util::alias_sampler>(weights);
  return [&pool, sampler](util::rng& rng) {
    return pool.request_for(sampler->sample(rng), rng);
  };
}

task_source static_source(tasks::task_request request) {
  if (request.algorithm == nullptr) {
    throw std::invalid_argument{"static_source: null task"};
  }
  return [request](util::rng&) { return request; };
}

interarrival_fn fixed_interarrival(util::time_ms gap) {
  if (gap <= 0.0) throw std::invalid_argument{"fixed_interarrival: gap <= 0"};
  return [gap](util::rng&) { return gap; };
}

interarrival_fn exponential_interarrival(double rate_hz) {
  if (rate_hz <= 0.0) {
    throw std::invalid_argument{"exponential_interarrival: rate <= 0"};
  }
  return [rate_hz](util::rng& rng) {
    return rng.exponential(rate_hz / 1000.0);  // rate per ms
  };
}

interarrival_fn empirical_interarrival(
    std::shared_ptr<const util::empirical_distribution> distribution) {
  if (distribution == nullptr) {
    throw std::invalid_argument{"empirical_interarrival: null distribution"};
  }
  return [distribution = std::move(distribution)](util::rng& rng) {
    return distribution->sample(rng);
  };
}

concurrent_generator::concurrent_generator(sim::simulation& sim,
                                           task_source source,
                                           request_sink sink,
                                           concurrent_config config,
                                           util::rng rng)
    : sim_{sim},
      source_{std::move(source)},
      sink_{std::move(sink)},
      config_{config},
      rng_{rng} {
  if (config.users == 0) throw std::invalid_argument{"concurrent: 0 users"};
  if (config.rounds == 0) throw std::invalid_argument{"concurrent: 0 rounds"};
  if (!source_ || !sink_) {
    throw std::invalid_argument{"concurrent: missing source/sink"};
  }
  process_ = std::make_unique<sim::periodic_process>(
      sim_, sim_.now(), config_.gap, [this](std::uint64_t) {
        emit_round();
        return rounds_done_ < config_.rounds;
      });
}

void concurrent_generator::emit_round() {
  for (std::size_t u = 0; u < config_.users; ++u) {
    offload_request request;
    request.id = next_request_id();
    request.user = config_.first_user + static_cast<user_id>(u);
    request.work = source_(rng_);
    request.created_at = sim_.now();
    ++emitted_;
    sink_(request);
  }
  ++rounds_done_;
}

interarrival_generator::interarrival_generator(sim::simulation& sim,
                                               task_source source,
                                               request_sink sink,
                                               interarrival_fn gaps,
                                               interarrival_config config,
                                               util::rng rng)
    : sim_{sim},
      source_{std::move(source)},
      sink_{std::move(sink)},
      gaps_{std::move(gaps)},
      config_{config},
      rng_{rng} {
  if (config.devices == 0) throw std::invalid_argument{"interarrival: 0 devices"};
  if (!source_ || !sink_ || !gaps_) {
    throw std::invalid_argument{"interarrival: missing callback"};
  }
  const util::time_ms start = sim_.now();
  for (std::size_t d = 0; d < config_.devices; ++d) {
    const auto user = config_.first_user + static_cast<user_id>(d);
    // Desynchronize devices with an initial fractional gap.
    sim_.schedule_at(start + gaps_(rng_) * rng_.uniform(),
                     [this, user] { schedule_next(user); });
  }
  deadline_ = start + config_.active_duration;
}

void interarrival_generator::schedule_next(user_id user) {
  if (sim_.now() >= deadline_) return;
  offload_request request;
  request.id = next_request_id();
  request.user = user;
  request.work = source_(rng_);
  request.created_at = sim_.now();
  ++emitted_;
  sink_(request);
  sim_.schedule_after(gaps_(rng_), [this, user] { schedule_next(user); });
}

replay_generator::replay_generator(sim::simulation& sim, task_source source,
                                   request_sink sink,
                                   std::vector<replay_event> events,
                                   util::rng rng)
    : sim_{sim},
      source_{std::move(source)},
      sink_{std::move(sink)},
      rng_{rng},
      events_{std::move(events)},
      total_{events_.size()} {
  if (!source_ || !sink_) {
    throw std::invalid_argument{"replay: missing source/sink"};
  }
  // Traces carry same-millisecond bursts (a round of concurrent users, a
  // log with coarse timestamps); schedule one wake-up per distinct
  // timestamp and emit the whole burst from it, not one event per entry.
  // The stable sort replays entries in (time, original-order) order —
  // exactly the order the event loop's FIFO tie-break produced when every
  // entry was its own event, so rng draw order is unchanged.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const replay_event& a, const replay_event& b) {
                     return a.at < b.at;
                   });
  std::size_t first = 0;
  while (first < events_.size()) {
    std::size_t last = first + 1;
    while (last < events_.size() && events_[last].at == events_[first].at) {
      ++last;
    }
    sim_.schedule_at(events_[first].at,
                     [this, first, last] { emit_range(first, last); });
    first = last;
  }
}

void replay_generator::emit_range(std::size_t first, std::size_t last) {
  for (std::size_t e = first; e < last; ++e) {
    offload_request request;
    request.id = next_request_id();
    request.user = events_[e].user;
    request.work = source_(rng_);
    request.created_at = sim_.now();
    ++emitted_;
    sink_(request);
  }
}

rate_doubling_generator::rate_doubling_generator(sim::simulation& sim,
                                                 task_source source,
                                                 request_sink sink,
                                                 rate_doubling_config config,
                                                 util::rng rng)
    : sim_{sim},
      source_{std::move(source)},
      sink_{std::move(sink)},
      config_{config},
      rng_{rng},
      rate_hz_{config.initial_hz},
      phase_end_{sim.now() + config.phase_length} {
  if (config.initial_hz <= 0.0 || config.final_hz < config.initial_hz) {
    throw std::invalid_argument{"rate_doubling: bad rate range"};
  }
  if (config.phase_length <= 0.0) {
    throw std::invalid_argument{"rate_doubling: phase_length <= 0"};
  }
  if (!source_ || !sink_) {
    throw std::invalid_argument{"rate_doubling: missing source/sink"};
  }
  schedule_arrival();
}

void rate_doubling_generator::schedule_arrival() {
  const double gap_ms = rng_.exponential(rate_hz_ / 1000.0);
  sim_.schedule_after(gap_ms, [this] {
    while (sim_.now() >= phase_end_) {
      rate_hz_ *= 2.0;
      phase_end_ += config_.phase_length;
      if (rate_hz_ > config_.final_hz) return;  // schedule exhausted
    }
    offload_request request;
    request.id = next_request_id();
    request.user = next_user_;
    next_user_ = (next_user_ + 1) %
                 static_cast<user_id>(config_.user_population);
    request.work = source_(rng_);
    request.created_at = sim_.now();
    ++emitted_;
    sink_(request);
    schedule_arrival();
  });
}

}  // namespace mca::workload
