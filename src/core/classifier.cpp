#include "core/classifier.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/simulation.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace mca::core {
namespace {

/// Mean response at the highest tested load; used for anomaly detection.
double high_load_mean(const type_characterization& c) {
  if (c.curve.empty()) return 0.0;
  return c.curve.back().mean_ms;
}

}  // namespace

type_characterization characterize_type(const cloud::instance_type& type,
                                        const tasks::task_pool& pool,
                                        const classifier_config& config) {
  if (config.load_levels.empty()) {
    throw std::invalid_argument{"characterize_type: no load levels"};
  }
  if (config.rounds_per_level == 0) {
    throw std::invalid_argument{"characterize_type: zero rounds"};
  }
  type_characterization result;
  result.type_name = type.name;
  result.cost_per_hour = type.cost_per_hour;

  util::rng seed_stream{config.seed};
  for (const std::size_t users : config.load_levels) {
    // Fresh simulation and server per level: the paper's cool-down isolates
    // levels; a fresh instance isolates them exactly.
    sim::simulation sim;
    cloud::instance server{sim, 1, type, seed_stream.fork(),
                           config.instance_options};
    std::vector<double> responses;
    workload::concurrent_config load;
    load.users = users;
    load.rounds = config.rounds_per_level;
    load.gap = config.burst_gap_ms;
    workload::concurrent_generator generator{
        sim, workload::random_pool_source(pool),
        [&server, &responses](const workload::offload_request& request) {
          server.submit(request.work.work_units(),
                        [&responses](util::time_ms service_time, bool) {
                          responses.push_back(service_time);
                        });
        },
        load, seed_stream.fork()};
    sim.run();

    if (responses.empty()) continue;
    const auto s = util::summary_of(responses);
    result.curve.push_back({users, s.mean, s.stddev, s.p5, s.p95});
  }

  for (const auto& point : result.curve) {
    if (point.mean_ms <= config.response_bound_ms) {
      result.capacity_users = std::max(result.capacity_users, point.users);
    }
  }
  result.capacity_requests_per_min =
      static_cast<double>(result.capacity_users);
  result.solo_mean_ms = result.curve.empty() ? 0.0 : result.curve.front().mean_ms;
  return result;
}

acceleration_map classify(std::span<const cloud::instance_type> types,
                          const tasks::task_pool& pool,
                          const classifier_config& config) {
  if (types.empty()) throw std::invalid_argument{"classify: no types"};

  std::vector<type_characterization> profiles;
  profiles.reserve(types.size());
  for (const auto& type : types) {
    profiles.push_back(characterize_type(type, pool, config));
  }

  // Anomaly demotion (the t2.nano/t2.micro case): a type is demoted when a
  // strictly cheaper type of the *same nominal speed class* (solo response
  // within the split tolerance) matches its capacity and clearly beats its
  // high-load latency.  The solo guard keeps genuinely faster-but-cheaper
  // types (c4 vs m4.10xlarge) from demoting slower ones — those belong in
  // different groups, not in the anomaly bin.
  std::vector<bool> demoted(profiles.size(), false);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (std::size_t j = 0; j < profiles.size(); ++j) {
      if (i == j) continue;
      const bool cheaper = profiles[j].cost_per_hour < profiles[i].cost_per_hour;
      const bool no_worse_capacity =
          profiles[j].capacity_users >= profiles[i].capacity_users;
      const bool better_latency =
          high_load_mean(profiles[j]) < high_load_mean(profiles[i]) * 0.95;
      const bool same_speed_class =
          std::abs(profiles[j].solo_mean_ms - profiles[i].solo_mean_ms) <=
          profiles[i].solo_mean_ms * config.solo_split_tolerance;
      if (cheaper && no_worse_capacity && better_latency && same_speed_class) {
        demoted[i] = true;
        break;
      }
    }
  }

  // Sort the remaining profiles by (capacity, solo speed) ascending and
  // cut group boundaries where either the capacity bucket changes or the
  // solo mean improves beyond the split tolerance.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    if (!demoted[i]) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (profiles[a].capacity_users != profiles[b].capacity_users) {
      return profiles[a].capacity_users < profiles[b].capacity_users;
    }
    return profiles[a].solo_mean_ms > profiles[b].solo_mean_ms;
  });

  std::vector<acceleration_group> groups;
  // Group 0 always exists and holds the demoted anomalies.
  acceleration_group anomaly;
  anomaly.id = 0;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    if (demoted[i]) {
      anomaly.type_names.push_back(profiles[i].type_name);
      anomaly.capacity_users = std::max(
          anomaly.capacity_users,
          static_cast<double>(profiles[i].capacity_users));
      if (anomaly.solo_mean_ms == 0.0) {
        anomaly.solo_mean_ms = profiles[i].solo_mean_ms;
      }
    }
  }
  groups.push_back(anomaly);

  for (std::size_t k = 0; k < order.size(); ++k) {
    const auto& profile = profiles[order[k]];
    bool start_new_group = groups.size() == 1;  // first regular type
    if (!start_new_group) {
      const auto& current = groups.back();
      const bool capacity_differs =
          static_cast<double>(profile.capacity_users) != current.capacity_users;
      const bool solo_improves =
          profile.solo_mean_ms <
          current.solo_mean_ms * (1.0 - config.solo_split_tolerance);
      start_new_group = capacity_differs || solo_improves;
    }
    if (start_new_group) {
      acceleration_group next;
      next.id = static_cast<group_id>(groups.size());
      next.capacity_users = static_cast<double>(profile.capacity_users);
      next.solo_mean_ms = profile.solo_mean_ms;
      groups.push_back(next);
    }
    groups.back().type_names.push_back(profile.type_name);
    groups.back().capacity_users =
        std::max(groups.back().capacity_users,
                 static_cast<double>(profile.capacity_users));
  }
  return acceleration_map{std::move(groups)};
}

}  // namespace mca::core
