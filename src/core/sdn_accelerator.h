// The SDN-accelerator: the cloud-side front-end that routes offloaded code
// into acceleration groups (§IV, §V).
//
// A request's life (Fig. 7a): the mobile uplink (T_m→f, half the sampled
// LTE round trip), the Request Handler + Code Offloader routing work
// (≈150 ms, Fig. 8a), the internal hop to the chosen back-end instance
// (T_f→b), cloud execution under processor sharing (T_cloud), and the two
// return hops (T_b→f, T_f→m).  The paper assumes the channel stays open
// both ways, so T_m→f = T_f→m and T_f→b = T_b→f.  Every processed request
// is logged as a trace record — the knowledge base of the predictor.
//
// Hot-path layout: each accepted request occupies one slot in a pooled
// slab of in-flight states (free-listed, reused), and every stage of the
// event chain is a member function scheduled with a [this, slot] lambda —
// small enough for std::function's inline storage.  The steady-state
// request path performs no heap allocation; the legacy per-request
// `response_fn` overload survives for tests and characterization benches.
#pragma once

#include <functional>
#include <vector>

#include "cloud/backend_pool.h"
#include "net/rtt_model.h"
#include "obs/exemplar.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "sim/simulation.h"
#include "trace/log_store.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/request.h"

namespace mca::core {

/// Front-end behaviour knobs.
struct sdn_config {
  /// Request Handler + Code Offloader processing (the paper's ≈150 ms).
  double routing_overhead_mean_ms = 150.0;
  double routing_overhead_sd_ms = 20.0;
  /// Front-end <-> back-end one-way latency (same private network).
  double backend_one_way_ms = 3.0;
  /// Trace every processed request (fires the trace observer and, when
  /// retained, the log record) — the predictor's knowledge base.
  bool log_traces = true;
  /// Keep the raw trace records in the log store.  Off, the trace point
  /// still fires (prediction works) but nothing accumulates in memory —
  /// the fleet-scale setting.
  bool retain_trace_records = true;
  /// Keep raw per-group routing-time samples (Fig. 8a series).
  bool keep_routing_samples = false;

  // ---- resilience (fault-injection PR) ----------------------------------
  // All-off defaults are bit-inert: with no retries, no timeout, and no
  // fallback, the pipeline schedules exactly the events it always has and
  // draws nothing extra from any rng stream, so pre-fault goldens
  // reproduce exactly.
  /// Re-dispatch attempts after the first try fails or times out.
  std::size_t max_retries = 0;
  /// Per-attempt timeout; <= 0 never arms the timer.
  double request_timeout_ms = 0.0;
  /// Capped exponential backoff before retry k:
  /// min(cap, base * 2^(k-1)) * (0.5 + u), u from the request's own
  /// deterministic stream.
  double retry_backoff_base_ms = 200.0;
  double retry_backoff_cap_ms = 2'000.0;
  /// After retry exhaustion, run the task on the local device instead of
  /// failing (acceptance degrades instead of cliffing).
  bool local_fallback = false;
  /// Local device throughput for the fallback: work_units per ms.
  double local_exec_wu_per_ms = 0.005;

  bool resilience_enabled() const noexcept {
    return max_retries > 0 || request_timeout_ms > 0.0 || local_fallback;
  }
};

/// Per-request timing decomposition (Fig. 7a/7b vocabulary).
struct request_timing {
  util::time_ms mobile_to_front = 0.0;
  util::time_ms routing = 0.0;
  util::time_ms front_to_back = 0.0;
  util::time_ms cloud = 0.0;
  util::time_ms back_to_front = 0.0;
  util::time_ms front_to_mobile = 0.0;
  bool success = false;
  /// True when the response was produced by the on-device fallback after
  /// retry exhaustion (success is then also true; `cloud` holds the local
  /// execution time).
  bool local = false;

  /// T1 = T_m→f + T_f→m (external, over LTE).
  util::time_ms t1() const noexcept {
    return mobile_to_front + front_to_mobile;
  }
  /// T2 = front-end handling + both internal hops.
  util::time_ms t2() const noexcept {
    return routing + front_to_back + back_to_front;
  }
  /// T_response = T1 + T2 + T_cloud.
  util::time_ms total() const noexcept { return t1() + t2() + cloud; }
};

/// Invoked at the mobile when the result (or the failure notice) arrives.
using response_fn = std::function<void(const workload::offload_request&,
                                       const request_timing&)>;

/// Zero-allocation response delivery: the closed-loop system implements
/// this once instead of allocating a response closure per request.
/// `group` is the acceleration group the request was routed to.
class response_sink {
 public:
  virtual ~response_sink() = default;
  virtual void on_response(const workload::offload_request& request,
                           const request_timing& timing, group_id group) = 0;
};

/// Observer of the trace point (where processed requests enter the log);
/// lets the owner stream per-slot state without re-scanning the log.
using trace_fn = std::function<void(util::time_ms created_at, user_id user,
                                    group_id group)>;

/// The front-end component.
class sdn_accelerator {
 public:
  /// `log` may be nullptr to disable persistence regardless of config.
  sdn_accelerator(sim::simulation& sim, cloud::backend_pool& backend,
                  net::rtt_model mobile_link, trace::log_store* log,
                  sdn_config config, util::rng rng);

  /// Accepts one offloading request destined for acceleration `group`.
  /// `battery` is the device's charge level, logged with the trace.
  void submit(const workload::offload_request& request, group_id group,
              double battery, response_fn on_response);

  /// Pooled fast path: responses go to the installed sink (see
  /// set_response_sink); no per-request callback state is allocated.
  void submit(const workload::offload_request& request, group_id group,
              double battery);

  /// Installs the response sink the payload-free submit() reports to.
  void set_response_sink(response_sink* sink) noexcept { sink_ = sink; }

  /// Attaches the observability layer: `registry` (nullptr = counters
  /// off) takes the request counters; `tracer` (nullptr = no tracing)
  /// receives a request_lifecycle span for 1 request in `sample_every`
  /// into `tracer->ring(ring)`.  Both pointers are fixed after setup, so
  /// the disabled path is one predictable branch; span state lives in the
  /// pooled in-flight slab, so sampling allocates nothing.
  void set_observability(obs::registry* registry, obs::tracer* tracer,
                         std::size_t ring, std::size_t sample_every) noexcept {
    obs_ = registry;
    tracer_ = tracer;
    trace_ring_ = ring;
    trace_sample_every_ = sample_every == 0 ? 1 : sample_every;
  }
  /// Installs the trace observer, invoked exactly where successful
  /// requests are logged (same event, same order).
  void set_trace_observer(trace_fn fn) { on_trace_ = std::move(fn); }

  /// Attaches a tail-exemplar reservoir (nullptr = off): every delivered
  /// response is offered at the sink, where its latency is known — the
  /// sampling decision 1-in-N head sampling cannot make.  Fixed after
  /// setup.
  void set_exemplar_sink(obs::exemplar_reservoir* exemplars) noexcept {
    exemplars_ = exemplars;
  }

  std::uint64_t received() const noexcept { return received_; }
  std::uint64_t succeeded() const noexcept { return succeeded_; }
  std::uint64_t failed() const noexcept { return failed_; }

  /// Routing-time statistics per group (Fig. 8a).
  const util::running_stats& routing_stats(group_id group) const;
  /// Raw samples when `keep_routing_samples` is on.
  const std::vector<double>& routing_samples(group_id group) const;

 private:
  /// In-flight request state, pooled and reused across requests.
  struct inflight {
    workload::offload_request request;
    request_timing timing;
    group_id group = 0;
    double battery = 1.0;
    response_fn on_response;  ///< empty on the sink fast path
    std::uint32_t next_free = 0;
    // Retry bookkeeping: `attempt` counts dispatch tries, `epoch` guards
    // against stale backend completions (a timed-out attempt's completion
    // callback compares its captured epoch and drops itself), `timeout`
    // is the armed per-attempt timer.
    std::uint32_t attempt = 0;
    std::uint32_t epoch = 0;
    /// Arrival sequence (received_ at submit), the backoff-jitter stream
    /// key: request.id is a process-global atomic (nondeterministic
    /// across runs), the arrival order within one simulation is not.
    std::uint64_t seq = 0;
    sim::event_handle timeout{};
    // Sampled-span state (set at start, consumed at deliver).
    bool sampled = false;
    double span_wall_us = 0.0;
    util::time_ms span_sim_start = 0.0;
  };
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;
  void start(const workload::offload_request& request, group_id group,
             double battery, response_fn on_response);
  // Stages of the Fig. 7a chain, each fired by a [this, slot] event.
  void stage_routing(std::uint32_t slot);
  void stage_to_backend(std::uint32_t slot);
  void stage_dispatch(std::uint32_t slot);
  void stage_return(std::uint32_t slot, util::time_ms service_time);
  void stage_logged(std::uint32_t slot);
  void finish(std::uint32_t slot, bool success);
  void deliver(std::uint32_t slot);
  // Resilience path (see the sdn-retry-path hot region): backend
  // completions funnel through the epoch guard; failed attempts retry
  // with backoff, fall back to local execution, or fail out.
  void on_backend_done(std::uint32_t slot, std::uint32_t epoch,
                       util::time_ms service_time, bool ok);
  void on_timeout(std::uint32_t slot);
  void attempt_failed(std::uint32_t slot);

  double sample_routing_overhead();
  double hour_of_day() const noexcept;

  sim::simulation& sim_;
  cloud::backend_pool& backend_;
  net::rtt_model mobile_link_;
  trace::log_store* log_;
  sdn_config config_;
  util::rng rng_;
  /// Seed of the per-request backoff-jitter streams; drawn from rng_ at
  /// construction only when resilience is configured, so all-off configs
  /// leave the main stream untouched.
  std::uint64_t retry_seed_ = 0;
  response_sink* sink_ = nullptr;
  trace_fn on_trace_;
  obs::registry* obs_ = nullptr;
  obs::exemplar_reservoir* exemplars_ = nullptr;
  obs::tracer* tracer_ = nullptr;
  std::size_t trace_ring_ = 0;
  std::size_t trace_sample_every_ = 1024;

  std::vector<inflight> pool_;
  std::uint32_t free_head_ = kNoFreeSlot;

  std::uint64_t received_ = 0;
  std::uint64_t succeeded_ = 0;
  std::uint64_t failed_ = 0;
  std::vector<util::running_stats> routing_stats_;
  std::vector<std::vector<double>> routing_samples_;
};

}  // namespace mca::core
