// The end-to-end deployment: workload → moderator → SDN-accelerator →
// acceleration groups, closed by the adaptive model.
//
// This is the harness behind the paper's §VI-C experiments (Fig. 9/10):
// a population of devices issues offloading requests following a
// trace-driven inter-arrival process; each device's moderator decides its
// acceleration group (promotions); the SDN front-end routes and logs; and
// at every provisioning-slot boundary the predictor forecasts the next
// slot's per-group workload and the ILP allocator reshapes the fleet —
// all against hourly billing and the account instance cap.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "client/device.h"
#include "client/moderator.h"
#include "cloud/backend_pool.h"
#include "core/allocator.h"
#include "core/predictor.h"
#include "core/sdn_accelerator.h"
#include "fault/fault_program.h"
#include "net/rtt_model.h"
#include "obs/exemplar.h"
#include "obs/registry.h"
#include "obs/timeline.h"
#include "obs/tracer.h"
#include "sim/simulation.h"
#include "tasks/task.h"
#include "trace/log_store.h"
#include "util/histogram.h"
#include "workload/generator.h"

namespace mca::core {

/// The latency-histogram layout every streaming digest uses (250 ms bins
/// to one minute); exp::make_latency_histogram mirrors it so merged
/// replication digests line up.
util::histogram default_latency_histogram();

/// One acceleration group's backing in the deployment (Fig. 9a style:
/// group 1 = t2.nano, group 2 = t2.large, group 3 = m4.4xlarge).
struct group_backend_spec {
  group_id group = 1;
  std::string type_name;
  std::size_t initial_count = 1;
  /// Ks for the allocator: users one instance carries under the bound
  /// (from the classifier's characterization).
  double capacity_per_instance = 10.0;
};

/// Full experiment description.
struct system_config {
  std::vector<group_backend_spec> groups;
  group_id initial_group = 1;

  // --- workload ---
  std::size_t user_count = 100;
  workload::task_source tasks;        ///< required
  workload::interarrival_fn gaps;     ///< required
  /// Device hardware mix, cycled over users.
  std::vector<client::device_class> device_mix = {
      client::device_class::flagship, client::device_class::midrange,
      client::device_class::budget, client::device_class::wearable};

  // --- promotion ---
  /// Built if `policy_factory` is empty: the paper's static 1/50 policy.
  std::function<std::unique_ptr<client::promotion_policy>()> policy_factory;
  /// Let the policy also demote users (never below the initial group).
  bool allow_demotion = false;

  // --- adaptive model ---
  bool enable_adaptation = true;
  util::time_ms slot_length = util::hours(1);
  std::size_t max_total_instances = 20;  ///< CC
  prediction_mode predictor_mode = prediction_mode::successor;
  /// Pre-trained knowledge base (e.g. from a warm-up run).
  std::vector<trace::time_slot> seed_history;
  bool cumulative_capacity = false;
  /// Externally driven provisioning (the fleet coordinator's mode): slot
  /// boundaries still predict and build the allocation request, but do not
  /// solve or apply it — the owner reads take_pending_demand() after
  /// advancing to the boundary and answers with apply_external_plan().
  bool external_allocation = false;

  /// Keep the raw per-request metric series (system_metrics::requests and
  /// the per-user index behind user_response_series).  The streaming
  /// digest is always maintained; the raw series costs one push_back and
  /// ~56 bytes per request, so fleet-scale runs turn it off
  /// (exp::run_scenario and fleet shards run with it off; figure benches
  /// that plot per-request series keep it on).
  bool record_request_series = true;

  // --- induced background load (§VI-C.1) ---
  /// Requests injected into every back-end server per burst.
  std::size_t background_requests_per_burst = 50;
  util::time_ms background_burst_period = util::seconds(2);

  // --- observability ---
  /// Master switch for the preregistered obs counters (SDN request
  /// pipeline, PS backend, slot boundaries).  The registry itself is
  /// always owned and preallocated by the system; off means components
  /// get a nullptr and the recording sites reduce to one predictable
  /// branch.  On by default — the counters are cheap enough to keep in
  /// the allocation-free hot path (gated by bench/fleet_scale).
  bool obs_counters = true;
  /// Per-slot telemetry windows (obs::timeline): counter deltas, gauge
  /// samples, and windowed per-group SLO histograms snapshotted at every
  /// slot boundary plus one drain-tail window at finish().  Preallocated
  /// in begin() once the slot count is known; requires obs_counters.
  bool obs_timeline = true;
  /// Tail-exemplar reservoir size: the K slowest request lifecycles per
  /// slot window, captured at the response sink (0 disables).  Requires
  /// obs_counters.
  std::size_t exemplar_top_k = 4;
  /// Optional span tracer (not owned; must outlive the system).  When
  /// set, 1 in `trace_sample_every` requests records a lifecycle span
  /// into `trace_sink->ring(trace_ring)`.
  obs::tracer* trace_sink = nullptr;
  std::size_t trace_ring = 0;
  std::size_t trace_sample_every = 1024;

  // --- fault injection & resilience (src/fault) ---
  /// Inert by default (enabled == false): no fault events are scheduled,
  /// no extra rng draws happen anywhere, and pre-fault goldens reproduce
  /// bit-exactly.  When enabled, the program's resilience knobs are mapped
  /// onto `sdn` and `instance_options` at construction — the program is
  /// the single source of truth.
  fault::fault_program faults;
  /// Precomputed preemption strikes (fault::make_preemption_schedule);
  /// exp::make_system_config fills this from the program, fleet shards
  /// receive their seq-sliced share.  Ignored unless `faults.enabled`.
  std::vector<fault::preemption_event> preemption_schedule;

  // --- plumbing ---
  sdn_config sdn;
  /// Mobile <-> front-end link; defaults to the paper's assumption
  /// (operator beta's calibrated LTE).  Supply a 3G model to study the
  /// §VI-C.4 technology gap end to end.
  std::optional<net::rtt_model> mobile_link;
  cloud::instance::options instance_options;
  std::uint64_t seed = 7;
};

/// One completed (or failed) foreground request.
struct request_metric {
  request_id id = 0;
  user_id user = 0;
  std::uint32_t user_seq = 0;  ///< per-user request index, 0-based
  group_id group = 0;
  double response_ms = 0.0;
  util::time_ms issued_at = 0.0;
  bool success = false;
};

/// Outcome of one provisioning slot.
struct slot_report {
  std::size_t slot_index = 0;
  std::vector<std::size_t> actual_counts;  ///< users per group, observed
  std::optional<std::vector<std::size_t>> predicted_counts;
  std::optional<double> accuracy;  ///< prediction vs next slot's actual
  std::optional<allocation_plan> plan;
};

/// Streaming per-request aggregates, maintained on the response path in
/// completion order — exactly the statistics the replication digests used
/// to recompute by scanning the raw series.  Unconditional (and cheap), so
/// fleet-scale runs need no per-request storage at all.
struct request_digest {
  std::size_t issued = 0;     ///< responses delivered (success or failure)
  std::size_t succeeded = 0;
  util::running_stats response;          ///< successful responses
  util::histogram latency = default_latency_histogram();
  std::vector<util::running_stats> group_response;  ///< by routed group
  std::vector<std::uint64_t> group_successes;
};

/// Aggregated run results.
struct system_metrics {
  /// Raw per-request series; filled only under record_request_series.
  std::vector<request_metric> requests;
  /// Per-user indices into `requests` (same flag) — user series lookups
  /// are O(own requests), not O(all requests).
  std::vector<std::vector<std::uint32_t>> requests_by_user;
  request_digest digest;
  std::vector<slot_report> slots;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  std::uint64_t background_submitted = 0;
  double total_cost_usd = 0.0;

  /// Mean accuracy over slots that had both a prediction and an outcome.
  std::optional<double> mean_prediction_accuracy() const;
  /// All response times of successful requests for one user, in order.
  /// Requires the raw series (empty otherwise).
  std::vector<double> user_response_series(user_id user) const;
  /// The group each successful request of a user ran in, in order.
  std::vector<group_id> user_group_series(user_id user) const;
};

/// Owns the whole simulated deployment.
class offloading_system : private response_sink {
 public:
  /// Validates the config (groups present, callbacks set).
  /// Throws std::invalid_argument on a malformed config.
  offloading_system(system_config config, const tasks::task_pool& pool);

  /// Runs the experiment for `duration` of simulated time.
  void run(util::time_ms duration);

  /// The incremental form of run(), for owners that must interleave with
  /// the event loop at provisioning-slot boundaries (fleet::shard):
  /// begin() installs the workload and ticker processes, advance_to() runs
  /// the loop forward to an absolute simulated time, finish() drains
  /// in-flight requests past the horizon and fills the run totals.
  /// run(d) == begin(d); advance_to(d); finish().
  /// begin() throws std::invalid_argument on a non-positive duration and
  /// std::logic_error when called twice.
  void begin(util::time_ms duration);
  void advance_to(util::time_ms t);
  void finish();

  /// Under external_allocation: the allocation request built at the most
  /// recent slot boundary (nullopt when the predictor had no forecast or
  /// the demand was already taken).  A boundary overwrites an untaken
  /// demand from the previous slot.
  std::optional<allocation_request> take_pending_demand();

  /// Applies an externally solved plan (the shard's fleet quota) and
  /// records it in the current slot report.
  /// Throws std::logic_error before the first slot boundary.
  void apply_external_plan(const allocation_plan& plan);

  const system_config& config() const noexcept { return config_; }
  const system_metrics& metrics() const noexcept { return metrics_; }
  cloud::backend_pool& backend() noexcept { return *backend_; }
  const trace::log_store& log() const noexcept { return log_; }
  sdn_accelerator& sdn() noexcept { return *sdn_; }
  const workload_predictor& predictor() const noexcept { return predictor_; }
  client::moderator& moderator() noexcept { return *moderator_; }
  sim::simulation& simulation() noexcept { return sim_; }
  std::size_t group_count() const noexcept { return group_count_; }
  /// The run's observability registry (zeroed but valid when
  /// obs_counters is off).
  const obs::registry& observability() const noexcept { return obs_; }
  /// Per-slot telemetry windows (empty when obs_timeline or obs_counters
  /// is off, or before begin()).
  const obs::timeline& timeline() const noexcept { return timeline_; }
  /// Tail exemplars flushed so far (disabled when exemplar_top_k == 0 or
  /// obs_counters is off).
  const obs::exemplar_reservoir& exemplars() const noexcept {
    return exemplars_;
  }

 private:
  void handle_request(const workload::offload_request& request);
  /// response_sink: the single response handler behind the pooled SDN
  /// fast path (replaces a per-request response closure).
  void on_response(const workload::offload_request& request,
                   const request_timing& timing, group_id group) override;
  /// Trace point: streams (group, user) into the current slot window —
  /// the predictor's evidence — without re-scanning the request log.
  void on_trace(util::time_ms created_at, user_id user, group_id group);
  void on_slot_boundary(std::size_t slot_index);
  void inject_background();
  void apply_plan(const allocation_plan& plan);
  // Fault-program event handlers (scheduled in begin() when enabled).
  void apply_preemption(std::size_t index);
  void begin_outage(std::size_t index);
  void end_outage(std::size_t index);
  /// Relaunches a recovered group to its last planned (or initial) size.
  void restore_group(group_id group);
  /// The finished slot accumulated so far; resets the window.
  trace::time_slot take_current_slot();

  system_config config_;
  const tasks::task_pool& pool_;
  std::size_t group_count_ = 0;

  sim::simulation sim_;
  util::rng rng_;
  trace::log_store log_;
  std::unique_ptr<cloud::backend_pool> backend_;
  std::unique_ptr<sdn_accelerator> sdn_;
  std::unique_ptr<client::moderator> moderator_;
  client::device_slab devices_;
  workload_predictor predictor_;

  std::unique_ptr<workload::interarrival_generator> generator_;
  std::unique_ptr<sim::periodic_process> slot_ticker_;
  std::unique_ptr<sim::periodic_process> background_ticker_;

  /// Per-group backends resolved once (type_by_name + interned id) so no
  /// provisioning path resolves strings per slot, let alone per request.
  std::vector<const cloud::instance_type*> spec_types_;
  std::vector<cloud::instance_type_id> spec_type_ids_;

  /// Streaming slot accumulator: users seen per group in the current
  /// window [slot_window_start_, slot_window_end_); buffers keep their
  /// capacity across slots.
  std::vector<std::vector<user_id>> slot_users_;
  util::time_ms slot_window_start_ = 0.0;
  util::time_ms slot_window_end_ = 0.0;

  std::vector<std::uint32_t> user_seq_;
  util::rng background_rng_;
  system_metrics metrics_;

  /// Owned registry; obs_ptr_ is &obs_ under obs_counters and nullptr
  /// otherwise — fixed at construction, THE branch-on-a-constant every
  /// recording site tests.
  obs::registry obs_;
  obs::registry* obs_ptr_ = nullptr;
  obs::timeline timeline_;
  obs::exemplar_reservoir exemplars_;

  util::time_ms duration_ = 0.0;
  bool started_ = false;
  std::optional<allocation_request> pending_demand_;
  /// The most recently applied plan (internal or external) — what
  /// restore_group() re-applies when an outage lifts mid-slot.
  std::optional<allocation_plan> last_plan_;
};

/// The slot-boundary allocation request implied by a deployment's group
/// backends and a predicted per-group load — one code path shared by
/// offloading_system's internal adaptation and the fleet's demand digests
/// (demand derivation itself lives in core::demand_from_prediction).
allocation_request make_slot_allocation_request(
    const system_config& config, std::size_t group_count,
    std::span<const std::size_t> predicted_counts);

}  // namespace mca::core
