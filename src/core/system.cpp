#include "core/system.h"

#include <algorithm>
#include <stdexcept>

#include "net/operators.h"

namespace mca::core {

namespace {
/// Placeholder mix for the device slab when the config is malformed; the
/// constructor body rejects such configs right after member init.
constexpr client::device_class kFallbackMix[] = {client::device_class::midrange};
}  // namespace

util::histogram default_latency_histogram() {
  // 250 ms bins to one minute: fine enough to separate the acceleration
  // levels, coarse enough that merged digests stay small.
  return util::histogram{0.0, 60'000.0, 240};
}

std::optional<double> system_metrics::mean_prediction_accuracy() const {
  double total = 0.0;
  std::size_t n = 0;
  for (const auto& s : slots) {
    if (s.accuracy) {
      total += *s.accuracy;
      ++n;
    }
  }
  if (n == 0) return std::nullopt;
  return total / static_cast<double>(n);
}

std::vector<double> system_metrics::user_response_series(user_id user) const {
  std::vector<double> series;
  if (user < requests_by_user.size()) {
    for (const std::uint32_t i : requests_by_user[user]) {
      if (requests[i].success) series.push_back(requests[i].response_ms);
    }
    return series;
  }
  // Metrics assembled by hand (tests) may carry a raw series without the
  // index; fall back to the linear scan.
  for (const auto& r : requests) {
    if (r.user == user && r.success) series.push_back(r.response_ms);
  }
  return series;
}

std::vector<group_id> system_metrics::user_group_series(user_id user) const {
  std::vector<group_id> series;
  if (user < requests_by_user.size()) {
    for (const std::uint32_t i : requests_by_user[user]) {
      if (requests[i].success) series.push_back(requests[i].group);
    }
    return series;
  }
  for (const auto& r : requests) {
    if (r.user == user && r.success) series.push_back(r.group);
  }
  return series;
}

offloading_system::offloading_system(system_config config,
                                     const tasks::task_pool& pool)
    : config_{std::move(config)}, pool_{pool}, rng_{config_.seed},
      devices_{config_.user_count == 0 ? 1 : config_.user_count,
               config_.device_mix.empty()
                   ? std::span<const client::device_class>{kFallbackMix}
                   : std::span<const client::device_class>{config_.device_mix}},
      background_rng_{config_.seed ^ 0xbadc0ffeULL} {
  if (config_.groups.empty()) {
    throw std::invalid_argument{"system: no backend groups"};
  }
  if (!config_.tasks || !config_.gaps) {
    throw std::invalid_argument{"system: task source and gaps are required"};
  }
  if (config_.user_count == 0) {
    throw std::invalid_argument{"system: zero users"};
  }
  if (config_.device_mix.empty()) {
    throw std::invalid_argument{"system: empty device mix"};
  }
  if (config_.faults.active()) {
    // The fault program is the single source of truth for the resilience
    // knobs: map it onto the SDN retry path and the instance cold-start
    // before either component is constructed.
    config_.sdn.max_retries = config_.faults.max_retries;
    config_.sdn.request_timeout_ms = config_.faults.request_timeout_ms;
    config_.sdn.retry_backoff_base_ms = config_.faults.retry_backoff_base_ms;
    config_.sdn.retry_backoff_cap_ms = config_.faults.retry_backoff_cap_ms;
    config_.sdn.local_fallback = config_.faults.local_fallback;
    config_.sdn.local_exec_wu_per_ms = config_.faults.local_exec_wu_per_ms;
    config_.instance_options.cold_start_mean_ms =
        config_.faults.cold_start_mean_ms;
    config_.instance_options.cold_start_sigma = config_.faults.cold_start_sigma;
  }

  group_id max_group = config_.initial_group;
  for (const auto& spec : config_.groups) {
    max_group = std::max(max_group, spec.group);
  }
  group_count_ = max_group + 1;

  // Resolve every backend's type once: catalog lookup and intern id here,
  // plain pointer/integer comparisons everywhere after.
  spec_types_.reserve(config_.groups.size());
  spec_type_ids_.reserve(config_.groups.size());
  for (const auto& spec : config_.groups) {
    spec_types_.push_back(&cloud::type_by_name(spec.type_name));
    spec_type_ids_.push_back(cloud::intern_type_name(spec.type_name));
  }

  backend_ = std::make_unique<cloud::backend_pool>(sim_, rng_.fork(),
                                                   config_.instance_options);
  for (std::size_t i = 0; i < config_.groups.size(); ++i) {
    const auto& spec = config_.groups[i];
    for (std::size_t n = 0; n < spec.initial_count; ++n) {
      backend_->launch(spec.group, *spec_types_[i]);
    }
  }

  sdn_ = std::make_unique<sdn_accelerator>(
      sim_, *backend_,
      config_.mobile_link ? *config_.mobile_link : net::default_lte_model(),
      &log_, config_.sdn, rng_.fork());
  sdn_->set_response_sink(this);
  sdn_->set_trace_observer(
      [this](util::time_ms created_at, user_id user, group_id group) {
        on_trace(created_at, user, group);
      });

  auto policy = config_.policy_factory
                    ? config_.policy_factory()
                    : std::make_unique<client::static_probability_promotion>();
  moderator_ = std::make_unique<client::moderator>(
      std::move(policy), config_.initial_group, max_group, rng_.fork(),
      config_.allow_demotion);

  obs_.resize_groups(group_count_);
  obs_.set_gauge(obs::gauge::groups, group_count_);
  obs_ptr_ = config_.obs_counters ? &obs_ : nullptr;
  backend_->set_observability(obs_ptr_);
  sdn_->set_observability(obs_ptr_, config_.trace_sink, config_.trace_ring,
                          config_.trace_sample_every);

  user_seq_.assign(config_.user_count, 0);

  slot_users_.resize(group_count_);
  slot_window_start_ = 0.0;
  slot_window_end_ = config_.slot_length;

  metrics_.digest.group_response.resize(group_count_);
  metrics_.digest.group_successes.assign(group_count_, 0);
  if (config_.record_request_series) {
    metrics_.requests_by_user.resize(config_.user_count);
  }

  predictor_ = workload_predictor{config_.predictor_mode};
  predictor_.set_history(config_.seed_history);
}

// Request ingress and response egress run once per simulated request —
// the two busiest call sites in a monolithic run.  Member-vector growth
// (the raw series under record_request_series) is amortized and allowed;
// locals must not allocate.
// mca:hot-path-begin(response-digest)
void offloading_system::handle_request(
    const workload::offload_request& request) {
  const group_id group = moderator_->group_of(request.user);
  const double battery = devices_.battery(request.user % devices_.size());
  sdn_->submit(request, group, battery);
}

void offloading_system::on_response(const workload::offload_request& request,
                                    const request_timing& timing,
                                    group_id group) {
  const user_id device = request.user % devices_.size();
  devices_.account_offload(device, timing.total());
  if (timing.success) {
    moderator_->record_response(request.user, timing.total(),
                                devices_.battery(device));
  }
  const double response_ms = timing.total();

  // Streaming digest, fed in completion order — the same order (and hence
  // the same floating-point accumulation) as the raw-series scan it
  // replaces.
  auto& digest = metrics_.digest;
  ++digest.issued;
  if (timing.success) {
    ++digest.succeeded;
    digest.response.add(response_ms);
    digest.latency.add(response_ms);
    if (group < group_count_) {
      digest.group_response[group].add(response_ms);
      ++digest.group_successes[group];
    }
    // Per-group SLO histogram (preallocated; the digest only keeps the
    // all-groups latency histogram).
    if (obs_ptr_ != nullptr) obs_ptr_->observe_response(group, response_ms);
  }

  const std::uint32_t seq = user_seq_[request.user % user_seq_.size()]++;
  if (config_.record_request_series) {
    request_metric metric;
    metric.id = request.id;
    metric.user = request.user;
    metric.user_seq = seq;
    metric.group = group;
    metric.response_ms = response_ms;
    metric.issued_at = request.created_at;
    metric.success = timing.success;
    if (metric.user < metrics_.requests_by_user.size()) {
      metrics_.requests_by_user[metric.user].push_back(
          static_cast<std::uint32_t>(metrics_.requests.size()));
    }
    metrics_.requests.push_back(metric);
  }
}
// mca:hot-path-end

void offloading_system::on_trace(util::time_ms created_at, user_id user,
                                 group_id group) {
  // Mirrors the retired slot_from_log scan: a request counts toward the
  // slot its creation time falls in, and only if it completed before that
  // slot's boundary fired (later completions used to miss the scan).
  if (created_at >= slot_window_start_ && created_at < slot_window_end_ &&
      group < group_count_) {
    slot_users_[group].push_back(user);
  }
}

trace::time_slot offloading_system::take_current_slot() {
  trace::time_slot slot = trace::time_slot::from_group_users(slot_users_);
  for (auto& users : slot_users_) users.clear();  // keep capacity
  slot_window_start_ = slot_window_end_;
  slot_window_end_ += config_.slot_length;
  return slot;
}

void offloading_system::inject_background() {
  for (const auto& spec : config_.groups) {
    backend_->for_each_accepting(spec.group, [&](cloud::instance& server) {
      for (std::size_t i = 0; i < config_.background_requests_per_burst; ++i) {
        const auto work = pool_.random_request(background_rng_).work_units();
        if (server.submit(work, {})) ++metrics_.background_submitted;
      }
    });
  }
}

void offloading_system::apply_plan(const allocation_plan& plan) {
  for (std::size_t i = 0; i < config_.groups.size(); ++i) {
    const auto& spec = config_.groups[i];
    // A group under an injected outage takes no provisioning actions:
    // launching into a dead zone would silently undo the fault, and its
    // instances are already draining.  restore_group() re-aims it when
    // the outage lifts.
    if (!backend_->group_available(spec.group)) continue;
    const std::size_t want = plan.count_of(spec.group, spec.type_name);
    const std::size_t have =
        backend_->instance_count(spec.group, spec_type_ids_[i]);
    if (want > have) {
      for (std::size_t n = have; n < want; ++n) {
        backend_->launch(spec.group, *spec_types_[i]);
      }
    } else if (want < have) {
      backend_->retire(spec.group, *spec_types_[i], have - want);
    }
  }
  // Remember the applied plan so an outage that lifts mid-slot can
  // restore the group to its planned size instead of waiting a full slot.
  if (config_.faults.active()) last_plan_ = plan;
}

void offloading_system::apply_preemption(std::size_t index) {
  const fault::preemption_event& ev = config_.preemption_schedule[index];
  const auto result = backend_->preempt_in(ev.group, ev.ordinal);
  if (!result.applied) return;  // struck an already-empty group
  if (obs_ptr_ != nullptr) {
    obs_ptr_->add(obs::counter::fault_preemptions);
    obs_ptr_->add(obs::counter::fault_inflight_killed, result.killed);
  }
}

void offloading_system::begin_outage(std::size_t index) {
  const fault::outage_window& w = config_.faults.outages[index];
  backend_->begin_outage(w.group);
  if (obs_ptr_ != nullptr) obs_ptr_->add(obs::counter::fault_outages);
}

void offloading_system::end_outage(std::size_t index) {
  const fault::outage_window& w = config_.faults.outages[index];
  backend_->end_outage(w.group);
  restore_group(w.group);
}

void offloading_system::restore_group(group_id group) {
  if (obs_ptr_ != nullptr) obs_ptr_->add(obs::counter::fault_recoveries);
  for (std::size_t i = 0; i < config_.groups.size(); ++i) {
    const auto& spec = config_.groups[i];
    if (spec.group != group) continue;
    // Target the last applied plan when there is one (external plans
    // included), the initial deployment otherwise.
    const std::size_t want = last_plan_
                                 ? last_plan_->count_of(spec.group,
                                                        spec.type_name)
                                 : spec.initial_count;
    const std::size_t have =
        backend_->instance_count(spec.group, spec_type_ids_[i]);
    for (std::size_t n = have; n < want; ++n) {
      backend_->launch(spec.group, *spec_types_[i]);
    }
  }
}

void offloading_system::on_slot_boundary(std::size_t slot_index) {
  if (obs_ptr_ != nullptr) {
    obs_ptr_->add(obs::counter::slot_boundaries);
    // Close the telemetry window that ends at this boundary before any
    // boundary work lands in the next one.  The snapshot counter is
    // bumped first so the closing window accounts for its own close.
    if (timeline_.enabled()) {
      obs_ptr_->add(obs::counter::timeline_snapshots);
      timeline_.snapshot(*obs_ptr_, slot_index, sim_.now());
    }
    exemplars_.roll_window(static_cast<std::uint32_t>(slot_index));
  }
  // The slot that just ended becomes evidence.
  trace::time_slot finished = take_current_slot();
  const auto actual_counts = finished.group_counts();

  // Score the forecast made one boundary ago.
  if (!metrics_.slots.empty()) {
    auto& previous = metrics_.slots.back();
    if (previous.predicted_counts) {
      previous.accuracy =
          prediction_accuracy(*previous.predicted_counts, actual_counts);
    }
  }

  slot_report report;
  report.slot_index = slot_index;
  report.actual_counts = actual_counts;

  predictor_.observe(finished);
  const auto predicted = predictor_.predict_counts(finished);
  if (predicted) {
    report.predicted_counts = predicted;
    if (config_.enable_adaptation) {
      allocation_request request =
          make_slot_allocation_request(config_, group_count_, *predicted);
      if (config_.external_allocation) {
        // The fleet coordinator owns the solve: park the demand for
        // take_pending_demand() and leave the fleet untouched until
        // apply_external_plan() answers.
        pending_demand_ = std::move(request);
      } else {
        if (obs_ptr_ != nullptr) obs_ptr_->add(obs::counter::ilp_solves);
        allocation_plan plan = allocate_ilp(request);
        if (obs_ptr_ != nullptr && plan.best_effort) {
          obs_ptr_->add(obs::counter::ilp_best_effort);
        }
        apply_plan(plan);
        report.plan = std::move(plan);
      }
    }
  }
  metrics_.slots.push_back(std::move(report));
}

allocation_request make_slot_allocation_request(
    const system_config& config, std::size_t group_count,
    std::span<const std::size_t> predicted_counts) {
  allocation_request request;
  request.workload_per_group =
      demand_from_prediction(predicted_counts, group_count);
  request.candidates_per_group.assign(group_count, {});
  for (const auto& spec : config.groups) {
    const auto& type = cloud::type_by_name(spec.type_name);
    request.candidates_per_group[spec.group].push_back(
        {spec.type_name, spec.capacity_per_instance, type.cost_per_hour});
  }
  request.max_total_instances = config.max_total_instances;
  request.cumulative_capacity = config.cumulative_capacity;
  return request;
}

void offloading_system::begin(util::time_ms duration) {
  if (duration <= 0.0) throw std::invalid_argument{"run: duration <= 0"};
  if (started_) throw std::logic_error{"begin: already started"};
  started_ = true;
  duration_ = duration;

  workload::interarrival_config load;
  load.devices = config_.user_count;
  load.active_duration = duration;
  generator_ = std::make_unique<workload::interarrival_generator>(
      sim_, config_.tasks,
      [this](const workload::offload_request& r) { handle_request(r); },
      config_.gaps, load, rng_.fork());

  if (config_.background_requests_per_burst > 0) {
    background_ticker_ = std::make_unique<sim::periodic_process>(
        sim_, config_.background_burst_period, config_.background_burst_period,
        [this](std::uint64_t) {
          inject_background();
          return true;
        });
  }

  const auto total_slots = static_cast<std::size_t>(
      std::max(1.0, duration / config_.slot_length));
  slot_ticker_ = std::make_unique<sim::periodic_process>(
      sim_, config_.slot_length, config_.slot_length,
      [this, total_slots](std::uint64_t tick) {
        on_slot_boundary(static_cast<std::size_t>(tick));
        return tick + 1 < total_slots;
      });

  if (config_.faults.active()) {
    fault::validate(config_.faults, duration, "system");
    for (std::size_t i = 0; i < config_.preemption_schedule.size(); ++i) {
      const fault::preemption_event& ev = config_.preemption_schedule[i];
      if (ev.at >= duration) continue;
      sim_.schedule_at(ev.at, [this, i] { apply_preemption(i); });
    }
    for (std::size_t i = 0; i < config_.faults.outages.size(); ++i) {
      const fault::outage_window& w = config_.faults.outages[i];
      sim_.schedule_at(w.start_ms, [this, i] { begin_outage(i); });
      sim_.schedule_at(w.end_ms, [this, i] { end_outage(i); });
    }
  }

  // Time-resolved telemetry buffers, sized now that the slot count is
  // known: one window per boundary plus the drain tail.
  if (obs_ptr_ != nullptr) {
    if (config_.obs_timeline) {
      timeline_.reset(total_slots + 1, group_count_);
    }
    if (config_.exemplar_top_k > 0) {
      exemplars_.reset(config_.exemplar_top_k, total_slots + 1);
      sdn_->set_exemplar_sink(&exemplars_);
    }
  }
}

void offloading_system::advance_to(util::time_ms t) {
  if (!started_) throw std::logic_error{"advance_to: begin() first"};
  sim_.run_until(t);
}

void offloading_system::finish() {
  if (!started_) throw std::logic_error{"finish: begin() first"};
  if (background_ticker_) background_ticker_->stop();
  if (slot_ticker_) slot_ticker_->stop();
  // Let in-flight requests complete so metrics cover the whole workload.
  sim_.run_until(duration_ + util::minutes(10.0));

  // Close the drain-tail telemetry window (responses that completed after
  // the last boundary); its slot index is one past the last boundary's.
  if (obs_ptr_ != nullptr) {
    if (timeline_.enabled()) {
      obs_ptr_->add(obs::counter::timeline_snapshots);
      timeline_.snapshot(*obs_ptr_, metrics_.slots.size(), sim_.now());
    }
    exemplars_.roll_window(static_cast<std::uint32_t>(metrics_.slots.size()));
  }

  metrics_.promotions = moderator_->promotions();
  metrics_.demotions = moderator_->demotions();
  metrics_.total_cost_usd = backend_->billing().total_cost(sim_.now());
}

void offloading_system::run(util::time_ms duration) {
  begin(duration);
  advance_to(duration);
  finish();
}

std::optional<allocation_request> offloading_system::take_pending_demand() {
  std::optional<allocation_request> demand = std::move(pending_demand_);
  pending_demand_.reset();
  return demand;
}

void offloading_system::apply_external_plan(const allocation_plan& plan) {
  if (metrics_.slots.empty()) {
    throw std::logic_error{"apply_external_plan: no slot boundary yet"};
  }
  apply_plan(plan);
  metrics_.slots.back().plan = plan;
}

}  // namespace mca::core
