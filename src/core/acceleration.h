// Acceleration groups: the paper's central abstraction.
//
// "The model encapsulates the servers of the cloud into acceleration
// groups.  Each a_n is mapped to a set of servers that provide a specific
// level of code acceleration."  Group ids follow the paper's numbering:
// group 0 is the demoted anomaly group (t2.micro), 1 is the slowest
// regular level, rising from there.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/ids.h"

namespace mca::core {

/// One point of a characterization curve (Fig. 4): response-time summary
/// at a given concurrent-user load.
struct load_point {
  std::size_t users = 0;
  double mean_ms = 0.0;
  double stddev_ms = 0.0;
  double p5_ms = 0.0;
  double p95_ms = 0.0;
};

/// Benchmark profile of one instance type.
struct type_characterization {
  std::string type_name;
  double cost_per_hour = 0.0;
  std::vector<load_point> curve;
  /// Largest tested concurrent-user level whose mean response time stayed
  /// under the administrator's bound ("a small instance handles a maximum
  /// of 30 users under 500 milliseconds").
  std::size_t capacity_users = 0;
  /// Ks of §IV-C: requests per minute the instance absorbs under the
  /// bound.  In the paper's concurrent benchmark each user issues one
  /// request per minute, so Ks numerically equals capacity_users.
  double capacity_requests_per_min = 0.0;
  /// Mean response time with a single user (solo speed).
  double solo_mean_ms = 0.0;
};

/// One acceleration group: the instance types that provide this level.
struct acceleration_group {
  group_id id = 0;
  std::vector<std::string> type_names;
  /// Representative per-instance capacity (users under the bound).
  double capacity_users = 0.0;
  /// Representative solo response time of the level.
  double solo_mean_ms = 0.0;
};

/// The classifier's output: groups indexed from 0 (anomaly) upward.
class acceleration_map {
 public:
  explicit acceleration_map(std::vector<acceleration_group> groups);

  std::size_t group_count() const noexcept { return groups_.size(); }
  const acceleration_group& group(group_id id) const;
  const std::vector<acceleration_group>& groups() const noexcept {
    return groups_;
  }

  /// Group of an instance type; throws std::out_of_range when unknown.
  group_id group_of(const std::string& type_name) const;
  bool contains(const std::string& type_name) const noexcept;

  /// Highest group id (the fastest level).
  group_id max_group() const;

 private:
  std::vector<acceleration_group> groups_;
};

}  // namespace mca::core
