// Code acceleration as a service (CaaS) — the §VII-4 monetization model.
//
// "A user can acquire from the cloud a service to improve the response
// time of a game instead of buying a new higher capability device."  This
// module turns the classifier's output into a price sheet: for each
// acceleration level, the provider's per-user cost follows from the
// cheapest backing instance and its benchmarked multi-tenant capacity;
// a margin turns cost into price; and the subscriber-side economics
// (months of CaaS vs the price of a new device) fall out.
#pragma once

#include <string>
#include <vector>

#include "cloud/instance_type.h"
#include "core/acceleration.h"

namespace mca::core {

/// Provider-side pricing knobs.
struct caas_config {
  /// Gross margin on top of infrastructure cost (0.4 = 40%).
  double margin = 0.4;
  /// Hours per month a subscriber actively offloads (screen-on time).
  double active_hours_per_month = 120.0;
  /// Fraction of an instance's benchmarked capacity the provider dares to
  /// sell (headroom for bursts; 0.8 = oversell nothing, keep 20% spare).
  double utilization_target = 0.8;
};

/// One subscription tier.
struct caas_plan {
  group_id level = 0;
  std::string backing_type;         ///< cheapest type providing the level
  double users_per_instance = 0.0;  ///< sellable capacity after headroom
  double cost_per_user_month = 0.0; ///< provider's infrastructure cost
  double price_per_user_month = 0.0;///< subscriber price (cost x margin)
  /// Solo response time of the level (what the subscriber buys).
  double solo_response_ms = 0.0;
};

/// Builds the price sheet for every regular level (group 0 is not sold).
/// `types` must contain every type named by the map.
/// Throws std::invalid_argument on empty maps, unknown types, or
/// non-positive config values.
std::vector<caas_plan> build_price_sheet(
    const acceleration_map& map,
    const std::vector<cloud::instance_type>& types,
    const caas_config& config = {});

/// Subscriber-side economics of "accelerate instead of upgrade".
struct upgrade_comparison {
  double device_price = 0.0;
  double caas_price_per_month = 0.0;
  /// How many months of CaaS the device price buys.
  double months_of_service = 0.0;
};

/// Throws std::invalid_argument on non-positive prices.
upgrade_comparison caas_vs_device_upgrade(double device_price,
                                          const caas_plan& plan);

}  // namespace mca::core
