#include "core/predictor.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mca::core {

const char* to_string(prediction_mode m) noexcept {
  switch (m) {
    case prediction_mode::successor: return "successor";
    case prediction_mode::match: return "match";
  }
  return "unknown";
}

void workload_predictor::set_history(std::vector<trace::time_slot> history) {
  history_ = std::move(history);
}

void workload_predictor::observe(trace::time_slot slot) {
  history_.push_back(std::move(slot));
}

std::optional<std::size_t> workload_predictor::nearest_index(
    const trace::time_slot& current) const {
  if (history_.empty()) return std::nullopt;
  std::size_t best = 0;
  std::size_t best_distance = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < history_.size(); ++i) {
    const std::size_t d = trace::slot_distance(current, history_[i]);
    // Ties resolve to the most recent slot: recent behaviour is the better
    // template for what follows.
    if (d <= best_distance) {
      best_distance = d;
      best = i;
    }
  }
  return best;
}

std::optional<trace::time_slot> workload_predictor::predict_next(
    const trace::time_slot& current) const {
  const auto nearest = nearest_index(current);
  if (!nearest) return std::nullopt;
  if (mode_ == prediction_mode::match) return history_[*nearest];
  if (history_.size() < 2) return std::nullopt;
  // successor mode: the slot that followed the best match — restricted to
  // matches that *have* a successor, so the freshest slot (whose future is
  // unknown) does not shadow an equally good earlier match.
  std::size_t best = history_.size();
  std::size_t best_distance = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i + 1 < history_.size(); ++i) {
    const std::size_t d = trace::slot_distance(current, history_[i]);
    if (d <= best_distance) {
      best_distance = d;
      best = i;
    }
  }
  if (best + 1 < history_.size() &&
      best_distance <= trace::slot_distance(current, history_.back())) {
    return history_[best + 1];
  }
  // The newest slot is the strictly better match: persistence forecast.
  return history_.back();
}

std::optional<std::vector<std::size_t>> workload_predictor::predict_counts(
    const trace::time_slot& current) const {
  const auto slot = predict_next(current);
  if (!slot) return std::nullopt;
  return slot->group_counts();
}

double prediction_accuracy(std::span<const std::size_t> predicted,
                           std::span<const std::size_t> actual) {
  if (predicted.size() != actual.size()) {
    throw std::invalid_argument{"prediction_accuracy: size mismatch"};
  }
  if (predicted.empty()) {
    throw std::invalid_argument{"prediction_accuracy: no groups"};
  }
  double total = 0.0;
  for (std::size_t g = 0; g < predicted.size(); ++g) {
    const double p = static_cast<double>(predicted[g]);
    const double a = static_cast<double>(actual[g]);
    const double denom = std::max({p, a, 1.0});
    total += 1.0 - std::abs(p - a) / denom;
  }
  return total / static_cast<double>(predicted.size());
}

std::optional<double> walk_forward_accuracy(
    std::span<const trace::time_slot> history, std::size_t knowledge_size,
    prediction_mode mode) {
  if (knowledge_size < 2 || knowledge_size >= history.size()) {
    return std::nullopt;
  }
  workload_predictor predictor{mode};
  predictor.set_history({history.begin(),
                         history.begin() + static_cast<std::ptrdiff_t>(
                                               knowledge_size)});
  double total = 0.0;
  std::size_t scored = 0;
  for (std::size_t i = knowledge_size - 1; i + 1 < history.size(); ++i) {
    const auto counts = predictor.predict_counts(history[i]);
    if (!counts) continue;
    total += prediction_accuracy(*counts, history[i + 1].group_counts());
    ++scored;
  }
  if (scored == 0) return std::nullopt;
  return total / static_cast<double>(scored);
}

cross_validation_result cross_validate(
    std::span<const trace::time_slot> history, std::size_t folds,
    prediction_mode mode) {
  if (folds < 2) throw std::invalid_argument{"cross_validate: folds < 2"};
  if (history.size() < folds + 1) {
    throw std::invalid_argument{"cross_validate: history shorter than folds"};
  }
  cross_validation_result result;
  const std::size_t fold_length = history.size() / folds;
  for (std::size_t f = 0; f < folds; ++f) {
    const std::size_t lo = f * fold_length;
    const std::size_t hi =
        (f + 1 == folds) ? history.size() : lo + fold_length;
    // Knowledge base: everything outside [lo, hi).
    std::vector<trace::time_slot> knowledge;
    knowledge.reserve(history.size() - (hi - lo));
    for (std::size_t i = 0; i < history.size(); ++i) {
      if (i < lo || i >= hi) knowledge.push_back(history[i]);
    }
    workload_predictor predictor{mode};
    predictor.set_history(std::move(knowledge));

    double total = 0.0;
    std::size_t scored = 0;
    for (std::size_t i = lo; i + 1 < hi; ++i) {
      const auto counts = predictor.predict_counts(history[i]);
      if (!counts) continue;
      total += prediction_accuracy(*counts, history[i + 1].group_counts());
      ++scored;
    }
    if (scored > 0) {
      result.fold_accuracy.push_back(total / static_cast<double>(scored));
    }
  }
  if (result.fold_accuracy.empty()) {
    throw std::invalid_argument{"cross_validate: folds too short to score"};
  }
  double sum = 0.0;
  for (double a : result.fold_accuracy) sum += a;
  result.mean_accuracy = sum / static_cast<double>(result.fold_accuracy.size());
  return result;
}

}  // namespace mca::core
